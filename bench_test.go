package repro

// One benchmark per table/figure of the paper's evaluation (§6). Each
// benchmark drives the corresponding experiment at Quick scale and reports
// the headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation. The harness binary (cmd/sdg-bench)
// prints the full row-by-row tables instead.

import (
	"testing"
	"time"

	"repro/internal/experiments"
)

var benchScale = experiments.Quick

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := experiments.Table1().String(); len(s) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig5CFReadWriteRatios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig5(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Ratio == "1:1" {
				b.ReportMetric(r.Throughput, "req/s@1:1")
				b.ReportMetric(float64(r.Latency.P95.Microseconds())/1000, "p95ms@1:1")
			}
		}
	}
}

func BenchmarkFig6KVStateSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig6(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		large := int64(16 << 20)
		for _, r := range rows {
			if r.StateBytes != large {
				continue
			}
			switch r.System {
			case "SDG":
				b.ReportMetric(r.Throughput, "sdg-req/s@16MB")
			case "Naiad-Disk":
				b.ReportMetric(r.Throughput, "naiad-disk-req/s@16MB")
			case "Naiad-NoDisk":
				b.ReportMetric(r.Throughput, "naiad-nodisk-req/s@16MB")
			}
		}
	}
}

func BenchmarkFig7KVScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig7(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) > 0 {
			first, last := rows[0], rows[len(rows)-1]
			b.ReportMetric(first.Throughput, "req/s@1node")
			b.ReportMetric(last.Throughput, "req/s@8nodes")
			b.ReportMetric(last.Throughput/first.Throughput, "speedup")
		}
	}
}

func BenchmarkFig8WCWindows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig8(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Window == 5*time.Millisecond && r.System == "SDG" {
				b.ReportMetric(r.Throughput, "sdg-words/s@5ms")
			}
			if r.Window == 150*time.Millisecond && r.System == "Naiad-HighThroughput" {
				b.ReportMetric(r.Throughput, "naiadHT-words/s@150ms")
			}
		}
	}
}

func BenchmarkFig9LRScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig9(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Nodes == 4 {
				switch r.System {
				case "SDG":
					b.ReportMetric(r.Throughput/(1<<20), "sdg-MB/s@4")
				case "Spark":
					b.ReportMetric(r.Throughput/(1<<20), "spark-MB/s@4")
				}
			}
		}
	}
}

func BenchmarkFig10Stragglers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, events, _, err := experiments.Fig10(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(series) > 0 {
			b.ReportMetric(series[0].Throughput, "req/s@start")
			b.ReportMetric(series[len(series)-1].Throughput, "req/s@end")
		}
		b.ReportMetric(float64(len(events)), "scale-events")
	}
}

func BenchmarkFig11Recovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig11(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		large := int64(24 << 20)
		for _, r := range rows {
			if r.StateBytes != large {
				continue
			}
			if r.M == 1 && r.N == 1 {
				b.ReportMetric(float64(r.Recovery.Milliseconds()), "ms-1to1@24MB")
			}
			if r.M == 2 && r.N == 2 {
				b.ReportMetric(float64(r.Recovery.Milliseconds()), "ms-2to2@24MB")
			}
		}
	}
}

func BenchmarkFig12SyncVsAsync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig12(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		large := int64(16 << 20)
		for _, r := range rows {
			if r.StateBytes != large {
				continue
			}
			switch r.Mode {
			case "sync":
				b.ReportMetric(r.Throughput, "sync-req/s@16MB")
				b.ReportMetric(float64(r.Worst.Milliseconds()), "sync-worst-ms")
			case "async":
				b.ReportMetric(r.Throughput, "async-req/s@16MB")
				b.ReportMetric(float64(r.Worst.Milliseconds()), "async-worst-ms")
			}
		}
	}
}

func BenchmarkFig13CheckpointOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		freqRows, sizeRows, _, err := experiments.Fig13(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range freqRows {
			if r.Label == "No FT" {
				b.ReportMetric(float64(r.Latency.P95.Microseconds())/1000, "noft-p95ms")
			}
		}
		if len(sizeRows) > 0 {
			last := sizeRows[len(sizeRows)-1]
			b.ReportMetric(float64(last.Latency.P95.Microseconds())/1000, "maxstate-p95ms")
		}
	}
}
