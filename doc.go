// Package repro is a Go reproduction of "Making State Explicit for
// Imperative Big Data Processing" (Fernandez, Migliavacca, Kalyvianaki,
// Pietzuch — USENIX ATC 2014): stateful dataflow graphs (SDGs) with
// partitioned and partial distributed state, asynchronous dirty-state
// checkpointing, m-to-n parallel recovery, reactive straggler scaling, and
// a translator from annotated imperative programs to executable SDGs.
//
// The public API lives in package repro/sdg; the benchmark harness in this
// package regenerates the paper's evaluation (one benchmark per table and
// figure). See README.md and DESIGN.md.
package repro
