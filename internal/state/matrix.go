package state

import (
	"fmt"
	"sync/atomic"
)

// Cost model for SizeBytes accounting on sparse matrices.
const (
	matrixCellCost = 32 // key + value + bucket share
	matrixRowCost  = 64 // inner map header share
)

// Matrix is an indexed sparse matrix SE (row -> col -> value), one of the
// paper's predefined state classes. The CF application uses two of them:
// userItem (partitioned by row/user) and coOcc (partial, replicated).
type Matrix struct {
	dirtyCtl
	base map[int64]map[int64]float64
	ovl  map[int64]map[int64]float64
	size atomic.Int64
}

// NewMatrix returns an empty sparse matrix.
func NewMatrix() *Matrix {
	return &Matrix{
		base: make(map[int64]map[int64]float64),
		ovl:  make(map[int64]map[int64]float64),
	}
}

// Type reports TypeMatrix.
func (m *Matrix) Type() StoreType { return TypeMatrix }

// Set writes cell (r, c).
func (m *Matrix) Set(r, c int64, v float64) {
	if m.baseWriteOrDirty() {
		row := m.ovl[r]
		if row == nil {
			row = make(map[int64]float64)
			m.ovl[r] = row
			m.size.Add(matrixRowCost)
		}
		if _, ok := row[c]; !ok {
			m.size.Add(matrixCellCost)
		}
		row[c] = v
		m.dmu.Unlock()
		return
	}
	row := m.base[r]
	if row == nil {
		row = make(map[int64]float64)
		m.base[r] = row
		m.size.Add(matrixRowCost)
	}
	if _, ok := row[c]; !ok {
		m.size.Add(matrixCellCost)
	}
	row[c] = v
	m.mu.Unlock()
}

// Get reads cell (r, c); missing cells are 0.
func (m *Matrix) Get(r, c int64) float64 {
	if m.dirty.Load() {
		m.dmu.RLock()
		if row, ok := m.ovl[r]; ok {
			if v, ok := row[c]; ok {
				m.dmu.RUnlock()
				return v
			}
		}
		m.dmu.RUnlock()
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	if row, ok := m.base[r]; ok {
		return row[c]
	}
	return 0
}

// Add increments cell (r, c) by delta and returns the new value.
func (m *Matrix) Add(r, c int64, delta float64) float64 {
	v := m.Get(r, c) + delta
	m.Set(r, c, v)
	return v
}

// RowVec returns a merged copy of row r (overlay over base).
func (m *Matrix) RowVec(r int64) map[int64]float64 {
	out := make(map[int64]float64)
	m.mu.RLock()
	for c, v := range m.base[r] {
		out[c] = v
	}
	m.mu.RUnlock()
	if m.dirty.Load() {
		m.dmu.RLock()
		for c, v := range m.ovl[r] {
			out[c] = v
		}
		m.dmu.RUnlock()
	}
	return out
}

// MulVec computes y[r] = sum_c M[r][c] * x[c] over the merged view. It is
// the kernel of getRec in the CF algorithm (coOcc.multiply(userRow)).
func (m *Matrix) MulVec(x map[int64]float64) map[int64]float64 {
	y := make(map[int64]float64)
	m.mu.RLock()
	for r, row := range m.base {
		s := 0.0
		for c, v := range row {
			if xv, ok := x[c]; ok {
				s += v * xv
			}
		}
		if s != 0 {
			y[r] = s
		}
	}
	m.mu.RUnlock()
	if m.dirty.Load() {
		// Lock order must match lockMerge: mu before dmu.
		m.mu.RLock()
		m.dmu.RLock()
		for r, row := range m.ovl {
			s := y[r]
			for c, v := range row {
				if xv, ok := x[c]; ok {
					// The overlay overrides the base cell; subtract the base
					// contribution before adding the overlay one.
					if brow, ok2 := m.base[r]; ok2 {
						if bv, ok3 := brow[c]; ok3 {
							s -= bv * xv
						}
					}
					s += v * xv
				}
			}
			if s != 0 {
				y[r] = s
			} else {
				delete(y, r)
			}
		}
		m.dmu.RUnlock()
		m.mu.RUnlock()
	}
	return y
}

// NumEntries reports the number of logical non-missing cells.
func (m *Matrix) NumEntries() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	m.dmu.RLock()
	defer m.dmu.RUnlock()
	n := 0
	for _, row := range m.base {
		n += len(row)
	}
	for r, row := range m.ovl {
		brow := m.base[r]
		for c := range row {
			if _, ok := brow[c]; !ok {
				n++
			}
		}
	}
	return n
}

// SizeBytes reports the approximate memory footprint.
func (m *Matrix) SizeBytes() int64 { return m.size.Load() }

// BeginDirty enters dirty mode (see Store).
func (m *Matrix) BeginDirty() error { return m.beginDirty() }

// DirtySize reports the number of overlay cells.
func (m *Matrix) DirtySize() int {
	m.dmu.RLock()
	defer m.dmu.RUnlock()
	n := 0
	for _, row := range m.ovl {
		n += len(row)
	}
	return n
}

// MergeDirty consolidates the overlay into the base (see Store).
func (m *Matrix) MergeDirty() (int, error) {
	unlock, err := m.lockMerge()
	if err != nil {
		return 0, err
	}
	defer unlock()
	n := 0
	for r, row := range m.ovl {
		brow := m.base[r]
		if brow == nil {
			brow = make(map[int64]float64, len(row))
			m.base[r] = brow
		} else {
			m.size.Add(-matrixRowCost) // overlay row merges into existing row
		}
		for c, v := range row {
			if _, ok := brow[c]; ok {
				m.size.Add(-matrixCellCost) // duplicate cell collapses
			}
			brow[c] = v
			n++
		}
	}
	m.ovl = make(map[int64]map[int64]float64)
	return n, nil
}

// Checkpoint serialises the base into n row-hash-partitioned chunks.
func (m *Matrix) Checkpoint(n int) ([]Chunk, error) {
	if n < 1 {
		return nil, ErrBadSplit
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	bodies := make([]*encoder, n)
	counts := make([]uint64, n)
	for i := range bodies {
		bodies[i] = newEncoder(int(m.size.Load())/n + 64)
	}
	for r, row := range m.base {
		p := PartitionKey(uint64(r), n)
		bodies[p].varint(r)
		bodies[p].uvarint(uint64(len(row)))
		for c, v := range row {
			bodies[p].varint(c)
			bodies[p].float64(v)
		}
		counts[p]++
	}
	chunks := make([]Chunk, n)
	for i := range chunks {
		head := newEncoder(len(bodies[i].buf) + 10)
		head.uvarint(counts[i])
		head.buf = append(head.buf, bodies[i].buf...)
		chunks[i] = Chunk{Type: TypeMatrix, Index: i, Of: n, Data: head.buf}
	}
	return chunks, nil
}

// Restore merges the given chunks into the matrix.
func (m *Matrix) Restore(chunks []Chunk) error {
	for _, c := range chunks {
		if c.Type != TypeMatrix {
			return fmt.Errorf("%w: got %v, want %v", ErrWrongChunkType, c.Type, TypeMatrix)
		}
		d := newDecoder(c.Data)
		nrows := d.uvarint()
		for i := uint64(0); i < nrows; i++ {
			r := d.varint()
			ncols := d.uvarint()
			for j := uint64(0); j < ncols; j++ {
				col := d.varint()
				v := d.float64()
				if d.err != nil {
					return d.err
				}
				m.Set(r, col, v)
			}
		}
		if d.err != nil {
			return d.err
		}
	}
	return nil
}

// Split divides the matrix into n disjoint row-partitioned matrices; the
// receiver is emptied.
func (m *Matrix) Split(n int) ([]Store, error) {
	if n < 1 {
		return nil, ErrBadSplit
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dirty.Load() {
		return nil, ErrDirtyActive
	}
	parts := make([]*Matrix, n)
	out := make([]Store, n)
	for i := range parts {
		parts[i] = NewMatrix()
		out[i] = parts[i]
	}
	for r, row := range m.base {
		p := parts[PartitionKey(uint64(r), n)]
		for c, v := range row {
			p.Set(r, c, v)
		}
	}
	m.base = make(map[int64]map[int64]float64)
	m.size.Store(0)
	return out, nil
}

func splitMatrixChunk(c Chunk, n int) ([]Chunk, error) {
	d := newDecoder(c.Data)
	nrows := d.uvarint()
	bodies := make([]*encoder, n)
	counts := make([]uint64, n)
	for i := range bodies {
		bodies[i] = newEncoder(len(c.Data)/n + 16)
	}
	for i := uint64(0); i < nrows; i++ {
		r := d.varint()
		ncols := d.uvarint()
		if d.err != nil {
			return nil, d.err
		}
		p := PartitionKey(uint64(r), n)
		bodies[p].varint(r)
		bodies[p].uvarint(ncols)
		for j := uint64(0); j < ncols; j++ {
			col := d.varint()
			v := d.float64()
			if d.err != nil {
				return nil, d.err
			}
			bodies[p].varint(col)
			bodies[p].float64(v)
		}
		counts[p]++
	}
	out := make([]Chunk, n)
	for i := range out {
		head := newEncoder(len(bodies[i].buf) + 10)
		head.uvarint(counts[i])
		head.buf = append(head.buf, bodies[i].buf...)
		out[i] = Chunk{Type: TypeMatrix, Index: i, Of: n, Data: head.buf}
	}
	return out, nil
}
