// Package state implements the state element (SE) data structures of the SDG
// model (paper §3.2) together with the fault-tolerance hooks of §5:
//
//   - every store supports the dirty-state protocol: BeginDirty redirects
//     updates into an overlay so a consistent snapshot can be serialised
//     asynchronously, and MergeDirty consolidates the overlay under a short
//     lock;
//   - checkpoints are produced as hash-partitioned chunks, which is what
//     enables the m-to-n parallel backup/restore pattern (Fig. 4);
//   - partitionable stores can be split into disjoint instances so the
//     runtime can scale partitioned SEs across nodes.
//
// Provided store types mirror the paper's predefined SE classes: KVMap
// (dictionary), Matrix (indexed sparse matrix), DenseMatrix and Vector.
package state

import (
	"errors"
	"fmt"
)

// StoreType identifies a concrete store implementation for checkpoint
// restore and chunk splitting.
type StoreType uint8

// Store type identifiers. The zero value is invalid so that a forgotten
// type field fails loudly.
const (
	TypeInvalid StoreType = iota
	TypeKVMap
	TypeMatrix
	TypeDenseMatrix
	TypeVector
	TypeShardedKVMap
)

// String names the store type.
func (t StoreType) String() string {
	switch t {
	case TypeKVMap:
		return "kvmap"
	case TypeMatrix:
		return "matrix"
	case TypeDenseMatrix:
		return "densematrix"
	case TypeVector:
		return "vector"
	case TypeShardedKVMap:
		return "sharded-kvmap"
	default:
		return fmt.Sprintf("invalid(%d)", uint8(t))
	}
}

// Chunk is one hash-partitioned fragment of a checkpoint. A full checkpoint
// of a store is the set of chunks {Index: 0..Of-1}. Chunks are
// self-describing so they can be split further at restore time (m-to-n).
// Delta marks an incremental chunk: its body carries only the entries
// changed since the previous epoch plus tombstones for deleted keys (see
// delta.go for the wire format); it is applied with ApplyDelta on top of a
// restored base instead of Restore.
type Chunk struct {
	Type  StoreType
	Index int
	Of    int
	Delta bool
	Data  []byte
}

// Errors returned by store operations.
var (
	ErrDirtyActive    = errors.New("state: dirty mode already active")
	ErrDirtyInactive  = errors.New("state: dirty mode not active")
	ErrBadChunk       = errors.New("state: malformed checkpoint chunk")
	ErrWrongChunkType = errors.New("state: chunk type does not match store")
	ErrBadSplit       = errors.New("state: invalid partition count")
	ErrDeltaInactive  = errors.New("state: delta tracking not enabled")
	ErrNotDelta       = errors.New("state: chunk is not a delta chunk")
	ErrDeltaChunk     = errors.New("state: delta chunk passed to full restore")
)

// Store is the interface every SE data structure implements. Stores are safe
// for concurrent use by multiple task element instances on the same node.
type Store interface {
	// Type identifies the concrete implementation.
	Type() StoreType
	// SizeBytes is the approximate in-memory footprint of the contents.
	SizeBytes() int64
	// NumEntries is the number of logical entries (keys, cells, elements).
	NumEntries() int

	// BeginDirty switches the store into dirty mode: subsequent updates go
	// to an overlay and the base becomes immutable, so Checkpoint can read
	// it without blocking writers. It fails if dirty mode is already active.
	BeginDirty() error
	// MergeDirty consolidates the overlay into the base under a lock and
	// leaves dirty mode. It reports the number of consolidated updates.
	MergeDirty() (int, error)
	// DirtySize reports the number of entries in the dirty overlay.
	DirtySize() int

	// Checkpoint serialises the consistent (base) contents into n chunks
	// partitioned by key hash. It must be called while dirty mode is active
	// (or on a quiescent store with n >= 1).
	Checkpoint(n int) ([]Chunk, error)
	// Restore merges the given chunks into the store. It accepts any subset
	// of a checkpoint, so partial restores build up partitioned instances.
	Restore(chunks []Chunk) error
}

// Partitionable stores can be split into disjoint instances, one per
// partition, for distributed partitioned SEs (§3.2, Fig. 2b).
type Partitionable interface {
	Store
	// Split divides the contents into n disjoint stores; the receiver is
	// left empty afterwards.
	Split(n int) ([]Store, error)
}

// DeltaStore is implemented by stores that support incremental (delta)
// checkpoints: they track the keys changed since the last committed epoch
// cut and serialise only those. The cut follows a two-phase commit so an
// aborted backup loses nothing (see delta.go): DeltaCheckpoint or CutDelta
// opens a pending cut between BeginDirty and MergeDirty, and exactly one of
// CommitDelta / AbortDelta closes it once the epoch's save succeeded or
// failed.
type DeltaStore interface {
	Store
	// EnableDeltaTracking starts recording changed keys. The first
	// checkpoint after enabling must be a full one.
	EnableDeltaTracking()
	// DeltaTracking reports whether tracking is on.
	DeltaTracking() bool
	// DeltaSize reports the number of keys changed since the last cut.
	DeltaSize() int
	// DeltaCheckpoint serialises the changed keys into n hash-partitioned
	// delta chunks and opens a pending cut. Same consistency contract as
	// Checkpoint: call while dirty mode is active or on a quiescent store.
	DeltaCheckpoint(n int) ([]Chunk, error)
	// ApplyDelta replays delta chunks (puts + tombstone deletes) onto the
	// store. Chunks of different epochs must be applied in epoch order.
	ApplyDelta(chunks []Chunk) error
	// CutDelta opens a pending cut without serialising — the cut point of a
	// full checkpoint taken while tracking is on.
	CutDelta()
	// CommitDelta closes the pending cut after a durable save.
	CommitDelta()
	// AbortDelta folds the pending cut back into the live tracker after a
	// failed save.
	AbortDelta()
}

// KV is the dictionary interface shared by the single-lock KVMap and the
// lock-striped ShardedKVMap. Task functions access dictionary SEs through
// it so deployments can swap backends without touching application code.
type KV interface {
	Store
	// Put stores value under key. The value is retained by reference;
	// callers must not mutate it afterwards.
	Put(key uint64, value []byte)
	// Get returns the value for key.
	Get(key uint64) ([]byte, bool)
	// Delete removes key, reporting whether it was (logically) present.
	Delete(key uint64) bool
	// Clear removes all entries.
	Clear()
	// ForEach visits live entries (base view only when dirty). Iteration
	// stops when fn returns false.
	ForEach(fn func(key uint64, value []byte) bool)
}

// PartitionKey maps a key to one of n partitions. It is shared by the
// checkpoint chunker, store splitting and the dataflow dispatchers so that
// "the dataflow partitioning strategy is compatible with the data access
// pattern" (§3.2): routing and storage always agree.
func PartitionKey(key uint64, n int) int {
	if n <= 1 {
		return 0
	}
	return int(mix64(key) % uint64(n))
}

// mix64 is a strong 64-bit finalizer (splitmix64) so sequential keys spread
// evenly across partitions.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// New constructs an empty store of the given type. DenseMatrix and Vector
// are created with zero dimensions; Restore resizes them.
func New(t StoreType) (Store, error) {
	switch t {
	case TypeKVMap:
		return NewKVMap(), nil
	case TypeMatrix:
		return NewMatrix(), nil
	case TypeDenseMatrix:
		return NewDenseMatrix(0, 0), nil
	case TypeVector:
		return NewVector(0), nil
	case TypeShardedKVMap:
		return NewShardedKVMap(0), nil
	default:
		return nil, fmt.Errorf("state: unknown store type %v", t)
	}
}

// SplitChunk re-partitions one checkpoint chunk into n chunks using the
// store-type-specific codec. Restore-time splitting is what lets one backup
// chunk feed n recovering SE instances in parallel (Fig. 4, step R1).
func SplitChunk(c Chunk, n int) ([]Chunk, error) {
	if n < 1 {
		return nil, ErrBadSplit
	}
	if c.Delta && c.Type != TypeKVMap && c.Type != TypeShardedKVMap {
		return nil, fmt.Errorf("%w: delta chunks exist only for dictionary stores, got %v", ErrBadChunk, c.Type)
	}
	switch c.Type {
	case TypeKVMap, TypeShardedKVMap:
		// Both dictionary backends emit the same TypeKVMap chunk format;
		// the sharded case is accepted defensively.
		if c.Delta {
			return splitKVDeltaChunk(c, n)
		}
		return splitKVChunk(c, n)
	case TypeMatrix:
		return splitMatrixChunk(c, n)
	case TypeDenseMatrix:
		return splitDenseChunk(c, n)
	case TypeVector:
		return splitVectorChunk(c, n)
	default:
		return nil, fmt.Errorf("state: cannot split chunk of type %v", c.Type)
	}
}
