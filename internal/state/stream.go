package state

// Streaming checkpoints: instead of materialising every chunk up front
// (Checkpoint's [][]byte shape, whose peak memory is the whole store
// re-encoded), a store that implements StreamCheckpointer hands out an
// iterator that encodes one bounded chunk at a time from the frozen base.
// The contract matches Checkpoint's: the base must be frozen — dirty mode
// active or the store quiescent — from the first Next until the caller is
// done, and the emitted chunks restore correctly through the ordinary
// Restore path (dictionary Restore merges chunks and ignores Index/Of, so
// a sequential stream uses Index = emission order, Of = 0).

// ChunkIter yields checkpoint chunks one at a time. Next returns the next
// chunk and ok=true, or ok=false when the stream is exhausted (err != nil
// reports a mid-stream failure; the iterator is then dead).
type ChunkIter interface {
	Next() (c Chunk, ok bool, err error)
}

// StreamCheckpointer is implemented by stores that can emit their
// checkpoint as a bounded-chunk stream. maxBytes bounds each chunk's
// encoded payload (best effort: one oversized entry still becomes one
// chunk).
type StreamCheckpointer interface {
	CheckpointStream(maxBytes int) (ChunkIter, error)
}

// sliceIter adapts a materialised chunk slice to ChunkIter — the fallback
// for stores without a native stream implementation.
type sliceIter struct {
	chunks []Chunk
}

func (s *sliceIter) Next() (Chunk, bool, error) {
	if len(s.chunks) == 0 {
		return Chunk{}, false, nil
	}
	c := s.chunks[0]
	s.chunks = s.chunks[1:]
	return c, true, nil
}

// StreamChunks returns a chunk iterator for any store: natively streamed
// when the store supports it, otherwise a materialised Checkpoint split
// into enough partitions that each is likely under maxBytes. Matrix and
// vector stores are small dense blocks in this codebase, so the fallback's
// materialisation is acceptable there.
func StreamChunks(st Store, maxBytes int) (ChunkIter, error) {
	if maxBytes < 1 {
		return nil, ErrBadSplit
	}
	if sc, ok := st.(StreamCheckpointer); ok {
		return sc.CheckpointStream(maxBytes)
	}
	n := int(st.SizeBytes()/int64(maxBytes)) + 1
	chunks, err := st.Checkpoint(n)
	if err != nil {
		return nil, err
	}
	return &sliceIter{chunks: chunks}, nil
}

// kvStreamIter streams one KVMap's base as bounded chunks. Keys are
// captured eagerly under the read lock (8 bytes per key — the cheap part);
// values are re-read and encoded lazily per chunk, so peak extra memory is
// one chunk, not the whole store.
type kvStreamIter struct {
	m        *KVMap
	keys     []uint64
	pos      int
	maxBytes int
	emitted  int
}

// CheckpointStream implements StreamCheckpointer. The caller must hold the
// base frozen (dirty mode or quiescence) until the iterator is drained.
func (m *KVMap) CheckpointStream(maxBytes int) (ChunkIter, error) {
	if maxBytes < 1 {
		return nil, ErrBadSplit
	}
	m.mu.RLock()
	keys := make([]uint64, 0, len(m.base))
	for k := range m.base {
		keys = append(keys, k)
	}
	m.mu.RUnlock()
	return &kvStreamIter{m: m, keys: keys, maxBytes: maxBytes}, nil
}

func (it *kvStreamIter) Next() (Chunk, bool, error) {
	if it.pos >= len(it.keys) {
		return Chunk{}, false, nil
	}
	body := newEncoder(it.maxBytes + 64)
	var count uint64
	it.m.mu.RLock()
	for it.pos < len(it.keys) && len(body.buf) < it.maxBytes {
		k := it.keys[it.pos]
		it.pos++
		v, ok := it.m.base[k]
		if !ok {
			// The freeze contract makes this unreachable; skip defensively
			// rather than emit a stale entry.
			continue
		}
		body.uvarint(k)
		body.bytes(v)
		count++
	}
	it.m.mu.RUnlock()
	if count == 0 {
		return Chunk{}, false, nil
	}
	head := newEncoder(len(body.buf) + 10)
	head.uvarint(count)
	head.buf = append(head.buf, body.buf...)
	c := Chunk{Type: TypeKVMap, Index: it.emitted, Of: 0, Data: head.buf}
	it.emitted++
	return c, true, nil
}

// shardedStreamIter streams a ShardedKVMap shard by shard. Key capture is
// lazy per shard, so even the capture overhead stays at one shard's keys.
type shardedStreamIter struct {
	m        *ShardedKVMap
	shard    int
	keys     []uint64
	pos      int
	maxBytes int
	emitted  int
}

// CheckpointStream implements StreamCheckpointer; same freeze contract as
// KVMap's.
func (m *ShardedKVMap) CheckpointStream(maxBytes int) (ChunkIter, error) {
	if maxBytes < 1 {
		return nil, ErrBadSplit
	}
	return &shardedStreamIter{m: m, maxBytes: maxBytes}, nil
}

func (it *shardedStreamIter) Next() (Chunk, bool, error) {
	body := newEncoder(it.maxBytes + 64)
	var count uint64
	for len(body.buf) < it.maxBytes && it.shard < len(it.m.shards) {
		s := it.m.shards[it.shard]
		if it.keys == nil {
			s.mu.RLock()
			it.keys = make([]uint64, 0, len(s.base))
			for k := range s.base {
				it.keys = append(it.keys, k)
			}
			s.mu.RUnlock()
			it.pos = 0
		}
		s.mu.RLock()
		for it.pos < len(it.keys) && len(body.buf) < it.maxBytes {
			k := it.keys[it.pos]
			it.pos++
			v, ok := s.base[k]
			if !ok {
				continue
			}
			body.uvarint(k)
			body.bytes(v)
			count++
		}
		s.mu.RUnlock()
		if it.pos >= len(it.keys) {
			it.shard++
			it.keys = nil
		}
	}
	if count == 0 {
		return Chunk{}, false, nil
	}
	head := newEncoder(len(body.buf) + 10)
	head.uvarint(count)
	head.buf = append(head.buf, body.buf...)
	c := Chunk{Type: TypeKVMap, Index: it.emitted, Of: 0, Data: head.buf}
	it.emitted++
	return c, true, nil
}
