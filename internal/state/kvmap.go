package state

import (
	"fmt"
	"sync/atomic"
)

// kvEntryOverhead approximates the per-entry bookkeeping cost (map bucket
// share, slice header) used for SizeBytes accounting.
const kvEntryOverhead = 48

// KVMap is a dictionary SE: a hash map from uint64 keys to byte values with
// dirty-state support and hash-partitioned checkpoints. It backs the
// key/value store application used throughout the paper's evaluation.
type KVMap struct {
	dirtyCtl
	base  map[uint64][]byte
	ovl   map[uint64][]byte   // dirty overlay; nil values are not allowed
	tomb  map[uint64]struct{} // keys deleted while dirty
	size  atomic.Int64        // approximate bytes; atomic because both lock domains update it
	delta deltaTrack          // changed-key tracker for incremental checkpoints
}

// NewKVMap returns an empty dictionary store.
func NewKVMap() *KVMap {
	return &KVMap{
		base: make(map[uint64][]byte),
		ovl:  make(map[uint64][]byte),
		tomb: make(map[uint64]struct{}),
	}
}

// Type reports TypeKVMap.
func (m *KVMap) Type() StoreType { return TypeKVMap }

// Put stores value under key. The value is retained by reference; callers
// must not mutate it afterwards.
func (m *KVMap) Put(key uint64, value []byte) {
	if m.baseWriteOrDirty() {
		if old, ok := m.ovl[key]; ok {
			m.size.Add(-int64(len(old)))
		} else {
			m.size.Add(kvEntryOverhead + 8)
		}
		m.ovl[key] = value
		delete(m.tomb, key)
		m.size.Add(int64(len(value)))
		m.dmu.Unlock()
		return
	}
	if old, ok := m.base[key]; ok {
		m.size.Add(-int64(len(old)))
	} else {
		m.size.Add(kvEntryOverhead + 8)
	}
	m.base[key] = value
	m.size.Add(int64(len(value)))
	m.delta.record(key)
	m.mu.Unlock()
}

// Get returns the value for key. In dirty mode the overlay is consulted
// first, then the base (§5: "reads are first served by the dirty state and,
// only on a miss, by the dictionary").
func (m *KVMap) Get(key uint64) ([]byte, bool) {
	if m.dirty.Load() {
		m.dmu.RLock()
		if v, ok := m.ovl[key]; ok {
			m.dmu.RUnlock()
			return v, true
		}
		if _, dead := m.tomb[key]; dead {
			m.dmu.RUnlock()
			return nil, false
		}
		m.dmu.RUnlock()
	}
	m.mu.RLock()
	v, ok := m.base[key]
	m.mu.RUnlock()
	return v, ok
}

// Delete removes key, reporting whether it was (logically) present.
func (m *KVMap) Delete(key uint64) bool {
	if m.baseWriteOrDirty() {
		_, inOvl := m.ovl[key]
		_, wasDead := m.tomb[key]
		if inOvl {
			m.size.Add(-(int64(len(m.ovl[key])) + kvEntryOverhead + 8))
			delete(m.ovl, key)
		}
		m.tomb[key] = struct{}{}
		m.dmu.Unlock()
		if inOvl {
			return true
		}
		if wasDead {
			// Already logically deleted; the base copy is a stale snapshot.
			return false
		}
		// Known benign race: a MergeDirty landing between the dmu release
		// above and this base probe consumes the tombstone and removes the
		// key, so a logically-present key can be reported absent. Closing
		// it would need dmu held across the base read, inverting the
		// mu-before-dmu lock order; the return value is advisory only.
		m.mu.RLock()
		_, inBase := m.base[key]
		m.mu.RUnlock()
		return inBase
	}
	old, ok := m.base[key]
	if ok {
		m.size.Add(-(int64(len(old)) + kvEntryOverhead + 8))
		delete(m.base, key)
		m.delta.record(key)
	}
	m.mu.Unlock()
	return ok
}

// NumEntries reports the logical number of live keys.
func (m *KVMap) NumEntries() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	m.dmu.RLock()
	defer m.dmu.RUnlock()
	n := len(m.base)
	for k := range m.ovl {
		if _, inBase := m.base[k]; !inBase {
			n++
		}
	}
	for k := range m.tomb {
		if _, inBase := m.base[k]; inBase {
			n--
		}
	}
	return n
}

// SizeBytes reports the approximate memory footprint.
func (m *KVMap) SizeBytes() int64 { return m.size.Load() }

// BeginDirty enters dirty mode (see Store).
func (m *KVMap) BeginDirty() error { return m.beginDirty() }

// DirtySize reports the number of overlay entries plus tombstones.
func (m *KVMap) DirtySize() int {
	m.dmu.RLock()
	defer m.dmu.RUnlock()
	return len(m.ovl) + len(m.tomb)
}

// MergeDirty consolidates the overlay into the base (see Store).
func (m *KVMap) MergeDirty() (int, error) {
	unlock, err := m.lockMerge()
	if err != nil {
		return 0, err
	}
	defer unlock()
	n := len(m.ovl) + len(m.tomb)
	// Retain the merged overlay: the window's updates and tombstones belong
	// to the next delta epoch.
	m.delta.noteMerge(m.ovl, m.tomb)
	for k, v := range m.ovl {
		if old, ok := m.base[k]; ok {
			// Both copies were counted while dirty; drop the stale one.
			m.size.Add(-(int64(len(old)) + kvEntryOverhead + 8))
		}
		m.base[k] = v
	}
	for k := range m.tomb {
		if old, ok := m.base[k]; ok {
			m.size.Add(-(int64(len(old)) + kvEntryOverhead + 8))
			delete(m.base, k)
		}
	}
	m.ovl = make(map[uint64][]byte)
	m.tomb = make(map[uint64]struct{})
	return n, nil
}

// Checkpoint serialises the base into n hash-partitioned chunks.
func (m *KVMap) Checkpoint(n int) ([]Chunk, error) {
	if n < 1 {
		return nil, ErrBadSplit
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	encs := make([]*encoder, n)
	counts := make([]uint64, n)
	hint := 64
	if len(m.base) > 0 {
		hint = int(m.size.Load())/n + 64
	}
	for i := range encs {
		encs[i] = newEncoder(hint)
	}
	// First pass layout: count placeholder is appended at the end instead,
	// so we emit entries first into per-partition body encoders.
	for k, v := range m.base {
		p := PartitionKey(k, n)
		encs[p].uvarint(k)
		encs[p].bytes(v)
		counts[p]++
	}
	chunks := make([]Chunk, n)
	for i := range chunks {
		head := newEncoder(len(encs[i].buf) + 10)
		head.uvarint(counts[i])
		head.buf = append(head.buf, encs[i].buf...)
		chunks[i] = Chunk{Type: TypeKVMap, Index: i, Of: n, Data: head.buf}
	}
	return chunks, nil
}

// Restore merges the given chunks into the base.
func (m *KVMap) Restore(chunks []Chunk) error {
	for _, c := range chunks {
		if c.Type != TypeKVMap {
			return fmt.Errorf("%w: got %v, want %v", ErrWrongChunkType, c.Type, TypeKVMap)
		}
		if c.Delta {
			return ErrDeltaChunk
		}
		d := newDecoder(c.Data)
		count := d.uvarint()
		for i := uint64(0); i < count; i++ {
			k := d.uvarint()
			v := d.bytes()
			if d.err != nil {
				return d.err
			}
			m.Put(k, v)
		}
		if d.err != nil {
			return d.err
		}
	}
	return nil
}

// Split divides the map into n disjoint KVMaps; the receiver is emptied.
func (m *KVMap) Split(n int) ([]Store, error) {
	if n < 1 {
		return nil, ErrBadSplit
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dirty.Load() {
		return nil, ErrDirtyActive
	}
	out := make([]Store, n)
	parts := make([]*KVMap, n)
	for i := range parts {
		parts[i] = NewKVMap()
		out[i] = parts[i]
	}
	for k, v := range m.base {
		parts[PartitionKey(k, n)].Put(k, v)
	}
	m.delta.noteBase(m.base) // moved-out keys need tombstones in the next delta
	m.base = make(map[uint64][]byte)
	m.size.Store(0)
	return out, nil
}

// Clear removes all entries. In dirty mode the base keys are tombstoned in
// the overlay so the in-flight checkpoint still sees the pre-clear state;
// otherwise the base is dropped wholesale. Windowed applications use it to
// rotate state between windows.
func (m *KVMap) Clear() {
	for {
		if m.dirty.Load() {
			// Lock order: mu before dmu. Both locks are held together so
			// the dirty flag cannot flip mid-clear (BeginDirty needs mu
			// exclusively, MergeDirty needs both): a flip after the keys
			// were collected would plant stale tombstones that delete
			// live data at the next checkpoint.
			m.mu.RLock()
			if !m.dirty.Load() {
				m.mu.RUnlock()
				continue // MergeDirty won the race; take the base path
			}
			m.dmu.Lock()
			for _, v := range m.ovl {
				m.size.Add(-(int64(len(v)) + kvEntryOverhead + 8))
			}
			m.ovl = make(map[uint64][]byte)
			for k := range m.base {
				m.tomb[k] = struct{}{}
			}
			m.dmu.Unlock()
			m.mu.RUnlock()
			return
		}
		m.mu.Lock()
		if m.dirty.Load() {
			m.mu.Unlock()
			continue // lost the race with BeginDirty; take the overlay path
		}
		m.delta.noteBase(m.base) // wiped keys need tombstones in the next delta
		m.base = make(map[uint64][]byte)
		m.size.Store(0)
		m.mu.Unlock()
		return
	}
}

// ForEach visits live entries (base view only when dirty). Iteration stops
// when fn returns false.
func (m *KVMap) ForEach(fn func(key uint64, value []byte) bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for k, v := range m.base {
		if !fn(k, v) {
			return
		}
	}
}

func splitKVChunk(c Chunk, n int) ([]Chunk, error) {
	d := newDecoder(c.Data)
	count := d.uvarint()
	bodies := make([]*encoder, n)
	counts := make([]uint64, n)
	for i := range bodies {
		bodies[i] = newEncoder(len(c.Data)/n + 16)
	}
	for i := uint64(0); i < count; i++ {
		k := d.uvarint()
		v := d.bytes()
		if d.err != nil {
			return nil, d.err
		}
		p := PartitionKey(k, n)
		bodies[p].uvarint(k)
		bodies[p].bytes(v)
		counts[p]++
	}
	if d.err != nil {
		return nil, d.err
	}
	out := make([]Chunk, n)
	for i := range out {
		head := newEncoder(len(bodies[i].buf) + 10)
		head.uvarint(counts[i])
		head.buf = append(head.buf, bodies[i].buf...)
		out[i] = Chunk{Type: TypeKVMap, Index: i, Of: n, Data: head.buf}
	}
	return out, nil
}
