package state

import (
	"bytes"
	"testing"
	"testing/quick"
)

// Property: for any key set, checkpoint(n) -> restore reproduces the map
// exactly, for any chunk count — for every (source, destination) pairing of
// the dictionary backends.
func TestQuickKVMapCheckpointRoundTrip(t *testing.T) {
	for _, src := range kvImpls {
		for _, dst := range kvImpls {
			t.Run(src.name+"-to-"+dst.name, func(t *testing.T) {
				f := func(keys []uint64, vals [][]byte, nChunks uint8) bool {
					n := int(nChunks%8) + 1
					m := src.new()
					want := map[uint64][]byte{}
					for i, k := range keys {
						var v []byte
						if i < len(vals) {
							v = vals[i]
						}
						if v == nil {
							v = []byte{}
						}
						m.Put(k, v)
						want[k] = v
					}
					chunks, err := m.Checkpoint(n)
					if err != nil {
						return false
					}
					r := dst.new()
					if err := r.Restore(chunks); err != nil {
						return false
					}
					if r.NumEntries() != len(want) {
						return false
					}
					for k, v := range want {
						got, ok := r.Get(k)
						if !ok || !bytes.Equal(got, v) {
							return false
						}
					}
					return true
				}
				if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// Property: SplitChunk composes with Restore: restoring the split chunks is
// identical to restoring the original chunk.
func TestQuickKVMapSplitChunk(t *testing.T) {
	for _, impl := range kvImpls {
		t.Run(impl.name, func(t *testing.T) {
			f := func(keys []uint64, splitN uint8) bool {
				n := int(splitN%6) + 1
				m := impl.new()
				for _, k := range keys {
					m.Put(k, []byte{byte(k)})
				}
				one, err := m.Checkpoint(1)
				if err != nil {
					return false
				}
				split, err := SplitChunk(one[0], n)
				if err != nil {
					return false
				}
				a := impl.new()
				if err := a.Restore(one); err != nil {
					return false
				}
				b := impl.new()
				if err := b.Restore(split); err != nil {
					return false
				}
				if a.NumEntries() != b.NumEntries() {
					return false
				}
				equal := true
				a.ForEach(func(k uint64, v []byte) bool {
					got, ok := b.Get(k)
					if !ok || !bytes.Equal(got, v) {
						equal = false
						return false
					}
					return true
				})
				return equal
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
				t.Error(err)
			}
		})
	}
}

// Property: dirty mode is transparent — an interleaving of writes with a
// BeginDirty/MergeDirty cycle ends in the same logical contents as applying
// the writes directly.
func TestQuickKVMapDirtyTransparency(t *testing.T) {
	type op struct {
		Key uint64
		Val byte
		Del bool
	}
	for _, impl := range kvImpls {
		t.Run(impl.name, func(t *testing.T) {
			f := func(before, during []op) bool {
				dirty := impl.new()
				plain := impl.new()
				apply := func(m KV, o op) {
					if o.Del {
						m.Delete(o.Key % 32)
					} else {
						m.Put(o.Key%32, []byte{o.Val})
					}
				}
				for _, o := range before {
					apply(dirty, o)
					apply(plain, o)
				}
				if err := dirty.BeginDirty(); err != nil {
					return false
				}
				for _, o := range during {
					apply(dirty, o)
					apply(plain, o)
				}
				if _, err := dirty.MergeDirty(); err != nil {
					return false
				}
				if dirty.NumEntries() != plain.NumEntries() {
					return false
				}
				equal := true
				plain.ForEach(func(k uint64, v []byte) bool {
					got, ok := dirty.Get(k)
					if !ok || !bytes.Equal(got, v) {
						equal = false
						return false
					}
					return true
				})
				return equal
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
				t.Error(err)
			}
		})
	}
}

// Property: matrix split partitions are disjoint and complete.
func TestQuickMatrixSplit(t *testing.T) {
	f := func(cells []int16, nParts uint8) bool {
		n := int(nParts%5) + 1
		m := NewMatrix()
		want := map[[2]int64]float64{}
		for i, c := range cells {
			r, col := int64(c/16), int64(c%16)
			v := float64(i + 1)
			m.Set(r, col, v)
			want[[2]int64{r, col}] = v
		}
		parts, err := m.Split(n)
		if err != nil {
			return false
		}
		total := 0
		for pi, p := range parts {
			mm := p.(*Matrix)
			total += mm.NumEntries()
			for rc, v := range want {
				got := mm.Get(rc[0], rc[1])
				owner := PartitionKey(uint64(rc[0]), n)
				if pi == owner && got != v {
					return false
				}
				if pi != owner && got != 0 {
					return false
				}
			}
		}
		return total == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: vector checkpoint/restore round-trips through arbitrary chunk
// splits.
func TestQuickVectorRoundTrip(t *testing.T) {
	f := func(vals []float64, nChunks, splitN uint8) bool {
		n := int(nChunks%4) + 1
		sn := int(splitN%4) + 1
		if len(vals) > 256 {
			vals = vals[:256]
		}
		v := NewVector(len(vals))
		for i, x := range vals {
			v.Set(i, x)
		}
		chunks, err := v.Checkpoint(n)
		if err != nil {
			return false
		}
		var all []Chunk
		for _, c := range chunks {
			sub, err := SplitChunk(c, sn)
			if err != nil {
				return false
			}
			all = append(all, sub...)
		}
		r := NewVector(0)
		if err := r.Restore(all); err != nil {
			return false
		}
		if r.Len() != len(vals) {
			return false
		}
		for i, x := range vals {
			if r.Get(i) != x {
				// NaN never compares equal; skip those inputs.
				if x != x {
					continue
				}
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
