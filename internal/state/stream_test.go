package state

import (
	"bytes"
	"fmt"
	"testing"
)

// drainStream pulls every chunk out of a store's streaming checkpoint.
func drainStream(t *testing.T, st Store, maxBytes int) []Chunk {
	t.Helper()
	iter, err := StreamChunks(st, maxBytes)
	if err != nil {
		t.Fatalf("StreamChunks: %v", err)
	}
	var chunks []Chunk
	for {
		ck, ok, err := iter.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			return chunks
		}
		chunks = append(chunks, ck)
	}
}

// fillStreamKV loads n deterministic entries.
func fillStreamKV(put func(uint64, []byte), n int) {
	for i := 0; i < n; i++ {
		put(uint64(i), []byte(fmt.Sprintf("value-%04d-%s", i, string(make([]byte, i%32)))))
	}
}

// restoreEqualKV restores chunks into a fresh store of the same flavor and
// requires identical contents.
func restoreEqualKV(t *testing.T, src KV, chunks []Chunk, dst Store) {
	t.Helper()
	if err := dst.Restore(chunks); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	dkv := dst.(KV)
	n := 0
	src.ForEach(func(k uint64, v []byte) bool {
		n++
		got, ok := dkv.Get(k)
		if !ok || !bytes.Equal(got, v) {
			t.Fatalf("key %d: restored %q ok=%v, want %q", k, got, ok, v)
		}
		return true
	})
	restored := 0
	dkv.ForEach(func(uint64, []byte) bool { restored++; return true })
	if restored != n {
		t.Fatalf("restored %d keys, want %d", restored, n)
	}
}

// TestKVMapStreamRestoreEquivalence: a streamed checkpoint restores to the
// same contents as the store it came from, across several budgets.
func TestKVMapStreamRestoreEquivalence(t *testing.T) {
	for _, maxBytes := range []int{64, 1024, 1 << 20} {
		m := NewKVMap()
		fillStreamKV(m.Put, 500)
		chunks := drainStream(t, m, maxBytes)
		if maxBytes < int(m.SizeBytes()) && len(chunks) < 2 {
			t.Fatalf("maxBytes=%d: %d chunk(s), expected a split", maxBytes, len(chunks))
		}
		for i, ck := range chunks {
			if ck.Type != TypeKVMap {
				t.Fatalf("chunk %d type %v, want TypeKVMap", i, ck.Type)
			}
		}
		restoreEqualKV(t, m, chunks, NewKVMap())
	}
}

// TestShardedKVStreamRestoreEquivalence mirrors the KVMap test across the
// striped backend, restoring into both backends (chunks are
// backend-portable: both emit TypeKVMap).
func TestShardedKVStreamRestoreEquivalence(t *testing.T) {
	m := NewShardedKVMap(8)
	fillStreamKV(m.Put, 500)
	chunks := drainStream(t, m, 512)
	if len(chunks) < 2 {
		t.Fatalf("%d chunk(s), expected a split", len(chunks))
	}
	restoreEqualKV(t, m, chunks, NewShardedKVMap(4))
	restoreEqualKV(t, m, chunks, NewKVMap())
}

// TestStreamChunkBudget: every chunk but possibly the last stays within the
// budget modulo one entry's overshoot (the bound is per-part best effort —
// one oversized entry may exceed it, but a chunk never packs a second entry
// once past the budget).
func TestStreamChunkBudget(t *testing.T) {
	const maxBytes = 256
	m := NewKVMap()
	for i := 0; i < 200; i++ {
		m.Put(uint64(i), make([]byte, 40)) // entry encodes well under maxBytes
	}
	chunks := drainStream(t, m, maxBytes)
	const largest = 64 // generous bound for one encoded 40-byte entry
	for i, ck := range chunks {
		if len(ck.Data) > maxBytes+largest {
			t.Fatalf("chunk %d is %d bytes, budget %d + one entry", i, len(ck.Data), maxBytes)
		}
	}
}

// TestStreamDirtyCutExcludesOverlay: writes made while a stream is open
// (dirty mode) must not leak into the streamed base.
func TestStreamDirtyCutExcludesOverlay(t *testing.T) {
	m := NewKVMap()
	fillStreamKV(m.Put, 100)
	if err := m.BeginDirty(); err != nil {
		t.Fatalf("BeginDirty: %v", err)
	}
	iter, err := StreamChunks(m, 512)
	if err != nil {
		t.Fatalf("StreamChunks: %v", err)
	}
	// Mutate behind the cut: overwrite, add, delete.
	m.Put(0, []byte("overwritten-after-cut"))
	m.Put(9999, []byte("new-after-cut"))
	m.Delete(1)
	var chunks []Chunk
	for {
		ck, ok, err := iter.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			break
		}
		chunks = append(chunks, ck)
	}
	if _, err := m.MergeDirty(); err != nil {
		t.Fatalf("MergeDirty: %v", err)
	}
	dst := NewKVMap()
	if err := dst.Restore(chunks); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if v, ok := dst.Get(0); !ok || bytes.Equal(v, []byte("overwritten-after-cut")) {
		t.Fatalf("key 0 leaked the post-cut overwrite: %q ok=%v", v, ok)
	}
	if _, ok := dst.Get(9999); ok {
		t.Fatal("post-cut insert leaked into the stream")
	}
	if _, ok := dst.Get(1); !ok {
		t.Fatal("post-cut delete leaked into the stream")
	}
	// And the live store sees the overlay after the merge.
	if v, ok := m.Get(0); !ok || !bytes.Equal(v, []byte("overwritten-after-cut")) {
		t.Fatalf("live store lost the overlay write: %q ok=%v", v, ok)
	}
}

// TestStreamChunksBadBudget: a non-positive budget is an explicit error.
func TestStreamChunksBadBudget(t *testing.T) {
	m := NewKVMap()
	if _, err := StreamChunks(m, 0); err == nil {
		t.Fatal("budget 0 accepted")
	}
	if _, err := StreamChunks(m, -1); err == nil {
		t.Fatal("negative budget accepted")
	}
}
