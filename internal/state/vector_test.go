package state

import (
	"math"
	"testing"
)

func TestVectorBasic(t *testing.T) {
	v := NewVector(4)
	if v.Len() != 4 || v.NumEntries() != 4 {
		t.Fatalf("Len = %d", v.Len())
	}
	v.Set(0, 1.5)
	v.Set(3, -2.0)
	if v.Get(0) != 1.5 || v.Get(3) != -2.0 {
		t.Fatal("set/get failed")
	}
	if v.Get(-1) != 0 || v.Get(10) != 0 {
		t.Fatal("out-of-range get should be 0")
	}
	if got := v.Add(0, 0.5); got != 2.0 {
		t.Fatalf("Add = %f", got)
	}
	if v.Type() != TypeVector {
		t.Fatal("wrong type")
	}
}

func TestVectorResize(t *testing.T) {
	v := NewVector(2)
	v.Set(1, 7)
	if err := v.Resize(5); err != nil {
		t.Fatal(err)
	}
	if v.Len() != 5 || v.Get(1) != 7 {
		t.Fatal("resize lost data")
	}
	if err := v.Resize(3); err != nil {
		t.Fatal(err)
	}
	if v.Len() != 5 {
		t.Fatal("resize should never shrink")
	}
	_ = v.BeginDirty()
	if err := v.Resize(10); err != ErrDirtyActive {
		t.Fatalf("Resize while dirty err = %v", err)
	}
}

func TestVectorDotAddScaled(t *testing.T) {
	v := NewVector(3)
	v.Set(0, 1)
	v.Set(1, 2)
	v.Set(2, 3)
	if d := v.Dot([]float64{1, 1, 1}); d != 6 {
		t.Fatalf("Dot = %f", d)
	}
	v.AddScaled([]float64{1, 1, 1}, 2)
	want := []float64{3, 4, 5}
	for i, w := range want {
		if v.Get(i) != w {
			t.Fatalf("AddScaled[%d] = %f, want %f", i, v.Get(i), w)
		}
	}
}

func TestVectorDirtyProtocol(t *testing.T) {
	v := NewVector(3)
	v.Set(0, 1)
	if err := v.BeginDirty(); err != nil {
		t.Fatal(err)
	}
	v.Set(0, 10)
	v.Set(2, 30)
	v.AddScaled([]float64{1, 1, 1}, 1) // goes through overlay path
	if v.Get(0) != 11 || v.Get(1) != 1 || v.Get(2) != 31 {
		t.Fatalf("dirty reads = %f %f %f", v.Get(0), v.Get(1), v.Get(2))
	}
	chunks, err := v.Checkpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	r := NewVector(0)
	if err := r.Restore(chunks); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Fatalf("restored len = %d", r.Len())
	}
	if r.Get(0) != 1 || r.Get(2) != 0 {
		t.Fatalf("checkpoint leaked dirty state: %f %f", r.Get(0), r.Get(2))
	}
	if v.DirtySize() == 0 {
		t.Fatal("expected overlay entries")
	}
	if _, err := v.MergeDirty(); err != nil {
		t.Fatal(err)
	}
	if v.Get(0) != 11 || v.Get(2) != 31 {
		t.Fatal("merge lost overlay")
	}
	snap := v.Snapshot()
	if len(snap) != 3 || snap[0] != 11 {
		t.Fatalf("Snapshot = %v", snap)
	}
}

func TestVectorCheckpointRoundTrip(t *testing.T) {
	v := NewVector(100)
	for i := 0; i < 100; i += 3 {
		v.Set(i, float64(i)+0.25)
	}
	for _, n := range []int{1, 4} {
		chunks, err := v.Checkpoint(n)
		if err != nil {
			t.Fatal(err)
		}
		r := NewVector(0)
		if err := r.Restore(chunks); err != nil {
			t.Fatal(err)
		}
		if r.Len() != 100 {
			t.Fatalf("len = %d", r.Len())
		}
		for i := 0; i < 100; i++ {
			want := 0.0
			if i%3 == 0 {
				want = float64(i) + 0.25
			}
			if got := r.Get(i); math.Abs(got-want) > 1e-12 {
				t.Fatalf("n=%d elem %d = %f, want %f", n, i, got, want)
			}
		}
	}
}

func TestVectorSplitAndChunkSplit(t *testing.T) {
	v := NewVector(50)
	for i := 0; i < 50; i++ {
		v.Set(i, float64(i+1))
	}
	parts, err := v.Split(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		owner := PartitionKey(uint64(i), 3)
		for pi, p := range parts {
			got := p.(*Vector).Get(i)
			if pi == owner && got != float64(i+1) {
				t.Fatalf("elem %d missing from owner %d", i, pi)
			}
			if pi != owner && got != 0 {
				t.Fatalf("elem %d leaked into %d", i, pi)
			}
		}
		if v.Get(i) != 0 {
			t.Fatal("receiver not zeroed")
		}
	}

	v2 := NewVector(50)
	for i := 0; i < 50; i++ {
		v2.Set(i, float64(i+1))
	}
	one, _ := v2.Checkpoint(1)
	split, err := SplitChunk(one[0], 4)
	if err != nil {
		t.Fatal(err)
	}
	r := NewVector(0)
	if err := r.Restore(split); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if r.Get(i) != float64(i+1) {
			t.Fatalf("elem %d = %f", i, r.Get(i))
		}
	}
}

func TestDenseMatrixBasic(t *testing.T) {
	m := NewDenseMatrix(3, 2)
	r, c := m.Dims()
	if r != 3 || c != 2 {
		t.Fatalf("dims = %d,%d", r, c)
	}
	m.Set(0, 0, 1)
	m.Set(2, 1, 5)
	if m.Get(0, 0) != 1 || m.Get(2, 1) != 5 {
		t.Fatal("set/get failed")
	}
	if m.Get(5, 5) != 0 {
		t.Fatal("out-of-range get should be 0")
	}
	m.Set(9, 9, 1) // silent no-op
	if m.Add(0, 0, 2) != 3 {
		t.Fatal("Add failed")
	}
	if m.NumEntries() != 6 {
		t.Fatalf("NumEntries = %d", m.NumEntries())
	}
	if m.Type() != TypeDenseMatrix {
		t.Fatal("wrong type")
	}
}

func TestDenseMatrixMulVec(t *testing.T) {
	m := NewDenseMatrix(2, 3)
	// [1 2 3; 4 5 6]
	vals := [][]float64{{1, 2, 3}, {4, 5, 6}}
	for r := range vals {
		for c := range vals[r] {
			m.Set(r, c, vals[r][c])
		}
	}
	y, err := m.MulVec([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v", y)
	}
	if _, err := m.MulVec([]float64{1}); err == nil {
		t.Fatal("dimension mismatch should error")
	}
	// Overlay-aware MulVec.
	_ = m.BeginDirty()
	m.Set(0, 0, 10)
	y2, err := m.MulVec([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y2[0] != 15 {
		t.Fatalf("dirty MulVec y[0] = %f, want 15", y2[0])
	}
}

func TestDenseMatrixDirtyAndCheckpoint(t *testing.T) {
	m := NewDenseMatrix(4, 4)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			m.Set(r, c, float64(r*4+c))
		}
	}
	_ = m.BeginDirty()
	m.Set(0, 0, 99)
	chunks, err := m.Checkpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	rm := NewDenseMatrix(0, 0)
	if err := rm.Restore(chunks); err != nil {
		t.Fatal(err)
	}
	rr, cc := rm.Dims()
	if rr != 4 || cc != 4 {
		t.Fatalf("restored dims %dx%d", rr, cc)
	}
	if rm.Get(0, 0) != 0 {
		t.Fatalf("checkpoint leaked dirty write: %f", rm.Get(0, 0))
	}
	if rm.Get(3, 3) != 15 {
		t.Fatalf("restore lost cell: %f", rm.Get(3, 3))
	}
	if _, err := m.MergeDirty(); err != nil {
		t.Fatal(err)
	}
	if m.Get(0, 0) != 99 {
		t.Fatal("merge lost overlay")
	}
}

func TestDenseMatrixSplitAndChunkSplit(t *testing.T) {
	m := NewDenseMatrix(10, 2)
	for r := 0; r < 10; r++ {
		m.Set(r, 0, float64(r+1))
	}
	parts, err := m.Split(2)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 10; r++ {
		owner := PartitionKey(uint64(r), 2)
		for pi, p := range parts {
			got := p.(*DenseMatrix).Get(r, 0)
			if pi == owner && got != float64(r+1) {
				t.Fatalf("row %d missing from owner", r)
			}
			if pi != owner && got != 0 {
				t.Fatalf("row %d leaked", r)
			}
		}
	}

	m2 := NewDenseMatrix(6, 3)
	for r := 0; r < 6; r++ {
		for c := 0; c < 3; c++ {
			m2.Set(r, c, float64(r*3+c+1))
		}
	}
	one, _ := m2.Checkpoint(1)
	split, err := SplitChunk(one[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	rm := NewDenseMatrix(0, 0)
	if err := rm.Restore(split); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 6; r++ {
		for c := 0; c < 3; c++ {
			if rm.Get(r, c) != float64(r*3+c+1) {
				t.Fatalf("cell (%d,%d) = %f", r, c, rm.Get(r, c))
			}
		}
	}
}

func TestNewByType(t *testing.T) {
	for _, tt := range []StoreType{TypeKVMap, TypeMatrix, TypeDenseMatrix, TypeVector, TypeShardedKVMap} {
		s, err := New(tt)
		if err != nil {
			t.Fatalf("New(%v): %v", tt, err)
		}
		if s.Type() != tt {
			t.Fatalf("New(%v).Type() = %v", tt, s.Type())
		}
		if tt.String() == "" {
			t.Fatal("empty type name")
		}
	}
	if _, err := New(TypeInvalid); err == nil {
		t.Fatal("New(invalid) should fail")
	}
	if _, err := SplitChunk(Chunk{Type: TypeInvalid}, 2); err == nil {
		t.Fatal("SplitChunk(invalid) should fail")
	}
	if _, err := SplitChunk(Chunk{Type: TypeKVMap}, 0); err != ErrBadSplit {
		t.Fatal("SplitChunk n=0 should fail")
	}
}

func TestPartitionKeyStable(t *testing.T) {
	for k := uint64(0); k < 1000; k++ {
		p := PartitionKey(k, 7)
		if p < 0 || p >= 7 {
			t.Fatalf("partition %d out of range", p)
		}
		if p2 := PartitionKey(k, 7); p2 != p {
			t.Fatal("PartitionKey not deterministic")
		}
	}
	if PartitionKey(123, 1) != 0 || PartitionKey(123, 0) != 0 {
		t.Fatal("degenerate n should map to 0")
	}
	// Distribution sanity: no partition should be empty over 1000 keys.
	counts := make([]int, 7)
	for k := uint64(0); k < 1000; k++ {
		counts[PartitionKey(k, 7)]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("partition %d empty", i)
		}
	}
}
