package state

import (
	"encoding/binary"
	"math"
)

// The chunk wire format is a hand-rolled binary encoding: uvarints for
// counts and keys, fixed 64-bit floats. It is ~5x faster than encoding/gob
// at the MB-scale checkpoints the experiments move around, and it has no
// per-chunk type dictionary, so chunks can be split and re-merged freely.

type encoder struct {
	buf []byte
	tmp [binary.MaxVarintLen64]byte
}

func newEncoder(sizeHint int) *encoder {
	return &encoder{buf: make([]byte, 0, sizeHint)}
}

func (e *encoder) uvarint(v uint64) {
	n := binary.PutUvarint(e.tmp[:], v)
	e.buf = append(e.buf, e.tmp[:n]...)
}

func (e *encoder) varint(v int64) {
	n := binary.PutVarint(e.tmp[:], v)
	e.buf = append(e.buf, e.tmp[:n]...)
}

func (e *encoder) float64(f float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
	e.buf = append(e.buf, b[:]...)
}

func (e *encoder) bytes(b []byte) {
	e.uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

type decoder struct {
	buf []byte
	off int
	err error
}

func newDecoder(b []byte) *decoder { return &decoder{buf: b} }

func (d *decoder) fail() {
	if d.err == nil {
		d.err = ErrBadChunk
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) float64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

func (d *decoder) bytes() []byte {
	if d.err != nil {
		return nil
	}
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if uint64(d.off)+n > uint64(len(d.buf)) {
		d.fail()
		return nil
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:d.off+int(n)])
	d.off += int(n)
	return out
}

func (d *decoder) done() bool { return d.err == nil && d.off >= len(d.buf) }
