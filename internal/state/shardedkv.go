package state

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// maxKVShards bounds the shard count; beyond this the per-shard maps are
// too small for striping to pay for its fixed cost.
const maxKVShards = 256

// ShardedKVMap is the lock-striped variant of KVMap: the key space is
// divided over N independent shards (N a power of two), each owning its own
// base map, dirty overlay, tombstone set and dirtyCtl. Writers to different
// shards never contend, and Checkpoint/Restore/Split/MergeDirty run one
// worker per shard, so snapshot latency drops with cores instead of scaling
// with total state size.
//
// Shard routing reuses the PartitionKey hash: because N is a power of two,
// shard(key) == PartitionKey(key, N), so the shard layout agrees with the
// hash-partitioned checkpoint chunks and the dataflow dispatchers (§3.2).
// Chunks are emitted in the TypeKVMap wire format, making sharded and
// single-lock checkpoints freely interchangeable at restore time.
//
// The §5 invariant — no base write in flight when the dirty flag flips —
// holds across the whole store, not just per shard: BeginDirty acquires
// every shard's base lock (in shard order, so it cannot deadlock against
// writers, which hold at most one) before flipping any flag, giving the
// dirty-mode snapshot a single linearisation point exactly like the
// single-lock store. A Checkpoint taken *outside* dirty mode locks shards
// one at a time and is therefore only per-shard consistent; per the Store
// contract, non-dirty checkpoints are for quiescent stores — use the
// BeginDirty/Checkpoint/MergeDirty protocol for an atomic cut under load.
type ShardedKVMap struct {
	shards []*kvShard
	mask   uint64
	size   atomic.Int64 // approximate bytes across all shards
	dirty  atomic.Bool  // store-level view of the per-shard flags

	// lifecycle serialises the multi-shard structural operations —
	// BeginDirty, MergeDirty, Split and Checkpoint — against each other.
	// Writers never take it, so the dirty window stays writer-transparent
	// even while a long Checkpoint holds it.
	lifecycle sync.Mutex
	// cutMu makes whole-store Clear atomic against BeginDirty's flip (the
	// snapshot cut): the flip holds it exclusively, Clear holds it shared,
	// so a clear lands entirely before or entirely after any cut and a
	// checkpoint can never capture a half-cleared store. Clear stays
	// concurrent with Checkpoint itself, as in the single-lock store's
	// dirty mode. Order: lifecycle, then cutMu, then shard locks.
	cutMu sync.RWMutex
}

// kvShard is one stripe: a miniature single-lock KVMap without the
// store-level bookkeeping.
type kvShard struct {
	dirtyCtl
	base  map[uint64][]byte
	ovl   map[uint64][]byte
	tomb  map[uint64]struct{}
	delta deltaTrack // changed-key tracker for incremental checkpoints
}

func newKVShard() *kvShard {
	return &kvShard{
		base: make(map[uint64][]byte),
		ovl:  make(map[uint64][]byte),
		tomb: make(map[uint64]struct{}),
	}
}

// NewShardedKVMap returns an empty sharded dictionary store with n shards,
// rounded up to a power of two and clamped to [1, 256]. n <= 0 selects a
// GOMAXPROCS-derived default.
func NewShardedKVMap(n int) *ShardedKVMap {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	n = ceilPow2(n)
	if n > maxKVShards {
		n = maxKVShards
	}
	m := &ShardedKVMap{shards: make([]*kvShard, n), mask: uint64(n - 1)}
	for i := range m.shards {
		m.shards[i] = newKVShard()
	}
	return m
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// shard routes a key to its stripe. Equivalent to PartitionKey(key,
// NumShards()) because the shard count is a power of two.
func (m *ShardedKVMap) shard(key uint64) *kvShard {
	return m.shards[mix64(key)&m.mask]
}

// NumShards reports the stripe count.
func (m *ShardedKVMap) NumShards() int { return len(m.shards) }

// Dirty reports whether the store is in dirty mode (see dirtyCtl.Dirty).
func (m *ShardedKVMap) Dirty() bool { return m.dirty.Load() }

// Type reports TypeShardedKVMap.
func (m *ShardedKVMap) Type() StoreType { return TypeShardedKVMap }

// Put stores value under key. The value is retained by reference; callers
// must not mutate it afterwards.
func (m *ShardedKVMap) Put(key uint64, value []byte) {
	s := m.shard(key)
	if s.baseWriteOrDirty() {
		if old, ok := s.ovl[key]; ok {
			m.size.Add(-int64(len(old)))
		} else {
			m.size.Add(kvEntryOverhead + 8)
		}
		s.ovl[key] = value
		delete(s.tomb, key)
		m.size.Add(int64(len(value)))
		s.dmu.Unlock()
		return
	}
	if old, ok := s.base[key]; ok {
		m.size.Add(-int64(len(old)))
	} else {
		m.size.Add(kvEntryOverhead + 8)
	}
	s.base[key] = value
	m.size.Add(int64(len(value)))
	s.delta.record(key)
	s.mu.Unlock()
}

// Get returns the value for key, consulting the shard's overlay first in
// dirty mode (§5).
func (m *ShardedKVMap) Get(key uint64) ([]byte, bool) {
	s := m.shard(key)
	if s.dirty.Load() {
		s.dmu.RLock()
		if v, ok := s.ovl[key]; ok {
			s.dmu.RUnlock()
			return v, true
		}
		if _, dead := s.tomb[key]; dead {
			s.dmu.RUnlock()
			return nil, false
		}
		s.dmu.RUnlock()
	}
	s.mu.RLock()
	v, ok := s.base[key]
	s.mu.RUnlock()
	return v, ok
}

// Delete removes key, reporting whether it was (logically) present.
func (m *ShardedKVMap) Delete(key uint64) bool {
	s := m.shard(key)
	if s.baseWriteOrDirty() {
		_, inOvl := s.ovl[key]
		_, wasDead := s.tomb[key]
		if inOvl {
			m.size.Add(-(int64(len(s.ovl[key])) + kvEntryOverhead + 8))
			delete(s.ovl, key)
		}
		s.tomb[key] = struct{}{}
		s.dmu.Unlock()
		if inOvl {
			return true
		}
		if wasDead {
			// Already logically deleted; the base copy is a stale snapshot.
			return false
		}
		// Same benign race as KVMap.Delete: a merge between the dmu
		// release and this probe can make a present key report absent.
		s.mu.RLock()
		_, inBase := s.base[key]
		s.mu.RUnlock()
		return inBase
	}
	old, ok := s.base[key]
	if ok {
		m.size.Add(-(int64(len(old)) + kvEntryOverhead + 8))
		delete(s.base, key)
		s.delta.record(key)
	}
	s.mu.Unlock()
	return ok
}

// NumEntries reports the logical number of live keys across shards.
func (m *ShardedKVMap) NumEntries() int {
	n := 0
	for _, s := range m.shards {
		s.mu.RLock()
		s.dmu.RLock()
		n += len(s.base)
		for k := range s.ovl {
			if _, inBase := s.base[k]; !inBase {
				n++
			}
		}
		for k := range s.tomb {
			if _, inBase := s.base[k]; inBase {
				n--
			}
		}
		s.dmu.RUnlock()
		s.mu.RUnlock()
	}
	return n
}

// SizeBytes reports the approximate memory footprint.
func (m *ShardedKVMap) SizeBytes() int64 { return m.size.Load() }

// BeginDirty enters dirty mode (see Store). All shard base locks are held
// while the flags flip, so the snapshot cut is atomic across shards.
func (m *ShardedKVMap) BeginDirty() error {
	m.lifecycle.Lock()
	defer m.lifecycle.Unlock()
	m.cutMu.Lock()
	defer m.cutMu.Unlock()
	for _, s := range m.shards {
		s.mu.Lock()
	}
	if m.dirty.Load() {
		for i := len(m.shards) - 1; i >= 0; i-- {
			m.shards[i].mu.Unlock()
		}
		return ErrDirtyActive
	}
	for _, s := range m.shards {
		s.dirty.Store(true)
	}
	m.dirty.Store(true)
	for i := len(m.shards) - 1; i >= 0; i-- {
		m.shards[i].mu.Unlock()
	}
	return nil
}

// DirtySize reports the number of overlay entries plus tombstones.
func (m *ShardedKVMap) DirtySize() int {
	n := 0
	for _, s := range m.shards {
		s.dmu.RLock()
		n += len(s.ovl) + len(s.tomb)
		s.dmu.RUnlock()
	}
	return n
}

// MergeDirty consolidates every shard's overlay into its base, one worker
// per shard. Each shard's merge holds only that shard's locks, so the
// stop-the-writers window is per stripe and shrinks with the shard count.
func (m *ShardedKVMap) MergeDirty() (int, error) {
	m.lifecycle.Lock()
	defer m.lifecycle.Unlock()
	if !m.dirty.Load() {
		return 0, ErrDirtyInactive
	}
	var total atomic.Int64
	m.eachShard(func(s *kvShard) error {
		unlock, err := s.lockMerge()
		if err != nil {
			return err
		}
		defer unlock()
		total.Add(int64(len(s.ovl) + len(s.tomb)))
		// Retain the merged overlay for the next delta epoch.
		s.delta.noteMerge(s.ovl, s.tomb)
		for k, v := range s.ovl {
			if old, ok := s.base[k]; ok {
				// Both copies were counted while dirty; drop the stale one.
				m.size.Add(-(int64(len(old)) + kvEntryOverhead + 8))
			}
			s.base[k] = v
		}
		for k := range s.tomb {
			if old, ok := s.base[k]; ok {
				m.size.Add(-(int64(len(old)) + kvEntryOverhead + 8))
				delete(s.base, k)
			}
		}
		s.ovl = make(map[uint64][]byte)
		s.tomb = make(map[uint64]struct{})
		return nil
	})
	m.dirty.Store(false)
	return int(total.Load()), nil
}

// Checkpoint serialises the base into n hash-partitioned chunks, one
// encoding worker per shard. Because every key lands in the partition
// PartitionKey(key, n) regardless of its shard, the chunks are
// byte-format-identical to KVMap's and restore into either backend.
func (m *ShardedKVMap) Checkpoint(n int) ([]Chunk, error) {
	if n < 1 {
		return nil, ErrBadSplit
	}
	// lifecycle makes the snapshot atomic against Split (as the single
	// mutex does for KVMap); writers only ever take shard locks, so the
	// long serialisation still never blocks them.
	m.lifecycle.Lock()
	defer m.lifecycle.Unlock()
	hint := 64
	if sz := m.size.Load(); sz > 0 {
		hint = int(sz)/(n*len(m.shards)) + 64
	}
	bodies := make([][]*encoder, len(m.shards))
	counts := make([][]uint64, len(m.shards))
	m.eachShardIdx(func(i int, s *kvShard) error {
		encs := make([]*encoder, n)
		for p := range encs {
			encs[p] = newEncoder(hint)
		}
		cnt := make([]uint64, n)
		s.mu.RLock()
		for k, v := range s.base {
			p := PartitionKey(k, n)
			encs[p].uvarint(k)
			encs[p].bytes(v)
			cnt[p]++
		}
		s.mu.RUnlock()
		bodies[i], counts[i] = encs, cnt
		return nil
	})
	chunks := make([]Chunk, n)
	for p := range chunks {
		var total uint64
		size := 0
		for i := range m.shards {
			total += counts[i][p]
			size += len(bodies[i][p].buf)
		}
		head := newEncoder(size + 10)
		head.uvarint(total)
		for i := range m.shards {
			head.buf = append(head.buf, bodies[i][p].buf...)
		}
		chunks[p] = Chunk{Type: TypeKVMap, Index: p, Of: n, Data: head.buf}
	}
	return chunks, nil
}

// Restore merges the given chunks into the store, decoding chunks in
// parallel. It accepts chunks produced by either dictionary backend.
func (m *ShardedKVMap) Restore(chunks []Chunk) error {
	errs := make([]error, len(chunks))
	var wg sync.WaitGroup
	for i, c := range chunks {
		wg.Add(1)
		go func(i int, c Chunk) {
			defer wg.Done()
			if c.Type != TypeKVMap && c.Type != TypeShardedKVMap {
				errs[i] = fmt.Errorf("%w: got %v, want %v", ErrWrongChunkType, c.Type, TypeKVMap)
				return
			}
			if c.Delta {
				errs[i] = ErrDeltaChunk
				return
			}
			d := newDecoder(c.Data)
			count := d.uvarint()
			for j := uint64(0); j < count && d.err == nil; j++ {
				k := d.uvarint()
				v := d.bytes()
				if d.err == nil {
					m.Put(k, v)
				}
			}
			errs[i] = d.err
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Split divides the map into n disjoint ShardedKVMaps; the receiver is
// emptied. Every shard's base lock is held for the whole copy (ordered
// sweep, like BeginDirty) so the move is atomic against concurrent
// writers, exactly as KVMap.Split's single mutex makes it; workers then
// scan shards in parallel, with the target stores' own shard locks
// serialising the inserts.
func (m *ShardedKVMap) Split(n int) ([]Store, error) {
	if n < 1 {
		return nil, ErrBadSplit
	}
	m.lifecycle.Lock()
	defer m.lifecycle.Unlock()
	for _, s := range m.shards {
		s.mu.Lock()
	}
	defer func() {
		for i := len(m.shards) - 1; i >= 0; i-- {
			m.shards[i].mu.Unlock()
		}
	}()
	if m.dirty.Load() {
		return nil, ErrDirtyActive
	}
	out := make([]Store, n)
	parts := make([]*ShardedKVMap, n)
	for i := range parts {
		parts[i] = NewShardedKVMap(len(m.shards))
		out[i] = parts[i]
	}
	m.eachShard(func(s *kvShard) error {
		for k, v := range s.base {
			parts[PartitionKey(k, n)].Put(k, v)
		}
		s.delta.noteBase(s.base) // moved-out keys need tombstones in the next delta
		s.base = make(map[uint64][]byte)
		return nil
	})
	m.size.Store(0)
	return out, nil
}

// Clear removes all entries. In dirty mode each shard's base keys are
// tombstoned in its overlay so the in-flight checkpoint still sees the
// pre-clear state; otherwise the bases are dropped wholesale. cutMu keeps
// the store-wide clear on one side of any concurrent BeginDirty cut.
func (m *ShardedKVMap) Clear() {
	m.cutMu.RLock()
	defer m.cutMu.RUnlock()
	m.eachShard(func(s *kvShard) error {
		for {
			if s.dirty.Load() {
				// Lock order: mu before dmu. Both locks are held together
				// so the dirty flag cannot flip mid-clear (see KVMap.Clear
				// for the stale-tombstone hazard this prevents).
				s.mu.RLock()
				if !s.dirty.Load() {
					s.mu.RUnlock()
					continue // MergeDirty won the race; take the base path
				}
				s.dmu.Lock()
				for _, v := range s.ovl {
					m.size.Add(-(int64(len(v)) + kvEntryOverhead + 8))
				}
				s.ovl = make(map[uint64][]byte)
				for k := range s.base {
					s.tomb[k] = struct{}{}
				}
				s.dmu.Unlock()
				s.mu.RUnlock()
				return nil
			}
			s.mu.Lock()
			if s.dirty.Load() {
				s.mu.Unlock()
				continue // lost the race with BeginDirty; take the overlay path
			}
			for _, v := range s.base {
				m.size.Add(-(int64(len(v)) + kvEntryOverhead + 8))
			}
			s.delta.noteBase(s.base) // wiped keys need tombstones in the next delta
			s.base = make(map[uint64][]byte)
			s.mu.Unlock()
			return nil
		}
	})
}

// ForEach visits live entries (base view only when dirty), shard by shard.
// Iteration stops when fn returns false.
func (m *ShardedKVMap) ForEach(fn func(key uint64, value []byte) bool) {
	for _, s := range m.shards {
		s.mu.RLock()
		for k, v := range s.base {
			if !fn(k, v) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}

// eachShard runs fn once per shard on its own goroutine and returns after
// all complete. Errors are swallowed by callers that cannot fail; the merge
// path inspects per-shard state itself.
func (m *ShardedKVMap) eachShard(fn func(s *kvShard) error) {
	m.eachShardIdx(func(_ int, s *kvShard) error { return fn(s) })
}

func (m *ShardedKVMap) eachShardIdx(fn func(i int, s *kvShard) error) {
	var wg sync.WaitGroup
	for i, s := range m.shards {
		wg.Add(1)
		go func(i int, s *kvShard) {
			defer wg.Done()
			_ = fn(i, s)
		}(i, s)
	}
	wg.Wait()
}

// Compile-time interface checks: both dictionary backends are full KV
// stores and partitionable.
var (
	_ KV            = (*KVMap)(nil)
	_ KV            = (*ShardedKVMap)(nil)
	_ Partitionable = (*KVMap)(nil)
	_ Partitionable = (*ShardedKVMap)(nil)
)
