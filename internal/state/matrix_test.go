package state

import (
	"math"
	"testing"
)

func TestMatrixBasic(t *testing.T) {
	m := NewMatrix()
	m.Set(1, 2, 3.5)
	m.Set(-4, 7, 1.0)
	if v := m.Get(1, 2); v != 3.5 {
		t.Fatalf("Get = %f", v)
	}
	if v := m.Get(9, 9); v != 0 {
		t.Fatalf("missing cell = %f, want 0", v)
	}
	if v := m.Add(1, 2, 0.5); v != 4.0 {
		t.Fatalf("Add returned %f", v)
	}
	if m.NumEntries() != 2 {
		t.Fatalf("NumEntries = %d", m.NumEntries())
	}
	if m.SizeBytes() <= 0 {
		t.Fatal("SizeBytes should be positive")
	}
	if m.Type() != TypeMatrix {
		t.Fatal("wrong type")
	}
}

func TestMatrixRowVec(t *testing.T) {
	m := NewMatrix()
	m.Set(5, 1, 1.0)
	m.Set(5, 2, 2.0)
	row := m.RowVec(5)
	if len(row) != 2 || row[1] != 1.0 || row[2] != 2.0 {
		t.Fatalf("RowVec = %v", row)
	}
	// Mutating the copy must not affect the matrix.
	row[1] = 99
	if m.Get(5, 1) != 1.0 {
		t.Fatal("RowVec returned aliased map")
	}
}

func TestMatrixMulVec(t *testing.T) {
	m := NewMatrix()
	// M = [ (0,0)=1 (0,1)=2 ; (1,1)=3 ]
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 1, 3)
	x := map[int64]float64{0: 10, 1: 100}
	y := m.MulVec(x)
	if y[0] != 210 || y[1] != 300 {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestMatrixMulVecWithOverlay(t *testing.T) {
	m := NewMatrix()
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	if err := m.BeginDirty(); err != nil {
		t.Fatal(err)
	}
	m.Set(0, 0, 5)  // override
	m.Set(2, 1, 10) // new row in overlay
	x := map[int64]float64{0: 1, 1: 1}
	y := m.MulVec(x)
	if y[0] != 7 { // 5 + 2, overlay overrides base cell (0,0)
		t.Fatalf("y[0] = %f, want 7", y[0])
	}
	if y[2] != 10 {
		t.Fatalf("y[2] = %f, want 10", y[2])
	}
	if _, err := m.MergeDirty(); err != nil {
		t.Fatal(err)
	}
	y2 := m.MulVec(x)
	if y2[0] != 7 || y2[2] != 10 {
		t.Fatalf("post-merge MulVec = %v", y2)
	}
}

func TestMatrixDirtyCheckpointIsolation(t *testing.T) {
	m := NewMatrix()
	m.Set(1, 1, 1.0)
	if err := m.BeginDirty(); err != nil {
		t.Fatal(err)
	}
	m.Set(1, 1, 2.0)
	m.Set(2, 2, 9.0)
	if v := m.Get(1, 1); v != 2.0 {
		t.Fatalf("dirty read = %f", v)
	}
	chunks, err := m.Checkpoint(3)
	if err != nil {
		t.Fatal(err)
	}
	r := NewMatrix()
	if err := r.Restore(chunks); err != nil {
		t.Fatal(err)
	}
	if v := r.Get(1, 1); v != 1.0 {
		t.Fatalf("checkpoint leaked dirty write: %f", v)
	}
	if v := r.Get(2, 2); v != 0 {
		t.Fatalf("checkpoint contains dirty-only cell: %f", v)
	}
	if n, err := m.MergeDirty(); err != nil || n != 2 {
		t.Fatalf("MergeDirty = %d, %v", n, err)
	}
	if v := m.Get(2, 2); v != 9.0 {
		t.Fatal("merge lost overlay cell")
	}
	if m.NumEntries() != 2 {
		t.Fatalf("NumEntries after merge = %d", m.NumEntries())
	}
}

func TestMatrixCheckpointRestoreNegativeIndices(t *testing.T) {
	m := NewMatrix()
	m.Set(-10, -20, 1.5)
	m.Set(3, 4, 2.5)
	chunks, err := m.Checkpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	r := NewMatrix()
	if err := r.Restore(chunks); err != nil {
		t.Fatal(err)
	}
	if r.Get(-10, -20) != 1.5 || r.Get(3, 4) != 2.5 {
		t.Fatal("negative index round trip failed")
	}
}

func TestMatrixSplitDisjointComplete(t *testing.T) {
	m := NewMatrix()
	for r := int64(0); r < 50; r++ {
		for c := int64(0); c < 4; c++ {
			m.Set(r, c, float64(r*10+c))
		}
	}
	parts, err := m.Split(4)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumEntries() != 0 {
		t.Fatal("receiver not emptied")
	}
	total := 0
	for _, p := range parts {
		total += p.NumEntries()
	}
	if total != 200 {
		t.Fatalf("partitions hold %d cells, want 200", total)
	}
	// Rows must be whole within a single partition.
	for r := int64(0); r < 50; r++ {
		owner := PartitionKey(uint64(r), 4)
		for pi, p := range parts {
			mm := p.(*Matrix)
			got := mm.Get(r, 0)
			if pi == owner && got != float64(r*10) {
				t.Fatalf("row %d missing from owner partition %d", r, pi)
			}
			if pi != owner && got != 0 {
				t.Fatalf("row %d leaked into partition %d", r, pi)
			}
		}
	}
}

func TestMatrixSplitChunkEquivalence(t *testing.T) {
	m := NewMatrix()
	for r := int64(0); r < 40; r++ {
		m.Set(r, r%7, float64(r))
	}
	one, _ := m.Checkpoint(1)
	split, err := SplitChunk(one[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	r := NewMatrix()
	if err := r.Restore(split); err != nil {
		t.Fatal(err)
	}
	for row := int64(0); row < 40; row++ {
		if got := r.Get(row, row%7); math.Abs(got-float64(row)) > 1e-12 {
			t.Fatalf("cell (%d,%d) = %f", row, row%7, got)
		}
	}
}
