package state

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// kvImpls enumerates the dictionary backends; cross-cutting tests and the
// head-to-head benchmarks run against each so the single-lock and sharded
// stores stay behaviourally identical. The sharded store is pinned to 8
// shards rather than the GOMAXPROCS default, which degenerates to a single
// shard on 1-core CI runners and would exercise only the striping overhead.
var kvImpls = []struct {
	name string
	new  func() KV
}{
	{"single-lock", func() KV { return NewKVMap() }},
	{"sharded", func() KV { return NewShardedKVMap(8) }},
}

func TestShardedKVShardCount(t *testing.T) {
	for _, tt := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16}, {1 << 20, maxKVShards},
	} {
		if got := NewShardedKVMap(tt.in).NumShards(); got != tt.want {
			t.Errorf("NumShards(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
	def := NewShardedKVMap(0).NumShards()
	if def < 1 || def&(def-1) != 0 {
		t.Errorf("default shard count %d is not a power of two", def)
	}
}

func TestShardedKVBasic(t *testing.T) {
	m := NewShardedKVMap(4)
	if m.Type() != TypeShardedKVMap {
		t.Fatalf("Type = %v", m.Type())
	}
	const n = 1000
	for i := uint64(0); i < n; i++ {
		m.Put(i, []byte{byte(i)})
	}
	if got := m.NumEntries(); got != n {
		t.Fatalf("NumEntries = %d, want %d", got, n)
	}
	if m.SizeBytes() <= 0 {
		t.Fatal("SizeBytes not accounted")
	}
	for i := uint64(0); i < n; i++ {
		v, ok := m.Get(i)
		if !ok || !bytes.Equal(v, []byte{byte(i)}) {
			t.Fatalf("Get(%d) = %v, %v", i, v, ok)
		}
	}
	if !m.Delete(7) {
		t.Fatal("Delete(7) reported absent")
	}
	if _, ok := m.Get(7); ok {
		t.Fatal("Get(7) after delete")
	}
	if m.Delete(7) {
		t.Fatal("second Delete(7) reported present")
	}
	m.Clear()
	if got := m.NumEntries(); got != 0 {
		t.Fatalf("NumEntries after Clear = %d", got)
	}
	if got := m.SizeBytes(); got != 0 {
		t.Fatalf("SizeBytes after Clear = %d", got)
	}
}

func TestShardedKVDirtyProtocol(t *testing.T) {
	m := NewShardedKVMap(4)
	for i := uint64(0); i < 100; i++ {
		m.Put(i, []byte("base"))
	}
	if err := m.BeginDirty(); err != nil {
		t.Fatal(err)
	}
	if err := m.BeginDirty(); err != ErrDirtyActive {
		t.Fatalf("second BeginDirty = %v, want ErrDirtyActive", err)
	}
	// Overlay writes: updates, a delete and a fresh key.
	m.Put(1, []byte("dirty"))
	m.Delete(2)
	m.Put(200, []byte("new"))
	if got := m.DirtySize(); got != 3 {
		t.Fatalf("DirtySize = %d, want 3", got)
	}
	// Reads see the overlay first.
	if v, _ := m.Get(1); string(v) != "dirty" {
		t.Fatalf("Get(1) = %q", v)
	}
	if _, ok := m.Get(2); ok {
		t.Fatal("Get(2) should see the tombstone")
	}
	// The checkpoint sees only the pre-dirty base.
	chunks, err := m.Checkpoint(3)
	if err != nil {
		t.Fatal(err)
	}
	snap := NewKVMap()
	if err := snap.Restore(chunks); err != nil {
		t.Fatal(err)
	}
	if got := snap.NumEntries(); got != 100 {
		t.Fatalf("snapshot entries = %d, want 100", got)
	}
	if v, _ := snap.Get(1); string(v) != "base" {
		t.Fatalf("snapshot Get(1) = %q, want pre-dirty value", v)
	}
	merged, err := m.MergeDirty()
	if err != nil {
		t.Fatal(err)
	}
	if merged != 3 {
		t.Fatalf("MergeDirty = %d, want 3", merged)
	}
	if _, err := m.MergeDirty(); err != ErrDirtyInactive {
		t.Fatalf("second MergeDirty = %v, want ErrDirtyInactive", err)
	}
	if v, _ := m.Get(1); string(v) != "dirty" {
		t.Fatalf("post-merge Get(1) = %q", v)
	}
	if _, ok := m.Get(2); ok {
		t.Fatal("post-merge Get(2) should be deleted")
	}
	if got := m.NumEntries(); got != 100 {
		t.Fatalf("post-merge entries = %d, want 100", got) // -1 deleted, +1 new
	}
}

// TestKVDirtyDoubleDelete: deleting an already-deleted key during dirty
// mode must report absent, even though the base still holds the snapshot
// copy until MergeDirty. Regression test for both backends.
func TestKVDirtyDoubleDelete(t *testing.T) {
	for _, impl := range kvImpls {
		t.Run(impl.name, func(t *testing.T) {
			m := impl.new()
			m.Put(1, []byte("v"))
			if err := m.BeginDirty(); err != nil {
				t.Fatal(err)
			}
			if !m.Delete(1) {
				t.Fatal("first Delete should report present")
			}
			if m.Delete(1) {
				t.Fatal("second Delete should report absent (tombstoned)")
			}
			// An overlay re-insert resurrects the key.
			m.Put(1, []byte("w"))
			if !m.Delete(1) {
				t.Fatal("Delete after re-insert should report present")
			}
			if _, err := m.MergeDirty(); err != nil {
				t.Fatal(err)
			}
			if _, ok := m.Get(1); ok {
				t.Fatal("key should be gone after merge")
			}
		})
	}
}

func TestShardedKVClearDuringDirty(t *testing.T) {
	m := NewShardedKVMap(4)
	for i := uint64(0); i < 50; i++ {
		m.Put(i, []byte{1})
	}
	if err := m.BeginDirty(); err != nil {
		t.Fatal(err)
	}
	m.Clear()
	// The in-flight checkpoint still sees the pre-clear base...
	chunks, err := m.Checkpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	snap := NewShardedKVMap(2)
	if err := snap.Restore(chunks); err != nil {
		t.Fatal(err)
	}
	if got := snap.NumEntries(); got != 50 {
		t.Fatalf("snapshot entries = %d, want 50", got)
	}
	// ...but the live view is empty, before and after the merge.
	if got := m.NumEntries(); got != 0 {
		t.Fatalf("live entries during dirty = %d, want 0", got)
	}
	if _, err := m.MergeDirty(); err != nil {
		t.Fatal(err)
	}
	if got := m.NumEntries(); got != 0 {
		t.Fatalf("post-merge entries = %d, want 0", got)
	}
}

// TestKVCrossImplCheckpointCompat proves the chunk-format compatibility
// claim: checkpoints written by either dictionary backend restore into the
// other, through direct restore and through SplitChunk re-partitioning.
func TestKVCrossImplCheckpointCompat(t *testing.T) {
	fill := func(m KV) {
		for i := uint64(0); i < 777; i++ {
			m.Put(i*2654435761, []byte{byte(i), byte(i >> 8)})
		}
	}
	check := func(t *testing.T, m KV) {
		t.Helper()
		if got := m.NumEntries(); got != 777 {
			t.Fatalf("restored entries = %d, want 777", got)
		}
		for i := uint64(0); i < 777; i++ {
			v, ok := m.Get(i * 2654435761)
			if !ok || !bytes.Equal(v, []byte{byte(i), byte(i >> 8)}) {
				t.Fatalf("restored Get(%d) = %v, %v", i, v, ok)
			}
		}
	}
	for _, src := range kvImpls {
		for _, dst := range kvImpls {
			for _, nChunks := range []int{1, 3, 8} {
				t.Run(fmt.Sprintf("%s-to-%s/chunks=%d", src.name, dst.name, nChunks), func(t *testing.T) {
					s := src.new()
					fill(s)
					chunks, err := s.Checkpoint(nChunks)
					if err != nil {
						t.Fatal(err)
					}
					if len(chunks) != nChunks {
						t.Fatalf("chunks = %d, want %d", len(chunks), nChunks)
					}
					d := dst.new()
					if err := d.Restore(chunks); err != nil {
						t.Fatal(err)
					}
					check(t, d)

					// And through restore-time re-partitioning (Fig. 4 R1).
					var split []Chunk
					for _, c := range chunks {
						parts, err := SplitChunk(c, 4)
						if err != nil {
							t.Fatal(err)
						}
						split = append(split, parts...)
					}
					d2 := dst.new()
					if err := d2.Restore(split); err != nil {
						t.Fatal(err)
					}
					check(t, d2)
				})
			}
		}
	}
}

func TestShardedKVSplit(t *testing.T) {
	m := NewShardedKVMap(8)
	const n = 500
	for i := uint64(0); i < n; i++ {
		m.Put(i, []byte{byte(i)})
	}
	parts, err := m.Split(3)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumEntries() != 0 {
		t.Fatal("receiver not emptied")
	}
	total := 0
	for pi, p := range parts {
		kv := p.(*ShardedKVMap)
		total += kv.NumEntries()
		kv.ForEach(func(k uint64, _ []byte) bool {
			if owner := PartitionKey(k, 3); owner != pi {
				t.Errorf("key %d in part %d, owner %d", k, pi, owner)
			}
			return true
		})
	}
	if total != n {
		t.Fatalf("split total = %d, want %d", total, n)
	}

	dirty := NewShardedKVMap(2)
	dirty.Put(1, []byte{1})
	if err := dirty.BeginDirty(); err != nil {
		t.Fatal(err)
	}
	if _, err := dirty.Split(2); err != ErrDirtyActive {
		t.Fatalf("Split while dirty = %v, want ErrDirtyActive", err)
	}
	if _, err := dirty.Split(0); err != ErrBadSplit {
		t.Fatalf("Split(0) = %v, want ErrBadSplit", err)
	}
}

func TestShardedKVRestoreErrors(t *testing.T) {
	m := NewShardedKVMap(2)
	if err := m.Restore([]Chunk{{Type: TypeVector}}); err == nil {
		t.Fatal("wrong-type chunk accepted")
	}
	if err := m.Restore([]Chunk{{Type: TypeKVMap, Data: []byte{0xff}}}); err == nil {
		t.Fatal("corrupt chunk accepted")
	}
	if _, err := m.Checkpoint(0); err != ErrBadSplit {
		t.Fatalf("Checkpoint(0) = %v, want ErrBadSplit", err)
	}
}

// TestKVConcurrentOps hammers each backend with concurrent mutators racing
// the full dirty-checkpoint cycle plus aggregate readers. Run under
// -race, it is the locking-discipline regression test: failures show up as
// detector reports, not assertion text.
func TestKVConcurrentOps(t *testing.T) {
	for _, impl := range kvImpls {
		t.Run(impl.name, func(t *testing.T) {
			m := impl.new()
			const (
				writers  = 4
				keySpace = 512
				opsEach  = 3000
			)
			var mutWg, bgWg sync.WaitGroup
			stop := make(chan struct{})
			// Mutators: Put/Get/Delete over a shared key space with an
			// occasional Clear.
			for w := 0; w < writers; w++ {
				mutWg.Add(1)
				go func(w int) {
					defer mutWg.Done()
					for i := 0; i < opsEach; i++ {
						k := uint64((i*7 + w*13) % keySpace)
						switch i % 5 {
						case 0, 1, 2:
							m.Put(k, []byte{byte(i), byte(w)})
						case 3:
							m.Get(k)
						default:
							m.Delete(k)
						}
						if w == 0 && i%1000 == 999 {
							m.Clear()
						}
					}
				}(w)
			}
			// Aggregate readers.
			bgWg.Add(1)
			go func() {
				defer bgWg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					m.NumEntries()
					m.SizeBytes()
					m.DirtySize()
					m.ForEach(func(uint64, []byte) bool { return true })
				}
			}()
			// Checkpoint cycles racing the mutators.
			var cycles atomic.Int64
			bgWg.Add(1)
			go func() {
				defer bgWg.Done()
				for {
					// The stop check sits at the bottom so at least one
					// full cycle races the mutators even on a fast run.
					if err := m.BeginDirty(); err != nil {
						t.Errorf("BeginDirty: %v", err)
						return
					}
					chunks, err := m.Checkpoint(4)
					if err != nil {
						t.Errorf("Checkpoint: %v", err)
						return
					}
					snap := NewKVMap()
					if err := snap.Restore(chunks); err != nil {
						t.Errorf("Restore: %v", err)
						return
					}
					if _, err := m.MergeDirty(); err != nil {
						t.Errorf("MergeDirty: %v", err)
						return
					}
					cycles.Add(1)
					select {
					case <-stop:
						return
					default:
					}
				}
			}()

			// Mutators finish on their own; then stop the polling loops.
			mutWg.Wait()
			close(stop)
			bgWg.Wait()

			if cycles.Load() == 0 {
				t.Error("no checkpoint cycle completed")
			}
			// Quiesced store must be internally consistent.
			n := 0
			m.ForEach(func(k uint64, v []byte) bool {
				n++
				if len(v) != 2 {
					t.Errorf("key %d has malformed value %v", k, v)
				}
				return true
			})
			if got := m.NumEntries(); got != n {
				t.Errorf("NumEntries = %d, ForEach saw %d", got, n)
			}
		})
	}
}

// TestKVClearRacesMergeDirty pins the Clear/MergeDirty interleaving: if
// the dirty flag flips false between Clear's mode check and its overlay
// mutation, a naive Clear is lost entirely and plants stale tombstones
// that destroy later writes. Whatever the interleaving, Clear must leave
// the store empty and later Puts must survive the next checkpoint cycle.
func TestKVClearRacesMergeDirty(t *testing.T) {
	for _, impl := range kvImpls {
		t.Run(impl.name, func(t *testing.T) {
			for i := 0; i < 300; i++ {
				m := impl.new()
				for k := uint64(0); k < 64; k++ {
					m.Put(k, []byte{1})
				}
				if err := m.BeginDirty(); err != nil {
					t.Fatal(err)
				}
				var wg sync.WaitGroup
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, err := m.MergeDirty(); err != nil {
						t.Errorf("MergeDirty: %v", err)
					}
				}()
				m.Clear()
				wg.Wait()
				// The clear lands either before the merge (tombstones
				// consumed) or after it (base dropped) — never nowhere.
				if n := m.NumEntries(); n != 0 {
					t.Fatalf("iter %d: %d entries survived Clear racing MergeDirty", i, n)
				}
				// No stale tombstones: a fresh write must survive the next
				// dirty cycle.
				m.Put(5, []byte{2})
				if err := m.BeginDirty(); err != nil {
					t.Fatal(err)
				}
				if _, err := m.MergeDirty(); err != nil {
					t.Fatal(err)
				}
				if _, ok := m.Get(5); !ok {
					t.Fatalf("iter %d: write destroyed by stale tombstone", i)
				}
			}
		})
	}
}

// TestShardedKVClearAtomicAgainstCut races a whole-store Clear against
// BeginDirty: the snapshot taken after the cut must contain either every
// pre-clear key or none — a torn (half-cleared) snapshot means the clear
// straddled the cut, a state that never logically existed.
func TestShardedKVClearAtomicAgainstCut(t *testing.T) {
	const keys = 128
	for i := 0; i < 200; i++ {
		m := NewShardedKVMap(8)
		for k := uint64(0); k < keys; k++ {
			m.Put(k, []byte{1})
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := m.BeginDirty(); err != nil {
				t.Errorf("BeginDirty: %v", err)
			}
		}()
		m.Clear()
		wg.Wait()
		chunks, err := m.Checkpoint(4)
		if err != nil {
			t.Fatal(err)
		}
		snap := NewKVMap()
		if err := snap.Restore(chunks); err != nil {
			t.Fatal(err)
		}
		if n := snap.NumEntries(); n != 0 && n != keys {
			t.Fatalf("iter %d: torn snapshot with %d of %d keys", i, n, keys)
		}
		if _, err := m.MergeDirty(); err != nil {
			t.Fatal(err)
		}
		if n := m.NumEntries(); n != 0 {
			t.Fatalf("iter %d: %d entries survived Clear", i, n)
		}
	}
}

// TestShardedKVParallelSnapshotVisibility checks the §5 cut: every write
// acknowledged before BeginDirty returns is in the checkpoint; every write
// started after it is not.
func TestShardedKVParallelSnapshotVisibility(t *testing.T) {
	m := NewShardedKVMap(8)
	for i := uint64(0); i < 256; i++ {
		m.Put(i, []byte{1})
	}
	if err := m.BeginDirty(); err != nil {
		t.Fatal(err)
	}
	// Concurrent post-cut writers run while the checkpoint serialises.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := uint64(0); i < 256; i++ {
				m.Put(1000+uint64(w)*256+i, []byte{2})
			}
		}(w)
	}
	chunks, err := m.Checkpoint(4)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	snap := NewShardedKVMap(4)
	if err := snap.Restore(chunks); err != nil {
		t.Fatal(err)
	}
	if got := snap.NumEntries(); got != 256 {
		t.Fatalf("snapshot entries = %d, want exactly the pre-cut 256", got)
	}
	if _, err := m.MergeDirty(); err != nil {
		t.Fatal(err)
	}
	if got := m.NumEntries(); got != 256+4*256 {
		t.Fatalf("post-merge entries = %d, want %d", got, 256+4*256)
	}
}
