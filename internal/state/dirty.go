package state

import (
	"sync"
	"sync/atomic"
)

// dirtyCtl implements the locking discipline of the asynchronous
// checkpointing protocol (§5). Two locks split the store into the immutable
// base (serialised by the checkpointer) and the dirty overlay (absorbing
// writes while the checkpoint is in flight):
//
//   - mu guards the base structure;
//   - dmu guards the overlay;
//   - dirty is the mode flag, flipped only while holding mu.
//
// Writers consult dirty *before* taking mu: in dirty mode they only ever
// touch the overlay, so a long-running Checkpoint holding mu.RLock never
// blocks them — that is the property Fig. 12 measures against synchronous
// checkpointing. The subtle case is a writer that loads dirty=false just as
// BeginDirty runs: it takes mu and re-checks the flag under the lock, and
// since BeginDirty also holds mu exclusively, either the write lands in the
// base before the snapshot begins or it is redirected to the overlay.
//
// The single-lock KVMap embeds one dirtyCtl for the whole store; the
// lock-striped ShardedKVMap embeds one per shard and flips all flags under
// an ordered sweep of every shard's mu (see ShardedKVMap.BeginDirty), which
// preserves the same atomic-cut invariant store-wide.
type dirtyCtl struct {
	mu    sync.RWMutex
	dmu   sync.RWMutex
	dirty atomic.Bool
}

// Dirty reports whether the store is in dirty mode (a checkpoint snapshot
// is in flight). Embedding dirtyCtl exports this on every single-control
// store; ShardedKVMap implements its own store-level view.
func (c *dirtyCtl) Dirty() bool { return c.dirty.Load() }

// beginDirty flips the store into dirty mode. Holding mu exclusively
// guarantees no base write is in flight when the flag is set.
func (c *dirtyCtl) beginDirty() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dirty.Load() {
		return ErrDirtyActive
	}
	c.dirty.Store(true)
	return nil
}

// lockMerge acquires both locks for overlay consolidation and returns an
// unlock function. The caller mutates base and overlay, then clears the
// dirty flag before unlocking via the returned func.
func (c *dirtyCtl) lockMerge() (unlock func(), err error) {
	c.mu.Lock()
	c.dmu.Lock()
	if !c.dirty.Load() {
		c.dmu.Unlock()
		c.mu.Unlock()
		return nil, ErrDirtyInactive
	}
	return func() {
		c.dirty.Store(false)
		c.dmu.Unlock()
		c.mu.Unlock()
	}, nil
}

// baseWriteOrDirty decides the write path. It returns true with dmu held
// for writing when the caller must update the overlay, or false with mu
// held for writing when the caller may update the base. The caller unlocks
// the corresponding lock.
func (c *dirtyCtl) baseWriteOrDirty() bool {
	if c.dirty.Load() {
		c.dmu.Lock()
		return true
	}
	c.mu.Lock()
	if c.dirty.Load() {
		// BeginDirty won the race; redirect to the overlay.
		c.mu.Unlock()
		c.dmu.Lock()
		return true
	}
	return false
}
