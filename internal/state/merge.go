package state

import (
	"errors"
	"fmt"
)

// Merge is the inverse of Split: a store absorbs another store's contents so
// the runtime can retire an SE instance and fold its partition (or partial
// replica) into a survivor. Composing the two gives lossless scale-in for
// hash-partitioned state: splitting every old partition n ways re-hashes
// each key to PartitionKey(key, n) no matter which physical store held it,
// and merging the pieces per target index rebuilds the shrunk layout.
//
// Delta-tracking overlays are preserved across the fold: every absorbed key
// is recorded in the absorber's changed-key tracker (the Put path records
// live keys; the source's drained tracker covers keys deleted since its last
// cut, which become tombstones at the absorber's next delta cut). The
// runtime still forces the absorber's next checkpoint to be a fresh base —
// a chain anchored to the pre-merge store must not continue across a merge —
// but the tracker fold means even a racing in-flight delta epoch cannot
// lose an absorbed key.
//
// Merge requires the source to be quiescent (not in dirty mode): it steals
// the source's base wholesale and leaves it empty. The destination may be
// dirty — absorbed entries then land in the overlay like any other write.

// ErrBadMerge is returned when a store cannot absorb the given source type.
var ErrBadMerge = fmt.Errorf("state: stores cannot merge")

// DirtyReporter is implemented by every provided store: it exposes whether
// a checkpoint snapshot currently holds the store in dirty mode. Scale-in
// uses it to wait out an in-flight checkpoint *before* the first
// destructive Split, so the rebuild either starts with every source
// splittable or starts not at all.
type DirtyReporter interface {
	Dirty() bool
}

// Merger is implemented by stores that can absorb another store's contents,
// emptying the source — the inverse of Split.
type Merger interface {
	Store
	// Merge folds src's entries into the receiver and empties src. Entries
	// present in both stores resolve in src's favour (scale-in merges
	// disjoint partitions, so collisions only arise from misuse). It fails
	// with ErrDirtyActive if src is mid-checkpoint and ErrBadMerge if the
	// source type is incompatible.
	Merge(src Store) error
}

// drainKV steals a dictionary backend's base entries and drained delta
// window, leaving the source empty. It refuses while the source is dirty:
// stealing the base mid-checkpoint would tear the frozen snapshot.
func drainKVMap(s *KVMap) (map[uint64][]byte, map[uint64]struct{}, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dirty.Load() {
		return nil, nil, ErrDirtyActive
	}
	base := s.base
	window := s.delta.drain()
	s.base = make(map[uint64][]byte)
	s.size.Store(0)
	return base, window, nil
}

// drainSharded steals every shard's base and delta window under the ordered
// whole-store lock sweep (the same discipline Split uses).
func drainSharded(s *ShardedKVMap) ([]map[uint64][]byte, map[uint64]struct{}, error) {
	s.lifecycle.Lock()
	defer s.lifecycle.Unlock()
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	defer func() {
		for i := len(s.shards) - 1; i >= 0; i-- {
			s.shards[i].mu.Unlock()
		}
	}()
	if s.dirty.Load() {
		return nil, nil, ErrDirtyActive
	}
	bases := make([]map[uint64][]byte, len(s.shards))
	window := make(map[uint64]struct{})
	for i, sh := range s.shards {
		bases[i] = sh.base
		for k := range sh.delta.drain() {
			window[k] = struct{}{}
		}
		sh.base = make(map[uint64][]byte)
	}
	s.size.Store(0)
	return bases, window, nil
}

// drainDict dispatches on the dictionary backend; both backends drain into
// the same shape so either can absorb either.
func drainDict(src Store) ([]map[uint64][]byte, map[uint64]struct{}, error) {
	switch s := src.(type) {
	case *KVMap:
		base, window, err := drainKVMap(s)
		if err != nil {
			return nil, nil, err
		}
		return []map[uint64][]byte{base}, window, nil
	case *ShardedKVMap:
		return drainSharded(s)
	default:
		return nil, nil, fmt.Errorf("%w: dictionary store cannot absorb %v", ErrBadMerge, src.Type())
	}
}

// Merge folds another dictionary store (either backend) into the map.
func (m *KVMap) Merge(src Store) error {
	if src == Store(m) {
		return fmt.Errorf("%w: cannot merge a store into itself", ErrBadMerge)
	}
	bases, window, err := drainDict(src)
	if err != nil {
		return err
	}
	for _, base := range bases {
		m.absorb(base)
	}
	// The drained window adds the keys deleted on the source since its last
	// cut, which become tombstones at the next delta cut.
	m.delta.noteKeys(window)
	return nil
}

// absorb folds one drained base map into the receiver, taking the base
// lock once instead of once per key — scale-in runs Merge inside the
// ingress fence, so the absorb cost is merge pause time. A dirty receiver
// falls back to the per-key Put path, whose overlay writes keep the
// in-flight snapshot consistent.
func (m *KVMap) absorb(base map[uint64][]byte) {
	m.mu.Lock()
	if m.dirty.Load() {
		m.mu.Unlock()
		for k, v := range base {
			m.Put(k, v)
		}
		return
	}
	var grew int64
	for k, v := range base {
		if old, ok := m.base[k]; ok {
			grew -= int64(len(old))
		} else {
			grew += kvEntryOverhead + 8
		}
		m.base[k] = v
		grew += int64(len(v))
	}
	m.delta.noteBase(base)
	m.mu.Unlock()
	m.size.Add(grew)
}

// Merge folds another dictionary store (either backend) into the sharded
// map. The absorbed keys are recorded per destination shard, matching where
// the next delta cut will look for them.
func (m *ShardedKVMap) Merge(src Store) error {
	if src == Store(m) {
		return fmt.Errorf("%w: cannot merge a store into itself", ErrBadMerge)
	}
	bases, window, err := drainDict(src)
	if err != nil {
		return err
	}
	for _, base := range bases {
		m.absorb(base)
	}
	// Tombstoned keys fold into the shard that owns them.
	for k := range window {
		m.shard(k).delta.noteKey(k)
	}
	return nil
}

// absorb groups one drained base map by destination shard and folds each
// group under its shard's base lock once (one delta note per shard, one
// size update per shard) instead of per key. A dirty shard falls back to
// the overlay-aware Put path.
func (m *ShardedKVMap) absorb(base map[uint64][]byte) {
	groups := make([]map[uint64][]byte, len(m.shards))
	for k, v := range base {
		i := int(mix64(k) & m.mask)
		if groups[i] == nil {
			groups[i] = make(map[uint64][]byte)
		}
		groups[i][k] = v
	}
	for i, g := range groups {
		if g == nil {
			continue
		}
		s := m.shards[i]
		s.mu.Lock()
		if s.dirty.Load() {
			s.mu.Unlock()
			for k, v := range g {
				m.Put(k, v)
			}
			continue
		}
		var grew int64
		for k, v := range g {
			if old, ok := s.base[k]; ok {
				grew -= int64(len(old))
			} else {
				grew += kvEntryOverhead + 8
			}
			s.base[k] = v
			grew += int64(len(v))
		}
		s.delta.noteBase(g)
		s.mu.Unlock()
		m.size.Add(grew)
	}
}

// Merge folds another Vector into the receiver: non-zero source elements
// overwrite, and the receiver grows to the source's length. The source is
// zeroed.
func (v *Vector) Merge(src Store) error {
	s, ok := src.(*Vector)
	if !ok {
		return fmt.Errorf("%w: vector cannot absorb %v", ErrBadMerge, src.Type())
	}
	if s == v {
		return fmt.Errorf("%w: cannot merge a store into itself", ErrBadMerge)
	}
	s.mu.Lock()
	if s.dirty.Load() {
		s.mu.Unlock()
		return ErrDirtyActive
	}
	vals := s.vals
	s.vals = make([]float64, len(vals))
	s.mu.Unlock()
	// Grow the receiver up front for the common quiescent case. A dirty
	// receiver refuses to resize but loses nothing: its overlay absorbs any
	// index and MergeDirty grows the base to the overlay's maximum, so the
	// refusal is ignored and the writes below pick the right path per
	// element under the receiver's own locks.
	if err := v.Resize(len(vals)); err != nil && !errors.Is(err, ErrDirtyActive) {
		return err
	}
	startLen := v.Len()
	for i, x := range vals {
		if x == 0 {
			// Zeros carry no value, with one exception: when the receiver is
			// shorter than the source, the final index must be written to
			// pin the merged length — a dirty receiver only grows to its
			// overlay's maximum written index at MergeDirty. The slot is
			// left alone if some earlier merge already filled it.
			if i != len(vals)-1 || i < startLen {
				continue
			}
			if v.baseWriteOrDirty() {
				if _, exists := v.ovl[i]; !exists {
					v.ovl[i] = 0
				}
				v.dmu.Unlock()
			} else {
				if i >= len(v.vals) {
					grown := make([]float64, len(vals))
					copy(grown, v.vals)
					v.vals = grown
				}
				v.mu.Unlock()
			}
			continue
		}
		if v.baseWriteOrDirty() {
			v.ovl[i] = x
			v.dmu.Unlock()
			continue
		}
		// Not dirty (any more): the resize above may have been refused by a
		// dirty window that has since merged, so grow the base inline.
		if i >= len(v.vals) {
			grown := make([]float64, len(vals))
			copy(grown, v.vals)
			v.vals = grown
		}
		v.vals[i] = x
		v.mu.Unlock()
	}
	return nil
}

// Merge folds another sparse Matrix into the receiver cell by cell; source
// cells overwrite. The source is emptied.
func (m *Matrix) Merge(src Store) error {
	s, ok := src.(*Matrix)
	if !ok {
		return fmt.Errorf("%w: matrix cannot absorb %v", ErrBadMerge, src.Type())
	}
	if s == m {
		return fmt.Errorf("%w: cannot merge a store into itself", ErrBadMerge)
	}
	s.mu.Lock()
	if s.dirty.Load() {
		s.mu.Unlock()
		return ErrDirtyActive
	}
	base := s.base
	s.base = make(map[int64]map[int64]float64)
	s.size.Store(0)
	s.mu.Unlock()
	for r, row := range base {
		for c, val := range row {
			m.Set(r, c, val)
		}
	}
	return nil
}

// Merge folds another DenseMatrix of identical dimensions into the
// receiver: non-zero source cells overwrite. The source is zeroed.
func (m *DenseMatrix) Merge(src Store) error {
	s, ok := src.(*DenseMatrix)
	if !ok {
		return fmt.Errorf("%w: dense matrix cannot absorb %v", ErrBadMerge, src.Type())
	}
	if s == m {
		return fmt.Errorf("%w: cannot merge a store into itself", ErrBadMerge)
	}
	mr, mc := m.Dims()
	s.mu.Lock()
	if s.dirty.Load() {
		s.mu.Unlock()
		return ErrDirtyActive
	}
	rows, cols := s.rows, s.cols
	if rows != mr || cols != mc {
		s.mu.Unlock()
		return fmt.Errorf("%w: dense matrix dims %dx%d != %dx%d", ErrBadMerge, mr, mc, rows, cols)
	}
	vals := s.vals
	s.vals = make([]float64, len(vals))
	s.mu.Unlock()
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if x := vals[r*cols+c]; x != 0 {
				m.Set(r, c, x)
			}
		}
	}
	return nil
}

// Compile-time checks: every partitionable store can also merge and report
// its dirty mode.
var (
	_ Merger = (*KVMap)(nil)
	_ Merger = (*ShardedKVMap)(nil)
	_ Merger = (*Vector)(nil)
	_ Merger = (*Matrix)(nil)
	_ Merger = (*DenseMatrix)(nil)

	_ DirtyReporter = (*KVMap)(nil)
	_ DirtyReporter = (*ShardedKVMap)(nil)
	_ DirtyReporter = (*Vector)(nil)
	_ DirtyReporter = (*Matrix)(nil)
	_ DirtyReporter = (*DenseMatrix)(nil)
)
