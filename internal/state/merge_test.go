package state

import (
	"errors"
	"fmt"
	"testing"
)

// fillKV populates a dictionary store with n keys whose values encode the
// key, so any store can be checked for completeness after a split/merge
// round trip.
func fillKV(t *testing.T, kv KV, n int) {
	t.Helper()
	for k := uint64(0); k < uint64(n); k++ {
		kv.Put(k, []byte(fmt.Sprintf("v%d", k)))
	}
}

func checkKV(t *testing.T, kv KV, n int) {
	t.Helper()
	if got := kv.NumEntries(); got != n {
		t.Fatalf("NumEntries = %d, want %d", got, n)
	}
	for k := uint64(0); k < uint64(n); k++ {
		v, ok := kv.Get(k)
		if !ok || string(v) != fmt.Sprintf("v%d", k) {
			t.Fatalf("key %d = %q (found=%v)", k, v, ok)
		}
	}
}

// TestMergeInvertsSplit: splitting a dictionary n ways and merging the
// pieces back rebuilds the original contents, on both backends and across
// backends.
func TestMergeInvertsSplit(t *testing.T) {
	const n = 500
	build := map[string]func() KV{
		"kvmap":   func() KV { return NewKVMap() },
		"sharded": func() KV { return NewShardedKVMap(4) },
	}
	for srcName, newSrc := range build {
		for dstName, newDst := range build {
			t.Run(srcName+"_into_"+dstName, func(t *testing.T) {
				src := newSrc()
				fillKV(t, src, n)
				parts, err := src.(Partitionable).Split(3)
				if err != nil {
					t.Fatal(err)
				}
				dst := newDst()
				for _, p := range parts {
					if err := dst.(Merger).Merge(p); err != nil {
						t.Fatal(err)
					}
				}
				checkKV(t, dst, n)
				for _, p := range parts {
					if p.NumEntries() != 0 {
						t.Fatal("merge must empty the source")
					}
				}
			})
		}
	}
}

// TestMergePreservesDeltaWindow: after a merge, the absorber's next delta
// cut covers every absorbed key — including keys deleted on the source
// since its last cut, which must become tombstones.
func TestMergePreservesDeltaWindow(t *testing.T) {
	for _, tc := range []struct {
		name string
		dst  KV
	}{
		{"kvmap", NewKVMap()},
		{"sharded", NewShardedKVMap(4)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dst := tc.dst.(DeltaStore)
			dst.EnableDeltaTracking()
			tc.dst.Put(1, []byte("a"))
			// Cut and commit so the tracker is empty: only the merge's keys
			// may appear in the next delta.
			dst.CutDelta()
			dst.CommitDelta()

			src := NewKVMap()
			src.EnableDeltaTracking()
			src.Put(2, []byte("b"))
			src.Put(3, []byte("c"))
			src.Delete(3) // deleted-since-cut: needs a tombstone downstream

			if err := tc.dst.(Merger).Merge(src); err != nil {
				t.Fatal(err)
			}
			chunks, err := dst.DeltaCheckpoint(1)
			if err != nil {
				t.Fatal(err)
			}
			dst.CommitDelta()
			replay := NewKVMap()
			replay.Put(1, []byte("stale"))
			replay.Put(2, []byte("stale"))
			replay.Put(3, []byte("stale"))
			if err := replay.ApplyDelta(chunks); err != nil {
				t.Fatal(err)
			}
			if v, ok := replay.Get(2); !ok || string(v) != "b" {
				t.Fatalf("absorbed key 2 not in delta: %q %v", v, ok)
			}
			if _, ok := replay.Get(3); ok {
				t.Fatal("deleted source key 3 not tombstoned in the absorber's delta")
			}
			if v, ok := replay.Get(1); !ok || string(v) != "stale" {
				t.Fatalf("pre-merge key 1 must not reappear in the delta: %q %v", v, ok)
			}
		})
	}
}

func TestMergeRefusesDirtySource(t *testing.T) {
	src := NewKVMap()
	src.Put(1, []byte("a"))
	if err := src.BeginDirty(); err != nil {
		t.Fatal(err)
	}
	dst := NewKVMap()
	if err := dst.Merge(src); !errors.Is(err, ErrDirtyActive) {
		t.Fatalf("merge of dirty source = %v, want ErrDirtyActive", err)
	}
}

func TestMergeIntoDirtyDestination(t *testing.T) {
	// The destination may be mid-checkpoint: absorbed entries land in the
	// overlay like any other write and consolidate on MergeDirty.
	dst := NewKVMap()
	dst.Put(1, []byte("a"))
	if err := dst.BeginDirty(); err != nil {
		t.Fatal(err)
	}
	src := NewKVMap()
	src.Put(2, []byte("b"))
	if err := dst.Merge(src); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.MergeDirty(); err != nil {
		t.Fatal(err)
	}
	if v, ok := dst.Get(1); !ok || string(v) != "a" {
		t.Fatalf("key 1 = %q (found=%v)", v, ok)
	}
	if v, ok := dst.Get(2); !ok || string(v) != "b" {
		t.Fatalf("key 2 = %q (found=%v)", v, ok)
	}
}

func TestMergeRejectsSelfAndWrongType(t *testing.T) {
	m := NewKVMap()
	if err := m.Merge(m); !errors.Is(err, ErrBadMerge) {
		t.Fatalf("self-merge = %v, want ErrBadMerge", err)
	}
	if err := m.Merge(NewVector(4)); !errors.Is(err, ErrBadMerge) {
		t.Fatalf("cross-type merge = %v, want ErrBadMerge", err)
	}
	v := NewVector(4)
	if err := v.Merge(NewKVMap()); !errors.Is(err, ErrBadMerge) {
		t.Fatalf("vector absorbing kvmap = %v, want ErrBadMerge", err)
	}
}

// TestVectorMergeIntoDirtyDestination: a dirty receiver must absorb via
// its overlay, not destroy the (already-drained) source by failing a
// resize — the regression was Merge emptying src and then erroring.
func TestVectorMergeIntoDirtyDestination(t *testing.T) {
	dst := NewVector(2)
	dst.Set(0, 1)
	if err := dst.BeginDirty(); err != nil {
		t.Fatal(err)
	}
	src := NewVector(8)
	src.Set(5, 7)
	if err := dst.Merge(src); err != nil {
		t.Fatal(err)
	}
	if got := dst.Get(5); got != 7 {
		t.Fatalf("merged element 5 = %v before consolidation", got)
	}
	if _, err := dst.MergeDirty(); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 8 {
		t.Fatalf("len after consolidation = %d, want 8", dst.Len())
	}
	if got := dst.Get(5); got != 7 {
		t.Fatalf("merged element 5 = %v, want 7", got)
	}
	if got := dst.Get(0); got != 1 {
		t.Fatalf("pre-merge element 0 = %v, want 1", got)
	}
}

func TestVectorMergeInvertsSplit(t *testing.T) {
	v := NewVector(64)
	for i := 0; i < 64; i++ {
		v.Set(i, float64(i+1))
	}
	parts, err := v.Split(3)
	if err != nil {
		t.Fatal(err)
	}
	dst := NewVector(0)
	for _, p := range parts {
		if err := dst.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	if dst.Len() != 64 {
		t.Fatalf("len = %d", dst.Len())
	}
	for i := 0; i < 64; i++ {
		if dst.Get(i) != float64(i+1) {
			t.Fatalf("elem %d = %v", i, dst.Get(i))
		}
	}
}

func TestMatrixMergeInvertsSplit(t *testing.T) {
	m := NewMatrix()
	for r := int64(0); r < 20; r++ {
		for c := int64(0); c < 3; c++ {
			m.Set(r, c, float64(r*10+c))
		}
	}
	parts, err := m.Split(4)
	if err != nil {
		t.Fatal(err)
	}
	dst := NewMatrix()
	for _, p := range parts {
		if err := dst.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	if dst.NumEntries() != 60 {
		t.Fatalf("entries = %d", dst.NumEntries())
	}
	for r := int64(0); r < 20; r++ {
		for c := int64(0); c < 3; c++ {
			if dst.Get(r, c) != float64(r*10+c) {
				t.Fatalf("cell (%d,%d) = %v", r, c, dst.Get(r, c))
			}
		}
	}
}

func TestDenseMatrixMergeInvertsSplit(t *testing.T) {
	m := NewDenseMatrix(8, 4)
	for r := 0; r < 8; r++ {
		for c := 0; c < 4; c++ {
			m.Set(r, c, float64(r*4+c+1))
		}
	}
	parts, err := m.Split(3)
	if err != nil {
		t.Fatal(err)
	}
	dst := NewDenseMatrix(8, 4)
	for _, p := range parts {
		if err := dst.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < 8; r++ {
		for c := 0; c < 4; c++ {
			if dst.Get(r, c) != float64(r*4+c+1) {
				t.Fatalf("cell (%d,%d) = %v", r, c, dst.Get(r, c))
			}
		}
	}
	if err := dst.Merge(NewDenseMatrix(2, 2)); !errors.Is(err, ErrBadMerge) {
		t.Fatalf("dim mismatch = %v, want ErrBadMerge", err)
	}
}
