package state

import "fmt"

// Vector is a dense float64 vector SE with dirty-state support. The LR
// application keeps its model weights in a partial Vector; the CF merge step
// reconciles partial recommendation Vectors.
type Vector struct {
	dirtyCtl
	vals []float64
	ovl  map[int]float64
}

// NewVector returns a zeroed vector of length n.
func NewVector(n int) *Vector {
	return &Vector{vals: make([]float64, n), ovl: make(map[int]float64)}
}

// Type reports TypeVector.
func (v *Vector) Type() StoreType { return TypeVector }

// Len reports the vector length.
func (v *Vector) Len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.vals)
}

// Resize grows the vector to length n (no-op if already at least n long).
// Resizing is a structural change and is refused in dirty mode.
func (v *Vector) Resize(n int) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.dirty.Load() {
		return ErrDirtyActive
	}
	if n > len(v.vals) {
		grown := make([]float64, n)
		copy(grown, v.vals)
		v.vals = grown
	}
	return nil
}

// Get reads element i; out-of-range reads return 0.
func (v *Vector) Get(i int) float64 {
	if v.dirty.Load() {
		v.dmu.RLock()
		if x, ok := v.ovl[i]; ok {
			v.dmu.RUnlock()
			return x
		}
		v.dmu.RUnlock()
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	if i < 0 || i >= len(v.vals) {
		return 0
	}
	return v.vals[i]
}

// Set writes element i. Writes beyond the current length are absorbed by
// the overlay in dirty mode but are a silent no-op otherwise; callers size
// the vector up front with Resize.
func (v *Vector) Set(i int, x float64) {
	if v.baseWriteOrDirty() {
		v.ovl[i] = x
		v.dmu.Unlock()
		return
	}
	if i >= 0 && i < len(v.vals) {
		v.vals[i] = x
	}
	v.mu.Unlock()
}

// Add increments element i by delta and returns the new value.
func (v *Vector) Add(i int, delta float64) float64 {
	x := v.Get(i) + delta
	v.Set(i, x)
	return x
}

// Snapshot returns a merged copy of the vector contents.
func (v *Vector) Snapshot() []float64 {
	v.mu.RLock()
	out := make([]float64, len(v.vals))
	copy(out, v.vals)
	v.mu.RUnlock()
	if v.dirty.Load() {
		v.dmu.RLock()
		for i, x := range v.ovl {
			if i >= 0 && i < len(out) {
				out[i] = x
			}
		}
		v.dmu.RUnlock()
	}
	return out
}

// AddScaled performs vals += a*x element-wise over min(len, len(x)) items.
// It is the SGD update kernel for logistic regression.
func (v *Vector) AddScaled(x []float64, a float64) {
	if v.baseWriteOrDirty() {
		// Slow path during checkpoints: element-wise into the overlay.
		v.dmu.Unlock()
		for i := range x {
			v.Add(i, a*x[i])
		}
		return
	}
	n := len(v.vals)
	if len(x) < n {
		n = len(x)
	}
	for i := 0; i < n; i++ {
		v.vals[i] += a * x[i]
	}
	v.mu.Unlock()
}

// Dot computes the inner product with x over min(len, len(x)) items using
// the merged view.
func (v *Vector) Dot(x []float64) float64 {
	s := v.Snapshot()
	n := len(s)
	if len(x) < n {
		n = len(x)
	}
	d := 0.0
	for i := 0; i < n; i++ {
		d += s[i] * x[i]
	}
	return d
}

// NumEntries reports the dense length.
func (v *Vector) NumEntries() int { return v.Len() }

// SizeBytes reports the approximate memory footprint.
func (v *Vector) SizeBytes() int64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	v.dmu.RLock()
	defer v.dmu.RUnlock()
	return int64(len(v.vals))*8 + int64(len(v.ovl))*24
}

// BeginDirty enters dirty mode (see Store).
func (v *Vector) BeginDirty() error { return v.beginDirty() }

// DirtySize reports the number of overlay entries.
func (v *Vector) DirtySize() int {
	v.dmu.RLock()
	defer v.dmu.RUnlock()
	return len(v.ovl)
}

// MergeDirty consolidates the overlay into the base (see Store).
func (v *Vector) MergeDirty() (int, error) {
	unlock, err := v.lockMerge()
	if err != nil {
		return 0, err
	}
	defer unlock()
	n := len(v.ovl)
	maxIdx := len(v.vals) - 1
	for i := range v.ovl {
		if i > maxIdx {
			maxIdx = i
		}
	}
	if maxIdx+1 > len(v.vals) {
		grown := make([]float64, maxIdx+1)
		copy(grown, v.vals)
		v.vals = grown
	}
	for i, x := range v.ovl {
		if i >= 0 {
			v.vals[i] = x
		}
	}
	v.ovl = make(map[int]float64)
	return n, nil
}

// Checkpoint serialises non-zero elements into n index-hash-partitioned
// chunks. Every chunk records the full length so any subset restores the
// correct dimension.
func (v *Vector) Checkpoint(n int) ([]Chunk, error) {
	if n < 1 {
		return nil, ErrBadSplit
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	bodies := make([]*encoder, n)
	counts := make([]uint64, n)
	for i := range bodies {
		bodies[i] = newEncoder(len(v.vals)*9/n + 32)
	}
	for i, x := range v.vals {
		if x == 0 {
			continue
		}
		p := PartitionKey(uint64(i), n)
		bodies[p].uvarint(uint64(i))
		bodies[p].float64(x)
		counts[p]++
	}
	chunks := make([]Chunk, n)
	for i := range chunks {
		head := newEncoder(len(bodies[i].buf) + 20)
		head.uvarint(uint64(len(v.vals)))
		head.uvarint(counts[i])
		head.buf = append(head.buf, bodies[i].buf...)
		chunks[i] = Chunk{Type: TypeVector, Index: i, Of: n, Data: head.buf}
	}
	return chunks, nil
}

// Restore merges the given chunks, resizing as needed.
func (v *Vector) Restore(chunks []Chunk) error {
	for _, c := range chunks {
		if c.Type != TypeVector {
			return fmt.Errorf("%w: got %v, want %v", ErrWrongChunkType, c.Type, TypeVector)
		}
		d := newDecoder(c.Data)
		length := d.uvarint()
		count := d.uvarint()
		if d.err != nil {
			return d.err
		}
		if err := v.Resize(int(length)); err != nil {
			return err
		}
		for i := uint64(0); i < count; i++ {
			idx := d.uvarint()
			x := d.float64()
			if d.err != nil {
				return d.err
			}
			v.Set(int(idx), x)
		}
	}
	return nil
}

// Split divides the vector into n instances, each full-length but holding
// only the elements of its index partition; the receiver is zeroed.
func (v *Vector) Split(n int) ([]Store, error) {
	if n < 1 {
		return nil, ErrBadSplit
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.dirty.Load() {
		return nil, ErrDirtyActive
	}
	out := make([]Store, n)
	parts := make([]*Vector, n)
	for i := range parts {
		parts[i] = NewVector(len(v.vals))
		out[i] = parts[i]
	}
	for i, x := range v.vals {
		if x != 0 {
			parts[PartitionKey(uint64(i), n)].Set(i, x)
		}
		v.vals[i] = 0
	}
	return out, nil
}

func splitVectorChunk(c Chunk, n int) ([]Chunk, error) {
	d := newDecoder(c.Data)
	length := d.uvarint()
	count := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	bodies := make([]*encoder, n)
	counts := make([]uint64, n)
	for i := range bodies {
		bodies[i] = newEncoder(len(c.Data)/n + 16)
	}
	for i := uint64(0); i < count; i++ {
		idx := d.uvarint()
		x := d.float64()
		if d.err != nil {
			return nil, d.err
		}
		p := PartitionKey(idx, n)
		bodies[p].uvarint(idx)
		bodies[p].float64(x)
		counts[p]++
	}
	out := make([]Chunk, n)
	for i := range out {
		head := newEncoder(len(bodies[i].buf) + 20)
		head.uvarint(length)
		head.uvarint(counts[i])
		head.buf = append(head.buf, bodies[i].buf...)
		out[i] = Chunk{Type: TypeVector, Index: i, Of: n, Data: head.buf}
	}
	return out, nil
}
