package state

import "fmt"

// DenseMatrix is a row-major dense float64 matrix SE. It suits models whose
// dimensions are known up front (e.g. small co-occurrence matrices or LR
// feature blocks) where sparse bookkeeping would dominate.
type DenseMatrix struct {
	dirtyCtl
	rows, cols int
	vals       []float64       // len rows*cols
	ovl        map[int]float64 // flat-index overlay
}

// NewDenseMatrix returns a zeroed rows x cols matrix.
func NewDenseMatrix(rows, cols int) *DenseMatrix {
	if rows < 0 {
		rows = 0
	}
	if cols < 0 {
		cols = 0
	}
	return &DenseMatrix{
		rows: rows,
		cols: cols,
		vals: make([]float64, rows*cols),
		ovl:  make(map[int]float64),
	}
}

// Type reports TypeDenseMatrix.
func (m *DenseMatrix) Type() StoreType { return TypeDenseMatrix }

// Dims reports (rows, cols).
func (m *DenseMatrix) Dims() (int, int) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.rows, m.cols
}

func (m *DenseMatrix) flat(r, c int) (int, bool) {
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		return 0, false
	}
	return r*m.cols + c, true
}

// Get reads cell (r, c); out-of-range reads return 0.
func (m *DenseMatrix) Get(r, c int) float64 {
	if m.dirty.Load() {
		// Lock order must match lockMerge: mu before dmu.
		m.mu.RLock()
		idx, ok := m.flat(r, c)
		m.mu.RUnlock()
		if !ok {
			return 0
		}
		m.dmu.RLock()
		if v, hit := m.ovl[idx]; hit {
			m.dmu.RUnlock()
			return v
		}
		m.dmu.RUnlock()
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	idx, ok := m.flat(r, c)
	if !ok {
		return 0
	}
	return m.vals[idx]
}

// Set writes cell (r, c); out-of-range writes are silent no-ops.
func (m *DenseMatrix) Set(r, c int, v float64) {
	if m.baseWriteOrDirty() {
		m.mu.RLock()
		idx, ok := m.flat(r, c)
		m.mu.RUnlock()
		if ok {
			m.ovl[idx] = v
		}
		m.dmu.Unlock()
		return
	}
	if idx, ok := m.flat(r, c); ok {
		m.vals[idx] = v
	}
	m.mu.Unlock()
}

// Add increments cell (r, c) by delta and returns the new value.
func (m *DenseMatrix) Add(r, c int, delta float64) float64 {
	v := m.Get(r, c) + delta
	m.Set(r, c, v)
	return v
}

// MulVec computes y = M x over the merged view. len(x) must equal cols.
func (m *DenseMatrix) MulVec(x []float64) ([]float64, error) {
	m.mu.RLock()
	if len(x) != m.cols {
		m.mu.RUnlock()
		return nil, fmt.Errorf("state: MulVec dimension mismatch: len(x)=%d cols=%d", len(x), m.cols)
	}
	y := make([]float64, m.rows)
	for r := 0; r < m.rows; r++ {
		s := 0.0
		row := m.vals[r*m.cols : (r+1)*m.cols]
		for c, v := range row {
			s += v * x[c]
		}
		y[r] = s
	}
	rows, cols := m.rows, m.cols
	m.mu.RUnlock()
	if m.dirty.Load() {
		// Lock order must match lockMerge: mu before dmu.
		m.mu.RLock()
		m.dmu.RLock()
		for idx, v := range m.ovl {
			r, c := idx/cols, idx%cols
			if r < rows && c < len(x) {
				y[r] += (v - m.vals[idx]) * x[c]
			}
		}
		m.dmu.RUnlock()
		m.mu.RUnlock()
	}
	return y, nil
}

// NumEntries reports rows*cols.
func (m *DenseMatrix) NumEntries() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.rows * m.cols
}

// SizeBytes reports the approximate memory footprint.
func (m *DenseMatrix) SizeBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	m.dmu.RLock()
	defer m.dmu.RUnlock()
	return int64(len(m.vals))*8 + int64(len(m.ovl))*24
}

// BeginDirty enters dirty mode (see Store).
func (m *DenseMatrix) BeginDirty() error { return m.beginDirty() }

// DirtySize reports the number of overlay cells.
func (m *DenseMatrix) DirtySize() int {
	m.dmu.RLock()
	defer m.dmu.RUnlock()
	return len(m.ovl)
}

// MergeDirty consolidates the overlay into the base (see Store).
func (m *DenseMatrix) MergeDirty() (int, error) {
	unlock, err := m.lockMerge()
	if err != nil {
		return 0, err
	}
	defer unlock()
	n := len(m.ovl)
	for idx, v := range m.ovl {
		if idx >= 0 && idx < len(m.vals) {
			m.vals[idx] = v
		}
	}
	m.ovl = make(map[int]float64)
	return n, nil
}

// Checkpoint serialises the base into n row-hash-partitioned chunks. Each
// chunk records the full dimensions.
func (m *DenseMatrix) Checkpoint(n int) ([]Chunk, error) {
	if n < 1 {
		return nil, ErrBadSplit
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	bodies := make([]*encoder, n)
	counts := make([]uint64, n)
	for i := range bodies {
		bodies[i] = newEncoder(len(m.vals)*8/n + 64)
	}
	for r := 0; r < m.rows; r++ {
		p := PartitionKey(uint64(r), n)
		bodies[p].uvarint(uint64(r))
		for c := 0; c < m.cols; c++ {
			bodies[p].float64(m.vals[r*m.cols+c])
		}
		counts[p]++
	}
	chunks := make([]Chunk, n)
	for i := range chunks {
		head := newEncoder(len(bodies[i].buf) + 30)
		head.uvarint(uint64(m.rows))
		head.uvarint(uint64(m.cols))
		head.uvarint(counts[i])
		head.buf = append(head.buf, bodies[i].buf...)
		chunks[i] = Chunk{Type: TypeDenseMatrix, Index: i, Of: n, Data: head.buf}
	}
	return chunks, nil
}

// Restore merges the given chunks, resizing to the recorded dimensions.
func (m *DenseMatrix) Restore(chunks []Chunk) error {
	for _, c := range chunks {
		if c.Type != TypeDenseMatrix {
			return fmt.Errorf("%w: got %v, want %v", ErrWrongChunkType, c.Type, TypeDenseMatrix)
		}
		d := newDecoder(c.Data)
		rows := int(d.uvarint())
		cols := int(d.uvarint())
		count := d.uvarint()
		if d.err != nil {
			return d.err
		}
		m.mu.Lock()
		if m.rows < rows || m.cols < cols {
			if m.rows != 0 || m.cols != 0 {
				m.mu.Unlock()
				return fmt.Errorf("%w: dimension mismatch %dx%d vs %dx%d", ErrBadChunk, m.rows, m.cols, rows, cols)
			}
			m.rows, m.cols = rows, cols
			m.vals = make([]float64, rows*cols)
		}
		m.mu.Unlock()
		for i := uint64(0); i < count; i++ {
			r := int(d.uvarint())
			for c2 := 0; c2 < cols; c2++ {
				v := d.float64()
				if d.err != nil {
					return d.err
				}
				if v != 0 {
					m.Set(r, c2, v)
				}
			}
		}
		if d.err != nil {
			return d.err
		}
	}
	return nil
}

// Split divides the matrix into n instances of equal dimensions, each
// holding only its row partition; the receiver is zeroed.
func (m *DenseMatrix) Split(n int) ([]Store, error) {
	if n < 1 {
		return nil, ErrBadSplit
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dirty.Load() {
		return nil, ErrDirtyActive
	}
	out := make([]Store, n)
	parts := make([]*DenseMatrix, n)
	for i := range parts {
		parts[i] = NewDenseMatrix(m.rows, m.cols)
		out[i] = parts[i]
	}
	for r := 0; r < m.rows; r++ {
		p := parts[PartitionKey(uint64(r), n)]
		copy(p.vals[r*m.cols:(r+1)*m.cols], m.vals[r*m.cols:(r+1)*m.cols])
	}
	for i := range m.vals {
		m.vals[i] = 0
	}
	return out, nil
}

func splitDenseChunk(c Chunk, n int) ([]Chunk, error) {
	d := newDecoder(c.Data)
	rows := d.uvarint()
	cols := d.uvarint()
	count := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	bodies := make([]*encoder, n)
	counts := make([]uint64, n)
	for i := range bodies {
		bodies[i] = newEncoder(len(c.Data)/n + 32)
	}
	for i := uint64(0); i < count; i++ {
		r := d.uvarint()
		if d.err != nil {
			return nil, d.err
		}
		p := PartitionKey(r, n)
		bodies[p].uvarint(r)
		for c2 := uint64(0); c2 < cols; c2++ {
			v := d.float64()
			if d.err != nil {
				return nil, d.err
			}
			bodies[p].float64(v)
		}
		counts[p]++
	}
	out := make([]Chunk, n)
	for i := range out {
		head := newEncoder(len(bodies[i].buf) + 30)
		head.uvarint(rows)
		head.uvarint(cols)
		head.uvarint(counts[i])
		head.buf = append(head.buf, bodies[i].buf...)
		out[i] = Chunk{Type: TypeDenseMatrix, Index: i, Of: n, Data: head.buf}
	}
	return out, nil
}
