package state

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestKVMapBasic(t *testing.T) {
	m := NewKVMap()
	m.Put(1, []byte("a"))
	m.Put(2, []byte("b"))
	if v, ok := m.Get(1); !ok || string(v) != "a" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	if _, ok := m.Get(3); ok {
		t.Fatal("Get(3) should miss")
	}
	if n := m.NumEntries(); n != 2 {
		t.Fatalf("NumEntries = %d, want 2", n)
	}
	if !m.Delete(1) {
		t.Fatal("Delete(1) should report present")
	}
	if m.Delete(1) {
		t.Fatal("Delete(1) twice should report absent")
	}
	if n := m.NumEntries(); n != 1 {
		t.Fatalf("NumEntries after delete = %d, want 1", n)
	}
	if m.Type() != TypeKVMap {
		t.Fatal("wrong type")
	}
}

func TestKVMapOverwriteAccounting(t *testing.T) {
	m := NewKVMap()
	m.Put(1, make([]byte, 100))
	s1 := m.SizeBytes()
	m.Put(1, make([]byte, 10))
	s2 := m.SizeBytes()
	if s2 >= s1 {
		t.Errorf("size should shrink after overwrite with smaller value: %d -> %d", s1, s2)
	}
	m.Delete(1)
	if m.SizeBytes() != 0 {
		t.Errorf("size after delete = %d, want 0", m.SizeBytes())
	}
}

func TestKVMapDirtyProtocol(t *testing.T) {
	m := NewKVMap()
	m.Put(1, []byte("base1"))
	m.Put(2, []byte("base2"))

	if err := m.BeginDirty(); err != nil {
		t.Fatal(err)
	}
	if err := m.BeginDirty(); err != ErrDirtyActive {
		t.Fatalf("double BeginDirty err = %v", err)
	}

	// Updates while dirty go to the overlay; reads see them.
	m.Put(1, []byte("dirty1"))
	m.Put(3, []byte("dirty3"))
	m.Delete(2)
	if v, _ := m.Get(1); string(v) != "dirty1" {
		t.Fatalf("Get(1) while dirty = %q", v)
	}
	if _, ok := m.Get(2); ok {
		t.Fatal("Get(2) should see tombstone")
	}
	if v, ok := m.Get(3); !ok || string(v) != "dirty3" {
		t.Fatalf("Get(3) while dirty = %q, %v", v, ok)
	}
	if m.DirtySize() != 3 {
		t.Fatalf("DirtySize = %d, want 3", m.DirtySize())
	}
	if n := m.NumEntries(); n != 2 {
		t.Fatalf("NumEntries while dirty = %d, want 2 (keys 1,3)", n)
	}

	// The checkpoint must reflect the pre-dirty base only.
	chunks, err := m.Checkpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	restored := NewKVMap()
	if err := restored.Restore(chunks); err != nil {
		t.Fatal(err)
	}
	if v, _ := restored.Get(1); string(v) != "base1" {
		t.Fatalf("checkpoint leaked dirty write: Get(1) = %q", v)
	}
	if v, ok := restored.Get(2); !ok || string(v) != "base2" {
		t.Fatalf("checkpoint lost base entry: %q %v", v, ok)
	}
	if _, ok := restored.Get(3); ok {
		t.Fatal("checkpoint contains dirty-only key 3")
	}

	// Merge consolidates and leaves dirty mode.
	n, err := m.MergeDirty()
	if err != nil || n != 3 {
		t.Fatalf("MergeDirty = %d, %v", n, err)
	}
	if _, err := m.MergeDirty(); err != ErrDirtyInactive {
		t.Fatalf("second MergeDirty err = %v", err)
	}
	if v, _ := m.Get(1); string(v) != "dirty1" {
		t.Fatal("merge lost overlay write")
	}
	if _, ok := m.Get(2); ok {
		t.Fatal("merge did not apply tombstone")
	}
	if m.DirtySize() != 0 {
		t.Fatal("overlay not cleared")
	}
}

func TestKVMapCheckpointRestoreRoundTrip(t *testing.T) {
	m := NewKVMap()
	for i := uint64(0); i < 500; i++ {
		m.Put(i, []byte(fmt.Sprintf("value-%d", i)))
	}
	for _, nChunks := range []int{1, 2, 7} {
		chunks, err := m.Checkpoint(nChunks)
		if err != nil {
			t.Fatal(err)
		}
		if len(chunks) != nChunks {
			t.Fatalf("got %d chunks, want %d", len(chunks), nChunks)
		}
		r := NewKVMap()
		if err := r.Restore(chunks); err != nil {
			t.Fatal(err)
		}
		if r.NumEntries() != 500 {
			t.Fatalf("restored %d entries, want 500", r.NumEntries())
		}
		for i := uint64(0); i < 500; i++ {
			want := fmt.Sprintf("value-%d", i)
			if v, ok := r.Get(i); !ok || string(v) != want {
				t.Fatalf("n=%d key %d: got %q, want %q", nChunks, i, v, want)
			}
		}
	}
}

func TestKVMapPartialRestore(t *testing.T) {
	m := NewKVMap()
	for i := uint64(0); i < 100; i++ {
		m.Put(i, []byte{byte(i)})
	}
	chunks, _ := m.Checkpoint(4)
	// Restoring a single chunk yields exactly that partition's keys.
	r := NewKVMap()
	if err := r.Restore(chunks[:1]); err != nil {
		t.Fatal(err)
	}
	r.ForEach(func(k uint64, _ []byte) bool {
		if PartitionKey(k, 4) != 0 {
			t.Fatalf("key %d does not belong to partition 0", k)
		}
		return true
	})
	if r.NumEntries() == 0 || r.NumEntries() == 100 {
		t.Fatalf("partition 0 has %d entries; want strict subset", r.NumEntries())
	}
}

func TestKVMapSplit(t *testing.T) {
	m := NewKVMap()
	for i := uint64(0); i < 200; i++ {
		m.Put(i, []byte{byte(i)})
	}
	parts, err := m.Split(3)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumEntries() != 0 {
		t.Fatal("receiver not emptied by Split")
	}
	total := 0
	for pi, p := range parts {
		kv := p.(*KVMap)
		total += kv.NumEntries()
		kv.ForEach(func(k uint64, _ []byte) bool {
			if PartitionKey(k, 3) != pi {
				t.Fatalf("key %d in wrong partition %d", k, pi)
			}
			return true
		})
	}
	if total != 200 {
		t.Fatalf("partitions hold %d entries, want 200", total)
	}
}

func TestKVMapSplitChunkEquivalence(t *testing.T) {
	m := NewKVMap()
	for i := uint64(0); i < 300; i++ {
		m.Put(i, []byte(fmt.Sprintf("v%d", i)))
	}
	one, err := m.Checkpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	split, err := SplitChunk(one[0], 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(split) != 4 {
		t.Fatalf("split into %d, want 4", len(split))
	}
	r := NewKVMap()
	if err := r.Restore(split); err != nil {
		t.Fatal(err)
	}
	if r.NumEntries() != 300 {
		t.Fatalf("restored %d, want 300", r.NumEntries())
	}
	for i := uint64(0); i < 300; i++ {
		want := fmt.Sprintf("v%d", i)
		if v, ok := r.Get(i); !ok || !bytes.Equal(v, []byte(want)) {
			t.Fatalf("key %d: %q", i, v)
		}
	}
}

func TestKVMapConcurrentDuringDirty(t *testing.T) {
	m := NewKVMap()
	for i := uint64(0); i < 1000; i++ {
		m.Put(i, []byte{1})
	}
	if err := m.BeginDirty(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	// Writers update the overlay while a checkpoint serialises the base.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := uint64(0); i < 500; i++ {
				m.Put(i, []byte{byte(g)})
				m.Get(i)
			}
		}(g)
	}
	chunks, err := m.Checkpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if _, err := m.MergeDirty(); err != nil {
		t.Fatal(err)
	}
	r := NewKVMap()
	if err := r.Restore(chunks); err != nil {
		t.Fatal(err)
	}
	if r.NumEntries() != 1000 {
		t.Fatalf("checkpoint has %d entries, want 1000", r.NumEntries())
	}
	r.ForEach(func(k uint64, v []byte) bool {
		if !bytes.Equal(v, []byte{1}) {
			t.Fatalf("checkpoint saw dirty write for key %d: %v", k, v)
		}
		return true
	})
}

func TestKVMapErrors(t *testing.T) {
	m := NewKVMap()
	if _, err := m.Checkpoint(0); err != ErrBadSplit {
		t.Errorf("Checkpoint(0) err = %v", err)
	}
	if _, err := m.Split(0); err != ErrBadSplit {
		t.Errorf("Split(0) err = %v", err)
	}
	bad := Chunk{Type: TypeMatrix}
	if err := m.Restore([]Chunk{bad}); err == nil {
		t.Error("Restore with wrong chunk type should fail")
	}
	corrupt := Chunk{Type: TypeKVMap, Data: []byte{0xff}}
	if err := m.Restore([]Chunk{corrupt}); err == nil {
		t.Error("Restore with corrupt chunk should fail")
	}
	_ = m.BeginDirty()
	if _, err := m.Split(2); err != ErrDirtyActive {
		t.Errorf("Split while dirty err = %v", err)
	}
}
