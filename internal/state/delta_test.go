package state

import (
	"fmt"
	"sync"
	"testing"
)

// eachKVBackend runs a subtest per dictionary backend.
func eachKVBackend(t *testing.T, fn func(t *testing.T, mk func() DeltaStore)) {
	t.Helper()
	backends := map[string]func() DeltaStore{
		"kvmap":   func() DeltaStore { return NewKVMap() },
		"sharded": func() DeltaStore { return NewShardedKVMap(8) },
	}
	for name, mk := range backends {
		t.Run(name, func(t *testing.T) { fn(t, mk) })
	}
}

func kvEqual(t *testing.T, a, b KV) {
	t.Helper()
	if an, bn := a.NumEntries(), b.NumEntries(); an != bn {
		t.Fatalf("entry counts differ: %d vs %d", an, bn)
	}
	a.ForEach(func(k uint64, v []byte) bool {
		bv, ok := b.Get(k)
		if !ok {
			t.Fatalf("key %d missing", k)
		}
		if string(bv) != string(v) {
			t.Fatalf("key %d = %q, want %q", k, bv, v)
		}
		return true
	})
}

func TestDeltaTrackingOffByDefault(t *testing.T) {
	eachKVBackend(t, func(t *testing.T, mk func() DeltaStore) {
		st := mk()
		if st.DeltaTracking() {
			t.Fatal("tracking should default off")
		}
		st.(KV).Put(1, []byte("x"))
		if st.DeltaSize() != 0 {
			t.Fatal("untracked store recorded a change")
		}
		if _, err := st.DeltaCheckpoint(1); err != ErrDeltaInactive {
			t.Fatalf("DeltaCheckpoint without tracking = %v, want ErrDeltaInactive", err)
		}
	})
}

func TestDeltaCheckpointOnlyChangedKeys(t *testing.T) {
	eachKVBackend(t, func(t *testing.T, mk func() DeltaStore) {
		st := mk()
		kv := st.(KV)
		st.EnableDeltaTracking()
		for i := uint64(0); i < 1000; i++ {
			kv.Put(i, []byte(fmt.Sprintf("v%d", i)))
		}
		// Base cut: everything so far is covered by a full checkpoint.
		st.CutDelta()
		st.CommitDelta()
		if st.DeltaSize() != 0 {
			t.Fatalf("delta size after committed cut = %d", st.DeltaSize())
		}

		// Churn: 10 updates, 5 deletes, 2 inserts.
		for i := uint64(0); i < 10; i++ {
			kv.Put(i, []byte("new"))
		}
		for i := uint64(100); i < 105; i++ {
			kv.Delete(i)
		}
		kv.Put(5000, []byte("ins"))
		kv.Put(5001, []byte("ins"))
		if got := st.DeltaSize(); got != 17 {
			t.Fatalf("delta size = %d, want 17", got)
		}

		chunks, err := st.DeltaCheckpoint(3)
		if err != nil {
			t.Fatal(err)
		}
		st.CommitDelta()
		var ucnt, tcnt uint64
		for _, c := range chunks {
			if !c.Delta || c.Type != TypeKVMap {
				t.Fatalf("chunk = %+v, want delta kvmap chunk", c)
			}
			d := newDecoder(c.Data)
			nu := d.uvarint()
			for i := uint64(0); i < nu; i++ {
				k := d.uvarint()
				d.bytes()
				if PartitionKey(k, 3) != c.Index {
					t.Fatalf("key %d in wrong partition %d", k, c.Index)
				}
			}
			nt := d.uvarint()
			for i := uint64(0); i < nt; i++ {
				k := d.uvarint()
				if PartitionKey(k, 3) != c.Index {
					t.Fatalf("tombstone %d in wrong partition %d", k, c.Index)
				}
			}
			if !d.done() {
				t.Fatalf("trailing bytes in delta chunk: %v", d.err)
			}
			ucnt += nu
			tcnt += nt
		}
		if ucnt != 12 || tcnt != 5 {
			t.Fatalf("updates=%d tombstones=%d, want 12/5", ucnt, tcnt)
		}

		// Applying base + delta onto a fresh store reproduces the live state,
		// in either backend.
		for _, rebuild := range []DeltaStore{NewKVMap(), NewShardedKVMap(4)} {
			base := rebuild.(KV)
			for i := uint64(0); i < 1000; i++ {
				base.Put(i, []byte(fmt.Sprintf("v%d", i)))
			}
			if err := rebuild.ApplyDelta(chunks); err != nil {
				t.Fatal(err)
			}
			kvEqual(t, kv, base)
		}
	})
}

func TestDeltaDirtyWindowRetainedByMerge(t *testing.T) {
	eachKVBackend(t, func(t *testing.T, mk func() DeltaStore) {
		st := mk()
		kv := st.(KV)
		st.EnableDeltaTracking()
		for i := uint64(0); i < 100; i++ {
			kv.Put(i, []byte("base"))
		}
		st.CutDelta()
		st.CommitDelta()

		kv.Put(1, []byte("preseal"))
		if err := st.BeginDirty(); err != nil {
			t.Fatal(err)
		}
		chunks, err := st.DeltaCheckpoint(2)
		if err != nil {
			t.Fatal(err)
		}
		// Writes during the checkpoint window land in the overlay and must
		// surface in the *next* epoch's delta, not this one.
		kv.Put(2, []byte("window"))
		kv.Delete(3)
		if _, err := st.MergeDirty(); err != nil {
			t.Fatal(err)
		}
		st.CommitDelta()

		var keys []uint64
		for _, c := range chunks {
			err := applyDeltaChunk(c,
				func(k uint64, _ []byte) { keys = append(keys, k) },
				func(k uint64) { keys = append(keys, k) })
			if err != nil {
				t.Fatal(err)
			}
		}
		if len(keys) != 1 || keys[0] != 1 {
			t.Fatalf("epoch 1 delta keys = %v, want [1]", keys)
		}

		// The window writes belong to the next delta.
		if got := st.DeltaSize(); got != 2 {
			t.Fatalf("retained window size = %d, want 2", got)
		}
		chunks2, err := st.DeltaCheckpoint(1)
		if err != nil {
			t.Fatal(err)
		}
		st.CommitDelta()
		var upd, tomb []uint64
		for _, c := range chunks2 {
			_ = applyDeltaChunk(c,
				func(k uint64, _ []byte) { upd = append(upd, k) },
				func(k uint64) { tomb = append(tomb, k) })
		}
		if len(upd) != 1 || upd[0] != 2 || len(tomb) != 1 || tomb[0] != 3 {
			t.Fatalf("epoch 2 delta = upd %v tomb %v, want [2]/[3]", upd, tomb)
		}
	})
}

func TestDeltaAbortRefoldsPendingCut(t *testing.T) {
	eachKVBackend(t, func(t *testing.T, mk func() DeltaStore) {
		st := mk()
		kv := st.(KV)
		st.EnableDeltaTracking()
		kv.Put(1, []byte("a"))
		kv.Put(2, []byte("b"))
		if _, err := st.DeltaCheckpoint(1); err != nil {
			t.Fatal(err)
		}
		if st.DeltaSize() != 0 {
			t.Fatal("cut did not reset the live tracker")
		}
		kv.Put(3, []byte("c"))
		st.AbortDelta()
		// The aborted epoch's keys rejoin the tracker alongside newer ones.
		if got := st.DeltaSize(); got != 3 {
			t.Fatalf("post-abort delta size = %d, want 3", got)
		}
		chunks, err := st.DeltaCheckpoint(1)
		if err != nil {
			t.Fatal(err)
		}
		st.CommitDelta()
		count := 0
		for _, c := range chunks {
			_ = applyDeltaChunk(c, func(uint64, []byte) { count++ }, func(uint64) { count++ })
		}
		if count != 3 {
			t.Fatalf("retried delta carries %d keys, want 3", count)
		}
	})
}

func TestDeltaClearTombstonesEverything(t *testing.T) {
	eachKVBackend(t, func(t *testing.T, mk func() DeltaStore) {
		st := mk()
		kv := st.(KV)
		st.EnableDeltaTracking()
		for i := uint64(0); i < 50; i++ {
			kv.Put(i, []byte("x"))
		}
		st.CutDelta()
		st.CommitDelta()
		kv.Clear()
		kv.Put(7, []byte("only"))

		chunks, err := st.DeltaCheckpoint(2)
		if err != nil {
			t.Fatal(err)
		}
		st.CommitDelta()

		rebuilt := NewKVMap()
		for i := uint64(0); i < 50; i++ {
			rebuilt.Put(i, []byte("x"))
		}
		if err := rebuilt.ApplyDelta(chunks); err != nil {
			t.Fatal(err)
		}
		if got := rebuilt.NumEntries(); got != 1 {
			t.Fatalf("rebuilt entries = %d, want 1", got)
		}
		if v, ok := rebuilt.Get(7); !ok || string(v) != "only" {
			t.Fatalf("rebuilt key 7 = %q, %v", v, ok)
		}
	})
}

func TestSplitDeltaChunk(t *testing.T) {
	st := NewKVMap()
	st.EnableDeltaTracking()
	for i := uint64(0); i < 200; i++ {
		st.Put(i, []byte(fmt.Sprintf("v%d", i)))
	}
	for i := uint64(0); i < 20; i++ {
		st.Delete(i + 1000) // no-ops, not recorded
	}
	st.Put(500, []byte("del-me"))
	st.CutDelta()
	st.CommitDelta()
	st.Put(3, []byte("upd"))
	st.Delete(500)
	chunks, err := st.DeltaCheckpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	st.CommitDelta()

	parts, err := SplitChunk(chunks[0], 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 4 {
		t.Fatalf("split into %d parts", len(parts))
	}
	var upd, tomb int
	for _, p := range parts {
		if !p.Delta {
			t.Fatal("split lost the delta flag")
		}
		err := applyDeltaChunk(p,
			func(k uint64, _ []byte) {
				upd++
				if PartitionKey(k, 4) != p.Index {
					t.Fatalf("key %d in wrong partition %d", k, p.Index)
				}
			},
			func(k uint64) {
				tomb++
				if PartitionKey(k, 4) != p.Index {
					t.Fatalf("tombstone %d in wrong partition %d", k, p.Index)
				}
			})
		if err != nil {
			t.Fatal(err)
		}
	}
	if upd != 1 || tomb != 1 {
		t.Fatalf("split delta carries upd=%d tomb=%d, want 1/1", upd, tomb)
	}
}

func TestRestoreRejectsDeltaChunk(t *testing.T) {
	eachKVBackend(t, func(t *testing.T, mk func() DeltaStore) {
		st := mk()
		st.EnableDeltaTracking()
		st.(KV).Put(1, []byte("x"))
		chunks, err := st.DeltaCheckpoint(1)
		if err != nil {
			t.Fatal(err)
		}
		st.CommitDelta()
		if err := mk().Restore(chunks); err != ErrDeltaChunk {
			t.Fatalf("Restore(delta chunk) = %v, want ErrDeltaChunk", err)
		}
		// And the reverse: ApplyDelta rejects base chunks.
		base, err := st.Checkpoint(1)
		if err != nil {
			t.Fatal(err)
		}
		if err := mk().ApplyDelta(base); err != ErrNotDelta {
			t.Fatalf("ApplyDelta(base chunk) = %v, want ErrNotDelta", err)
		}
	})
}

// TestDeltaConcurrentWriters exercises the tracked hot path under the race
// detector: concurrent writers while delta epochs cut, serialise and merge.
func TestDeltaConcurrentWriters(t *testing.T) {
	eachKVBackend(t, func(t *testing.T, mk func() DeltaStore) {
		st := mk()
		kv := st.(KV)
		st.EnableDeltaTracking()
		for i := uint64(0); i < 500; i++ {
			kv.Put(i, []byte("seed"))
		}
		st.CutDelta()
		st.CommitDelta()

		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := uint64(0); ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					k := (i*4 + uint64(w)) % 600
					switch i % 3 {
					case 0:
						kv.Put(k, []byte("w"))
					case 1:
						kv.Get(k)
					default:
						kv.Delete(k)
					}
				}
			}(w)
		}
		for epoch := 0; epoch < 5; epoch++ {
			if err := st.BeginDirty(); err != nil {
				t.Fatal(err)
			}
			if _, err := st.DeltaCheckpoint(4); err != nil {
				t.Fatal(err)
			}
			if _, err := st.MergeDirty(); err != nil {
				t.Fatal(err)
			}
			st.CommitDelta()
		}
		close(stop)
		wg.Wait()
	})
}
