package state

import (
	"fmt"
	"sync"
	"testing"
)

// Ablation: dirty mode on vs off. The overlay costs one extra map on the
// write path; the paper's design bet is that this is far cheaper than
// blocking writes during snapshots.
func BenchmarkKVMapPutClean(b *testing.B) {
	m := NewKVMap()
	val := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Put(uint64(i%8192), val)
	}
}

func BenchmarkKVMapPutDirty(b *testing.B) {
	m := NewKVMap()
	val := make([]byte, 64)
	for i := 0; i < 8192; i++ {
		m.Put(uint64(i), val)
	}
	if err := m.BeginDirty(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Put(uint64(i%8192), val)
	}
	b.StopTimer()
	if _, err := m.MergeDirty(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkKVMapGet(b *testing.B) {
	m := NewKVMap()
	for i := 0; i < 8192; i++ {
		m.Put(uint64(i), make([]byte, 64))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(uint64(i % 8192))
	}
}

// Ablation: checkpoint chunk-count sweep. More chunks buy m-to-n restore
// parallelism; this measures the serialisation cost of producing them.
func BenchmarkKVMapCheckpointChunks(b *testing.B) {
	for _, chunks := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("chunks=%d", chunks), func(b *testing.B) {
			m := NewKVMap()
			for i := 0; i < 20000; i++ {
				m.Put(uint64(i), make([]byte, 128))
			}
			b.SetBytes(int64(20000 * 128))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Checkpoint(chunks); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSplitChunk(b *testing.B) {
	m := NewKVMap()
	for i := 0; i < 20000; i++ {
		m.Put(uint64(i), make([]byte, 128))
	}
	chunks, err := m.Checkpoint(1)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(chunks[0].Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SplitChunk(chunks[0], 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKVMapRestore(b *testing.B) {
	m := NewKVMap()
	for i := 0; i < 20000; i++ {
		m.Put(uint64(i), make([]byte, 128))
	}
	chunks, err := m.Checkpoint(4)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(20000 * 128))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewKVMap()
		if err := r.Restore(chunks); err != nil {
			b.Fatal(err)
		}
	}
}

// The head-to-head benchmarks run over kvImpls (shardedkv_test.go), the
// same backend table the cross-implementation tests use.

// BenchmarkKVMapParallelPut is the tentpole comparison: concurrent writers
// against the single-lock vs lock-striped store. The single-lock store
// flatlines (or regresses) past one writer; the sharded store scales until
// writers out-number cores.
func BenchmarkKVMapParallelPut(b *testing.B) {
	val := make([]byte, 64)
	for _, impl := range kvImpls {
		for _, writers := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("impl=%s/writers=%d", impl.name, writers), func(b *testing.B) {
				m := impl.new()
				per := b.N/writers + 1
				b.ResetTimer()
				var wg sync.WaitGroup
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						base := uint64(w) << 32
						for i := 0; i < per; i++ {
							m.Put(base|uint64(i%8192), val)
						}
					}(w)
				}
				wg.Wait()
			})
		}
	}
}

// BenchmarkKVMapParallelMixed measures a 90/10 read/write mix, the shape of
// the paper's KV serving workload (§6.1).
func BenchmarkKVMapParallelMixed(b *testing.B) {
	val := make([]byte, 64)
	for _, impl := range kvImpls {
		for _, workers := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("impl=%s/workers=%d", impl.name, workers), func(b *testing.B) {
				m := impl.new()
				for i := uint64(0); i < 8192; i++ {
					m.Put(i, val)
				}
				per := b.N/workers + 1
				b.ResetTimer()
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for i := 0; i < per; i++ {
							k := uint64((i*7 + w*13) % 8192)
							if i%10 == 0 {
								m.Put(k, val)
							} else {
								m.Get(k)
							}
						}
					}(w)
				}
				wg.Wait()
			})
		}
	}
}

// BenchmarkKVMapParallelPutCheckpointed measures writer throughput while a
// background goroutine continuously checkpoints a quiescent (non-dirty)
// store — the stall the paper's design is built to avoid. The single-lock
// store blocks every Put for a full serialisation pass; the sharded store
// blocks only writes to the shard currently being encoded, so it wins by
// roughly the shard count even on a single core. The first checkpoint
// completes before the timer starts so b.N calibrates under contention.
func BenchmarkKVMapParallelPutCheckpointed(b *testing.B) {
	val := make([]byte, 128)
	for _, impl := range kvImpls {
		for _, writers := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("impl=%s/writers=%d", impl.name, writers), func(b *testing.B) {
				m := impl.new()
				for i := uint64(0); i < 20000; i++ {
					m.Put(i, val)
				}
				stop := make(chan struct{})
				first := make(chan struct{})
				var ckWg sync.WaitGroup
				ckWg.Add(1)
				go func() {
					defer ckWg.Done()
					for n := 0; ; n++ {
						if _, err := m.Checkpoint(4); err != nil {
							return
						}
						if n == 0 {
							close(first)
						}
						select {
						case <-stop:
							return
						default:
						}
					}
				}()
				<-first
				b.ResetTimer()
				per := b.N/writers + 1
				var wg sync.WaitGroup
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						base := uint64(w) << 32
						for i := 0; i < per; i++ {
							m.Put(base|uint64(i%8192), val)
						}
					}(w)
				}
				wg.Wait()
				b.StopTimer()
				close(stop)
				ckWg.Wait()
			})
		}
	}
}

// BenchmarkKVMapCheckpointImpl compares snapshot serialisation: the
// single-lock store encodes on one goroutine, the sharded store encodes one
// worker per shard.
func BenchmarkKVMapCheckpointImpl(b *testing.B) {
	for _, impl := range kvImpls {
		b.Run("impl="+impl.name, func(b *testing.B) {
			m := impl.new()
			for i := uint64(0); i < 20000; i++ {
				m.Put(i, make([]byte, 128))
			}
			b.SetBytes(int64(20000 * 128))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Checkpoint(4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKVMapRestoreImpl compares restore: the sharded store decodes
// chunks in parallel.
func BenchmarkKVMapRestoreImpl(b *testing.B) {
	src := NewKVMap()
	for i := uint64(0); i < 20000; i++ {
		src.Put(i, make([]byte, 128))
	}
	chunks, err := src.Checkpoint(8)
	if err != nil {
		b.Fatal(err)
	}
	for _, impl := range kvImpls {
		b.Run("impl="+impl.name, func(b *testing.B) {
			b.SetBytes(int64(20000 * 128))
			for i := 0; i < b.N; i++ {
				r := impl.new()
				if err := r.Restore(chunks); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMatrixAdd(b *testing.B) {
	m := NewMatrix()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Add(int64(i%512), int64(i%97), 1)
	}
}

func BenchmarkMatrixMulVec(b *testing.B) {
	m := NewMatrix()
	for r := int64(0); r < 512; r++ {
		for c := int64(0); c < 32; c++ {
			m.Set(r, (r+c*7)%512, 1)
		}
	}
	x := map[int64]float64{}
	for c := int64(0); c < 512; c += 3 {
		x[c] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(x)
	}
}

func BenchmarkVectorAddScaled(b *testing.B) {
	v := NewVector(1024)
	x := make([]float64, 1024)
	for i := range x {
		x[i] = float64(i)
	}
	b.SetBytes(1024 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.AddScaled(x, 0.001)
	}
}
