package state

import (
	"fmt"
	"testing"
)

// Ablation: dirty mode on vs off. The overlay costs one extra map on the
// write path; the paper's design bet is that this is far cheaper than
// blocking writes during snapshots.
func BenchmarkKVMapPutClean(b *testing.B) {
	m := NewKVMap()
	val := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Put(uint64(i%8192), val)
	}
}

func BenchmarkKVMapPutDirty(b *testing.B) {
	m := NewKVMap()
	val := make([]byte, 64)
	for i := 0; i < 8192; i++ {
		m.Put(uint64(i), val)
	}
	if err := m.BeginDirty(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Put(uint64(i%8192), val)
	}
	b.StopTimer()
	if _, err := m.MergeDirty(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkKVMapGet(b *testing.B) {
	m := NewKVMap()
	for i := 0; i < 8192; i++ {
		m.Put(uint64(i), make([]byte, 64))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(uint64(i % 8192))
	}
}

// Ablation: checkpoint chunk-count sweep. More chunks buy m-to-n restore
// parallelism; this measures the serialisation cost of producing them.
func BenchmarkKVMapCheckpointChunks(b *testing.B) {
	for _, chunks := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("chunks=%d", chunks), func(b *testing.B) {
			m := NewKVMap()
			for i := 0; i < 20000; i++ {
				m.Put(uint64(i), make([]byte, 128))
			}
			b.SetBytes(int64(20000 * 128))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Checkpoint(chunks); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSplitChunk(b *testing.B) {
	m := NewKVMap()
	for i := 0; i < 20000; i++ {
		m.Put(uint64(i), make([]byte, 128))
	}
	chunks, err := m.Checkpoint(1)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(chunks[0].Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SplitChunk(chunks[0], 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKVMapRestore(b *testing.B) {
	m := NewKVMap()
	for i := 0; i < 20000; i++ {
		m.Put(uint64(i), make([]byte, 128))
	}
	chunks, err := m.Checkpoint(4)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(20000 * 128))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewKVMap()
		if err := r.Restore(chunks); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatrixAdd(b *testing.B) {
	m := NewMatrix()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Add(int64(i%512), int64(i%97), 1)
	}
}

func BenchmarkMatrixMulVec(b *testing.B) {
	m := NewMatrix()
	for r := int64(0); r < 512; r++ {
		for c := int64(0); c < 32; c++ {
			m.Set(r, (r+c*7)%512, 1)
		}
	}
	x := map[int64]float64{}
	for c := int64(0); c < 512; c += 3 {
		x[c] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(x)
	}
}

func BenchmarkVectorAddScaled(b *testing.B) {
	v := NewVector(1024)
	x := make([]float64, 1024)
	for i := range x {
		x[i] = float64(i)
	}
	b.SetBytes(1024 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.AddScaled(x, 0.001)
	}
}
