package state

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Delta checkpoints (incremental snapshots) extend the §5 dirty-state
// machinery: instead of serialising the full base every epoch, a store can
// track which keys changed since the last committed checkpoint cut and emit
// only those — updated keys with their current values plus tombstones for
// deleted keys. For a large dictionary with low churn this cuts the bytes
// encoded, transferred and written per epoch by orders of magnitude.
//
// The wire format is a versioned extension of the base chunk format: a
// delta chunk (Chunk.Delta == true, still TypeKVMap) carries
//
//	uvarint(updateCount) updateCount × (uvarint(key), uvarint(len)+bytes)
//	uvarint(tombCount)   tombCount   × uvarint(key)
//
// i.e. the base format's entry list followed by a tombstone key list. Delta
// chunks hash-partition exactly like base chunks, so SplitChunk re-splits
// them n-ways and the m-to-n parallel restore of Fig. 4 works unchanged:
// each recovering instance applies its base group first, then its delta
// groups in epoch order.
//
// Tracking follows a two-phase commit so that an aborted backup never loses
// changes: DeltaCheckpoint (or CutDelta for a full checkpoint) atomically
// snapshots the changed-key set into a pending cut and resets the live set;
// CommitDelta drops the pending cut once the epoch is durably saved, while
// AbortDelta folds it back into the live set so the next epoch re-covers
// the same keys. The §5 lock discipline makes the cut consistent: both
// operations run between BeginDirty and MergeDirty, when the base is frozen
// and base-path writers (the only ones that record into the live set
// directly) are diverted to the overlay; MergeDirty then retains the merged
// overlay — updated keys plus tombstones — in the live set, so writes that
// landed during the checkpoint window belong to the *next* epoch.

// deltaTrack is the changed-key tracker embedded in each dictionary store
// (one per shard in ShardedKVMap). The `on` flag is read on every base
// write, so it is atomic and checked before the mutex is touched; when
// tracking is off the hot path pays a single atomic load.
type deltaTrack struct {
	on      atomic.Bool
	mu      sync.Mutex
	changed map[uint64]struct{} // keys mutated since the last cut
	pending map[uint64]struct{} // cut awaiting CommitDelta/AbortDelta
}

func (t *deltaTrack) enable() {
	t.mu.Lock()
	if t.changed == nil {
		t.changed = make(map[uint64]struct{})
	}
	t.on.Store(true)
	t.mu.Unlock()
}

func (t *deltaTrack) enabled() bool { return t.on.Load() }

// record notes one mutated key. Callers hold the store's base lock, so a
// record can never race a cut (which runs under the base read lock while
// writers are diverted, or on a quiescent store).
func (t *deltaTrack) record(key uint64) {
	if !t.on.Load() {
		return
	}
	t.mu.Lock()
	t.changed[key] = struct{}{}
	t.mu.Unlock()
}

// noteMerge retains a merged dirty overlay: every overlay key and tombstone
// becomes part of the next epoch's delta.
func (t *deltaTrack) noteMerge(ovl map[uint64][]byte, tomb map[uint64]struct{}) {
	if !t.on.Load() {
		return
	}
	t.mu.Lock()
	for k := range ovl {
		t.changed[k] = struct{}{}
	}
	for k := range tomb {
		t.changed[k] = struct{}{}
	}
	t.mu.Unlock()
}

// noteBase records every key of a base map, used before wholesale wipes
// (Clear, Split) so the next delta tombstones the removed keys.
func (t *deltaTrack) noteBase(base map[uint64][]byte) {
	if !t.on.Load() {
		return
	}
	t.mu.Lock()
	for k := range base {
		t.changed[k] = struct{}{}
	}
	t.mu.Unlock()
}

// drain steals the full change window — live set plus any pending cut — and
// resets the tracker. Merge uses it to move a retiring store's window into
// the absorber; the pending set is folded in defensively so a cut whose save
// was never resolved cannot drop keys across the merge.
func (t *deltaTrack) drain() map[uint64]struct{} {
	if !t.on.Load() {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.changed
	for k := range t.pending {
		out[k] = struct{}{}
	}
	t.changed = make(map[uint64]struct{})
	t.pending = nil
	return out
}

// noteKeys folds a drained change window into the live set.
func (t *deltaTrack) noteKeys(keys map[uint64]struct{}) {
	if !t.on.Load() || len(keys) == 0 {
		return
	}
	t.mu.Lock()
	for k := range keys {
		t.changed[k] = struct{}{}
	}
	t.mu.Unlock()
}

// noteKey folds a single key into the live set.
func (t *deltaTrack) noteKey(key uint64) {
	if !t.on.Load() {
		return
	}
	t.mu.Lock()
	t.changed[key] = struct{}{}
	t.mu.Unlock()
}

// cut snapshots the tracked keys into the pending set and resets the live
// set. An uncommitted earlier cut (a delta save that was never committed or
// aborted) is folded in defensively so no change can be dropped. The caller
// serialises cuts (KVMap via mu, ShardedKVMap via lifecycle) and owns the
// returned set until commit or abort.
func (t *deltaTrack) cut() map[uint64]struct{} {
	if !t.on.Load() {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	eff := t.changed
	for k := range t.pending {
		eff[k] = struct{}{}
	}
	t.pending = eff
	t.changed = make(map[uint64]struct{})
	return eff
}

// commit drops the pending cut: its keys are durably covered by the saved
// epoch.
func (t *deltaTrack) commit() {
	t.mu.Lock()
	t.pending = nil
	t.mu.Unlock()
}

// abort folds the pending cut back into the live set: the save failed, so
// the next epoch must cover these keys again.
func (t *deltaTrack) abort() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pending == nil {
		return
	}
	if len(t.changed) == 0 {
		t.changed = t.pending
	} else {
		for k := range t.pending {
			t.changed[k] = struct{}{}
		}
	}
	t.pending = nil
}

func (t *deltaTrack) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.changed)
}

// deltaEnc accumulates one partition of a delta chunk: the update entries
// and the tombstone keys are encoded into separate bodies and stitched
// together (count-prefixed) when the chunk is assembled.
type deltaEnc struct {
	upd, tmb   *encoder
	ucnt, tcnt uint64
}

func newDeltaEnc(hint int) *deltaEnc {
	return &deltaEnc{upd: newEncoder(hint), tmb: newEncoder(16)}
}

func (e *deltaEnc) update(k uint64, v []byte) {
	e.upd.uvarint(k)
	e.upd.bytes(v)
	e.ucnt++
}

func (e *deltaEnc) tombstone(k uint64) {
	e.tmb.uvarint(k)
	e.tcnt++
}

// assembleDeltaChunks stitches per-shard-per-partition delta encoders into
// n self-describing delta chunks. groups[g][p] is shard g's contribution to
// partition p; KVMap passes a single group.
func assembleDeltaChunks(n int, groups [][]*deltaEnc) []Chunk {
	chunks := make([]Chunk, n)
	for p := 0; p < n; p++ {
		var ucnt, tcnt uint64
		size := 0
		for g := range groups {
			e := groups[g][p]
			ucnt += e.ucnt
			tcnt += e.tcnt
			size += len(e.upd.buf) + len(e.tmb.buf)
		}
		head := newEncoder(size + 20)
		head.uvarint(ucnt)
		for g := range groups {
			head.buf = append(head.buf, groups[g][p].upd.buf...)
		}
		head.uvarint(tcnt)
		for g := range groups {
			head.buf = append(head.buf, groups[g][p].tmb.buf...)
		}
		chunks[p] = Chunk{Type: TypeKVMap, Index: p, Of: n, Delta: true, Data: head.buf}
	}
	return chunks
}

// applyDeltaChunk decodes one delta chunk into put/delete callbacks.
func applyDeltaChunk(c Chunk, put func(uint64, []byte), del func(uint64)) error {
	if c.Type != TypeKVMap && c.Type != TypeShardedKVMap {
		return ErrWrongChunkType
	}
	if !c.Delta {
		return ErrNotDelta
	}
	d := newDecoder(c.Data)
	nu := d.uvarint()
	for i := uint64(0); i < nu && d.err == nil; i++ {
		k := d.uvarint()
		v := d.bytes()
		if d.err == nil {
			put(k, v)
		}
	}
	nt := d.uvarint()
	for i := uint64(0); i < nt && d.err == nil; i++ {
		k := d.uvarint()
		if d.err == nil {
			del(k)
		}
	}
	return d.err
}

// splitKVDeltaChunk re-partitions one delta chunk into n delta chunks,
// mirroring splitKVChunk for the restore-time m-to-n fan-out.
func splitKVDeltaChunk(c Chunk, n int) ([]Chunk, error) {
	encs := make([]*deltaEnc, n)
	for i := range encs {
		encs[i] = newDeltaEnc(len(c.Data)/n + 16)
	}
	d := newDecoder(c.Data)
	nu := d.uvarint()
	for i := uint64(0); i < nu; i++ {
		k := d.uvarint()
		v := d.bytes()
		if d.err != nil {
			return nil, d.err
		}
		encs[PartitionKey(k, n)].update(k, v)
	}
	nt := d.uvarint()
	for i := uint64(0); i < nt; i++ {
		k := d.uvarint()
		if d.err != nil {
			return nil, d.err
		}
		encs[PartitionKey(k, n)].tombstone(k)
	}
	if d.err != nil {
		return nil, d.err
	}
	return assembleDeltaChunks(n, [][]*deltaEnc{encs}), nil
}

// --- KVMap ---

// EnableDeltaTracking starts recording changed keys so DeltaCheckpoint can
// serialise incremental epochs. The first checkpoint after enabling must be
// a full one: only changes made after this call are tracked.
func (m *KVMap) EnableDeltaTracking() { m.delta.enable() }

// DeltaTracking reports whether changed-key tracking is on.
func (m *KVMap) DeltaTracking() bool { return m.delta.enabled() }

// DeltaSize reports the number of keys changed since the last cut.
func (m *KVMap) DeltaSize() int { return m.delta.size() }

// CutDelta snapshots and resets the changed-key tracker without
// serialising, marking a full checkpoint's cut point. Call between
// BeginDirty and MergeDirty (or on a quiescent store), then CommitDelta or
// AbortDelta once the epoch's fate is known.
func (m *KVMap) CutDelta() {
	m.mu.RLock()
	defer m.mu.RUnlock()
	m.delta.cut()
}

// CommitDelta drops the pending cut after a successful save.
func (m *KVMap) CommitDelta() { m.delta.commit() }

// AbortDelta restores the pending cut into the live tracker after a failed
// save.
func (m *KVMap) AbortDelta() { m.delta.abort() }

// DeltaCheckpoint serialises the keys changed since the last committed cut
// into n hash-partitioned delta chunks and begins a pending cut. Like
// Checkpoint it reads the frozen base, so it must run while dirty mode is
// active (or on a quiescent store).
func (m *KVMap) DeltaCheckpoint(n int) ([]Chunk, error) {
	if n < 1 {
		return nil, ErrBadSplit
	}
	if !m.delta.enabled() {
		return nil, ErrDeltaInactive
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	keys := m.delta.cut()
	encs := make([]*deltaEnc, n)
	hint := 64
	if len(keys) > 0 && len(m.base) > 0 {
		hint = int(m.size.Load())/len(m.base)*len(keys)/n + 64
	}
	for i := range encs {
		encs[i] = newDeltaEnc(hint)
	}
	for k := range keys {
		p := PartitionKey(k, n)
		if v, ok := m.base[k]; ok {
			encs[p].update(k, v)
		} else {
			encs[p].tombstone(k)
		}
	}
	return assembleDeltaChunks(n, [][]*deltaEnc{encs}), nil
}

// ApplyDelta replays delta chunks onto the store: updates become puts,
// tombstones become deletes. Chunks from different epochs must be applied
// in separate calls in epoch order.
func (m *KVMap) ApplyDelta(chunks []Chunk) error {
	for _, c := range chunks {
		err := applyDeltaChunk(c,
			func(k uint64, v []byte) { m.Put(k, v) },
			func(k uint64) { m.Delete(k) })
		if err != nil {
			return err
		}
	}
	return nil
}

// --- ShardedKVMap ---

// EnableDeltaTracking starts recording changed keys on every shard.
func (m *ShardedKVMap) EnableDeltaTracking() {
	for _, s := range m.shards {
		s.delta.enable()
	}
}

// DeltaTracking reports whether changed-key tracking is on.
func (m *ShardedKVMap) DeltaTracking() bool { return m.shards[0].delta.enabled() }

// DeltaSize reports the number of keys changed since the last cut.
func (m *ShardedKVMap) DeltaSize() int {
	n := 0
	for _, s := range m.shards {
		n += s.delta.size()
	}
	return n
}

// CutDelta snapshots and resets every shard's tracker (see KVMap.CutDelta).
func (m *ShardedKVMap) CutDelta() {
	m.lifecycle.Lock()
	defer m.lifecycle.Unlock()
	for _, s := range m.shards {
		s.delta.cut()
	}
}

// CommitDelta drops every shard's pending cut.
func (m *ShardedKVMap) CommitDelta() {
	for _, s := range m.shards {
		s.delta.commit()
	}
}

// AbortDelta restores every shard's pending cut into its live tracker.
func (m *ShardedKVMap) AbortDelta() {
	for _, s := range m.shards {
		s.delta.abort()
	}
}

// DeltaCheckpoint serialises the changed keys into n hash-partitioned delta
// chunks, one encoding worker per shard, and begins a pending cut. Chunks
// are byte-format-identical to KVMap's delta chunks.
func (m *ShardedKVMap) DeltaCheckpoint(n int) ([]Chunk, error) {
	if n < 1 {
		return nil, ErrBadSplit
	}
	if !m.DeltaTracking() {
		return nil, ErrDeltaInactive
	}
	m.lifecycle.Lock()
	defer m.lifecycle.Unlock()
	groups := make([][]*deltaEnc, len(m.shards))
	m.eachShardIdx(func(i int, s *kvShard) error {
		encs := make([]*deltaEnc, n)
		for p := range encs {
			encs[p] = newDeltaEnc(64)
		}
		keys := s.delta.cut()
		s.mu.RLock()
		for k := range keys {
			p := PartitionKey(k, n)
			if v, ok := s.base[k]; ok {
				encs[p].update(k, v)
			} else {
				encs[p].tombstone(k)
			}
		}
		s.mu.RUnlock()
		groups[i] = encs
		return nil
	})
	return assembleDeltaChunks(n, groups), nil
}

// ApplyDelta replays delta chunks onto the store, decoding chunks on a
// bounded worker pool (chunks of one epoch are disjoint partitions, so
// their puts and deletes never target the same key).
func (m *ShardedKVMap) ApplyDelta(chunks []Chunk) error {
	errs := make([]error, len(chunks))
	workers := 2 * runtime.GOMAXPROCS(0)
	if workers > len(chunks) {
		workers = len(chunks)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(chunks) {
					return
				}
				errs[i] = applyDeltaChunk(chunks[i],
					func(k uint64, v []byte) { m.Put(k, v) },
					func(k uint64) { m.Delete(k) })
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Compile-time checks: both dictionary backends support delta checkpoints.
var (
	_ DeltaStore = (*KVMap)(nil)
	_ DeltaStore = (*ShardedKVMap)(nil)
)
