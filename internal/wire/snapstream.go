package wire

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/state"
	"repro/internal/wire/flat"
)

// This file defines the v2 streaming snapshot transfer protocol. A worker's
// state no longer crosses the wire as one monolithic gob Snapshot/Restore
// frame: it is split into self-describing SnapParts, each well under the
// frame cap, and pulled (SnapBegin/SnapNext -> SnapChunk*/SnapEnd) or
// pushed (RestoreBegin/RestoreChunk*/RestoreEnd) one part per frame with a
// per-stream id and a dense chunk seq for idempotent retry. SplitSnapshot
// and AssembleSnapshot convert between the part stream and the v1
// monolithic Snapshot, which stays as the version-negotiation fallback.

// SnapPart kinds. Each part carries exactly one unit of a worker's
// snapshot; the Kind decides which fields are meaningful.
const (
	// PartSE: one state-store checkpoint chunk of SE Name/Index
	// (Store/ChunkIndex/ChunkOf/Delta/Data mirror state.Chunk).
	PartSE byte = 1
	// PartTE: TE instance Name/Index recovery metadata
	// (Watermarks, OutSeq).
	PartTE byte = 2
	// PartTEBuf: a slice of TE instance Name/Index's replay log for
	// out-edge Edge, items flat-encoded with EncodeItems in Data. A long
	// log splits into several parts; order within one (Name, Index, Edge)
	// follows stream order.
	PartTEBuf byte = 3
	// PartEdge: a slice of the cross-worker send log toward global
	// instance Inst over graph edge Edge, EncodeItems-encoded in Data.
	PartEdge byte = 4
)

// SnapPart is one streamed unit of a worker snapshot. The flat layout
// encodes every field unconditionally so the codec stays branch-free; the
// unused fields of a kind are zero.
type SnapPart struct {
	Kind       byte
	Name       string // SE or TE name (PartSE, PartTE, PartTEBuf)
	Index      int    // SE or TE instance index
	Store      state.StoreType
	ChunkIndex int
	ChunkOf    int
	Delta      bool
	Watermarks map[uint64]uint64
	OutSeq     uint64
	Edge       int
	Inst       int
	Data       []byte
}

// SnapBegin opens a snapshot pull stream on the worker. The worker cuts a
// consistent snapshot (pausing processing only for the cut, not the
// transfer) and serves it chunk by chunk via SnapNext.
type SnapBegin struct {
	Stream uint64
	// Chunks is the per-store checkpoint parallelism hint (mirrors
	// SnapshotReq.Chunks; 0 = default).
	Chunks int
	// MaxBytes bounds the encoded payload of each served part
	// (0 = worker default). One oversized entry may still exceed it;
	// the bound is per-part best effort, never per-frame exact.
	MaxBytes int
}

// SnapBeginAck confirms the stream is open and the cut is taken.
type SnapBeginAck struct {
	Stream uint64
}

// SnapNext requests chunk Seq (1-based, dense) of an open stream. Repeating
// the last Seq re-serves the identical frame, so a lost reply is retried
// without advancing the stream.
type SnapNext struct {
	Stream uint64
	Seq    uint64
}

// SnapChunk answers SnapNext with one part.
type SnapChunk struct {
	Stream uint64
	Seq    uint64
	Part   SnapPart
}

// SnapEnd answers the SnapNext past the last part: the stream is complete
// and closed. Chunks and Bytes let the puller verify it saw everything.
type SnapEnd struct {
	Stream uint64
	Chunks uint64
	Bytes  uint64
}

// RestoreBegin opens a restore push stream on a freshly deployed worker.
type RestoreBegin struct {
	Stream uint64
}

// RestoreBeginAck confirms the worker is ready for chunks.
type RestoreBeginAck struct {
	Stream uint64
}

// RestoreChunk delivers part Seq (1-based, dense). Re-sending the most
// recently applied Seq after a lost ack is acked again without re-applying
// (replay-log appends are not idempotent); any other gap aborts the stream.
type RestoreChunk struct {
	Stream uint64
	Seq    uint64
	Part   SnapPart
}

// RestoreChunkAck confirms part Seq was applied.
type RestoreChunkAck struct {
	Stream uint64
	Seq    uint64
}

// RestoreEnd closes the push stream; Chunks must match the applied count or
// the worker rejects the restore as truncated.
type RestoreEnd struct {
	Stream uint64
	Chunks uint64
}

// RestoreEndAck confirms the restore is complete and the worker unsealed.
type RestoreEndAck struct {
	Stream uint64
}

// encodePartFields appends the flat layout of a part (see SnapPart).
func encodePartFields(e *flat.Encoder, p *SnapPart) {
	e.Byte(p.Kind)
	e.Str(p.Name)
	e.Uvarint(uint64(p.Index))
	e.Byte(byte(p.Store))
	e.Uvarint(uint64(p.ChunkIndex))
	e.Uvarint(uint64(p.ChunkOf))
	if p.Delta {
		e.Byte(1)
	} else {
		e.Byte(0)
	}
	e.Uvarint(uint64(len(p.Watermarks)))
	// Sorted origin order so identical parts encode to identical bytes
	// (retry caches and tests compare frames byte-for-byte).
	origins := make([]uint64, 0, len(p.Watermarks))
	for o := range p.Watermarks {
		origins = append(origins, o)
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
	for _, o := range origins {
		e.Uvarint(o)
		e.Uvarint(p.Watermarks[o])
	}
	e.Uvarint(p.OutSeq)
	e.Uvarint(uint64(p.Edge))
	e.Uvarint(uint64(p.Inst))
	e.Blob(p.Data)
}

// decodePartFields parses the flat layout of a part.
func decodePartFields(d *flat.Decoder) (SnapPart, error) {
	var p SnapPart
	p.Kind = d.Byte()
	p.Name = d.Str()
	p.Index = int(d.Uvarint())
	p.Store = state.StoreType(d.Byte())
	p.ChunkIndex = int(d.Uvarint())
	p.ChunkOf = int(d.Uvarint())
	p.Delta = d.Byte() != 0
	n := d.Uvarint()
	if d.Err() == nil && n > uint64(d.Remaining())/2 {
		return p, fmt.Errorf("%w: watermark count %d exceeds payload", ErrBadPayload, n)
	}
	if d.Err() == nil && n > 0 {
		p.Watermarks = make(map[uint64]uint64, n)
		for i := uint64(0); i < n; i++ {
			o := d.Uvarint()
			p.Watermarks[o] = d.Uvarint()
			if d.Err() != nil {
				break
			}
		}
	}
	p.OutSeq = d.Uvarint()
	p.Edge = int(d.Uvarint())
	p.Inst = int(d.Uvarint())
	p.Data = d.Blob()
	return p, nil
}

// EncodeSnapPart flat-encodes one part on its own (no envelope) — the
// coordinator's retention format for pulled chunks. The returned slice is
// freshly allocated and owned by the caller.
func EncodeSnapPart(p *SnapPart) []byte {
	e := flat.GetEncoder()
	defer flat.PutEncoder(e)
	encodePartFields(e, p)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

// DecodeSnapPart parses an EncodeSnapPart payload. The part copies its
// bytes out of b, so b may be reused afterwards.
func DecodeSnapPart(b []byte) (SnapPart, error) {
	d := flat.NewDecoder(b)
	p, err := decodePartFields(d)
	if err != nil {
		return p, err
	}
	if err := d.Err(); err != nil {
		return p, fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	if !d.Done() {
		return p, fmt.Errorf("%w: %d trailing byte(s)", ErrBadPayload, d.Remaining())
	}
	return p, nil
}

// SplitSnapshot flattens a v1 monolithic Snapshot into the equivalent part
// stream: per TE instance one PartTE plus one PartTEBuf per non-empty
// replay log, per cross-worker edge log one PartEdge, per SE chunk one
// PartSE. Parts reference (not copy) the snapshot's backing bytes.
func SplitSnapshot(snap *Snapshot) []SnapPart {
	var parts []SnapPart
	for i := range snap.TEs {
		te := &snap.TEs[i]
		parts = append(parts, SnapPart{
			Kind:       PartTE,
			Name:       te.TE,
			Index:      te.Index,
			Watermarks: te.Watermarks,
			OutSeq:     te.OutSeq,
		})
		for edge, data := range te.Buffered {
			if len(data) == 0 {
				continue
			}
			parts = append(parts, SnapPart{
				Kind:  PartTEBuf,
				Name:  te.TE,
				Index: te.Index,
				Edge:  edge,
				Data:  data,
			})
		}
	}
	for i := range snap.Edges {
		es := &snap.Edges[i]
		if len(es.Data) == 0 {
			continue
		}
		parts = append(parts, SnapPart{
			Kind: PartEdge,
			Edge: es.Edge,
			Inst: es.Inst,
			Data: es.Data,
		})
	}
	for i := range snap.SEs {
		se := &snap.SEs[i]
		for _, c := range se.Chunks {
			parts = append(parts, SnapPart{
				Kind:       PartSE,
				Name:       se.SE,
				Index:      se.Index,
				Store:      c.Type,
				ChunkIndex: c.Index,
				ChunkOf:    c.Of,
				Delta:      c.Delta,
				Data:       c.Data,
			})
		}
	}
	return parts
}

type snapKey struct {
	name  string
	index int
}

// AssembleSnapshot reconstructs a v1 monolithic Snapshot from a part
// stream — the back-compat push path toward a pre-streaming worker. Split
// replay-log blobs for the same (TE, Index, Edge) or (Edge, Inst) are
// merged by decoding and re-encoding their items (the EncodeItems format
// has a leading count, so raw concatenation would be invalid). Buffered
// edge slots a TE never filled get a valid empty-items blob, matching what
// an old worker's decode loop expects.
func AssembleSnapshot(parts []SnapPart) (Snapshot, error) {
	var snap Snapshot
	teIdx := make(map[snapKey]int)
	seIdx := make(map[snapKey]int)
	type bufKey struct {
		name  string
		index int
		edge  int
	}
	type edgeKey struct {
		edge int
		inst int
	}
	bufs := make(map[bufKey][]core.Item)
	edges := make(map[edgeKey][]core.Item)
	var bufOrder []bufKey
	var edgeOrder []edgeKey

	for i := range parts {
		p := &parts[i]
		switch p.Kind {
		case PartTE:
			k := snapKey{p.Name, p.Index}
			if _, dup := teIdx[k]; dup {
				return snap, fmt.Errorf("wire: duplicate TE part %s/%d", p.Name, p.Index)
			}
			teIdx[k] = len(snap.TEs)
			snap.TEs = append(snap.TEs, TESnap{
				TE:         p.Name,
				Index:      p.Index,
				Watermarks: p.Watermarks,
				OutSeq:     p.OutSeq,
			})
		case PartTEBuf:
			items, err := DecodeItems(p.Data)
			if err != nil {
				return snap, fmt.Errorf("wire: TE buffer part %s/%d edge %d: %w", p.Name, p.Index, p.Edge, err)
			}
			k := bufKey{p.Name, p.Index, p.Edge}
			if _, seen := bufs[k]; !seen {
				bufOrder = append(bufOrder, k)
			}
			bufs[k] = append(bufs[k], items...)
		case PartEdge:
			items, err := DecodeItems(p.Data)
			if err != nil {
				return snap, fmt.Errorf("wire: edge log part %d/%d: %w", p.Edge, p.Inst, err)
			}
			k := edgeKey{p.Edge, p.Inst}
			if _, seen := edges[k]; !seen {
				edgeOrder = append(edgeOrder, k)
			}
			edges[k] = append(edges[k], items...)
		case PartSE:
			k := snapKey{p.Name, p.Index}
			idx, seen := seIdx[k]
			if !seen {
				idx = len(snap.SEs)
				seIdx[k] = idx
				snap.SEs = append(snap.SEs, SESnap{SE: p.Name, Index: p.Index})
			}
			snap.SEs[idx].Chunks = append(snap.SEs[idx].Chunks, state.Chunk{
				Type:  p.Store,
				Index: p.ChunkIndex,
				Of:    p.ChunkOf,
				Delta: p.Delta,
				Data:  p.Data,
			})
		default:
			return snap, fmt.Errorf("wire: unknown snapshot part kind %d", p.Kind)
		}
	}

	for _, k := range bufOrder {
		idx, seen := teIdx[snapKey{k.name, k.index}]
		if !seen {
			return snap, fmt.Errorf("wire: TE buffer part %s/%d without TE part", k.name, k.index)
		}
		te := &snap.TEs[idx]
		for len(te.Buffered) <= k.edge {
			empty, err := EncodeItems(nil)
			if err != nil {
				return snap, err
			}
			te.Buffered = append(te.Buffered, empty)
		}
		data, err := EncodeItems(bufs[k])
		if err != nil {
			return snap, fmt.Errorf("wire: TE buffer part %s/%d edge %d: %w", k.name, k.index, k.edge, err)
		}
		te.Buffered[k.edge] = data
	}
	sort.Slice(edgeOrder, func(i, j int) bool {
		if edgeOrder[i].edge != edgeOrder[j].edge {
			return edgeOrder[i].edge < edgeOrder[j].edge
		}
		return edgeOrder[i].inst < edgeOrder[j].inst
	})
	for _, k := range edgeOrder {
		data, err := EncodeItems(edges[k])
		if err != nil {
			return snap, fmt.Errorf("wire: edge log part %d/%d: %w", k.edge, k.inst, err)
		}
		snap.Edges = append(snap.Edges, EdgeLogSnap{
			Edge: k.edge,
			Inst: k.inst,
			Data: data,
		})
	}
	return snap, nil
}
