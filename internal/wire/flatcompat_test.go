package wire

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
)

// fuzzPayload exercises the TagGob fallback inside flat frames.
type fuzzPayload struct {
	N int
	S string
}

func init() {
	gob.Register(fuzzPayload{})
}

// TestGobV1Interop: a v2 peer must keep reading v1 (gob) envelopes for
// every message type — mixed-version clusters exist during a rolling
// upgrade — and EncodeGob must keep producing them.
func TestGobV1Interop(t *testing.T) {
	msgs := []struct {
		msgType byte
		in      any
		decode  func(p Payload) (any, error)
	}{
		{MsgInject, Inject{Task: "put", Items: []core.Item{{Origin: ^uint64(0), Seq: 1, Key: 2, Value: []byte("v")}}},
			func(p Payload) (any, error) { var m Inject; err := Unmarshal(p, &m); return m, err }},
		{MsgCall, Call{Task: "get", Item: core.Item{Key: 9}, TimeoutMs: 100},
			func(p Payload) (any, error) { var m Call; err := Unmarshal(p, &m); return m, err }},
		{MsgHeartbeat, Heartbeat{Seq: 77},
			func(p Payload) (any, error) { var m Heartbeat; err := Unmarshal(p, &m); return m, err }},
		{MsgRemoteEmit, RemoteEmit{Edge: 1, Inst: 3, Items: []core.Item{{Origin: 1 << 40, Seq: 5, Key: 6, Value: []byte("e")}}},
			func(p Payload) (any, error) { var m RemoteEmit; err := Unmarshal(p, &m); return m, err }},
	}
	for _, m := range msgs {
		frame, err := EncodeGob(m.msgType, m.in)
		if err != nil {
			t.Fatal(err)
		}
		if frame[1] != VersionGob {
			t.Fatalf("EncodeGob emitted version %d", frame[1])
		}
		msgType, payload, err := Decode(frame)
		if err != nil || msgType != m.msgType {
			t.Fatalf("v1 frame rejected: type %d err %v", msgType, err)
		}
		got, err := m.decode(payload)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, m.in) {
			t.Fatalf("v1 round trip: got %+v, want %+v", got, m.in)
		}
	}
}

// TestFlatEnvelopeForGobOnlyTypeFails: the other interop direction. A flat
// envelope carrying a type this peer only knows as gob means the sender
// runs a future protocol — the failure must be the loud, typed VersionError
// rather than a misparse.
func TestFlatEnvelopeForGobOnlyTypeFails(t *testing.T) {
	_, _, err := Decode([]byte{MsgSnapshot, VersionFlat, 0x01, 0x02})
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("error = %v, want *VersionError", err)
	}
	if ve.Got != VersionFlat || ve.Want != VersionGob {
		t.Fatalf("VersionError got/want = %d/%d", ve.Got, ve.Want)
	}
}

// TestEdgeTrimFlatEnvelopeFails: EdgeTrim is gob-only in this protocol
// revision, so a flat envelope for it can only come from a newer peer —
// and must fail with the typed VersionError rather than a misparse. This
// is the exact failure a pre-RemoteEmit (gob-only) peer reports when a
// newer sender emits flat frames it does not understand: loud, typed,
// never silent corruption.
func TestEdgeTrimFlatEnvelopeFails(t *testing.T) {
	_, _, err := Decode([]byte{MsgEdgeTrim, VersionFlat, 0x01, 0x02})
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("error = %v, want *VersionError", err)
	}
	if ve.Got != VersionFlat || ve.Want != VersionGob {
		t.Fatalf("VersionError got/want = %d/%d", ve.Got, ve.Want)
	}
}

// TestRemoteEmitBorrowAliasing pins the ownership contract of the flat
// decode path: Unmarshal borrows, so a decoded item's byte payload aliases
// the frame. Transports satisfy this by allocating a fresh buffer per
// read; anything that started reusing frames would corrupt in-flight edge
// items, and this test is the canary.
func TestRemoteEmitBorrowAliasing(t *testing.T) {
	in := RemoteEmit{Edge: 1, Inst: 2, Items: []core.Item{{Origin: 7, Seq: 1, Key: 2, Value: []byte("abcd")}}}
	frame, err := Encode(MsgRemoteEmit, in)
	if err != nil {
		t.Fatal(err)
	}
	msgType, payload, err := Decode(frame)
	if err != nil || msgType != MsgRemoteEmit {
		t.Fatalf("decode: type %d err %v", msgType, err)
	}
	var m RemoteEmit
	if err := Unmarshal(payload, &m); err != nil {
		t.Fatal(err)
	}
	got := m.Items[0].Value.([]byte)
	if !bytes.Equal(got, []byte("abcd")) {
		t.Fatalf("value = %q", got)
	}
	idx := bytes.Index(frame, []byte("abcd"))
	if idx < 0 {
		t.Fatal("payload bytes not found in frame")
	}
	frame[idx] = 'z'
	if got[0] != 'z' {
		t.Fatal("flat Unmarshal copied the payload; the zero-copy borrow contract broke")
	}
}

// TestEncodeAllocs pins the allocation contract of the hot-path encoders:
// Encode costs at most the one exact-size result copy, and EncodeAppend
// into a buffer with capacity costs nothing. A regression here silently
// re-inflates the per-item dispatch cost the flat codec exists to remove.
func TestEncodeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; exact counts only hold in normal builds")
	}
	// Box the messages once: converting a struct to `any` at the call site
	// costs one allocation that belongs to the caller, not the encoder
	// under test.
	var hb any = Heartbeat{Seq: 1}
	var inj any = Inject{Task: "put", Items: []core.Item{{Origin: ^uint64(0), Seq: 1, Key: 2, Value: []byte("value")}}}

	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := Encode(MsgHeartbeat, hb); err != nil {
			t.Fatal(err)
		}
	}); allocs > 1 {
		t.Fatalf("Encode(heartbeat) = %.1f allocs/op, want <= 1", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := Encode(MsgInject, inj); err != nil {
			t.Fatal(err)
		}
	}); allocs > 1 {
		t.Fatalf("Encode(inject) = %.1f allocs/op, want <= 1", allocs)
	}

	buf := make([]byte, 0, 256)
	if allocs := testing.AllocsPerRun(200, func() {
		frame, err := EncodeAppend(buf[:0], MsgHeartbeat, hb)
		if err != nil {
			t.Fatal(err)
		}
		buf = frame[:0]
	}); allocs != 0 {
		t.Fatalf("EncodeAppend(heartbeat) = %.1f allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		frame, err := EncodeAppend(buf[:0], MsgInject, inj)
		if err != nil {
			t.Fatal(err)
		}
		buf = frame[:0]
	}); allocs != 0 {
		t.Fatalf("EncodeAppend(inject) = %.1f allocs/op, want 0", allocs)
	}
}

// normalizeValue rewrites float64s to their bit patterns so NaN payloads
// (which the fuzzer reaches trivially through TagFloat64) compare equal
// across a re-encode.
func normalizeValue(v any) any {
	switch x := v.(type) {
	case float64:
		return math.Float64bits(x)
	case core.Collection:
		out := make(core.Collection, len(x))
		for i, el := range x {
			out[i] = normalizeValue(el)
		}
		return out
	default:
		return v
	}
}

func normalizeMsg(v any) any {
	switch m := v.(type) {
	case Inject:
		items := make([]core.Item, len(m.Items))
		for i, it := range m.Items {
			it.Value = normalizeValue(it.Value)
			items[i] = it
		}
		m.Items = items
		return m
	case Call:
		m.Item.Value = normalizeValue(m.Item.Value)
		return m
	case CallReply:
		m.Value = normalizeValue(m.Value)
		return m
	case RemoteEmit:
		items := make([]core.Item, len(m.Items))
		for i, it := range m.Items {
			it.Value = normalizeValue(it.Value)
			items[i] = it
		}
		m.Items = items
		return m
	default:
		return v
	}
}

// FuzzFlatRoundTrip covers every flat-encoded message type, including items
// whose values ride the gob fallback: any frame the decoder accepts must
// re-encode and decode to the same message, and nothing may panic.
func FuzzFlatRoundTrip(f *testing.F) {
	seed := func(msgType byte, v any) {
		if frame, err := Encode(msgType, v); err == nil {
			f.Add(frame)
		}
	}
	seed(MsgInject, Inject{Task: "put", Items: []core.Item{
		{Origin: ^uint64(0), Seq: 1, Key: 42, Value: []byte("v1")},
		{Origin: 3, Seq: 2, Key: 43, ReqID: 9, Parts: 2, Value: core.Collection{uint64(7), "x", nil}},
	}})
	seed(MsgInject, Inject{Task: "g", Items: []core.Item{{Value: fuzzPayload{N: 5, S: "gob"}}}})
	seed(MsgInjectAck, InjectAck{Accepted: 17})
	seed(MsgCall, Call{Task: "get", Item: core.Item{Key: 7, Value: nil}, TimeoutMs: 10_000})
	seed(MsgCallReply, CallReply{Value: []byte("reply")})
	seed(MsgCallReply, CallReply{Value: math.Pi})
	seed(MsgHeartbeat, Heartbeat{Seq: 9})
	seed(MsgHeartbeatAck, HeartbeatAck{Seq: 9, Queued: 3})
	seed(MsgRemoteEmit, RemoteEmit{Edge: 2, Inst: 5, Items: []core.Item{
		{Origin: 1<<40 | 3, Seq: 11, Key: 42, Value: []byte("edge")},
		{Origin: 1 << 33, Seq: 12, Key: 43, ReqID: 4, Parts: 3, Value: core.Collection{uint64(1), nil}},
	}})
	seed(MsgRemoteEmit, RemoteEmit{Items: []core.Item{{Value: fuzzPayload{N: 8, S: "gob"}}}})
	seed(MsgRemoteEmitAck, RemoteEmitAck{Accepted: 64})
	seed(MsgSnapBegin, SnapBegin{Stream: 7, Chunks: 2, MaxBytes: 4096})
	seed(MsgSnapBeginAck, SnapBeginAck{Stream: 7})
	seed(MsgSnapNext, SnapNext{Stream: 7, Seq: 3})
	seed(MsgSnapChunk, SnapChunk{Stream: 7, Seq: 3, Part: SnapPart{
		Kind: PartSE, Name: "store", Index: 1, Store: 1, ChunkIndex: 2, ChunkOf: 4,
		Delta: true, Data: []byte("chunk"),
	}})
	seed(MsgSnapChunk, SnapChunk{Stream: 7, Seq: 4, Part: SnapPart{
		Kind: PartTE, Name: "put", Watermarks: map[uint64]uint64{1: 9, ^uint64(0): 3}, OutSeq: 11,
	}})
	seed(MsgSnapEnd, SnapEnd{Stream: 7, Chunks: 12, Bytes: 1 << 20})
	seed(MsgRestoreBegin, RestoreBegin{Stream: 8})
	seed(MsgRestoreBeginAck, RestoreBeginAck{Stream: 8})
	seed(MsgRestoreChunk, RestoreChunk{Stream: 8, Seq: 1, Part: SnapPart{
		Kind: PartEdge, Edge: 2, Inst: 3, Data: []byte("items"),
	}})
	seed(MsgRestoreChunkAck, RestoreChunkAck{Stream: 8, Seq: 1})
	seed(MsgRestoreEnd, RestoreEnd{Stream: 8, Chunks: 2})
	seed(MsgRestoreEndAck, RestoreEndAck{Stream: 8})
	f.Add([]byte{MsgInject, VersionFlat, 0x01, 'p', 0xff})
	// Hostile item count: a RemoteEmit header claiming 2^30 items in a
	// five-byte body must be rejected, not allocated.
	f.Add([]byte{MsgRemoteEmit, VersionFlat, 0x01, 0x02, 0x80, 0x80, 0x80, 0x80, 0x04})
	// Hostile watermark count: a SnapChunk part header claiming 2^30
	// watermark pairs in a near-empty body must be rejected, not allocated.
	f.Add([]byte{MsgSnapChunk, VersionFlat,
		1, 0, 0, 0, 0, 0, 0, 0, // stream
		1, 0, 0, 0, 0, 0, 0, 0, // seq
		1, 0, 0, 1, 0, 0, 0, // kind, name len, index, store, chunk idx/of, delta
		0x80, 0x80, 0x80, 0x80, 0x04}) // watermark count 2^30

	decodeByType := func(msgType byte, p Payload) (any, error) {
		switch msgType {
		case MsgInject:
			var m Inject
			err := Unmarshal(p, &m)
			return m, err
		case MsgInjectAck:
			var m InjectAck
			err := Unmarshal(p, &m)
			return m, err
		case MsgCall:
			var m Call
			err := Unmarshal(p, &m)
			return m, err
		case MsgCallReply:
			var m CallReply
			err := Unmarshal(p, &m)
			return m, err
		case MsgHeartbeat:
			var m Heartbeat
			err := Unmarshal(p, &m)
			return m, err
		case MsgHeartbeatAck:
			var m HeartbeatAck
			err := Unmarshal(p, &m)
			return m, err
		case MsgRemoteEmit:
			var m RemoteEmit
			err := Unmarshal(p, &m)
			return m, err
		case MsgRemoteEmitAck:
			var m RemoteEmitAck
			err := Unmarshal(p, &m)
			return m, err
		case MsgSnapBegin:
			var m SnapBegin
			err := Unmarshal(p, &m)
			return m, err
		case MsgSnapBeginAck:
			var m SnapBeginAck
			err := Unmarshal(p, &m)
			return m, err
		case MsgSnapNext:
			var m SnapNext
			err := Unmarshal(p, &m)
			return m, err
		case MsgSnapChunk:
			var m SnapChunk
			err := Unmarshal(p, &m)
			return m, err
		case MsgSnapEnd:
			var m SnapEnd
			err := Unmarshal(p, &m)
			return m, err
		case MsgRestoreBegin:
			var m RestoreBegin
			err := Unmarshal(p, &m)
			return m, err
		case MsgRestoreBeginAck:
			var m RestoreBeginAck
			err := Unmarshal(p, &m)
			return m, err
		case MsgRestoreChunk:
			var m RestoreChunk
			err := Unmarshal(p, &m)
			return m, err
		case MsgRestoreChunkAck:
			var m RestoreChunkAck
			err := Unmarshal(p, &m)
			return m, err
		case MsgRestoreEnd:
			var m RestoreEnd
			err := Unmarshal(p, &m)
			return m, err
		case MsgRestoreEndAck:
			var m RestoreEndAck
			err := Unmarshal(p, &m)
			return m, err
		}
		return nil, nil
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		msgType, payload, err := Decode(data)
		if err != nil || payload.Ver != VersionFlat {
			return
		}
		m1, err := decodeByType(msgType, payload)
		if err != nil || m1 == nil {
			return // malformed flat payloads are rejected, which is the contract
		}
		frame2, err := Encode(msgType, m1)
		if err != nil {
			t.Fatalf("accepted message %+v does not re-encode: %v", m1, err)
		}
		if frame2[1] != VersionFlat {
			t.Fatalf("re-encode of flat message fell back to version %d", frame2[1])
		}
		msgType2, payload2, err := Decode(frame2)
		if err != nil || msgType2 != msgType {
			t.Fatalf("re-encoded frame rejected: type %d err %v", msgType2, err)
		}
		m2, err := decodeByType(msgType, payload2)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if !reflect.DeepEqual(normalizeMsg(m1), normalizeMsg(m2)) {
			t.Fatalf("message changed across re-encode:\n  %#v\n  %#v", m1, m2)
		}
	})
}
