package wire

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/state"
)

// TestEnvelopeRoundTrip pins the codec on representative messages from
// every protocol area: control, data, and snapshot streaming.
func TestEnvelopeRoundTrip(t *testing.T) {
	t.Run("inject", func(t *testing.T) {
		in := Inject{
			Task: "put",
			Items: []core.Item{
				{Origin: ^uint64(0), Seq: 1, Key: 42, Value: []byte("v1")},
				{Origin: ^uint64(0), Seq: 2, Key: 43, Value: nil},
			},
		}
		frame, err := Encode(MsgInject, in)
		if err != nil {
			t.Fatal(err)
		}
		var out Inject
		if err := Expect(frame, MsgInject, &out); err != nil {
			t.Fatal(err)
		}
		if out.Task != "put" || len(out.Items) != 2 {
			t.Fatalf("round trip lost data: %+v", out)
		}
		if string(out.Items[0].Value.([]byte)) != "v1" || out.Items[1].Value != nil {
			t.Fatalf("payload values corrupted: %+v", out.Items)
		}
		if out.Items[0].Seq != 1 || out.Items[0].Origin != ^uint64(0) {
			t.Fatalf("timestamps corrupted: %+v", out.Items[0])
		}
	})
	t.Run("snapshot", func(t *testing.T) {
		in := Snapshot{
			SEs: []SESnap{{SE: "store", Index: 1, Chunks: []state.Chunk{
				{Type: state.TypeKVMap, Index: 0, Of: 2, Data: []byte{1, 2, 3}},
			}}},
			TEs: []TESnap{{TE: "put", Index: 1, Watermarks: map[uint64]uint64{7: 99}, OutSeq: 12}},
		}
		frame, err := Encode(MsgSnapshot, in)
		if err != nil {
			t.Fatal(err)
		}
		var out Snapshot
		if err := Expect(frame, MsgSnapshot, &out); err != nil {
			t.Fatal(err)
		}
		if len(out.SEs) != 1 || out.SEs[0].Chunks[0].Of != 2 {
			t.Fatalf("SE chunks corrupted: %+v", out.SEs)
		}
		if out.TEs[0].Watermarks[7] != 99 || out.TEs[0].OutSeq != 12 {
			t.Fatalf("TE metadata corrupted: %+v", out.TEs)
		}
	})
	t.Run("empty structs", func(t *testing.T) {
		frame, err := Encode(MsgStop, Stop{})
		if err != nil {
			t.Fatal(err)
		}
		var out Stop
		if err := Expect(frame, MsgStop, &out); err != nil {
			t.Fatal(err)
		}
	})
}

// TestDecodeMalformed tables the hostile-envelope space: truncated headers,
// version mismatches, unknown types, and garbage payloads must all return
// the documented typed errors, never panic or misparse.
func TestDecodeMalformed(t *testing.T) {
	good, err := Encode(MsgHeartbeat, Heartbeat{Seq: 9})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name  string
		frame []byte
		want  error
	}{
		{"empty", nil, ErrShortFrame},
		{"one byte", []byte{MsgHeartbeat}, ErrShortFrame},
		{"version zero", []byte{MsgHeartbeat, 0x00, 0x01}, ErrVersion},
		{"version future", []byte{MsgHeartbeat, Version + 1, 0x01}, ErrVersion},
		{"unknown type", []byte{0xee, Version, 0x01}, ErrUnknownType},
		{"zero type", []byte{0x00, Version}, ErrUnknownType},
		// A flat envelope for a control-plane type means the peer runs a
		// future protocol that moved it off gob: reject, never misdecode.
		{"flat envelope for gob-only type", []byte{MsgDeploy, VersionFlat, 0x01}, ErrVersion},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := Decode(tc.frame)
			if !errors.Is(err, tc.want) {
				t.Fatalf("Decode(%x) error = %v, want %v", tc.frame, err, tc.want)
			}
		})
	}

	t.Run("version error detail", func(t *testing.T) {
		_, _, err := Decode([]byte{MsgHeartbeat, Version + 3, 0x01})
		var ve *VersionError
		if !errors.As(err, &ve) || ve.Got != Version+3 || ve.Want != Version {
			t.Fatalf("error = %v, want *VersionError with got/want", err)
		}
	})
	t.Run("garbage payload", func(t *testing.T) {
		frame := []byte{MsgHeartbeat, Version, 0xde, 0xad, 0xbe, 0xef}
		var hb Heartbeat
		if err := Expect(frame, MsgHeartbeat, &hb); !errors.Is(err, ErrBadPayload) {
			t.Fatalf("garbage payload: got %v, want ErrBadPayload", err)
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		var hb Heartbeat
		if err := Expect(good[:len(good)-2], MsgHeartbeat, &hb); !errors.Is(err, ErrBadPayload) {
			t.Fatalf("truncated payload: got %v, want ErrBadPayload", err)
		}
	})
	t.Run("wrong message type", func(t *testing.T) {
		var s Stats
		if err := Expect(good, MsgStats, &s); !errors.Is(err, ErrUnexpectedType) {
			t.Fatalf("type mismatch: got %v, want ErrUnexpectedType", err)
		}
	})
}

// TestEncodeRejectsUnencodableTypes is the labgob-style guard: gob silently
// zeroes unexported fields and chokes on channels; both must fail loudly at
// the sender, including when the bad type hides behind an interface field.
func TestEncodeRejectsUnencodableTypes(t *testing.T) {
	type sneaky struct {
		Visible int
		hidden  int //nolint:unused // the point: gob would drop it silently
	}
	if _, err := Encode(MsgCall, sneaky{Visible: 1}); err == nil {
		t.Fatal("struct with unexported field encoded without error")
	}
	type nested struct {
		Inner sneaky
	}
	if _, err := Encode(MsgCall, nested{}); err == nil {
		t.Fatal("nested unexported field encoded without error")
	}
	type chans struct {
		C chan int
	}
	if _, err := Encode(MsgCall, chans{}); err == nil {
		t.Fatal("channel field encoded without error")
	}
	// The dynamic path: a clean envelope type carrying a dirty payload
	// through an interface field.
	bad := Call{Task: "put", Item: core.Item{Value: sneaky{Visible: 2}}}
	if _, err := Encode(MsgCall, bad); err == nil {
		t.Fatal("unexported field behind interface encoded without error")
	}
	// And the checked-type cache must not poison the healthy path.
	if _, err := Encode(MsgCall, Call{Task: "put", Item: core.Item{Value: []byte("ok")}}); err != nil {
		t.Fatalf("healthy call after rejections: %v", err)
	}
}

// TestEncodeUnknownType: the sender-side registry check.
func TestEncodeUnknownType(t *testing.T) {
	if _, err := Encode(0xee, Heartbeat{}); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("got %v, want ErrUnknownType", err)
	}
}

// FuzzDecode throws arbitrary bytes at the envelope parser: it must return
// a typed error or a (type, payload) pair consistent with the input —
// never panic.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{MsgInject, Version})
	f.Add([]byte{MsgInject, Version, 0xff, 0x00})
	f.Add([]byte{0xee, Version, 0x01})
	f.Add([]byte{MsgHeartbeat, 0x00, 0x01})
	if frame, err := Encode(MsgHeartbeat, Heartbeat{Seq: 3}); err == nil {
		f.Add(frame)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		msgType, payload, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrShortFrame) && !errors.Is(err, ErrVersion) && !errors.Is(err, ErrUnknownType) {
				t.Fatalf("Decode(%x): untyped error %v", data, err)
			}
			return
		}
		if _, ok := msgNames[msgType]; !ok {
			t.Fatalf("Decode accepted unknown type 0x%02x", msgType)
		}
		if len(payload.Body) != len(data)-2 {
			t.Fatalf("payload length %d, want %d", len(payload.Body), len(data)-2)
		}
		// Unmarshal into a generic target must error or succeed, not panic.
		var hb Heartbeat
		_ = Unmarshal(payload, &hb)
	})
}
