package wire

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestItemsRoundTrip: EncodeItems/DecodeItems must preserve every item
// field, including values riding the gob fallback, and the decode must be
// copy-mode — snapshot blobs outlive the buffers they were parsed from.
func TestItemsRoundTrip(t *testing.T) {
	in := []core.Item{
		{Origin: 1<<40 | 2, Seq: 9, Key: 42, Value: []byte("abcd")},
		{Origin: 3, Seq: 10, Key: 43, ReqID: 7, Parts: 2, Value: core.Collection{uint64(5), nil}},
		{Seq: 11, Value: nil},
	}
	data, err := EncodeItems(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeItems(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip diverged:\n  %#v\n  %#v", in, out)
	}
	// Copy semantics: scribbling over the encoded buffer must not reach
	// the decoded values.
	idx := bytes.Index(data, []byte("abcd"))
	if idx < 0 {
		t.Fatal("payload bytes not found in encoding")
	}
	data[idx] = 'z'
	if got := out[0].Value.([]byte); !bytes.Equal(got, []byte("abcd")) {
		t.Fatalf("decoded value aliases the buffer: %q", got)
	}
}

// TestDecodeItemsHostileCount: a header claiming 2^30 items in a
// five-byte body must be rejected up front, not allocated.
func TestDecodeItemsHostileCount(t *testing.T) {
	if _, err := DecodeItems([]byte{0x80, 0x80, 0x80, 0x80, 0x04}); err == nil {
		t.Fatal("hostile item count accepted")
	}
}

// TestDecodeItemsTrailingBytes: trailing garbage after the declared items
// means the buffer is not what the encoder wrote — reject it.
func TestDecodeItemsTrailingBytes(t *testing.T) {
	data, err := EncodeItems([]core.Item{{Seq: 1, Key: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeItems(append(data, 0xff)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// TestDecodeItemsEmpty: zero items round-trip (the nil/empty distinction
// is not preserved, only the contents).
func TestDecodeItemsEmpty(t *testing.T) {
	data, err := EncodeItems(nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeItems(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("decoded %d items from an empty encoding", len(out))
	}
}
