package wire

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/wire/flat"
)

// This file binds the flat codec to the data-plane message types. A type
// is on the fast path when it dominates steady-state traffic: every
// injected item, every request/reply call and every liveness probe crosses
// here, while Deploy/Snapshot/Stats stay on gob (rare, structurally rich,
// not worth a hand-rolled layout).
//
// Layouts (after the two-byte envelope header):
//
//	Inject:        str task, uvarint count, count× item
//	InjectAck:     varint accepted
//	Call:          str task, varint timeoutMs, item
//	CallReply:     value
//	Heartbeat:     fixed64 seq
//	HeartbeatAck:  fixed64 seq, fixed64 queued
//	RemoteEmit:    uvarint edge, uvarint inst, uvarint count, count× item
//	RemoteEmitAck: varint accepted
//	item:          uvarint origin/seq/key/reqID, varint parts, value
//
// The streaming snapshot transfer (wire/snapstream.go) is flat end to end
// — state bytes are the other large payload besides items:
//
//	SnapBegin:       fixed64 stream, uvarint chunks, uvarint maxBytes
//	SnapBeginAck:    fixed64 stream
//	SnapNext:        fixed64 stream, fixed64 seq
//	SnapChunk:       fixed64 stream, fixed64 seq, part
//	SnapEnd:         fixed64 stream, uvarint chunks, uvarint bytes
//	RestoreBegin:    fixed64 stream
//	RestoreBeginAck: fixed64 stream
//	RestoreChunk:    fixed64 stream, fixed64 seq, part
//	RestoreChunkAck: fixed64 stream, fixed64 seq
//	RestoreEnd:      fixed64 stream, uvarint chunks
//	RestoreEndAck:   fixed64 stream
//	part:            byte kind, str name, uvarint index, byte store,
//	                 uvarint chunkIndex/chunkOf, byte delta,
//	                 uvarint wmCount, wmCount× (uvarint origin, uvarint seq),
//	                 uvarint outSeq, uvarint edge/inst, blob data
//
// Heartbeats use fixed-width seqs so the frame size is constant: the
// coordinator pre-encodes the frame once and patches the seq bytes in
// place every beat.

// flatCapable reports whether this peer flat-encodes the message type — and
// therefore whether it can parse a VersionFlat envelope carrying it.
func flatCapable(msgType byte) bool {
	switch msgType {
	case MsgInject, MsgInjectAck, MsgCall, MsgCallReply, MsgHeartbeat, MsgHeartbeatAck,
		MsgRemoteEmit, MsgRemoteEmitAck:
		return true
	case MsgSnapBegin, MsgSnapBeginAck, MsgSnapNext, MsgSnapChunk, MsgSnapEnd,
		MsgRestoreBegin, MsgRestoreBeginAck, MsgRestoreChunk, MsgRestoreChunkAck,
		MsgRestoreEnd, MsgRestoreEndAck:
		return true
	}
	return false
}

// encodeFlat appends the full envelope (header + flat payload) for v when
// its concrete type matches a fast-path message type; ok=false defers to
// gob. A mismatched msgType/value pair falls through too — the gob path's
// validation owns that rejection.
func encodeFlat(e *flat.Encoder, msgType byte, v any) (ok bool, err error) {
	switch m := v.(type) {
	case Inject:
		if msgType != MsgInject {
			return false, nil
		}
		e.Byte(msgType)
		e.Byte(VersionFlat)
		e.Str(m.Task)
		e.Uvarint(uint64(len(m.Items)))
		for i := range m.Items {
			if err := e.Item(m.Items[i]); err != nil {
				return false, err
			}
		}
	case InjectAck:
		if msgType != MsgInjectAck {
			return false, nil
		}
		e.Byte(msgType)
		e.Byte(VersionFlat)
		e.Varint(int64(m.Accepted))
	case Call:
		if msgType != MsgCall {
			return false, nil
		}
		e.Byte(msgType)
		e.Byte(VersionFlat)
		e.Str(m.Task)
		e.Varint(m.TimeoutMs)
		if err := e.Item(m.Item); err != nil {
			return false, err
		}
	case CallReply:
		if msgType != MsgCallReply {
			return false, nil
		}
		e.Byte(msgType)
		e.Byte(VersionFlat)
		if err := e.Value(m.Value); err != nil {
			return false, err
		}
	case Heartbeat:
		if msgType != MsgHeartbeat {
			return false, nil
		}
		e.Byte(msgType)
		e.Byte(VersionFlat)
		e.Fixed64(m.Seq)
	case HeartbeatAck:
		if msgType != MsgHeartbeatAck {
			return false, nil
		}
		e.Byte(msgType)
		e.Byte(VersionFlat)
		e.Fixed64(m.Seq)
		e.Fixed64(uint64(m.Queued))
	case RemoteEmit:
		if msgType != MsgRemoteEmit {
			return false, nil
		}
		e.Byte(msgType)
		e.Byte(VersionFlat)
		e.Uvarint(uint64(m.Edge))
		e.Uvarint(uint64(m.Inst))
		e.Uvarint(uint64(len(m.Items)))
		for i := range m.Items {
			if err := e.Item(m.Items[i]); err != nil {
				return false, err
			}
		}
	case RemoteEmitAck:
		if msgType != MsgRemoteEmitAck {
			return false, nil
		}
		e.Byte(msgType)
		e.Byte(VersionFlat)
		e.Varint(int64(m.Accepted))
	case SnapBegin:
		if msgType != MsgSnapBegin {
			return false, nil
		}
		e.Byte(msgType)
		e.Byte(VersionFlat)
		e.Fixed64(m.Stream)
		e.Uvarint(uint64(m.Chunks))
		e.Uvarint(uint64(m.MaxBytes))
	case SnapBeginAck:
		if msgType != MsgSnapBeginAck {
			return false, nil
		}
		e.Byte(msgType)
		e.Byte(VersionFlat)
		e.Fixed64(m.Stream)
	case SnapNext:
		if msgType != MsgSnapNext {
			return false, nil
		}
		e.Byte(msgType)
		e.Byte(VersionFlat)
		e.Fixed64(m.Stream)
		e.Fixed64(m.Seq)
	case SnapChunk:
		if msgType != MsgSnapChunk {
			return false, nil
		}
		e.Byte(msgType)
		e.Byte(VersionFlat)
		e.Fixed64(m.Stream)
		e.Fixed64(m.Seq)
		encodePartFields(e, &m.Part)
	case SnapEnd:
		if msgType != MsgSnapEnd {
			return false, nil
		}
		e.Byte(msgType)
		e.Byte(VersionFlat)
		e.Fixed64(m.Stream)
		e.Uvarint(m.Chunks)
		e.Uvarint(m.Bytes)
	case RestoreBegin:
		if msgType != MsgRestoreBegin {
			return false, nil
		}
		e.Byte(msgType)
		e.Byte(VersionFlat)
		e.Fixed64(m.Stream)
	case RestoreBeginAck:
		if msgType != MsgRestoreBeginAck {
			return false, nil
		}
		e.Byte(msgType)
		e.Byte(VersionFlat)
		e.Fixed64(m.Stream)
	case RestoreChunk:
		if msgType != MsgRestoreChunk {
			return false, nil
		}
		e.Byte(msgType)
		e.Byte(VersionFlat)
		e.Fixed64(m.Stream)
		e.Fixed64(m.Seq)
		encodePartFields(e, &m.Part)
	case RestoreChunkAck:
		if msgType != MsgRestoreChunkAck {
			return false, nil
		}
		e.Byte(msgType)
		e.Byte(VersionFlat)
		e.Fixed64(m.Stream)
		e.Fixed64(m.Seq)
	case RestoreEnd:
		if msgType != MsgRestoreEnd {
			return false, nil
		}
		e.Byte(msgType)
		e.Byte(VersionFlat)
		e.Fixed64(m.Stream)
		e.Uvarint(m.Chunks)
	case RestoreEndAck:
		if msgType != MsgRestoreEndAck {
			return false, nil
		}
		e.Byte(msgType)
		e.Byte(VersionFlat)
		e.Fixed64(m.Stream)
	default:
		return false, nil
	}
	return true, nil
}

// decodeFlat parses a flat payload body into v; ok=false means v's type has
// no flat layout (the payload came from an incompatible peer — Decode
// normally catches this earlier via flatCapable). Trailing bytes after a
// complete payload are malformed: they would mean a layout disagreement.
//
//sdg:ignore borrowcopy -- Unmarshal's documented aliasing contract: decoded Items/Value alias the caller's buffer, and every handler consumes the message before the pooled frame is reused
func decodeFlat(body []byte, v any) (ok bool, err error) {
	d := flat.NewBorrowDecoder(body)
	switch m := v.(type) {
	case *Inject:
		m.Task = d.Str()
		n := d.Uvarint()
		if d.Err() == nil && n > uint64(d.Remaining()) {
			return true, fmt.Errorf("%w: item count %d exceeds payload", ErrBadPayload, n)
		}
		if d.Err() == nil {
			m.Items = make([]core.Item, 0, n)
			for i := uint64(0); i < n; i++ {
				m.Items = append(m.Items, d.Item())
				if d.Err() != nil {
					break
				}
			}
		}
	case *InjectAck:
		m.Accepted = int(d.Varint())
	case *Call:
		m.Task = d.Str()
		m.TimeoutMs = d.Varint()
		m.Item = d.Item()
	case *CallReply:
		m.Value = d.Value()
	case *Heartbeat:
		m.Seq = d.Fixed64()
	case *HeartbeatAck:
		m.Seq = d.Fixed64()
		m.Queued = int64(d.Fixed64())
	case *RemoteEmit:
		m.Edge = int(d.Uvarint())
		m.Inst = int(d.Uvarint())
		n := d.Uvarint()
		if d.Err() == nil && n > uint64(d.Remaining()) {
			return true, fmt.Errorf("%w: item count %d exceeds payload", ErrBadPayload, n)
		}
		if d.Err() == nil {
			m.Items = make([]core.Item, 0, n)
			for i := uint64(0); i < n; i++ {
				m.Items = append(m.Items, d.Item())
				if d.Err() != nil {
					break
				}
			}
		}
	case *RemoteEmitAck:
		m.Accepted = int(d.Varint())
	case *SnapBegin:
		m.Stream = d.Fixed64()
		m.Chunks = int(d.Uvarint())
		m.MaxBytes = int(d.Uvarint())
	case *SnapBeginAck:
		m.Stream = d.Fixed64()
	case *SnapNext:
		m.Stream = d.Fixed64()
		m.Seq = d.Fixed64()
	case *SnapChunk:
		m.Stream = d.Fixed64()
		m.Seq = d.Fixed64()
		part, err := decodePartFields(d)
		if err != nil {
			return true, err
		}
		m.Part = part
	case *SnapEnd:
		m.Stream = d.Fixed64()
		m.Chunks = d.Uvarint()
		m.Bytes = d.Uvarint()
	case *RestoreBegin:
		m.Stream = d.Fixed64()
	case *RestoreBeginAck:
		m.Stream = d.Fixed64()
	case *RestoreChunk:
		m.Stream = d.Fixed64()
		m.Seq = d.Fixed64()
		part, err := decodePartFields(d)
		if err != nil {
			return true, err
		}
		m.Part = part
	case *RestoreChunkAck:
		m.Stream = d.Fixed64()
		m.Seq = d.Fixed64()
	case *RestoreEnd:
		m.Stream = d.Fixed64()
		m.Chunks = d.Uvarint()
	case *RestoreEndAck:
		m.Stream = d.Fixed64()
	default:
		return false, nil
	}
	if err := d.Err(); err != nil {
		return true, fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	if !d.Done() {
		return true, fmt.Errorf("%w: %d trailing byte(s)", ErrBadPayload, d.Remaining())
	}
	return true, nil
}
