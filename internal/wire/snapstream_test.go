package wire

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/state"
)

// roundTripFlat encodes a message, requires the flat version byte, decodes
// it back into out, and returns the frame.
func roundTripFlat(t *testing.T, msgType byte, in, out any) []byte {
	t.Helper()
	frame, err := Encode(msgType, in)
	if err != nil {
		t.Fatalf("%s: encode: %v", MsgName(msgType), err)
	}
	if frame[1] != VersionFlat {
		t.Fatalf("%s: encoded version %d, want flat", MsgName(msgType), frame[1])
	}
	if err := Expect(frame, msgType, out); err != nil {
		t.Fatalf("%s: decode: %v", MsgName(msgType), err)
	}
	return frame
}

// TestSnapStreamRoundTrips covers every streaming snapshot message through
// the envelope codec.
func TestSnapStreamRoundTrips(t *testing.T) {
	part := SnapPart{
		Kind:       PartSE,
		Name:       "store",
		Index:      3,
		Store:      state.TypeKVMap,
		ChunkIndex: 2,
		ChunkOf:    5,
		Delta:      true,
		Data:       []byte("chunk-bytes"),
	}
	tePart := SnapPart{
		Kind:       PartTE,
		Name:       "put",
		Index:      1,
		Watermarks: map[uint64]uint64{1: 9, ^uint64(0): 3, 7: 7},
		OutSeq:     42,
	}

	var sb SnapBegin
	roundTripFlat(t, MsgSnapBegin, SnapBegin{Stream: 9, Chunks: 2, MaxBytes: 4096}, &sb)
	if sb.Stream != 9 || sb.Chunks != 2 || sb.MaxBytes != 4096 {
		t.Fatalf("SnapBegin round trip: %+v", sb)
	}
	var sba SnapBeginAck
	roundTripFlat(t, MsgSnapBeginAck, SnapBeginAck{Stream: 9}, &sba)
	if sba.Stream != 9 {
		t.Fatalf("SnapBeginAck round trip: %+v", sba)
	}
	var sn SnapNext
	roundTripFlat(t, MsgSnapNext, SnapNext{Stream: 9, Seq: 17}, &sn)
	if sn.Stream != 9 || sn.Seq != 17 {
		t.Fatalf("SnapNext round trip: %+v", sn)
	}
	for _, p := range []SnapPart{part, tePart} {
		var sc SnapChunk
		roundTripFlat(t, MsgSnapChunk, SnapChunk{Stream: 9, Seq: 17, Part: p}, &sc)
		if sc.Stream != 9 || sc.Seq != 17 || !reflect.DeepEqual(normalizePart(sc.Part), normalizePart(p)) {
			t.Fatalf("SnapChunk round trip:\n got %+v\nwant %+v", sc.Part, p)
		}
	}
	var se SnapEnd
	roundTripFlat(t, MsgSnapEnd, SnapEnd{Stream: 9, Chunks: 40, Bytes: 1 << 30}, &se)
	if se.Stream != 9 || se.Chunks != 40 || se.Bytes != 1<<30 {
		t.Fatalf("SnapEnd round trip: %+v", se)
	}
	var rb RestoreBegin
	roundTripFlat(t, MsgRestoreBegin, RestoreBegin{Stream: 5}, &rb)
	if rb.Stream != 5 {
		t.Fatalf("RestoreBegin round trip: %+v", rb)
	}
	var rba RestoreBeginAck
	roundTripFlat(t, MsgRestoreBeginAck, RestoreBeginAck{Stream: 5}, &rba)
	if rba.Stream != 5 {
		t.Fatalf("RestoreBeginAck round trip: %+v", rba)
	}
	var rc RestoreChunk
	roundTripFlat(t, MsgRestoreChunk, RestoreChunk{Stream: 5, Seq: 2, Part: part}, &rc)
	if rc.Stream != 5 || rc.Seq != 2 || !reflect.DeepEqual(normalizePart(rc.Part), normalizePart(part)) {
		t.Fatalf("RestoreChunk round trip: %+v", rc)
	}
	var rca RestoreChunkAck
	roundTripFlat(t, MsgRestoreChunkAck, RestoreChunkAck{Stream: 5, Seq: 2}, &rca)
	if rca.Stream != 5 || rca.Seq != 2 {
		t.Fatalf("RestoreChunkAck round trip: %+v", rca)
	}
	var re RestoreEnd
	roundTripFlat(t, MsgRestoreEnd, RestoreEnd{Stream: 5, Chunks: 3}, &re)
	if re.Stream != 5 || re.Chunks != 3 {
		t.Fatalf("RestoreEnd round trip: %+v", re)
	}
	var rea RestoreEndAck
	roundTripFlat(t, MsgRestoreEndAck, RestoreEndAck{Stream: 5}, &rea)
	if rea.Stream != 5 {
		t.Fatalf("RestoreEndAck round trip: %+v", rea)
	}
}

// normalizePart maps empty-but-allocated Data/Watermarks to nil so encoded
// and source parts compare structurally.
func normalizePart(p SnapPart) SnapPart {
	if len(p.Data) == 0 {
		p.Data = nil
	}
	if len(p.Watermarks) == 0 {
		p.Watermarks = nil
	}
	return p
}

// TestSnapPartDeterministicEncoding: identical parts must encode to
// identical bytes regardless of map iteration order — the worker's
// retry cache compares and re-serves frames byte-for-byte.
func TestSnapPartDeterministicEncoding(t *testing.T) {
	p := SnapPart{Kind: PartTE, Name: "t", Watermarks: map[uint64]uint64{}}
	for i := uint64(0); i < 64; i++ {
		p.Watermarks[i*2654435761] = i
	}
	first := EncodeSnapPart(&p)
	for i := 0; i < 8; i++ {
		if got := EncodeSnapPart(&p); !bytes.Equal(got, first) {
			t.Fatal("EncodeSnapPart is not deterministic across calls")
		}
	}
}

// TestSnapPartHostileDecode: malformed part payloads must error, not
// allocate or panic.
func TestSnapPartHostileDecode(t *testing.T) {
	good := EncodeSnapPart(&SnapPart{Kind: PartSE, Name: "s", Data: []byte("d")})
	if _, err := DecodeSnapPart(good); err != nil {
		t.Fatalf("control part rejected: %v", err)
	}
	// Trailing garbage.
	if _, err := DecodeSnapPart(append(append([]byte(nil), good...), 0xff)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// Truncations at every prefix length must error, never panic.
	for n := 0; n < len(good); n++ {
		if _, err := DecodeSnapPart(good[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// Hostile watermark count: header claims 2^30 pairs, body is empty.
	hostile := []byte{
		PartTE, 1, 't', 0, 0, 0, 0, 0, // kind, name, index, store, idx, of, delta
		0x80, 0x80, 0x80, 0x80, 0x04, // watermark count 2^30
	}
	_, err := DecodeSnapPart(hostile)
	if err == nil {
		t.Fatal("hostile watermark count accepted")
	}
	if !errors.Is(err, ErrBadPayload) {
		t.Fatalf("hostile watermark count error = %v, want ErrBadPayload", err)
	}
}

// buildSnapshot assembles a representative monolithic snapshot: two SE
// instances with multiple chunks, TEs with and without replay logs, and a
// cross-worker edge log.
func buildSnapshot(t *testing.T) Snapshot {
	t.Helper()
	mkItems := func(n int, origin uint64) []byte {
		items := make([]core.Item, n)
		for i := range items {
			items[i] = core.Item{Origin: origin, Seq: uint64(i + 1), Key: uint64(i), Value: []byte(fmt.Sprintf("v%d", i))}
		}
		data, err := EncodeItems(items)
		if err != nil {
			t.Fatalf("encode items: %v", err)
		}
		return data
	}
	return Snapshot{
		SEs: []SESnap{
			{SE: "store", Index: 0, Chunks: []state.Chunk{
				{Type: state.TypeKVMap, Index: 0, Of: 2, Data: []byte("c0")},
				{Type: state.TypeKVMap, Index: 1, Of: 2, Data: []byte("c1")},
			}},
			{SE: "store", Index: 1, Chunks: []state.Chunk{
				{Type: state.TypeKVMap, Index: 0, Of: 1, Delta: true, Data: []byte("d0")},
			}},
		},
		TEs: []TESnap{
			{TE: "put", Index: 0, Watermarks: map[uint64]uint64{1: 5, 2: 9}, OutSeq: 14,
				Buffered: [][]byte{mkItems(3, 100), mkItems(0, 0)}},
			{TE: "get", Index: 0, Watermarks: map[uint64]uint64{1: 2}, OutSeq: 2},
		},
		Edges: []EdgeLogSnap{
			{Edge: 0, Inst: 2, Data: mkItems(4, 200)},
		},
	}
}

// TestSplitAssembleEquivalence: splitting a snapshot into parts and
// assembling them back must reproduce the snapshot, including when bounded
// chunking split a replay log or edge log across several parts.
func TestSplitAssembleEquivalence(t *testing.T) {
	snap := buildSnapshot(t)
	parts := SplitSnapshot(&snap)
	got, err := AssembleSnapshot(parts)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	assertSnapshotEqual(t, snap, got)

	// Now re-split the buffered logs into single-item parts, the shape the
	// bounded streaming capture produces, and assemble again.
	var split []SnapPart
	for _, p := range parts {
		if (p.Kind != PartTEBuf && p.Kind != PartEdge) || len(p.Data) == 0 {
			split = append(split, p)
			continue
		}
		items, err := DecodeItems(p.Data)
		if err != nil {
			t.Fatalf("decode items: %v", err)
		}
		if len(items) == 0 {
			split = append(split, p)
			continue
		}
		for _, it := range items {
			sub := p
			data, err := EncodeItems([]core.Item{it})
			if err != nil {
				t.Fatalf("re-encode item: %v", err)
			}
			sub.Data = data
			split = append(split, sub)
		}
	}
	got2, err := AssembleSnapshot(split)
	if err != nil {
		t.Fatalf("assemble split blobs: %v", err)
	}
	assertSnapshotEqual(t, snap, got2)
}

// assertSnapshotEqual compares snapshots semantically: SE chunks and TE
// metadata structurally, buffered/edge logs by their decoded items.
func assertSnapshotEqual(t *testing.T, want, got Snapshot) {
	t.Helper()
	if !reflect.DeepEqual(want.SEs, got.SEs) {
		t.Fatalf("SEs diverged:\n got %+v\nwant %+v", got.SEs, want.SEs)
	}
	if len(want.TEs) != len(got.TEs) {
		t.Fatalf("TE count %d, want %d", len(got.TEs), len(want.TEs))
	}
	decode := func(b []byte) []core.Item {
		if len(b) == 0 {
			return nil
		}
		items, err := DecodeItems(b)
		if err != nil {
			t.Fatalf("decode items: %v", err)
		}
		if len(items) == 0 {
			return nil
		}
		return items
	}
	for i, wt := range want.TEs {
		gt := got.TEs[i]
		if wt.TE != gt.TE || wt.Index != gt.Index || wt.OutSeq != gt.OutSeq ||
			!reflect.DeepEqual(wt.Watermarks, gt.Watermarks) {
			t.Fatalf("TE %d metadata diverged:\n got %+v\nwant %+v", i, gt, wt)
		}
		if len(wt.Buffered) != len(gt.Buffered) {
			t.Fatalf("TE %d buffered edges %d, want %d", i, len(gt.Buffered), len(wt.Buffered))
		}
		for e := range wt.Buffered {
			if !reflect.DeepEqual(decode(wt.Buffered[e]), decode(gt.Buffered[e])) {
				t.Fatalf("TE %d edge %d replay log diverged", i, e)
			}
		}
	}
	if len(want.Edges) != len(got.Edges) {
		t.Fatalf("edge log count %d, want %d", len(got.Edges), len(want.Edges))
	}
	for i, we := range want.Edges {
		ge := got.Edges[i]
		if we.Edge != ge.Edge || we.Inst != ge.Inst ||
			!reflect.DeepEqual(decode(we.Data), decode(ge.Data)) {
			t.Fatalf("edge log %d diverged", i)
		}
	}
}

// TestAssembleSnapshotRejects covers the assembly error paths: duplicate TE
// metadata, a replay-log part with no TE part, and an unknown kind.
func TestAssembleSnapshotRejects(t *testing.T) {
	te := SnapPart{Kind: PartTE, Name: "t", Index: 0}
	if _, err := AssembleSnapshot([]SnapPart{te, te}); err == nil {
		t.Fatal("duplicate PartTE accepted")
	}
	buf := SnapPart{Kind: PartTEBuf, Name: "t", Index: 0, Edge: 0, Data: []byte{0}}
	if _, err := AssembleSnapshot([]SnapPart{buf}); err == nil {
		t.Fatal("PartTEBuf without PartTE accepted")
	}
	if _, err := AssembleSnapshot([]SnapPart{{Kind: 99}}); err == nil {
		t.Fatal("unknown part kind accepted")
	}
}
