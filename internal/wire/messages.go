package wire

import (
	"repro/internal/core"
	"repro/internal/state"
)

// Message type bytes. Requests flow coordinator -> worker; each has one
// reply type the worker answers with (application failures come back as
// cluster error replies instead). The zero byte is deliberately unassigned
// so an empty or zeroed buffer never parses as a valid message.
const (
	MsgDeploy       byte = 0x01 // Deploy        -> MsgDeployAck
	MsgDeployAck    byte = 0x02 // DeployAck
	MsgInject       byte = 0x03 // Inject        -> MsgInjectAck
	MsgInjectAck    byte = 0x04 // InjectAck
	MsgCall         byte = 0x05 // Call          -> MsgCallReply
	MsgCallReply    byte = 0x06 // CallReply
	MsgHeartbeat    byte = 0x07 // Heartbeat     -> MsgHeartbeatAck
	MsgHeartbeatAck byte = 0x08 // HeartbeatAck
	MsgSnapshotReq  byte = 0x09 // SnapshotReq   -> MsgSnapshot
	MsgSnapshot     byte = 0x0a // Snapshot
	MsgRestore      byte = 0x0b // Restore       -> MsgRestoreAck
	MsgRestoreAck   byte = 0x0c // RestoreAck
	MsgDumpReq      byte = 0x0d // DumpReq       -> MsgDump
	MsgDump         byte = 0x0e // Dump
	MsgStatsReq     byte = 0x0f // StatsReq      -> MsgStats
	MsgStats        byte = 0x10 // Stats
	MsgDrainReq     byte = 0x11 // DrainReq      -> MsgDrainAck
	MsgDrainAck     byte = 0x12 // DrainAck
	MsgStop         byte = 0x13 // Stop          -> MsgStopAck
	MsgStopAck      byte = 0x14 // StopAck
)

// msgNames is the registry of known message types; Decode rejects a type
// byte absent from it with ErrUnknownType.
var msgNames = map[byte]string{
	MsgDeploy:       "Deploy",
	MsgDeployAck:    "DeployAck",
	MsgInject:       "Inject",
	MsgInjectAck:    "InjectAck",
	MsgCall:         "Call",
	MsgCallReply:    "CallReply",
	MsgHeartbeat:    "Heartbeat",
	MsgHeartbeatAck: "HeartbeatAck",
	MsgSnapshotReq:  "SnapshotReq",
	MsgSnapshot:     "Snapshot",
	MsgRestore:      "Restore",
	MsgRestoreAck:   "RestoreAck",
	MsgDumpReq:      "DumpReq",
	MsgDump:         "Dump",
	MsgStatsReq:     "StatsReq",
	MsgStats:        "Stats",
	MsgDrainReq:     "DrainReq",
	MsgDrainAck:     "DrainAck",
	MsgStop:         "Stop",
	MsgStopAck:      "StopAck",
}

// Deploy instructs a worker to build and start its local slice of the named
// graph. Task functions cannot cross the wire, so both binaries link the
// application packages and the graph travels by registry name (see
// runtime.RegisterGraph).
type Deploy struct {
	Graph string
	// Partitions sets the worker-local SE partition counts.
	Partitions map[string]int
	// Runtime tuning, mirroring the matching runtime.Options fields.
	QueueLen    int
	OverflowLen int
	BatchSize   int
	KVShards    int
	WireCheck   bool
}

// DeployAck confirms a deployment.
type DeployAck struct {
	Graph string
	TEs   int
	SEs   int
}

// Inject delivers externally injected items to one entry task. Items carry
// coordinator-assigned (Origin, Seq) timestamps: the coordinator owns the
// external seq space so dedup watermarks and replay logs stay coherent
// across worker restarts, and the worker must never re-stamp them.
type Inject struct {
	Task  string
	Items []core.Item
}

// InjectAck confirms the items were admitted and enqueued (not processed).
type InjectAck struct {
	Accepted int
}

// Call is a request/reply injection: the worker waits for the dataflow's
// Reply and sends it back. The item's ReqID is assigned worker-locally;
// the coordinator leaves it zero.
type Call struct {
	Task      string
	Item      core.Item
	TimeoutMs int64
}

// CallReply carries the dataflow's reply value.
type CallReply struct {
	Value any
}

// Heartbeat probes liveness on the control link. Seq echoes back so an ack
// delayed across a probe boundary cannot be credited to the wrong probe.
type Heartbeat struct {
	Seq uint64
}

// HeartbeatAck answers a probe with a load hint.
type HeartbeatAck struct {
	Seq    uint64
	Queued int64
}

// SnapshotReq asks the worker for a consistent snapshot of its state and
// recovery metadata.
type SnapshotReq struct {
	// Chunks is the checkpoint parallelism m per store (default 2).
	Chunks int
}

// SESnap is one SE instance's checkpoint chunks.
type SESnap struct {
	SE     string
	Index  int
	Chunks []state.Chunk
}

// TESnap is one TE instance's recovery metadata, captured in the same
// consistent cut as the SE chunks: the dedup watermarks decide which
// replayed items the restored instance must drop, OutSeq continues the
// output numbering under the same origin identity, and Buffered carries the
// per-out-edge replay log for graphs with dataflow edges.
type TESnap struct {
	TE         string
	Index      int
	Watermarks map[uint64]uint64
	OutSeq     uint64
	Buffered   [][]core.Item
}

// Snapshot is a worker's full state: every SE instance's chunks plus every
// TE instance's recovery metadata.
type Snapshot struct {
	SEs []SESnap
	TEs []TESnap
}

// Restore loads a snapshot into a freshly deployed worker.
type Restore struct {
	Snap Snapshot
}

// RestoreAck confirms a restore.
type RestoreAck struct{}

// DumpReq asks for the full contents of a dictionary SE.
type DumpReq struct {
	SE string
}

// KVEntry is one dictionary entry in a dump.
type KVEntry struct {
	Key   uint64
	Value []byte
}

// Dump returns a dictionary SE's contents across the worker's partitions.
type Dump struct {
	Entries []KVEntry
}

// StatsReq asks for processing counters and watermarks.
type StatsReq struct{}

// Stats reports per-task processed counts and per-task dedup watermarks
// folded (max per origin) across the worker's instances.
type Stats struct {
	Processed  map[string]int64
	Watermarks map[string]map[uint64]uint64
}

// DrainReq asks the worker to wait until its queues quiesce.
type DrainReq struct {
	TimeoutMs int64
}

// DrainAck reports whether the worker quiesced within the timeout.
type DrainAck struct {
	Quiesced bool
}

// Stop shuts the worker's runtime down.
type Stop struct{}

// StopAck confirms shutdown; the worker process exits after sending it.
type StopAck struct{}

func init() {
	// Dynamic payload types that ride inside interface-typed fields
	// (Item.Value, CallReply.Value) in every deployment. Applications
	// register their own payload types the same way.
	Register(false)
	Register(int(0))
	Register(int64(0))
	Register(uint64(0))
	Register("")
	Register([]byte(nil))
	Register(core.Collection{})
}
