package wire

import (
	"repro/internal/core"
	"repro/internal/state"
)

// Message type bytes. Requests flow coordinator -> worker; each has one
// reply type the worker answers with (application failures come back as
// cluster error replies instead). The zero byte is deliberately unassigned
// so an empty or zeroed buffer never parses as a valid message.
const (
	MsgDeploy       byte = 0x01 // Deploy        -> MsgDeployAck
	MsgDeployAck    byte = 0x02 // DeployAck
	MsgInject       byte = 0x03 // Inject        -> MsgInjectAck
	MsgInjectAck    byte = 0x04 // InjectAck
	MsgCall         byte = 0x05 // Call          -> MsgCallReply
	MsgCallReply    byte = 0x06 // CallReply
	MsgHeartbeat    byte = 0x07 // Heartbeat     -> MsgHeartbeatAck
	MsgHeartbeatAck byte = 0x08 // HeartbeatAck
	MsgSnapshotReq  byte = 0x09 // SnapshotReq   -> MsgSnapshot
	MsgSnapshot     byte = 0x0a // Snapshot
	MsgRestore      byte = 0x0b // Restore       -> MsgRestoreAck
	MsgRestoreAck   byte = 0x0c // RestoreAck
	MsgDumpReq      byte = 0x0d // DumpReq       -> MsgDump
	MsgDump         byte = 0x0e // Dump
	MsgStatsReq     byte = 0x0f // StatsReq      -> MsgStats
	MsgStats        byte = 0x10 // Stats
	MsgDrainReq     byte = 0x11 // DrainReq      -> MsgDrainAck
	MsgDrainAck     byte = 0x12 // DrainAck
	MsgStop         byte = 0x13 // Stop          -> MsgStopAck
	MsgStopAck      byte = 0x14 // StopAck
	// Worker-to-worker data plane (cross-worker dataflow edges).
	MsgRemoteEmit    byte = 0x15 // RemoteEmit    -> MsgRemoteEmitAck
	MsgRemoteEmitAck byte = 0x16 // RemoteEmitAck
	MsgPeers         byte = 0x17 // Peers         -> MsgPeersAck
	MsgPeersAck      byte = 0x18 // PeersAck
	MsgEdgeTrim      byte = 0x19 // EdgeTrim      -> MsgEdgeTrimAck
	MsgEdgeTrimAck   byte = 0x1a // EdgeTrimAck
	// Streaming snapshot transfer (v2 protocol; see wire/snapstream.go).
	MsgSnapBegin       byte = 0x1b // SnapBegin     -> MsgSnapBeginAck
	MsgSnapBeginAck    byte = 0x1c // SnapBeginAck
	MsgSnapNext        byte = 0x1d // SnapNext      -> MsgSnapChunk or MsgSnapEnd
	MsgSnapChunk       byte = 0x1e // SnapChunk
	MsgSnapEnd         byte = 0x1f // SnapEnd
	MsgRestoreBegin    byte = 0x20 // RestoreBegin  -> MsgRestoreBeginAck
	MsgRestoreBeginAck byte = 0x21 // RestoreBeginAck
	MsgRestoreChunk    byte = 0x22 // RestoreChunk  -> MsgRestoreChunkAck
	MsgRestoreChunkAck byte = 0x23 // RestoreChunkAck
	MsgRestoreEnd      byte = 0x24 // RestoreEnd    -> MsgRestoreEndAck
	MsgRestoreEndAck   byte = 0x25 // RestoreEndAck
)

// msgNames is the registry of known message types; Decode rejects a type
// byte absent from it with ErrUnknownType.
var msgNames = map[byte]string{
	MsgDeploy:        "Deploy",
	MsgDeployAck:     "DeployAck",
	MsgInject:        "Inject",
	MsgInjectAck:     "InjectAck",
	MsgCall:          "Call",
	MsgCallReply:     "CallReply",
	MsgHeartbeat:     "Heartbeat",
	MsgHeartbeatAck:  "HeartbeatAck",
	MsgSnapshotReq:   "SnapshotReq",
	MsgSnapshot:      "Snapshot",
	MsgRestore:       "Restore",
	MsgRestoreAck:    "RestoreAck",
	MsgDumpReq:       "DumpReq",
	MsgDump:          "Dump",
	MsgStatsReq:      "StatsReq",
	MsgStats:         "Stats",
	MsgDrainReq:      "DrainReq",
	MsgDrainAck:      "DrainAck",
	MsgStop:          "Stop",
	MsgStopAck:       "StopAck",
	MsgRemoteEmit:    "RemoteEmit",
	MsgRemoteEmitAck: "RemoteEmitAck",
	MsgPeers:         "Peers",
	MsgPeersAck:      "PeersAck",
	MsgEdgeTrim:      "EdgeTrim",
	MsgEdgeTrimAck:   "EdgeTrimAck",

	MsgSnapBegin:       "SnapBegin",
	MsgSnapBeginAck:    "SnapBeginAck",
	MsgSnapNext:        "SnapNext",
	MsgSnapChunk:       "SnapChunk",
	MsgSnapEnd:         "SnapEnd",
	MsgRestoreBegin:    "RestoreBegin",
	MsgRestoreBeginAck: "RestoreBeginAck",
	MsgRestoreChunk:    "RestoreChunk",
	MsgRestoreChunkAck: "RestoreChunkAck",
	MsgRestoreEnd:      "RestoreEnd",
	MsgRestoreEndAck:   "RestoreEndAck",
}

// Shard places a contiguous slice [First, First+Count) of a TE's or SE's
// Total global instances on one worker. Global instance identities (origin
// IDs, partition routing, edge destinations) are computed against Total so
// every worker agrees on them regardless of placement.
type Shard struct {
	First int
	Count int
	Total int
}

// Deploy instructs a worker to build and start its local slice of the named
// graph. Task functions cannot cross the wire, so both binaries link the
// application packages and the graph travels by registry name (see
// runtime.RegisterGraph).
type Deploy struct {
	Graph string
	// Partitions sets the worker-local SE partition counts (single-worker
	// deployments only; sharded deployments carry SEShards instead).
	Partitions map[string]int
	// Runtime tuning, mirroring the matching runtime.Options fields.
	QueueLen    int
	OverflowLen int
	BatchSize   int
	KVShards    int
	WireCheck   bool
	// Sharded placement across a worker set (zero-valued for single-worker
	// deployments): this worker's index, the set size, the global shard of
	// every TE and SE assigned to this worker, and every worker's data
	// address so cut dataflow edges can be dialed directly.
	Worker   int
	Workers  int
	TEShards map[string]Shard
	SEShards map[string]Shard
	Peers    []string
	// AwaitRestore seals the worker against peer RemoteEmit traffic until a
	// Restore arrives, so replayed frames cannot land on pre-restore state.
	AwaitRestore bool
}

// DeployAck confirms a deployment.
type DeployAck struct {
	Graph string
	TEs   int
	SEs   int
}

// Inject delivers externally injected items to one entry task. Items carry
// coordinator-assigned (Origin, Seq) timestamps: the coordinator owns the
// external seq space so dedup watermarks and replay logs stay coherent
// across worker restarts, and the worker must never re-stamp them.
type Inject struct {
	Task  string
	Items []core.Item
}

// InjectAck confirms the items were admitted and enqueued (not processed).
type InjectAck struct {
	Accepted int
}

// Call is a request/reply injection: the worker waits for the dataflow's
// Reply and sends it back. The item's ReqID is assigned worker-locally;
// the coordinator leaves it zero.
type Call struct {
	Task      string
	Item      core.Item
	TimeoutMs int64
}

// CallReply carries the dataflow's reply value.
type CallReply struct {
	Value any
}

// Heartbeat probes liveness on the control link. Seq echoes back so an ack
// delayed across a probe boundary cannot be credited to the wrong probe.
type Heartbeat struct {
	Seq uint64
}

// HeartbeatAck answers a probe with a load hint.
type HeartbeatAck struct {
	Seq    uint64
	Queued int64
}

// SnapshotReq asks the worker for a consistent snapshot of its state and
// recovery metadata.
type SnapshotReq struct {
	// Chunks is the checkpoint parallelism m per store (default 2).
	Chunks int
}

// SESnap is one SE instance's checkpoint chunks.
type SESnap struct {
	SE     string
	Index  int
	Chunks []state.Chunk
}

// TESnap is one TE instance's recovery metadata, captured in the same
// consistent cut as the SE chunks: the dedup watermarks decide which
// replayed items the restored instance must drop, OutSeq continues the
// output numbering under the same origin identity, and Buffered carries the
// per-out-edge replay log for graphs with dataflow edges.
type TESnap struct {
	TE         string
	Index      int
	Watermarks map[uint64]uint64
	OutSeq     uint64
	// Buffered carries the per-out-edge replay log, each edge's items
	// flat-encoded with EncodeItems (gob would re-send the type dictionary
	// per log entry; the flat item codec is the honest size).
	Buffered [][]byte
}

// EdgeLogSnap is one cross-worker edge send log: the un-trimmed items this
// worker has emitted toward global instance Inst over graph edge Edge,
// flat-encoded with EncodeItems. Part of the consistent cut: an item a peer
// received but has not folded into a snapshotted watermark is always still
// present in its sender's edge log.
type EdgeLogSnap struct {
	Edge int
	Inst int
	Data []byte
}

// Snapshot is a worker's full state: every SE instance's chunks plus every
// TE instance's recovery metadata, plus in-flight cross-worker edge logs.
type Snapshot struct {
	SEs   []SESnap
	TEs   []TESnap
	Edges []EdgeLogSnap
}

// Restore loads a snapshot into a freshly deployed worker.
type Restore struct {
	Snap Snapshot
}

// RestoreAck confirms a restore.
type RestoreAck struct{}

// DumpReq asks for the full contents of a dictionary SE.
type DumpReq struct {
	SE string
}

// KVEntry is one dictionary entry in a dump.
type KVEntry struct {
	Key   uint64
	Value []byte
}

// Dump returns a dictionary SE's contents across the worker's partitions.
type Dump struct {
	Entries []KVEntry
}

// StatsReq asks for processing counters and watermarks.
type StatsReq struct{}

// Stats reports per-task processed counts and per-task dedup watermarks
// folded (max per origin) across the worker's instances.
type Stats struct {
	Processed  map[string]int64
	Watermarks map[string]map[uint64]uint64
}

// DrainReq asks the worker to wait until its queues quiesce.
type DrainReq struct {
	TimeoutMs int64
}

// DrainAck reports whether the worker quiesced within the timeout.
// Processed totals items processed across all TEs: the coordinator drains in
// rounds and only believes a quiesced cluster once two consecutive rounds
// agree on every worker's total, so items acked at a sender but not yet
// processed at the receiver cannot slip through a drain barrier.
type DrainAck struct {
	Quiesced  bool
	Processed int64
}

// RemoteEmit carries one batch of dataflow items across a cut edge, from
// the emitting worker straight to the worker hosting global destination
// instance Inst of graph edge Edge (index into Graph.Edges). Items keep
// their sender-assigned (Origin, Seq); the receiver's dedup makes re-sends
// after an ambiguous ack idempotent.
type RemoteEmit struct {
	Edge  int
	Inst  int
	Items []core.Item
}

// RemoteEmitAck confirms the items were enqueued at the destination. A
// backpressured or still-restoring destination answers with a cluster
// error reply instead and the sender retries — never blocks — so
// cross-worker cycles cannot distributed-deadlock.
type RemoteEmitAck struct {
	Accepted int
}

// Peers announces a worker's (possibly new) data address after recovery.
// Receivers drop their cached transport to that worker and rebuild the
// in-flight send queue from their edge logs, which replays everything the
// restarted worker may have lost.
type Peers struct {
	Worker int
	Addr   string
}

// PeersAck confirms the peer table update.
type PeersAck struct{}

// EdgeTrimEntry carries one destination instance's dedup watermarks so
// senders can trim their (Edge, Inst) send log: an item whose seq the
// receiver has snapshotted past can never be replayed again.
type EdgeTrimEntry struct {
	Edge       int
	Inst       int
	Watermarks map[uint64]uint64
}

// LocalTrim carries one TE's coordinator-folded watermark floor (min per
// origin across every instance of that TE, cluster-wide). Once every
// instance has snapshotted past a seq, no recovery can ever replay it, so
// workers may drop covered entries from their local output buffers.
type LocalTrim struct {
	TE         string
	Watermarks map[uint64]uint64
}

// EdgeTrim distributes post-checkpoint trim points: per-destination trims
// for cross-worker edge send logs, plus per-TE floors for worker-local
// output buffers. Old peers gob-decode the message without Locals and
// simply skip the local trim.
type EdgeTrim struct {
	Trims  []EdgeTrimEntry
	Locals []LocalTrim
}

// EdgeTrimAck confirms the trim.
type EdgeTrimAck struct{}

// Stop shuts the worker's runtime down.
type Stop struct{}

// StopAck confirms shutdown; the worker process exits after sending it.
type StopAck struct{}

func init() {
	// Dynamic payload types that ride inside interface-typed fields
	// (Item.Value, CallReply.Value) in every deployment. Applications
	// register their own payload types the same way.
	Register(false)
	Register(int(0))
	Register(int64(0))
	Register(uint64(0))
	Register("")
	Register([]byte(nil))
	Register(core.Collection{})
}
