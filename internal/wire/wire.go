// Package wire is the versioned message codec of the distributed deployment
// mode. Every payload crossing a process boundary travels inside a framed
// envelope:
//
//	[0] message type byte (Msg* constants)
//	[1] protocol version (Version)
//	[2:] gob-encoded payload struct
//
// The envelope rides inside the cluster package's length-prefixed frames;
// this package is only concerned with what the frame bytes mean.
//
// Like labgob, the codec validates types at registration and encode time:
// gob silently drops unexported struct fields, which in a replicated state
// system turns into state divergence that surfaces long after the bug. Any
// value whose type (or dynamic payload) carries a lower-case field is
// rejected loudly instead. Checked types are cached, so steady-state
// encoding pays one map lookup, not a reflect walk.
package wire

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"reflect"
	"sync"
)

// Version is the protocol revision carried in every envelope. Bump it on
// any incompatible message change; peers reject mismatched envelopes with a
// *VersionError instead of misdecoding them.
const Version byte = 1

// Typed decode errors. Decode and Unmarshal never panic on hostile input.
var (
	// ErrShortFrame: the frame ends before the two-byte envelope header.
	ErrShortFrame = errors.New("wire: frame too short for envelope header")
	// ErrUnknownType: the type byte names no registered message.
	ErrUnknownType = errors.New("wire: unknown message type")
	// ErrUnexpectedType: a reply carried a valid but different message type
	// than the protocol step expects.
	ErrUnexpectedType = errors.New("wire: unexpected message type")
	// ErrBadPayload: the gob payload does not decode into the target.
	ErrBadPayload = errors.New("wire: malformed payload")
	// ErrVersion matches any *VersionError via errors.Is.
	ErrVersion = errors.New("wire: protocol version mismatch")
)

// VersionError reports an envelope from an incompatible peer.
type VersionError struct {
	Got, Want byte
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("wire: protocol version mismatch: got %d, want %d", e.Got, e.Want)
}

// Is makes errors.Is(err, ErrVersion) match.
func (e *VersionError) Is(target error) bool { return target == ErrVersion }

// Register validates v's type and registers it with gob, so it can travel
// inside interface-typed fields (e.g. Item.Value). It panics on types gob
// would corrupt silently — registration happens in init functions, where
// failing loudly at startup beats diverging state at runtime.
func Register(v any) {
	if err := checkValue(reflect.ValueOf(v)); err != nil {
		panic(err)
	}
	gob.Register(v)
}

// Encode wraps a payload struct in a versioned envelope. The payload (and
// every dynamic value reachable through its interface fields) is validated
// before encoding: a type gob would silently truncate fails here, at the
// sender, where the bug is.
func Encode(msgType byte, v any) ([]byte, error) {
	if _, ok := msgNames[msgType]; !ok {
		return nil, fmt.Errorf("%w: 0x%02x", ErrUnknownType, msgType)
	}
	if err := checkValue(reflect.ValueOf(v)); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.WriteByte(msgType)
	buf.WriteByte(Version)
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("wire: encode %s: %w", MsgName(msgType), err)
	}
	return buf.Bytes(), nil
}

// Decode splits an envelope into its message type and payload bytes,
// checking the header. The payload is not parsed; pass it to Unmarshal once
// the type byte has selected the target struct.
func Decode(frame []byte) (msgType byte, payload []byte, err error) {
	if len(frame) < 2 {
		return 0, nil, fmt.Errorf("%w: %d byte(s)", ErrShortFrame, len(frame))
	}
	if frame[1] != Version {
		return 0, nil, &VersionError{Got: frame[1], Want: Version}
	}
	if _, ok := msgNames[frame[0]]; !ok {
		return 0, nil, fmt.Errorf("%w: 0x%02x", ErrUnknownType, frame[0])
	}
	return frame[0], frame[2:], nil
}

// Unmarshal decodes payload bytes (from Decode) into v.
func Unmarshal(payload []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	return nil
}

// Expect decodes a complete envelope that must carry the given message
// type — the reply-parsing path, where the protocol step fixes the type.
func Expect(frame []byte, want byte, v any) error {
	t, payload, err := Decode(frame)
	if err != nil {
		return err
	}
	if t != want {
		return fmt.Errorf("%w: got %s, want %s", ErrUnexpectedType, MsgName(t), MsgName(want))
	}
	return Unmarshal(payload, v)
}

// MsgName names a message type byte for error messages and logs.
func MsgName(t byte) string {
	if n, ok := msgNames[t]; ok {
		return n
	}
	return fmt.Sprintf("msg(0x%02x)", t)
}

// checkResult caches the verdict for one type: err is the static rejection
// (unexported field, unencodable kind); clean means no interface is
// reachable, so values of the type never need a dynamic walk.
type checkResult struct {
	err   error
	clean bool
}

var checked sync.Map // reflect.Type -> checkResult

// checkValue validates that gob will encode v faithfully. Static structure
// is checked once per type and cached; only types with reachable interface
// fields descend into the actual values, and only through those fields.
func checkValue(v reflect.Value) error {
	if !v.IsValid() {
		return nil // nil interface: gob encodes the zero value faithfully
	}
	t := v.Type()
	var cr checkResult
	if r, ok := checked.Load(t); ok {
		cr = r.(checkResult)
	} else {
		cr.err, cr.clean = checkType(t, map[reflect.Type]bool{})
		checked.Store(t, cr)
	}
	if cr.err != nil {
		return cr.err
	}
	if cr.clean {
		return nil
	}
	switch v.Kind() {
	case reflect.Interface, reflect.Pointer:
		if v.IsNil() {
			return nil
		}
		return checkValue(v.Elem())
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if err := checkValue(v.Field(i)); err != nil {
				return err
			}
		}
	case reflect.Slice, reflect.Array:
		for i := 0; i < v.Len(); i++ {
			if err := checkValue(v.Index(i)); err != nil {
				return err
			}
		}
	case reflect.Map:
		iter := v.MapRange()
		for iter.Next() {
			if err := checkValue(iter.Key()); err != nil {
				return err
			}
			if err := checkValue(iter.Value()); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkType walks a type's static structure. seen breaks recursive types;
// a type already on the walk path is treated as clean here, its own entry
// settles the verdict.
func checkType(t reflect.Type, seen map[reflect.Type]bool) (err error, clean bool) {
	if seen[t] {
		return nil, true
	}
	seen[t] = true
	switch t.Kind() {
	case reflect.Chan, reflect.Func, reflect.UnsafePointer:
		return fmt.Errorf("wire: type %v cannot cross the wire (kind %v)", t, t.Kind()), false
	case reflect.Interface:
		return nil, false // dynamic value checked per encode
	case reflect.Pointer, reflect.Slice, reflect.Array:
		return checkType(t.Elem(), seen)
	case reflect.Map:
		kerr, kclean := checkType(t.Key(), seen)
		if kerr != nil {
			return kerr, false
		}
		verr, vclean := checkType(t.Elem(), seen)
		if verr != nil {
			return verr, false
		}
		return nil, kclean && vclean
	case reflect.Struct:
		clean = true
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if f.PkgPath != "" {
				return fmt.Errorf("wire: type %v has unexported field %q (gob drops it silently)", t, f.Name), false
			}
			ferr, fclean := checkType(f.Type, seen)
			if ferr != nil {
				return ferr, false
			}
			clean = clean && fclean
		}
		return nil, clean
	default:
		return nil, true
	}
}
