// Package wire is the versioned message codec of the distributed deployment
// mode. Every payload crossing a process boundary travels inside a framed
// envelope:
//
//	[0] message type byte (Msg* constants)
//	[1] payload version (VersionGob or VersionFlat)
//	[2:] encoded payload struct
//
// The envelope rides inside the cluster package's length-prefixed frames;
// this package is only concerned with what the frame bytes mean.
//
// Two payload encodings coexist. Data-plane messages (Inject/InjectAck,
// Call/CallReply, Heartbeat/HeartbeatAck) encode flat (internal/wire/flat):
// hand-rolled uvarint/fixed fields with no reflection and no per-frame type
// dictionary. Control-plane messages (Deploy, Snapshot, Stats, ...) stay on
// gob — they are rare and structurally rich. Decode accepts both versions,
// so a v2 peer reads v1 frames; a v1-only peer rejects v2 frames with a
// *VersionError instead of misdecoding them.
//
// Like labgob, the gob path validates types at registration and encode
// time: gob silently drops unexported struct fields, which in a replicated
// state system turns into state divergence that surfaces long after the
// bug. Any value whose type (or dynamic payload) carries a lower-case field
// is rejected loudly instead (flat.CheckWireSafe; verdicts are cached).
package wire

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"

	"repro/internal/wire/flat"
)

// Payload versions. VersionGob frames carry a gob-encoded struct,
// VersionFlat frames carry the flat encoding; Version is what this peer
// emits for flat-capable message types and doubles as the protocol
// revision reported in version errors. Bump VersionFlat (and add a case to
// Decode) on any incompatible flat layout change.
const (
	VersionGob  byte = 1
	VersionFlat byte = 2
	Version     byte = VersionFlat
)

// Typed decode errors. Decode and Unmarshal never panic on hostile input.
var (
	// ErrShortFrame: the frame ends before the two-byte envelope header.
	ErrShortFrame = errors.New("wire: frame too short for envelope header")
	// ErrUnknownType: the type byte names no registered message.
	ErrUnknownType = errors.New("wire: unknown message type")
	// ErrUnexpectedType: a reply carried a valid but different message type
	// than the protocol step expects.
	ErrUnexpectedType = errors.New("wire: unexpected message type")
	// ErrBadPayload: the payload does not decode into the target.
	ErrBadPayload = errors.New("wire: malformed payload")
	// ErrVersion matches any *VersionError via errors.Is.
	ErrVersion = errors.New("wire: protocol version mismatch")
)

// VersionError reports an envelope from an incompatible peer.
type VersionError struct {
	Got, Want byte
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("wire: protocol version mismatch: got %d, want %d", e.Got, e.Want)
}

// Is makes errors.Is(err, ErrVersion) match.
func (e *VersionError) Is(target error) bool { return target == ErrVersion }

// Payload is an envelope's body plus the version that tells Unmarshal how
// to parse it. Body may alias the decoded frame; see Unmarshal for the
// ownership contract.
type Payload struct {
	Ver  byte
	Body []byte
}

// Register validates v's type and registers it with gob, so it can travel
// inside interface-typed fields (e.g. Item.Value). It panics on types gob
// would corrupt silently — registration happens in init functions, where
// failing loudly at startup beats diverging state at runtime.
func Register(v any) {
	if err := flat.CheckWireSafe(v); err != nil {
		panic(err)
	}
	gob.Register(v)
}

// Encode wraps a payload struct in a versioned envelope, taking the flat
// fast path for data-plane types and gob for everything else. The result is
// a fresh allocation (one exact-size copy off a pooled encoder on the flat
// path); use EncodeAppend to reuse a caller-owned buffer instead.
func Encode(msgType byte, v any) ([]byte, error) {
	if _, ok := msgNames[msgType]; !ok {
		return nil, fmt.Errorf("%w: 0x%02x", ErrUnknownType, msgType)
	}
	e := flat.GetEncoder()
	defer flat.PutEncoder(e)
	ok, err := encodeFlat(e, msgType, v)
	if err != nil {
		return nil, err
	}
	if ok {
		out := make([]byte, e.Len())
		copy(out, e.Bytes())
		return out, nil
	}
	return encodeGob(msgType, v)
}

// EncodeAppend appends the envelope for v to dst and returns the extended
// slice (steady-state 0 allocs on the flat path once dst has capacity).
// Non-flat message types fall back to gob and allocate as Encode does.
func EncodeAppend(dst []byte, msgType byte, v any) ([]byte, error) {
	if _, ok := msgNames[msgType]; !ok {
		return nil, fmt.Errorf("%w: 0x%02x", ErrUnknownType, msgType)
	}
	var e flat.Encoder
	e.Reset(dst)
	ok, err := encodeFlat(&e, msgType, v)
	if err != nil {
		return nil, err
	}
	if ok {
		return e.Bytes(), nil
	}
	frame, err := encodeGob(msgType, v)
	if err != nil {
		return nil, err
	}
	return append(dst, frame...), nil
}

// EncodeGob forces the gob payload encoding regardless of type — the v1
// envelope a pre-flat peer would emit. Benchmarks and compatibility tests
// use it; production senders should prefer Encode.
func EncodeGob(msgType byte, v any) ([]byte, error) {
	if _, ok := msgNames[msgType]; !ok {
		return nil, fmt.Errorf("%w: 0x%02x", ErrUnknownType, msgType)
	}
	return encodeGob(msgType, v)
}

func encodeGob(msgType byte, v any) ([]byte, error) {
	if err := flat.CheckWireSafe(v); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.WriteByte(msgType)
	buf.WriteByte(VersionGob)
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("wire: encode %s: %w", MsgName(msgType), err)
	}
	return buf.Bytes(), nil
}

// Decode splits an envelope into its message type and versioned payload,
// checking the header. The payload is not parsed; pass it to Unmarshal once
// the type byte has selected the target struct. A flat envelope for a
// message type this peer only knows as gob is a version mismatch (a future
// peer moved it to flat), reported loudly rather than misdecoded.
func Decode(frame []byte) (msgType byte, p Payload, err error) {
	if len(frame) < 2 {
		return 0, Payload{}, fmt.Errorf("%w: %d byte(s)", ErrShortFrame, len(frame))
	}
	ver := frame[1]
	if ver != VersionGob && ver != VersionFlat {
		return 0, Payload{}, &VersionError{Got: ver, Want: Version}
	}
	if _, ok := msgNames[frame[0]]; !ok {
		return 0, Payload{}, fmt.Errorf("%w: 0x%02x", ErrUnknownType, frame[0])
	}
	if ver == VersionFlat && !flatCapable(frame[0]) {
		return 0, Payload{}, &VersionError{Got: ver, Want: VersionGob}
	}
	return frame[0], Payload{Ver: ver, Body: frame[2:]}, nil
}

// Unmarshal decodes a payload (from Decode) into v, dispatching on the
// envelope version. Flat payloads decode in borrow mode: []byte values in
// the result alias p.Body, so the frame must not be reused afterwards —
// the cluster transports allocate a fresh buffer per read, satisfying this
// by construction.
func Unmarshal(p Payload, v any) error {
	if p.Ver == VersionFlat {
		ok, err := decodeFlat(p.Body, v)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("%w: flat payload for %T", ErrBadPayload, v)
		}
		return nil
	}
	if err := gob.NewDecoder(bytes.NewReader(p.Body)).Decode(v); err != nil {
		return fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	return nil
}

// Expect decodes a complete envelope that must carry the given message
// type — the reply-parsing path, where the protocol step fixes the type.
func Expect(frame []byte, want byte, v any) error {
	t, p, err := Decode(frame)
	if err != nil {
		return err
	}
	if t != want {
		return fmt.Errorf("%w: got %s, want %s", ErrUnexpectedType, MsgName(t), MsgName(want))
	}
	return Unmarshal(p, v)
}

// MsgName names a message type byte for error messages and logs.
func MsgName(t byte) string {
	if n, ok := msgNames[t]; ok {
		return n
	}
	return fmt.Sprintf("msg(0x%02x)", t)
}
