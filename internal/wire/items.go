package wire

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/wire/flat"
)

// EncodeItems flat-encodes an item batch for embedding inside gob-framed
// control messages (snapshot replay logs, edge logs). Layout: uvarint count,
// count× item — the same item layout the RemoteEmit data plane uses, so log
// bytes reported by the benches reflect what actually crosses the wire
// instead of gob's per-entry type dictionary.
func EncodeItems(items []core.Item) ([]byte, error) {
	e := flat.GetEncoder()
	defer flat.PutEncoder(e)
	e.Uvarint(uint64(len(items)))
	for i := range items {
		if err := e.Item(items[i]); err != nil {
			return nil, err
		}
	}
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out, nil
}

// EncodeItemsBounded encodes a prefix of items whose encoding stays near
// maxBytes, returning the encoding and how many items it consumed. At
// least one item is always consumed (a single oversized item may exceed
// the budget), so a caller splitting a long log into bounded blobs always
// makes progress. The output is a complete EncodeItems blob: uvarint
// count, count× item.
func EncodeItemsBounded(items []core.Item, maxBytes int) ([]byte, int, error) {
	body := flat.GetEncoder()
	defer flat.PutEncoder(body)
	took := 0
	for _, it := range items {
		before := body.Len()
		if err := body.Item(it); err != nil {
			return nil, 0, err
		}
		if took > 0 && body.Len() > maxBytes {
			// Cut before the item that crossed the budget.
			body.Reset(body.Bytes()[:before])
			break
		}
		took++
		if body.Len() >= maxBytes {
			break
		}
	}
	head := flat.GetEncoder()
	defer flat.PutEncoder(head)
	head.Uvarint(uint64(took))
	out := make([]byte, 0, head.Len()+body.Len())
	out = append(out, head.Bytes()...)
	out = append(out, body.Bytes()...)
	return out, took, nil
}

// DecodeItems reverses EncodeItems. It decodes in copy mode — the result
// outlives the input buffer (replay logs are long-lived) — and applies the
// same hostile-count guard as the frame decoders.
func DecodeItems(data []byte) ([]core.Item, error) {
	d := flat.NewDecoder(data)
	n := d.Uvarint()
	if d.Err() == nil && n > uint64(d.Remaining()) {
		return nil, fmt.Errorf("%w: item count %d exceeds payload", ErrBadPayload, n)
	}
	items := make([]core.Item, 0, n)
	for i := uint64(0); i < n; i++ {
		items = append(items, d.Item())
		if d.Err() != nil {
			break
		}
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	if !d.Done() {
		return nil, fmt.Errorf("%w: %d trailing byte(s)", ErrBadPayload, d.Remaining())
	}
	return items, nil
}
