//go:build race

package wire

// raceEnabled reports whether the race detector instruments this binary.
// Its runtime adds bookkeeping allocations that the exact-count encoder
// guards cannot distinguish from real regressions.
const raceEnabled = true
