// Package flat is the hand-rolled binary codec behind wire format v2: the
// data-plane messages (Inject, Call, heartbeats) and the core.Item payload
// encode as uvarint/fixed fields and length-prefixed bytes, the same
// discipline as the state chunk codec, instead of paying gob's reflection
// walk and per-frame type dictionary.
//
// The value scheme is a single tag byte followed by the payload for the
// common Item.Value types (nil, bool, uint64, int64, int, float64, string,
// []byte, core.Collection). Any other type falls back to a gob-encoded
// sub-payload behind TagGob, validated by CheckWireSafe first, so arbitrary
// registered application values keep working at gob speed while the common
// path never touches reflection.
//
// Encoders append into a caller-supplied or pooled buffer and are reusable;
// Decoders never panic on hostile input (length and count fields are
// bounds-checked against the remaining bytes before any allocation, and
// Collection nesting is depth-limited). A Decoder in borrow mode returns
// []byte values aliasing the input buffer — callers use it only when the
// buffer's ownership transfers with the decoded value (a freshly read
// frame); copy mode is for buffers that will be reused.
package flat

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"

	"repro/internal/core"
)

// Value tag bytes. The zero byte is deliberately unassigned so zeroed
// memory never parses as a value.
const (
	TagNil        byte = 0x01
	TagFalse      byte = 0x02
	TagTrue       byte = 0x03
	TagUint64     byte = 0x04
	TagInt64      byte = 0x05
	TagInt        byte = 0x06
	TagFloat64    byte = 0x07
	TagString     byte = 0x08
	TagBytes      byte = 0x09
	TagCollection byte = 0x0a
	TagGob        byte = 0x0b
)

// MaxDepth bounds Collection nesting on both encode (self-referential
// collections would loop forever) and decode (a hostile buffer of repeated
// collection tags would otherwise recurse to stack exhaustion).
const MaxDepth = 64

// Typed errors. Decode errors are sticky on the Decoder; Err returns the
// first one.
var (
	ErrMalformed = errors.New("flat: malformed payload")
	ErrDepth     = errors.New("flat: collection nesting exceeds depth limit")
)

// maxPooledBuf caps the buffer capacity an encoder may bring back into the
// pool, so one jumbo snapshot frame doesn't pin megabytes forever.
const maxPooledBuf = 1 << 20

var encPool = sync.Pool{New: func() any { return new(Encoder) }}

// GetEncoder returns a pooled encoder with an empty buffer.
func GetEncoder() *Encoder {
	e := encPool.Get().(*Encoder)
	e.buf = e.buf[:0]
	e.depth = 0
	return e
}

// PutEncoder returns an encoder to the pool. The caller must be done with
// any slice obtained from Bytes.
func PutEncoder(e *Encoder) {
	if cap(e.buf) > maxPooledBuf {
		e.buf = nil
	}
	encPool.Put(e)
}

// Encoder appends the flat encoding to an internal buffer. The zero value
// is ready to use; Reset points it at a caller-owned buffer for
// append-in-place encoding (0 allocs when the buffer has capacity).
type Encoder struct {
	buf   []byte
	tmp   [binary.MaxVarintLen64]byte
	depth int
}

// Reset makes the encoder append to dst (usually dst[:0] of a reused
// buffer).
func (e *Encoder) Reset(dst []byte) {
	e.buf = dst
	e.depth = 0
}

// Bytes returns the encoded buffer. It aliases the encoder's internal
// buffer: copy it out before reusing or pooling the encoder.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the encoded size so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Byte appends one raw byte.
func (e *Encoder) Byte(b byte) { e.buf = append(e.buf, b) }

// Uvarint appends v in varint encoding.
func (e *Encoder) Uvarint(v uint64) {
	n := binary.PutUvarint(e.tmp[:], v)
	e.buf = append(e.buf, e.tmp[:n]...)
}

// Varint appends v in zigzag varint encoding.
func (e *Encoder) Varint(v int64) {
	n := binary.PutVarint(e.tmp[:], v)
	e.buf = append(e.buf, e.tmp[:n]...)
}

// Fixed64 appends v as 8 little-endian bytes — used where a fixed frame
// size matters more than small-value compactness (heartbeat seqs).
func (e *Encoder) Fixed64(v uint64) {
	binary.LittleEndian.PutUint64(e.tmp[:8], v)
	e.buf = append(e.buf, e.tmp[:8]...)
}

// Float64 appends f as fixed 8 little-endian bytes.
func (e *Encoder) Float64(f float64) { e.Fixed64(math.Float64bits(f)) }

// Blob appends a length-prefixed byte slice.
func (e *Encoder) Blob(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Str appends a length-prefixed string without converting it to []byte.
func (e *Encoder) Str(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Value appends one tagged Item.Value. Unknown types fall back to a
// gob-encoded sub-payload (validated first, so a type gob would corrupt is
// rejected at the sender). []byte and Collection use a presence-shifted
// count (0 = nil, n+1 = length n) so nil round-trips exactly.
func (e *Encoder) Value(v any) error {
	switch x := v.(type) {
	case nil:
		e.Byte(TagNil)
	case bool:
		if x {
			e.Byte(TagTrue)
		} else {
			e.Byte(TagFalse)
		}
	case uint64:
		e.Byte(TagUint64)
		e.Uvarint(x)
	case int64:
		e.Byte(TagInt64)
		e.Varint(x)
	case int:
		e.Byte(TagInt)
		e.Varint(int64(x))
	case float64:
		e.Byte(TagFloat64)
		e.Float64(x)
	case string:
		e.Byte(TagString)
		e.Str(x)
	case []byte:
		e.Byte(TagBytes)
		if x == nil {
			e.Uvarint(0)
		} else {
			e.Uvarint(uint64(len(x)) + 1)
			e.buf = append(e.buf, x...)
		}
	case core.Collection:
		if e.depth >= MaxDepth {
			return ErrDepth
		}
		e.depth++
		e.Byte(TagCollection)
		if x == nil {
			e.Uvarint(0)
		} else {
			e.Uvarint(uint64(len(x)) + 1)
			for _, el := range x {
				if err := e.Value(el); err != nil {
					e.depth--
					return err
				}
			}
		}
		e.depth--
	default:
		return e.gobValue(v)
	}
	return nil
}

// gobValue is the fallback for value types outside the tag table.
func (e *Encoder) gobValue(v any) error {
	if err := CheckWireSafe(v); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return fmt.Errorf("flat: gob fallback for %T: %w", v, err)
	}
	e.Byte(TagGob)
	e.Blob(buf.Bytes())
	return nil
}

// Item appends one core.Item: uvarint Origin/Seq/Key/ReqID, varint Parts,
// then the tagged value. Origin is stored rotated by +1: every externally
// injected item carries the sentinel origin ^uint64(0), which a plain
// uvarint spends ten bytes on; rotated it wraps to zero and costs one,
// while real node ids (small integers) stay one byte too.
func (e *Encoder) Item(it core.Item) error {
	e.Uvarint(it.Origin + 1)
	e.Uvarint(it.Seq)
	e.Uvarint(it.Key)
	e.Uvarint(it.ReqID)
	e.Varint(int64(it.Parts))
	return e.Value(it.Value)
}

// Decoder reads the flat encoding with a sticky error: after the first
// malformed field every subsequent read returns zero values and Err reports
// the failure. It never panics and never allocates more than the remaining
// input could justify.
type Decoder struct {
	buf    []byte
	off    int
	err    error
	borrow bool
	depth  int
}

// NewDecoder returns a copy-mode decoder: returned []byte values are
// copies, safe to hold after buf is reused.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// NewBorrowDecoder returns a borrow-mode decoder: returned []byte values
// alias buf. Use only when buf's ownership transfers with the decoded
// values (a frame that is never reused).
func NewBorrowDecoder(buf []byte) *Decoder { return &Decoder{buf: buf, borrow: true} }

// Init readies a (possibly stack-allocated) decoder for buf.
func (d *Decoder) Init(buf []byte, borrow bool) {
	d.buf, d.off, d.err, d.borrow, d.depth = buf, 0, nil, borrow, 0
}

// Err returns the first decode failure, or nil.
func (d *Decoder) Err() error { return d.err }

// Done reports whether the whole buffer was consumed without error.
func (d *Decoder) Done() bool { return d.err == nil && d.off >= len(d.buf) }

// Remaining returns the unread byte count.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Byte reads one raw byte.
func (d *Decoder) Byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail(ErrMalformed)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

// Uvarint reads a varint-encoded uint64.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail(ErrMalformed)
		return 0
	}
	d.off += n
	return v
}

// Varint reads a zigzag varint-encoded int64.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail(ErrMalformed)
		return 0
	}
	d.off += n
	return v
}

// Fixed64 reads 8 little-endian bytes.
func (d *Decoder) Fixed64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail(ErrMalformed)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// Float64 reads a fixed 8-byte float.
func (d *Decoder) Float64() float64 { return math.Float64frombits(d.Fixed64()) }

// take returns the next n bytes, borrowed or copied per mode. The bounds
// check precedes any allocation, so hostile lengths cannot force one.
func (d *Decoder) take(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail(ErrMalformed)
		return nil
	}
	raw := d.buf[d.off : d.off+int(n) : d.off+int(n)]
	d.off += int(n)
	if d.borrow {
		return raw
	}
	out := make([]byte, n)
	copy(out, raw)
	return out
}

// Blob reads a length-prefixed byte slice (borrow/copy per mode).
func (d *Decoder) Blob() []byte { return d.take(d.Uvarint()) }

// Str reads a length-prefixed string (always a copy: string conversion).
func (d *Decoder) Str() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail(ErrMalformed)
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// Value reads one tagged value.
func (d *Decoder) Value() any {
	if d.err != nil {
		return nil
	}
	switch tag := d.Byte(); tag {
	case TagNil:
		return nil
	case TagFalse:
		return false
	case TagTrue:
		return true
	case TagUint64:
		return d.Uvarint()
	case TagInt64:
		return d.Varint()
	case TagInt:
		return int(d.Varint())
	case TagFloat64:
		return d.Float64()
	case TagString:
		return d.Str()
	case TagBytes:
		n := d.Uvarint()
		if d.err != nil {
			return nil
		}
		if n == 0 {
			return []byte(nil)
		}
		return d.take(n - 1)
	case TagCollection:
		n := d.Uvarint()
		if d.err != nil {
			return nil
		}
		if n == 0 {
			return core.Collection(nil)
		}
		count := n - 1
		// Every element costs at least one tag byte; a count beyond the
		// remaining input is hostile, reject before allocating.
		if count > uint64(d.Remaining()) {
			d.fail(ErrMalformed)
			return nil
		}
		if d.depth >= MaxDepth {
			d.fail(ErrDepth)
			return nil
		}
		d.depth++
		col := make(core.Collection, 0, count)
		for i := uint64(0); i < count; i++ {
			col = append(col, d.Value())
			if d.err != nil {
				d.depth--
				return nil
			}
		}
		d.depth--
		return col
	case TagGob:
		// gob copies as it decodes, so the sub-payload may alias the input
		// regardless of mode.
		n := d.Uvarint()
		if d.err != nil {
			return nil
		}
		if n > uint64(len(d.buf)-d.off) {
			d.fail(ErrMalformed)
			return nil
		}
		raw := d.buf[d.off : d.off+int(n)]
		d.off += int(n)
		var out any
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&out); err != nil {
			d.fail(fmt.Errorf("%w: gob fallback: %v", ErrMalformed, err))
			return nil
		}
		return out
	default:
		d.fail(fmt.Errorf("%w: unknown value tag 0x%02x", ErrMalformed, tag))
		return nil
	}
}

// Item reads one core.Item, undoing the +1 origin rotation.
func (d *Decoder) Item() core.Item {
	var it core.Item
	it.Origin = d.Uvarint() - 1
	it.Seq = d.Uvarint()
	it.Key = d.Uvarint()
	it.ReqID = d.Uvarint()
	it.Parts = int(d.Varint())
	it.Value = d.Value()
	return it
}

// RoundTripValue deep-copies v through the flat value codec using a pooled
// encoder and a copy-mode decode — the cheap replacement for a gob
// encoder+decoder pair per value. Types outside the tag table still work
// via the gob fallback; types that cannot cross the wire error out.
func RoundTripValue(v any) (any, error) {
	e := GetEncoder()
	defer PutEncoder(e)
	if err := e.Value(v); err != nil {
		return nil, err
	}
	d := Decoder{buf: e.Bytes()}
	out := d.Value()
	if d.err != nil {
		return nil, d.err
	}
	return out, nil
}

// checkResult caches the verdict for one type: err is the static rejection
// (unexported field, unencodable kind); clean means no interface is
// reachable, so values of the type never need a dynamic walk.
type checkResult struct {
	err   error
	clean bool
}

var checked sync.Map // reflect.Type -> checkResult

// CheckWireSafe validates that gob will encode v faithfully: gob silently
// drops unexported struct fields, which in a replicated state system turns
// into state divergence that surfaces long after the bug. Static structure
// is checked once per type and cached; only types with reachable interface
// fields descend into the actual values, and only through those fields.
func CheckWireSafe(v any) error { return checkValue(reflect.ValueOf(v)) }

func checkValue(v reflect.Value) error {
	if !v.IsValid() {
		return nil // nil interface: gob encodes the zero value faithfully
	}
	t := v.Type()
	var cr checkResult
	if r, ok := checked.Load(t); ok {
		cr = r.(checkResult)
	} else {
		cr.err, cr.clean = checkType(t, map[reflect.Type]bool{})
		checked.Store(t, cr)
	}
	if cr.err != nil {
		return cr.err
	}
	if cr.clean {
		return nil
	}
	switch v.Kind() {
	case reflect.Interface, reflect.Pointer:
		if v.IsNil() {
			return nil
		}
		return checkValue(v.Elem())
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if err := checkValue(v.Field(i)); err != nil {
				return err
			}
		}
	case reflect.Slice, reflect.Array:
		for i := 0; i < v.Len(); i++ {
			if err := checkValue(v.Index(i)); err != nil {
				return err
			}
		}
	case reflect.Map:
		iter := v.MapRange()
		for iter.Next() {
			if err := checkValue(iter.Key()); err != nil {
				return err
			}
			if err := checkValue(iter.Value()); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkType walks a type's static structure. seen breaks recursive types;
// a type already on the walk path is treated as clean here, its own entry
// settles the verdict.
func checkType(t reflect.Type, seen map[reflect.Type]bool) (err error, clean bool) {
	if seen[t] {
		return nil, true
	}
	seen[t] = true
	switch t.Kind() {
	case reflect.Chan, reflect.Func, reflect.UnsafePointer:
		return fmt.Errorf("wire: type %v cannot cross the wire (kind %v)", t, t.Kind()), false
	case reflect.Interface:
		return nil, false // dynamic value checked per encode
	case reflect.Pointer, reflect.Slice, reflect.Array:
		return checkType(t.Elem(), seen)
	case reflect.Map:
		kerr, kclean := checkType(t.Key(), seen)
		if kerr != nil {
			return kerr, false
		}
		verr, vclean := checkType(t.Elem(), seen)
		if verr != nil {
			return verr, false
		}
		return nil, kclean && vclean
	case reflect.Struct:
		clean = true
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if f.PkgPath != "" {
				return fmt.Errorf("wire: type %v has unexported field %q (gob drops it silently)", t, f.Name), false
			}
			ferr, fclean := checkType(f.Type, seen)
			if ferr != nil {
				return ferr, false
			}
			clean = clean && fclean
		}
		return nil, clean
	default:
		return nil, true
	}
}
