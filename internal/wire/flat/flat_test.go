package flat

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
)

// gobOnly exercises the TagGob fallback: a registered struct outside the
// flat tag table.
type gobOnly struct {
	A int
	B string
}

func init() {
	//sdg:ignore wiresafe -- flat sits below the wire layer (wire imports flat), so wire.Register would cycle; gobOnly deliberately tests the raw gob fallback
	gob.Register(gobOnly{})
}

// equalValue compares decoded values structurally: NaN floats by bits,
// []byte and Collection including their nil-ness (the codec promises exact
// nil round trips).
func equalValue(a, b any) bool {
	switch x := a.(type) {
	case float64:
		y, ok := b.(float64)
		return ok && math.Float64bits(x) == math.Float64bits(y)
	case []byte:
		y, ok := b.([]byte)
		return ok && (x == nil) == (y == nil) && bytes.Equal(x, y)
	case core.Collection:
		y, ok := b.(core.Collection)
		if !ok || len(x) != len(y) || (x == nil) != (y == nil) {
			return false
		}
		for i := range x {
			if !equalValue(x[i], y[i]) {
				return false
			}
		}
		return true
	default:
		return reflect.DeepEqual(a, b)
	}
}

// TestValueRoundTrip pins every tag in the table plus the gob fallback.
func TestValueRoundTrip(t *testing.T) {
	values := []any{
		nil,
		false,
		true,
		uint64(0),
		uint64(7),
		^uint64(0),
		int64(-5),
		int64(1 << 40),
		int(42),
		int(-1),
		float64(3.5),
		math.NaN(),
		math.Inf(-1),
		"",
		"hello",
		[]byte(nil),
		[]byte{},
		[]byte("data"),
		core.Collection(nil),
		core.Collection{},
		core.Collection{uint64(1), "two", []byte{3}, nil},
		core.Collection{core.Collection{core.Collection{int64(-9)}}},
		gobOnly{A: 9, B: "fallback"},
	}
	for _, v := range values {
		got, err := RoundTripValue(v)
		if err != nil {
			t.Fatalf("RoundTripValue(%#v): %v", v, err)
		}
		if !equalValue(v, got) {
			t.Fatalf("RoundTripValue(%#v) = %#v", v, got)
		}
	}
}

// TestItemRoundTrip pins the item layout and the origin rotation: the
// external-injection sentinel ^uint64(0) must cost one byte, not ten.
func TestItemRoundTrip(t *testing.T) {
	items := []core.Item{
		{Origin: ^uint64(0), Seq: 1, Key: 42, ReqID: 7, Parts: 2, Value: []byte("v")},
		{Origin: 3, Seq: 900, Key: 0, Value: nil},
		{Origin: 0, Seq: 0, Key: 0, Parts: -1, Value: core.Collection{uint64(1)}},
	}
	for _, it := range items {
		var e Encoder
		if err := e.Item(it); err != nil {
			t.Fatal(err)
		}
		d := NewDecoder(e.Bytes())
		got := d.Item()
		if err := d.Err(); err != nil {
			t.Fatal(err)
		}
		if !d.Done() {
			t.Fatalf("item %+v: %d trailing bytes", it, d.Remaining())
		}
		if got.Origin != it.Origin || got.Seq != it.Seq || got.Key != it.Key ||
			got.ReqID != it.ReqID || got.Parts != it.Parts || !equalValue(it.Value, got.Value) {
			t.Fatalf("item round trip: got %+v, want %+v", got, it)
		}
	}

	var e Encoder
	if err := e.Item(core.Item{Origin: ^uint64(0), Seq: 1, Key: 1, Value: nil}); err != nil {
		t.Fatal(err)
	}
	// origin(1) + seq(1) + key(1) + reqID(1) + parts(1) + nil tag(1).
	if e.Len() != 6 {
		t.Fatalf("sentinel-origin item encodes to %d bytes, want 6", e.Len())
	}
}

// TestEncodeDepthLimit: a collection nested past MaxDepth must fail loudly
// instead of recursing away.
func TestEncodeDepthLimit(t *testing.T) {
	v := core.Collection{uint64(1)}
	for i := 0; i < MaxDepth+1; i++ {
		v = core.Collection{v}
	}
	var e Encoder
	if err := e.Value(v); !errors.Is(err, ErrDepth) {
		t.Fatalf("deep encode error = %v, want ErrDepth", err)
	}
}

// TestDecodeDepthLimit: the decode side must reject a hostile buffer of
// nested collection tags without exhausting the stack.
func TestDecodeDepthLimit(t *testing.T) {
	var buf []byte
	for i := 0; i < MaxDepth+8; i++ {
		buf = append(buf, TagCollection, 2) // one-element collection
	}
	buf = append(buf, TagNil)
	d := NewDecoder(buf)
	d.Value()
	if !errors.Is(d.Err(), ErrDepth) {
		t.Fatalf("deep decode error = %v, want ErrDepth", d.Err())
	}
}

// TestDecodeHostile tables truncations and lies: every case must produce a
// sticky typed error — no panic, no allocation sized by the hostile count.
func TestDecodeHostile(t *testing.T) {
	cases := []struct {
		name string
		buf  []byte
	}{
		{"empty", nil},
		{"unknown tag", []byte{0x00}},
		{"unassigned high tag", []byte{0xff}},
		{"truncated uint64", []byte{TagUint64, 0x80}},
		{"truncated float", []byte{TagFloat64, 1, 2, 3}},
		{"string length past end", []byte{TagString, 200, 'x'}},
		{"bytes length past end", []byte{TagBytes, 90, 'x'}},
		{"huge bytes length", []byte{TagBytes, 0xff, 0xff, 0xff, 0xff, 0x0f}},
		{"collection count past end", []byte{TagCollection, 200, TagNil}},
		{"collection truncated element", []byte{TagCollection, 3, TagNil}},
		{"gob length past end", []byte{TagGob, 50, 1, 2}},
		{"gob garbage", []byte{TagGob, 3, 0xde, 0xad, 0xbe}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := NewDecoder(tc.buf)
			if v := d.Value(); d.Err() == nil {
				t.Fatalf("hostile input decoded to %#v", v)
			}
			// The error is sticky: further reads stay zero-valued.
			if d.Byte() != 0 || d.Uvarint() != 0 {
				t.Fatal("reads after failure returned data")
			}
		})
	}
}

// TestBorrowVsCopy: borrow mode aliases the input buffer, copy mode
// detaches from it.
func TestBorrowVsCopy(t *testing.T) {
	var e Encoder
	if err := e.Value([]byte("abcd")); err != nil {
		t.Fatal(err)
	}
	buf := append([]byte(nil), e.Bytes()...)

	borrowed := NewBorrowDecoder(buf).Value().([]byte)
	copied := NewDecoder(buf).Value().([]byte)
	buf[len(buf)-1] = 'Z'
	if string(borrowed) != "abcZ" {
		t.Fatalf("borrow mode did not alias the input: %q", borrowed)
	}
	if string(copied) != "abcd" {
		t.Fatalf("copy mode aliased the input: %q", copied)
	}
}

// TestEncodeRejectsWireUnsafe: the gob fallback must refuse values gob
// would corrupt, at the sender.
func TestEncodeRejectsWireUnsafe(t *testing.T) {
	var e Encoder
	if err := e.Value(make(chan int)); err == nil {
		t.Fatal("channel encoded without error")
	}
	type sneaky struct {
		Visible int
		hidden  int //nolint:unused // the point: gob would drop it silently
	}
	e.Reset(nil)
	if err := e.Value(sneaky{Visible: 1}); err == nil {
		t.Fatal("unexported field encoded without error")
	}
}

// TestPooledEncoder: pooled encoders come back empty and oversized buffers
// are not retained.
func TestPooledEncoder(t *testing.T) {
	e := GetEncoder()
	e.Str("some leftover data")
	PutEncoder(e)
	e2 := GetEncoder()
	if e2.Len() != 0 {
		t.Fatalf("pooled encoder not reset: %d bytes", e2.Len())
	}
	e2.Blob(make([]byte, maxPooledBuf+1))
	PutEncoder(e2)
	e3 := GetEncoder()
	defer PutEncoder(e3)
	if cap(e3.buf) > maxPooledBuf {
		t.Fatalf("pool retained %d-byte buffer (cap %d)", cap(e3.buf), maxPooledBuf)
	}
}

// FuzzValue throws arbitrary bytes at the value decoder: it must return a
// value or a typed error, never panic — and anything it accepts must
// re-encode and decode to the same value.
func FuzzValue(f *testing.F) {
	seed := func(v any) {
		var e Encoder
		if err := e.Value(v); err == nil {
			f.Add(append([]byte(nil), e.Bytes()...))
		}
	}
	seed(nil)
	seed(uint64(77))
	seed(math.NaN())
	seed("seed")
	seed([]byte{1, 2, 3})
	seed(core.Collection{uint64(1), core.Collection{"x"}, nil})
	seed(gobOnly{A: 1, B: "g"})
	f.Add([]byte{TagCollection, 200})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		v := d.Value()
		if d.Err() != nil {
			return
		}
		var e Encoder
		if err := e.Value(v); err != nil {
			t.Fatalf("decoded value %#v does not re-encode: %v", v, err)
		}
		d2 := NewDecoder(e.Bytes())
		v2 := d2.Value()
		if err := d2.Err(); err != nil {
			t.Fatalf("re-encoded value does not decode: %v", err)
		}
		if !equalValue(v, v2) {
			t.Fatalf("value changed across re-encode: %#v -> %#v", v, v2)
		}
	})
}
