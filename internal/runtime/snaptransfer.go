package runtime

import (
	"bytes"
	"compress/flate"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/cluster"
	"repro/internal/wire"
)

// This file is the coordinator half of the streaming snapshot transfer:
// pulling a worker's snapshot part by part (Checkpoint) and pushing it
// back the same way (RecoverWorker). The coordinator never materialises a
// wire.Snapshot on this path — it retains the stream as independently
// compressed part records plus the small TE metadata the log trims need,
// so its peak memory per worker is the retained records plus one in-flight
// frame, not the worker's whole state. Workers that predate the streaming
// protocol reject SnapBegin/RestoreBegin as an unknown or wrong-version
// message; the coordinator detects that, falls back to the monolithic v1
// MsgSnapshotReq/MsgRestore exchange, and remembers the downgrade per
// worker so every later round skips the probe.

const (
	// snapPullRetries bounds transport-level retries per chunk request. The
	// worker re-serves (pull) or re-acks (push) a repeated seq without
	// advancing, so a retry after a lost reply is safe.
	snapPullRetries = 3
	// snapCompressMin is the smallest part payload worth offering to flate;
	// below it the header tax dominates.
	snapCompressMin = 512
)

// retainedSnap is one worker's recovery point: the pulled part stream (one
// compressed record per part, in stream order) plus the TE watermark
// metadata the replay-log and edge trims read. Guarded by the
// coordinator's injMu, like the *wire.Snapshot it replaces.
type retainedSnap struct {
	recs [][]byte      // encodeSnapRecord output, one per part
	tes  []wire.TESnap // metadata only (Watermarks/OutSeq; no Buffered)

	rawBytes    int64 // sum of encoded part sizes before compression
	storedBytes int64 // sum of retained record sizes
	v1          bool  // pulled via the monolithic fallback
}

// SnapStats describes the coordinator's side of the last checkpoint round.
// Workers/Chunks/RawBytes/StoredBytes reset every Checkpoint;
// PeakFrameBytes and V1Fallbacks accumulate for the coordinator's life.
type SnapStats struct {
	// Workers and Chunks count the last round's successful pulls.
	Workers int
	Chunks  int
	// RawBytes is the last round's total encoded part bytes; StoredBytes is
	// what the coordinator actually retains after per-record compression.
	RawBytes    int64
	StoredBytes int64
	// PeakFrameBytes is the largest single snapshot-path frame observed in
	// either direction — the coordinator's in-flight buffering bound.
	PeakFrameBytes int64
	// V1Fallbacks counts downgrades to the monolithic protocol.
	V1Fallbacks int
}

// SnapshotStats reports the streaming-transfer counters.
func (c *Coordinator) SnapshotStats() SnapStats {
	c.injMu.Lock()
	defer c.injMu.Unlock()
	return c.stats
}

// encodeSnapRecord stores one part as [flag][payload]: flag 0 is the raw
// flat encoding, flag 1 is its flate (BestSpeed) compression, chosen per
// record when it actually shrinks. Records are self-contained so recovery
// decodes them one at a time.
func encodeSnapRecord(p *wire.SnapPart) (rec []byte, rawLen int) {
	raw := wire.EncodeSnapPart(p)
	if len(raw) >= snapCompressMin {
		var buf bytes.Buffer
		buf.Grow(len(raw) / 2)
		buf.WriteByte(1)
		fw, err := flate.NewWriter(&buf, flate.BestSpeed)
		if err == nil {
			if _, err := fw.Write(raw); err == nil && fw.Close() == nil && buf.Len() < len(raw)+1 {
				return buf.Bytes(), len(raw)
			}
		}
	}
	rec = make([]byte, len(raw)+1)
	copy(rec[1:], raw)
	return rec, len(raw)
}

// decodeSnapRecord reverses encodeSnapRecord.
func decodeSnapRecord(rec []byte) (wire.SnapPart, error) {
	if len(rec) == 0 {
		return wire.SnapPart{}, fmt.Errorf("coordinator: empty snapshot record")
	}
	switch rec[0] {
	case 0:
		return wire.DecodeSnapPart(rec[1:])
	case 1:
		fr := flate.NewReader(bytes.NewReader(rec[1:]))
		raw, err := io.ReadAll(fr)
		fr.Close()
		if err != nil {
			return wire.SnapPart{}, fmt.Errorf("coordinator: snapshot record: %w", err)
		}
		return wire.DecodeSnapPart(raw)
	default:
		return wire.SnapPart{}, fmt.Errorf("coordinator: snapshot record flag %d", rec[0])
	}
}

// isVersionReject reports whether a worker's application-level error means
// "I do not speak this message" rather than "the request failed": the wire
// package's unknown-type and version-mismatch errors, surfaced through the
// transport as a RemoteError string. This is the negotiation shim that
// keeps old workers on the monolithic protocol.
func isVersionReject(err error) bool {
	if !errors.Is(err, cluster.ErrRemote) {
		return false
	}
	s := err.Error()
	return strings.Contains(s, "unknown message type") ||
		strings.Contains(s, "protocol version mismatch")
}

// callRetry is call with bounded retries on transport errors. Application
// errors (the worker answered and said no) return immediately: retrying
// them re-asks a question that was already answered.
func callRetry(tr cluster.Transport, frame []byte, want byte, out any) error {
	var err error
	for attempt := 0; attempt < snapPullRetries; attempt++ {
		var resp []byte
		resp, err = tr.Call(frame)
		if err == nil {
			return wire.Expect(resp, want, out)
		}
		if errors.Is(err, cluster.ErrRemote) {
			return err
		}
	}
	return err
}

// notePeak folds one observed frame length into the buffering bound.
func (c *Coordinator) notePeak(n int) {
	if int64(n) > c.stats.PeakFrameBytes {
		c.stats.PeakFrameBytes = int64(n)
	}
}

// pullSnapshot pulls one worker's snapshot over the streaming protocol
// (or the monolithic fallback once the worker proved it cannot stream).
// Called under injMu.
func (c *Coordinator) pullSnapshot(w int, cw *coordWorker) (*retainedSnap, error) {
	if cw.v1 {
		return c.pullSnapshotV1(cw)
	}
	c.snapStreams++
	stream := c.snapStreams
	tr := cw.endpoint().Control
	frame, err := wire.Encode(wire.MsgSnapBegin, wire.SnapBegin{
		Stream:   stream,
		Chunks:   c.opts.SnapshotChunks,
		MaxBytes: c.opts.SnapChunkBytes,
	})
	if err != nil {
		return nil, err
	}
	var bAck wire.SnapBeginAck
	if err := call(tr, frame, wire.MsgSnapBeginAck, &bAck); err != nil {
		if isVersionReject(err) {
			cw.v1 = true
			c.stats.V1Fallbacks++
			return c.pullSnapshotV1(cw)
		}
		return nil, err
	}
	if bAck.Stream != stream {
		return nil, fmt.Errorf("coordinator: snapshot stream %d: worker opened %d", stream, bAck.Stream)
	}
	rs := &retainedSnap{}
	for seq := uint64(1); ; seq++ {
		next, err := wire.Encode(wire.MsgSnapNext, wire.SnapNext{Stream: stream, Seq: seq})
		if err != nil {
			return nil, err
		}
		var resp []byte
		for attempt := 0; attempt < snapPullRetries; attempt++ {
			resp, err = tr.Call(next)
			if err == nil || errors.Is(err, cluster.ErrRemote) {
				break
			}
		}
		if err != nil {
			return nil, err
		}
		c.notePeak(len(resp))
		t, payload, err := wire.Decode(resp)
		if err != nil {
			return nil, err
		}
		switch t {
		case wire.MsgSnapChunk:
			var ck wire.SnapChunk
			if err := wire.Unmarshal(payload, &ck); err != nil {
				return nil, err
			}
			if ck.Stream != stream || ck.Seq != seq {
				return nil, fmt.Errorf("coordinator: snapshot stream %d: got chunk %d/%d, want %d/%d",
					stream, ck.Stream, ck.Seq, stream, seq)
			}
			if ck.Part.Kind == wire.PartTE {
				rs.tes = append(rs.tes, wire.TESnap{
					TE:         ck.Part.Name,
					Index:      ck.Part.Index,
					Watermarks: ck.Part.Watermarks,
					OutSeq:     ck.Part.OutSeq,
				})
			}
			rec, raw := encodeSnapRecord(&ck.Part)
			rs.recs = append(rs.recs, rec)
			rs.rawBytes += int64(raw)
			rs.storedBytes += int64(len(rec))
		case wire.MsgSnapEnd:
			var end wire.SnapEnd
			if err := wire.Unmarshal(payload, &end); err != nil {
				return nil, err
			}
			if end.Stream != stream {
				return nil, fmt.Errorf("coordinator: snapshot stream %d: end for stream %d", stream, end.Stream)
			}
			if end.Chunks != uint64(len(rs.recs)) {
				return nil, fmt.Errorf("coordinator: snapshot stream %d truncated: pulled %d chunk(s), worker served %d",
					stream, len(rs.recs), end.Chunks)
			}
			return rs, nil
		default:
			return nil, fmt.Errorf("%w: got %s in snapshot stream", wire.ErrUnexpectedType, wire.MsgName(t))
		}
	}
}

// pullSnapshotV1 pulls the whole snapshot as one monolithic gob frame (the
// pre-streaming protocol) and retains it in the same part-record form, so
// recovery has a single shape regardless of how the snapshot arrived.
func (c *Coordinator) pullSnapshotV1(cw *coordWorker) (*retainedSnap, error) {
	frame, err := wire.Encode(wire.MsgSnapshotReq, wire.SnapshotReq{Chunks: c.opts.SnapshotChunks})
	if err != nil {
		return nil, err
	}
	resp, err := cw.endpoint().Control.Call(frame)
	if err != nil {
		return nil, err
	}
	c.notePeak(len(resp))
	var snap wire.Snapshot
	if err := wire.Expect(resp, wire.MsgSnapshot, &snap); err != nil {
		return nil, err
	}
	rs := &retainedSnap{v1: true}
	for _, p := range wire.SplitSnapshot(&snap) {
		if p.Kind == wire.PartTE {
			rs.tes = append(rs.tes, wire.TESnap{
				TE:         p.Name,
				Index:      p.Index,
				Watermarks: p.Watermarks,
				OutSeq:     p.OutSeq,
			})
		}
		rec, raw := encodeSnapRecord(&p)
		rs.recs = append(rs.recs, rec)
		rs.rawBytes += int64(raw)
		rs.storedBytes += int64(len(rec))
	}
	return rs, nil
}

// pushSnapshot restores a retained snapshot into a freshly deployed worker,
// part by part. Called under injMu, before replay. A worker that rejects
// RestoreBegin as unknown downgrades to the monolithic push, mirroring the
// pull side.
func (c *Coordinator) pushSnapshot(w int, cw *coordWorker, ep WorkerEndpoint) error {
	rs := cw.snap
	if cw.v1 || rs.v1 {
		return c.pushSnapshotV1(w, rs, ep)
	}
	c.snapStreams++
	stream := c.snapStreams
	frame, err := wire.Encode(wire.MsgRestoreBegin, wire.RestoreBegin{Stream: stream})
	if err != nil {
		return err
	}
	var bAck wire.RestoreBeginAck
	if err := call(ep.Data, frame, wire.MsgRestoreBeginAck, &bAck); err != nil {
		if isVersionReject(err) {
			cw.v1 = true
			c.stats.V1Fallbacks++
			return c.pushSnapshotV1(w, rs, ep)
		}
		return err
	}
	for i, rec := range rs.recs {
		part, err := decodeSnapRecord(rec)
		if err != nil {
			return err
		}
		seq := uint64(i + 1)
		frame, err := wire.Encode(wire.MsgRestoreChunk, wire.RestoreChunk{Stream: stream, Seq: seq, Part: part})
		if err != nil {
			return err
		}
		c.notePeak(len(frame))
		var ack wire.RestoreChunkAck
		if err := callRetry(ep.Data, frame, wire.MsgRestoreChunkAck, &ack); err != nil {
			return err
		}
		if ack.Stream != stream || ack.Seq != seq {
			return fmt.Errorf("coordinator: restore stream %d: acked %d/%d, want %d/%d",
				stream, ack.Stream, ack.Seq, stream, seq)
		}
	}
	end, err := wire.Encode(wire.MsgRestoreEnd, wire.RestoreEnd{Stream: stream, Chunks: uint64(len(rs.recs))})
	if err != nil {
		return err
	}
	var eAck wire.RestoreEndAck
	if err := callRetry(ep.Data, end, wire.MsgRestoreEndAck, &eAck); err != nil {
		return err
	}
	return nil
}

// pushSnapshotV1 reassembles the retained parts into one monolithic
// wire.Snapshot and pushes it over the pre-streaming MsgRestore exchange.
func (c *Coordinator) pushSnapshotV1(w int, rs *retainedSnap, ep WorkerEndpoint) error {
	parts := make([]wire.SnapPart, 0, len(rs.recs))
	for _, rec := range rs.recs {
		p, err := decodeSnapRecord(rec)
		if err != nil {
			return err
		}
		parts = append(parts, p)
	}
	snap, err := wire.AssembleSnapshot(parts)
	if err != nil {
		return fmt.Errorf("coordinator: reassemble snapshot for worker %d: %w", w, err)
	}
	frame, err := wire.Encode(wire.MsgRestore, wire.Restore{Snap: snap})
	if err != nil {
		return err
	}
	c.notePeak(len(frame))
	var ack wire.RestoreAck
	return call(ep.Data, frame, wire.MsgRestoreAck, &ack)
}

// localTrims builds the per-TE watermark floors that let workers trim
// their local replay buffers (entry source buffers and in-process out-edge
// buffers) between coordinator checkpoints. A TE's floor is the per-origin
// minimum across every instance's retained watermarks — and it only exists
// when every worker holds a current retained snapshot, because a worker
// without one would need those buffered items again after a failure.
// Called under injMu.
func (c *Coordinator) localTrims() []wire.LocalTrim {
	for _, cw := range c.workers {
		if cw.snap == nil {
			return nil
		}
	}
	byTask := map[string][]wire.TESnap{}
	for _, cw := range c.workers {
		for _, t := range cw.snap.tes {
			byTask[t.TE] = append(byTask[t.TE], t)
		}
	}
	var out []wire.LocalTrim
	for _, te := range c.g.TEs {
		snaps := byTask[te.Name]
		if len(snaps) == 0 {
			continue
		}
		// Every instance of the task must be covered, or an uncovered
		// instance could still need the buffered items. A single-worker
		// deployment always covers all instances once its snapshot exists;
		// a sharded one must see the full global instance set.
		if c.shard && len(snaps) != c.teShards[0][te.Name].Total {
			continue
		}
		var min map[uint64]uint64
		for i, t := range snaps {
			if i == 0 {
				min = make(map[uint64]uint64, len(t.Watermarks))
				for o, s := range t.Watermarks {
					min[o] = s
				}
				continue
			}
			for o := range min {
				s, ok := t.Watermarks[o]
				if !ok {
					delete(min, o)
				} else if s < min[o] {
					min[o] = s
				}
			}
		}
		if len(min) > 0 {
			out = append(out, wire.LocalTrim{TE: te.Name, Watermarks: min})
		}
	}
	return out
}
