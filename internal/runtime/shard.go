package runtime

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/wire"
)

// ShardConfig turns a Runtime into one worker's slice of a sharded
// deployment: every TE and SE keeps its global instance identity (origin
// IDs, partition routing) while only the [First, First+Count) slice is
// instantiated locally. Items routed off-slice travel over cut dataflow
// edges to the owning peer (see remoteedge.go).
type ShardConfig struct {
	Worker  int // this worker's index in [0, Workers)
	Workers int
	// Global shards for this worker, keyed by element name. A missing entry
	// defaults to a single global instance placed on worker 0.
	TEs map[string]wire.Shard
	SEs map[string]wire.Shard
	// Peers holds every worker's data-plane address, indexed by worker;
	// the entry for this worker is ignored.
	Peers []string
	// Dialer opens a transport to a peer address. Defaults to cluster.Dial.
	Dialer func(addr string) (cluster.Transport, error)
	// AwaitRestore starts the runtime sealed against RemoteEmit until
	// ImportSnapshot runs (set by the coordinator when recovering a worker
	// that has a snapshot to load first).
	AwaitRestore bool
}

func (sc *ShardConfig) validate() error {
	if sc.Workers < 1 {
		return fmt.Errorf("runtime: shard config: Workers = %d", sc.Workers)
	}
	if sc.Worker < 0 || sc.Worker >= sc.Workers {
		return fmt.Errorf("runtime: shard config: worker %d out of range [0,%d)", sc.Worker, sc.Workers)
	}
	return nil
}

// shardFor resolves a shard entry with the single-instance-on-worker-0
// default.
func shardFor(m map[string]wire.Shard, name string, worker, workers int) wire.Shard {
	if sh, ok := m[name]; ok {
		return sh
	}
	first, count := shardSplit(1, worker, workers)
	return wire.Shard{First: first, Count: count, Total: 1}
}

// shardSplit places total instances contiguously across workers: the first
// total%workers workers take one extra. Returns this worker's [first,
// first+count) slice.
func shardSplit(total, worker, workers int) (first, count int) {
	base := total / workers
	rem := total % workers
	if worker < rem {
		return worker * (base + 1), base + 1
	}
	return rem*(base+1) + (worker-rem)*base, base
}

// shardOwner inverts shardSplit: the worker owning global instance g of an
// element with total instances.
func shardOwner(total, workers, g int) int {
	base := total / workers
	rem := total % workers
	if g < rem*(base+1) {
		return g / (base + 1)
	}
	// base == 0 cannot reach here: every instance is inside the rem block.
	return rem + (g-rem*(base+1))/base
}
