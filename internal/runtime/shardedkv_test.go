package runtime

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/state"
)

// shardedKVGraph mirrors kvGraph but asserts the backend-neutral state.KV
// interface, the pattern applications must follow for Options.KVShards to
// be able to swap the dictionary backend underneath them.
func shardedKVGraph() *core.Graph {
	g := core.NewGraph("kv")
	se := g.AddSE("store", core.KindPartitioned, state.TypeKVMap, nil)
	g.AddTE("put", func(ctx core.Context, it core.Item) {
		kv := ctx.Store().(state.KV)
		kv.Put(it.Key, it.Value.([]byte))
		ctx.Reply(true)
	}, &core.Access{SE: se, Mode: core.AccessByKey}, true)
	g.AddTE("get", func(ctx core.Context, it core.Item) {
		kv := ctx.Store().(state.KV)
		v, ok := kv.Get(it.Key)
		if !ok {
			ctx.Reply(nil)
			return
		}
		ctx.Reply(v)
	}, &core.Access{SE: se, Mode: core.AccessByKey}, true)
	return g
}

func TestDeployKVShardsBacksStoreSharded(t *testing.T) {
	r, err := Deploy(shardedKVGraph(), Options{
		Partitions: map[string]int{"store": 2},
		KVShards:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	for i := 0; i < 2; i++ {
		st, err := r.StateStore("store", i)
		if err != nil {
			t.Fatal(err)
		}
		sh, ok := st.(*state.ShardedKVMap)
		if !ok {
			t.Fatalf("partition %d store = %T, want *state.ShardedKVMap", i, st)
		}
		if got := sh.NumShards(); got != 4 {
			t.Fatalf("partition %d shards = %d, want 4", i, got)
		}
	}
	for k := uint64(0); k < 64; k++ {
		if _, err := r.Call("put", k, []byte(fmt.Sprintf("v%d", k)), testTimeout); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	for k := uint64(0); k < 64; k++ {
		got, err := r.Call("get", k, nil, testTimeout)
		if err != nil {
			t.Fatalf("get %d: %v", k, err)
		}
		if want := fmt.Sprintf("v%d", k); string(got.([]byte)) != want {
			t.Fatalf("get %d = %q, want %q", k, got, want)
		}
	}
}

// TestShardedCheckpointAndRecover replays the 1-to-1 recovery drill with
// the sharded backend: checkpoint, node kill, m-to-n restore, replay.
func TestShardedCheckpointAndRecover(t *testing.T) {
	r, err := Deploy(shardedKVGraph(), Options{
		Mode:     checkpoint.ModeAsync,
		Interval: time.Hour, // manual checkpoints only
		Chunks:   4,
		KVShards: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	for k := uint64(0); k < 50; k++ {
		if _, err := r.Call("put", k, []byte(fmt.Sprintf("pre%d", k)), testTimeout); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.CheckpointNow("store", 0); err != nil {
		t.Fatal(err)
	}
	for k := uint64(50); k < 80; k++ {
		if _, err := r.Call("put", k, []byte(fmt.Sprintf("post%d", k)), testTimeout); err != nil {
			t.Fatal(err)
		}
	}

	var seNode int
	for _, se := range r.Stats().SEs {
		if se.Name == "store" {
			seNode = se.Nodes[0]
		}
	}
	r.KillNode(seNode)
	stats, err := r.Recover("store", 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.NewNodes != 1 {
		t.Fatalf("recovery stats = %+v", stats)
	}
	if !r.Drain(testTimeout) {
		t.Fatal("did not drain after recovery")
	}
	// The restored store must again be sharded (backend selection survives
	// recovery even though the chunks are backend-neutral).
	st, err := r.StateStore("store", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*state.ShardedKVMap); !ok {
		t.Fatalf("recovered store = %T, want *state.ShardedKVMap", st)
	}
	for k := uint64(0); k < 80; k++ {
		got, err := r.Call("get", k, nil, testTimeout)
		if err != nil {
			t.Fatalf("get %d after recovery: %v", k, err)
		}
		want := fmt.Sprintf("pre%d", k)
		if k >= 50 {
			want = fmt.Sprintf("post%d", k)
		}
		if got == nil || string(got.([]byte)) != want {
			t.Fatalf("get %d = %v, want %q", k, got, want)
		}
	}
}

// TestShardedRepartition grows a sharded partitioned SE: the re-chunk +
// split path must preserve contents across backends.
func TestShardedRepartition(t *testing.T) {
	r, err := Deploy(shardedKVGraph(), Options{KVShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	for k := uint64(0); k < 60; k++ {
		if _, err := r.Call("put", k, []byte(fmt.Sprintf("v%d", k)), testTimeout); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.ScaleUp("put"); err != nil {
		t.Fatal(err)
	}
	if got := r.StateInstances("store"); got != 2 {
		t.Fatalf("store instances after scale-up = %d, want 2", got)
	}
	total := 0
	for i := 0; i < 2; i++ {
		st, err := r.StateStore("store", i)
		if err != nil {
			t.Fatal(err)
		}
		sh, ok := st.(*state.ShardedKVMap)
		if !ok {
			t.Fatalf("partition %d store = %T after repartition", i, st)
		}
		total += sh.NumEntries()
	}
	if total != 60 {
		t.Fatalf("entries after repartition = %d, want 60", total)
	}
	for k := uint64(0); k < 60; k++ {
		got, err := r.Call("get", k, nil, testTimeout)
		if err != nil {
			t.Fatalf("get %d: %v", k, err)
		}
		if want := fmt.Sprintf("v%d", k); string(got.([]byte)) != want {
			t.Fatalf("get %d = %q, want %q", k, got, want)
		}
	}
}
