package runtime_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/apps/counter"
	"repro/internal/cluster"
	"repro/internal/runtime"
)

// newEdgeTCPWorker serves a fresh worker over localhost TCP and returns an
// endpoint carrying the listen address, so peer workers can dial it for
// cross-worker edge delivery.
func newEdgeTCPWorker(t *testing.T) (*runtime.Worker, runtime.WorkerEndpoint) {
	t.Helper()
	w := runtime.NewWorker()
	srv, err := cluster.Serve("127.0.0.1:0", w.Handler())
	if err != nil {
		t.Fatalf("serve worker: %v", err)
	}
	t.Cleanup(func() { srv.Close(); w.Close() })
	dial := func() *cluster.Client {
		c, err := cluster.Dial(srv.Addr())
		if err != nil {
			t.Fatalf("dial worker: %v", err)
		}
		c.SetCallTimeout(10 * time.Second)
		return c
	}
	return w, runtime.WorkerEndpoint{Addr: srv.Addr(), Data: dial(), Control: dial()}
}

// TestDistributedEdgeEquivalence deploys a graph WITH a dataflow edge
// across two TCP workers and requires byte-identical SE contents, dedup
// watermarks and processed counts against a single in-process runtime fed
// the same stream. The counterchain's entry TE lives entirely on worker 0,
// so every item bound for worker 1's counts partition crosses the cut edge
// — any routing, framing or dedup bug on the remote path shifts a count.
func TestDistributedEdgeEquivalence(t *testing.T) {
	_, ep0 := newEdgeTCPWorker(t)
	_, ep1 := newEdgeTCPWorker(t)
	coord, err := runtime.NewCoordinator("counterchain", []runtime.WorkerEndpoint{ep0, ep1}, runtime.CoordOptions{
		Partitions: map[string]int{"counts": 2},
		BatchSize:  4,
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer coord.Close()

	ref, err := runtime.Deploy(counter.ChainGraph(), runtime.Options{
		Partitions: map[string]int{"counts": 2},
		BatchSize:  4,
	})
	if err != nil {
		t.Fatalf("deploy reference: %v", err)
	}
	defer ref.Stop()

	const items = 600
	const keys = 50
	for i := 0; i < items; i++ {
		key := uint64(i % keys)
		if err := coord.Inject("ingest", key, nil); err != nil {
			t.Fatalf("item %d: distributed inject: %v", i, err)
		}
		if err := ref.Inject("ingest", key, nil); err != nil {
			t.Fatalf("item %d: reference inject: %v", i, err)
		}
	}

	if !coord.Drain(15 * time.Second) {
		t.Fatal("distributed deployment did not quiesce")
	}
	if !ref.Drain(10 * time.Second) {
		t.Fatal("reference runtime did not quiesce")
	}

	dist, err := coord.DumpKV("counts")
	if err != nil {
		t.Fatalf("distributed dump: %v", err)
	}
	local, err := ref.DumpKV("counts")
	if err != nil {
		t.Fatalf("reference dump: %v", err)
	}
	if len(dist) != len(local) {
		t.Fatalf("store size diverged: distributed %d keys, reference %d", len(dist), len(local))
	}
	for k, rv := range local {
		if dv, ok := dist[k]; !ok || !bytes.Equal(dv, rv) {
			t.Fatalf("key %d diverged: distributed %q, reference %q", k, dist[k], rv)
		}
	}

	for _, task := range []string{"ingest", "inc"} {
		dwm, err := coord.FoldedWatermarks(task)
		if err != nil {
			t.Fatalf("distributed watermarks %q: %v", task, err)
		}
		rwm, err := ref.FoldedWatermarks(task)
		if err != nil {
			t.Fatalf("reference watermarks %q: %v", task, err)
		}
		if len(dwm) != len(rwm) {
			t.Fatalf("%q watermark origins diverged: %v vs %v", task, dwm, rwm)
		}
		for o, s := range rwm {
			if dwm[o] != s {
				t.Fatalf("%q watermark for origin %d diverged: distributed %d, reference %d", task, o, dwm[o], s)
			}
		}
		dp, err := coord.Processed(task)
		if err != nil {
			t.Fatalf("distributed processed %q: %v", task, err)
		}
		if rp := ref.Processed(task); dp != rp {
			t.Fatalf("%q processed diverged: distributed %d, reference %d", task, dp, rp)
		}
	}
}

// localRegistry maps fake addresses to in-process handlers so tests can
// inject worker-to-worker transports (and replace them on recovery).
type localRegistry struct {
	mu sync.Mutex
	m  map[string]cluster.Handler
}

func (r *localRegistry) set(addr string, h cluster.Handler) {
	r.mu.Lock()
	r.m[addr] = h
	r.mu.Unlock()
}

func (r *localRegistry) dial(addr string) (cluster.Transport, error) {
	r.mu.Lock()
	h, ok := r.m[addr]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("no worker at %q", addr)
	}
	return cluster.Local(h, 0), nil
}

// TestDistributedEdgeKillRecovery kills the downstream worker of a cut
// edge mid-stream and requires exact increment accounting afterwards —
// including the items that were in flight on the edge when the worker
// died, which only the sender-side edge log can resurrect. It also pins
// the drain contract: while the remote destination is down, unacked edge
// items must keep the deployment non-quiescent.
func TestDistributedEdgeKillRecovery(t *testing.T) {
	reg := &localRegistry{m: map[string]cluster.Handler{}}
	w0 := runtime.NewWorker()
	defer w0.Close()
	w1 := runtime.NewWorker()
	defer w1.Close()
	w0.SetDialer(reg.dial)
	w1.SetDialer(reg.dial)

	// Worker 1's handler can be "crashed": after the flag flips, every
	// request is rejected, exactly as if the process were gone.
	var dead1 atomic.Bool
	h1 := w1.Handler()
	wrapped1 := cluster.Handler(func(req []byte) ([]byte, error) {
		if dead1.Load() {
			return nil, errors.New("worker 1 crashed")
		}
		return h1(req)
	})
	reg.set("w0", w0.Handler())
	reg.set("w1", wrapped1)

	ep0 := runtime.WorkerEndpoint{Addr: "w0", Data: cluster.Local(w0.Handler(), 0), Control: cluster.Local(w0.Handler(), 0)}
	ep1 := runtime.WorkerEndpoint{Addr: "w1", Data: cluster.Local(wrapped1, 0), Control: cluster.Local(wrapped1, 0)}

	failed := make(chan int, 4)
	coord, err := runtime.NewCoordinator("counterchain", []runtime.WorkerEndpoint{ep0, ep1}, runtime.CoordOptions{
		Partitions:        map[string]int{"counts": 2},
		BatchSize:         4,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMisses:   2,
		OnFailure:         func(w int) { failed <- w },
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer coord.Close()

	const keys = 20
	const perPhase = 300
	inject := func(phase int) {
		t.Helper()
		for i := 0; i < perPhase; i++ {
			if err := coord.Inject("ingest", uint64(i%keys), nil); err != nil {
				t.Fatalf("phase %d inject %d: %v", phase, i, err)
			}
		}
	}

	inject(1)
	if err := coord.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	inject(2) // newer than worker 1's snapshot: must come back via edge replay

	// Crash worker 1.
	dead1.Store(true)
	w1.Close()
	ep1.Data.Close()
	ep1.Control.Close()

	inject(3) // worker 0 accepts; the remote share parks in its edge sender

	select {
	case idx := <-failed:
		if idx != 1 {
			t.Fatalf("failure detector blamed worker %d, want 1", idx)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("failure detector never fired")
	}

	// Satellite contract: unacked cross-worker frames hold the drain open.
	if coord.Drain(300 * time.Millisecond) {
		t.Fatal("Drain reported quiescent with edge items in flight to a dead worker")
	}
	if n := w0.PendingEdgeItems(); n == 0 {
		t.Fatal("worker 0 has no logged edge items despite a dead downstream")
	}

	w1b := runtime.NewWorker()
	defer w1b.Close()
	w1b.SetDialer(reg.dial)
	reg.set("w1b", w1b.Handler())
	ep1b := runtime.WorkerEndpoint{Addr: "w1b", Data: cluster.Local(w1b.Handler(), 0), Control: cluster.Local(w1b.Handler(), 0)}
	if err := coord.RecoverWorker(1, ep1b); err != nil {
		t.Fatalf("RecoverWorker: %v", err)
	}

	inject(4)

	if !coord.Drain(15 * time.Second) {
		t.Fatal("deployment did not quiesce after recovery")
	}
	dump, err := coord.DumpKV("counts")
	if err != nil {
		t.Fatalf("dump: %v", err)
	}
	const total = 4 * perPhase
	var sum uint64
	for k := uint64(0); k < keys; k++ {
		n := counter.Count(dump[k])
		sum += n
		if n != total/keys {
			t.Errorf("key %d: count %d, want %d", k, n, total/keys)
		}
	}
	if sum != total {
		t.Fatalf("counted %d increments, want exactly %d (lost or duplicated edge items)", sum, total)
	}

	// A checkpoint over the quiesced deployment trims every log: the
	// coordinator's injection replay logs and both workers' edge send logs.
	if err := coord.Checkpoint(); err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	for w := 0; w < coord.Workers(); w++ {
		if n := coord.PendingReplay("ingest", w); n != 0 {
			t.Errorf("worker %d injection replay log not trimmed: %d items", w, n)
		}
	}
	if n := w0.PendingEdgeItems(); n != 0 {
		t.Errorf("worker 0 edge log not trimmed after checkpoint: %d items", n)
	}
	if n := w1b.PendingEdgeItems(); n != 0 {
		t.Errorf("worker 1 edge log not trimmed after checkpoint: %d items", n)
	}
}

// TestDistributedEdgeTCPProcesses is the cross-worker edge smoke test at
// full fidelity: two sdg-worker OS processes joined by a cut edge, the
// downstream one SIGKILLed mid-stream and replaced. Exact counts must
// survive, including items that were riding the edge when the process
// died. Skipped under -short.
func TestDistributedEdgeTCPProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes; skipped in -short")
	}
	bin := os.Getenv("SDG_WORKER_BIN")
	if bin == "" {
		bin = filepath.Join(t.TempDir(), "sdg-worker")
		out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/sdg-worker").CombinedOutput()
		if err != nil {
			t.Fatalf("build sdg-worker: %v\n%s", err, out)
		}
	}

	_, addr0 := startWorkerProc(t, bin)
	proc1, addr1 := startWorkerProc(t, bin)

	epFor := func(addr string) runtime.WorkerEndpoint {
		ep := dialWorker(t, addr)
		ep.Addr = addr
		return ep
	}

	failed := make(chan int, 4)
	coord, err := runtime.NewCoordinator("counterchain",
		[]runtime.WorkerEndpoint{epFor(addr0), epFor(addr1)},
		runtime.CoordOptions{
			Partitions:        map[string]int{"counts": 2},
			HeartbeatInterval: 50 * time.Millisecond,
			HeartbeatMisses:   2,
			OnFailure:         func(w int) { failed <- w },
		})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer coord.Close()

	const keys = 10
	const perPhase = 200
	inject := func(phase int) {
		t.Helper()
		for i := 0; i < perPhase; i++ {
			if err := coord.Inject("ingest", uint64(i%keys), nil); err != nil {
				t.Fatalf("phase %d inject %d: %v", phase, i, err)
			}
		}
	}

	inject(1)
	if err := coord.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	inject(2)

	if err := proc1.Process.Kill(); err != nil {
		t.Fatalf("kill worker process: %v", err)
	}
	proc1.Wait()

	inject(3)
	select {
	case idx := <-failed:
		if idx != 1 {
			t.Fatalf("failure detector blamed worker %d, want 1", idx)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("failure detector never fired after process kill")
	}

	_, addr2 := startWorkerProc(t, bin)
	if err := coord.RecoverWorker(1, epFor(addr2)); err != nil {
		t.Fatalf("RecoverWorker: %v", err)
	}
	inject(4)

	if !coord.Drain(20 * time.Second) {
		t.Fatal("deployment did not quiesce after process recovery")
	}
	dump, err := coord.DumpKV("counts")
	if err != nil {
		t.Fatalf("dump: %v", err)
	}
	const total = 4 * perPhase
	var sum uint64
	for k := uint64(0); k < keys; k++ {
		n := counter.Count(dump[k])
		sum += n
		if n != total/keys {
			t.Errorf("key %d: count %d, want %d", k, n, total/keys)
		}
	}
	if sum != total {
		t.Fatalf("counted %d increments, want exactly %d across the process kill", sum, total)
	}
}
