package runtime

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/state"
	"repro/internal/wire"
)

// This file is the worker-process surface of the distributed deployment
// mode: injection with coordinator-assigned timestamps, whole-runtime
// snapshot/restore, and the state/watermark dumps the equivalence checks
// read. The coordinator owns the external seq space and the replay logs;
// a worker runtime only executes its slice of the graph (checkpoint mode
// off) and must treat inbound (Origin, Seq) timestamps as opaque truth.

// InjectLogged delivers externally created items that already carry their
// (Origin, Seq) timestamps — the remote-worker counterpart of InjectBatch.
// Items must arrive in seq order per origin: the per-origin dedup watermark
// permanently drops an item overtaken by a later seq, which is exactly why
// the coordinator serialises assignment, logging and transmission.
func (r *Runtime) InjectLogged(teName string, items []core.Item) error {
	ts, err := r.te(teName)
	if err != nil {
		return err
	}
	if !ts.def.Entry {
		return fmt.Errorf("%w: %q", ErrNotEntry, teName)
	}
	if len(items) == 0 {
		return nil
	}
	if err := r.admit(ts, len(items)); err != nil {
		return err
	}
	ts.injMu.Lock()
	defer ts.injMu.Unlock()
	insts := ts.instances()
	if len(insts) == 0 {
		return nil
	}
	if ts.srcBuf != nil {
		ts.srcBuf.AppendBatch(items)
	}
	if len(insts) == 1 {
		b := make([]core.Item, len(items))
		copy(b, items)
		r.enqueue(insts[0], b)
		return nil
	}
	// Group per destination in two passes, mirroring InjectBatch.
	counts := make([]int, len(insts))
	targets := make([]int, len(items))
	for i := range items {
		t := entryIndex(ts, insts, items[i])
		targets[i] = t
		counts[t]++
	}
	subs := make([][]core.Item, len(insts))
	for t, n := range counts {
		if n > 0 {
			subs[t] = make([]core.Item, 0, n)
		}
	}
	for i, t := range targets {
		subs[t] = append(subs[t], items[i])
	}
	for t, sub := range subs {
		if len(sub) > 0 {
			r.enqueue(insts[t], sub)
		}
	}
	return nil
}

// CallItem injects a pre-timestamped request item and waits for the
// dataflow's Reply — the remote-worker counterpart of Call. The request
// correlation id is assigned here, worker-locally: replies resolve within
// this runtime, and a coordinator-chosen id could collide across worker
// incarnations and resolve a stranger's request after a replay.
func (r *Runtime) CallItem(teName string, it core.Item, timeout time.Duration) (any, error) {
	ts, err := r.te(teName)
	if err != nil {
		return nil, err
	}
	if !ts.def.Entry {
		return nil, fmt.Errorf("%w: %q", ErrNotEntry, teName)
	}
	reqID := r.reqSeq.Add(1)
	ch := make(chan any, 1)
	r.replyMu.Lock()
	r.replies[reqID] = ch
	r.replyMu.Unlock()
	defer func() {
		r.replyMu.Lock()
		delete(r.replies, reqID)
		r.replyMu.Unlock()
	}()

	if err := r.admit(ts, 1); err != nil {
		return nil, err
	}
	start := time.Now()
	ts.injMu.Lock()
	insts := ts.instances()
	if len(insts) == 0 {
		ts.injMu.Unlock()
		return nil, fmt.Errorf("runtime: entry %q has no instances", teName)
	}
	it.ReqID = reqID
	if ts.srcBuf != nil {
		ts.srcBuf.Append(it)
	}
	r.enqueue(insts[entryIndex(ts, insts, it)], []core.Item{it})
	ts.injMu.Unlock()

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case v := <-ch:
		r.CallLatency.Record(time.Since(start))
		return v, nil
	case <-timer.C:
		return nil, ErrTimeout
	case <-r.stopped:
		return nil, ErrStopped
	}
}

// SnapshotAll captures a consistent cut of the whole runtime: every SE
// instance's checkpoint chunks plus every TE instance's recovery metadata
// (dedup watermarks, output seq counters, out-edge replay buffers), all
// under a full processing pause so the state and the watermarks describe
// the same instant. Items still queued at the cut are above the captured
// watermarks and will re-arrive via coordinator replay after a failure.
//
// It requires checkpoint mode off (the worker deployment default): a
// concurrent dirty-mode checkpoint would split updates between base and
// overlay and break the cut.
func (r *Runtime) SnapshotAll(chunks int) (wire.Snapshot, error) {
	if chunks <= 0 {
		chunks = r.opts.Chunks
	}
	unpause := r.pauseAll()
	defer unpause()

	var snap wire.Snapshot
	for _, ss := range r.ses {
		ss.mu.RLock()
		insts := append([]*seInstance(nil), ss.insts...)
		ss.mu.RUnlock()
		for _, si := range insts {
			cks, err := si.store.Checkpoint(chunks)
			if err != nil {
				return wire.Snapshot{}, fmt.Errorf("runtime: snapshot %s: %w", si.instName(), err)
			}
			snap.SEs = append(snap.SEs, wire.SESnap{SE: ss.def.Name, Index: si.idx, Chunks: cks})
		}
	}
	for _, ts := range r.tes {
		for _, ti := range ts.instances() {
			t := wire.TESnap{
				TE:         ts.def.Name,
				Index:      ti.idx,
				Watermarks: ti.dedup.Watermarks(),
				OutSeq:     ti.seqCtr.Load(),
			}
			if len(ts.out) > 0 {
				t.Buffered = make([][]byte, len(ti.outBufs))
				for i, b := range ti.outBufs {
					data, err := wire.EncodeItems(b.Replay())
					if err != nil {
						return wire.Snapshot{}, fmt.Errorf("runtime: snapshot %s/%d edge %d: %w", ts.def.Name, ti.idx, i, err)
					}
					t.Buffered[i] = data
				}
			}
			snap.TEs = append(snap.TEs, t)
		}
	}
	// Cross-worker edge logs join the cut: an item a peer received but has
	// not snapshotted past is still in a log here, so coordinator recovery
	// can always replay it.
	if r.net != nil {
		edges, err := r.net.edgeSnaps()
		if err != nil {
			return wire.Snapshot{}, err
		}
		snap.Edges = edges
	}
	return snap, nil
}

// pauseAll write-locks the pause mutex of every node hosting a TE instance,
// in node-id order, and returns the matching unlock. In-flight batches
// finish first (workers hold the read side while processing), so with all
// locks held state and watermarks are mutually consistent.
func (r *Runtime) pauseAll() func() {
	byID := map[int]bool{}
	var ids []int
	for _, ts := range r.tes {
		for _, ti := range ts.instances() {
			if !byID[ti.node.ID] {
				byID[ti.node.ID] = true
				ids = append(ids, ti.node.ID)
			}
		}
	}
	sort.Ints(ids)
	mus := make([]*sync.RWMutex, len(ids))
	for i, id := range ids {
		mu := r.pauseForID(id)
		mu.Lock()
		mus[i] = mu
	}
	return func() {
		for i := len(mus) - 1; i >= 0; i-- {
			mus[i].Unlock()
		}
	}
}

// pauseForID is pauseFor keyed by node id.
func (r *Runtime) pauseForID(nodeID int) *sync.RWMutex {
	r.pmu.Lock()
	mu, ok := r.pauseMu[nodeID]
	if !ok {
		mu = &sync.RWMutex{}
		r.pauseMu[nodeID] = mu
	}
	r.pmu.Unlock()
	return mu
}

// ImportSnapshot loads a snapshot into a freshly deployed runtime: SE
// stores restore their chunks, TE instances restore dedup watermarks and
// continue the output numbering of their predecessors (same origin ids).
// The topology must match the snapshot's — same graph, same partition
// counts — which the coordinator guarantees by deploying before restoring.
func (r *Runtime) ImportSnapshot(snap wire.Snapshot) error {
	// One apply implementation for both transfer protocols: the monolithic
	// v1 snapshot splits into the same parts the streaming path delivers.
	r.beginRestoreStream()
	for _, p := range wire.SplitSnapshot(&snap) {
		if err := r.applySnapPart(p); err != nil {
			return err
		}
	}
	r.finishRestoreStream()
	return nil
}

// DumpKV returns the full contents of a dictionary SE across its
// partitions. Values are copied, so the caller owns the map.
func (r *Runtime) DumpKV(seName string) (map[uint64][]byte, error) {
	ss, err := r.se(seName)
	if err != nil {
		return nil, err
	}
	ss.mu.RLock()
	insts := append([]*seInstance(nil), ss.insts...)
	ss.mu.RUnlock()
	out := make(map[uint64][]byte)
	for _, si := range insts {
		kvs, ok := si.store.(state.KV)
		if !ok {
			return nil, fmt.Errorf("runtime: SE %q is not a dictionary (type %v)", seName, si.store.Type())
		}
		kvs.ForEach(func(key uint64, value []byte) bool {
			out[key] = append([]byte(nil), value...)
			return true
		})
	}
	return out, nil
}

// FoldedWatermarks folds (max per origin) the dedup watermarks across the
// named TE's instances: the per-origin high-water mark of everything any
// instance has processed. Two runs over the same injected stream are
// equivalent exactly when their folded watermarks and state agree.
func (r *Runtime) FoldedWatermarks(teName string) (map[uint64]uint64, error) {
	ts, err := r.te(teName)
	if err != nil {
		return nil, err
	}
	out := make(map[uint64]uint64)
	for _, ti := range ts.instances() {
		for o, s := range ti.dedup.Watermarks() {
			if cur, ok := out[o]; !ok || s > cur {
				out[o] = s
			}
		}
	}
	return out, nil
}

// QueuedTotal sums the inbound backlog across every TE instance — the load
// hint heartbeat acks carry.
func (r *Runtime) QueuedTotal() int64 {
	var total int64
	for _, ts := range r.tes {
		for _, ti := range ts.instances() {
			total += ti.queued.Load()
		}
	}
	return total
}
