package runtime

import (
	"encoding/binary"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/state"
)

// fanGraph: a stateless entry TE fanning each injected item out over a
// partitioned edge into a dictionary sink — the internal-delivery skeleton
// the batch hot path optimises.
func fanGraph(fanOut int) *core.Graph {
	g := core.NewGraph("fan")
	se := g.AddSE("sink-store", core.KindPartitioned, state.TypeKVMap, nil)
	src := g.AddTE("src", func(ctx core.Context, it core.Item) {
		for f := 0; f < fanOut; f++ {
			key := it.Key*uint64(fanOut) + uint64(f)
			val := make([]byte, 8)
			binary.LittleEndian.PutUint64(val, key*3)
			ctx.Emit(0, key, val)
		}
	}, nil, true)
	sink := g.AddTE("sink", func(ctx core.Context, it core.Item) {
		ctx.Store().(state.KV).Put(it.Key, it.Value.([]byte))
	}, &core.Access{SE: se, Mode: core.AccessByKey}, false)
	g.Connect(src, sink, core.DispatchPartitioned)
	return g
}

// TestBatchEquivalence drives the same workload through the per-item
// (batch=1) and micro-batched (batch=64) pipelines and requires identical
// SE contents and dedup watermarks: batching must change dispatch cost,
// never dispatch semantics.
func TestBatchEquivalence(t *testing.T) {
	const parts, injected, fanOut = 4, 300, 4
	type snapshot struct {
		contents   []map[uint64]string
		watermarks []map[uint64]uint64
	}
	run := func(batchSize int) snapshot {
		r, err := Deploy(fanGraph(fanOut), Options{
			Partitions: map[string]int{"sink-store": parts},
			BatchSize:  batchSize,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Stop()
		for k := uint64(0); k < injected; k++ {
			if err := r.Inject("src", k, nil); err != nil {
				t.Fatal(err)
			}
		}
		if !r.Drain(testTimeout) {
			t.Fatalf("batch=%d did not drain", batchSize)
		}
		var snap snapshot
		for i := 0; i < parts; i++ {
			st, err := r.StateStore("sink-store", i)
			if err != nil {
				t.Fatal(err)
			}
			m := map[uint64]string{}
			st.(*state.KVMap).ForEach(func(k uint64, v []byte) bool {
				m[k] = string(v)
				return true
			})
			snap.contents = append(snap.contents, m)
		}
		ts, err := r.te("sink")
		if err != nil {
			t.Fatal(err)
		}
		for _, ti := range ts.instances() {
			snap.watermarks = append(snap.watermarks, ti.dedup.Watermarks())
		}
		return snap
	}

	a, b := run(1), run(64)
	for i := 0; i < parts; i++ {
		if len(a.contents[i]) != len(b.contents[i]) {
			t.Fatalf("partition %d: batch=1 has %d keys, batch=64 has %d",
				i, len(a.contents[i]), len(b.contents[i]))
		}
		for k, v := range a.contents[i] {
			if b.contents[i][k] != v {
				t.Fatalf("partition %d key %d: batch=1 %q, batch=64 %q", i, k, v, b.contents[i][k])
			}
		}
	}
	if len(a.watermarks) != len(b.watermarks) {
		t.Fatalf("watermark instance counts differ: %d vs %d", len(a.watermarks), len(b.watermarks))
	}
	for i := range a.watermarks {
		if len(a.watermarks[i]) != len(b.watermarks[i]) {
			t.Fatalf("instance %d watermark origins differ", i)
		}
		for o, s := range a.watermarks[i] {
			if b.watermarks[i][o] != s {
				t.Fatalf("instance %d origin %d: watermark %d vs %d", i, o, s, b.watermarks[i][o])
			}
		}
	}
}

// TestDeliverBatchAllocGuard pins the delivery hot path's allocation
// budget. The pre-PR runtime allocated per item: a copy of the downstream
// instance slice, a []int from Router.Route and a heap execCtx — at least 3
// allocs/item, i.e. >= 192 for a 64-item batch. The batched path may
// allocate only the receiver-owned sub-batch copies (one per destination,
// 4 here), so the acceptance bar of ">= 10x fewer allocations per item at
// batch=64" means <= 19 allocs per batch; the steady state is ~4.
func TestDeliverBatchAllocGuard(t *testing.T) {
	const parts, batch = 4, 64
	r, err := Deploy(fanGraph(1), Options{
		Partitions: map[string]int{"sink-store": parts},
		BatchSize:  batch,
		QueueLen:   8192,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	// Freeze the sink workers: a consuming worker would add its own
	// allocations to the process-global counter AllocsPerRun reads.
	sink, err := r.te("sink")
	if err != nil {
		t.Fatal(err)
	}
	paused := map[int]bool{}
	for _, ti := range sink.instances() {
		if paused[ti.node.ID] {
			continue
		}
		paused[ti.node.ID] = true
		mu := r.pauseFor(ti.node)
		mu.Lock()
		defer mu.Unlock()
	}

	src, err := r.te("src")
	if err != nil {
		t.Fatal(err)
	}
	e := src.out[0]
	items := make([]core.Item, batch)
	// A real payload, boxed once: the frozen workers drain these batches at
	// teardown (the pause locks release before Stop), so the sink must be
	// able to process them.
	var payload any = []byte("x")
	for i := range items {
		items[i] = core.Item{Origin: 1, Key: uint64(i * 7), Value: payload}
	}
	var rs routeScratch
	seq := uint64(0)
	deliver := func() {
		for i := range items {
			seq++
			items[i].Seq = seq
		}
		r.deliverBatch(e, items, &rs)
	}
	deliver() // size the scratch buffers and snapshot cache
	allocs := testing.AllocsPerRun(80, deliver)
	if allocs > 8 {
		t.Errorf("deliverBatch allocations = %.1f per %d-item batch, want <= 8 (~%d sub-batch copies)",
			allocs, batch, parts)
	}
}

// TestProcessBatchAllocGuard pins the worker-side budget: dedup filtering,
// context reuse and the empty flush must not allocate per item in steady
// state.
func TestProcessBatchAllocGuard(t *testing.T) {
	g := core.NewGraph("noop")
	g.AddTE("noop", func(ctx core.Context, it core.Item) {}, nil, true)
	r, err := Deploy(g, Options{BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	ts, err := r.te("noop")
	if err != nil {
		t.Fatal(err)
	}
	ti := ts.instances()[0]
	items := make([]core.Item, 64)
	for i := range items {
		items[i] = core.Item{Origin: 7, Key: uint64(i)}
	}
	seq := uint64(0)
	process := func() {
		for i := range items {
			seq++
			items[i].Seq = seq
		}
		r.processBatch(ti, items)
	}
	process() // size the dedup scratch
	allocs := testing.AllocsPerRun(80, process)
	if allocs > 2 {
		t.Errorf("processBatch allocations = %.1f per 64-item batch, want <= 2", allocs)
	}
}

// TestBroadcastCountsLiveTargetsOnly is the regression test for the
// one-to-all Parts bug: the broadcast wave size was fixed before killed
// instances were filtered out, so the downstream gather barrier waited
// forever for partials that had been dropped. With the fix, a global read
// over a partially-failed partial SE still completes from the live
// replicas.
func TestBroadcastCountsLiveTargetsOnly(t *testing.T) {
	r, err := Deploy(partialGraph(), Options{Partitions: map[string]int{"acc": 3}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	for i := 0; i < 30; i++ {
		if err := r.Inject("upd", uint64(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if !r.Drain(testTimeout) {
		t.Fatal("did not drain")
	}
	before, err := r.Call("ask", 0, nil, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if before.(uint64) != 30 {
		t.Fatalf("pre-failure merged total = %d, want 30", before)
	}

	// Kill the node hosting replica 2 (SE instance + colocated TEs).
	st := r.Stats()
	var acc SEStats
	for _, se := range st.SEs {
		if se.Name == "acc" {
			acc = se
		}
	}
	r.KillNode(acc.Nodes[len(acc.Nodes)-1])

	// The broadcast must fix Parts to the live replica count so the merge
	// completes; before the fix this call timed out waiting for the dead
	// replica's partial.
	got, err := r.Call("ask", 0, nil, testTimeout)
	if err != nil {
		t.Fatalf("global read after replica failure: %v", err)
	}
	// The dead replica's local counts are unreachable, so the merged total
	// covers only the live replicas.
	if got.(uint64) > 30 {
		t.Fatalf("merged total after failure = %d, want <= 30", got)
	}
}

// TestRecoverEvictsAbandonedGatherWaves checks the Gather.pending leak fix
// end to end: a wave whose external Call has given up survives replay as
// permanently incomplete, and Recover must evict it.
func TestRecoverEvictsAbandonedGatherWaves(t *testing.T) {
	r, err := Deploy(partialGraph(), Options{
		Mode:     checkpoint.ModeAsync,
		Interval: time.Hour, // manual checkpoints only
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	for i := 0; i < 10; i++ {
		if err := r.Inject("upd", uint64(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if !r.Drain(testTimeout) {
		t.Fatal("did not drain")
	}
	if _, err := r.CheckpointNow("acc", 0); err != nil {
		t.Fatal(err)
	}

	// Plant a wave for a request id whose caller is long gone: it can
	// never complete and must not leak across recovery.
	merge, err := r.te("merge")
	if err != nil {
		t.Fatal(err)
	}
	mi := merge.instances()[0]
	mi.gather.Add(core.Item{ReqID: 0xdead, Origin: 1, Parts: 2, Value: uint64(1)})
	pending := 0
	for _, te := range r.Stats().TEs {
		if te.Name == "merge" {
			pending = te.GatherPending
		}
	}
	if pending != 1 {
		t.Fatalf("planted wave not visible in stats: GatherPending = %d", pending)
	}

	r.KillNode(r.Stats().SEs[0].Nodes[0])
	stats, err := r.Recover("acc", 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.GatherEvicted != 1 {
		t.Fatalf("GatherEvicted = %d, want 1", stats.GatherEvicted)
	}
	if got := mi.gather.Pending(); got != 0 {
		t.Fatalf("gather pending after recovery = %d, want 0", got)
	}

	// The pipeline still works end to end after eviction.
	for i := 10; i < 20; i++ {
		if err := r.Inject("upd", uint64(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if !r.Drain(testTimeout) {
		t.Fatal("did not drain after recovery")
	}
	if _, err := r.Call("ask", 0, nil, testTimeout); err != nil {
		t.Fatalf("global read after recovery: %v", err)
	}
}

// TestScaleUpInvalidatesInstanceSnapshot ensures the epoch-versioned edge
// cache picks up topology changes: items injected after a scale-up must
// reach the new instance set, not a stale snapshot.
func TestScaleUpInvalidatesInstanceSnapshot(t *testing.T) {
	r, err := Deploy(fanGraph(1), Options{Partitions: map[string]int{"sink-store": 2}, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	for k := uint64(0); k < 50; k++ {
		_ = r.Inject("src", k, nil)
	}
	if !r.Drain(testTimeout) {
		t.Fatal("drain")
	}
	if err := r.ScaleUp("sink"); err != nil {
		t.Fatal(err)
	}
	for k := uint64(50); k < 100; k++ {
		_ = r.Inject("src", k, nil)
	}
	if !r.Drain(testTimeout) {
		t.Fatal("drain after scale-up")
	}
	// Every key must live on its 3-way hash partition with the right value.
	total := 0
	for i := 0; i < 3; i++ {
		st, err := r.StateStore("sink-store", i)
		if err != nil {
			t.Fatal(err)
		}
		st.(*state.KVMap).ForEach(func(k uint64, v []byte) bool {
			if state.PartitionKey(k, 3) != i {
				t.Errorf("key %d on wrong partition %d after repartition", k, i)
				return false
			}
			if want := k * 3; binary.LittleEndian.Uint64(v) != want {
				t.Errorf("key %d = %d, want %d", k, binary.LittleEndian.Uint64(v), want)
				return false
			}
			return true
		})
		total += st.NumEntries()
	}
	if total != 100 {
		t.Fatalf("entries after scale-up = %d, want 100", total)
	}
}

// TestProcessChunksBoundedByBatchSize delivers one oversized batch (the
// recovery replay paths enqueue whole output buffers) and requires the
// worker to process it in chunks no larger than BatchSize: the per-chunk
// dedup/pause window is a hard bound, not a target.
func TestProcessChunksBoundedByBatchSize(t *testing.T) {
	g := core.NewGraph("noop")
	g.AddTE("noop", func(ctx core.Context, it core.Item) {}, nil, true)
	r, err := Deploy(g, Options{BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	ts, err := r.te("noop")
	if err != nil {
		t.Fatal(err)
	}
	ti := ts.instances()[0]
	big := make([]core.Item, 100)
	for i := range big {
		big[i] = core.Item{Origin: 3, Seq: uint64(i + 1)}
	}
	r.enqueue(ti, big)
	if !r.Drain(testTimeout) {
		t.Fatal("drain")
	}
	if got := ti.processed.Load(); got != 100 {
		t.Fatalf("processed = %d, want 100", got)
	}
	if max := r.BatchSizes.Max(); max > 4 {
		t.Fatalf("processed chunk of %d items, want <= BatchSize 4", max)
	}
}

// TestParallelEdgesKeepSeqOrder guards the serialEmit escape hatch: a TE
// with two out-edges to the same destination shares one origin/seq space
// across both, so buffered per-edge flushing could deliver a later seq
// first and the dedup watermark would drop the earlier item. Every
// emission must survive at any batch size.
func TestParallelEdgesKeepSeqOrder(t *testing.T) {
	build := func() *core.Graph {
		g := core.NewGraph("parallel")
		src := g.AddTE("src", func(ctx core.Context, it core.Item) {
			// Alternate edges so flush order and emission order diverge
			// unless the runtime serialises.
			ctx.Emit(1, it.Key, it.Value)
			ctx.Emit(0, it.Key, it.Value)
		}, nil, true)
		sink := g.AddTE("sink", func(ctx core.Context, it core.Item) {}, nil, false)
		g.Connect(src, sink, core.DispatchOneToAny)
		g.Connect(src, sink, core.DispatchOneToAny)
		return g
	}
	for _, batch := range []int{1, 64} {
		r, err := Deploy(build(), Options{BatchSize: batch})
		if err != nil {
			t.Fatal(err)
		}
		const injected = 200
		for k := uint64(0); k < injected; k++ {
			if err := r.Inject("src", k, nil); err != nil {
				t.Fatal(err)
			}
		}
		if !r.Drain(testTimeout) {
			t.Fatalf("batch=%d did not drain", batch)
		}
		if got := r.Processed("sink"); got != 2*injected {
			t.Fatalf("batch=%d: sink processed %d of %d emissions (seq inversion dropped items)",
				batch, got, 2*injected)
		}
		r.Stop()
	}
}

// TestBatchSizesRecorded checks the batch-size distribution surface.
func TestBatchSizesRecorded(t *testing.T) {
	r, err := Deploy(fanGraph(4), Options{Partitions: map[string]int{"sink-store": 2}, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	for k := uint64(0); k < 200; k++ {
		_ = r.Inject("src", k, nil)
	}
	if !r.Drain(testTimeout) {
		t.Fatal("drain")
	}
	if r.BatchSizes.Count() == 0 {
		t.Fatal("no batch sizes recorded")
	}
	if r.BatchSizes.Max() < 1 {
		t.Fatalf("max batch size = %d", r.BatchSizes.Max())
	}
}
