package runtime

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/state"
)

// execCtx implements core.Context for one item being processed by one TE
// instance.
type execCtx struct {
	r   *Runtime
	ti  *teInstance
	cur *core.Item
}

var _ core.Context = (*execCtx)(nil)

// Store returns the SE instance colocated with this TE instance (§3.3:
// state access is always local).
func (c *execCtx) Store() state.Store {
	acc := c.ti.te.def.Access
	if acc == nil {
		return nil
	}
	ss := c.r.ses[acc.SE]
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	if c.ti.idx < len(ss.insts) {
		return ss.insts[c.ti.idx].store
	}
	return nil
}

// emit buffers one emission on the instance's per-edge pending batch. The
// buffer flushes when it reaches the configured batch size and always at
// the end of the current micro-batch, so with BatchSize 1 every emission
// delivers immediately, exactly as the per-item runtime did.
func (c *execCtx) emit(edge int, key uint64, value any, reqID uint64) {
	if edge < 0 || edge >= len(c.ti.te.out) {
		panic(fmt.Sprintf("runtime: TE %q emits on unknown edge %d", c.ti.te.def.Name, edge))
	}
	it := core.Item{
		Origin: c.ti.originID(),
		Seq:    c.ti.seqCtr.Add(1),
		Key:    key,
		ReqID:  reqID,
		Parts:  c.cur.Parts, // broadcast wave size propagates to the merge
		Value:  value,
	}
	c.ti.pendingOut[edge] = append(c.ti.pendingOut[edge], it)
	if c.ti.te.serialEmit || len(c.ti.pendingOut[edge]) >= c.r.opts.BatchSize {
		c.r.flushEdge(c.ti, edge)
	}
}

// Emit sends a value downstream without request correlation.
func (c *execCtx) Emit(edge int, key uint64, value any) {
	c.emit(edge, key, value, 0)
}

// EmitReq sends a value downstream preserving the request id of the item
// being processed, so replies and merge barriers can correlate.
func (c *execCtx) EmitReq(edge int, key uint64, value any) {
	c.emit(edge, key, value, c.cur.ReqID)
}

// Reply resolves the external Call that injected the current request.
func (c *execCtx) Reply(value any) {
	c.r.resolve(c.cur.ReqID, value)
}

// Instance reports (index, live instance count) for the executing TE.
func (c *execCtx) Instance() (int, int) {
	c.ti.te.mu.RLock()
	n := len(c.ti.te.insts)
	c.ti.te.mu.RUnlock()
	return c.ti.idx, n
}
