package runtime

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
)

// Graphs travel between coordinator and worker processes by name: task
// functions are code and cannot cross the wire, so both binaries link the
// application packages, each of which registers its graph builder here from
// an init function. A Deploy message then carries only the registry name.
var (
	graphMu sync.RWMutex
	graphs  = map[string]func() *core.Graph{}
)

// RegisterGraph makes a graph builder available to distributed deployments
// under the given name. It panics on duplicate registration — two packages
// claiming one name is a build-layout bug that must not wait for a worker
// process to trip over it.
func RegisterGraph(name string, build func() *core.Graph) {
	if build == nil {
		panic(fmt.Sprintf("runtime: RegisterGraph(%q) with nil builder", name))
	}
	graphMu.Lock()
	defer graphMu.Unlock()
	if _, ok := graphs[name]; ok {
		panic(fmt.Sprintf("runtime: graph %q registered twice", name))
	}
	graphs[name] = build
}

// BuildGraph constructs a registered graph by name.
func BuildGraph(name string) (*core.Graph, error) {
	graphMu.RLock()
	build, ok := graphs[name]
	graphMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("runtime: graph %q not registered (known: %v)", name, RegisteredGraphs())
	}
	return build(), nil
}

// RegisteredGraphs lists the registered graph names, sorted.
func RegisteredGraphs() []string {
	graphMu.RLock()
	defer graphMu.RUnlock()
	names := make([]string, 0, len(graphs))
	for n := range graphs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
