package runtime

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/state"
)

// kvIfaceGraph is kvGraph built against the backend-neutral state.KV
// interface, so the same graph runs over KVMap and ShardedKVMap.
func kvIfaceGraph() *core.Graph {
	g := core.NewGraph("kv")
	se := g.AddSE("store", core.KindPartitioned, state.TypeKVMap, nil)
	g.AddTE("put", func(ctx core.Context, it core.Item) {
		kv := ctx.Store().(state.KV)
		kv.Put(it.Key, it.Value.([]byte))
		ctx.Reply(true)
	}, &core.Access{SE: se, Mode: core.AccessByKey}, true)
	g.AddTE("del", func(ctx core.Context, it core.Item) {
		kv := ctx.Store().(state.KV)
		ctx.Reply(kv.Delete(it.Key))
	}, &core.Access{SE: se, Mode: core.AccessByKey}, true)
	g.AddTE("get", func(ctx core.Context, it core.Item) {
		kv := ctx.Store().(state.KV)
		v, ok := kv.Get(it.Key)
		if !ok {
			ctx.Reply(nil)
			return
		}
		ctx.Reply(v)
	}, &core.Access{SE: se, Mode: core.AccessByKey}, true)
	return g
}

// TestDeltaCheckpointChain drives manual epochs through CheckpointNow and
// asserts the base/delta/compaction cadence the policy promises.
func TestDeltaCheckpointChain(t *testing.T) {
	r, err := Deploy(kvIfaceGraph(), Options{
		Mode:             checkpoint.ModeAsync,
		Interval:         time.Hour, // manual checkpoints only
		DeltaCheckpoints: true,
		CompactEvery:     2,
		CompactRatio:     100, // count-triggered compaction only
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	for k := uint64(0); k < 40; k++ {
		if _, err := r.Call("put", k, []byte(fmt.Sprintf("v%d", k)), testTimeout); err != nil {
			t.Fatal(err)
		}
	}
	churn := func(tag string) {
		for k := uint64(0); k < 4; k++ {
			if _, err := r.Call("put", k, []byte(tag), testTimeout); err != nil {
				t.Fatal(err)
			}
		}
	}
	wantDelta := []bool{false, true, true, false, true} // base, 2 deltas, compact, delta
	for i, want := range wantDelta {
		churn(fmt.Sprintf("c%d", i))
		res, err := r.CheckpointNow("store", 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Meta.Delta != want {
			t.Fatalf("epoch %d delta = %v, want %v", i, res.Meta.Delta, want)
		}
		if want && res.Bytes >= res.StateBytes {
			t.Fatalf("epoch %d: delta bytes %d not below state size %d", i, res.Bytes, res.StateBytes)
		}
	}
}

// TestDeltaRecovery kills the store's node after a base + delta chain and
// recovers onto n fresh nodes, for both dictionary backends and both 1-to-1
// and 1-to-2 rescale — the end-to-end crash-recovery acceptance path.
func TestDeltaRecovery(t *testing.T) {
	for _, tc := range []struct {
		name    string
		nshards int
		n       int
	}{
		{"kvmap/1to1", 0, 1},
		{"kvmap/1to2", 0, 2},
		{"sharded/1to1", 8, 1},
		{"sharded/1to2", 8, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r, err := Deploy(kvIfaceGraph(), Options{
				Mode:             checkpoint.ModeAsync,
				Interval:         time.Hour,
				Chunks:           4,
				KVShards:         tc.nshards,
				DeltaCheckpoints: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Stop()

			for k := uint64(0); k < 60; k++ {
				if _, err := r.Call("put", k, []byte(fmt.Sprintf("pre%d", k)), testTimeout); err != nil {
					t.Fatal(err)
				}
			}
			res, err := r.CheckpointNow("store", 0)
			if err != nil {
				t.Fatal(err)
			}
			if res.Meta.Delta {
				t.Fatal("first epoch must be a full base")
			}
			// Churn captured by two delta epochs: overwrites and a delete.
			for k := uint64(0); k < 10; k++ {
				if _, err := r.Call("put", k, []byte(fmt.Sprintf("d1-%d", k)), testTimeout); err != nil {
					t.Fatal(err)
				}
			}
			if res, err = r.CheckpointNow("store", 0); err != nil || !res.Meta.Delta {
				t.Fatalf("second epoch: delta=%v err=%v", res.Meta.Delta, err)
			}
			for k := uint64(10); k < 15; k++ {
				if _, err := r.Call("put", k, []byte(fmt.Sprintf("d2-%d", k)), testTimeout); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := r.Call("del", 59, nil, testTimeout); err != nil {
				t.Fatal(err)
			}
			if res, err = r.CheckpointNow("store", 0); err != nil || !res.Meta.Delta {
				t.Fatalf("third epoch: delta=%v err=%v", res.Meta.Delta, err)
			}
			// Post-checkpoint writes recover via replay, not the chain.
			for k := uint64(60); k < 70; k++ {
				if _, err := r.Call("put", k, []byte(fmt.Sprintf("post%d", k)), testTimeout); err != nil {
					t.Fatal(err)
				}
			}

			seNode := r.Stats().SEs[0].Nodes[0]
			r.KillNode(seNode)
			stats, err := r.Recover("store", tc.n)
			if err != nil {
				t.Fatal(err)
			}
			if stats.NewNodes != tc.n {
				t.Fatalf("new nodes = %d, want %d", stats.NewNodes, tc.n)
			}
			if !r.Drain(testTimeout) {
				t.Fatal("did not drain after recovery")
			}

			for k := uint64(0); k < 70; k++ {
				got, err := r.Call("get", k, nil, testTimeout)
				if err != nil {
					t.Fatalf("get %d after recovery: %v", k, err)
				}
				var want string
				switch {
				case k == 59:
					if got != nil {
						t.Fatalf("deleted key %d resurrected as %q", k, got)
					}
					continue
				case k < 10:
					want = fmt.Sprintf("d1-%d", k)
				case k < 15:
					want = fmt.Sprintf("d2-%d", k)
				case k < 60:
					want = fmt.Sprintf("pre%d", k)
				default:
					want = fmt.Sprintf("post%d", k)
				}
				if got == nil || string(got.([]byte)) != want {
					t.Fatalf("get %d = %v, want %q", k, got, want)
				}
			}

			// Post-recovery epochs restart the chain with a base, then go
			// incremental again.
			if _, err := r.Call("put", 0, []byte("after"), testTimeout); err != nil {
				t.Fatal(err)
			}
			res, err = r.CheckpointNow("store", 0)
			if err != nil {
				t.Fatal(err)
			}
			if res.Meta.Delta {
				t.Fatal("first post-recovery epoch must be a full base")
			}
			if _, err := r.Call("put", 1, []byte("after2"), testTimeout); err != nil {
				t.Fatal(err)
			}
			if res, err = r.CheckpointNow("store", 0); err != nil || !res.Meta.Delta {
				t.Fatalf("second post-recovery epoch: delta=%v err=%v", res.Meta.Delta, err)
			}
		})
	}
}

// TestDeltaScaleUpRepartition covers the scaling hazard end to end: a
// repartition rebuilds the SE instances (epoch counters inherited, chains
// un-anchored), so each rebuilt instance's next epoch must be a fresh base
// that does not collide with — or GC away — the superseded chain, and
// recovery afterwards must restore the repartitioned state.
func TestDeltaScaleUpRepartition(t *testing.T) {
	r, err := Deploy(kvIfaceGraph(), Options{
		Mode:             checkpoint.ModeAsync,
		Interval:         time.Hour,
		Chunks:           2,
		DeltaCheckpoints: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	put := func(k uint64, v string) {
		t.Helper()
		if _, err := r.Call("put", k, []byte(v), testTimeout); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 60; k++ {
		put(k, fmt.Sprintf("v%d", k))
	}
	if res, err := r.CheckpointNow("store", 0); err != nil || res.Meta.Delta {
		t.Fatalf("first epoch: delta=%v err=%v", res.Meta.Delta, err)
	}
	for k := uint64(0); k < 10; k++ {
		put(k, fmt.Sprintf("u%d", k))
	}
	if res, err := r.CheckpointNow("store", 0); err != nil || !res.Meta.Delta {
		t.Fatalf("second epoch: delta=%v err=%v", res.Meta.Delta, err)
	}

	// Repartition 1 -> 2 instances.
	if err := r.ScaleUp("put"); err != nil {
		t.Fatal(err)
	}
	for k := uint64(60); k < 80; k++ {
		put(k, fmt.Sprintf("v%d", k))
	}
	// Rebuilt instances must anchor fresh bases, not extend the old chain.
	for idx := 0; idx < 2; idx++ {
		res, err := r.CheckpointNow("store", idx)
		if err != nil {
			t.Fatal(err)
		}
		if res.Meta.Delta {
			t.Fatalf("instance %d: first post-repartition epoch must be a base", idx)
		}
	}
	for k := uint64(0); k < 5; k++ {
		put(k, "post-scale")
	}
	if res, err := r.CheckpointNow("store", 0); err != nil || !res.Meta.Delta {
		t.Fatalf("post-scale second epoch: delta=%v err=%v", res.Meta.Delta, err)
	}
	if res, err := r.CheckpointNow("store", 1); err != nil || !res.Meta.Delta {
		t.Fatalf("post-scale second epoch (inst 1): delta=%v err=%v", res.Meta.Delta, err)
	}

	// Kill one partition's node and recover it in place from base+delta.
	seNode := r.Stats().SEs[0].Nodes[1]
	r.KillNode(seNode)
	if _, err := r.Recover("store", 1); err != nil {
		t.Fatal(err)
	}
	if !r.Drain(testTimeout) {
		t.Fatal("did not drain after recovery")
	}
	for k := uint64(0); k < 80; k++ {
		got, err := r.Call("get", k, nil, testTimeout)
		if err != nil {
			t.Fatalf("get %d: %v", k, err)
		}
		want := fmt.Sprintf("v%d", k)
		if k < 5 {
			want = "post-scale"
		} else if k < 10 {
			want = fmt.Sprintf("u%d", k)
		}
		if got == nil || string(got.([]byte)) != want {
			t.Fatalf("get %d = %v, want %q", k, got, want)
		}
	}
}
