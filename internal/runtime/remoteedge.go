package runtime

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/wire"
)

// This file is the remote half of the delivery seam. deliverBatch's local
// path hands receiver-owned sub-batches to in-process queues; an edge whose
// destination TE has instances on other workers carries a *remoteEdge and
// routes through here instead. The contract mirrors the coordinator's
// injection path: every remote-destined item is appended to a per-(edge,
// destination-instance) send log *before* it is queued for transmission
// (log-before-ack), a per-peer sender goroutine pushes queued batches as
// RemoteEmit frames and retries forever on any error — receiver dedup makes
// ambiguous re-sends idempotent — and the logs are trimmed only when the
// coordinator distributes the destination's snapshotted dedup watermarks
// (EdgeTrim). A full or still-restoring receiver rejects the frame instead
// of blocking, so cross-worker cycles cannot distributed-deadlock; the
// pressure shows up in the sender's pending count, which revokes ingress
// admission credits exactly like local overflow parking.

// remoteEdge marks an edgeRT as cut: its destination TE has at least one
// instance on another worker. idx is the edge's global index (its position
// in Graph.Edges), the identity RemoteEmit frames carry.
type remoteEdge struct {
	net *remoteNet
	idx int
	rr  atomic.Uint64 // one-to-any rotation over remote instances
}

// edgeInstKey identifies one send log: global edge index x global
// destination instance.
type edgeInstKey struct {
	edge, inst int
}

// outEntry is one logged batch queued for transmission to a peer.
type outEntry struct {
	edge  int
	inst  int
	items []core.Item
}

// peerConn is the send side of one worker-to-worker link. The queue is
// generation-versioned: a peer reset (recovery) rebuilds the queue from the
// send logs and bumps gen, so a sender mid-Call on the old queue must not
// pop — its entry was re-queued and a duplicate delivery is dedup'd
// downstream.
type peerConn struct {
	worker int

	//sdg:lockorder peermu 90
	mu     sync.Mutex
	cond   *sync.Cond
	addr   string
	tr     cluster.Transport
	queue  []outEntry
	gen    uint64
	closed bool
}

func queueItems(q []outEntry) int64 {
	var n int64
	for i := range q {
		n += int64(len(q[i].items))
	}
	return n
}

// remoteNet owns everything cross-worker on one runtime: the send logs, the
// per-peer connections and the receive-side edge table. net.mu makes
// log-append + queue-append atomic so the queue is always a suffix of the
// log — the invariant peer rebuilds rely on.
type remoteNet struct {
	r   *Runtime
	cfg *ShardConfig

	//sdg:lockorder netmu 80
	mu    sync.Mutex
	logs  map[edgeInstKey]*dataflow.OutputBuffer
	peers map[int]*peerConn

	// edgeTo maps global edge index -> destination teState, for both the
	// receive path (RemoteDeliver) and send-log ownership math.
	edgeTo map[int]*teState

	// pending counts items logged but not yet acked by their peer; folded
	// into backpressure and drain the way parked overflow is.
	pending atomic.Int64

	// sealed rejects inbound RemoteEmit until ImportSnapshot completes, so
	// replayed frames cannot land on pre-restore state.
	sealed atomic.Bool
}

func newRemoteNet(r *Runtime, cfg *ShardConfig) *remoteNet {
	n := &remoteNet{
		r:      r,
		cfg:    cfg,
		logs:   make(map[edgeInstKey]*dataflow.OutputBuffer),
		peers:  make(map[int]*peerConn),
		edgeTo: make(map[int]*teState),
	}
	n.sealed.Store(cfg.AwaitRestore)
	for w := 0; w < cfg.Workers; w++ {
		if w == cfg.Worker {
			continue
		}
		p := &peerConn{worker: w}
		if w < len(cfg.Peers) {
			p.addr = cfg.Peers[w]
		}
		p.cond = sync.NewCond(&p.mu)
		n.peers[w] = p
	}
	return n
}

// start launches one sender per peer.
func (n *remoteNet) start() {
	for _, p := range n.peers {
		n.r.wg.Add(1)
		go n.sender(p)
	}
}

// close wakes and terminates every sender and drops the cached transports.
func (n *remoteNet) close() {
	for _, p := range n.peers {
		p.mu.Lock()
		p.closed = true
		if p.tr != nil {
			p.tr.Close()
			p.tr = nil
		}
		p.mu.Unlock()
		p.cond.Broadcast()
	}
}

// logFor returns the send log for one (edge, instance), creating it on
// first use. Callers hold n.mu.
func (n *remoteNet) logFor(edge, inst int) *dataflow.OutputBuffer {
	k := edgeInstKey{edge, inst}
	buf, ok := n.logs[k]
	if !ok {
		buf = &dataflow.OutputBuffer{}
		n.logs[k] = buf
	}
	return buf
}

// ownerOf maps a global destination instance of an edge to its worker.
func (n *remoteNet) ownerOf(edge, inst int) int {
	return shardOwner(n.edgeTo[edge].shard.Total, n.cfg.Workers, inst)
}

// send logs one receiver-owned batch for (edge, inst) and queues it for the
// owning peer. The append to the log and the append to the queue happen
// under one lock so the queue never holds an item the log does not.
func (n *remoteNet) send(edge, inst int, items []core.Item) {
	if len(items) == 0 {
		return
	}
	owner := n.ownerOf(edge, inst)
	n.mu.Lock()
	n.logFor(edge, inst).AppendBatch(items)
	p := n.peers[owner]
	if p == nil {
		// Self-owned instances never reach send; a missing peer would be a
		// placement bug. Keep the item logged so it is not lost.
		n.mu.Unlock()
		return
	}
	p.mu.Lock()
	p.queue = append(p.queue, outEntry{edge: edge, inst: inst, items: items})
	p.mu.Unlock()
	n.pending.Add(int64(len(items)))
	n.mu.Unlock()
	p.cond.Signal()
}

// sender is the per-peer transmission loop: take the queue head, push it as
// one RemoteEmit frame, pop on ack. Any error — link down, peer
// backpressured, peer mid-restore — is retried with backoff until the item
// is acked or the runtime stops; receiver dedup makes the ambiguous cases
// safe. The queue generation decides whether the head may be popped: a peer
// reset mid-Call rebuilt the queue from the logs, and the in-flight entry
// is already re-queued.
func (n *remoteNet) sender(p *peerConn) {
	defer n.r.wg.Done()
	backoff := time.Millisecond
	const maxBackoff = 500 * time.Millisecond
	wait := func() bool {
		select {
		case <-n.r.stopped:
			return false
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
		return true
	}
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		ent := p.queue[0]
		gen := p.gen
		tr := p.tr
		addr := p.addr
		p.mu.Unlock()

		if tr == nil {
			if addr == "" {
				// Peer address unknown (worker down, no Peers update yet).
				if !wait() {
					return
				}
				continue
			}
			t, err := n.cfg.Dialer(addr)
			if err != nil {
				if !wait() {
					return
				}
				continue
			}
			p.mu.Lock()
			if p.closed || p.addr != addr {
				p.mu.Unlock()
				t.Close()
				continue
			}
			p.tr, tr = t, t
			p.mu.Unlock()
		}

		frame, err := wire.Encode(wire.MsgRemoteEmit, wire.RemoteEmit{Edge: ent.edge, Inst: ent.inst, Items: ent.items})
		if err != nil {
			// A value that cannot cross the wire is a programming error, the
			// same class WireCheck panics on in-process.
			panic(fmt.Sprintf("runtime: remote emit payload not wire-encodable: %v", err))
		}
		resp, err := tr.Call(frame)
		if err == nil {
			var ack wire.RemoteEmitAck
			err = decodeReply(resp, wire.MsgRemoteEmitAck, &ack)
		}
		if err != nil {
			if !errors.Is(err, cluster.ErrRemote) {
				// Link broken: drop the transport and redial next round. An
				// app-level rejection (backpressured, restoring) keeps it.
				p.mu.Lock()
				if p.tr == tr {
					tr.Close()
					p.tr = nil
				}
				p.mu.Unlock()
			}
			if !wait() {
				return
			}
			continue
		}
		backoff = time.Millisecond
		p.mu.Lock()
		if p.gen == gen && len(p.queue) > 0 {
			p.queue[0].items = nil
			p.queue = p.queue[1:]
			n.pending.Add(-int64(len(ent.items)))
		}
		p.mu.Unlock()
	}
}

// decodeReply checks a reply frame's type and decodes it.
func decodeReply(frame []byte, want byte, out any) error {
	msgType, payload, err := wire.Decode(frame)
	if err != nil {
		return err
	}
	if msgType != want {
		return fmt.Errorf("runtime: reply type 0x%02x, want 0x%02x", msgType, want)
	}
	return wire.Unmarshal(payload, out)
}

// rebuildPeerLocked reconstructs a peer's send queue from the logs it owns
// and bumps the generation. Callers hold n.mu. Entries across all of the
// peer's logs are merged in (origin, seq) order: a TE with two edges to the
// same destination shares one seq space across both logs, and replaying one
// log after the other would let the receiver's per-origin watermark drop
// the lower-seq tail for good.
//
//sdg:locked netmu
func (n *remoteNet) rebuildPeerLocked(p *peerConn) {
	type flatEnt struct {
		edge, inst int
		it         core.Item
	}
	var ents []flatEnt
	for k, buf := range n.logs {
		if n.ownerOf(k.edge, k.inst) != p.worker {
			continue
		}
		for _, it := range buf.Replay() {
			ents = append(ents, flatEnt{k.edge, k.inst, it})
		}
	}
	sort.SliceStable(ents, func(i, j int) bool {
		if ents[i].it.Origin != ents[j].it.Origin {
			return ents[i].it.Origin < ents[j].it.Origin
		}
		return ents[i].it.Seq < ents[j].it.Seq
	})
	var q []outEntry
	for _, e := range ents {
		if last := len(q) - 1; last >= 0 && q[last].edge == e.edge && q[last].inst == e.inst {
			q[last].items = append(q[last].items, e.it)
			continue
		}
		q = append(q, outEntry{edge: e.edge, inst: e.inst, items: []core.Item{e.it}})
	}
	p.mu.Lock()
	old := queueItems(p.queue)
	p.queue = q
	p.gen++
	p.mu.Unlock()
	n.pending.Add(queueItems(q) - old)
	p.cond.Signal()
}

// ResetPeer installs a worker's (possibly new) address after recovery,
// drops the cached transport and rebuilds the pending queue from the send
// logs — which replays everything the restarted peer may have lost.
func (r *Runtime) ResetPeer(worker int, addr string) {
	n := r.net
	if n == nil {
		return
	}
	n.mu.Lock()
	p := n.peers[worker]
	if p == nil {
		n.mu.Unlock()
		return
	}
	p.mu.Lock()
	p.addr = addr
	if p.tr != nil {
		p.tr.Close()
		p.tr = nil
	}
	p.mu.Unlock()
	n.rebuildPeerLocked(p)
	n.mu.Unlock()
}

// TrimEdgeLogs applies coordinator-distributed trim points: each entry is
// one destination instance's snapshotted dedup watermarks, below which its
// send log can never be replayed again.
func (r *Runtime) TrimEdgeLogs(trims []wire.EdgeTrimEntry) {
	n := r.net
	if n == nil {
		return
	}
	n.mu.Lock()
	for _, t := range trims {
		if buf, ok := n.logs[edgeInstKey{t.Edge, t.Inst}]; ok {
			buf.Trim(t.Watermarks)
		}
	}
	n.mu.Unlock()
}

// EdgeLogItems reports the items currently held across all cross-worker
// send logs (0 when the runtime is not sharded). Observability for tests
// and stats: after a drain + checkpoint round every log should be trimmed
// back to empty.
func (r *Runtime) EdgeLogItems() int {
	n := r.net
	if n == nil {
		return 0
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	total := 0
	for _, buf := range n.logs {
		total += buf.Len()
	}
	return total
}

// RemoteDeliver is the receive side of a cut edge: a peer worker pushed a
// batch for one of our global instances. It never blocks — a destination
// over its overflow watermark rejects, the sender retries — and it enqueues
// the frame's items directly (frame ownership transfers to the receiver).
func (r *Runtime) RemoteDeliver(edge, inst int, items []core.Item) error {
	n := r.net
	if n == nil {
		return fmt.Errorf("runtime: not a sharded deployment")
	}
	if n.sealed.Load() {
		return fmt.Errorf("runtime: restoring; retry")
	}
	ts, ok := n.edgeTo[edge]
	if !ok {
		return fmt.Errorf("runtime: unknown edge %d", edge)
	}
	insts := ts.instances()
	local := inst - ts.shard.First
	if local < 0 || local >= len(insts) {
		return fmt.Errorf("runtime: instance %s/%d not owned by worker %d", ts.def.Name, inst, n.cfg.Worker)
	}
	ti := insts[local]
	if ti.overflow.Items() >= int64(r.opts.OverflowLen) {
		return fmt.Errorf("runtime: %s/%d backpressured; retry", ts.def.Name, inst)
	}
	r.enqueue(ti, items)
	return nil
}

// edgeSnaps captures every non-empty send log for the coordinator's
// consistent cut, items flat-encoded. Sorted for determinism.
func (n *remoteNet) edgeSnaps() ([]wire.EdgeLogSnap, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []wire.EdgeLogSnap
	for k, buf := range n.logs {
		items := buf.Replay()
		if len(items) == 0 {
			continue
		}
		data, err := wire.EncodeItems(items)
		if err != nil {
			return nil, err
		}
		out = append(out, wire.EdgeLogSnap{Edge: k.edge, Inst: k.inst, Data: data})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Edge != out[j].Edge {
			return out[i].Edge < out[j].Edge
		}
		return out[i].Inst < out[j].Inst
	})
	return out, nil
}

// edgeParts captures every non-empty send log as bounded PartEdge stream
// parts — edgeSnaps' shape for the streaming snapshot protocol. Long logs
// split into several parts of at most maxBytes each.
func (n *remoteNet) edgeParts(dst *[]wire.SnapPart, maxBytes int) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	keys := make([]edgeInstKey, 0, len(n.logs))
	for k := range n.logs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].edge != keys[j].edge {
			return keys[i].edge < keys[j].edge
		}
		return keys[i].inst < keys[j].inst
	})
	for _, k := range keys {
		items := n.logs[k].Replay()
		for len(items) > 0 {
			data, took, err := wire.EncodeItemsBounded(items, maxBytes)
			if err != nil {
				return err
			}
			*dst = append(*dst, wire.SnapPart{
				Kind: wire.PartEdge,
				Edge: k.edge,
				Inst: k.inst,
				Data: data,
			})
			items = items[took:]
		}
	}
	return nil
}

// Edge-log restore now flows through the streaming part path: see
// beginRestoreStream / applySnapPart(PartEdge) / finishRestoreStream in
// snapstream.go. Items that were logged but unsent when the snapshot was
// cut will not be regenerated (the seq counters restore to OutSeq), so the
// peer-queue rebuild there re-enters them; receivers dedup whatever they
// already processed.

// deliverRemote routes one flushed batch over a cut edge: the local slice
// of the destination keeps the in-process fast path, everything else is
// logged and queued per owning peer. Called from deliverBatch; items is
// caller-owned scratch exactly as there.
func (r *Runtime) deliverRemote(e *edgeRT, items []core.Item, rs *routeScratch) {
	ts := e.to
	insts := ts.instances()
	first, cnt, total := ts.shard.First, ts.shard.Count, ts.shard.Total
	net := e.remote.net
	switch e.def.Dispatch {
	case core.DispatchOneToAll:
		// Every remote instance counts as live: instance-level kills do not
		// exist in sharded mode (a worker fails whole and is replayed), so
		// Parts = local live + remote total keeps gather waves exact.
		if cap(rs.dsts) < len(insts) {
			rs.dsts = make([]*teInstance, 0, len(insts))
		}
		rs.dsts = rs.dsts[:0]
		for _, dst := range insts {
			if !dst.killed.Load() && !dst.node.Failed() {
				rs.dsts = append(rs.dsts, dst)
			}
		}
		parts := len(rs.dsts) + (total - cnt)
		for _, dst := range rs.dsts {
			b := make([]core.Item, len(items))
			copy(b, items)
			for i := range b {
				b[i].Parts = parts
			}
			r.enqueue(dst, b)
		}
		for i := range rs.dsts {
			rs.dsts[i] = nil
		}
		for g := 0; g < total; g++ {
			if g >= first && g < first+cnt {
				continue
			}
			b := make([]core.Item, len(items))
			copy(b, items)
			for i := range b {
				b[i].Parts = parts
			}
			net.send(e.remote.idx, g, b)
		}
	case core.DispatchOneToAny:
		// Prefer a local destination — same least-loaded policy as the
		// in-process path, without paying a network hop. Workers with no
		// local slice rotate across the remote instances.
		var best *teInstance
		var bestLen int64
		for _, dst := range insts {
			if dst.killed.Load() || dst.node.Failed() {
				continue
			}
			if q := dst.queued.Load(); best == nil || q < bestLen {
				best, bestLen = dst, q
			}
		}
		b := make([]core.Item, len(items))
		copy(b, items)
		if best != nil {
			r.enqueue(best, b)
			return
		}
		k := int((e.remote.rr.Add(1) - 1) % uint64(total-cnt))
		g := k
		if k >= first {
			g = k + cnt
		}
		net.send(e.remote.idx, g, b)
	default:
		// Partitioned and all-to-one: route against the *global* instance
		// count so every worker (and the in-process reference runtime)
		// agrees on the destination of each key.
		rs.targets = e.router.RouteBatch(items, total, rs.targets[:0])
		if cap(rs.counts) < total {
			rs.counts = make([]int, total)
			rs.batches = make([][]core.Item, total)
		}
		rs.counts = rs.counts[:total]
		rs.batches = rs.batches[:total]
		for i := range rs.counts {
			rs.counts[i] = 0
		}
		for _, t := range rs.targets {
			rs.counts[t]++
		}
		for g, cntG := range rs.counts {
			rs.batches[g] = nil
			if cntG == 0 {
				continue
			}
			if li := g - first; li >= 0 && li < len(insts) {
				dst := insts[li]
				if dst.killed.Load() || dst.node.Failed() {
					continue // dropped; upstream buffers replay after recovery
				}
			}
			rs.batches[g] = make([]core.Item, 0, cntG)
		}
		for i, t := range rs.targets {
			if rs.batches[t] != nil {
				rs.batches[t] = append(rs.batches[t], items[i])
			}
		}
		for g, b := range rs.batches {
			if len(b) > 0 {
				if li := g - first; li >= 0 && li < len(insts) {
					r.enqueue(insts[li], b)
				} else {
					net.send(e.remote.idx, g, b)
				}
			}
			rs.batches[g] = nil
		}
	}
}
