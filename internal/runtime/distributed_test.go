package runtime_test

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/apps/counter"
	"repro/internal/apps/kv"
	"repro/internal/cluster"
	"repro/internal/runtime"
)

// newTCPWorker serves a fresh worker over real localhost TCP and returns its
// endpoint (data + control connections to the same server).
func newTCPWorker(t *testing.T) (*runtime.Worker, runtime.WorkerEndpoint) {
	t.Helper()
	w := runtime.NewWorker()
	srv, err := cluster.Serve("127.0.0.1:0", w.Handler())
	if err != nil {
		t.Fatalf("serve worker: %v", err)
	}
	t.Cleanup(func() { srv.Close(); w.Close() })
	dial := func() *cluster.Client {
		c, err := cluster.Dial(srv.Addr())
		if err != nil {
			t.Fatalf("dial worker: %v", err)
		}
		c.SetCallTimeout(10 * time.Second)
		return c
	}
	return w, runtime.WorkerEndpoint{Data: dial(), Control: dial()}
}

// TestDistributedEquivalence runs one deterministic mixed workload twice —
// through a coordinator and two TCP workers, and through a single in-process
// runtime — and requires identical store contents, identical call replies,
// and identical per-task dedup watermarks. Both paths assign external seqs
// from the same monotone counter, so any divergence is a transport or
// routing bug, not schedule noise.
func TestDistributedEquivalence(t *testing.T) {
	_, ep0 := newTCPWorker(t)
	_, ep1 := newTCPWorker(t)
	coord, err := runtime.NewCoordinator("kv", []runtime.WorkerEndpoint{ep0, ep1}, runtime.CoordOptions{
		Partitions: map[string]int{"store": 2},
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer coord.Close()

	ref, err := runtime.Deploy(kv.Graph(), runtime.Options{Partitions: map[string]int{"store": 2}})
	if err != nil {
		t.Fatalf("deploy reference: %v", err)
	}
	defer ref.Stop()

	const ops = 400
	const keys = 50
	for i := 0; i < ops; i++ {
		key := uint64(i % keys)
		switch i % 5 {
		case 0, 1: // synchronous put
			val := []byte(fmt.Sprintf("v%d@%d", key, i))
			if _, err := coord.Call("put", key, val, 5*time.Second); err != nil {
				t.Fatalf("op %d: distributed put: %v", i, err)
			}
			if _, err := ref.Call("put", key, val, 5*time.Second); err != nil {
				t.Fatalf("op %d: reference put: %v", i, err)
			}
		case 2: // get: replies must agree too
			dv, err := coord.Call("get", key, nil, 5*time.Second)
			if err != nil {
				t.Fatalf("op %d: distributed get: %v", i, err)
			}
			rv, err := ref.Call("get", key, nil, 5*time.Second)
			if err != nil {
				t.Fatalf("op %d: reference get: %v", i, err)
			}
			db, _ := dv.([]byte)
			rb, _ := rv.([]byte)
			if !bytes.Equal(db, rb) {
				t.Fatalf("op %d: get(%d) diverged: distributed %q, reference %q", i, key, db, rb)
			}
		case 3: // delete
			if _, err := coord.Call("delete", key, nil, 5*time.Second); err != nil {
				t.Fatalf("op %d: distributed delete: %v", i, err)
			}
			if _, err := ref.Call("delete", key, nil, 5*time.Second); err != nil {
				t.Fatalf("op %d: reference delete: %v", i, err)
			}
		case 4: // asynchronous put
			val := []byte(fmt.Sprintf("a%d@%d", key, i))
			if err := coord.Inject("put", key, val); err != nil {
				t.Fatalf("op %d: distributed inject: %v", i, err)
			}
			if err := ref.Inject("put", key, val); err != nil {
				t.Fatalf("op %d: reference inject: %v", i, err)
			}
		}
	}

	if !coord.Drain(10 * time.Second) {
		t.Fatal("distributed deployment did not quiesce")
	}
	if !ref.Drain(10 * time.Second) {
		t.Fatal("reference runtime did not quiesce")
	}

	dist, err := coord.DumpKV("store")
	if err != nil {
		t.Fatalf("distributed dump: %v", err)
	}
	local, err := ref.DumpKV("store")
	if err != nil {
		t.Fatalf("reference dump: %v", err)
	}
	if len(dist) != len(local) {
		t.Fatalf("store size diverged: distributed %d keys, reference %d", len(dist), len(local))
	}
	for k, rv := range local {
		if dv, ok := dist[k]; !ok || !bytes.Equal(dv, rv) {
			t.Fatalf("key %d diverged: distributed %q, reference %q", k, dist[k], rv)
		}
	}

	for _, task := range []string{"put", "get", "delete"} {
		dwm, err := coord.FoldedWatermarks(task)
		if err != nil {
			t.Fatalf("distributed watermarks %q: %v", task, err)
		}
		rwm, err := ref.FoldedWatermarks(task)
		if err != nil {
			t.Fatalf("reference watermarks %q: %v", task, err)
		}
		if len(dwm) != len(rwm) {
			t.Fatalf("%q watermark origins diverged: %v vs %v", task, dwm, rwm)
		}
		for o, s := range rwm {
			if dwm[o] != s {
				t.Fatalf("%q watermark for origin %d diverged: distributed %d, reference %d", task, o, dwm[o], s)
			}
		}
	}
}

// TestDistributedKillWorkerRecovery kills one of two workers mid-stream and
// requires the recovered deployment to account for every increment exactly
// once. The counter graph makes the check exact: a lost item leaves a count
// short, a duplicated replay overshoots — neither can hide the way an
// idempotent put would.
func TestDistributedKillWorkerRecovery(t *testing.T) {
	w0 := runtime.NewWorker()
	defer w0.Close()
	w1 := runtime.NewWorker()
	defer w1.Close()
	// Local transports: closing them below simulates the crash cutting the
	// coordinator's links.
	ep0 := runtime.WorkerEndpoint{Data: cluster.Local(w0.Handler(), 0), Control: cluster.Local(w0.Handler(), 0)}
	ep1 := runtime.WorkerEndpoint{Data: cluster.Local(w1.Handler(), 0), Control: cluster.Local(w1.Handler(), 0)}

	failed := make(chan int, 4)
	coord, err := runtime.NewCoordinator("counter", []runtime.WorkerEndpoint{ep0, ep1}, runtime.CoordOptions{
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMisses:   2,
		OnFailure:         func(w int) { failed <- w },
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer coord.Close()

	const keys = 20
	const perPhase = 300
	inject := func(phase int) {
		t.Helper()
		for i := 0; i < perPhase; i++ {
			if err := coord.Inject("inc", uint64(i%keys), nil); err != nil {
				t.Fatalf("phase %d inject %d: %v", phase, i, err)
			}
		}
	}

	inject(1)
	if err := coord.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	inject(2) // applied on w1 but newer than its snapshot: must come back via replay

	// Crash worker 1: its runtime dies with its process, the coordinator's
	// links break.
	w1.Close()
	ep1.Data.Close()
	ep1.Control.Close()

	inject(3) // items routed to the dead worker queue in the replay log

	select {
	case idx := <-failed:
		if idx != 1 {
			t.Fatalf("failure detector blamed worker %d, want 1", idx)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("failure detector never fired")
	}
	if coord.WorkerAlive(1) {
		t.Fatal("worker 1 still marked alive after failure")
	}

	w1b := runtime.NewWorker()
	defer w1b.Close()
	ep1b := runtime.WorkerEndpoint{Data: cluster.Local(w1b.Handler(), 0), Control: cluster.Local(w1b.Handler(), 0)}
	if err := coord.RecoverWorker(1, ep1b); err != nil {
		t.Fatalf("RecoverWorker: %v", err)
	}
	if !coord.WorkerAlive(1) {
		t.Fatal("worker 1 not alive after recovery")
	}

	inject(4)

	if !coord.Drain(10 * time.Second) {
		t.Fatal("deployment did not quiesce after recovery")
	}
	dump, err := coord.DumpKV("counts")
	if err != nil {
		t.Fatalf("dump: %v", err)
	}
	const total = 4 * perPhase
	var sum uint64
	for k := uint64(0); k < keys; k++ {
		n := counter.Count(dump[k])
		sum += n
		if n != total/keys {
			t.Errorf("key %d: count %d, want %d", k, n, total/keys)
		}
	}
	if sum != total {
		t.Fatalf("counted %d increments, want exactly %d (lost or duplicated items)", sum, total)
	}

	// A checkpoint over the quiesced deployment must trim every replay log:
	// the snapshot watermarks now cover everything ever sent.
	if err := coord.Checkpoint(); err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	for w := 0; w < coord.Workers(); w++ {
		if n := coord.PendingReplay("inc", w); n != 0 {
			t.Errorf("worker %d replay log not trimmed: %d items", w, n)
		}
	}
}

// startWorkerProc launches one sdg-worker process and returns its command
// handle and listen address.
func startWorkerProc(t *testing.T, bin string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, "-listen", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				rest := strings.TrimSpace(line[i+len("listening on "):])
				addrCh <- strings.Fields(rest)[0]
				break
			}
		}
		close(addrCh)
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok || addr == "" {
			t.Fatal("worker process exited before announcing its address")
		}
		return cmd, addr
	case <-time.After(10 * time.Second):
		t.Fatal("worker process never announced its address")
	}
	return nil, ""
}

func dialWorker(t *testing.T, addr string) runtime.WorkerEndpoint {
	t.Helper()
	dial := func(timeout time.Duration) *cluster.Client {
		c, err := cluster.Dial(addr)
		if err != nil {
			t.Fatalf("dial %s: %v", addr, err)
		}
		c.SetCallTimeout(timeout)
		return c
	}
	return runtime.WorkerEndpoint{Data: dial(10 * time.Second), Control: dial(2 * time.Second)}
}

// TestDistributedTCPProcesses is the full distributed smoke test: a
// coordinator driving two sdg-worker OS processes over localhost TCP, one of
// which is SIGKILLed mid-stream and replaced by a third. Exact increment
// accounting must survive the process boundary. Skipped under -short (it
// spawns processes); CI runs it with SDG_WORKER_BIN pointing at a prebuilt
// race-enabled binary, and it builds the binary itself when the variable is
// unset.
func TestDistributedTCPProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes; skipped in -short")
	}
	bin := os.Getenv("SDG_WORKER_BIN")
	if bin == "" {
		bin = filepath.Join(t.TempDir(), "sdg-worker")
		out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/sdg-worker").CombinedOutput()
		if err != nil {
			t.Fatalf("build sdg-worker: %v\n%s", err, out)
		}
	}

	proc0, addr0 := startWorkerProc(t, bin)
	proc1, addr1 := startWorkerProc(t, bin)
	_ = proc0

	failed := make(chan int, 4)
	coord, err := runtime.NewCoordinator("counter",
		[]runtime.WorkerEndpoint{dialWorker(t, addr0), dialWorker(t, addr1)},
		runtime.CoordOptions{
			HeartbeatInterval: 50 * time.Millisecond,
			HeartbeatMisses:   2,
			OnFailure:         func(w int) { failed <- w },
		})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer coord.Close()

	const keys = 10
	const perPhase = 200
	inject := func(phase int) {
		t.Helper()
		for i := 0; i < perPhase; i++ {
			if err := coord.Inject("inc", uint64(i%keys), nil); err != nil {
				t.Fatalf("phase %d inject %d: %v", phase, i, err)
			}
		}
	}

	inject(1)
	if err := coord.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	inject(2)

	if err := proc1.Process.Kill(); err != nil {
		t.Fatalf("kill worker process: %v", err)
	}
	proc1.Wait()

	inject(3)
	select {
	case idx := <-failed:
		if idx != 1 {
			t.Fatalf("failure detector blamed worker %d, want 1", idx)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("failure detector never fired after process kill")
	}

	_, addr2 := startWorkerProc(t, bin)
	if err := coord.RecoverWorker(1, dialWorker(t, addr2)); err != nil {
		t.Fatalf("RecoverWorker: %v", err)
	}
	inject(4)

	if !coord.Drain(15 * time.Second) {
		t.Fatal("deployment did not quiesce after process recovery")
	}
	dump, err := coord.DumpKV("counts")
	if err != nil {
		t.Fatalf("dump: %v", err)
	}
	const total = 4 * perPhase
	var sum uint64
	for k := uint64(0); k < keys; k++ {
		n := counter.Count(dump[k])
		sum += n
		if n != total/keys {
			t.Errorf("key %d: count %d, want %d", k, n, total/keys)
		}
	}
	if sum != total {
		t.Fatalf("counted %d increments, want exactly %d across the process kill", sum, total)
	}
}
