package runtime

import (
	"repro/internal/cluster"
)

type clusterT = cluster.Cluster

// newSlowCluster builds an empty cluster whose nodes get bandwidth-limited
// disks, so checkpoint timing tests have measurable I/O.
func newSlowCluster(diskBW int64) *cluster.Cluster {
	return cluster.New(0, cluster.Config{DiskWriteBW: diskBW, DiskReadBW: diskBW})
}
