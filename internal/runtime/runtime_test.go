package runtime

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/state"
	"repro/internal/wire"
)

func init() {
	wire.Register([]byte{})
}

const testTimeout = 5 * time.Second

// echoGraph: a single stateless entry TE that replies with its input.
func echoGraph() *core.Graph {
	g := core.NewGraph("echo")
	g.AddTE("echo", func(ctx core.Context, it core.Item) {
		ctx.Reply(it.Value)
	}, nil, true)
	return g
}

// kvGraph: the partitioned key/value store used across the evaluation.
// Two entry TEs (put, get) access a partitioned KVMap by key.
func kvGraph() *core.Graph {
	g := core.NewGraph("kv")
	se := g.AddSE("store", core.KindPartitioned, state.TypeKVMap, nil)
	g.AddTE("put", func(ctx core.Context, it core.Item) {
		kv := ctx.Store().(*state.KVMap)
		kv.Put(it.Key, it.Value.([]byte))
		ctx.Reply(true)
	}, &core.Access{SE: se, Mode: core.AccessByKey}, true)
	g.AddTE("get", func(ctx core.Context, it core.Item) {
		kv := ctx.Store().(*state.KVMap)
		v, ok := kv.Get(it.Key)
		if !ok {
			ctx.Reply(nil)
			return
		}
		ctx.Reply(v)
	}, &core.Access{SE: se, Mode: core.AccessByKey}, true)
	return g
}

// partialGraph: partial state with local updates, global reads and a merge
// barrier — the structural skeleton of the CF algorithm.
//
//	upd (entry, local acc) ──────────────────────────┐
//	ask (entry) ──one-to-all──> read (global acc) ──all-to-one──> merge
func partialGraph() *core.Graph {
	g := core.NewGraph("partial")
	se := g.AddSE("acc", core.KindPartial, state.TypeKVMap, nil)
	g.AddTE("upd", func(ctx core.Context, it core.Item) {
		kv := ctx.Store().(*state.KVMap)
		var cur uint64
		if v, ok := kv.Get(0); ok {
			cur = binary.LittleEndian.Uint64(v)
		}
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, cur+1)
		kv.Put(0, buf)
	}, &core.Access{SE: se, Mode: core.AccessLocal}, true)

	ask := g.AddTE("ask", func(ctx core.Context, it core.Item) {
		ctx.EmitReq(0, it.Key, it.Value)
	}, nil, true)
	read := g.AddTE("read", func(ctx core.Context, it core.Item) {
		kv := ctx.Store().(*state.KVMap)
		var cur uint64
		if v, ok := kv.Get(0); ok {
			cur = binary.LittleEndian.Uint64(v)
		}
		ctx.EmitReq(0, 0, cur)
	}, &core.Access{SE: se, Mode: core.AccessGlobal}, false)
	merge := g.AddTE("merge", func(ctx core.Context, it core.Item) {
		coll := it.Value.(core.Collection)
		var total uint64
		for _, v := range coll {
			total += v.(uint64)
		}
		ctx.Reply(total)
	}, nil, false)

	g.Connect(ask, read, core.DispatchOneToAll)
	g.Connect(read, merge, core.DispatchAllToOne)
	return g
}

func TestEchoCall(t *testing.T) {
	r, err := Deploy(echoGraph(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	got, err := r.Call("echo", 0, []byte("hi"), testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.([]byte)) != "hi" {
		t.Fatalf("echo = %q", got)
	}
	if r.CallLatency.Count() != 1 {
		t.Error("call latency not recorded")
	}
}

func TestInjectErrors(t *testing.T) {
	g := core.NewGraph("g")
	g.AddTE("entry", func(ctx core.Context, it core.Item) {
		ctx.Emit(0, 0, it.Value)
	}, nil, true)
	g.AddTE("inner", func(ctx core.Context, it core.Item) {}, nil, false)
	g.Connect(0, 1, core.DispatchOneToAny)
	r, err := Deploy(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if err := r.Inject("missing", 0, nil); err == nil {
		t.Error("inject to unknown TE should fail")
	}
	if err := r.Inject("inner", 0, nil); err == nil {
		t.Error("inject to non-entry TE should fail")
	}
	if _, err := r.Call("inner", 0, nil, time.Second); err == nil {
		t.Error("call to non-entry TE should fail")
	}
}

func TestDeployRejectsInvalidGraph(t *testing.T) {
	if _, err := Deploy(core.NewGraph("empty"), Options{}); err == nil {
		t.Fatal("empty graph should not deploy")
	}
}

func TestKVPutGet(t *testing.T) {
	r, err := Deploy(kvGraph(), Options{Partitions: map[string]int{"store": 4}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if got := r.StateInstances("store"); got != 4 {
		t.Fatalf("store instances = %d", got)
	}
	for k := uint64(0); k < 100; k++ {
		val := []byte(fmt.Sprintf("v%d", k))
		if _, err := r.Call("put", k, val, testTimeout); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	for k := uint64(0); k < 100; k++ {
		got, err := r.Call("get", k, nil, testTimeout)
		if err != nil {
			t.Fatalf("get %d: %v", k, err)
		}
		if want := fmt.Sprintf("v%d", k); string(got.([]byte)) != want {
			t.Fatalf("get %d = %q, want %q", k, got, want)
		}
	}
	// Keys must land in their hash partition (state locality, §3.2).
	total := 0
	for i := 0; i < 4; i++ {
		st, err := r.StateStore("store", i)
		if err != nil {
			t.Fatal(err)
		}
		kv := st.(*state.KVMap)
		total += kv.NumEntries()
		kv.ForEach(func(k uint64, _ []byte) bool {
			if state.PartitionKey(k, 4) != i {
				t.Errorf("key %d on wrong partition %d", k, i)
				return false
			}
			return true
		})
	}
	if total != 100 {
		t.Fatalf("partitions hold %d keys, want 100", total)
	}
}

func TestPartialGlobalMerge(t *testing.T) {
	r, err := Deploy(partialGraph(), Options{Partitions: map[string]int{"acc": 3}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	const updates = 90
	for i := 0; i < updates; i++ {
		if err := r.Inject("upd", uint64(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if !r.Drain(testTimeout) {
		t.Fatal("did not drain")
	}
	got, err := r.Call("ask", 0, nil, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	// Updates are spread one-to-any over 3 replicas; the merged global sum
	// must equal the injected count regardless of the spread.
	if got.(uint64) != updates {
		t.Fatalf("merged total = %d, want %d", got, updates)
	}
	if r.Instances("read") != 3 {
		t.Fatalf("read instances = %d, want 3 (colocated with partial SE)", r.Instances("read"))
	}
}

func TestStatsSnapshot(t *testing.T) {
	r, err := Deploy(kvGraph(), Options{Partitions: map[string]int{"store": 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	for k := uint64(0); k < 10; k++ {
		_, _ = r.Call("put", k, []byte{1}, testTimeout)
	}
	st := r.Stats()
	if len(st.TEs) != 2 || len(st.SEs) != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.SEs[0].Instances != 2 || st.SEs[0].Entries != 10 {
		t.Fatalf("SE stats = %+v", st.SEs[0])
	}
	if r.Processed("put") != 10 {
		t.Fatalf("processed = %d", r.Processed("put"))
	}
	if r.Processed("missing") != 0 || r.Instances("missing") != 0 {
		t.Fatal("missing TE stats should be zero")
	}
}

func TestCheckpointAndRecover1to1(t *testing.T) {
	r, err := Deploy(kvGraph(), Options{
		Mode:     checkpoint.ModeAsync,
		Interval: time.Hour, // manual checkpoints only
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	for k := uint64(0); k < 50; k++ {
		if _, err := r.Call("put", k, []byte(fmt.Sprintf("pre%d", k)), testTimeout); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.CheckpointNow("store", 0); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint writes exist only in the source replay log.
	for k := uint64(50); k < 80; k++ {
		if _, err := r.Call("put", k, []byte(fmt.Sprintf("post%d", k)), testTimeout); err != nil {
			t.Fatal(err)
		}
	}

	// Find and kill the node hosting the store.
	st := r.Stats()
	var seNode int
	for _, se := range st.SEs {
		if se.Name == "store" {
			seNode = se.Nodes[0]
		}
	}
	r.KillNode(seNode)
	if _, err := r.Call("get", 1, nil, 300*time.Millisecond); err == nil {
		t.Fatal("call should fail while node is down")
	}

	stats, err := r.Recover("store", 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total <= 0 || stats.NewNodes != 1 {
		t.Fatalf("recovery stats = %+v", stats)
	}
	if !r.Drain(testTimeout) {
		t.Fatal("did not drain after recovery")
	}
	// All 80 keys must be readable: 50 from the checkpoint, 30 replayed.
	for k := uint64(0); k < 80; k++ {
		got, err := r.Call("get", k, nil, testTimeout)
		if err != nil {
			t.Fatalf("get %d after recovery: %v", k, err)
		}
		want := fmt.Sprintf("pre%d", k)
		if k >= 50 {
			want = fmt.Sprintf("post%d", k)
		}
		if got == nil || string(got.([]byte)) != want {
			t.Fatalf("get %d = %v, want %q", k, got, want)
		}
	}
}

func TestRecover1toN(t *testing.T) {
	r, err := Deploy(kvGraph(), Options{
		Mode:     checkpoint.ModeAsync,
		Interval: time.Hour,
		Chunks:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	for k := uint64(0); k < 60; k++ {
		if _, err := r.Call("put", k, []byte(fmt.Sprintf("v%d", k)), testTimeout); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.CheckpointNow("store", 0); err != nil {
		t.Fatal(err)
	}
	seNode := r.Stats().SEs[0].Nodes[0]
	r.KillNode(seNode)

	stats, err := r.Recover("store", 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.NewNodes != 2 {
		t.Fatalf("new nodes = %d", stats.NewNodes)
	}
	if got := r.StateInstances("store"); got != 2 {
		t.Fatalf("store instances after 1-to-2 recovery = %d", got)
	}
	if !r.Drain(testTimeout) {
		t.Fatal("did not drain")
	}
	for k := uint64(0); k < 60; k++ {
		got, err := r.Call("get", k, nil, testTimeout)
		if err != nil || got == nil {
			t.Fatalf("get %d after 1-to-2 recovery: %v, %v", k, got, err)
		}
		if want := fmt.Sprintf("v%d", k); string(got.([]byte)) != want {
			t.Fatalf("get %d = %q, want %q", k, got, want)
		}
	}
	// Each new instance holds only its partition.
	for i := 0; i < 2; i++ {
		st, _ := r.StateStore("store", i)
		st.(*state.KVMap).ForEach(func(k uint64, _ []byte) bool {
			if state.PartitionKey(k, 2) != i {
				t.Errorf("key %d on wrong instance %d", k, i)
				return false
			}
			return true
		})
	}
}

func TestRecoverErrors(t *testing.T) {
	r, err := Deploy(kvGraph(), Options{Mode: checkpoint.ModeAsync, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if _, err := r.Recover("missing", 1); err == nil {
		t.Error("recover of unknown SE should fail")
	}
	if _, err := r.Recover("store", 1); err == nil {
		t.Error("recover with no failed instance should fail")
	}
}

func TestScaleUpStateless(t *testing.T) {
	r, err := Deploy(echoGraph(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if err := r.ScaleUp("echo"); err != nil {
		t.Fatal(err)
	}
	if got := r.Instances("echo"); got != 2 {
		t.Fatalf("instances = %d", got)
	}
	// Both instances serve calls.
	for i := 0; i < 10; i++ {
		if _, err := r.Call("echo", 0, []byte("x"), testTimeout); err != nil {
			t.Fatal(err)
		}
	}
}

func TestScaleUpPartialAddsReplica(t *testing.T) {
	r, err := Deploy(partialGraph(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	for i := 0; i < 20; i++ {
		_ = r.Inject("upd", uint64(i), nil)
	}
	if !r.Drain(testTimeout) {
		t.Fatal("drain")
	}
	if err := r.ScaleUp("upd"); err != nil {
		t.Fatal(err)
	}
	if got := r.StateInstances("acc"); got != 2 {
		t.Fatalf("acc instances = %d", got)
	}
	// All TEs accessing acc scaled together.
	if r.Instances("upd") != 2 || r.Instances("read") != 2 {
		t.Fatalf("TE instances upd=%d read=%d", r.Instances("upd"), r.Instances("read"))
	}
	for i := 20; i < 40; i++ {
		_ = r.Inject("upd", uint64(i), nil)
	}
	if !r.Drain(testTimeout) {
		t.Fatal("drain")
	}
	got, err := r.Call("ask", 0, nil, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if got.(uint64) != 40 {
		t.Fatalf("merged total after scale-up = %d, want 40", got)
	}
}

func TestScaleUpPartitionedRepartitions(t *testing.T) {
	r, err := Deploy(kvGraph(), Options{Partitions: map[string]int{"store": 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	for k := uint64(0); k < 100; k++ {
		if _, err := r.Call("put", k, []byte(fmt.Sprintf("v%d", k)), testTimeout); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.ScaleUp("put"); err != nil {
		t.Fatal(err)
	}
	if got := r.StateInstances("store"); got != 3 {
		t.Fatalf("store instances = %d, want 3", got)
	}
	// No data lost and every key routed correctly after repartition.
	for k := uint64(0); k < 100; k++ {
		got, err := r.Call("get", k, nil, testTimeout)
		if err != nil || got == nil {
			t.Fatalf("get %d after repartition: %v %v", k, got, err)
		}
		if want := fmt.Sprintf("v%d", k); string(got.([]byte)) != want {
			t.Fatalf("get %d = %q", k, got)
		}
	}
	total := 0
	for i := 0; i < 3; i++ {
		st, _ := r.StateStore("store", i)
		total += st.NumEntries()
		st.(*state.KVMap).ForEach(func(k uint64, _ []byte) bool {
			if state.PartitionKey(k, 3) != i {
				t.Errorf("key %d on wrong partition after repartition", k)
				return false
			}
			return true
		})
	}
	if total != 100 {
		t.Fatalf("entries after repartition = %d", total)
	}
}

func TestAutoScaleDetectsBottleneck(t *testing.T) {
	// A deliberately slow stateless TE with a flood of inputs must acquire
	// a second instance.
	g := core.NewGraph("slow")
	g.AddTE("slow", func(ctx core.Context, it core.Item) {
		time.Sleep(2 * time.Millisecond)
	}, nil, true)
	r, err := Deploy(g, Options{QueueLen: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	scaled := make(chan string, 4)
	r.StartAutoScale(20*time.Millisecond, ScalePolicy{
		QueueHighWater: 16,
		MaxInstances:   2,
		Cooldown:       50 * time.Millisecond,
		OnScale:        func(te string, n int) { scaled <- te },
	})
	stop := make(chan struct{})
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				_ = r.Inject("slow", uint64(i), nil)
			}
		}
	}()
	select {
	case te := <-scaled:
		if te != "slow" {
			t.Fatalf("scaled %q", te)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("auto-scaler never fired")
	}
	close(stop)
	if got := r.Instances("slow"); got < 2 {
		t.Fatalf("instances = %d", got)
	}
}

func TestCheckpointLoopRunsPeriodically(t *testing.T) {
	r, err := Deploy(kvGraph(), Options{
		Mode:     checkpoint.ModeAsync,
		Interval: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	for k := uint64(0); k < 20; k++ {
		_, _ = r.Call("put", k, []byte{byte(k)}, testTimeout)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if meta, ok := r.Backup().Latest("store/0"); ok && meta.Epoch >= 2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("checkpoint loop did not commit at least two epochs")
}

func TestSyncModeCheckpointBlocksProcessing(t *testing.T) {
	cl := clusterWithSlowDisks()
	r, err := Deploy(kvGraph(), Options{
		Cluster:  cl,
		Mode:     checkpoint.ModeSync,
		Interval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	for k := uint64(0); k < 3000; k++ {
		if _, err := r.Call("put", k, make([]byte, 256), testTimeout); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan checkpoint.Result, 1)
	go func() {
		res, err := r.CheckpointNow("store", 0)
		if err != nil {
			t.Error(err)
		}
		done <- res
	}()
	time.Sleep(5 * time.Millisecond) // let the pause take hold
	start := time.Now()
	if _, err := r.Call("put", 1, []byte("during"), testTimeout); err != nil {
		t.Fatal(err)
	}
	blocked := time.Since(start)
	res := <-done
	if res.LockTime < 20*time.Millisecond {
		t.Fatalf("sync lock time = %v; disk too fast for the test", res.LockTime)
	}
	if blocked < 10*time.Millisecond {
		t.Fatalf("put during sync checkpoint returned in %v; processing was not paused", blocked)
	}
}

func TestDirtyStateKeepsAsyncNonBlocking(t *testing.T) {
	cl := clusterWithSlowDisks()
	r, err := Deploy(kvGraph(), Options{
		Cluster:  cl,
		Mode:     checkpoint.ModeAsync,
		Interval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	// Enough state that each of the 2 parallel chunk writes takes ~80ms on
	// the 8MB/s disks: 3000 keys put the write at ~49ms, deterministically
	// just under the 50ms floor asserted below.
	for k := uint64(0); k < 5000; k++ {
		if _, err := r.Call("put", k, make([]byte, 256), testTimeout); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan checkpoint.Result, 1)
	go func() {
		res, err := r.CheckpointNow("store", 0)
		if err != nil {
			t.Error(err)
		}
		done <- res
	}()
	time.Sleep(5 * time.Millisecond)
	if _, err := r.Call("put", 1, []byte("during"), testTimeout); err != nil {
		t.Fatal(err)
	}
	// Logical ordering instead of a wall-clock ratio: an async checkpoint
	// must not serialize puts behind it, so the put has to return while the
	// (deliberately slow, >=50ms asserted below) checkpoint is still in
	// flight — if the put had blocked on the checkpoint, the result would
	// already be waiting here.
	select {
	case res := <-done:
		t.Fatalf("async checkpoint (%v) finished before the concurrent put returned; put serialized behind the checkpoint", res.Duration)
	default:
	}
	res := <-done
	if res.Duration < 50*time.Millisecond {
		t.Fatalf("async checkpoint took %v; disk too fast for the test", res.Duration)
	}
	// The write that happened during the checkpoint survives the merge.
	got, err := r.Call("get", 1, nil, testTimeout)
	if err != nil || string(got.([]byte)) != "during" {
		t.Fatalf("get during-write = %v, %v", got, err)
	}
}

func TestOutputBufferTrimming(t *testing.T) {
	r, err := Deploy(kvGraph(), Options{
		Mode:     checkpoint.ModeAsync,
		Interval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	for k := uint64(0); k < 50; k++ {
		_, _ = r.Call("put", k, []byte{1}, testTimeout)
	}
	ts, _ := r.te("put")
	if ts.srcBuf.Len() != 50 {
		t.Fatalf("source log = %d items", ts.srcBuf.Len())
	}
	if _, err := r.CheckpointNow("store", 0); err != nil {
		t.Fatal(err)
	}
	if got := ts.srcBuf.Len(); got != 0 {
		t.Fatalf("source log after checkpoint = %d items, want 0 (trimmed)", got)
	}
}

func clusterWithSlowDisks() *clusterT {
	return newSlowCluster(8 << 20) // 8 MB/s disks
}
