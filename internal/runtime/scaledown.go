package runtime

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/state"
)

// Scale-in retires one instance of a TE (and, like ScaleUp, of the SE it
// accesses and of every TE sharing that SE) without losing or duplicating a
// single item. The protocol is quiesce-based:
//
//  1. Fence ingress: every entry TE's injection mutex is held, so no new
//     external item can enter the graph, and admission credits rescale to
//     the shrunk capacity the moment the swap commits (the watermark is
//     OverflowLen x live instances).
//  2. Quiesce: wait until every instance's backlog — queued batches, parked
//     overflow and the in-flight batch — drains. The retiring instance
//     processes anything parked at it through the normal worker path, so
//     items parked at a retiring partition are replayed into state, never
//     dropped. The wait is bounded; under sustained intra-graph load the
//     caller gets an error instead of an indefinite stall.
//  3. Swap: bump the instance-snapshot epoch (cached edge snapshots
//     rebuild, so all routing — entry and intra-graph — targets the shrunk
//     layout), fold every instance's dedup watermarks into the survivors,
//     adopt the retiree's replay log, remember its output seq counter, and
//     merge its state into the survivors via the state layer's Merge.
//  4. Resume: release the fence, then anchor the survivors' backup chains
//     with fresh base checkpoints (a chain cut against the pre-merge store
//     must not continue across a merge).
//
// Folding the per-origin maximum watermark into each survivor is the key
// correctness move: at quiescence every emitted seq at or below that mark
// was processed by some pre-shrink instance, and the merge moved all of
// those instances' state into the survivors — so any later replay of such
// an item (after a failure elsewhere) must be discarded no matter which
// survivor the new routing sends it to.

// scaleDrainDefault bounds the quiesce wait of ScaleDown when Options does
// not override it.
const scaleDrainDefault = 30 * time.Second

// ErrNotQuiesced is returned by ScaleDown when the graph's queues do not
// drain within the scale-in timeout; the caller may retry once load drops.
var ErrNotQuiesced = errors.New("runtime: graph did not quiesce for scale-in")

func (r *Runtime) scaleDrainTimeout() time.Duration {
	if r.opts.ScaleDrainTimeout > 0 {
		return r.opts.ScaleDrainTimeout
	}
	return scaleDrainDefault
}

// ScaleDown retires one instance of the named TE, the inverse of ScaleUp:
//
//   - stateless TE: the last instance drains and retires;
//   - partitioned SE: the SE shrinks from k to k-1 partitions — every old
//     partition splits k-1 ways and the pieces merge into fresh stores, so
//     each key lands at PartitionKey(key, k-1) no matter where it lived.
//
// Partial SEs are refused: their replicas accumulate independently and are
// reconciled only by application merge computation, so a runtime fold of
// one replica into another (last-writer-wins per key) would silently lose
// accumulations. Retiring a partial replica needs an application-supplied
// combine function — future work.
//
// It also fails if the TE is already at one instance, if any accessing
// instance is killed or on a failed node (recover first: their parked items
// can only drain through replay), or if the graph does not quiesce within
// Options.ScaleDrainTimeout.
func (r *Runtime) ScaleDown(teName string) error {
	return r.scaleDown(teName, r.scaleDrainTimeout())
}

// scaleDown is ScaleDown with an explicit quiesce budget; the auto-scaler
// passes a scan-window-sized budget so a failed attempt cannot stall
// ingress for the full manual timeout.
func (r *Runtime) scaleDown(teName string, drain time.Duration) error {
	if r.opts.Shard != nil {
		return fmt.Errorf("runtime: in-process scaling is unavailable in a sharded worker")
	}
	ts, err := r.te(teName)
	if err != nil {
		return err
	}
	r.scaleMu.Lock()
	defer r.scaleMu.Unlock()
	if ts.def.Access == nil {
		return r.retireStateless(ts, drain)
	}
	ss := r.ses[ts.def.Access.SE]
	switch ss.def.Kind {
	case core.KindPartial:
		return fmt.Errorf("runtime: SE %q is partial; replicas reconcile only through merge computation and cannot be folded by the runtime", ss.def.Name)
	case core.KindPartitioned:
		return r.shrinkPartitioned(ss, drain)
	default:
		return fmt.Errorf("runtime: unknown state kind %v", ss.def.Kind)
	}
}

// checkRetireable refuses scale-in while any instance of the given TEs is
// dead: a dead instance's parked items drain only through recovery, and the
// folded watermarks would wrongly cover them.
func (r *Runtime) checkRetireable(teIDs []int) error {
	for _, teID := range teIDs {
		ts := r.tes[teID]
		for _, ti := range ts.instances() {
			if ti.killed.Load() || ti.node.Failed() {
				return fmt.Errorf("runtime: TE %q has a dead instance; recover before scaling in", ts.def.Name)
			}
		}
	}
	return nil
}

// fenceIngress locks every entry TE's injection mutex and waits for the
// whole graph to quiesce. On success the returned release function reopens
// ingress; on failure ingress is already reopened. No other runtime locks
// are held while waiting, so workers drain freely (state access takes the
// SE read lock, which must stay available).
func (r *Runtime) fenceIngress(timeout time.Duration) (release func(), err error) {
	var locked []*teState
	for _, ts := range r.tes {
		if ts.def.Entry {
			ts.injMu.Lock()
			locked = append(locked, ts)
		}
	}
	release = func() {
		for _, ts := range locked {
			ts.injMu.Unlock()
		}
	}
	deadline := time.Now().Add(timeout)
	for {
		if r.quiet() {
			// Same settle double-check as Drain: emissions may be in flight
			// between a worker's flush and the downstream queued counter.
			time.Sleep(2 * time.Millisecond)
			if r.quiet() {
				return release, nil
			}
		}
		select {
		case <-r.stopped:
			release()
			return nil, ErrStopped
		default:
		}
		if time.Now().After(deadline) {
			release()
			return nil, fmt.Errorf("%w (timeout %v)", ErrNotQuiesced, timeout)
		}
		time.Sleep(500 * time.Microsecond)
	}
}

// retireTEInstance removes the last instance of a TE at quiescence: folds
// the per-origin maximum dedup watermark across all instances into each
// survivor, adopts the retiree's replay logs (items keep their origin, so
// downstream trim and dedup are unaffected), records its output seq counter
// for a future re-expansion, stops its worker and bumps the snapshot epoch.
func (r *Runtime) retireTEInstance(ts *teState) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	k := len(ts.insts)
	victim := ts.insts[k-1]

	fold := make(map[uint64]uint64)
	for _, ti := range ts.insts {
		for o, s := range ti.dedup.Watermarks() {
			if s > fold[o] {
				fold[o] = s
			}
		}
	}
	for _, ti := range ts.insts[:k-1] {
		ti.dedup.Fold(fold)
	}

	// The retiree's un-trimmed output log moves to survivor 0, so a later
	// downstream recovery can still replay items only this log covers.
	for e := range victim.outBufs {
		if items := victim.outBufs[e].Replay(); len(items) > 0 {
			ts.insts[0].outBufs[e].AppendBatch(items)
		}
	}

	if ts.retiredSeqs == nil {
		ts.retiredSeqs = make(map[int]uint64)
	}
	if seq := victim.seqCtr.Load(); seq > ts.retiredSeqs[k-1] {
		ts.retiredSeqs[k-1] = seq
	}
	ts.retiredProcessed.Add(victim.processed.Load())

	victim.killed.Store(true)
	close(victim.dead)
	// Quiescence means nothing is parked; subtract defensively so a stray
	// race can only leave the global bound high, never low.
	if parked := victim.overflow.Items(); parked > 0 {
		r.parked.Add(-parked)
	}
	ts.insts = ts.insts[:k-1]
	ts.bumpInstances()
	// Checkpoint watermark bookkeeping restarts for the shrunk layout.
	ts.ckptWM = nil
}

// retireStateless retires the last instance of a stateless TE.
func (r *Runtime) retireStateless(ts *teState, drain time.Duration) error {
	if len(ts.instances()) <= 1 {
		return fmt.Errorf("runtime: TE %q already at one instance", ts.def.Name)
	}
	if err := r.checkRetireable([]int{ts.def.ID}); err != nil {
		return err
	}
	start := time.Now()
	release, err := r.fenceIngress(drain)
	if err != nil {
		return err
	}
	// Re-validate behind the fence: an instance killed during the quiesce
	// wait would make the watermark fold unsound.
	if err := r.checkRetireable([]int{ts.def.ID}); err != nil {
		release()
		return err
	}
	r.retireTEInstance(ts)
	release()
	r.ScalePause.Record(time.Since(start).Nanoseconds())
	return nil
}

// shrinkPartitioned shrinks a partitioned SE from k to k-1 instances: at
// quiescence every old partition (victim and survivors alike) splits k-1
// ways and the pieces merge into fresh stores, because the partition
// function changes for every key, not just the retiree's. Survivor stores
// are rebuilt on their existing nodes; all rebuilt instances anchor fresh
// base checkpoints.
func (r *Runtime) shrinkPartitioned(ss *seState, drain time.Duration) error {
	accessing := r.graph.TEsAccessing(ss.def.ID)
	ss.mu.RLock()
	k := len(ss.insts)
	ss.mu.RUnlock()
	if k <= 1 {
		return fmt.Errorf("runtime: SE %q already at one instance", ss.def.Name)
	}
	if err := r.checkRetireable(accessing); err != nil {
		return err
	}

	start := time.Now()
	release, err := r.fenceIngress(drain)
	if err != nil {
		return err
	}
	// Re-validate behind the fence: an instance killed during the quiesce
	// wait would make the watermark fold unsound (its parked items drained
	// only through recovery, yet the fold would cover them).
	if err := r.checkRetireable(accessing); err != nil {
		release()
		return err
	}
	// Exclude checkpoints for the whole destructive swap: in-flight ones
	// finish (their saves commit before MergeDirty clears the dirty flag),
	// new ones wait until the rebuilt instances are in place.
	ss.ckptGate.Lock()
	victimName, err := r.shrinkPartitionedFenced(ss, accessing)
	ss.ckptGate.Unlock()
	release()
	r.ScalePause.Record(time.Since(start).Nanoseconds())
	if err != nil {
		return err
	}

	// Anchor the rebuilt chains outside the fence; chained=false keeps
	// every next epoch a base even if one of these fails and the periodic
	// loop retries it. The retiree's chain is only dropped once every
	// survivor's post-merge base has committed — until then the pre-shrink
	// chains (retiree's included) remain the restorable generation.
	if r.opts.Mode != checkpoint.ModeOff && r.bk != nil {
		ss.mu.RLock()
		insts := append([]*seInstance(nil), ss.insts...)
		ss.mu.RUnlock()
		committed := true
		for _, si := range insts {
			if _, err := r.CheckpointNow(ss.def.Name, si.idx); err != nil {
				committed = false
			}
		}
		if committed {
			r.bk.Forget(victimName)
		}
		// On failure the retiree's manifest is left behind (a bounded leak):
		// deleting it before the new bases exist would make its merged keys
		// unrecoverable if a survivor fails first.
	}
	return nil
}

// shrinkPartitionedFenced performs the store rebuild and instance swap,
// returning the retired instance's backup name; the caller holds the
// ingress fence over a quiesced graph and the SE's checkpoint gate.
func (r *Runtime) shrinkPartitionedFenced(ss *seState, accessing []int) (string, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	k := len(ss.insts)
	if k <= 1 {
		return "", fmt.Errorf("runtime: SE %q already at one instance", ss.def.Name)
	}
	old := ss.insts
	victim := old[k-1]

	// Validate the whole rebuild before the first destructive step: the
	// split/merge loop below empties old stores as it goes and must not be
	// able to abort halfway with part of the SE drained into stores that
	// would then be discarded.
	newStores := make([]state.Store, k-1)
	for j := range newStores {
		st, err := r.newStore(ss.def)
		if err != nil {
			return "", err
		}
		if _, ok := st.(state.Merger); !ok {
			return "", fmt.Errorf("runtime: SE %q store (%v) does not support merging", ss.def.Name, st.Type())
		}
		newStores[j] = st
	}
	for _, si := range old {
		if _, ok := si.store.(state.Partitionable); !ok {
			return "", fmt.Errorf("runtime: SE %q store (%v) is not partitionable", ss.def.Name, si.store.Type())
		}
		if _, ok := si.store.(state.DirtyReporter); !ok {
			return "", fmt.Errorf("runtime: SE %q store (%v) does not report dirty mode", ss.def.Name, si.store.Type())
		}
	}

	// No store can be dirty here: the caller write-holds the checkpoint
	// gate, which waited out every in-flight checkpoint (whose Save commits
	// before MergeDirty clears the dirty flag) and blocks new ones, and
	// writers never flip the flag. The probe below is a cheap invariant
	// check against out-of-band BeginDirty use, bounded so a violation
	// surfaces as an error before anything is destroyed, not as a
	// mid-rebuild abort.
	deadline := time.Now().Add(r.scaleDrainTimeout())
	for _, si := range old {
		for si.store.(state.DirtyReporter).Dirty() {
			if time.Now().After(deadline) {
				return "", fmt.Errorf("runtime: SE %q instance %d held dirty past the drain timeout", ss.def.Name, si.idx)
			}
			time.Sleep(500 * time.Microsecond)
		}
	}

	for _, si := range old {
		pieces, err := si.store.(state.Partitionable).Split(k - 1)
		if err != nil {
			return "", err
		}
		for j, p := range pieces {
			if err := newStores[j].(state.Merger).Merge(p); err != nil {
				return "", err
			}
		}
	}

	newInsts := make([]*seInstance, k-1)
	for j := 0; j < k-1; j++ {
		ni := &seInstance{se: ss, idx: j, node: old[j].node, store: newStores[j]}
		// Epochs stay monotonic per instance name; chained stays false so
		// the rebuilt store anchors a fresh base (see repartition).
		ni.epoch.Store(old[j].epoch.Load())
		newInsts[j] = ni
	}
	for _, teID := range accessing {
		r.retireTEInstance(r.tes[teID])
	}
	ss.insts = newInsts // detaches every old instance's checkpoint loop

	if r.opts.Mode != checkpoint.ModeOff && r.bk != nil {
		for _, si := range newInsts {
			r.startCheckpointLoop(si)
		}
	}
	// The retiree's chain is NOT forgotten here: until every survivor's
	// post-merge base commits, the pre-shrink chains are the only
	// restorable generation. The caller drops it after the eager bases.
	return victim.instName(), nil
}
