package runtime

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
)

// KillNode fails a cluster node: its TE instances stop consuming, items
// routed to them are dropped (to be replayed after recovery), and its SE
// instances become unreachable. This is the failure-injection entry point
// for the recovery experiments (§6.4).
func (r *Runtime) KillNode(nodeID int) {
	node := r.cl.Node(nodeID)
	node.Fail()
	for _, ts := range r.tes {
		ts.mu.Lock()
		for _, ti := range ts.insts {
			if ti.node.ID == nodeID && !ti.killed.Swap(true) {
				close(ti.dead)
			}
		}
		ts.mu.Unlock()
	}
}

// RecoveryStats reports the phases of one recovery (Fig. 11 measures their
// sum: "the time to restore the lost SE, re-process unprocessed data and
// resume processing").
type RecoveryStats struct {
	Restore       time.Duration // m-to-n chunk fetch + state reconstruction
	Replay        time.Duration // re-delivery of logged items
	Total         time.Duration
	Replayed      int // items re-delivered from upstream and own buffers
	NewNodes      int
	GatherEvicted int // permanently stuck gather waves dropped after replay
}

// Recover restores the failed instance of the named SE onto n fresh nodes
// using the latest checkpoint, recreates the colocated TE instances,
// replays the logged dataflows and resumes processing.
//
// Restoring one failed instance to n > 1 new instances (the paper's 1-to-n
// pattern, Fig. 4) is supported when the SE had a single instance; an SE
// with several instances recovers the failed one in place (n == 1).
func (r *Runtime) Recover(seName string, n int) (RecoveryStats, error) {
	start := time.Now()
	if r.opts.Shard != nil {
		// A sharded worker fails and recovers as a whole process; the
		// coordinator owns snapshot, restore and replay (RecoverWorker).
		return RecoveryStats{}, fmt.Errorf("runtime: in-process recovery is unavailable in a sharded worker")
	}
	ss, err := r.se(seName)
	if err != nil {
		return RecoveryStats{}, err
	}
	if r.bk == nil {
		return RecoveryStats{}, fmt.Errorf("runtime: no backup store configured")
	}

	ss.mu.Lock()
	failedIdx := -1
	for i, si := range ss.insts {
		if si.node.Failed() {
			failedIdx = i
			break
		}
	}
	if failedIdx < 0 {
		ss.mu.Unlock()
		return RecoveryStats{}, fmt.Errorf("runtime: SE %q has no failed instance", seName)
	}
	prior := len(ss.insts)
	if n < 1 {
		n = 1
	}
	if n > 1 && prior > 1 {
		ss.mu.Unlock()
		return RecoveryStats{}, fmt.Errorf("runtime: SE %q has %d instances; 1-to-n restore requires a single instance", seName, prior)
	}
	failed := ss.insts[failedIdx]
	ss.mu.Unlock()

	// Phase 1: m-to-n restore (Fig. 4 R1-R2), reconstruction in parallel.
	// Each recovering instance restores its base group, then replays its
	// delta groups in epoch-chain order.
	restoreStart := time.Now()
	sets, meta, err := r.bk.Restore(failed.instName(), n)
	if err != nil {
		return RecoveryStats{}, err
	}
	newNodes := make([]*cluster.Node, n)
	newInsts := make([]*seInstance, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for j := 0; j < n; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			node := r.cl.AddNode()
			// Rebuild with the deployment's configured backend rather than
			// meta.StoreType: dictionary chunks are format-compatible across
			// the single-lock and sharded backends, so a checkpoint written
			// by one restores into the other.
			store, err := r.newStore(ss.def)
			if err != nil {
				errs[j] = fmt.Errorf("runtime: rebuild store for %q: %w", meta.SE, err)
				return
			}
			if err := store.Restore(sets[j].Base); err != nil {
				errs[j] = fmt.Errorf("runtime: reconcile chunks for %q: %w", meta.SE, err)
				return
			}
			if err := checkpoint.ApplyDeltas(store, sets[j].Deltas); err != nil {
				errs[j] = fmt.Errorf("runtime: %q: %w", meta.SE, err)
				return
			}
			idx := failedIdx
			if n > 1 {
				idx = j
			}
			newNodes[j] = node
			newInsts[j] = &seInstance{se: ss, idx: idx, node: node, store: store}
			newInsts[j].epoch.Store(meta.Epoch)
		}(j)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return RecoveryStats{}, e
		}
	}
	restoreDur := time.Since(restoreStart)

	// Swap the SE instances in.
	ss.mu.Lock()
	if n == 1 {
		ss.insts[failedIdx] = newInsts[0]
	} else {
		ss.insts = newInsts
	}
	ss.mu.Unlock()

	// Phase 2: recreate the colocated TE instances with restored recovery
	// state (dedup watermarks, seq counters), then start their workers.
	accessing := r.graph.TEsAccessing(ss.def.ID)
	for _, teID := range accessing {
		ts := r.tes[teID]
		var started []*teInstance
		ts.mu.Lock()
		// Discarded instances take their parked overflow with them (source
		// replay re-delivers those items); release their share of the
		// global parked bound so the admission fast path can go quiet
		// again. A park racing this swap only leaves the bound high —
		// harmless — never low.
		if n == 1 {
			r.parked.Add(-ts.insts[failedIdx].overflow.Items())
			ti := r.newInstance(ts, failedIdx, newNodes[0])
			restoreTE(ti, meta, teID, true)
			ts.insts[failedIdx] = ti
			started = append(started, ti)
		} else {
			for _, old := range ts.insts {
				r.parked.Add(-old.overflow.Items())
			}
			insts := make([]*teInstance, n)
			for j := 0; j < n; j++ {
				ti := r.newInstance(ts, j, newNodes[j])
				// The instance re-using the failed instance's index inherits
				// its origin identity and must continue its seq numbering;
				// fresh instances start clean.
				restoreTE(ti, meta, teID, j == failedIdx)
				insts[j] = ti
			}
			ts.insts = insts
			started = append(started, insts...)
		}
		ts.bumpInstances()
		// Checkpoint watermark bookkeeping restarts for the new layout.
		ts.ckptWM = nil
		ts.mu.Unlock()
		for _, ti := range started {
			r.startWorker(ti)
		}
	}

	// Restart the checkpoint loops for the restored instances.
	if r.opts.Mode != checkpoint.ModeOff {
		for _, si := range newInsts {
			r.startCheckpointLoop(si)
		}
	}

	// Phase 3: replay. First evict permanently stuck gather waves — waves
	// whose external caller already gave up and that replay can never
	// complete. Evicting *before* replay keeps this deterministic: evicting
	// afterwards would race the asynchronously-enqueued replayed partials,
	// which can legitimately refill a pending wave while we scan. Then
	// re-deliver the failed node's own logged output (recovered from the
	// checkpoint) and the upstream replay logs; receivers dedup.
	evicted := r.evictStaleGathers()
	replayStart := time.Now()
	replayed := 0
	var rs routeScratch
	for _, teID := range accessing {
		ts := r.tes[teID]
		for edgeIdx, bufs := range meta.Buffered[teID] {
			if edgeIdx >= len(ts.out) {
				break
			}
			if len(bufs) == 0 {
				continue
			}
			// Whole-buffer batches keep the timed replay phase off the
			// per-item delivery cost the hot path no longer pays.
			r.deliverBatch(ts.out[edgeIdx], bufs, &rs)
			replayed += len(bufs)
		}
		replayed += r.replayInto(ts)
	}
	replayDur := time.Since(replayStart)

	return RecoveryStats{
		Restore:       restoreDur,
		Replay:        replayDur,
		Total:         time.Since(start),
		Replayed:      replayed,
		NewNodes:      n,
		GatherEvicted: evicted,
	}, nil
}

// evictStaleGathers drops pending gather waves that are permanently stuck:
// request/reply waves (nonzero request id) whose Call has already returned
// or timed out. Waves for outstanding Calls and fire-and-forget waves
// (request id 0) are kept — replayed duplicates can still refill them.
func (r *Runtime) evictStaleGathers() int {
	stale := func(reqID uint64) bool {
		return reqID != 0 && !r.callWaiting(reqID)
	}
	evicted := 0
	for _, ts := range r.tes {
		if !ts.hasInAll {
			continue
		}
		for _, ti := range ts.instances() {
			if ti.gather == nil || ti.killed.Load() {
				continue
			}
			evicted += ti.gather.Evict(stale)
		}
	}
	return evicted
}

// restoreTE initialises a replacement TE instance from checkpoint metadata.
// withIdentity restores the dedup watermarks and output seq counter (for
// the instance that inherits the failed instance's origin); other instances
// still restore watermarks so replayed duplicates covered by the snapshot
// are filtered.
func restoreTE(ti *teInstance, meta checkpoint.Meta, teID int, withIdentity bool) {
	if wm, ok := meta.Watermarks[teID]; ok {
		ti.dedup.Restore(wm)
	}
	if withIdentity {
		if seq, ok := meta.OutSeqs[teID]; ok {
			ti.seqCtr.Store(seq)
		}
		if bufs, ok := meta.Buffered[teID]; ok {
			for edgeIdx, items := range bufs {
				if edgeIdx >= len(ti.outBufs) {
					break
				}
				for _, it := range items {
					ti.outBufs[edgeIdx].Append(it)
				}
			}
		}
	}
}

// replayInto re-delivers every upstream replay-log item on edges feeding
// the TE. Routing recomputes with the current instance count, so items land
// on the right (possibly re-partitioned) instances; dedup filters items the
// restored checkpoint already covers and items surviving instances have
// processed.
func (r *Runtime) replayInto(ts *teState) int {
	replayed := 0
	var rs routeScratch
	if ts.srcBuf != nil {
		// Entry routing is per item by design (the key or seq picks the
		// instance), so the source log replays item by item.
		for _, it := range ts.srcBuf.Replay() {
			r.routeToEntry(ts, it)
			replayed++
		}
	}
	for _, e := range r.graph.InEdges(ts.def.ID) {
		from := r.tes[e.From]
		edgeIdx := -1
		for i, oe := range from.out {
			if oe.def == e {
				edgeIdx = i
				break
			}
		}
		if edgeIdx < 0 {
			continue
		}
		for _, up := range from.instances() {
			if up.killed.Load() {
				continue
			}
			// Replay() returns a caller-owned copy, so the whole buffer can
			// go through the batch path in one call.
			if items := up.outBufs[edgeIdx].Replay(); len(items) > 0 {
				r.deliverBatch(from.out[edgeIdx], items, &rs)
				replayed += len(items)
			}
		}
	}
	return replayed
}

// Drain blocks until all instance queues are empty and processing has
// quiesced, or the timeout elapses. Experiments use it to measure full
// recovery (including re-processing).
func (r *Runtime) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if r.quiet() {
			// Double-check after a settle delay: emissions may be in flight.
			time.Sleep(2 * time.Millisecond)
			if r.quiet() {
				return true
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

func (r *Runtime) quiet() bool {
	// Items logged for a peer worker but not yet acked are still in flight:
	// a drain that ignored them would let a coordinator checkpoint cut with
	// items on the wire.
	if r.net != nil && r.net.pending.Load() > 0 {
		return false
	}
	for _, ts := range r.tes {
		for _, ti := range ts.instances() {
			// queued covers both queued batches and the batch currently
			// being processed (workers decrement only after the flush), so
			// quiescence here implies emissions have propagated downstream.
			if !ti.killed.Load() && ti.queued.Load() > 0 {
				return false
			}
		}
	}
	return true
}
