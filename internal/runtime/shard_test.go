package runtime

import "testing"

// TestShardSplitCoversRange checks that every (total, workers) split is a
// partition of [0, total): contiguous, disjoint, complete, and with the
// remainder spread over the low workers.
func TestShardSplitCoversRange(t *testing.T) {
	for total := 0; total <= 17; total++ {
		for workers := 1; workers <= 6; workers++ {
			covered := 0
			next := 0
			for w := 0; w < workers; w++ {
				first, cnt := shardSplit(total, w, workers)
				if cnt < 0 {
					t.Fatalf("shardSplit(%d,%d,%d): negative count %d", total, w, workers, cnt)
				}
				if first != next {
					t.Fatalf("shardSplit(%d,%d,%d): first %d, want contiguous %d", total, w, workers, first, next)
				}
				next = first + cnt
				covered += cnt
			}
			if covered != total {
				t.Fatalf("shardSplit(%d,*,%d) covers %d instances", total, workers, covered)
			}
			if workers > 1 {
				_, c0 := shardSplit(total, 0, workers)
				_, cl := shardSplit(total, workers-1, workers)
				if c0 < cl {
					t.Fatalf("shardSplit(%d,*,%d): low worker %d < high worker %d", total, workers, c0, cl)
				}
			}
		}
	}
}

// TestShardOwnerInvertsSplit checks that shardOwner names exactly the
// worker whose split contains each global instance.
func TestShardOwnerInvertsSplit(t *testing.T) {
	for total := 1; total <= 17; total++ {
		for workers := 1; workers <= 6; workers++ {
			for g := 0; g < total; g++ {
				w := shardOwner(total, workers, g)
				first, cnt := shardSplit(total, w, workers)
				if g < first || g >= first+cnt {
					t.Fatalf("shardOwner(%d,%d,%d)=%d, but that worker owns [%d,%d)", total, workers, g, w, first, first+cnt)
				}
			}
		}
	}
}

// TestShardForDefaults checks the fallback for names absent from the shard
// table: a single global instance living on worker 0.
func TestShardForDefaults(t *testing.T) {
	sh := shardFor(nil, "missing", 0, 3)
	if sh.Total != 1 || sh.First != 0 || sh.Count != 1 {
		t.Fatalf("worker 0 default shard = %+v, want single instance", sh)
	}
	sh = shardFor(nil, "missing", 2, 3)
	if sh.Total != 1 || sh.Count != 0 {
		t.Fatalf("worker 2 default shard = %+v, want empty slice of 1", sh)
	}
}
