package runtime

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/state"
)

// cycleGraph builds a two-TE iterative loop: the entry TE ping re-emits any
// item whose hop count is below limit, pong always bounces it back
// incremented. An injected item with value 0 therefore makes limit/2+1
// visits to ping and limit/2 to pong (limit must be even) — deterministic
// counters, independent of scheduling.
func cycleGraph(limit int) *core.Graph {
	g := core.NewGraph("cycle")
	ping := g.AddTE("ping", func(ctx core.Context, it core.Item) {
		if v := it.Value.(int); v < limit {
			ctx.Emit(0, it.Key, v+1)
		}
	}, nil, true)
	pong := g.AddTE("pong", func(ctx core.Context, it core.Item) {
		ctx.Emit(0, it.Key, it.Value.(int)+1)
	}, nil, false)
	g.Connect(ping, pong, core.DispatchOneToAny)
	g.Connect(pong, ping, core.DispatchOneToAny)
	return g
}

// TestCyclicFloodNoDeadlock is the tentpole regression: before overflow
// parking, enqueue blocked forever on a full destination queue, so a cyclic
// topology with tiny queues wedged as soon as both instances' queues filled
// — ping's worker blocked sending to pong while pong's worker blocked
// sending to ping. With lossless parking no worker ever blocks on another
// worker's queue, so the flood must fully drain and every hop must run
// exactly once.
func TestCyclicFloodNoDeadlock(t *testing.T) {
	const injected, limit = 128, 64
	r, err := Deploy(cycleGraph(limit), Options{QueueLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	for k := uint64(0); k < injected; k++ {
		if err := r.Inject("ping", k, 0); err != nil {
			t.Fatal(err)
		}
	}
	if !r.Drain(60 * time.Second) {
		t.Fatal("cyclic flood did not drain (dispatch deadlock?)")
	}
	if got, want := r.Processed("ping"), int64(injected*(limit/2+1)); got != want {
		t.Fatalf("ping processed %d items, want %d", got, want)
	}
	if got, want := r.Processed("pong"), int64(injected*limit/2); got != want {
		t.Fatalf("pong processed %d items, want %d", got, want)
	}
}

// keyedEntryGraph: a keyed entry writing straight into a partitioned
// dictionary — the minimal shape for admission and entry-routing tests.
func keyedEntryGraph() *core.Graph {
	g := core.NewGraph("keyed-entry")
	se := g.AddSE("store", core.KindPartitioned, state.TypeKVMap, nil)
	g.AddTE("put", func(ctx core.Context, it core.Item) {
		ctx.Store().(state.KV).Put(it.Key, it.Value.([]byte))
	}, &core.Access{SE: se, Mode: core.AccessByKey}, true)
	return g
}

// TestInjectBatchEquivalence drives the same item stream through per-item
// Inject and chunked InjectBatch and requires identical SE contents and
// per-instance dedup watermarks: batching the entry path must change
// admission and logging cost, never routing or dispatch semantics.
func TestInjectBatchEquivalence(t *testing.T) {
	const parts, injected, chunk = 3, 300, 64
	type snapshot struct {
		contents   []map[uint64]string
		watermarks []map[uint64]uint64
	}
	run := func(batched bool) snapshot {
		r, err := Deploy(keyedEntryGraph(), Options{
			Partitions: map[string]int{"store": parts},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Stop()
		if batched {
			for start := 0; start < injected; start += chunk {
				end := start + chunk
				if end > injected {
					end = injected
				}
				items := make([]InjectItem, 0, end-start)
				for k := start; k < end; k++ {
					items = append(items, InjectItem{Key: uint64(k), Value: []byte(fmt.Sprintf("v%d", k))})
				}
				if err := r.InjectBatch("put", items); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			for k := 0; k < injected; k++ {
				if err := r.Inject("put", uint64(k), []byte(fmt.Sprintf("v%d", k))); err != nil {
					t.Fatal(err)
				}
			}
		}
		if !r.Drain(testTimeout) {
			t.Fatalf("batched=%v did not drain", batched)
		}
		var snap snapshot
		for i := 0; i < parts; i++ {
			st, err := r.StateStore("store", i)
			if err != nil {
				t.Fatal(err)
			}
			m := map[uint64]string{}
			st.(*state.KVMap).ForEach(func(k uint64, v []byte) bool {
				m[k] = string(v)
				return true
			})
			snap.contents = append(snap.contents, m)
		}
		ts, err := r.te("put")
		if err != nil {
			t.Fatal(err)
		}
		for _, ti := range ts.instances() {
			snap.watermarks = append(snap.watermarks, ti.dedup.Watermarks())
		}
		return snap
	}

	a, b := run(false), run(true)
	for i := 0; i < parts; i++ {
		if len(a.contents[i]) != len(b.contents[i]) {
			t.Fatalf("partition %d: per-item has %d keys, batched has %d",
				i, len(a.contents[i]), len(b.contents[i]))
		}
		for k, v := range a.contents[i] {
			if b.contents[i][k] != v {
				t.Fatalf("partition %d key %d: per-item %q, batched %q", i, k, v, b.contents[i][k])
			}
		}
	}
	if len(a.watermarks) != len(b.watermarks) {
		t.Fatalf("watermark instance counts differ: %d vs %d", len(a.watermarks), len(b.watermarks))
	}
	for i := range a.watermarks {
		if len(a.watermarks[i]) != len(b.watermarks[i]) {
			t.Fatalf("instance %d watermark origins differ", i)
		}
		for o, s := range a.watermarks[i] {
			if b.watermarks[i][o] != s {
				t.Fatalf("instance %d origin %d: watermark %d vs %d", i, o, s, b.watermarks[i][o])
			}
		}
	}
}

// gateGraph: an entry TE that blocks in its function until the gate closes,
// freezing the pipeline with deterministic backlog accounting (the worker
// holds one in-flight item; nothing drains until release).
func gateGraph(gate chan struct{}) *core.Graph {
	g := core.NewGraph("gate")
	g.AddTE("gate", func(ctx core.Context, it core.Item) {
		<-gate
	}, nil, true)
	return g
}

// TestShedPolicyReturnsErrOverloaded pins the Shed admission contract: with
// the pipeline frozen, exactly OverflowLen items are admitted (backlog
// bound), every further offer fails fast with the typed error, the shed
// counter matches the rejections, and the admitted items all process after
// release — admission never loses what it accepted.
func TestShedPolicyReturnsErrOverloaded(t *testing.T) {
	const capacity, offered = 8, 30
	gate := make(chan struct{})
	r, err := Deploy(gateGraph(gate), Options{
		QueueLen:     1,
		OverflowLen:  capacity,
		InjectPolicy: InjectShed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	accepted, shed := 0, 0
	for i := 0; i < offered; i++ {
		err := r.Inject("gate", uint64(i), nil)
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, ErrOverloaded):
			shed++
		default:
			t.Fatalf("inject %d: unexpected error %v", i, err)
		}
	}
	if accepted != capacity {
		t.Fatalf("accepted %d items, want exactly OverflowLen=%d", accepted, capacity)
	}
	if shed != offered-capacity {
		t.Fatalf("shed %d items, want %d", shed, offered-capacity)
	}
	if got := r.Shed("gate"); got != int64(shed) {
		t.Fatalf("Shed counter = %d, want %d", got, shed)
	}
	// A batch over a full backlog sheds whole, all-or-nothing.
	if err := r.InjectBatch("gate", make([]InjectItem, 5)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("InjectBatch over capacity: got %v, want ErrOverloaded", err)
	}
	if got := r.Shed("gate"); got != int64(shed+5) {
		t.Fatalf("Shed counter after batch = %d, want %d", got, shed+5)
	}
	var st TEStats
	for _, te := range r.Stats().TEs {
		if te.Name == "gate" {
			st = te
		}
	}
	if st.Shed != int64(shed+5) {
		t.Fatalf("stats shed = %d, want %d", st.Shed, shed+5)
	}
	if st.Queued != capacity {
		t.Fatalf("stats queued = %d, want %d", st.Queued, capacity)
	}

	close(gate)
	if !r.Drain(testTimeout) {
		t.Fatal("did not drain after release")
	}
	if got := r.Processed("gate"); got != int64(capacity) {
		t.Fatalf("processed %d, want %d (admitted items must not be lost)", got, capacity)
	}
}

// TestBlockDeadlineShedsTyped: the Block policy with a deadline converts an
// overlong admission wait into the same typed rejection, and the admission
// latency distribution records the wait.
func TestBlockDeadlineShedsTyped(t *testing.T) {
	const capacity = 4
	gate := make(chan struct{})
	r, err := Deploy(gateGraph(gate), Options{
		QueueLen:       1,
		OverflowLen:    capacity,
		InjectPolicy:   InjectBlock,
		InjectDeadline: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	for i := 0; i < capacity; i++ {
		if err := r.Inject("gate", uint64(i), nil); err != nil {
			t.Fatalf("inject %d within capacity: %v", i, err)
		}
	}
	if err := r.Inject("gate", 99, nil); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("inject over capacity: got %v, want ErrOverloaded after deadline", err)
	}
	if got := r.Shed("gate"); got != 1 {
		t.Fatalf("shed = %d, want 1", got)
	}
	if r.AdmitLatency.Count() == 0 {
		t.Fatal("admission latency distribution recorded nothing")
	}
	if r.AdmitLatency.Max() == 0 {
		t.Fatal("deadline wait must record a nonzero admission latency")
	}
	close(gate)
	if !r.Drain(testTimeout) {
		t.Fatal("did not drain after release")
	}
}

// TestEntryRoutingFallsBackToLiveInstance: load-balanced entry dispatch
// must skip killed instances instead of dropping their share of the stream
// on the floor (the pre-fix behaviour silently lost every third item here).
func TestEntryRoutingFallsBackToLiveInstance(t *testing.T) {
	const injected = 30
	g := core.NewGraph("lb")
	g.AddTE("work", func(ctx core.Context, it core.Item) {}, nil, true)
	r, err := Deploy(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if err := r.ScaleUp("work"); err != nil {
		t.Fatal(err)
	}
	if err := r.ScaleUp("work"); err != nil {
		t.Fatal(err)
	}
	ts, err := r.te("work")
	if err != nil {
		t.Fatal(err)
	}
	insts := ts.instances()
	if len(insts) != 3 {
		t.Fatalf("instances = %d, want 3", len(insts))
	}
	r.KillNode(insts[1].node.ID)
	for k := uint64(0); k < injected; k++ {
		if err := r.Inject("work", k, nil); err != nil {
			t.Fatal(err)
		}
	}
	if !r.Drain(testTimeout) {
		t.Fatal("did not drain")
	}
	if got := r.Processed("work"); got != injected {
		t.Fatalf("processed %d, want %d (killed instance swallowed its share)", got, injected)
	}
}

// TestKeyedEntryParksForDeadPartition: items keyed to a failed partition
// must not reroute across partitions (wrong state) and must not vanish —
// they park in the dead instance's overflow where stats can see them.
func TestKeyedEntryParksForDeadPartition(t *testing.T) {
	// OverflowLen must cover the parked items: admission still bounds how
	// much a dead partition can accumulate (a 7th key here would block or
	// shed), which is itself part of the contract under test.
	r, err := Deploy(keyedEntryGraph(), Options{
		Partitions:  map[string]int{"store": 2},
		QueueLen:    1,
		OverflowLen: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	ts, err := r.te("put")
	if err != nil {
		t.Fatal(err)
	}
	insts := ts.instances()
	r.KillNode(insts[1].node.ID)
	// Let the killed worker observe its dead channel and exit: a worker
	// mid-select can still legitimately drain one more batch (the general
	// fail-any-time race, covered by replay), which would skew the parked
	// count this test pins down.
	time.Sleep(50 * time.Millisecond)

	// Keys that hash to the dead partition.
	var keys []uint64
	for k := uint64(0); len(keys) < 6; k++ {
		if statePartition(k, 2) == 1 {
			keys = append(keys, k)
		}
	}
	for _, k := range keys {
		if err := r.Inject("put", k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	var st TEStats
	for _, te := range r.Stats().TEs {
		if te.Name == "put" {
			st = te
		}
	}
	// QueueLen=1: one item sits in the dead instance's channel, the rest
	// park in its overflow — visible, not silently dropped.
	if want := len(keys) - 1; st.Overflow != want {
		t.Fatalf("overflow = %d, want %d parked items", st.Overflow, want)
	}
	if got := r.Processed("put"); got != 0 {
		t.Fatalf("processed %d, want 0 (nothing may reroute to the live partition)", got)
	}
	if st0, _ := r.StateStore("store", 0); st0.NumEntries() != 0 {
		t.Fatalf("live partition gained %d entries from rerouted keyed items", st0.NumEntries())
	}
}

// TestKeyedEntryRecoversParkedItems: with fault tolerance on, items keyed
// to a failed partition wait (logged in the source buffer) and are
// re-delivered by replay once the partition recovers — end-to-end lossless.
func TestKeyedEntryRecoversParkedItems(t *testing.T) {
	r, err := Deploy(keyedEntryGraph(), Options{
		Partitions: map[string]int{"store": 2},
		Mode:       checkpoint.ModeAsync,
		Interval:   time.Hour, // manual checkpoints only
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	// Anchor a checkpoint so the partition can be restored.
	if _, err := r.CheckpointNow("store", 1); err != nil {
		t.Fatal(err)
	}
	ts, err := r.te("put")
	if err != nil {
		t.Fatal(err)
	}
	r.KillNode(ts.instances()[1].node.ID)

	var keys []uint64
	for k := uint64(0); len(keys) < 5; k++ {
		if statePartition(k, 2) == 1 {
			keys = append(keys, k)
		}
	}
	for _, k := range keys {
		if err := r.Inject("put", k, []byte(fmt.Sprintf("v%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Recover("store", 1); err != nil {
		t.Fatal(err)
	}
	if !r.Drain(testTimeout) {
		t.Fatal("did not drain after recovery")
	}
	st1, err := r.StateStore("store", 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		v, ok := st1.(state.KV).Get(k)
		if !ok {
			t.Fatalf("key %d lost across partition failure", k)
		}
		if want := fmt.Sprintf("v%d", k); string(v) != want {
			t.Fatalf("key %d = %q, want %q", k, v, want)
		}
	}
}

// TestBackpressureSignalFeedsStats: a frozen TE accumulates parked overflow
// past its watermark and must surface Backpressured in Stats — the signal
// the bottleneck detector and operators key off.
func TestBackpressureSignalFeedsStats(t *testing.T) {
	gate := make(chan struct{})
	g := core.NewGraph("bp")
	src := g.AddTE("src", func(ctx core.Context, it core.Item) {
		// Fan out so the downstream TE saturates while ingress stays
		// under its own entry bound.
		for f := 0; f < 8; f++ {
			ctx.Emit(0, it.Key*8+uint64(f), nil)
		}
	}, nil, true)
	slow := g.AddTE("slow", func(ctx core.Context, it core.Item) {
		<-gate
	}, nil, false)
	g.Connect(src, slow, core.DispatchOneToAny)
	r, err := Deploy(g, Options{QueueLen: 1, OverflowLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	for k := uint64(0); k < 4; k++ {
		if err := r.Inject("src", k, nil); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(testTimeout)
	for {
		var st TEStats
		for _, te := range r.Stats().TEs {
			if te.Name == "slow" {
				st = te
			}
		}
		if st.Backpressured && st.Overflow >= 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slow TE never reported backpressure (overflow=%d)", st.Overflow)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	if !r.Drain(testTimeout) {
		t.Fatal("did not drain after release")
	}
	if got := r.Processed("slow"); got != 32 {
		t.Fatalf("slow processed %d, want 32 (parked items must all deliver)", got)
	}
}
