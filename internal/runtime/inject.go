package runtime

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/state"
)

// Errors returned by the external interface.
var (
	ErrNotEntry = errors.New("runtime: TE is not an entry point")
	ErrTimeout  = errors.New("runtime: call timed out")
	ErrStopped  = errors.New("runtime: runtime stopped")
	// ErrOverloaded is returned by Inject/Call/InjectBatch when admission
	// control rejects the item: the Shed policy fails fast, and the Block
	// policy gives up once its deadline passes or the target entry
	// instance is down. Shed items are never logged to the source replay
	// buffer — a rejected item is the caller's to retry.
	ErrOverloaded = errors.New("runtime: overloaded")
)

// InjectPolicy selects how ingress admission reacts when an entry TE is
// over its OverflowLen backlog or any instance in the graph is saturated.
type InjectPolicy int

const (
	// InjectBlock waits for admission credit, bounded by InjectDeadline
	// (0 = forever). The default; with no deadline it preserves the
	// historical semantics of blocking callers on a congested pipeline.
	InjectBlock InjectPolicy = iota
	// InjectShed fails fast with ErrOverloaded instead of waiting.
	InjectShed
)

// String names the policy (used by CLI flag plumbing).
func (p InjectPolicy) String() string {
	switch p {
	case InjectBlock:
		return "block"
	case InjectShed:
		return "shed"
	default:
		return fmt.Sprintf("InjectPolicy(%d)", int(p))
	}
}

// admitPollInterval paces the Block-policy credit wait. Admission is an
// external boundary; a 100µs poll costs the waiting caller nothing
// measurable and keeps the runtime free of per-instance condition
// variables on the dispatch path.
const admitPollInterval = 100 * time.Microsecond

// entryLoad sums the queued items (channel + parked overflow + in-flight
// batch) across all of a TE's instances, and counts the live ones. Dead
// instances contribute to the backlog: their parked items are real
// unprocessed work that only recovery can drain, and admitting against
// them would grow the parking lot without bound.
func entryLoad(ts *teState) (backlog int64, live int) {
	for _, ti := range ts.instances() {
		backlog += ti.queued.Load()
		if !ti.killed.Load() && !ti.node.Failed() {
			live++
		}
	}
	return backlog, live
}

// backpressured reports whether any TE in the graph has more parked
// overflow on its live instances than its capacity-scaled watermark,
// OverflowLen x live instances. While true, ingress credits are revoked:
// admission stalls (or sheds) so total parked memory stays bounded by what
// was already admitted times the graph's fan-out. Scaling the watermark
// with the live instance count means adding instances to a bottleneck TE
// restores credit immediately — new instances absorb fresh load while the
// backlogged one drains, instead of ingress waiting on the slow drain.
// Dead instances are excluded: their parked items (entry items keyed to a
// failed partition) drain only through recovery, and must not stall the
// rest of the graph meanwhile.
func (r *Runtime) backpressured() bool {
	// Items logged for a remote peer but not yet acked are parked work too:
	// a full (or dead) downstream worker must revoke ingress credit here
	// exactly as local overflow does, or the sender's queues grow without
	// bound while the receiver rejects.
	if r.net != nil && r.net.pending.Load() >= int64(r.opts.OverflowLen) {
		return true
	}
	// Nothing parked anywhere (the common case) means no TE can be over
	// its watermark — skip the per-instance scan on the admission fast
	// path, which runs once per Inject and per 100µs of every blocked
	// caller.
	if r.parked.Load() == 0 {
		return false
	}
	for _, ts := range r.tes {
		var parked int64
		live := 0
		for _, ti := range ts.instances() {
			if ti.killed.Load() || ti.node.Failed() {
				continue
			}
			live++
			parked += ti.overflow.Items()
		}
		if live > 0 && parked >= int64(r.opts.OverflowLen)*int64(live) {
			return true
		}
	}
	return false
}

// admissible reports whether n more items fit the entry TE's credit: no TE
// anywhere in the graph is backpressured, and the entry backlog stays
// within OverflowLen per live instance. An idle entry always admits, so a
// single batch larger than the bound is not rejected forever — the bound
// then applies between batches.
func (r *Runtime) admissible(ts *teState, n int) bool {
	if r.backpressured() {
		return false
	}
	q, live := entryLoad(ts)
	if live == 0 {
		live = 1
	}
	return q == 0 || q+int64(n) <= int64(r.opts.OverflowLen)*int64(live)
}

// admit applies the configured ingress policy for n items offered to an
// entry TE, recording the admission wait. It returns nil once the items may
// enter, ErrOverloaded when they shed, and ErrStopped if the runtime shuts
// down mid-wait.
func (r *Runtime) admit(ts *teState, n int) error {
	if r.admissible(ts, n) {
		r.AdmitLatency.Record(0)
		return nil
	}
	if r.opts.InjectPolicy == InjectShed {
		ts.shed.Add(int64(n))
		return fmt.Errorf("%w: entry %q shed %d item(s)", ErrOverloaded, ts.def.Name, n)
	}
	start := time.Now()
	var deadline time.Time
	if r.opts.InjectDeadline > 0 {
		deadline = start.Add(r.opts.InjectDeadline)
	}
	for {
		select {
		case <-r.stopped:
			return ErrStopped
		default:
		}
		if r.admissible(ts, n) {
			r.AdmitLatency.Record(time.Since(start).Nanoseconds())
			return nil
		}
		if entryDown(ts) {
			// Nothing live is draining this TE's backlog; blocking would
			// wait on a recovery that may never be triggered.
			ts.shed.Add(int64(n))
			r.AdmitLatency.Record(time.Since(start).Nanoseconds())
			return fmt.Errorf("%w: entry %q has no live instance", ErrOverloaded, ts.def.Name)
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			ts.shed.Add(int64(n))
			r.AdmitLatency.Record(time.Since(start).Nanoseconds())
			return fmt.Errorf("%w: entry %q admission deadline exceeded", ErrOverloaded, ts.def.Name)
		}
		time.Sleep(admitPollInterval)
	}
}

// entryDown reports whether every instance of the TE is dead.
func entryDown(ts *teState) bool {
	for _, ti := range ts.instances() {
		if !ti.killed.Load() && !ti.node.Failed() {
			return false
		}
	}
	return true
}

// entryIndex picks the entry instance for an item. Partitioned access keys
// the item to its partition unconditionally — rerouting a keyed item across
// partitions would read and write the wrong state, so a dead partition's
// items park in its overflow (observable, and re-delivered by source replay
// once the partition recovers) instead of being dropped or rerouted.
// Anything else load-balances by seq and falls over to the next live
// instance, so a killed instance no longer swallows its share of the
// injected stream.
func entryIndex(ts *teState, insts []*teInstance, it core.Item) int {
	if ts.def.Access != nil && ts.def.Access.Mode == core.AccessByKey {
		if ts.shard.Total > 0 {
			// Sharded: the partition is a global identity. The coordinator
			// routes each key to the owning worker, so the local slot is
			// global minus the shard base; clamp defensively against a
			// misrouted item rather than indexing out of range.
			li := statePartition(it.Key, ts.shard.Total) - ts.shard.First
			if li < 0 || li >= len(insts) {
				li = 0
			}
			return li
		}
		return statePartition(it.Key, len(insts))
	}
	start := int(it.Seq % uint64(len(insts)))
	for i := 0; i < len(insts); i++ {
		idx := (start + i) % len(insts)
		if dst := insts[idx]; !dst.killed.Load() && !dst.node.Failed() {
			return idx
		}
	}
	// Everything is dead: park at the hashed slot; source replay re-routes
	// after recovery.
	return start
}

// injectTo admits, logs and routes one externally created item. The
// injection lock spans seq assignment through enqueue: two concurrent
// injectors must not be able to hand a later seq to an entry instance ahead
// of an earlier one, or the per-origin dedup watermark drops the overtaken
// item for good.
func (r *Runtime) injectTo(ts *teState, key, reqID uint64, value any) error {
	if err := r.admit(ts, 1); err != nil {
		return err
	}
	ts.injMu.Lock()
	defer ts.injMu.Unlock()
	insts := ts.instances()
	if len(insts) == 0 {
		return nil
	}
	it := core.Item{Origin: externalOrigin, Seq: r.extSeq.Add(1), Key: key, ReqID: reqID, Value: value}
	if ts.srcBuf != nil {
		ts.srcBuf.Append(it)
	}
	// The one-item wrap is the price of batch queues' ownership transfer
	// (the receiver keeps the slice); InjectBatch is the lever when entry
	// throughput dominates.
	r.enqueue(insts[entryIndex(ts, insts, it)], []core.Item{it})
	return nil
}

// routeToEntry dispatches an already-logged item to an entry instance; the
// replay path uses it to re-deliver source-buffer items with their original
// seqs.
func (r *Runtime) routeToEntry(ts *teState, it core.Item) {
	insts := ts.instances()
	if len(insts) == 0 {
		return
	}
	r.enqueue(insts[entryIndex(ts, insts, it)], []core.Item{it})
}

// statePartition mirrors dataflow routing so injection agrees with SE
// partition placement. It computes the partition directly — Router.Route
// would allocate a slice per injected item.
func statePartition(key uint64, n int) int {
	return state.PartitionKey(key, n)
}

// Inject delivers a fire-and-forget item to an entry TE, subject to the
// configured admission policy.
func (r *Runtime) Inject(teName string, key uint64, value any) error {
	ts, err := r.te(teName)
	if err != nil {
		return err
	}
	if !ts.def.Entry {
		return fmt.Errorf("%w: %q", ErrNotEntry, teName)
	}
	return r.injectTo(ts, key, 0, value)
}

// InjectItem is one externally offered item for InjectBatch.
type InjectItem struct {
	Key   uint64
	Value any
}

// InjectBatch delivers a batch of fire-and-forget items to an entry TE with
// one admission decision, one source-log append, one route and one enqueue
// per destination instance — the entry-throughput counterpart of the
// internal micro-batch hot path. Admission is all-or-nothing: either the
// whole batch enters (nil) or none of it does (ErrOverloaded/ErrStopped),
// so callers never have to reconstruct partial acceptance.
func (r *Runtime) InjectBatch(teName string, items []InjectItem) error {
	ts, err := r.te(teName)
	if err != nil {
		return err
	}
	if !ts.def.Entry {
		return fmt.Errorf("%w: %q", ErrNotEntry, teName)
	}
	if len(items) == 0 {
		return nil
	}
	if err := r.admit(ts, len(items)); err != nil {
		return err
	}
	ts.injMu.Lock()
	defer ts.injMu.Unlock()
	insts := ts.instances()
	if len(insts) == 0 {
		return nil
	}
	batch := make([]core.Item, len(items))
	for i := range items {
		batch[i] = core.Item{
			Origin: externalOrigin,
			Seq:    r.extSeq.Add(1),
			Key:    items[i].Key,
			Value:  items[i].Value,
		}
	}
	if ts.srcBuf != nil {
		ts.srcBuf.AppendBatch(batch)
	}
	if len(insts) == 1 {
		// Single destination: the freshly built batch transfers ownership
		// whole, with no grouping pass or copy.
		r.enqueue(insts[0], batch)
		return nil
	}
	// Group per destination in two passes (count, then fill pre-sized
	// receiver-owned sub-batches), mirroring enqueueGrouped.
	counts := make([]int, len(insts))
	targets := make([]int, len(batch))
	for i := range batch {
		t := entryIndex(ts, insts, batch[i])
		targets[i] = t
		counts[t]++
	}
	subs := make([][]core.Item, len(insts))
	for t, n := range counts {
		if n > 0 {
			subs[t] = make([]core.Item, 0, n)
		}
	}
	for i, t := range targets {
		subs[t] = append(subs[t], batch[i])
	}
	for t, sub := range subs {
		if len(sub) > 0 {
			r.enqueue(insts[t], sub)
		}
	}
	return nil
}

// Call injects a request item and waits for a Reply from the dataflow,
// recording the round-trip latency. It is the client path for
// request/reply workflows such as getRec in the CF application.
func (r *Runtime) Call(teName string, key uint64, value any, timeout time.Duration) (any, error) {
	ts, err := r.te(teName)
	if err != nil {
		return nil, err
	}
	if !ts.def.Entry {
		return nil, fmt.Errorf("%w: %q", ErrNotEntry, teName)
	}
	reqID := r.reqSeq.Add(1)
	ch := make(chan any, 1)
	r.replyMu.Lock()
	r.replies[reqID] = ch
	r.replyMu.Unlock()
	defer func() {
		r.replyMu.Lock()
		delete(r.replies, reqID)
		r.replyMu.Unlock()
	}()

	start := time.Now()
	if err := r.injectTo(ts, key, reqID, value); err != nil {
		return nil, err
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case v := <-ch:
		r.CallLatency.Record(time.Since(start))
		return v, nil
	case <-timer.C:
		return nil, ErrTimeout
	case <-r.stopped:
		return nil, ErrStopped
	}
}

// Shed reports the number of externally offered items rejected by
// admission control for the named TE.
func (r *Runtime) Shed(teName string) int64 {
	ts, err := r.te(teName)
	if err != nil {
		return 0
	}
	return ts.shed.Load()
}

// callWaiting reports whether an external Call is still waiting on the
// request id. Every graph has at most one gather stage per request path
// (the merge that replies), so a nonzero-reqID partial with no waiting
// Call can only belong to a completed or abandoned request.
func (r *Runtime) callWaiting(reqID uint64) bool {
	r.replyMu.Lock()
	_, ok := r.replies[reqID]
	r.replyMu.Unlock()
	return ok
}

// resolve delivers a reply to a waiting Call; late or duplicate replies
// (e.g. regenerated during replay) are dropped.
func (r *Runtime) resolve(reqID uint64, value any) {
	if reqID == 0 {
		return
	}
	r.replyMu.Lock()
	ch, ok := r.replies[reqID]
	r.replyMu.Unlock()
	if !ok {
		return
	}
	select {
	case ch <- value:
	default:
	}
}
