package runtime

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/state"
)

// Errors returned by the external interface.
var (
	ErrNotEntry = errors.New("runtime: TE is not an entry point")
	ErrTimeout  = errors.New("runtime: call timed out")
	ErrStopped  = errors.New("runtime: runtime stopped")
)

// injectTo routes an externally created item to the entry TE's instances,
// logging it in the source replay buffer when fault tolerance is on. Entry
// dispatch follows the TE's state access: partitioned access uses the key,
// anything else load-balances.
func (r *Runtime) injectTo(ts *teState, it core.Item) {
	if ts.srcBuf != nil {
		ts.srcBuf.Append(it)
	}
	r.routeToEntry(ts, it)
}

// routeToEntry dispatches an (already logged) item to an entry instance,
// reading the instance set from the epoch-versioned snapshot cache.
func (r *Runtime) routeToEntry(ts *teState, it core.Item) {
	insts := ts.instances()
	if len(insts) == 0 {
		return
	}
	var target int
	if ts.def.Access != nil && ts.def.Access.Mode == core.AccessByKey {
		target = statePartition(it.Key, len(insts))
	} else {
		target = int(it.Seq % uint64(len(insts)))
	}
	dst := insts[target]
	if dst.killed.Load() || dst.node.Failed() {
		return
	}
	// The one-item wrap is the price of batch queues' ownership transfer
	// (the receiver keeps the slice); injection still nets fewer
	// allocations than pre-batching, which paid an instance-slice copy
	// plus a route slice per item here. Batching the external Inject API
	// itself is the remaining lever if entry throughput ever dominates.
	r.enqueue(dst, []core.Item{it})
}

// statePartition mirrors dataflow routing so injection agrees with SE
// partition placement. It computes the partition directly — Router.Route
// would allocate a slice per injected item.
func statePartition(key uint64, n int) int {
	return state.PartitionKey(key, n)
}

// Inject delivers a fire-and-forget item to an entry TE.
func (r *Runtime) Inject(teName string, key uint64, value any) error {
	ts, err := r.te(teName)
	if err != nil {
		return err
	}
	if !ts.def.Entry {
		return fmt.Errorf("%w: %q", ErrNotEntry, teName)
	}
	it := core.Item{Origin: externalOrigin, Seq: r.extSeq.Add(1), Key: key, Value: value}
	r.injectTo(ts, it)
	return nil
}

// Call injects a request item and waits for a Reply from the dataflow,
// recording the round-trip latency. It is the client path for
// request/reply workflows such as getRec in the CF application.
func (r *Runtime) Call(teName string, key uint64, value any, timeout time.Duration) (any, error) {
	ts, err := r.te(teName)
	if err != nil {
		return nil, err
	}
	if !ts.def.Entry {
		return nil, fmt.Errorf("%w: %q", ErrNotEntry, teName)
	}
	reqID := r.reqSeq.Add(1)
	ch := make(chan any, 1)
	r.replyMu.Lock()
	r.replies[reqID] = ch
	r.replyMu.Unlock()
	defer func() {
		r.replyMu.Lock()
		delete(r.replies, reqID)
		r.replyMu.Unlock()
	}()

	start := time.Now()
	it := core.Item{
		Origin: externalOrigin,
		Seq:    r.extSeq.Add(1),
		Key:    key,
		ReqID:  reqID,
		Value:  value,
	}
	r.injectTo(ts, it)

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case v := <-ch:
		r.CallLatency.Record(time.Since(start))
		return v, nil
	case <-timer.C:
		return nil, ErrTimeout
	case <-r.stopped:
		return nil, ErrStopped
	}
}

// callWaiting reports whether an external Call is still waiting on the
// request id. Every graph has at most one gather stage per request path
// (the merge that replies), so a nonzero-reqID partial with no waiting
// Call can only belong to a completed or abandoned request.
func (r *Runtime) callWaiting(reqID uint64) bool {
	r.replyMu.Lock()
	_, ok := r.replies[reqID]
	r.replyMu.Unlock()
	return ok
}

// resolve delivers a reply to a waiting Call; late or duplicate replies
// (e.g. regenerated during replay) are dropped.
func (r *Runtime) resolve(reqID uint64, value any) {
	if reqID == 0 {
		return
	}
	r.replyMu.Lock()
	ch, ok := r.replies[reqID]
	r.replyMu.Unlock()
	if !ok {
		return
	}
	select {
	case ch <- value:
	default:
	}
}
