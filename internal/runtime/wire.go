package runtime

import (
	"repro/internal/wire/flat"
)

// wireRoundTrip deep-copies a payload through the flat value codec,
// returning the decoded copy. Used by the WireCheck option to prove that
// every value crossing a TE boundary could cross a real network link — the
// paper's location independence restriction (§4.1). Common payload types
// take the tag table; anything else rides the gob fallback, so payload
// types outside it must be gob-registered and a type that cannot cross the
// wire (chan, func) errors here, at the boundary it would have broken.
func wireRoundTrip(v any) (any, error) {
	return flat.RoundTripValue(v)
}
