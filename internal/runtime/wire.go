package runtime

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// wireRoundTrip gob-encodes and decodes a payload, returning the decoded
// copy. Used by the WireCheck option to prove that every value crossing a
// TE boundary could cross a real network link — the paper's location
// independence restriction (§4.1). Payload types must be gob-registered.
func wireRoundTrip(v any) (any, error) {
	var buf bytes.Buffer
	// Encode through an interface wrapper so the concrete type tag rides
	// along, exactly as the checkpoint buffer encoding does.
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return nil, fmt.Errorf("encode: %w", err)
	}
	var out any
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&out); err != nil {
		return nil, fmt.Errorf("decode: %w", err)
	}
	return out, nil
}
