package runtime

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/wire"
)

// Worker hosts one process's slice of a distributed SDG deployment: it
// answers the coordinator's wire protocol over any cluster.Handler carrier
// (a TCP server in cmd/sdg-worker, an in-process Local transport in tests)
// and drives a local Runtime built from the graph registry. The local
// runtime always runs with checkpointing off — the coordinator owns
// checkpoints, because a snapshot stored inside the worker process dies
// with it.
type Worker struct {
	mu     sync.Mutex
	rt     *Runtime
	graph  string
	dialer func(addr string) (cluster.Transport, error)

	// snapMu serialises the streaming snapshot/restore protocol state.
	// Handlers hold it across capture and apply calls, which acquire the
	// runtime's pause and state locks underneath.
	//
	//sdg:lockorder snapstream 35
	snapMu  sync.Mutex
	serving *snapServe
	restore *restoreApply
	// restoreDone remembers the last completed restore stream so a
	// RestoreEnd retried after a lost ack is acked again instead of
	// failing the recovery.
	restoreDone uint64

	stopOnce sync.Once
	done     chan struct{}
}

// snapServe is one open snapshot pull stream. last caches the most recent
// reply frame so a retried SnapNext re-serves identical bytes.
type snapServe struct {
	id      uint64
	sc      *snapCapture
	lastSeq uint64
	last    []byte
	done    bool
}

// restoreApply is one open restore push stream; next is the seq the
// worker expects.
type restoreApply struct {
	id   uint64
	next uint64
}

// NewWorker returns an idle worker awaiting a Deploy message.
func NewWorker() *Worker {
	return &Worker{done: make(chan struct{})}
}

// SetDialer overrides how this worker reaches peer workers for cross-worker
// edges (default: cluster.Dial over TCP). Tests inject in-process transports
// here. Call before the coordinator deploys.
func (w *Worker) SetDialer(d func(addr string) (cluster.Transport, error)) {
	w.mu.Lock()
	w.dialer = d
	w.mu.Unlock()
}

// PendingEdgeItems reports items sitting in this worker's cross-worker edge
// send logs (zero once every downstream trim watermark has passed) — an
// observability hook for tests and operators.
func (w *Worker) PendingEdgeItems() int {
	rt, err := w.runtime()
	if err != nil {
		return 0
	}
	return rt.EdgeLogItems()
}

// OutBufItems reports items buffered in the runtime's local replay buffers
// (entry source buffers plus in-process out-edge buffers) — observability
// for the coordinator-driven local trim.
func (w *Worker) OutBufItems() int {
	rt, err := w.runtime()
	if err != nil {
		return 0
	}
	return rt.OutBufItems()
}

// Handler returns the wire-protocol dispatcher, ready to serve as a
// cluster.Server handler. Returned errors become error replies on the
// connection (they never kill it), so the coordinator sees rejections as
// *cluster.RemoteError.
func (w *Worker) Handler() cluster.Handler { return w.handle }

// Done is closed when a Stop message has been processed; process mains use
// it to exit.
func (w *Worker) Done() <-chan struct{} { return w.done }

// Close stops the hosted runtime (idempotent); transports are the caller's.
func (w *Worker) Close() {
	w.closeSnapStreams()
	w.mu.Lock()
	rt := w.rt
	w.mu.Unlock()
	if rt != nil {
		rt.Stop()
	}
	w.stopOnce.Do(func() { close(w.done) })
}

// closeSnapStreams abandons any open snapshot/restore stream — on shutdown
// and on re-deploy, where the stream's runtime is going away. An abandoned
// capture merges its dirty overlays back; an abandoned restore stays
// sealed until the coordinator starts over.
func (w *Worker) closeSnapStreams() {
	w.snapMu.Lock()
	defer w.snapMu.Unlock()
	if w.serving != nil {
		w.serving.sc.close()
		w.serving = nil
	}
	w.restore = nil
}

// runtime returns the deployed runtime or an error before deployment.
func (w *Worker) runtime() (*Runtime, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.rt == nil {
		return nil, fmt.Errorf("worker: no graph deployed")
	}
	return w.rt, nil
}

// handle dispatches one wire envelope.
func (w *Worker) handle(req []byte) ([]byte, error) {
	msgType, payload, err := wire.Decode(req)
	if err != nil {
		return nil, err
	}
	switch msgType {
	case wire.MsgDeploy:
		var m wire.Deploy
		if err := wire.Unmarshal(payload, &m); err != nil {
			return nil, err
		}
		return w.deploy(m)
	case wire.MsgInject:
		var m wire.Inject
		if err := wire.Unmarshal(payload, &m); err != nil {
			return nil, err
		}
		rt, err := w.runtime()
		if err != nil {
			return nil, err
		}
		if err := rt.InjectLogged(m.Task, m.Items); err != nil {
			return nil, err
		}
		return wire.Encode(wire.MsgInjectAck, wire.InjectAck{Accepted: len(m.Items)})
	case wire.MsgCall:
		var m wire.Call
		if err := wire.Unmarshal(payload, &m); err != nil {
			return nil, err
		}
		rt, err := w.runtime()
		if err != nil {
			return nil, err
		}
		timeout := time.Duration(m.TimeoutMs) * time.Millisecond
		if timeout <= 0 {
			timeout = 10 * time.Second
		}
		v, err := rt.CallItem(m.Task, m.Item, timeout)
		if err != nil {
			return nil, err
		}
		return wire.Encode(wire.MsgCallReply, wire.CallReply{Value: v})
	case wire.MsgHeartbeat:
		var m wire.Heartbeat
		if err := wire.Unmarshal(payload, &m); err != nil {
			return nil, err
		}
		ack := wire.HeartbeatAck{Seq: m.Seq}
		if rt, err := w.runtime(); err == nil {
			ack.Queued = rt.QueuedTotal()
		}
		return wire.Encode(wire.MsgHeartbeatAck, ack)
	case wire.MsgSnapshotReq:
		var m wire.SnapshotReq
		if err := wire.Unmarshal(payload, &m); err != nil {
			return nil, err
		}
		rt, err := w.runtime()
		if err != nil {
			return nil, err
		}
		snap, err := rt.SnapshotAll(m.Chunks)
		if err != nil {
			return nil, err
		}
		return wire.Encode(wire.MsgSnapshot, snap)
	case wire.MsgRestore:
		var m wire.Restore
		if err := wire.Unmarshal(payload, &m); err != nil {
			return nil, err
		}
		rt, err := w.runtime()
		if err != nil {
			return nil, err
		}
		if err := rt.ImportSnapshot(m.Snap); err != nil {
			return nil, err
		}
		return wire.Encode(wire.MsgRestoreAck, wire.RestoreAck{})
	case wire.MsgDumpReq:
		var m wire.DumpReq
		if err := wire.Unmarshal(payload, &m); err != nil {
			return nil, err
		}
		rt, err := w.runtime()
		if err != nil {
			return nil, err
		}
		kvs, err := rt.DumpKV(m.SE)
		if err != nil {
			return nil, err
		}
		dump := wire.Dump{Entries: make([]wire.KVEntry, 0, len(kvs))}
		for k, v := range kvs {
			dump.Entries = append(dump.Entries, wire.KVEntry{Key: k, Value: v})
		}
		return wire.Encode(wire.MsgDump, dump)
	case wire.MsgStatsReq:
		rt, err := w.runtime()
		if err != nil {
			return nil, err
		}
		stats := wire.Stats{
			Processed:  make(map[string]int64),
			Watermarks: make(map[string]map[uint64]uint64),
		}
		for _, ts := range rt.tes {
			name := ts.def.Name
			stats.Processed[name] = rt.Processed(name)
			if wm, err := rt.FoldedWatermarks(name); err == nil {
				stats.Watermarks[name] = wm
			}
		}
		return wire.Encode(wire.MsgStats, stats)
	case wire.MsgDrainReq:
		var m wire.DrainReq
		if err := wire.Unmarshal(payload, &m); err != nil {
			return nil, err
		}
		rt, err := w.runtime()
		if err != nil {
			return nil, err
		}
		timeout := time.Duration(m.TimeoutMs) * time.Millisecond
		if timeout <= 0 {
			timeout = 5 * time.Second
		}
		q := rt.Drain(timeout)
		return wire.Encode(wire.MsgDrainAck, wire.DrainAck{Quiesced: q, Processed: rt.ProcessedTotal()})
	case wire.MsgRemoteEmit:
		var m wire.RemoteEmit
		if err := wire.Unmarshal(payload, &m); err != nil {
			return nil, err
		}
		rt, err := w.runtime()
		if err != nil {
			return nil, err
		}
		// Items borrow the request frame; transports allocate a fresh
		// buffer per read (same retention contract as InjectLogged).
		if err := rt.RemoteDeliver(m.Edge, m.Inst, m.Items); err != nil {
			return nil, err
		}
		return wire.Encode(wire.MsgRemoteEmitAck, wire.RemoteEmitAck{Accepted: len(m.Items)})
	case wire.MsgPeers:
		var m wire.Peers
		if err := wire.Unmarshal(payload, &m); err != nil {
			return nil, err
		}
		rt, err := w.runtime()
		if err != nil {
			return nil, err
		}
		rt.ResetPeer(m.Worker, m.Addr)
		return wire.Encode(wire.MsgPeersAck, wire.PeersAck{})
	case wire.MsgEdgeTrim:
		var m wire.EdgeTrim
		if err := wire.Unmarshal(payload, &m); err != nil {
			return nil, err
		}
		rt, err := w.runtime()
		if err != nil {
			return nil, err
		}
		rt.TrimEdgeLogs(m.Trims)
		rt.TrimLocalBufs(m.Locals)
		return wire.Encode(wire.MsgEdgeTrimAck, wire.EdgeTrimAck{})
	case wire.MsgSnapBegin:
		var m wire.SnapBegin
		if err := wire.Unmarshal(payload, &m); err != nil {
			return nil, err
		}
		return w.snapBegin(m)
	case wire.MsgSnapNext:
		var m wire.SnapNext
		if err := wire.Unmarshal(payload, &m); err != nil {
			return nil, err
		}
		return w.snapNext(m)
	case wire.MsgRestoreBegin:
		var m wire.RestoreBegin
		if err := wire.Unmarshal(payload, &m); err != nil {
			return nil, err
		}
		return w.restoreBegin(m)
	case wire.MsgRestoreChunk:
		var m wire.RestoreChunk
		if err := wire.Unmarshal(payload, &m); err != nil {
			return nil, err
		}
		return w.restoreChunk(m)
	case wire.MsgRestoreEnd:
		var m wire.RestoreEnd
		if err := wire.Unmarshal(payload, &m); err != nil {
			return nil, err
		}
		return w.restoreEnd(m)
	case wire.MsgStop:
		w.Close()
		return wire.Encode(wire.MsgStopAck, wire.StopAck{})
	default:
		return nil, fmt.Errorf("worker: unhandled message %s", wire.MsgName(msgType))
	}
}

// snapBegin opens a snapshot pull stream: cut now, stream later. A new
// stream supersedes any previous one — the coordinator abandoned it (its
// retries moved on), so its capture is released here.
func (w *Worker) snapBegin(m wire.SnapBegin) ([]byte, error) {
	rt, err := w.runtime()
	if err != nil {
		return nil, err
	}
	w.snapMu.Lock()
	defer w.snapMu.Unlock()
	if w.serving != nil {
		w.serving.sc.close()
		w.serving = nil
	}
	sc, err := rt.newSnapCapture(m.MaxBytes)
	if err != nil {
		return nil, err
	}
	w.serving = &snapServe{id: m.Stream, sc: sc}
	return wire.Encode(wire.MsgSnapBeginAck, wire.SnapBeginAck{Stream: m.Stream})
}

// snapNext serves chunk Seq of the open stream. The dense seq makes retry
// exact: repeating the last seq re-serves the cached frame, anything else
// out of order is a protocol violation and kills the stream.
func (w *Worker) snapNext(m wire.SnapNext) ([]byte, error) {
	w.snapMu.Lock()
	defer w.snapMu.Unlock()
	s := w.serving
	if s == nil || s.id != m.Stream {
		return nil, fmt.Errorf("worker: unknown snapshot stream %d", m.Stream)
	}
	if m.Seq == s.lastSeq && s.last != nil {
		return s.last, nil
	}
	if m.Seq != s.lastSeq+1 || s.done {
		s.sc.close()
		w.serving = nil
		return nil, fmt.Errorf("worker: snapshot stream %d: seq %d out of order", m.Stream, m.Seq)
	}
	p, ok, err := s.sc.next()
	if err != nil {
		s.sc.close()
		w.serving = nil
		return nil, err
	}
	var frame []byte
	if ok {
		frame, err = wire.Encode(wire.MsgSnapChunk, wire.SnapChunk{Stream: s.id, Seq: m.Seq, Part: p})
	} else {
		s.sc.close()
		s.done = true
		frame, err = wire.Encode(wire.MsgSnapEnd, wire.SnapEnd{Stream: s.id, Chunks: s.sc.parts, Bytes: s.sc.bytes})
	}
	if err != nil {
		s.sc.close()
		w.serving = nil
		return nil, err
	}
	s.lastSeq = m.Seq
	s.last = frame
	return frame, nil
}

// restoreBegin opens a restore push stream on the (freshly deployed,
// sealed) runtime. A new stream supersedes a half-finished one: the
// coordinator redeploys before retrying a failed restore, so partial state
// never leaks across attempts.
func (w *Worker) restoreBegin(m wire.RestoreBegin) ([]byte, error) {
	rt, err := w.runtime()
	if err != nil {
		return nil, err
	}
	w.snapMu.Lock()
	defer w.snapMu.Unlock()
	w.restore = &restoreApply{id: m.Stream, next: 1}
	rt.beginRestoreStream()
	return wire.Encode(wire.MsgRestoreBeginAck, wire.RestoreBeginAck{Stream: m.Stream})
}

// restoreChunk applies part Seq. A re-send of the most recently applied
// seq (lost ack) is acked without re-applying — replay-log appends are not
// idempotent — and any other gap aborts the stream.
func (w *Worker) restoreChunk(m wire.RestoreChunk) ([]byte, error) {
	rt, err := w.runtime()
	if err != nil {
		return nil, err
	}
	w.snapMu.Lock()
	defer w.snapMu.Unlock()
	ra := w.restore
	if ra == nil || ra.id != m.Stream {
		return nil, fmt.Errorf("worker: unknown restore stream %d", m.Stream)
	}
	if m.Seq == ra.next-1 {
		return wire.Encode(wire.MsgRestoreChunkAck, wire.RestoreChunkAck{Stream: m.Stream, Seq: m.Seq})
	}
	if m.Seq != ra.next {
		w.restore = nil
		return nil, fmt.Errorf("worker: restore stream %d: seq %d out of order (want %d)", m.Stream, m.Seq, ra.next)
	}
	if err := rt.applySnapPart(m.Part); err != nil {
		w.restore = nil
		return nil, err
	}
	ra.next++
	return wire.Encode(wire.MsgRestoreChunkAck, wire.RestoreChunkAck{Stream: m.Stream, Seq: m.Seq})
}

// restoreEnd completes the stream after verifying nothing was lost, then
// lifts the restore seal.
func (w *Worker) restoreEnd(m wire.RestoreEnd) ([]byte, error) {
	rt, err := w.runtime()
	if err != nil {
		return nil, err
	}
	w.snapMu.Lock()
	defer w.snapMu.Unlock()
	ra := w.restore
	if ra == nil {
		if m.Stream != 0 && m.Stream == w.restoreDone {
			// The completing ack was lost and the coordinator retried.
			return wire.Encode(wire.MsgRestoreEndAck, wire.RestoreEndAck{Stream: m.Stream})
		}
		return nil, fmt.Errorf("worker: unknown restore stream %d", m.Stream)
	}
	if ra.id != m.Stream {
		return nil, fmt.Errorf("worker: unknown restore stream %d", m.Stream)
	}
	applied := ra.next - 1
	if m.Chunks != applied {
		w.restore = nil
		return nil, fmt.Errorf("worker: restore stream %d truncated: applied %d chunk(s), coordinator sent %d", m.Stream, applied, m.Chunks)
	}
	w.restore = nil
	w.restoreDone = m.Stream
	rt.finishRestoreStream()
	return wire.Encode(wire.MsgRestoreEndAck, wire.RestoreEndAck{Stream: m.Stream})
}

// deploy builds the named graph from the registry and starts the local
// runtime. Re-deploying replaces the previous runtime (stopping it first),
// so a coordinator can repurpose a live worker.
func (w *Worker) deploy(m wire.Deploy) ([]byte, error) {
	g, err := BuildGraph(m.Graph)
	if err != nil {
		return nil, err
	}
	opts := Options{
		Mode:        checkpoint.ModeOff,
		QueueLen:    m.QueueLen,
		OverflowLen: m.OverflowLen,
		BatchSize:   m.BatchSize,
		KVShards:    m.KVShards,
		WireCheck:   m.WireCheck,
		Partitions:  m.Partitions,
	}
	if m.Workers > 1 {
		w.mu.Lock()
		dialer := w.dialer
		w.mu.Unlock()
		opts.Shard = &ShardConfig{
			Worker:       m.Worker,
			Workers:      m.Workers,
			TEs:          m.TEShards,
			SEs:          m.SEShards,
			Peers:        m.Peers,
			Dialer:       dialer,
			AwaitRestore: m.AwaitRestore,
		}
	}
	rt, err := Deploy(g, opts)
	if err != nil {
		return nil, err
	}
	// Any open snapshot/restore stream belongs to the runtime being
	// replaced; abandon it before the swap.
	w.closeSnapStreams()
	w.mu.Lock()
	old := w.rt
	w.rt = rt
	w.graph = m.Graph
	w.mu.Unlock()
	if old != nil {
		old.Stop()
	}
	return wire.Encode(wire.MsgDeployAck, wire.DeployAck{Graph: m.Graph, TEs: len(g.TEs), SEs: len(g.SEs)})
}
