package runtime

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/wire"
)

// Worker hosts one process's slice of a distributed SDG deployment: it
// answers the coordinator's wire protocol over any cluster.Handler carrier
// (a TCP server in cmd/sdg-worker, an in-process Local transport in tests)
// and drives a local Runtime built from the graph registry. The local
// runtime always runs with checkpointing off — the coordinator owns
// checkpoints, because a snapshot stored inside the worker process dies
// with it.
type Worker struct {
	mu     sync.Mutex
	rt     *Runtime
	graph  string
	dialer func(addr string) (cluster.Transport, error)

	stopOnce sync.Once
	done     chan struct{}
}

// NewWorker returns an idle worker awaiting a Deploy message.
func NewWorker() *Worker {
	return &Worker{done: make(chan struct{})}
}

// SetDialer overrides how this worker reaches peer workers for cross-worker
// edges (default: cluster.Dial over TCP). Tests inject in-process transports
// here. Call before the coordinator deploys.
func (w *Worker) SetDialer(d func(addr string) (cluster.Transport, error)) {
	w.mu.Lock()
	w.dialer = d
	w.mu.Unlock()
}

// PendingEdgeItems reports items sitting in this worker's cross-worker edge
// send logs (zero once every downstream trim watermark has passed) — an
// observability hook for tests and operators.
func (w *Worker) PendingEdgeItems() int {
	rt, err := w.runtime()
	if err != nil {
		return 0
	}
	return rt.EdgeLogItems()
}

// Handler returns the wire-protocol dispatcher, ready to serve as a
// cluster.Server handler. Returned errors become error replies on the
// connection (they never kill it), so the coordinator sees rejections as
// *cluster.RemoteError.
func (w *Worker) Handler() cluster.Handler { return w.handle }

// Done is closed when a Stop message has been processed; process mains use
// it to exit.
func (w *Worker) Done() <-chan struct{} { return w.done }

// Close stops the hosted runtime (idempotent); transports are the caller's.
func (w *Worker) Close() {
	w.mu.Lock()
	rt := w.rt
	w.mu.Unlock()
	if rt != nil {
		rt.Stop()
	}
	w.stopOnce.Do(func() { close(w.done) })
}

// runtime returns the deployed runtime or an error before deployment.
func (w *Worker) runtime() (*Runtime, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.rt == nil {
		return nil, fmt.Errorf("worker: no graph deployed")
	}
	return w.rt, nil
}

// handle dispatches one wire envelope.
func (w *Worker) handle(req []byte) ([]byte, error) {
	msgType, payload, err := wire.Decode(req)
	if err != nil {
		return nil, err
	}
	switch msgType {
	case wire.MsgDeploy:
		var m wire.Deploy
		if err := wire.Unmarshal(payload, &m); err != nil {
			return nil, err
		}
		return w.deploy(m)
	case wire.MsgInject:
		var m wire.Inject
		if err := wire.Unmarshal(payload, &m); err != nil {
			return nil, err
		}
		rt, err := w.runtime()
		if err != nil {
			return nil, err
		}
		if err := rt.InjectLogged(m.Task, m.Items); err != nil {
			return nil, err
		}
		return wire.Encode(wire.MsgInjectAck, wire.InjectAck{Accepted: len(m.Items)})
	case wire.MsgCall:
		var m wire.Call
		if err := wire.Unmarshal(payload, &m); err != nil {
			return nil, err
		}
		rt, err := w.runtime()
		if err != nil {
			return nil, err
		}
		timeout := time.Duration(m.TimeoutMs) * time.Millisecond
		if timeout <= 0 {
			timeout = 10 * time.Second
		}
		v, err := rt.CallItem(m.Task, m.Item, timeout)
		if err != nil {
			return nil, err
		}
		return wire.Encode(wire.MsgCallReply, wire.CallReply{Value: v})
	case wire.MsgHeartbeat:
		var m wire.Heartbeat
		if err := wire.Unmarshal(payload, &m); err != nil {
			return nil, err
		}
		ack := wire.HeartbeatAck{Seq: m.Seq}
		if rt, err := w.runtime(); err == nil {
			ack.Queued = rt.QueuedTotal()
		}
		return wire.Encode(wire.MsgHeartbeatAck, ack)
	case wire.MsgSnapshotReq:
		var m wire.SnapshotReq
		if err := wire.Unmarshal(payload, &m); err != nil {
			return nil, err
		}
		rt, err := w.runtime()
		if err != nil {
			return nil, err
		}
		snap, err := rt.SnapshotAll(m.Chunks)
		if err != nil {
			return nil, err
		}
		return wire.Encode(wire.MsgSnapshot, snap)
	case wire.MsgRestore:
		var m wire.Restore
		if err := wire.Unmarshal(payload, &m); err != nil {
			return nil, err
		}
		rt, err := w.runtime()
		if err != nil {
			return nil, err
		}
		if err := rt.ImportSnapshot(m.Snap); err != nil {
			return nil, err
		}
		return wire.Encode(wire.MsgRestoreAck, wire.RestoreAck{})
	case wire.MsgDumpReq:
		var m wire.DumpReq
		if err := wire.Unmarshal(payload, &m); err != nil {
			return nil, err
		}
		rt, err := w.runtime()
		if err != nil {
			return nil, err
		}
		kvs, err := rt.DumpKV(m.SE)
		if err != nil {
			return nil, err
		}
		dump := wire.Dump{Entries: make([]wire.KVEntry, 0, len(kvs))}
		for k, v := range kvs {
			dump.Entries = append(dump.Entries, wire.KVEntry{Key: k, Value: v})
		}
		return wire.Encode(wire.MsgDump, dump)
	case wire.MsgStatsReq:
		rt, err := w.runtime()
		if err != nil {
			return nil, err
		}
		stats := wire.Stats{
			Processed:  make(map[string]int64),
			Watermarks: make(map[string]map[uint64]uint64),
		}
		for _, ts := range rt.tes {
			name := ts.def.Name
			stats.Processed[name] = rt.Processed(name)
			if wm, err := rt.FoldedWatermarks(name); err == nil {
				stats.Watermarks[name] = wm
			}
		}
		return wire.Encode(wire.MsgStats, stats)
	case wire.MsgDrainReq:
		var m wire.DrainReq
		if err := wire.Unmarshal(payload, &m); err != nil {
			return nil, err
		}
		rt, err := w.runtime()
		if err != nil {
			return nil, err
		}
		timeout := time.Duration(m.TimeoutMs) * time.Millisecond
		if timeout <= 0 {
			timeout = 5 * time.Second
		}
		q := rt.Drain(timeout)
		return wire.Encode(wire.MsgDrainAck, wire.DrainAck{Quiesced: q, Processed: rt.ProcessedTotal()})
	case wire.MsgRemoteEmit:
		var m wire.RemoteEmit
		if err := wire.Unmarshal(payload, &m); err != nil {
			return nil, err
		}
		rt, err := w.runtime()
		if err != nil {
			return nil, err
		}
		// Items borrow the request frame; transports allocate a fresh
		// buffer per read (same retention contract as InjectLogged).
		if err := rt.RemoteDeliver(m.Edge, m.Inst, m.Items); err != nil {
			return nil, err
		}
		return wire.Encode(wire.MsgRemoteEmitAck, wire.RemoteEmitAck{Accepted: len(m.Items)})
	case wire.MsgPeers:
		var m wire.Peers
		if err := wire.Unmarshal(payload, &m); err != nil {
			return nil, err
		}
		rt, err := w.runtime()
		if err != nil {
			return nil, err
		}
		rt.ResetPeer(m.Worker, m.Addr)
		return wire.Encode(wire.MsgPeersAck, wire.PeersAck{})
	case wire.MsgEdgeTrim:
		var m wire.EdgeTrim
		if err := wire.Unmarshal(payload, &m); err != nil {
			return nil, err
		}
		rt, err := w.runtime()
		if err != nil {
			return nil, err
		}
		rt.TrimEdgeLogs(m.Trims)
		return wire.Encode(wire.MsgEdgeTrimAck, wire.EdgeTrimAck{})
	case wire.MsgStop:
		w.Close()
		return wire.Encode(wire.MsgStopAck, wire.StopAck{})
	default:
		return nil, fmt.Errorf("worker: unhandled message %s", wire.MsgName(msgType))
	}
}

// deploy builds the named graph from the registry and starts the local
// runtime. Re-deploying replaces the previous runtime (stopping it first),
// so a coordinator can repurpose a live worker.
func (w *Worker) deploy(m wire.Deploy) ([]byte, error) {
	g, err := BuildGraph(m.Graph)
	if err != nil {
		return nil, err
	}
	opts := Options{
		Mode:        checkpoint.ModeOff,
		QueueLen:    m.QueueLen,
		OverflowLen: m.OverflowLen,
		BatchSize:   m.BatchSize,
		KVShards:    m.KVShards,
		WireCheck:   m.WireCheck,
		Partitions:  m.Partitions,
	}
	if m.Workers > 1 {
		w.mu.Lock()
		dialer := w.dialer
		w.mu.Unlock()
		opts.Shard = &ShardConfig{
			Worker:       m.Worker,
			Workers:      m.Workers,
			TEs:          m.TEShards,
			SEs:          m.SEShards,
			Peers:        m.Peers,
			Dialer:       dialer,
			AwaitRestore: m.AwaitRestore,
		}
	}
	rt, err := Deploy(g, opts)
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	old := w.rt
	w.rt = rt
	w.graph = m.Graph
	w.mu.Unlock()
	if old != nil {
		old.Stop()
	}
	return wire.Encode(wire.MsgDeployAck, wire.DeployAck{Graph: m.Graph, TEs: len(g.TEs), SEs: len(g.SEs)})
}
