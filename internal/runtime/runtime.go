// Package runtime executes stateful dataflow graphs (§3.3): it materialises
// the whole SDG (no task scheduler), pins TE and SE instances to simulated
// cluster nodes following the four-step allocator, pipelines items through
// per-instance queues with backpressure, enforces the dispatching semantics
// of §4.2, runs the checkpointing loops of §5, recovers failed nodes with
// m-to-n restores plus upstream replay, and reacts to bottlenecks and
// stragglers by growing TE/SE instances at runtime (§3.3, Fig. 10).
package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/metrics"
	"repro/internal/state"
	"repro/internal/wire"
)

// externalOrigin identifies items injected from outside the SDG.
const externalOrigin = ^uint64(0)

// Options configures a deployment.
type Options struct {
	// Cluster supplies the nodes; a fresh unbounded-disk cluster is created
	// when nil.
	Cluster *cluster.Cluster
	// QueueLen bounds each instance's inbound queue (default 1024). The
	// queue carries micro-batches, so with BatchSize > 1 the item-count
	// bound is QueueLen x the typical batch size.
	QueueLen int
	// OverflowLen is the flow-control watermark in items (default
	// 4 x QueueLen). Two roles: a TE whose parked overflow reaches
	// OverflowLen x its live instance count is backpressured, which
	// revokes ingress admission credits graph-wide until it drains (or
	// gains instances); and an entry TE whose backlog (queued + parked +
	// in-flight) reaches it stops admitting external items per
	// InjectPolicy. Intra-graph edges never drop or block regardless —
	// the bound is enforced where callers can be told, at ingress.
	OverflowLen int
	// InjectPolicy selects the ingress admission behaviour when an entry
	// TE is over its OverflowLen backlog or the graph is backpressured:
	// InjectBlock (default) waits for capacity, preserving the historical
	// blocking semantics; InjectShed fails fast with ErrOverloaded.
	InjectPolicy InjectPolicy
	// InjectDeadline bounds how long InjectBlock admission waits before
	// giving up with ErrOverloaded (0 = wait forever).
	InjectDeadline time.Duration
	// BatchSize sets the micro-batch target for the item hot path: each
	// worker coalesces up to this many queued items before taking the
	// pause lock and dedup filter once for the whole batch, and emissions
	// buffer per out-edge until this many items are pending. Batches flush
	// on idle — a worker never waits for more input, so BatchSize only
	// amortises overhead under load and adds no latency when the pipeline
	// is drained. Default 1 preserves per-item dispatch semantics exactly.
	BatchSize int
	// Partitions sets the initial instance count per SE name (default 1).
	// TEs accessing an SE always have exactly as many instances as the SE.
	Partitions map[string]int
	// Checkpointing.
	Mode     checkpoint.Mode
	Interval time.Duration // checkpoint period (default 10s, as in §6)
	Chunks   int           // chunks per checkpoint = backup parallelism m (default 2)
	Backup   *checkpoint.Backup
	// DeltaCheckpoints enables incremental epochs for dictionary SEs: after
	// an instance's first full checkpoint, subsequent epochs serialise only
	// the keys changed since the previous epoch (plus tombstones) until a
	// compaction trigger forces a fresh base. Stores that cannot track
	// changed keys keep taking full checkpoints.
	DeltaCheckpoints bool
	// CompactEvery forces a new base checkpoint after this many consecutive
	// delta epochs (default 8).
	CompactEvery int
	// CompactRatio forces a new base once the chain's cumulative delta
	// bytes exceed this fraction of the base checkpoint's bytes
	// (default 0.5).
	CompactRatio float64
	// CompressBase flate-compresses base (full) checkpoint chunks before
	// they reach the backup disks; delta chunks stay raw. Applies to the
	// runtime-provisioned backup store only — a caller-supplied Backup
	// keeps its own setting.
	CompressBase bool
	// BackupNodes is the number of backup nodes to provision when Backup is
	// nil (default 2).
	BackupNodes int
	// ScaleDrainTimeout bounds how long ScaleDown waits for the graph to
	// quiesce behind the ingress fence before giving up with ErrNotQuiesced
	// (default 30s).
	ScaleDrainTimeout time.Duration
	// KVShards selects the lock-striped sharded backend for dictionary SEs:
	// when > 0, every KVMap SE without a custom builder is backed by a
	// ShardedKVMap with this many shards (rounded up to a power of two).
	// 0 keeps the single-lock KVMap; < 0 uses a GOMAXPROCS-derived shard
	// count. Checkpoint chunks are format-compatible either way.
	KVShards int
	// WireCheck round-trips every delivered payload through gob, verifying
	// the location-independence restriction of §4.1 ("each object accessed
	// in the program must support transparent serialisation"): a payload
	// that cannot cross a real wire fails loudly instead of silently
	// sharing memory.
	WireCheck bool
	// Shard, when non-nil, deploys this runtime as one worker's slice of a
	// multi-worker deployment: only the configured shard of each TE/SE is
	// instantiated, origin ids and partition routing use global instance
	// identities, and edges whose destination has instances elsewhere
	// deliver over the cross-worker data plane (see remoteedge.go).
	// In-process elasticity and recovery (ScaleUp/ScaleDown/Recover) are
	// unavailable in this mode — the coordinator owns them.
	Shard *ShardConfig
}

func (o *Options) defaults() {
	if o.QueueLen <= 0 {
		o.QueueLen = 1024
	}
	if o.OverflowLen <= 0 {
		o.OverflowLen = 4 * o.QueueLen
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 1
	}
	if o.Interval <= 0 {
		o.Interval = 10 * time.Second
	}
	if o.Chunks <= 0 {
		o.Chunks = 2
	}
	if o.BackupNodes <= 0 {
		o.BackupNodes = 2
	}
}

// Runtime is a deployed SDG.
type Runtime struct {
	graph *core.Graph
	opts  Options
	cl    *cluster.Cluster
	bk    *checkpoint.Backup

	tes []*teState
	ses []*seState

	// net is the cross-worker data plane; nil unless Options.Shard places
	// this runtime in a multi-worker deployment.
	net *remoteNet

	// pmu guards the pauseMu registry itself; a leaf below every other
	// lock.
	//sdg:lockorder pausemap 95
	pmu sync.Mutex
	//sdg:lockorder pause 40
	pauseMu map[int]*sync.RWMutex // per node: held (R) while processing

	reqSeq  atomic.Uint64 // request ids for Call
	extSeq  atomic.Uint64 // seq numbers for externally injected items
	replyMu sync.Mutex
	replies map[uint64]chan any

	// parked upper-bounds the items currently parked across every
	// instance's overflow: enqueue adds on park, workers subtract what
	// they promote, and recovery subtracts what it discards with a
	// replaced instance. Zero means no TE can be backpressured, letting
	// the admission fast path skip the per-instance graph scan; races
	// around recovery only ever leave the bound high (scan runs anyway),
	// never low.
	parked atomic.Int64

	// scaleMu serialises scale-in operations: ScaleDown quiesces the graph
	// with no other locks held, so two concurrent retirements (or the
	// auto-scaler racing a manual call) must not interleave their fence /
	// swap phases.
	//sdg:lockorder scale 10
	scaleMu sync.Mutex

	stopOnce sync.Once
	stopped  chan struct{}
	wg       sync.WaitGroup

	// Latency of Call round trips, recorded centrally for experiments.
	CallLatency *metrics.Histogram
	// BatchSizes records the size of every processed micro-batch, so
	// operators can see how well the pipeline coalesces under load.
	BatchSizes *metrics.Distribution
	// AdmitLatency records, in nanoseconds, how long each external
	// injection waited for admission (0 for the uncontended fast path), so
	// operators can see ingress pressure building before items shed.
	AdmitLatency *metrics.Distribution
	// ScalePause records, in nanoseconds, how long each ScaleDown held the
	// ingress fence (quiesce wait + state merge) — the scale-in analogue of
	// the checkpoint pause the paper measures.
	ScalePause *metrics.Distribution
}

// teState tracks one task element and its live instances.
type teState struct {
	def *core.TE
	//sdg:lockorder testate 60
	mu       sync.RWMutex
	insts    []*teInstance
	out      []*edgeRT
	hasInAll bool // any inbound all-to-one edge => gather barrier
	// shard is this worker's global slice of the TE in a sharded
	// deployment; zero-valued (Total 0) when the runtime owns every
	// instance, in which case local indices are the global identities.
	shard wire.Shard
	// serialEmit forces per-emission flushing: when two out-edges share a
	// destination TE, buffered per-edge flushing could deliver a later
	// seq before an earlier one to the same instance, and the shared
	// per-origin dedup watermark would then drop the earlier item for
	// good. Such TEs trade the flush amortisation for seq-order delivery.
	serialEmit bool
	ckptWM     map[int]map[uint64]uint64 // instance idx -> last checkpointed watermarks
	// srcBuf logs externally injected items for entry TEs so post-checkpoint
	// inputs replay after failures; nil when fault tolerance is off.
	srcBuf *dataflow.OutputBuffer
	// injMu serialises external injection end to end — seq assignment,
	// srcBuf logging and enqueueing — so concurrent injectors cannot
	// reorder seqs on their way to one entry instance (the per-origin
	// dedup watermark would silently drop the overtaken item forever).
	//sdg:lockorder inject 20
	injMu sync.Mutex
	// shed counts externally offered items rejected by admission control.
	shed atomic.Int64
	// retiredSeqs remembers, per instance index, the output seq counter of
	// instances retired by scale-in. A later scale-up reusing the index
	// resumes numbering from there: the origin id is (TE, idx), and a fresh
	// counter would emit seqs already recorded in downstream dedup
	// watermarks, which would drop the new instance's output for good.
	// Guarded by mu.
	retiredSeqs map[int]uint64
	// retiredProcessed accumulates the processed counters of retired
	// instances so Processed/Stats stay monotonic across scale-in — their
	// work happened, it must not vanish from the books with the worker.
	retiredProcessed atomic.Int64

	// instEpoch versions insts: every mutation (scale-up, repartition,
	// recovery) bumps it under mu, invalidating the cached snapshot below.
	instEpoch atomic.Uint64
	// snap caches an immutable copy of insts so the delivery hot path
	// reads the instance set without a lock or a per-item slice copy.
	snap atomic.Pointer[instSnapshot]
}

// instSnapshot is an immutable view of a TE's instance set at one epoch.
type instSnapshot struct {
	epoch uint64
	insts []*teInstance
}

// instances returns the TE's live instance slice from the epoch-versioned
// cache, rebuilding it under the read lock only after a topology change.
// The returned slice is immutable and safe to read without ts.mu.
func (ts *teState) instances() []*teInstance {
	if s := ts.snap.Load(); s != nil && s.epoch == ts.instEpoch.Load() {
		return s.insts
	}
	ts.mu.RLock()
	s := &instSnapshot{
		epoch: ts.instEpoch.Load(),
		insts: append([]*teInstance(nil), ts.insts...),
	}
	ts.mu.RUnlock()
	ts.snap.Store(s)
	return s.insts
}

// bumpInstances invalidates the cached instance snapshot. Callers must hold
// ts.mu exclusively and call it after every mutation of ts.insts.
func (ts *teState) bumpInstances() {
	ts.instEpoch.Add(1)
}

// edgeRT is a dataflow edge prepared for dispatch. remote is the delivery
// seam: nil keeps the destination fully in-process (today's zero-alloc
// path); non-nil means the destination TE has instances on other workers
// and dispatch goes through deliverRemote.
type edgeRT struct {
	def    *core.Edge
	router *dataflow.Router
	to     *teState
	remote *remoteEdge
}

// routeScratch holds the reusable buffers one sender needs to group a
// micro-batch into per-destination sub-batches without per-item allocation.
type routeScratch struct {
	targets []int         // one destination index per item
	counts  []int         // items per destination, indexed by instance
	batches [][]core.Item // per-destination sub-batch headers during a flush
	dsts    []*teInstance // live destination set for broadcasts
}

// teInstance is one pipelined worker (§3.1: TEs are materialised, not
// scheduled).
type teInstance struct {
	te   *teState
	idx  int
	node *cluster.Node

	queue   chan []core.Item // inbound micro-batches
	dead    chan struct{}
	dedup   *dataflow.Dedup
	gather  *dataflow.Gather
	outBufs []*dataflow.OutputBuffer
	seqCtr  atomic.Uint64

	// overflow parks inbound batches that found the queue full, so senders
	// never block on this instance (deadlock-free dispatch); the worker
	// promotes parked batches back into the queue as slots free up. kick
	// wakes an idle worker when a batch parks while the queue is empty.
	overflow *dataflow.Overflow
	kick     chan struct{}

	// queued tracks inbound items (not batches) across the queue and the
	// batch currently being processed; load balancing, bottleneck
	// detection and Drain read it instead of len(queue).
	queued    atomic.Int64
	processed atomic.Int64
	killed    atomic.Bool

	// Worker-owned scratch, reused across batches so the steady-state hot
	// path allocates nothing per item. Only the worker goroutine touches
	// these (pendingOut additionally from Fn via the reused execCtx).
	inBatch    []core.Item   // coalesced inbound batch
	freshBatch []core.Item   // dedup-filtered view of inBatch
	pendingOut [][]core.Item // emissions buffered per out-edge
	route      routeScratch
	ectx       execCtx
}

// originID identifies the instance as an item origin: TE id in the high
// bits, *global* instance index in the low bits (shard.First is 0 outside
// sharded deployments). Replacement instances reuse the identity so dedup
// works across recoveries, and two workers hosting different slices of one
// TE can never collide in a receiver's watermark map.
func (ti *teInstance) originID() uint64 {
	return uint64(ti.te.def.ID)<<32 | uint64(ti.te.shard.First+ti.idx)
}

// seState tracks one state element and its live instances.
type seState struct {
	def *core.SE
	//sdg:lockorder sstate 50
	mu    sync.RWMutex
	insts []*seInstance
	// ckptGate excludes checkpoints from structural rebuilds: CheckpointNow
	// read-holds it for the whole procedure (instance fetch through save and
	// merge), and scale-in write-holds it across the destructive
	// split/merge swap. Without it, a checkpoint goroutine that fetched its
	// instance just before the swap could still flip the store dirty —
	// mid-rebuild — or commit a stale pre-swap epoch after the post-merge
	// base. Lock order: ckptGate before mu.
	//sdg:lockorder ckptgate 30
	ckptGate sync.RWMutex
}

// seInstance is one SE partition or partial replica, colocated with the
// TE instances of the same index.
type seInstance struct {
	se    *seState
	idx   int
	node  *cluster.Node
	store state.Store
	epoch atomic.Uint64
	// chained is set once this instance has committed a checkpoint of its
	// own, anchoring the backup chain to this store's tracker. Fresh and
	// recovered instances start false, so their first epoch is always a
	// full base — a delta appended to a chain the live store never cut
	// against would restore the wrong state.
	chained atomic.Bool
}

// instName is the durable identity of an SE instance for the backup store.
func (si *seInstance) instName() string {
	return fmt.Sprintf("%s/%d", si.se.def.Name, si.idx)
}

// Deploy validates the graph, allocates it to nodes and starts all workers.
func Deploy(g *core.Graph, opts Options) (*Runtime, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	opts.defaults()
	if opts.Shard != nil {
		if err := opts.Shard.validate(); err != nil {
			return nil, err
		}
		// Private copy: the dialer default must not leak into the caller's
		// config.
		sc := *opts.Shard
		if sc.Dialer == nil {
			sc.Dialer = func(addr string) (cluster.Transport, error) {
				c, err := cluster.Dial(addr)
				if err != nil {
					return nil, err
				}
				c.SetCallTimeout(10 * time.Second)
				return c, nil
			}
		}
		opts.Shard = &sc
	}
	cl := opts.Cluster
	if cl == nil {
		cl = cluster.New(0, cluster.Config{})
	}
	r := &Runtime{
		graph:        g,
		opts:         opts,
		cl:           cl,
		replies:      make(map[uint64]chan any),
		stopped:      make(chan struct{}),
		pauseMu:      make(map[int]*sync.RWMutex),
		CallLatency:  metrics.NewHistogram(0),
		BatchSizes:   metrics.NewDistribution(4096),
		AdmitLatency: metrics.NewDistribution(4096),
		ScalePause:   metrics.NewDistribution(1024),
	}

	// Backup store for checkpoints.
	if opts.Backup != nil {
		r.bk = opts.Backup
	} else if opts.Mode != checkpoint.ModeOff {
		targets := make([]*cluster.Node, opts.BackupNodes)
		for i := range targets {
			targets[i] = cl.AddNode()
		}
		r.bk = checkpoint.NewBackup(cl, targets)
		r.bk.CompressBase = opts.CompressBase
	}

	// Allocation per §3.3; nodes are created on demand to honour it.
	alloc := g.Allocate()
	nodeOf := make(map[int]*cluster.Node) // allocation node id -> cluster node
	getNode := func(allocID int) *cluster.Node {
		if n, ok := nodeOf[allocID]; ok {
			return n
		}
		n := cl.AddNode()
		nodeOf[allocID] = n
		return n
	}

	// Build SE states.
	for _, se := range g.SEs {
		r.ses = append(r.ses, &seState{def: se})
	}
	// Build TE states and edges.
	for _, te := range g.TEs {
		ts := &teState{def: te}
		for _, e := range g.InEdges(te.ID) {
			if e.Dispatch == core.DispatchAllToOne {
				ts.hasInAll = true
			}
		}
		if te.Entry && opts.Mode != checkpoint.ModeOff {
			ts.srcBuf = &dataflow.OutputBuffer{}
		}
		r.tes = append(r.tes, ts)
	}
	for _, ts := range r.tes {
		seen := map[int]bool{}
		for _, e := range r.graph.OutEdges(ts.def.ID) {
			ts.out = append(ts.out, &edgeRT{
				def:    e,
				router: &dataflow.Router{Dispatch: e.Dispatch},
				to:     r.tes[e.To],
			})
			if seen[e.To] {
				ts.serialEmit = true
			}
			seen[e.To] = true
		}
	}

	// Instantiate SEs with their initial partition counts, then TEs
	// colocated with them.
	for _, ss := range r.ses {
		n := 1
		if opts.Partitions != nil {
			if p, ok := opts.Partitions[ss.def.Name]; ok && p > 0 {
				n = p
			}
		}
		if opts.Shard != nil {
			// Only this worker's slice of the global partition set is
			// instantiated; a worker may legitimately hold zero instances.
			n = shardFor(opts.Shard.SEs, ss.def.Name, opts.Shard.Worker, opts.Shard.Workers).Count
		}
		base := getNode(alloc.SENode[ss.def.ID])
		for i := 0; i < n; i++ {
			node := base
			if i > 0 {
				// Additional partitions/replicas each get their own node,
				// mirroring distributed SEs spanning nodes (§3.2).
				node = cl.AddNode()
			}
			store, err := r.newStore(ss.def)
			if err != nil {
				return nil, err
			}
			ss.insts = append(ss.insts, &seInstance{se: ss, idx: i, node: node, store: store})
		}
	}
	for _, ts := range r.tes {
		n := 1
		var colocate *seState
		if ts.def.Access != nil {
			colocate = r.ses[ts.def.Access.SE]
			n = len(colocate.insts)
		}
		if opts.Shard != nil {
			ts.shard = shardFor(opts.Shard.TEs, ts.def.Name, opts.Shard.Worker, opts.Shard.Workers)
			if colocate == nil {
				n = ts.shard.Count
			}
		}
		for i := 0; i < n; i++ {
			var node *cluster.Node
			if colocate != nil {
				node = colocate.insts[i].node
			} else {
				node = getNode(alloc.TENode[ts.def.ID])
			}
			ti := r.newInstance(ts, i, node)
			ts.insts = append(ts.insts, ti)
		}
	}

	// Cross-worker data plane: edges whose destination TE has instances on
	// other workers carry the remote half of the delivery seam. The edge's
	// wire identity is its position in Graph.Edges, which every worker
	// (building the same registered graph) agrees on.
	if opts.Shard != nil && opts.Shard.Workers > 1 {
		r.net = newRemoteNet(r, opts.Shard)
		edgeIdx := make(map[*core.Edge]int, len(g.Edges))
		for i, e := range g.Edges {
			edgeIdx[e] = i
		}
		for _, ts := range r.tes {
			for _, e := range ts.out {
				gi := edgeIdx[e.def]
				r.net.edgeTo[gi] = e.to
				if e.to.shard.Count < e.to.shard.Total {
					e.remote = &remoteEdge{net: r.net, idx: gi}
				}
			}
		}
		r.net.start()
	}

	// Start workers and checkpoint loops.
	for _, ts := range r.tes {
		for _, ti := range ts.insts {
			r.startWorker(ti)
		}
	}
	if r.opts.Mode != checkpoint.ModeOff {
		for _, ss := range r.ses {
			for _, si := range ss.insts {
				r.startCheckpointLoop(si)
			}
		}
	}
	return r, nil
}

// newStore instantiates the backing store for an SE, honouring the KVShards
// backend selection. Custom builders always win; they encode app-specific
// pre-sizing the option must not override.
func (r *Runtime) newStore(def *core.SE) (state.Store, error) {
	var st state.Store
	var err error
	if r.opts.KVShards != 0 && def.Build == nil &&
		(def.Type == state.TypeKVMap || def.Type == state.TypeShardedKVMap) {
		n := r.opts.KVShards
		if n < 0 {
			n = 0 // GOMAXPROCS-derived default
		}
		st = state.NewShardedKVMap(n)
	} else if st, err = def.NewStore(); err != nil {
		return nil, err
	}
	// Only track changed keys when a checkpoint loop will actually cut the
	// tracker: with checkpointing off the set would grow without bound.
	if r.opts.DeltaCheckpoints && r.opts.Mode != checkpoint.ModeOff {
		if ds, ok := st.(state.DeltaStore); ok {
			ds.EnableDeltaTracking()
		}
	}
	return st, nil
}

// deltaPolicy folds the delta-checkpoint options into the checkpoint
// package's policy.
func (r *Runtime) deltaPolicy() checkpoint.Policy {
	return checkpoint.Policy{
		Delta:        r.opts.DeltaCheckpoints,
		CompactEvery: r.opts.CompactEvery,
		CompactRatio: r.opts.CompactRatio,
	}
}

// newInstance builds (but does not start) a TE instance on a node.
func (r *Runtime) newInstance(ts *teState, idx int, node *cluster.Node) *teInstance {
	ti := &teInstance{
		te:       ts,
		idx:      idx,
		node:     node,
		queue:    make(chan []core.Item, r.opts.QueueLen),
		dead:     make(chan struct{}),
		dedup:    dataflow.NewDedup(),
		outBufs:  make([]*dataflow.OutputBuffer, len(ts.out)),
		overflow: &dataflow.Overflow{},
		kick:     make(chan struct{}, 1),
	}
	for i := range ti.outBufs {
		ti.outBufs[i] = &dataflow.OutputBuffer{}
	}
	ti.pendingOut = make([][]core.Item, len(ts.out))
	ti.ectx = execCtx{r: r, ti: ti}
	if ts.hasInAll {
		ti.gather = dataflow.NewGather()
	}
	// Resume the seq numbering of a retired predecessor with the same origin
	// id, so downstream watermarks never see this instance's output as stale.
	if seq, ok := ts.retiredSeqs[idx]; ok {
		ti.seqCtr.Store(seq)
	}
	return ti
}

// startWorker launches the pipelined processing loop of one TE instance:
// receive a micro-batch, coalesce whatever else is already queued up to
// BatchSize items (flush-on-idle: never wait for more input), then take the
// pause lock once and run the whole batch.
func (r *Runtime) startWorker(ti *teInstance) {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		pause := r.pauseFor(ti.node)
		max := r.opts.BatchSize
		for {
			var batch []core.Item
			select {
			case <-r.stopped:
				return
			case <-ti.dead:
				return
			case batch = <-ti.queue:
			case <-ti.kick:
				// A batch parked while the queue was empty (the park and the
				// final promote raced); fall through to promote it.
			}
			if batch != nil {
				items := batch
				if max > 1 {
				coalesce:
					for len(items) < max {
						select {
						case more := <-ti.queue:
							// Copy-on-extend: the received slices are owned
							// by this worker, but coalescing needs a single
							// contiguous batch in the reusable buffer.
							if len(ti.inBatch) == 0 {
								ti.inBatch = append(ti.inBatch[:0], items...)
							}
							ti.inBatch = append(ti.inBatch, more...)
							items = ti.inBatch
						default:
							break coalesce
						}
					}
				}
				// Process in chunks of at most BatchSize: coalescing can
				// overshoot (whole queued batches append), and replay paths
				// enqueue whole output buffers, but the per-chunk
				// bookkeeping window — one pause hold, one dedup pass
				// before any flush — must never exceed the configured
				// batch size (at BatchSize=1 this is exactly the per-item
				// runtime's behaviour).
				for start := 0; start < len(items); start += max {
					end := start + max
					if end > len(items) {
						end = len(items)
					}
					// A paused node (sync checkpoint) blocks here.
					pause.RLock()
					r.processBatch(ti, items[start:end])
					pause.RUnlock()
				}
				ti.queued.Add(-int64(len(items)))
				// Reuse the coalesce buffer, but do not let one oversized
				// replay batch pin its high-water capacity (and the Items'
				// payload pointers) for the instance's lifetime.
				if cap(ti.inBatch) > 4*max && cap(ti.inBatch) > 64 {
					ti.inBatch = nil
				} else {
					ti.inBatch = ti.inBatch[:0]
				}
			}
			// Opportunistically refill the queue from parked overflow: the
			// batch just processed (and any the coalesce loop drained) freed
			// slots.
			if moved := ti.overflow.Promote(ti.queue); moved > 0 {
				r.parked.Add(-moved)
			}
		}
	}()
}

// pauseFor returns the lazily created pause lock of one node.
//
//sdg:lockorder returns pause
func (r *Runtime) pauseFor(node *cluster.Node) *sync.RWMutex {
	r.pmu.Lock()
	mu, ok := r.pauseMu[node.ID]
	if !ok {
		mu = &sync.RWMutex{}
		r.pauseMu[node.ID] = mu
	}
	r.pmu.Unlock()
	return mu
}

// processBatch runs one micro-batch through the TE's function. The dedup
// filter is applied once for the whole batch; merge TEs with a gather
// barrier keep per-item bookkeeping because duplicates must still refill
// pending waves (see Gather.Refill). Buffered emissions flush after the
// batch so downstream delivery amortises routing and enqueueing.
func (r *Runtime) processBatch(ti *teInstance, items []core.Item) {
	if r.opts.BatchSize > 1 {
		// In per-item mode every batch has size 1 by construction; skipping
		// the record keeps the one cross-worker mutex in this function off
		// the per-item path.
		r.BatchSizes.Record(int64(len(items)))
	}
	if ti.gather == nil {
		ti.freshBatch = ti.dedup.FreshBatch(items, ti.freshBatch[:0])
		fresh := ti.freshBatch
		for i := range fresh {
			r.invoke(ti, &fresh[i])
		}
	} else {
		// Partials in one batch usually share a request id; memoise the
		// callWaiting lookup so the global reply mutex is taken once per
		// wave per batch, not once per partial.
		var memoReq uint64
		var memoWaiting, memoValid bool
		waiting := func(reqID uint64) bool {
			if !memoValid || memoReq != reqID {
				memoReq, memoWaiting, memoValid = reqID, r.callWaiting(reqID), true
			}
			return memoWaiting
		}
		for i := range items {
			it := items[i]
			var coll core.Collection
			var done bool
			if ti.dedup.Fresh(it) && (it.ReqID == 0 || waiting(it.ReqID)) {
				coll, done = ti.gather.Add(it)
			} else {
				// Duplicates, and fresh partials whose Call has already
				// returned or timed out, may only fill holes in pending
				// waves: a replayed duplicate completes a wave whose
				// original partial died with a failed instance, while a
				// partial for an abandoned request must not (re)create a
				// wave nobody will ever complete — that would leak the
				// very waves Recover evicts.
				coll, done = ti.gather.Refill(it)
			}
			if !done {
				continue
			}
			it.Value = coll
			r.invoke(ti, &it)
		}
	}
	r.flushOut(ti)
}

// invoke runs the TE function on one item through the instance's reused
// execution context.
func (r *Runtime) invoke(ti *teInstance, it *core.Item) {
	ti.node.Penalize()
	ti.ectx.cur = it
	ti.te.def.Fn(&ti.ectx, *it)
	ti.ectx.cur = nil
	ti.processed.Add(1)
}

// flushOut logs and delivers every buffered emission, edge by edge. Called
// after each batch and whenever one edge's pending buffer reaches the batch
// size mid-batch.
func (r *Runtime) flushOut(ti *teInstance) {
	for edge := range ti.pendingOut {
		if len(ti.pendingOut[edge]) > 0 {
			r.flushEdge(ti, edge)
		}
	}
}

// flushEdge logs one edge's pending emissions to the replay buffer and
// routes them downstream, then resets the pending buffer for reuse.
func (r *Runtime) flushEdge(ti *teInstance, edge int) {
	pend := ti.pendingOut[edge]
	ti.outBufs[edge].AppendBatch(pend)
	r.deliverBatch(ti.te.out[edge], pend, &ti.route)
	ti.pendingOut[edge] = pend[:0]
}

// deliverBatch routes a micro-batch over an edge to the downstream
// instances. items is caller-owned scratch: every enqueued sub-batch is a
// fresh copy, so receivers own their slices and the caller may reuse items
// immediately. In the steady state the only allocations are those copies —
// one per destination per flush — so the per-item cost vanishes as the
// batch grows.
func (r *Runtime) deliverBatch(e *edgeRT, items []core.Item, rs *routeScratch) {
	if len(items) == 0 {
		return
	}
	if r.opts.WireCheck {
		for i := range items {
			if items[i].Value == nil {
				continue
			}
			v, err := wireRoundTrip(items[i].Value)
			if err != nil {
				panic(fmt.Sprintf("runtime: payload %T violates location independence: %v", items[i].Value, err))
			}
			items[i].Value = v
		}
	}
	if e.remote != nil {
		r.deliverRemote(e, items, rs)
		return
	}
	insts := e.to.instances()
	if len(insts) == 0 {
		return
	}
	switch {
	case e.def.Dispatch == core.DispatchOneToAll:
		// The broadcast wave fixes the collection size for a later merge.
		// Count only live targets: killed instances drop their copy, and a
		// Parts count that includes them would leave the gather barrier
		// waiting forever for partials that can never arrive. One liveness
		// scan collects the exact destination set so Parts always equals
		// the number of copies enqueued — a second scan could disagree with
		// the count if an instance died in between. (A kill after the scan
		// is the general fail-any-time case, recovered by replay, which
		// recomputes Parts, and by Gather.Refill.)
		if cap(rs.dsts) < len(insts) {
			rs.dsts = make([]*teInstance, 0, len(insts))
		}
		rs.dsts = rs.dsts[:0]
		for _, dst := range insts {
			if !dst.killed.Load() && !dst.node.Failed() {
				rs.dsts = append(rs.dsts, dst)
			}
		}
		live := len(rs.dsts)
		for _, dst := range rs.dsts {
			b := make([]core.Item, len(items))
			copy(b, items)
			for i := range b {
				b[i].Parts = live
			}
			r.enqueue(dst, b)
		}
		for i := range rs.dsts {
			rs.dsts[i] = nil // do not pin instances until the next broadcast
		}
	case e.def.Dispatch == core.DispatchOneToAny:
		// "Dispatched to an arbitrary instance ... for load-balancing"
		// (§3.1): the whole batch goes to the least-loaded live instance,
		// so stragglers absorb only what they can process instead of
		// capping the pipeline at n x the slowest rate.
		var best *teInstance
		var bestLen int64
		for _, dst := range insts {
			if dst.killed.Load() || dst.node.Failed() {
				continue
			}
			if q := dst.queued.Load(); best == nil || q < bestLen {
				best, bestLen = dst, q
			}
		}
		if best == nil {
			return
		}
		b := make([]core.Item, len(items))
		copy(b, items)
		r.enqueue(best, b)
	default:
		rs.targets = e.router.RouteBatch(items, len(insts), rs.targets[:0])
		r.enqueueGrouped(insts, items, rs)
	}
}

// enqueueGrouped splits a routed batch into per-destination sub-batches and
// enqueues them. Grouping reuses the sender's scratch counters; the only
// allocations are the receiver-owned sub-batch slices.
func (r *Runtime) enqueueGrouped(insts []*teInstance, items []core.Item, rs *routeScratch) {
	// Fast path: the whole batch routes to a single destination.
	single := true
	for _, t := range rs.targets[1:] {
		if t != rs.targets[0] {
			single = false
			break
		}
	}
	if single {
		dst := insts[rs.targets[0]]
		if dst.killed.Load() || dst.node.Failed() {
			// Dropped; upstream buffers replay it after recovery.
			return
		}
		b := make([]core.Item, len(items))
		copy(b, items)
		r.enqueue(dst, b)
		return
	}
	if cap(rs.counts) < len(insts) {
		rs.counts = make([]int, len(insts))
		rs.batches = make([][]core.Item, len(insts))
	}
	rs.counts = rs.counts[:len(insts)]
	rs.batches = rs.batches[:len(insts)]
	for i := range rs.counts {
		rs.counts[i] = 0
	}
	for _, t := range rs.targets {
		rs.counts[t]++
	}
	// Pre-size one receiver-owned sub-batch per live destination, then fill
	// them all in a single pass over the targets — O(items + destinations).
	for dstIdx, n := range rs.counts {
		rs.batches[dstIdx] = nil
		if n == 0 {
			continue
		}
		dst := insts[dstIdx]
		if dst.killed.Load() || dst.node.Failed() {
			// Stays nil: the items drop and upstream buffers replay them
			// after recovery.
			continue
		}
		rs.batches[dstIdx] = make([]core.Item, 0, n)
	}
	for i, t := range rs.targets {
		if rs.batches[t] != nil {
			rs.batches[t] = append(rs.batches[t], items[i])
		}
	}
	for dstIdx, b := range rs.batches {
		if len(b) > 0 {
			r.enqueue(insts[dstIdx], b)
		}
		rs.batches[dstIdx] = nil // ownership moved to the receiver
	}
}

// enqueue hands one receiver-owned micro-batch to an instance. It never
// blocks: a batch that finds the queue full parks in the destination's
// overflow, to be promoted by the destination's own worker. That keeps
// every producer-side wait out of the dispatch path — a worker blocked on
// another worker's queue is how cyclic topologies distributed-deadlock —
// and turns sustained pressure into an observable saturation signal that
// revokes ingress credits instead of wedging the graph.
func (r *Runtime) enqueue(dst *teInstance, b []core.Item) {
	dst.queued.Add(int64(len(b)))
	if dst.overflow.Offer(dst.queue, b) {
		r.parked.Add(int64(len(b)))
		// Wake the worker in case it is idle on an empty queue (the park
		// and its final promote can race); the 1-slot kick never blocks.
		select {
		case dst.kick <- struct{}{}:
		default:
		}
	}
}

// te looks a TE up by name.
func (r *Runtime) te(name string) (*teState, error) {
	for _, ts := range r.tes {
		if ts.def.Name == name {
			return ts, nil
		}
	}
	return nil, fmt.Errorf("runtime: unknown TE %q", name)
}

// se looks an SE up by name.
func (r *Runtime) se(name string) (*seState, error) {
	for _, ss := range r.ses {
		if ss.def.Name == name {
			return ss, nil
		}
	}
	return nil, fmt.Errorf("runtime: unknown SE %q", name)
}

// Cluster exposes the underlying simulated cluster.
func (r *Runtime) Cluster() *cluster.Cluster { return r.cl }

// Backup exposes the checkpoint store (nil when fault tolerance is off).
func (r *Runtime) Backup() *checkpoint.Backup { return r.bk }

// Stop terminates all workers and loops. It is idempotent.
func (r *Runtime) Stop() {
	r.stopOnce.Do(func() {
		close(r.stopped)
		if r.net != nil {
			r.net.close()
		}
	})
	r.wg.Wait()
}
