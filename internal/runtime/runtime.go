// Package runtime executes stateful dataflow graphs (§3.3): it materialises
// the whole SDG (no task scheduler), pins TE and SE instances to simulated
// cluster nodes following the four-step allocator, pipelines items through
// per-instance queues with backpressure, enforces the dispatching semantics
// of §4.2, runs the checkpointing loops of §5, recovers failed nodes with
// m-to-n restores plus upstream replay, and reacts to bottlenecks and
// stragglers by growing TE/SE instances at runtime (§3.3, Fig. 10).
package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/metrics"
	"repro/internal/state"
)

// externalOrigin identifies items injected from outside the SDG.
const externalOrigin = ^uint64(0)

// Options configures a deployment.
type Options struct {
	// Cluster supplies the nodes; a fresh unbounded-disk cluster is created
	// when nil.
	Cluster *cluster.Cluster
	// QueueLen bounds each instance's inbound queue (default 1024).
	QueueLen int
	// Partitions sets the initial instance count per SE name (default 1).
	// TEs accessing an SE always have exactly as many instances as the SE.
	Partitions map[string]int
	// Checkpointing.
	Mode     checkpoint.Mode
	Interval time.Duration // checkpoint period (default 10s, as in §6)
	Chunks   int           // chunks per checkpoint = backup parallelism m (default 2)
	Backup   *checkpoint.Backup
	// DeltaCheckpoints enables incremental epochs for dictionary SEs: after
	// an instance's first full checkpoint, subsequent epochs serialise only
	// the keys changed since the previous epoch (plus tombstones) until a
	// compaction trigger forces a fresh base. Stores that cannot track
	// changed keys keep taking full checkpoints.
	DeltaCheckpoints bool
	// CompactEvery forces a new base checkpoint after this many consecutive
	// delta epochs (default 8).
	CompactEvery int
	// CompactRatio forces a new base once the chain's cumulative delta
	// bytes exceed this fraction of the base checkpoint's bytes
	// (default 0.5).
	CompactRatio float64
	// BackupNodes is the number of backup nodes to provision when Backup is
	// nil (default 2).
	BackupNodes int
	// KVShards selects the lock-striped sharded backend for dictionary SEs:
	// when > 0, every KVMap SE without a custom builder is backed by a
	// ShardedKVMap with this many shards (rounded up to a power of two).
	// 0 keeps the single-lock KVMap; < 0 uses a GOMAXPROCS-derived shard
	// count. Checkpoint chunks are format-compatible either way.
	KVShards int
	// WireCheck round-trips every delivered payload through gob, verifying
	// the location-independence restriction of §4.1 ("each object accessed
	// in the program must support transparent serialisation"): a payload
	// that cannot cross a real wire fails loudly instead of silently
	// sharing memory.
	WireCheck bool
}

func (o *Options) defaults() {
	if o.QueueLen <= 0 {
		o.QueueLen = 1024
	}
	if o.Interval <= 0 {
		o.Interval = 10 * time.Second
	}
	if o.Chunks <= 0 {
		o.Chunks = 2
	}
	if o.BackupNodes <= 0 {
		o.BackupNodes = 2
	}
}

// Runtime is a deployed SDG.
type Runtime struct {
	graph *core.Graph
	opts  Options
	cl    *cluster.Cluster
	bk    *checkpoint.Backup

	tes []*teState
	ses []*seState

	pmu     sync.Mutex
	pauseMu map[int]*sync.RWMutex // per node: held (R) while processing

	reqSeq  atomic.Uint64 // request ids for Call
	extSeq  atomic.Uint64 // seq numbers for externally injected items
	replyMu sync.Mutex
	replies map[uint64]chan any

	stopOnce sync.Once
	stopped  chan struct{}
	wg       sync.WaitGroup

	// Latency of Call round trips, recorded centrally for experiments.
	CallLatency *metrics.Histogram
}

// teState tracks one task element and its live instances.
type teState struct {
	def      *core.TE
	mu       sync.RWMutex
	insts    []*teInstance
	out      []*edgeRT
	hasInAll bool                      // any inbound all-to-one edge => gather barrier
	ckptWM   map[int]map[uint64]uint64 // instance idx -> last checkpointed watermarks
	// srcBuf logs externally injected items for entry TEs so post-checkpoint
	// inputs replay after failures; nil when fault tolerance is off.
	srcBuf *dataflow.OutputBuffer
}

// edgeRT is a dataflow edge prepared for dispatch.
type edgeRT struct {
	def    *core.Edge
	router *dataflow.Router
	to     *teState
}

// teInstance is one pipelined worker (§3.1: TEs are materialised, not
// scheduled).
type teInstance struct {
	te   *teState
	idx  int
	node *cluster.Node

	queue   chan core.Item
	dead    chan struct{}
	dedup   *dataflow.Dedup
	gather  *dataflow.Gather
	outBufs []*dataflow.OutputBuffer
	seqCtr  atomic.Uint64

	processed atomic.Int64
	killed    atomic.Bool
}

// originID identifies the instance as an item origin: TE id in the high
// bits, instance index in the low bits. Replacement instances reuse the
// identity so dedup works across recoveries.
func (ti *teInstance) originID() uint64 {
	return uint64(ti.te.def.ID)<<32 | uint64(ti.idx)
}

// seState tracks one state element and its live instances.
type seState struct {
	def   *core.SE
	mu    sync.RWMutex
	insts []*seInstance
}

// seInstance is one SE partition or partial replica, colocated with the
// TE instances of the same index.
type seInstance struct {
	se    *seState
	idx   int
	node  *cluster.Node
	store state.Store
	epoch atomic.Uint64
	// chained is set once this instance has committed a checkpoint of its
	// own, anchoring the backup chain to this store's tracker. Fresh and
	// recovered instances start false, so their first epoch is always a
	// full base — a delta appended to a chain the live store never cut
	// against would restore the wrong state.
	chained atomic.Bool
}

// instName is the durable identity of an SE instance for the backup store.
func (si *seInstance) instName() string {
	return fmt.Sprintf("%s/%d", si.se.def.Name, si.idx)
}

// Deploy validates the graph, allocates it to nodes and starts all workers.
func Deploy(g *core.Graph, opts Options) (*Runtime, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	opts.defaults()
	cl := opts.Cluster
	if cl == nil {
		cl = cluster.New(0, cluster.Config{})
	}
	r := &Runtime{
		graph:       g,
		opts:        opts,
		cl:          cl,
		replies:     make(map[uint64]chan any),
		stopped:     make(chan struct{}),
		pauseMu:     make(map[int]*sync.RWMutex),
		CallLatency: metrics.NewHistogram(0),
	}

	// Backup store for checkpoints.
	if opts.Backup != nil {
		r.bk = opts.Backup
	} else if opts.Mode != checkpoint.ModeOff {
		targets := make([]*cluster.Node, opts.BackupNodes)
		for i := range targets {
			targets[i] = cl.AddNode()
		}
		r.bk = checkpoint.NewBackup(cl, targets)
	}

	// Allocation per §3.3; nodes are created on demand to honour it.
	alloc := g.Allocate()
	nodeOf := make(map[int]*cluster.Node) // allocation node id -> cluster node
	getNode := func(allocID int) *cluster.Node {
		if n, ok := nodeOf[allocID]; ok {
			return n
		}
		n := cl.AddNode()
		nodeOf[allocID] = n
		return n
	}

	// Build SE states.
	for _, se := range g.SEs {
		r.ses = append(r.ses, &seState{def: se})
	}
	// Build TE states and edges.
	for _, te := range g.TEs {
		ts := &teState{def: te}
		for _, e := range g.InEdges(te.ID) {
			if e.Dispatch == core.DispatchAllToOne {
				ts.hasInAll = true
			}
		}
		if te.Entry && opts.Mode != checkpoint.ModeOff {
			ts.srcBuf = &dataflow.OutputBuffer{}
		}
		r.tes = append(r.tes, ts)
	}
	for _, ts := range r.tes {
		for _, e := range r.graph.OutEdges(ts.def.ID) {
			ts.out = append(ts.out, &edgeRT{
				def:    e,
				router: &dataflow.Router{Dispatch: e.Dispatch},
				to:     r.tes[e.To],
			})
		}
	}

	// Instantiate SEs with their initial partition counts, then TEs
	// colocated with them.
	for _, ss := range r.ses {
		n := 1
		if opts.Partitions != nil {
			if p, ok := opts.Partitions[ss.def.Name]; ok && p > 0 {
				n = p
			}
		}
		base := getNode(alloc.SENode[ss.def.ID])
		for i := 0; i < n; i++ {
			node := base
			if i > 0 {
				// Additional partitions/replicas each get their own node,
				// mirroring distributed SEs spanning nodes (§3.2).
				node = cl.AddNode()
			}
			store, err := r.newStore(ss.def)
			if err != nil {
				return nil, err
			}
			ss.insts = append(ss.insts, &seInstance{se: ss, idx: i, node: node, store: store})
		}
	}
	for _, ts := range r.tes {
		n := 1
		var colocate *seState
		if ts.def.Access != nil {
			colocate = r.ses[ts.def.Access.SE]
			n = len(colocate.insts)
		}
		for i := 0; i < n; i++ {
			var node *cluster.Node
			if colocate != nil {
				node = colocate.insts[i].node
			} else {
				node = getNode(alloc.TENode[ts.def.ID])
			}
			ti := r.newInstance(ts, i, node)
			ts.insts = append(ts.insts, ti)
		}
	}

	// Start workers and checkpoint loops.
	for _, ts := range r.tes {
		for _, ti := range ts.insts {
			r.startWorker(ti)
		}
	}
	if r.opts.Mode != checkpoint.ModeOff {
		for _, ss := range r.ses {
			for _, si := range ss.insts {
				r.startCheckpointLoop(si)
			}
		}
	}
	return r, nil
}

// newStore instantiates the backing store for an SE, honouring the KVShards
// backend selection. Custom builders always win; they encode app-specific
// pre-sizing the option must not override.
func (r *Runtime) newStore(def *core.SE) (state.Store, error) {
	var st state.Store
	var err error
	if r.opts.KVShards != 0 && def.Build == nil &&
		(def.Type == state.TypeKVMap || def.Type == state.TypeShardedKVMap) {
		n := r.opts.KVShards
		if n < 0 {
			n = 0 // GOMAXPROCS-derived default
		}
		st = state.NewShardedKVMap(n)
	} else if st, err = def.NewStore(); err != nil {
		return nil, err
	}
	// Only track changed keys when a checkpoint loop will actually cut the
	// tracker: with checkpointing off the set would grow without bound.
	if r.opts.DeltaCheckpoints && r.opts.Mode != checkpoint.ModeOff {
		if ds, ok := st.(state.DeltaStore); ok {
			ds.EnableDeltaTracking()
		}
	}
	return st, nil
}

// deltaPolicy folds the delta-checkpoint options into the checkpoint
// package's policy.
func (r *Runtime) deltaPolicy() checkpoint.Policy {
	return checkpoint.Policy{
		Delta:        r.opts.DeltaCheckpoints,
		CompactEvery: r.opts.CompactEvery,
		CompactRatio: r.opts.CompactRatio,
	}
}

// newInstance builds (but does not start) a TE instance on a node.
func (r *Runtime) newInstance(ts *teState, idx int, node *cluster.Node) *teInstance {
	ti := &teInstance{
		te:      ts,
		idx:     idx,
		node:    node,
		queue:   make(chan core.Item, r.opts.QueueLen),
		dead:    make(chan struct{}),
		dedup:   dataflow.NewDedup(),
		outBufs: make([]*dataflow.OutputBuffer, len(ts.out)),
	}
	for i := range ti.outBufs {
		ti.outBufs[i] = &dataflow.OutputBuffer{}
	}
	if ts.hasInAll {
		ti.gather = dataflow.NewGather()
	}
	return ti
}

// startWorker launches the pipelined processing loop of one TE instance.
func (r *Runtime) startWorker(ti *teInstance) {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		pause := r.pauseFor(ti.node)
		for {
			select {
			case <-r.stopped:
				return
			case <-ti.dead:
				return
			case it := <-ti.queue:
				// A paused node (sync checkpoint) blocks here.
				pause.RLock()
				r.process(ti, it)
				pause.RUnlock()
			}
		}
	}()
}

func (r *Runtime) pauseFor(node *cluster.Node) *sync.RWMutex {
	r.pmu.Lock()
	mu, ok := r.pauseMu[node.ID]
	if !ok {
		mu = &sync.RWMutex{}
		r.pauseMu[node.ID] = mu
	}
	r.pmu.Unlock()
	return mu
}

// process runs one item through the TE's function, honouring dedup and
// all-to-one gather barriers.
func (r *Runtime) process(ti *teInstance, it core.Item) {
	if !ti.dedup.Fresh(it) {
		return
	}
	if ti.gather != nil {
		coll, done := ti.gather.Add(it)
		if !done {
			return
		}
		it.Value = coll
	}
	ti.node.Penalize()
	ctx := &execCtx{r: r, ti: ti, cur: &it}
	ti.te.def.Fn(ctx, it)
	ti.processed.Add(1)
}

// deliver routes an item over an edge to the downstream instances.
func (r *Runtime) deliver(e *edgeRT, it core.Item) {
	e.to.mu.RLock()
	insts := make([]*teInstance, len(e.to.insts))
	copy(insts, e.to.insts)
	e.to.mu.RUnlock()
	if len(insts) == 0 {
		return
	}
	if r.opts.WireCheck && it.Value != nil {
		v, err := wireRoundTrip(it.Value)
		if err != nil {
			panic(fmt.Sprintf("runtime: payload %T violates location independence: %v", it.Value, err))
		}
		it.Value = v
	}
	if e.def.Dispatch == core.DispatchOneToAll {
		// The broadcast wave fixes the collection size for a later merge.
		it.Parts = len(insts)
	}
	targets := e.router.Route(it, len(insts))
	if e.def.Dispatch == core.DispatchOneToAny && len(insts) > 1 {
		// "Dispatched to an arbitrary instance ... for load-balancing"
		// (§3.1): route to the least-loaded live instance, so stragglers
		// absorb only what they can process instead of capping the whole
		// pipeline at n x the slowest rate.
		best, bestLen := -1, 0
		for i, dst := range insts {
			if dst.killed.Load() || dst.node.Failed() {
				continue
			}
			if q := len(dst.queue); best < 0 || q < bestLen {
				best, bestLen = i, q
			}
		}
		if best >= 0 {
			targets = targets[:0]
			targets = append(targets, best)
		}
	}
	for _, t := range targets {
		dst := insts[t]
		if dst.killed.Load() || dst.node.Failed() {
			// Dropped; upstream buffers replay it after recovery.
			continue
		}
		select {
		case dst.queue <- it:
		case <-dst.dead:
		case <-r.stopped:
		}
	}
}

// te looks a TE up by name.
func (r *Runtime) te(name string) (*teState, error) {
	for _, ts := range r.tes {
		if ts.def.Name == name {
			return ts, nil
		}
	}
	return nil, fmt.Errorf("runtime: unknown TE %q", name)
}

// se looks an SE up by name.
func (r *Runtime) se(name string) (*seState, error) {
	for _, ss := range r.ses {
		if ss.def.Name == name {
			return ss, nil
		}
	}
	return nil, fmt.Errorf("runtime: unknown SE %q", name)
}

// Cluster exposes the underlying simulated cluster.
func (r *Runtime) Cluster() *cluster.Cluster { return r.cl }

// Backup exposes the checkpoint store (nil when fault tolerance is off).
func (r *Runtime) Backup() *checkpoint.Backup { return r.bk }

// Stop terminates all workers and loops. It is idempotent.
func (r *Runtime) Stop() {
	r.stopOnce.Do(func() { close(r.stopped) })
	r.wg.Wait()
}
