package runtime

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/state"
	"repro/internal/wire"
)

type wirePayload struct {
	N int
	S string
}

func init() {
	wire.Register(wirePayload{})
}

func TestWireRoundTrip(t *testing.T) {
	got, err := wireRoundTrip(wirePayload{N: 7, S: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := got.(wirePayload); !ok || p.N != 7 || p.S != "x" {
		t.Fatalf("round trip = %#v", got)
	}
	if _, err := wireRoundTrip(make(chan int)); err == nil {
		t.Fatal("channels must fail the wire check")
	}
}

// TestWireRoundTripAllocs pins the deep-copy cost on the WireCheck path:
// the flat codec round-trips a []byte payload in three allocations (input
// boxing, the copied value, result boxing), where the old gob
// encoder+decoder pair cost hundreds. A regression here makes WireCheck
// deployments unusable for perf comparisons.
func TestWireRoundTripAllocs(t *testing.T) {
	v := []byte("some payload bytes")
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := wireRoundTrip(v); err != nil {
			t.Fatal(err)
		}
	}); allocs > 3 {
		t.Fatalf("wireRoundTrip([]byte) = %.1f allocs/op, want <= 3", allocs)
	}
}

func TestWireCheckEndToEnd(t *testing.T) {
	// The KV graph runs correctly with every payload forced through gob,
	// proving the built-in applications satisfy location independence.
	r, err := Deploy(kvGraph(), Options{
		Partitions: map[string]int{"store": 2},
		WireCheck:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	for k := uint64(0); k < 50; k++ {
		if _, err := r.Call("put", k, []byte(fmt.Sprintf("v%d", k)), testTimeout); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 50; k++ {
		got, err := r.Call("get", k, nil, testTimeout)
		if err != nil || got == nil {
			t.Fatalf("get %d = %v, %v", k, got, err)
		}
		if want := fmt.Sprintf("v%d", k); string(got.([]byte)) != want {
			t.Fatalf("get %d = %q", k, got)
		}
	}
}

func TestCyclicGraphIterates(t *testing.T) {
	// §3.1: "cycles specify iterative computation". An iterative refinement
	// loop: the refine TE halves a value and feeds it back to itself until
	// it drops below a threshold, then reports the iteration count.
	type iterMsg struct {
		Value float64
		Round int
	}
	wire.Register(iterMsg{})

	g := core.NewGraph("iter")
	acc := g.AddSE("acc", core.KindPartitioned, state.TypeKVMap, nil)
	refine := g.AddTE("refine", func(ctx core.Context, it core.Item) {
		m := it.Value.(iterMsg)
		kv := ctx.Store().(*state.KVMap)
		kv.Put(it.Key, []byte{byte(m.Round)}) // latest round per key
		if m.Value > 1.0 {
			// Loop back: same key, so the same partition refines again.
			ctx.EmitReq(0, it.Key, iterMsg{Value: m.Value / 2, Round: m.Round + 1})
			return
		}
		ctx.Reply(m.Round)
	}, &core.Access{SE: acc, Mode: core.AccessByKey}, true)
	g.Connect(refine, refine, core.DispatchPartitioned) // the cycle

	if !g.HasCycle() {
		t.Fatal("cycle not detected")
	}
	r, err := Deploy(g, Options{Partitions: map[string]int{"acc": 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	got, err := r.Call("refine", 5, iterMsg{Value: 64, Round: 0}, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	// 64 -> 32 -> 16 -> 8 -> 4 -> 2 -> 1: six halvings.
	if got.(int) != 6 {
		t.Fatalf("converged after %v rounds, want 6", got)
	}
	// State records the final round on the key's partition.
	stats := r.Stats()
	if stats.SEs[0].Entries != 1 {
		t.Fatalf("entries = %d", stats.SEs[0].Entries)
	}
}

func TestDoubleFailureRecovery(t *testing.T) {
	// Two successive kill/recover cycles: the second failure must restore
	// from the epoch taken after the first recovery.
	r, err := Deploy(kvGraph(), Options{
		Mode:     1, // checkpoint.ModeAsync
		Interval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	for k := uint64(0); k < 30; k++ {
		if _, err := r.Call("put", k, []byte{1, byte(k)}, testTimeout); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.CheckpointNow("store", 0); err != nil {
		t.Fatal(err)
	}
	kill := func() {
		node := r.Stats().SEs[0].Nodes[0]
		r.KillNode(node)
	}
	kill()
	if _, err := r.Recover("store", 1); err != nil {
		t.Fatal(err)
	}
	r.Drain(testTimeout)
	// More writes, second checkpoint, second failure.
	for k := uint64(30); k < 60; k++ {
		if _, err := r.Call("put", k, []byte{2, byte(k)}, testTimeout); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.CheckpointNow("store", 0); err != nil {
		t.Fatal(err)
	}
	kill()
	if _, err := r.Recover("store", 1); err != nil {
		t.Fatal(err)
	}
	r.Drain(testTimeout)
	for k := uint64(0); k < 60; k++ {
		got, err := r.Call("get", k, nil, testTimeout)
		if err != nil || got == nil {
			t.Fatalf("get %d after double failure: %v %v", k, got, err)
		}
	}
}

func TestKillDuringCheckpointThenRecover(t *testing.T) {
	// A node failing mid-checkpoint must recover from the previous epoch.
	cl := newSlowCluster(2 << 20)
	r, err := Deploy(kvGraph(), Options{
		Cluster:  cl,
		Mode:     1, // async
		Interval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	for k := uint64(0); k < 2000; k++ {
		if _, err := r.Call("put", k, make([]byte, 128), testTimeout); err != nil {
			t.Fatal(err)
		}
	}
	// Epoch 1 commits fully.
	if _, err := r.CheckpointNow("store", 0); err != nil {
		t.Fatal(err)
	}
	// Epoch 2 starts on the slow disks; kill the node while it is in
	// flight.
	done := make(chan error, 1)
	go func() {
		_, err := r.CheckpointNow("store", 0)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	node := r.Stats().SEs[0].Nodes[0]
	r.KillNode(node)
	<-done // epoch 2 may succeed or fail; either way recovery must work
	if _, err := r.Recover("store", 1); err != nil {
		t.Fatal(err)
	}
	if !r.Drain(30 * time.Second) {
		t.Fatal("drain")
	}
	for k := uint64(0); k < 2000; k += 100 {
		got, err := r.Call("get", k, nil, testTimeout)
		if err != nil || got == nil {
			t.Fatalf("get %d after mid-checkpoint failure: %v %v", k, got, err)
		}
	}
}
