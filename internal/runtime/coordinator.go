package runtime

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/wire"
)

// WorkerEndpoint is one worker process reached over two transports. Data
// carries the ordered stream of injections and calls; Control carries
// heartbeats, snapshots and queries. The split matters for failure
// detection: a worker exerting admission backpressure blocks the data link
// for as long as ingress credit is revoked, and heartbeats queued behind
// that block would time a healthy worker out.
type WorkerEndpoint struct {
	// Addr is the address peer workers dial to deliver cross-worker edge
	// traffic (the worker's own listen address). It may stay empty for
	// single-worker deployments and edge-free graphs, where no worker ever
	// dials another.
	Addr    string
	Data    cluster.Transport
	Control cluster.Transport
}

func (ep WorkerEndpoint) close() {
	if ep.Data != nil {
		ep.Data.Close()
	}
	if ep.Control != nil {
		ep.Control.Close()
	}
}

// CoordOptions configures a distributed deployment.
type CoordOptions struct {
	// Partitions sets each worker's local SE partition counts.
	Partitions map[string]int
	// Worker runtime tuning, passed through in the Deploy message.
	QueueLen    int
	OverflowLen int
	BatchSize   int
	KVShards    int
	WireCheck   bool
	// CallTimeout bounds how long a worker waits for a dataflow reply on
	// behalf of Call (default 10s).
	CallTimeout time.Duration
	// HeartbeatInterval paces liveness probes on the control link (default
	// 1s); HeartbeatMisses consecutive failed probes mark the worker dead
	// (default 3).
	HeartbeatInterval time.Duration
	HeartbeatMisses   int
	// SnapshotChunks is the checkpoint parallelism per store (default 2).
	SnapshotChunks int
	// SnapChunkBytes bounds the encoded payload of one streamed snapshot
	// part (default 1 MiB). Explicit values must lie in
	// [512, cluster.MaxFrameSize/4]: big enough to amortise the part
	// header, small enough that envelope + header + one oversized entry
	// still fit a frame.
	SnapChunkBytes int
	// OnFailure is called (on its own goroutine) when a worker is marked
	// dead, once per death.
	OnFailure func(worker int)
}

func (o *CoordOptions) defaults() {
	if o.CallTimeout <= 0 {
		o.CallTimeout = 10 * time.Second
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = time.Second
	}
	if o.HeartbeatMisses <= 0 {
		o.HeartbeatMisses = 3
	}
	if o.SnapshotChunks <= 0 {
		o.SnapshotChunks = 2
	}
	if o.SnapChunkBytes == 0 {
		o.SnapChunkBytes = 1 << 20
	}
}

// coordWorker is the coordinator's view of one worker.
type coordWorker struct {
	//sdg:lockorder coordworker 70
	mu    sync.Mutex // guards ep and hbStop swaps across recoveries
	ep    WorkerEndpoint
	alive atomic.Bool
	// snap is the last snapshot pulled from this worker, retained as
	// compressed part records; guarded by the coordinator's injMu (all
	// snapshot/recovery flows hold it).
	snap *retainedSnap
	// v1 is sticky once the worker rejects a streaming-snapshot message:
	// every later pull and push uses the monolithic protocol. Guarded by
	// injMu.
	v1     bool
	hbStop chan struct{}
}

func (cw *coordWorker) endpoint() WorkerEndpoint {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	return cw.ep
}

// Coordinator drives a distributed SDG deployment: it owns the graph, the
// external seq space, the per-worker replay logs and the checkpoint
// snapshots, and routes injections to worker processes over the wire
// protocol. Workers execute; the coordinator remembers.
//
// The injection mutex serialises seq assignment, replay logging and
// transmission end to end — released between assignment and send, a later
// seq could overtake an earlier one onto the same worker, and the worker's
// per-origin dedup watermark would drop the overtaken item forever. It is
// also held across checkpoints and recoveries, so replayed items can never
// interleave with (and be overtaken by) fresh higher-seq injections.
type Coordinator struct {
	graphName string
	g         *core.Graph
	opts      CoordOptions
	workers   []*coordWorker

	entry map[string]bool // entry TE names
	keyed map[string]bool // entry TEs routed by key (partitioned access)

	// Sharded placement (multi-worker deployments): the per-worker TE/SE
	// shard tables, the global instance total per entry task (routing), and
	// the peer address list workers dial each other on. Single-worker
	// deployments skip all of it and keep the legacy whole-graph deploy.
	shard      bool
	teShards   []map[string]wire.Shard
	seShards   []map[string]wire.Shard
	entryTotal map[string]int
	addrs      []string

	//sdg:lockorder coordinject 65
	injMu  sync.Mutex
	extSeq uint64
	// encBuf is the reused data-plane encode buffer, guarded by injMu like
	// every sender that fills it. Safe to refill as soon as Transport.Call
	// returns: the TCP client has written the frame out by then, and the
	// Local transport copies the request before handing it to the worker.
	encBuf []byte
	// logs holds one replay log per (entry task, worker): every item sent
	// (or queued for a dead worker) until a worker checkpoint covers it.
	logs map[string][]*dataflow.OutputBuffer
	// snapStreams numbers snapshot pull and restore push streams; never 0,
	// so a worker can tell "no stream" from any real one. Guarded by injMu.
	snapStreams uint64
	// stats tracks the streaming-transfer counters (see SnapStats). Guarded
	// by injMu.
	stats SnapStats

	stopOnce sync.Once
	stopped  chan struct{}
	wg       sync.WaitGroup
}

// NewCoordinator validates the graph for distributed execution, deploys it
// to every worker and starts failure detection.
//
// A multi-worker deployment slices the graph: every SE's global partition
// set (CoordOptions.Partitions, defaulting to one partition per worker)
// splits contiguously across workers, TEs colocate with their SE's slice,
// and dataflow edges whose destination spans workers are cut — each
// worker's runtime delivers the remote share over the peer links named by
// WorkerEndpoint.Addr, with the same routing the in-process path uses over
// the global instance set.
func NewCoordinator(graphName string, eps []WorkerEndpoint, opts CoordOptions) (*Coordinator, error) {
	if len(eps) == 0 {
		return nil, fmt.Errorf("coordinator: no worker endpoints")
	}
	g, err := BuildGraph(graphName)
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if opts.SnapChunkBytes != 0 &&
		(opts.SnapChunkBytes < 512 || opts.SnapChunkBytes > cluster.MaxFrameSize/4) {
		return nil, fmt.Errorf("coordinator: SnapChunkBytes %d out of range [512, %d]",
			opts.SnapChunkBytes, cluster.MaxFrameSize/4)
	}
	opts.defaults()
	c := &Coordinator{
		graphName: graphName,
		g:         g,
		opts:      opts,
		entry:     map[string]bool{},
		keyed:     map[string]bool{},
		logs:      map[string][]*dataflow.OutputBuffer{},
		stopped:   make(chan struct{}),
	}
	for _, te := range g.TEs {
		if !te.Entry {
			continue
		}
		c.entry[te.Name] = true
		c.keyed[te.Name] = te.Access != nil && te.Access.Mode == core.AccessByKey
		bufs := make([]*dataflow.OutputBuffer, len(eps))
		for i := range bufs {
			bufs[i] = &dataflow.OutputBuffer{}
		}
		c.logs[te.Name] = bufs
	}
	if len(eps) > 1 {
		c.computeLayout(eps)
	}
	for i, ep := range eps {
		cw := &coordWorker{ep: ep}
		cw.alive.Store(true)
		c.workers = append(c.workers, cw)
		if err := c.deployTo(i, cw, false); err != nil {
			// Unwind: close everything already connected.
			for _, w := range c.workers {
				w.endpoint().close()
			}
			return nil, fmt.Errorf("coordinator: deploy to worker %d: %w", i, err)
		}
	}
	for i, cw := range c.workers {
		c.startHeartbeat(i, cw)
	}
	return c, nil
}

// computeLayout fixes the global placement of a multi-worker deployment:
// every SE gets a global partition count (Partitions[name], defaulting to
// one partition per worker — the layout edge-free deployments always had),
// split contiguously across workers; a TE colocates with its SE's slice,
// and a stateless TE runs as a single global instance on worker 0. Entry
// routing and cross-worker edge routing both derive from this one table,
// which is what keeps a cut edge semantically identical to a local one.
func (c *Coordinator) computeLayout(eps []WorkerEndpoint) {
	W := len(eps)
	c.shard = true
	c.addrs = make([]string, W)
	for i, ep := range eps {
		c.addrs[i] = ep.Addr
	}
	c.teShards = make([]map[string]wire.Shard, W)
	c.seShards = make([]map[string]wire.Shard, W)
	for w := 0; w < W; w++ {
		c.teShards[w] = make(map[string]wire.Shard, len(c.g.TEs))
		c.seShards[w] = make(map[string]wire.Shard, len(c.g.SEs))
	}
	for _, se := range c.g.SEs {
		total := W
		if p, ok := c.opts.Partitions[se.Name]; ok && p > 0 {
			total = p
		}
		for w := 0; w < W; w++ {
			first, cnt := shardSplit(total, w, W)
			c.seShards[w][se.Name] = wire.Shard{First: first, Count: cnt, Total: total}
		}
	}
	c.entryTotal = make(map[string]int)
	for _, te := range c.g.TEs {
		for w := 0; w < W; w++ {
			var sh wire.Shard
			if te.Access != nil {
				sh = c.seShards[w][c.g.SEs[te.Access.SE].Name]
			} else {
				first, cnt := shardSplit(1, w, W)
				sh = wire.Shard{First: first, Count: cnt, Total: 1}
			}
			c.teShards[w][te.Name] = sh
		}
		if te.Entry {
			c.entryTotal[te.Name] = c.teShards[0][te.Name].Total
		}
	}
}

// deployTo sends the Deploy message over the worker's data link.
func (c *Coordinator) deployTo(w int, cw *coordWorker, awaitRestore bool) error {
	d := wire.Deploy{
		Graph:       c.graphName,
		QueueLen:    c.opts.QueueLen,
		OverflowLen: c.opts.OverflowLen,
		BatchSize:   c.opts.BatchSize,
		KVShards:    c.opts.KVShards,
		WireCheck:   c.opts.WireCheck,
	}
	if c.shard {
		d.Worker = w
		d.Workers = len(c.addrs)
		d.TEShards = c.teShards[w]
		d.SEShards = c.seShards[w]
		d.Peers = c.addrs
		d.AwaitRestore = awaitRestore
	} else {
		d.Partitions = c.opts.Partitions
	}
	frame, err := wire.Encode(wire.MsgDeploy, d)
	if err != nil {
		return err
	}
	var ack wire.DeployAck
	return call(cw.endpoint().Data, frame, wire.MsgDeployAck, &ack)
}

// call sends one encoded request over a transport and decodes the expected
// reply type.
func call(tr cluster.Transport, frame []byte, want byte, out any) error {
	resp, err := tr.Call(frame)
	if err != nil {
		return err
	}
	return wire.Expect(resp, want, out)
}

// route picks the worker for an item. Sharded deployments route in two
// steps through the same global instance space workers use internally: the
// key (or seq rotation) names a global entry instance, and the shard table
// names the worker owning it. The legacy single-worker forms both collapse
// to worker 0.
func (c *Coordinator) route(task string, it core.Item) int {
	if c.shard {
		total := c.entryTotal[task]
		if total <= 0 {
			total = 1
		}
		g := int(it.Seq % uint64(total))
		if c.keyed[task] {
			g = statePartition(it.Key, total)
		}
		return shardOwner(total, len(c.workers), g)
	}
	if c.keyed[task] {
		return statePartition(it.Key, len(c.workers))
	}
	return int(it.Seq % uint64(len(c.workers)))
}

// Inject delivers one fire-and-forget item.
func (c *Coordinator) Inject(task string, key uint64, value any) error {
	return c.InjectBatch(task, []InjectItem{{Key: key, Value: value}})
}

// InjectBatch assigns seqs, logs and transmits a batch of items. Items
// routed to a dead worker are logged and delivered by the recovery replay —
// the distributed mirror of in-process injection parking items for a failed
// partition — so accepted items are never lost. A transport failure
// mid-send marks the worker dead and leaves the sub-batch queued the same
// way; only an application-level rejection (admission shed, unknown task)
// returns an error, and those items are the caller's to retry.
func (c *Coordinator) InjectBatch(task string, items []InjectItem) error {
	if len(items) == 0 {
		return nil
	}
	c.injMu.Lock()
	defer c.injMu.Unlock()
	logs, ok := c.logs[task]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotEntry, task)
	}
	// Assign seqs and group per worker, preserving seq order within each
	// group.
	subs := make([][]core.Item, len(c.workers))
	for _, in := range items {
		c.extSeq++
		it := core.Item{Origin: externalOrigin, Seq: c.extSeq, Key: in.Key, Value: in.Value}
		w := c.route(task, it)
		subs[w] = append(subs[w], it)
	}
	var rejected error
	for w, sub := range subs {
		if len(sub) == 0 {
			continue
		}
		cw := c.workers[w]
		if !cw.alive.Load() {
			logs[w].AppendBatch(sub) // queued; recovery replays
			continue
		}
		frame, err := wire.EncodeAppend(c.encBuf[:0], wire.MsgInject, wire.Inject{Task: task, Items: sub})
		if err != nil {
			return err
		}
		c.encBuf = frame
		var ack wire.InjectAck
		err = call(cw.endpoint().Data, frame, wire.MsgInjectAck, &ack)
		switch {
		case err == nil:
			logs[w].AppendBatch(sub)
		case errors.Is(err, cluster.ErrRemote):
			// The worker is healthy and said no (shed, unknown task): the
			// items never entered and must not be replayed later.
			rejected = err
		default:
			// Transport failure: delivery is ambiguous, so log the items
			// anyway — if the worker did enqueue them, the replay duplicates
			// are filtered by seq; if not, the replay is the delivery.
			logs[w].AppendBatch(sub)
			c.markDead(w)
		}
	}
	return rejected
}

// Call injects a request item to its worker and waits for the dataflow's
// reply. Successful (and transport-ambiguous) calls are logged for replay;
// application-level failures are not — with one documented gap: a call
// that times out worker-side reports an error but may still have been
// applied, and is not replayed. Idempotent request paths (as in the kv
// store) are immune.
func (c *Coordinator) Call(task string, key uint64, value any, timeout time.Duration) (any, error) {
	c.injMu.Lock()
	defer c.injMu.Unlock()
	logs, ok := c.logs[task]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotEntry, task)
	}
	c.extSeq++
	it := core.Item{Origin: externalOrigin, Seq: c.extSeq, Key: key, Value: value}
	w := c.route(task, it)
	cw := c.workers[w]
	if !cw.alive.Load() {
		return nil, fmt.Errorf("coordinator: worker %d is down", w)
	}
	if timeout <= 0 {
		timeout = c.opts.CallTimeout
	}
	frame, err := wire.EncodeAppend(c.encBuf[:0], wire.MsgCall, wire.Call{Task: task, Item: it, TimeoutMs: timeout.Milliseconds()})
	if err != nil {
		return nil, err
	}
	c.encBuf = frame
	resp, err := cw.endpoint().Data.Call(frame)
	if err != nil {
		if errors.Is(err, cluster.ErrRemote) {
			return nil, err
		}
		// Ambiguous transport failure: the worker may have applied the
		// item, so it must survive into the replay log before the caller
		// hears anything.
		logs[w].AppendBatch([]core.Item{it})
		c.markDead(w)
		return nil, err
	}
	var reply wire.CallReply
	if err := wire.Expect(resp, wire.MsgCallReply, &reply); err != nil {
		return nil, err
	}
	logs[w].AppendBatch([]core.Item{it})
	return reply.Value, nil
}

// startHeartbeat probes one worker on its control link until it dies or
// the coordinator stops. The stop channel is per incarnation: recovery
// starts a fresh loop against the replacement endpoint.
func (c *Coordinator) startHeartbeat(w int, cw *coordWorker) {
	stop := make(chan struct{})
	cw.mu.Lock()
	cw.hbStop = stop
	cw.mu.Unlock()
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		ticker := time.NewTicker(c.opts.HeartbeatInterval)
		defer ticker.Stop()
		misses := 0
		var seq uint64
		// The probe frame is encoded once: the flat layout gives the seq a
		// fixed 8-byte slot after the envelope header, patched in place
		// every beat (0 allocs/probe). The transport is done with the frame
		// when Call returns, so the patch never races a send.
		frame, err := wire.Encode(wire.MsgHeartbeat, wire.Heartbeat{})
		if err != nil {
			return
		}
		for {
			select {
			case <-c.stopped:
				return
			case <-stop:
				return
			case <-ticker.C:
			}
			seq++
			binary.LittleEndian.PutUint64(frame[2:], seq)
			var ack wire.HeartbeatAck
			if err := call(cw.endpoint().Control, frame, wire.MsgHeartbeatAck, &ack); err != nil || ack.Seq != seq {
				misses++
				if misses >= c.opts.HeartbeatMisses {
					c.markDead(w)
					return
				}
				continue
			}
			misses = 0
		}
	}()
}

// markDead transitions a worker to dead exactly once: closes its transports
// (failing in-flight and future sends fast, which is also how a hung — not
// crashed — worker stops wedging the data link), stops its heartbeat loop
// and fires the failure callback.
func (c *Coordinator) markDead(w int) {
	cw := c.workers[w]
	if !cw.alive.Swap(false) {
		return
	}
	cw.mu.Lock()
	ep := cw.ep
	stop := cw.hbStop
	cw.mu.Unlock()
	ep.close()
	if stop != nil {
		close(stop)
	}
	if c.opts.OnFailure != nil {
		go c.opts.OnFailure(w)
	}
}

// WorkerAlive reports the failure detector's view of a worker.
func (c *Coordinator) WorkerAlive(w int) bool {
	return w >= 0 && w < len(c.workers) && c.workers[w].alive.Load()
}

// Workers reports the deployment width.
func (c *Coordinator) Workers() int { return len(c.workers) }

// Checkpoint pulls a consistent snapshot from every live worker, stores it
// as that worker's recovery point, and trims the replay logs the snapshot
// covers (§5: upstream buffers drop items older than all downstream
// checkpoints). Held under the injection mutex so the snapshot's
// watermarks and the log contents cannot shear. Snapshots stream in chunk
// by chunk (pullSnapshot), so no worker's whole state ever crosses as one
// frame or sits uncompressed in coordinator memory.
func (c *Coordinator) Checkpoint() error {
	c.injMu.Lock()
	defer c.injMu.Unlock()
	var firstErr error
	c.stats.Workers, c.stats.Chunks = 0, 0
	c.stats.RawBytes, c.stats.StoredBytes = 0, 0
	fresh := make(map[int]*retainedSnap)
	for w, cw := range c.workers {
		if !cw.alive.Load() {
			continue
		}
		rs, err := c.pullSnapshot(w, cw)
		if err != nil {
			if !errors.Is(err, cluster.ErrRemote) {
				c.markDead(w)
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("coordinator: snapshot worker %d: %w", w, err)
			}
			continue
		}
		cw.snap = rs
		fresh[w] = rs
		c.trimLogs(w, rs.tes)
		c.stats.Workers++
		c.stats.Chunks += len(rs.recs)
		c.stats.RawBytes += rs.rawBytes
		c.stats.StoredBytes += rs.storedBytes
	}
	c.trimCovered(fresh)
	return firstErr
}

// trimCovered broadcasts everything this checkpoint round proved durable:
// per-(edge, destination instance) trim points for the cross-worker edge
// send logs (sharded deployments), and per-TE local trim floors for the
// worker-local replay buffers (localTrims). Only instances snapshotted
// this round feed the edge trims — a worker that missed the round keeps
// its older restore point, and items it may still need stay logged at the
// senders.
func (c *Coordinator) trimCovered(fresh map[int]*retainedSnap) {
	var trims []wire.EdgeTrimEntry
	if c.shard && len(fresh) > 0 {
		for gi, e := range c.g.Edges {
			dst := c.g.TEs[e.To].Name
			for w, rs := range fresh {
				sh := c.teShards[w][dst]
				for _, t := range rs.tes {
					if t.TE != dst || len(t.Watermarks) == 0 {
						continue
					}
					trims = append(trims, wire.EdgeTrimEntry{Edge: gi, Inst: sh.First + t.Index, Watermarks: t.Watermarks})
				}
			}
		}
	}
	locals := c.localTrims()
	if len(trims) == 0 && len(locals) == 0 {
		return
	}
	frame, err := wire.Encode(wire.MsgEdgeTrim, wire.EdgeTrim{Trims: trims, Locals: locals})
	if err != nil {
		return
	}
	for _, cw := range c.workers {
		if !cw.alive.Load() {
			continue
		}
		var ack wire.EdgeTrimAck
		// Best-effort: a failed trim only delays log truncation until the
		// next checkpoint; the failure detector owns marking workers dead.
		_ = call(cw.endpoint().Control, frame, wire.MsgEdgeTrimAck, &ack)
	}
}

// trimLogs drops replay-log items the worker's snapshot durably covers:
// for each entry task, the per-origin minimum watermark across every one
// of the worker's instances of that task (an origin missing from any
// instance's map cannot be trimmed — that instance may still need those
// items replayed, mirroring the in-process trim rule).
func (c *Coordinator) trimLogs(w int, tes []wire.TESnap) {
	byTask := map[string][]wire.TESnap{}
	for _, t := range tes {
		byTask[t.TE] = append(byTask[t.TE], t)
	}
	for task, bufs := range c.logs {
		snaps := byTask[task]
		if len(snaps) == 0 {
			continue
		}
		var min map[uint64]uint64
		for i, t := range snaps {
			if i == 0 {
				min = make(map[uint64]uint64, len(t.Watermarks))
				for o, s := range t.Watermarks {
					min[o] = s
				}
				continue
			}
			for o := range min {
				s, ok := t.Watermarks[o]
				if !ok {
					delete(min, o)
				} else if s < min[o] {
					min[o] = s
				}
			}
		}
		if len(min) > 0 {
			bufs[w].Trim(min)
		}
	}
}

// PendingReplay reports the replay-log depth for one task and worker —
// the items a recovery of that worker would re-deliver.
func (c *Coordinator) PendingReplay(task string, w int) int {
	c.injMu.Lock()
	defer c.injMu.Unlock()
	bufs, ok := c.logs[task]
	if !ok || w < 0 || w >= len(bufs) {
		return 0
	}
	return bufs[w].Len()
}

// replayChunk bounds the items per replay Inject message so a long log
// never exceeds the frame size bound.
const replayChunk = 256

// RecoverWorker brings a dead worker slot back on a replacement endpoint:
// deploy the graph, restore the last pulled snapshot, replay the logged
// items its watermarks do not cover, and resume routing and failure
// detection. The injection mutex is held throughout, so no fresh injection
// can slip ahead of the replay and trip the dedup watermark over items
// still in flight.
func (c *Coordinator) RecoverWorker(w int, ep WorkerEndpoint) error {
	if w < 0 || w >= len(c.workers) {
		return fmt.Errorf("coordinator: no worker %d", w)
	}
	c.injMu.Lock()
	defer c.injMu.Unlock()
	cw := c.workers[w]
	if cw.alive.Load() {
		return fmt.Errorf("coordinator: worker %d is still alive", w)
	}
	cw.mu.Lock()
	cw.ep = ep
	cw.mu.Unlock()
	if c.shard {
		// The replacement listens somewhere new; its own deploy and every
		// peer notification below must carry the current address.
		c.addrs[w] = ep.Addr
	}
	fail := func(err error) error {
		ep.close()
		return err
	}
	// A worker with a restore point deploys sealed (AwaitRestore): peers may
	// start re-sending edge items the moment they learn the new address, and
	// a pre-restore delivery would be double-counted after the import wipes
	// the dedup state.
	if err := c.deployTo(w, cw, c.shard && cw.snap != nil); err != nil {
		return fail(fmt.Errorf("coordinator: redeploy worker %d: %w", w, err))
	}
	if cw.snap != nil {
		if err := c.pushSnapshot(w, cw, ep); err != nil {
			return fail(fmt.Errorf("coordinator: restore worker %d: %w", w, err))
		}
	}
	for task, bufs := range c.logs {
		items := bufs[w].Replay()
		for start := 0; start < len(items); start += replayChunk {
			end := start + replayChunk
			if end > len(items) {
				end = len(items)
			}
			frame, err := wire.Encode(wire.MsgInject, wire.Inject{Task: task, Items: items[start:end]})
			if err != nil {
				return fail(err)
			}
			var ack wire.InjectAck
			if err := call(ep.Data, frame, wire.MsgInjectAck, &ack); err != nil {
				return fail(fmt.Errorf("coordinator: replay %q to worker %d: %w", task, w, err))
			}
		}
	}
	if c.shard {
		// Tell the surviving workers where the replacement lives: each one
		// rebuilds its send queue for w from its edge logs and re-delivers
		// everything the last checkpoint did not cover (the receiver's
		// restored dedup watermarks drop the rest). Best-effort per peer —
		// a peer that fails here is the failure detector's problem, not
		// this recovery's.
		if frame, err := wire.Encode(wire.MsgPeers, wire.Peers{Worker: w, Addr: ep.Addr}); err == nil {
			for pw, pcw := range c.workers {
				if pw == w || !pcw.alive.Load() {
					continue
				}
				var ack wire.PeersAck
				_ = call(pcw.endpoint().Control, frame, wire.MsgPeersAck, &ack)
			}
		}
	}
	cw.alive.Store(true)
	c.startHeartbeat(w, cw)
	return nil
}

// queryLive runs one request against every live worker's control link.
func (c *Coordinator) queryLive(frame []byte, want byte, each func(w int, payload wire.Payload) error) error {
	for w, cw := range c.workers {
		if !cw.alive.Load() {
			continue
		}
		resp, err := cw.endpoint().Control.Call(frame)
		if err != nil {
			return fmt.Errorf("coordinator: worker %d: %w", w, err)
		}
		t, payload, err := wire.Decode(resp)
		if err != nil {
			return err
		}
		if t != want {
			return fmt.Errorf("%w: got %s, want %s", wire.ErrUnexpectedType, wire.MsgName(t), wire.MsgName(want))
		}
		if err := each(w, payload); err != nil {
			return err
		}
	}
	return nil
}

// DumpKV returns the union of a dictionary SE's contents across live
// workers. Keys are disjoint across workers under keyed routing, so the
// union is exactly the global store.
func (c *Coordinator) DumpKV(seName string) (map[uint64][]byte, error) {
	frame, err := wire.Encode(wire.MsgDumpReq, wire.DumpReq{SE: seName})
	if err != nil {
		return nil, err
	}
	out := make(map[uint64][]byte)
	err = c.queryLive(frame, wire.MsgDump, func(_ int, payload wire.Payload) error {
		var dump wire.Dump
		if err := wire.Unmarshal(payload, &dump); err != nil {
			return err
		}
		for _, e := range dump.Entries {
			out[e.Key] = e.Value
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FoldedWatermarks folds (max per origin) one task's dedup watermarks
// across all live workers — the distributed counterpart of
// Runtime.FoldedWatermarks.
func (c *Coordinator) FoldedWatermarks(task string) (map[uint64]uint64, error) {
	frame, err := wire.Encode(wire.MsgStatsReq, wire.StatsReq{})
	if err != nil {
		return nil, err
	}
	out := make(map[uint64]uint64)
	err = c.queryLive(frame, wire.MsgStats, func(_ int, payload wire.Payload) error {
		var stats wire.Stats
		if err := wire.Unmarshal(payload, &stats); err != nil {
			return err
		}
		for o, s := range stats.Watermarks[task] {
			if cur, ok := out[o]; !ok || s > cur {
				out[o] = s
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Processed sums one task's processed counters across live workers.
func (c *Coordinator) Processed(task string) (int64, error) {
	frame, err := wire.Encode(wire.MsgStatsReq, wire.StatsReq{})
	if err != nil {
		return 0, err
	}
	var total int64
	err = c.queryLive(frame, wire.MsgStats, func(_ int, payload wire.Payload) error {
		var stats wire.Stats
		if err := wire.Unmarshal(payload, &stats); err != nil {
			return err
		}
		total += stats.Processed[task]
		return nil
	})
	return total, err
}

// Drain blocks until the whole deployment quiesces: every live worker
// reports empty queues and no unacked cross-worker edge frames, twice in a
// row with unchanged processed totals. One quiesced round is not enough
// once workers feed each other over edges: worker A can answer quiet and
// only then receive items B emitted after A's answer. A repeated
// all-quiet round with stable progress counters proves no item moved
// between the two observations.
func (c *Coordinator) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	var prev []int64
	quietOnce := false
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return false
		}
		frame, err := wire.Encode(wire.MsgDrainReq, wire.DrainReq{TimeoutMs: remaining.Milliseconds()})
		if err != nil {
			return false
		}
		all := true
		var cur []int64
		err = c.queryLive(frame, wire.MsgDrainAck, func(w int, payload wire.Payload) error {
			var ack wire.DrainAck
			if err := wire.Unmarshal(payload, &ack); err != nil {
				return err
			}
			all = all && ack.Quiesced
			// Pairing each total with its worker id keeps a membership
			// change between rounds from matching by coincidence.
			cur = append(cur, int64(w), ack.Processed)
			return nil
		})
		if err != nil {
			return false
		}
		if all && quietOnce && int64sEqual(prev, cur) {
			return true
		}
		quietOnce = all
		prev = cur
		if !all {
			time.Sleep(2 * time.Millisecond)
		}
	}
}

func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Close stops failure detection, asks live workers to shut down
// (best-effort) and closes every transport. Idempotent.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() {
		close(c.stopped)
		c.wg.Wait()
		frame, err := wire.Encode(wire.MsgStop, wire.Stop{})
		for _, cw := range c.workers {
			if cw.alive.Load() && err == nil {
				var ack wire.StopAck
				_ = call(cw.endpoint().Data, frame, wire.MsgStopAck, &ack)
			}
			cw.endpoint().close()
		}
	})
}
