package runtime

import (
	"sort"

	"repro/internal/state"
)

// TEStats is a point-in-time view of one task element.
type TEStats struct {
	Name          string
	Instances     int
	Queued        int   // summed inbound items on live instances (queued + in-flight batch)
	Overflow      int   // items parked in overflow, including on dead instances
	Backpressured bool  // live parked overflow at/over OverflowLen x live instances
	Shed          int64 // externally offered items rejected by admission
	Processed     int64 // items processed across instances, incl. retired ones
	GatherPending int   // incomplete all-to-one waves across instances
	Nodes         []int // hosting node ids
}

// SEStats is a point-in-time view of one state element.
type SEStats struct {
	Name      string
	Kind      string
	Instances int
	Bytes     int64 // summed across instances
	Entries   int
	Nodes     []int
}

// Stats reports the live topology and counters, used by the monitoring
// loops and the experiment harness.
type Stats struct {
	TEs   []TEStats
	SEs   []SEStats
	Nodes int
}

// Stats snapshots the runtime.
func (r *Runtime) Stats() Stats {
	var out Stats
	for _, ts := range r.tes {
		ts.mu.RLock()
		s := TEStats{Name: ts.def.Name, Instances: len(ts.insts), Shed: ts.shed.Load(),
			Processed: ts.retiredProcessed.Load()}
		liveParked, live := 0, 0
		for _, ti := range ts.insts {
			// Parked overflow is reported for dead instances too: that is
			// where entry items keyed to a failed partition wait, and an
			// operator must be able to see them.
			s.Overflow += int(ti.overflow.Items())
			if ti.killed.Load() {
				continue
			}
			live++
			liveParked += int(ti.overflow.Items())
			s.Queued += int(ti.queued.Load())
			s.Processed += ti.processed.Load()
			if ti.gather != nil {
				s.GatherPending += ti.gather.Pending()
			}
			s.Nodes = append(s.Nodes, ti.node.ID)
		}
		ts.mu.RUnlock()
		s.Backpressured = live > 0 && liveParked >= r.opts.OverflowLen*live
		sort.Ints(s.Nodes)
		out.TEs = append(out.TEs, s)
	}
	for _, ss := range r.ses {
		ss.mu.RLock()
		s := SEStats{Name: ss.def.Name, Kind: ss.def.Kind.String(), Instances: len(ss.insts)}
		for _, si := range ss.insts {
			s.Bytes += si.store.SizeBytes()
			s.Entries += si.store.NumEntries()
			s.Nodes = append(s.Nodes, si.node.ID)
		}
		ss.mu.RUnlock()
		sort.Ints(s.Nodes)
		out.SEs = append(out.SEs, s)
	}
	out.Nodes = r.cl.Size()
	return out
}

// Processed reports total items processed by the named TE.
func (r *Runtime) Processed(teName string) int64 {
	ts, err := r.te(teName)
	if err != nil {
		return 0
	}
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	total := ts.retiredProcessed.Load()
	for _, ti := range ts.insts {
		total += ti.processed.Load()
	}
	return total
}

// ProcessedTotal sums processed items across every TE — the progress
// fingerprint drain acks carry so the coordinator can tell "quiet because
// done" from "quiet because the next hop has not landed yet".
func (r *Runtime) ProcessedTotal() int64 {
	var total int64
	for _, ts := range r.tes {
		total += r.Processed(ts.def.Name)
	}
	return total
}

// Instances reports the live instance count of the named TE.
func (r *Runtime) Instances(teName string) int {
	ts, err := r.te(teName)
	if err != nil {
		return 0
	}
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	return len(ts.insts)
}

// StateStore returns SE instance idx's store for white-box assertions in
// tests and applications that read state out-of-band (e.g. wordcount
// window snapshots).
func (r *Runtime) StateStore(seName string, idx int) (state.Store, error) {
	ss, err := r.se(seName)
	if err != nil {
		return nil, err
	}
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	if idx < 0 || idx >= len(ss.insts) {
		return nil, errOutOfRange(seName, idx, len(ss.insts))
	}
	return ss.insts[idx].store, nil
}

// StateInstances reports the live instance count of the named SE.
func (r *Runtime) StateInstances(seName string) int {
	ss, err := r.se(seName)
	if err != nil {
		return 0
	}
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	return len(ss.insts)
}

func errOutOfRange(se string, idx, n int) error {
	return &rangeError{se: se, idx: idx, n: n}
}

type rangeError struct {
	se  string
	idx int
	n   int
}

func (e *rangeError) Error() string {
	return "runtime: SE " + e.se + " instance index out of range"
}
