package runtime_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/apps/counter"
	_ "repro/internal/apps/kv"
	"repro/internal/cluster"
	"repro/internal/runtime"
	"repro/internal/wire"
)

// deployLocalWorker spins up one in-process worker behind a single-worker
// coordinator on the named graph and returns both plus a raw control
// transport into the worker's handler for protocol-level tests.
func deployLocalWorker(t *testing.T, graph string, opts runtime.CoordOptions) (*runtime.Worker, *runtime.Coordinator, cluster.Transport) {
	t.Helper()
	w := runtime.NewWorker()
	t.Cleanup(w.Close)
	ep := runtime.WorkerEndpoint{
		Data:    cluster.Local(w.Handler(), 0),
		Control: cluster.Local(w.Handler(), 0),
	}
	coord, err := runtime.NewCoordinator(graph, []runtime.WorkerEndpoint{ep}, opts)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	t.Cleanup(coord.Close)
	return w, coord, cluster.Local(w.Handler(), 0)
}

// mustEncode encodes a frame or fails the test.
func mustEncode(t *testing.T, msgType byte, v any) []byte {
	t.Helper()
	frame, err := wire.Encode(msgType, v)
	if err != nil {
		t.Fatalf("encode %s: %v", wire.MsgName(msgType), err)
	}
	return frame
}

// TestSnapshotStreamServeProtocol drives the worker's pull protocol with
// hand-built frames: a full drain to SnapEnd, exact re-serve of a retried
// seq, and rejection of out-of-order and unknown-stream requests.
func TestSnapshotStreamServeProtocol(t *testing.T) {
	_, coord, tr := deployLocalWorker(t, "counter", runtime.CoordOptions{})
	for i := 0; i < 200; i++ {
		if err := coord.Inject("inc", uint64(i%10), nil); err != nil {
			t.Fatalf("inject: %v", err)
		}
	}
	if !coord.Drain(10 * time.Second) {
		t.Fatal("did not quiesce")
	}

	// Unknown stream before any SnapBegin.
	if _, err := tr.Call(mustEncode(t, wire.MsgSnapNext, wire.SnapNext{Stream: 1, Seq: 1})); !errors.Is(err, cluster.ErrRemote) {
		t.Fatalf("SnapNext without stream: err = %v, want remote error", err)
	}

	begin := func(stream uint64) {
		t.Helper()
		resp, err := tr.Call(mustEncode(t, wire.MsgSnapBegin, wire.SnapBegin{Stream: stream, MaxBytes: 256}))
		if err != nil {
			t.Fatalf("SnapBegin: %v", err)
		}
		var ack wire.SnapBeginAck
		if err := wire.Expect(resp, wire.MsgSnapBeginAck, &ack); err != nil || ack.Stream != stream {
			t.Fatalf("SnapBeginAck: %+v, %v", ack, err)
		}
	}

	// Stream 1: retried seq must re-serve the identical frame.
	begin(1)
	first, err := tr.Call(mustEncode(t, wire.MsgSnapNext, wire.SnapNext{Stream: 1, Seq: 1}))
	if err != nil {
		t.Fatalf("SnapNext 1: %v", err)
	}
	again, err := tr.Call(mustEncode(t, wire.MsgSnapNext, wire.SnapNext{Stream: 1, Seq: 1}))
	if err != nil {
		t.Fatalf("retried SnapNext 1: %v", err)
	}
	if !bytes.Equal(first, again) {
		t.Fatal("retried seq did not re-serve the identical frame")
	}
	// A seq gap kills the stream...
	if _, err := tr.Call(mustEncode(t, wire.MsgSnapNext, wire.SnapNext{Stream: 1, Seq: 5})); !errors.Is(err, cluster.ErrRemote) {
		t.Fatalf("out-of-order seq: err = %v, want remote error", err)
	}
	// ...so even the next dense seq is now unknown.
	if _, err := tr.Call(mustEncode(t, wire.MsgSnapNext, wire.SnapNext{Stream: 1, Seq: 2})); !errors.Is(err, cluster.ErrRemote) {
		t.Fatalf("seq after kill: err = %v, want remote error", err)
	}

	// Stream 2 supersedes and drains fully; SnapEnd's count must match and
	// every chunk frame respects the requested byte bound (modulo header
	// and one entry).
	begin(2)
	var chunks uint64
	for seq := uint64(1); ; seq++ {
		resp, err := tr.Call(mustEncode(t, wire.MsgSnapNext, wire.SnapNext{Stream: 2, Seq: seq}))
		if err != nil {
			t.Fatalf("SnapNext %d: %v", seq, err)
		}
		msgType, payload, err := wire.Decode(resp)
		if err != nil {
			t.Fatalf("decode reply %d: %v", seq, err)
		}
		if msgType == wire.MsgSnapChunk {
			var ck wire.SnapChunk
			if err := wire.Unmarshal(payload, &ck); err != nil {
				t.Fatalf("chunk %d: %v", seq, err)
			}
			if ck.Stream != 2 || ck.Seq != seq {
				t.Fatalf("chunk ids %d/%d, want 2/%d", ck.Stream, ck.Seq, seq)
			}
			if len(resp) > 256+1024 {
				t.Fatalf("chunk frame %d bytes exceeds the 256-byte bound by more than a header + one entry", len(resp))
			}
			chunks++
			continue
		}
		var end wire.SnapEnd
		if err := wire.Expect(resp, wire.MsgSnapEnd, &end); err != nil {
			t.Fatalf("expected SnapEnd: %v", err)
		}
		if end.Stream != 2 || end.Chunks != chunks {
			t.Fatalf("SnapEnd %+v, want stream 2 with %d chunks", end, chunks)
		}
		// Retrying the final seq re-serves SnapEnd.
		respAgain, err := tr.Call(mustEncode(t, wire.MsgSnapNext, wire.SnapNext{Stream: 2, Seq: seq}))
		if err != nil || !bytes.Equal(resp, respAgain) {
			t.Fatalf("retried SnapEnd diverged (err %v)", err)
		}
		break
	}
	if chunks < 2 {
		t.Fatalf("stream served %d chunk(s); the 256-byte bound should have split the state", chunks)
	}
}

// TestRestoreStreamApplyProtocol drives the worker's push protocol with
// hand-built frames: duplicate-seq ack without re-apply, out-of-order
// abort, truncation detection, and the lost-final-ack retry.
func TestRestoreStreamApplyProtocol(t *testing.T) {
	_, _, tr := deployLocalWorker(t, "counter", runtime.CoordOptions{})

	tePart := wire.SnapPart{Kind: wire.PartTE, Name: "inc", Index: 0,
		Watermarks: map[uint64]uint64{1: 5}, OutSeq: 3}

	call := func(msgType byte, v any) ([]byte, error) { return tr.Call(mustEncode(t, msgType, v)) }

	if _, err := call(wire.MsgRestoreChunk, wire.RestoreChunk{Stream: 9, Seq: 1, Part: tePart}); !errors.Is(err, cluster.ErrRemote) {
		t.Fatalf("chunk without stream: err = %v, want remote error", err)
	}

	beginRestore := func(stream uint64) {
		t.Helper()
		resp, err := call(wire.MsgRestoreBegin, wire.RestoreBegin{Stream: stream})
		if err != nil {
			t.Fatalf("RestoreBegin: %v", err)
		}
		var ack wire.RestoreBeginAck
		if err := wire.Expect(resp, wire.MsgRestoreBeginAck, &ack); err != nil || ack.Stream != stream {
			t.Fatalf("RestoreBeginAck: %+v, %v", ack, err)
		}
	}
	sendChunk := func(stream, seq uint64) error {
		resp, err := call(wire.MsgRestoreChunk, wire.RestoreChunk{Stream: stream, Seq: seq, Part: tePart})
		if err != nil {
			return err
		}
		var ack wire.RestoreChunkAck
		if err := wire.Expect(resp, wire.MsgRestoreChunkAck, &ack); err != nil {
			return err
		}
		if ack.Stream != stream || ack.Seq != seq {
			return fmt.Errorf("ack %d/%d, want %d/%d", ack.Stream, ack.Seq, stream, seq)
		}
		return nil
	}

	// Duplicate of the most recently applied seq is acked again (lost-ack
	// retry), not re-applied and not an error.
	beginRestore(9)
	if err := sendChunk(9, 1); err != nil {
		t.Fatalf("chunk 1: %v", err)
	}
	if err := sendChunk(9, 1); err != nil {
		t.Fatalf("duplicate chunk 1: %v", err)
	}
	// A gap aborts the stream.
	if err := sendChunk(9, 4); !errors.Is(err, cluster.ErrRemote) {
		t.Fatalf("gap seq: err = %v, want remote error", err)
	}
	if err := sendChunk(9, 2); !errors.Is(err, cluster.ErrRemote) {
		t.Fatalf("chunk after abort: err = %v, want remote error", err)
	}

	// Truncation: RestoreEnd must carry the applied count. The duplicate
	// above must NOT have double-counted (Chunks: 2 is what a re-applying
	// worker would accept).
	beginRestore(10)
	if err := sendChunk(10, 1); err != nil {
		t.Fatalf("chunk: %v", err)
	}
	if _, err := call(wire.MsgRestoreEnd, wire.RestoreEnd{Stream: 10, Chunks: 5}); !errors.Is(err, cluster.ErrRemote) {
		t.Fatalf("truncated RestoreEnd: err = %v, want remote error", err)
	}

	// Clean finish, then the retry of a lost RestoreEndAck.
	beginRestore(11)
	if err := sendChunk(11, 1); err != nil {
		t.Fatalf("chunk: %v", err)
	}
	if err := sendChunk(11, 1); err != nil {
		t.Fatalf("duplicate chunk: %v", err)
	}
	for i := 0; i < 2; i++ {
		resp, err := call(wire.MsgRestoreEnd, wire.RestoreEnd{Stream: 11, Chunks: 1})
		if err != nil {
			t.Fatalf("RestoreEnd (attempt %d): %v", i+1, err)
		}
		var ack wire.RestoreEndAck
		if err := wire.Expect(resp, wire.MsgRestoreEndAck, &ack); err != nil || ack.Stream != 11 {
			t.Fatalf("RestoreEndAck (attempt %d): %+v, %v", i+1, ack, err)
		}
	}
}

// TestV1MonolithicRestoreCompat: a monolithic gob MsgSnapshot pulled from
// one worker restores into a fresh worker over the pre-streaming
// MsgRestore exchange — the back-compat path old coordinators (and
// retained v1 snapshots) depend on.
func TestV1MonolithicRestoreCompat(t *testing.T) {
	_, coordA, trA := deployLocalWorker(t, "kv", runtime.CoordOptions{Partitions: map[string]int{"store": 2}})
	for i := 0; i < 150; i++ {
		if err := coordA.Inject("put", uint64(i), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatalf("inject: %v", err)
		}
	}
	if !coordA.Drain(10 * time.Second) {
		t.Fatal("did not quiesce")
	}
	resp, err := trA.Call(mustEncode(t, wire.MsgSnapshotReq, wire.SnapshotReq{Chunks: 2}))
	if err != nil {
		t.Fatalf("monolithic snapshot: %v", err)
	}
	var snap wire.Snapshot
	if err := wire.Expect(resp, wire.MsgSnapshot, &snap); err != nil {
		t.Fatalf("decode snapshot: %v", err)
	}

	_, coordB, trB := deployLocalWorker(t, "kv", runtime.CoordOptions{Partitions: map[string]int{"store": 2}})
	ackResp, err := trB.Call(mustEncode(t, wire.MsgRestore, wire.Restore{Snap: snap}))
	if err != nil {
		t.Fatalf("monolithic restore: %v", err)
	}
	var ack wire.RestoreAck
	if err := wire.Expect(ackResp, wire.MsgRestoreAck, &ack); err != nil {
		t.Fatalf("RestoreAck: %v", err)
	}

	want, err := coordA.DumpKV("store")
	if err != nil {
		t.Fatalf("dump source: %v", err)
	}
	got, err := coordB.DumpKV("store")
	if err != nil {
		t.Fatalf("dump restored: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("restored %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if !bytes.Equal(got[k], v) {
			t.Fatalf("key %d: restored %q, want %q", k, got[k], v)
		}
	}
}

// TestLocalBufTrimAfterCheckpoint: a coordinator checkpoint must shrink the
// worker-local replay buffers (entry source buffer and in-process out-edge
// buffers) via the broadcast local trim floors — without it they grow for
// the life of the process.
func TestLocalBufTrimAfterCheckpoint(t *testing.T) {
	w, coord, _ := deployLocalWorker(t, "counterchain", runtime.CoordOptions{Partitions: map[string]int{"counts": 2}})
	for i := 0; i < 500; i++ {
		if err := coord.Inject("ingest", uint64(i%40), nil); err != nil {
			t.Fatalf("inject: %v", err)
		}
	}
	if !coord.Drain(10 * time.Second) {
		t.Fatal("did not quiesce")
	}
	before := w.OutBufItems()
	if before == 0 {
		t.Fatal("no locally buffered items before checkpoint; the test measures nothing")
	}
	if err := coord.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	after := w.OutBufItems()
	if after >= before {
		t.Fatalf("local buffers not trimmed: %d items before checkpoint, %d after", before, after)
	}
}

// cappingTransport records the largest frame per message type in both
// directions and remembers which types appeared — the probe that proves no
// monolithic snapshot frame ever crosses the streaming path.
type cappingTransport struct {
	inner cluster.Transport
	mu    *sync.Mutex
	seen  map[byte]int // max frame bytes per leading type byte
}

func (t *cappingTransport) note(frame []byte) {
	if len(frame) == 0 {
		return
	}
	t.mu.Lock()
	if len(frame) > t.seen[frame[0]] {
		t.seen[frame[0]] = len(frame)
	}
	t.mu.Unlock()
}

func (t *cappingTransport) Call(req []byte) ([]byte, error) {
	t.note(req)
	resp, err := t.inner.Call(req)
	if err == nil {
		t.note(resp)
	}
	return resp, err
}

func (t *cappingTransport) Close() error { return t.inner.Close() }

// TestDistributedStreamSnapshotBigState checkpoints and kill-recovers a
// two-worker kv deployment whose per-worker state is far larger than the
// in-test frame bound, and requires (a) exact state after recovery, (b) no
// monolithic MsgSnapshot/MsgRestore frame anywhere on the path, and (c)
// every streamed snapshot frame within the bound.
func TestDistributedStreamSnapshotBigState(t *testing.T) {
	const chunkBytes = 4096
	var mu sync.Mutex
	seen := map[byte]int{}
	wrap := func(h cluster.Handler) cluster.Transport {
		return &cappingTransport{inner: cluster.Local(h, 0), mu: &mu, seen: seen}
	}

	w0 := runtime.NewWorker()
	defer w0.Close()
	w1 := runtime.NewWorker()
	defer w1.Close()
	ep0 := runtime.WorkerEndpoint{Data: wrap(w0.Handler()), Control: wrap(w0.Handler())}
	ep1 := runtime.WorkerEndpoint{Data: wrap(w1.Handler()), Control: wrap(w1.Handler())}

	failed := make(chan int, 4)
	coord, err := runtime.NewCoordinator("kv", []runtime.WorkerEndpoint{ep0, ep1}, runtime.CoordOptions{
		Partitions:        map[string]int{"store": 2},
		SnapChunkBytes:    chunkBytes,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMisses:   2,
		OnFailure:         func(w int) { failed <- w },
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer coord.Close()

	expected := map[uint64][]byte{}
	put := func(key uint64, tag string) {
		t.Helper()
		val := bytes.Repeat([]byte(tag), 256) // ~1 KiB values: state >> chunkBytes
		if err := coord.Inject("put", key, val); err != nil {
			t.Fatalf("put %d: %v", key, err)
		}
		expected[key] = val
	}

	for k := uint64(0); k < 400; k++ {
		put(k, fmt.Sprintf("A%03d", k))
	}
	if !coord.Drain(20 * time.Second) {
		t.Fatal("did not quiesce before checkpoint")
	}
	if err := coord.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	stats := coord.SnapshotStats()
	if stats.Workers != 2 {
		t.Fatalf("checkpoint covered %d workers, want 2", stats.Workers)
	}
	if stats.V1Fallbacks != 0 {
		t.Fatalf("streaming checkpoint fell back to v1 %d time(s)", stats.V1Fallbacks)
	}
	if stats.Chunks < 20 {
		t.Fatalf("state split into only %d chunks; expected far more at a %d-byte bound", stats.Chunks, chunkBytes)
	}
	if stats.RawBytes < 10*int64(chunkBytes) {
		t.Fatalf("streamed state is only %d bytes; the test needs state >> the frame bound", stats.RawBytes)
	}

	// Newer than the snapshot: must come back via replay after recovery.
	for k := uint64(0); k < 100; k++ {
		put(k, fmt.Sprintf("B%03d", k))
	}

	w1.Close()
	ep1.Data.Close()
	ep1.Control.Close()
	select {
	case idx := <-failed:
		if idx != 1 {
			t.Fatalf("failure detector blamed worker %d, want 1", idx)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("failure detector never fired")
	}

	// Items for the dead worker queue in the replay log.
	for k := uint64(100); k < 200; k++ {
		put(k, fmt.Sprintf("C%03d", k))
	}

	w1b := runtime.NewWorker()
	defer w1b.Close()
	ep1b := runtime.WorkerEndpoint{Data: wrap(w1b.Handler()), Control: wrap(w1b.Handler())}
	if err := coord.RecoverWorker(1, ep1b); err != nil {
		t.Fatalf("RecoverWorker: %v", err)
	}
	if !coord.Drain(20 * time.Second) {
		t.Fatal("did not quiesce after recovery")
	}

	got, err := coord.DumpKV("store")
	if err != nil {
		t.Fatalf("dump: %v", err)
	}
	if len(got) != len(expected) {
		t.Fatalf("store has %d keys, want %d", len(got), len(expected))
	}
	for k, v := range expected {
		if !bytes.Equal(got[k], v) {
			t.Fatalf("key %d: %q, want %q (lost or stale after recovery)", k, got[k], v)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	if n, ok := seen[wire.MsgSnapshot]; ok {
		t.Fatalf("a monolithic MsgSnapshot frame (%d bytes) crossed the wire", n)
	}
	if n, ok := seen[wire.MsgRestore]; ok {
		t.Fatalf("a monolithic MsgRestore frame (%d bytes) crossed the wire", n)
	}
	if _, ok := seen[wire.MsgSnapChunk]; !ok {
		t.Fatal("no streamed snapshot chunk observed")
	}
	if _, ok := seen[wire.MsgRestoreChunk]; !ok {
		t.Fatal("no streamed restore chunk observed")
	}
	// Frame bound: chunk payload bound + part header + envelope slack.
	const frameCap = chunkBytes + 2048
	for _, mt := range []byte{wire.MsgSnapChunk, wire.MsgSnapEnd, wire.MsgRestoreChunk} {
		if n := seen[mt]; n > frameCap {
			t.Fatalf("%s frame of %d bytes exceeds the %d-byte bound", wire.MsgName(mt), n, frameCap)
		}
	}
}

// legacyHandler mimics a worker built before the streaming protocol: every
// snapshot-stream message is rejected exactly the way the wire layer
// rejects an unknown type.
func legacyHandler(h cluster.Handler) cluster.Handler {
	return func(req []byte) ([]byte, error) {
		if len(req) > 0 && req[0] >= wire.MsgSnapBegin && req[0] <= wire.MsgRestoreEndAck {
			return nil, fmt.Errorf("wire: unknown message type 0x%02x", req[0])
		}
		return h(req)
	}
}

// TestDistributedSnapshotV1Fallback: a worker that rejects the streaming
// messages downgrades the coordinator to the monolithic v1 exchange —
// checkpoint and kill-recovery still work, exactly.
func TestDistributedSnapshotV1Fallback(t *testing.T) {
	w0 := runtime.NewWorker()
	defer w0.Close()
	ep0 := runtime.WorkerEndpoint{
		Data:    cluster.Local(legacyHandler(w0.Handler()), 0),
		Control: cluster.Local(legacyHandler(w0.Handler()), 0),
	}
	failed := make(chan int, 2)
	coord, err := runtime.NewCoordinator("counter", []runtime.WorkerEndpoint{ep0}, runtime.CoordOptions{
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMisses:   2,
		OnFailure:         func(w int) { failed <- w },
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer coord.Close()

	const keys = 10
	const perPhase = 200
	for i := 0; i < perPhase; i++ {
		if err := coord.Inject("inc", uint64(i%keys), nil); err != nil {
			t.Fatalf("inject: %v", err)
		}
	}
	if err := coord.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if got := coord.SnapshotStats().V1Fallbacks; got != 1 {
		t.Fatalf("V1Fallbacks = %d, want 1", got)
	}
	for i := 0; i < perPhase; i++ {
		if err := coord.Inject("inc", uint64(i%keys), nil); err != nil {
			t.Fatalf("inject: %v", err)
		}
	}

	w0.Close()
	ep0.Data.Close()
	ep0.Control.Close()
	select {
	case <-failed:
	case <-time.After(5 * time.Second):
		t.Fatal("failure detector never fired")
	}

	w0b := runtime.NewWorker()
	defer w0b.Close()
	ep0b := runtime.WorkerEndpoint{
		Data:    cluster.Local(legacyHandler(w0b.Handler()), 0),
		Control: cluster.Local(legacyHandler(w0b.Handler()), 0),
	}
	if err := coord.RecoverWorker(0, ep0b); err != nil {
		t.Fatalf("RecoverWorker: %v", err)
	}
	if !coord.Drain(10 * time.Second) {
		t.Fatal("did not quiesce after recovery")
	}
	// The fallback is sticky: a later checkpoint goes straight to v1
	// without a second probe/fallback.
	if err := coord.Checkpoint(); err != nil {
		t.Fatalf("post-recovery checkpoint: %v", err)
	}
	if got := coord.SnapshotStats().V1Fallbacks; got != 1 {
		t.Fatalf("V1Fallbacks after sticky downgrade = %d, want 1", got)
	}

	dump, err := coord.DumpKV("counts")
	if err != nil {
		t.Fatalf("dump: %v", err)
	}
	var sum uint64
	for k := uint64(0); k < keys; k++ {
		sum += counter.Count(dump[k])
	}
	if sum != 2*perPhase {
		t.Fatalf("counted %d increments, want exactly %d", sum, 2*perPhase)
	}
}
