package runtime

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/state"
	"repro/internal/wire"
)

// This file is the worker half of the streaming snapshot transfer: cutting
// a consistent snapshot whose state leaves the node chunk by chunk instead
// of as one materialised wire.Snapshot, and applying a restore the same
// way. The cut itself still pauses processing (exactly like SnapshotAll),
// but only long enough to flip every SE store dirty and capture the small
// TE/edge metadata — the state bytes then stream out of the frozen bases
// while processing continues against the overlays, which is what removes
// the frame cap as a ceiling on per-worker state.

const (
	// defaultSnapChunkBytes bounds one streamed part's payload when the
	// coordinator does not say otherwise.
	defaultSnapChunkBytes = 1 << 20
	// maxSnapChunkBytes caps what a peer may request: well under the frame
	// cap so envelope, part header and one oversized entry still fit.
	maxSnapChunkBytes = cluster.MaxFrameSize / 4
)

// seStream is one SE instance's open streaming checkpoint.
type seStream struct {
	name  string
	index int
	cs    *checkpoint.ChunkStream
}

// snapCapture is an open snapshot stream over one runtime: the eagerly
// captured TE metadata, replay-log and edge-log parts (small, cut-bound),
// plus one lazy checkpoint stream per SE instance. Parts are served queue
// first, then store by store; each store merges its dirty overlay back the
// moment its stream drains, so no store stays dirty for the whole
// transfer.
type snapCapture struct {
	r     *Runtime
	queue []wire.SnapPart
	ses   []*seStream
	cur   int

	maxBytes int
	bytes    uint64
	parts    uint64
	closed   bool
}

// appendItemParts splits items into bounded EncodeItems blobs, one part
// each.
func appendItemParts(dst *[]wire.SnapPart, tmpl wire.SnapPart, items []core.Item, maxBytes int) error {
	for len(items) > 0 {
		data, took, err := wire.EncodeItemsBounded(items, maxBytes)
		if err != nil {
			return err
		}
		p := tmpl
		p.Data = data
		*dst = append(*dst, p)
		items = items[took:]
	}
	return nil
}

// newSnapCapture cuts a consistent snapshot and returns the open stream.
// The pause covers only the cut: flipping every SE store into dirty mode
// and capturing TE watermarks, replay logs and cross-worker edge logs.
func (r *Runtime) newSnapCapture(maxBytes int) (*snapCapture, error) {
	if maxBytes <= 0 || maxBytes > maxSnapChunkBytes {
		maxBytes = defaultSnapChunkBytes
	}
	c := &snapCapture{r: r, maxBytes: maxBytes}
	unpause := r.pauseAll()
	defer unpause()

	fail := func(err error) (*snapCapture, error) {
		for _, s := range c.ses {
			_ = s.cs.Close()
		}
		return nil, err
	}
	for _, ss := range r.ses {
		ss.mu.RLock()
		insts := append([]*seInstance(nil), ss.insts...)
		ss.mu.RUnlock()
		for _, si := range insts {
			cs, err := checkpoint.StreamAsync(si.store, maxBytes)
			if err != nil {
				return fail(fmt.Errorf("runtime: snapshot %s: %w", si.instName(), err))
			}
			c.ses = append(c.ses, &seStream{name: ss.def.Name, index: si.idx, cs: cs})
		}
	}
	for _, ts := range r.tes {
		for _, ti := range ts.instances() {
			c.queue = append(c.queue, wire.SnapPart{
				Kind:       wire.PartTE,
				Name:       ts.def.Name,
				Index:      ti.idx,
				Watermarks: ti.dedup.Watermarks(),
				OutSeq:     ti.seqCtr.Load(),
			})
			if len(ts.out) == 0 {
				continue
			}
			for i, b := range ti.outBufs {
				tmpl := wire.SnapPart{Kind: wire.PartTEBuf, Name: ts.def.Name, Index: ti.idx, Edge: i}
				if err := appendItemParts(&c.queue, tmpl, b.Replay(), maxBytes); err != nil {
					return fail(fmt.Errorf("runtime: snapshot %s/%d edge %d: %w", ts.def.Name, ti.idx, i, err))
				}
			}
		}
	}
	if r.net != nil {
		if err := r.net.edgeParts(&c.queue, maxBytes); err != nil {
			return fail(err)
		}
	}
	return c, nil
}

// next returns the stream's next part, ok=false at end of stream. The
// metadata queue drains first, then each SE store in declaration order;
// stores merge their overlay back (ChunkStream.Close) as they drain.
func (c *snapCapture) next() (wire.SnapPart, bool, error) {
	if c.closed {
		return wire.SnapPart{}, false, fmt.Errorf("runtime: snapshot stream closed")
	}
	if len(c.queue) > 0 {
		p := c.queue[0]
		c.queue[0] = wire.SnapPart{}
		c.queue = c.queue[1:]
		c.parts++
		c.bytes += uint64(len(p.Data))
		return p, true, nil
	}
	for c.cur < len(c.ses) {
		s := c.ses[c.cur]
		ck, ok, err := s.cs.Next()
		if err != nil {
			return wire.SnapPart{}, false, fmt.Errorf("runtime: snapshot %s/%d: %w", s.name, s.index, err)
		}
		if !ok {
			if err := s.cs.Close(); err != nil {
				return wire.SnapPart{}, false, fmt.Errorf("runtime: snapshot %s/%d: %w", s.name, s.index, err)
			}
			c.cur++
			continue
		}
		c.parts++
		c.bytes += uint64(len(ck.Data))
		return wire.SnapPart{
			Kind:       wire.PartSE,
			Name:       s.name,
			Index:      s.index,
			Store:      ck.Type,
			ChunkIndex: ck.Index,
			ChunkOf:    ck.Of,
			Delta:      ck.Delta,
			Data:       ck.Data,
		}, true, nil
	}
	return wire.SnapPart{}, false, nil
}

// close releases the capture: every still-open store stream merges its
// overlay back. Idempotent.
func (c *snapCapture) close() {
	if c.closed {
		return
	}
	c.closed = true
	for ; c.cur < len(c.ses); c.cur++ {
		_ = c.ses[c.cur].cs.Close()
	}
	c.queue = nil
}

// beginRestoreStream prepares the runtime for a chunk-by-chunk restore:
// the cross-worker edge logs reset so restored PartEdge chunks rebuild
// them from scratch. The restore seal (AwaitRestore) stays up until
// finishRestoreStream.
func (r *Runtime) beginRestoreStream() {
	if r.net == nil {
		return
	}
	n := r.net
	n.mu.Lock()
	n.logs = make(map[edgeInstKey]*dataflow.OutputBuffer)
	n.mu.Unlock()
}

// applySnapPart applies one restored part. Parts may arrive in any order;
// replay-log and edge-log parts append, so the coordinator must deliver
// each exactly once (the worker's seq protocol enforces that).
func (r *Runtime) applySnapPart(p wire.SnapPart) error {
	switch p.Kind {
	case wire.PartSE:
		ss, err := r.se(p.Name)
		if err != nil {
			return err
		}
		ss.mu.RLock()
		if p.Index < 0 || p.Index >= len(ss.insts) {
			n := len(ss.insts)
			ss.mu.RUnlock()
			return fmt.Errorf("runtime: snapshot SE %s/%d out of range (have %d instances)", p.Name, p.Index, n)
		}
		si := ss.insts[p.Index]
		ss.mu.RUnlock()
		ck := state.Chunk{Type: p.Store, Index: p.ChunkIndex, Of: p.ChunkOf, Delta: p.Delta, Data: p.Data}
		if err := si.store.Restore([]state.Chunk{ck}); err != nil {
			return fmt.Errorf("runtime: restore %s: %w", si.instName(), err)
		}
	case wire.PartTE:
		ti, err := r.teInstanceAt(p.Name, p.Index)
		if err != nil {
			return err
		}
		ti.dedup.Restore(p.Watermarks)
		ti.seqCtr.Store(p.OutSeq)
	case wire.PartTEBuf:
		ti, err := r.teInstanceAt(p.Name, p.Index)
		if err != nil {
			return err
		}
		if p.Edge < 0 || p.Edge >= len(ti.outBufs) {
			return fmt.Errorf("runtime: restore %s/%d: edge %d out of range (have %d)", p.Name, p.Index, p.Edge, len(ti.outBufs))
		}
		items, err := wire.DecodeItems(p.Data)
		if err != nil {
			return fmt.Errorf("runtime: restore %s/%d edge %d: %w", p.Name, p.Index, p.Edge, err)
		}
		ti.outBufs[p.Edge].AppendBatch(items)
	case wire.PartEdge:
		if r.net == nil {
			return fmt.Errorf("runtime: not a sharded deployment")
		}
		items, err := wire.DecodeItems(p.Data)
		if err != nil {
			return fmt.Errorf("runtime: edge log %d/%d: %w", p.Edge, p.Inst, err)
		}
		n := r.net
		n.mu.Lock()
		n.logFor(p.Edge, p.Inst).AppendBatch(items)
		n.mu.Unlock()
	default:
		return fmt.Errorf("runtime: unknown snapshot part kind %d", p.Kind)
	}
	return nil
}

// finishRestoreStream completes a chunk-by-chunk restore: peer send queues
// rebuild from the restored edge logs and the restore seal lifts.
func (r *Runtime) finishRestoreStream() {
	if r.net == nil {
		return
	}
	n := r.net
	n.mu.Lock()
	for _, p := range n.peers {
		n.rebuildPeerLocked(p)
	}
	n.mu.Unlock()
	n.sealed.Store(false)
}

// teInstanceAt resolves one TE instance by worker-local index with the
// monolithic restore path's bounds error.
func (r *Runtime) teInstanceAt(name string, index int) (*teInstance, error) {
	ts, err := r.te(name)
	if err != nil {
		return nil, err
	}
	insts := ts.instances()
	if index < 0 || index >= len(insts) {
		return nil, fmt.Errorf("runtime: snapshot TE %s/%d out of range (have %d instances)", name, index, len(insts))
	}
	return insts[index], nil
}

// TrimLocalBufs applies coordinator-distributed local trim floors: once a
// coordinator checkpoint proves every instance of a TE has snapshotted
// past a seq, the worker-local replay buffers feeding that TE (the
// injection source buffer and every upstream instance's output buffer for
// the in-edges) drop their covered entries. Without this, worker-local
// outBufs grow for the life of the process — the coordinator's replay logs
// are the recovery truth in distributed mode, not these buffers.
func (r *Runtime) TrimLocalBufs(trims []wire.LocalTrim) {
	for _, lt := range trims {
		if len(lt.Watermarks) == 0 {
			continue
		}
		ts, err := r.te(lt.TE)
		if err != nil {
			continue
		}
		r.trimEdgesInto(ts, lt.Watermarks)
	}
}

// OutBufItems reports the items currently buffered across every TE
// instance's per-edge output buffers plus every entry source buffer —
// observability for the between-checkpoint trim.
func (r *Runtime) OutBufItems() int {
	total := 0
	for _, ts := range r.tes {
		if ts.srcBuf != nil {
			total += ts.srcBuf.Len()
		}
		for _, ti := range ts.instances() {
			for _, b := range ti.outBufs {
				total += b.Len()
			}
		}
	}
	return total
}
