package runtime

import (
	"fmt"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/state"
)

// startCheckpointLoop periodically checkpoints one SE instance (§6 uses a
// 10 s frequency). The loop exits when the runtime stops or the instance's
// node fails.
func (r *Runtime) startCheckpointLoop(si *seInstance) {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		ticker := time.NewTicker(r.opts.Interval)
		defer ticker.Stop()
		for {
			// A long checkpoint can outlast the ticker period, leaving a
			// tick permanently pending; check for shutdown first so Stop
			// is not delayed by another full checkpoint.
			select {
			case <-r.stopped:
				return
			default:
			}
			select {
			case <-r.stopped:
				return
			case <-ticker.C:
				if si.node.Failed() || r.detached(si) {
					return
				}
				if _, err := r.CheckpointNow(si.se.def.Name, si.idx); err != nil {
					// A failed checkpoint leaves the previous epoch in
					// place; retry on the next tick.
					continue
				}
			}
		}
	}()
}

// detached reports whether the instance has been replaced (e.g. after a
// scale-up repartition or recovery).
func (r *Runtime) detached(si *seInstance) bool {
	si.se.mu.RLock()
	defer si.se.mu.RUnlock()
	return si.idx >= len(si.se.insts) || si.se.insts[si.idx] != si
}

// CheckpointNow takes one checkpoint of the named SE's instance idx using
// the configured mode, then trims upstream output buffers covered by the
// committed watermarks.
func (r *Runtime) CheckpointNow(seName string, idx int) (checkpoint.Result, error) {
	ss, err := r.se(seName)
	if err != nil {
		return checkpoint.Result{}, err
	}
	// Held for the whole checkpoint so a concurrent scale-in cannot begin
	// its destructive store rebuild between our instance fetch and our
	// BeginDirty/Save (see seState.ckptGate).
	ss.ckptGate.RLock()
	defer ss.ckptGate.RUnlock()
	ss.mu.RLock()
	if idx < 0 || idx >= len(ss.insts) {
		ss.mu.RUnlock()
		return checkpoint.Result{}, fmt.Errorf("runtime: SE %q has no instance %d", seName, idx)
	}
	si := ss.insts[idx]
	ss.mu.RUnlock()
	if r.bk == nil {
		return checkpoint.Result{}, fmt.Errorf("runtime: no backup store configured")
	}

	meta := r.buildMeta(si)
	var res checkpoint.Result
	switch r.opts.Mode {
	case checkpoint.ModeSync:
		pause := func() func() {
			mu := r.pauseFor(si.node)
			mu.Lock()
			return mu.Unlock
		}
		res, err = checkpoint.Sync(si.store, meta, r.opts.Chunks, r.bk, pause)
	default:
		if ds, ok := r.deltaEligible(si); ok {
			res, err = checkpoint.AsyncDelta(ds, meta, r.opts.Chunks, r.bk)
		} else {
			res, err = checkpoint.Async(si.store, meta, r.opts.Chunks, r.bk)
		}
	}
	if err != nil {
		return res, err
	}
	// The committed epoch anchors the chain to this instance's tracker;
	// later epochs may now be incremental.
	si.chained.Store(true)
	r.recordCheckpointWM(si, meta.Watermarks)
	r.trimUpstream(si)
	return res, nil
}

// deltaEligible decides whether the next async epoch of the instance may be
// incremental: delta checkpoints are enabled, the store tracks changed
// keys, this instance has already committed an epoch (so the backup chain
// is anchored to its tracker), and no compaction trigger has fired.
func (r *Runtime) deltaEligible(si *seInstance) (state.DeltaStore, bool) {
	if !r.opts.DeltaCheckpoints || !si.chained.Load() {
		return nil, false
	}
	ds, ok := si.store.(state.DeltaStore)
	if !ok || !ds.DeltaTracking() {
		return nil, false
	}
	if !r.bk.ShouldDelta(si.instName(), r.deltaPolicy()) {
		return nil, false
	}
	return ds, true
}

// buildMeta assembles the checkpoint metadata for an SE instance: the
// watermarks, output sequence counters and output buffers of the TE
// instances colocated with it.
func (r *Runtime) buildMeta(si *seInstance) checkpoint.Meta {
	meta := checkpoint.Meta{
		SE:         si.instName(),
		Epoch:      si.epoch.Add(1),
		Watermarks: make(map[int]map[uint64]uint64),
		OutSeqs:    make(map[int]uint64),
		Buffered:   make(map[int][][]core.Item),
	}
	for _, teID := range r.graph.TEsAccessing(si.se.def.ID) {
		ts := r.tes[teID]
		ts.mu.RLock()
		if si.idx < len(ts.insts) {
			ti := ts.insts[si.idx]
			meta.Watermarks[teID] = ti.dedup.Watermarks()
			meta.OutSeqs[teID] = ti.seqCtr.Load()
			bufs := make([][]core.Item, len(ti.outBufs))
			for i, b := range ti.outBufs {
				bufs[i] = b.Replay()
			}
			meta.Buffered[teID] = bufs
		}
		ts.mu.RUnlock()
	}
	return meta
}

// recordCheckpointWM remembers, per TE, the watermarks committed by this
// instance's checkpoint; upstream trimming needs the minimum across all
// instances of the TE.
func (r *Runtime) recordCheckpointWM(si *seInstance, wms map[int]map[uint64]uint64) {
	for teID, wm := range wms {
		ts := r.tes[teID]
		ts.mu.Lock()
		if ts.ckptWM == nil {
			ts.ckptWM = make(map[int]map[uint64]uint64)
		}
		ts.ckptWM[si.idx] = wm
		ts.mu.Unlock()
	}
}

// trimUpstream drops replay-log entries that every downstream instance has
// durably covered: for each TE colocated with the SE instance, it computes
// the per-origin minimum watermark across all instance checkpoints and
// trims the matching upstream output buffers (§5: "upstream nodes can trim
// their output buffers of data items that are older than all downstream
// checkpoints").
func (r *Runtime) trimUpstream(si *seInstance) {
	for _, teID := range r.graph.TEsAccessing(si.se.def.ID) {
		ts := r.tes[teID]
		min := r.minCheckpointWM(ts)
		if min == nil {
			continue
		}
		r.trimEdgesInto(ts, min)
	}
}

// minCheckpointWM folds the per-instance checkpoint watermarks of a TE into
// the per-origin minimum. It returns nil unless every live instance has
// committed at least one checkpoint (otherwise trimming would be unsafe).
func (r *Runtime) minCheckpointWM(ts *teState) map[uint64]uint64 {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	if ts.ckptWM == nil || len(ts.ckptWM) < len(ts.insts) {
		return nil
	}
	var min map[uint64]uint64
	for _, ti := range ts.insts {
		wm, ok := ts.ckptWM[ti.idx]
		if !ok {
			return nil
		}
		if min == nil {
			min = make(map[uint64]uint64, len(wm))
			for o, s := range wm {
				min[o] = s
			}
			continue
		}
		// Keep only origins present in every instance's map, at the lowest
		// seq; an origin missing anywhere cannot be trimmed safely, because
		// that instance may still need its items replayed.
		for o := range min {
			s, ok := wm[o]
			if !ok {
				delete(min, o)
			} else if s < min[o] {
				min[o] = s
			}
		}
	}
	return min
}

// trimEdgesInto trims the output buffers of every upstream instance feeding
// the TE — including the external source log for entry TEs — using the
// folded watermarks.
func (r *Runtime) trimEdgesInto(ts *teState, wm map[uint64]uint64) {
	if ts.srcBuf != nil {
		ts.srcBuf.Trim(wm)
	}
	for _, e := range r.graph.InEdges(ts.def.ID) {
		from := r.tes[e.From]
		// Locate the out-edge index on the upstream TE.
		edgeIdx := -1
		for i, oe := range from.out {
			if oe.def == e {
				edgeIdx = i
				break
			}
		}
		if edgeIdx < 0 {
			continue
		}
		from.mu.RLock()
		for _, up := range from.insts {
			up.outBufs[edgeIdx].Trim(wm)
		}
		from.mu.RUnlock()
	}
}

// StartMaintenance launches a loop that bounds the replay logs feeding
// stateless TEs (which never checkpoint): their current processing
// watermarks serve as trim points. Interval defaults to the checkpoint
// interval.
func (r *Runtime) StartMaintenance(interval time.Duration) {
	if interval <= 0 {
		interval = r.opts.Interval
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-r.stopped:
				return
			case <-ticker.C:
				for _, ts := range r.tes {
					if ts.def.Access != nil {
						continue
					}
					wm := r.minLiveWM(ts)
					if wm != nil {
						r.trimEdgesInto(ts, wm)
					}
				}
			}
		}
	}()
}

// minLiveWM folds the live dedup watermarks across a TE's instances.
func (r *Runtime) minLiveWM(ts *teState) map[uint64]uint64 {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	var min map[uint64]uint64
	for _, ti := range ts.insts {
		wm := ti.dedup.Watermarks()
		if min == nil {
			min = wm
			continue
		}
		for o := range min {
			s, ok := wm[o]
			if !ok {
				delete(min, o)
			} else if s < min[o] {
				min[o] = s
			}
		}
	}
	return min
}
