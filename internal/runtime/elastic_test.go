package runtime

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/state"
)

// putGraph is a fire-and-forget keyed writer into a partitioned dictionary;
// workIters adds per-item spin so tests can build real backlog.
func putGraph(workIters int) *core.Graph {
	g := core.NewGraph("elastic")
	se := g.AddSE("store", core.KindPartitioned, state.TypeKVMap, nil)
	g.AddTE("put", func(ctx core.Context, it core.Item) {
		h := uint64(0x9e3779b97f4a7c15)
		for i := 0; i < workIters; i++ {
			h ^= h<<13 ^ h>>7
		}
		_ = h
		ctx.Store().(state.KV).Put(it.Key, it.Value.([]byte))
	}, &core.Access{SE: se, Mode: core.AccessByKey}, true)
	return g
}

// storeContents folds every partition of the named SE into one map,
// asserting along the way that each key physically lives at the partition
// the routing function names.
func storeContents(t *testing.T, r *Runtime, seName string) map[uint64]string {
	t.Helper()
	out := make(map[uint64]string)
	n := r.StateInstances(seName)
	for i := 0; i < n; i++ {
		st, err := r.StateStore(seName, i)
		if err != nil {
			t.Fatal(err)
		}
		st.(state.KV).ForEach(func(k uint64, v []byte) bool {
			if p := state.PartitionKey(k, n); p != i {
				t.Errorf("key %d on partition %d, want %d (of %d)", k, i, p, n)
			}
			if _, dup := out[k]; dup {
				t.Errorf("key %d present on two partitions", k)
			}
			out[k] = string(v)
			return true
		})
	}
	return out
}

// entryWatermark reports the highest externally-injected seq any put
// instance has processed — at quiescence, with the folds applied, every
// instance must hold the same external watermark.
func entryWatermark(r *Runtime, ts *teState) uint64 {
	var max uint64
	for _, ti := range ts.instances() {
		if s, ok := ti.dedup.Watermarks()[externalOrigin]; ok && s > max {
			max = s
		}
	}
	return max
}

// TestScaleDownRoundTripEquivalence: a run that scales 2→3→2 partitions
// mid-stream (with concurrent injectors and batch=64) must end with exactly
// the SE contents and external watermark of a flat 2-partition run.
func TestScaleDownRoundTripEquivalence(t *testing.T) {
	const items = 900
	value := func(k uint64) []byte { return []byte(fmt.Sprintf("v%d", k)) }

	run := func(scale bool) (map[uint64]string, uint64, int64) {
		r, err := Deploy(putGraph(0), Options{
			Partitions:       map[string]int{"store": 2},
			BatchSize:        64,
			Mode:             checkpoint.ModeAsync,
			Interval:         20 * time.Millisecond,
			DeltaCheckpoints: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Stop()

		inject := func(from, to uint64) {
			var wg sync.WaitGroup
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for k := from + uint64(w); k < to; k += 2 {
						if err := r.Inject("put", k, value(k)); err != nil {
							t.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
		}

		inject(0, items/3)
		if scale {
			if err := r.ScaleUp("put"); err != nil {
				t.Fatal(err)
			}
		}
		inject(items/3, 2*items/3)
		if scale {
			if err := r.ScaleDown("put"); err != nil {
				t.Fatal(err)
			}
			if got := r.StateInstances("store"); got != 2 {
				t.Fatalf("store instances after scale-down = %d", got)
			}
		}
		inject(2*items/3, items)
		if !r.Drain(testTimeout) {
			t.Fatal("drain")
		}
		ts, _ := r.te("put")
		return storeContents(t, r, "store"), entryWatermark(r, ts), r.Processed("put")
	}

	scaledState, scaledWM, scaledProcessed := run(true)
	flatState, flatWM, flatProcessed := run(false)

	if len(scaledState) != items || len(flatState) != items {
		t.Fatalf("state sizes: scaled %d flat %d, want %d", len(scaledState), len(flatState), items)
	}
	for k, v := range flatState {
		if scaledState[k] != v {
			t.Fatalf("key %d: scaled %q != flat %q", k, scaledState[k], v)
		}
	}
	if scaledWM != flatWM || scaledWM != items {
		t.Fatalf("external watermarks: scaled %d flat %d, want %d", scaledWM, flatWM, items)
	}
	// No item lost or duplicated: processed counts match the offered count.
	if scaledProcessed != items || flatProcessed != items {
		t.Fatalf("processed: scaled %d flat %d, want %d", scaledProcessed, flatProcessed, items)
	}
}

// TestScaleDownReplaysParkedKeyedItems: items parked behind the retiring
// partition's full queue are replayed into state, not dropped — the
// retiring worker drains its own backlog behind the ingress fence before
// the merge commits.
func TestScaleDownReplaysParkedKeyedItems(t *testing.T) {
	const items = 300
	r, err := Deploy(putGraph(2000), Options{
		Partitions: map[string]int{"store": 2},
		QueueLen:   1, // batches park almost immediately
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	for k := uint64(0); k < items; k++ {
		if err := r.Inject("put", k, []byte(fmt.Sprintf("v%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	// Scale in while backlog (queued + parked) is still draining.
	if err := r.ScaleDown("put"); err != nil {
		t.Fatal(err)
	}
	if got := r.StateInstances("store"); got != 1 {
		t.Fatalf("store instances = %d, want 1", got)
	}
	if !r.Drain(testTimeout) {
		t.Fatal("drain")
	}
	got := storeContents(t, r, "store")
	if len(got) != items {
		t.Fatalf("keys after scale-in = %d, want %d", len(got), items)
	}
	if r.Processed("put") != items {
		t.Fatalf("processed = %d, want %d (items dropped or duplicated)", r.Processed("put"), items)
	}
}

// TestScaleDownThenRecover: the merge forces fresh base checkpoints, so a
// failure after scale-in restores the shrunk layout, not a stale pre-merge
// chain.
func TestScaleDownThenRecover(t *testing.T) {
	const items = 200
	r, err := Deploy(putGraph(0), Options{
		Partitions:       map[string]int{"store": 3},
		Mode:             checkpoint.ModeAsync,
		Interval:         time.Hour, // checkpoints only where the test forces them
		DeltaCheckpoints: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	for k := uint64(0); k < items; k++ {
		if err := r.Inject("put", k, []byte(fmt.Sprintf("v%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	if !r.Drain(testTimeout) {
		t.Fatal("drain")
	}
	// Anchor pre-shrink chains so recovery has something stale to trip on.
	for i := 0; i < 3; i++ {
		if _, err := r.CheckpointNow("store", i); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.ScaleDown("put"); err != nil {
		t.Fatal(err)
	}
	// ScaleDown itself anchored fresh bases; the retiree's chain is gone.
	if _, ok := r.Backup().Latest("store/2"); ok {
		t.Fatal("retired instance's backup chain not forgotten")
	}

	// Fail one surviving partition and recover it from the post-merge base.
	ss, _ := r.se("store")
	ss.mu.RLock()
	node := ss.insts[1].node.ID
	ss.mu.RUnlock()
	r.KillNode(node)
	if _, err := r.Recover("store", 1); err != nil {
		t.Fatal(err)
	}
	if !r.Drain(testTimeout) {
		t.Fatal("drain after recover")
	}
	got := storeContents(t, r, "store")
	if len(got) != items {
		t.Fatalf("keys after scale-in + recovery = %d, want %d", len(got), items)
	}
}

// TestScaleDownErrors pins the refusal cases: floor, partial SEs, dead
// instances.
func TestScaleDownErrors(t *testing.T) {
	r, err := Deploy(putGraph(0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if err := r.ScaleDown("put"); err == nil {
		t.Error("scale-down below one instance should fail")
	}
	if err := r.ScaleDown("missing"); err == nil {
		t.Error("scale-down of unknown TE should fail")
	}

	p, err := Deploy(partialGraph(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	if err := p.ScaleUp("upd"); err != nil {
		t.Fatal(err)
	}
	if err := p.ScaleDown("upd"); err == nil {
		t.Error("scale-down of a partial SE should be refused")
	}

	// A dead accessing instance must block scale-in until recovery.
	d, err := Deploy(putGraph(0), Options{Partitions: map[string]int{"store": 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	ss, _ := d.se("store")
	ss.mu.RLock()
	node := ss.insts[1].node.ID
	ss.mu.RUnlock()
	d.KillNode(node)
	if err := d.ScaleDown("put"); err == nil {
		t.Error("scale-down with a dead accessing instance should fail")
	}
}

// TestScaleDownStateless retires a drained stateless instance and keeps
// serving.
func TestScaleDownStateless(t *testing.T) {
	r, err := Deploy(echoGraph(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if err := r.ScaleUp("echo"); err != nil {
		t.Fatal(err)
	}
	if err := r.ScaleDown("echo"); err != nil {
		t.Fatal(err)
	}
	if got := r.Instances("echo"); got != 1 {
		t.Fatalf("instances = %d", got)
	}
	for i := 0; i < 10; i++ {
		if _, err := r.Call("echo", 0, []byte("x"), testTimeout); err != nil {
			t.Fatal(err)
		}
	}
	// A later scale-up must resume, not restart, the retired index's seq
	// numbering so downstream dedup cannot drop its output.
	if err := r.ScaleUp("echo"); err != nil {
		t.Fatal(err)
	}
	ts, _ := r.te("echo")
	ts.mu.RLock()
	seq := ts.insts[1].seqCtr.Load()
	retired := ts.retiredSeqs[1]
	ts.mu.RUnlock()
	if seq < retired {
		t.Fatalf("re-expanded instance seq %d below retired watermark %d", seq, retired)
	}
}

// TestAutoScaleShrinksIdleTE: the controller retires instances of an idle
// TE back down to MinInstances.
func TestAutoScaleShrinksIdleTE(t *testing.T) {
	r, err := Deploy(echoGraph(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	for i := 0; i < 2; i++ {
		if err := r.ScaleUp("echo"); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Instances("echo"); got != 3 {
		t.Fatalf("instances = %d", got)
	}
	events := make(chan int, 8)
	r.StartAutoScale(10*time.Millisecond, ScalePolicy{
		MinInstances: 1,
		ShrinkAfter:  2,
		Cooldown:     20 * time.Millisecond,
		OnScale:      func(te string, n int) { events <- n },
	})
	deadline := time.After(5 * time.Second)
	for r.Instances("echo") > 1 {
		select {
		case <-events:
		case <-deadline:
			t.Fatalf("auto-scaler never shrank to MinInstances; at %d", r.Instances("echo"))
		}
	}
	// The floor holds: no further shrink events fire.
	time.Sleep(100 * time.Millisecond)
	if got := r.Instances("echo"); got != 1 {
		t.Fatalf("instances after settle = %d, want 1", got)
	}
}

// TestAutoScaleHighWaterClampRegression: with QueueLen 1 the derived
// high-water default truncated to 0, so an idle watched TE scaled up on
// every post-cooldown tick ("parked >= 0" is always true).
func TestAutoScaleHighWaterClampRegression(t *testing.T) {
	r, err := Deploy(echoGraph(), Options{QueueLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	scaled := make(chan string, 16)
	r.StartAutoScale(5*time.Millisecond, ScalePolicy{
		Cooldown: 10 * time.Millisecond,
		OnScale:  func(te string, n int) { scaled <- te },
	})
	select {
	case te := <-scaled:
		t.Fatalf("idle TE %q scaled with zero parked items", te)
	case <-time.After(150 * time.Millisecond):
	}
	if got := r.Instances("echo"); got != 1 {
		t.Fatalf("instances = %d, want 1", got)
	}
}

// TestRateMapPrunesDeadOrigins: the auto-scaler's per-origin counters drop
// entries for killed or replaced instances instead of growing without bound
// across recover/rescale cycles.
func TestRateMapPrunesDeadOrigins(t *testing.T) {
	r, err := Deploy(kvGraph(), Options{
		Mode:     checkpoint.ModeAsync,
		Interval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	for k := uint64(0); k < 20; k++ {
		if _, err := r.Call("put", k, []byte{byte(k)}, testTimeout); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.CheckpointNow("store", 0); err != nil {
		t.Fatal(err)
	}

	liveOrigins := func() int {
		n := 0
		for _, ts := range r.tes {
			for _, ti := range ts.instances() {
				if !ti.killed.Load() {
					n++
				}
			}
		}
		return n
	}

	prev := map[uint64]int64{}
	prev[0xdeadbeef] = 42 // a long-gone origin must be pruned on any scan
	r.scanTEs(prev)
	if len(prev) != liveOrigins() {
		t.Fatalf("scan kept %d entries, want %d live origins", len(prev), liveOrigins())
	}
	if _, stale := prev[0xdeadbeef]; stale {
		t.Fatal("stale origin survived the scan")
	}

	// A recover-with-rescale cycle replaces every instance origin set; the
	// map must keep tracking the live set exactly.
	ss, _ := r.se("store")
	ss.mu.RLock()
	node := ss.insts[0].node.ID
	ss.mu.RUnlock()
	r.KillNode(node)
	before := liveOrigins()
	r.scanTEs(prev) // scan between kill and recover drops the dead origins
	if len(prev) != before {
		t.Fatalf("scan kept %d entries, want %d live origins after kill", len(prev), before)
	}
	if _, err := r.Recover("store", 2); err != nil {
		t.Fatal(err)
	}
	r.scanTEs(prev)
	if len(prev) != liveOrigins() {
		t.Fatalf("scan kept %d entries, want %d live origins after rescale", len(prev), liveOrigins())
	}
}

// TestScaleDownTimesOutUnderSustainedLoad: a graph that cannot quiesce
// makes ScaleDown fail with ErrNotQuiesced instead of stalling forever.
func TestScaleDownTimesOutUnderSustainedLoad(t *testing.T) {
	// A self-looping TE never drains once seeded.
	g := core.NewGraph("loop")
	g.AddTE("loop", func(ctx core.Context, it core.Item) {
		ctx.Emit(0, it.Key, it.Value)
	}, nil, true)
	g.Connect(0, 0, core.DispatchOneToAny)
	r, err := Deploy(g, Options{ScaleDrainTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if err := r.ScaleUp("loop"); err != nil {
		t.Fatal(err)
	}
	if err := r.Inject("loop", 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.ScaleDown("loop"); !errors.Is(err, ErrNotQuiesced) {
		t.Fatalf("scale-down under sustained load = %v, want ErrNotQuiesced", err)
	}
	if got := r.Instances("loop"); got != 2 {
		t.Fatalf("failed scale-down changed instance count to %d", got)
	}
}
