package runtime

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/state"
)

// ScaleUp adds one instance to the named TE (§3.3: "the runtime system
// changes the number of TE instances in response to stragglers"). The
// effect depends on the TE's state:
//
//   - stateless TE: a new instance starts on a fresh node;
//   - partial SE: a new empty replica is created on a fresh node, and every
//     TE accessing the SE gains an instance there (the paper's Fig. 10:
//     "a second instance is added ... which also causes a new instance of
//     the partial state in the coOcc matrix to be created");
//   - partitioned SE: the SE is re-partitioned from k to k+1 instances —
//     processing on the accessing TEs pauses briefly while the partitions
//     are rebuilt, then resumes on k+1 nodes.
func (r *Runtime) ScaleUp(teName string) error {
	if r.opts.Shard != nil {
		// Instance identities are global in a sharded deployment; the worker
		// cannot unilaterally grow its slice without every peer re-agreeing
		// on routing. Coordinator-driven scale-out owns this.
		return fmt.Errorf("runtime: in-process scaling is unavailable in a sharded worker")
	}
	ts, err := r.te(teName)
	if err != nil {
		return err
	}
	if ts.def.Access == nil {
		node := r.cl.AddNode()
		ts.mu.Lock()
		ti := r.newInstance(ts, len(ts.insts), node)
		ts.insts = append(ts.insts, ti)
		ts.bumpInstances()
		ts.mu.Unlock()
		r.startWorker(ti)
		return nil
	}
	ss := r.ses[ts.def.Access.SE]
	switch ss.def.Kind {
	case core.KindPartial:
		return r.growPartial(ss)
	case core.KindPartitioned:
		return r.repartition(ss)
	default:
		return fmt.Errorf("runtime: unknown state kind %v", ss.def.Kind)
	}
}

// growPartial adds one partial replica and the matching TE instances. New
// replicas start empty and accumulate independently, consistent with
// partial SE semantics (instances are reconciled by merge computation, not
// kept identical).
func (r *Runtime) growPartial(ss *seState) error {
	node := r.cl.AddNode()
	store, err := r.newStore(ss.def)
	if err != nil {
		return err
	}
	ss.mu.Lock()
	idx := len(ss.insts)
	si := &seInstance{se: ss, idx: idx, node: node, store: store}
	ss.insts = append(ss.insts, si)
	ss.mu.Unlock()

	var started []*teInstance
	for _, teID := range r.graph.TEsAccessing(ss.def.ID) {
		ts := r.tes[teID]
		ts.mu.Lock()
		ti := r.newInstance(ts, idx, node)
		ts.insts = append(ts.insts, ti)
		ts.bumpInstances()
		// Trim bookkeeping must now cover the new instance too.
		ts.ckptWM = nil
		ts.mu.Unlock()
		started = append(started, ti)
	}
	for _, ti := range started {
		r.startWorker(ti)
	}
	if r.opts.Mode != 0 && r.bk != nil {
		r.startCheckpointLoop(si)
	}
	return nil
}

// repartition grows a partitioned SE from k to k+1 instances by draining
// the accessing TEs, re-chunking every partition and rebuilding k+1 stores.
// This is the expensive path; the paper's experiments scale partial state,
// but partitioned scale-out is required for completeness (new partitioned
// SE instances "may result" from new TE instances, §3.3).
func (r *Runtime) repartition(ss *seState) error {
	accessing := r.graph.TEsAccessing(ss.def.ID)

	// Exclude checkpoints for the whole rebuild, exactly like scale-in's
	// swap: Checkpoint(1) below reads only the base, so re-chunking a store
	// that an in-flight async checkpoint holds dirty would silently drop
	// every overlay write when the old store (where MergeDirty would have
	// folded them) is discarded. The gate waits out in-flight checkpoints
	// and blocks new ones. Lock order: ckptGate, then pause, then ss.mu —
	// the same order CheckpointNow (gate → ss.mu; sync mode gate → pause)
	// observes.
	ss.ckptGate.Lock()
	defer ss.ckptGate.Unlock()

	// Pause the nodes hosting the SE so no TE mutates it mid-move. Pause
	// locks must come BEFORE ss.mu: a worker holds its node's pause RLock
	// while ctx.Store() takes ss.mu.RLock, so taking ss.mu first and then
	// waiting for the pause lock deadlocks against any instance that is
	// mid-item (three-way: repartition holds ss.mu waiting on pause, the
	// worker holds pause waiting on ss.mu's pending writer). The node set
	// is read under a read lock first and re-validated once everything is
	// held; a concurrent topology change releases and retries.
	var resumes []func()
	release := func() {
		for i := len(resumes) - 1; i >= 0; i-- {
			resumes[i]()
		}
		resumes = nil
	}
	for {
		ss.mu.RLock()
		nodes := make([]*cluster.Node, 0, len(ss.insts))
		seen := map[int]bool{}
		for _, si := range ss.insts {
			if !seen[si.node.ID] {
				seen[si.node.ID] = true
				nodes = append(nodes, si.node)
			}
		}
		ss.mu.RUnlock()
		// Deterministic order so two concurrent pausers cannot deadlock.
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
		for _, node := range nodes {
			mu := r.pauseFor(node)
			mu.Lock()
			resumes = append(resumes, mu.Unlock)
		}
		ss.mu.Lock()
		same := true
		for _, si := range ss.insts {
			if !seen[si.node.ID] {
				same = false
				break
			}
		}
		if same {
			break
		}
		ss.mu.Unlock()
		release()
	}
	defer ss.mu.Unlock()
	defer release()
	k := len(ss.insts)

	// Collect one chunk per existing partition, split each k+1 ways and
	// regroup — the same machinery the m-to-n restore uses.
	groups := make([][]state.Chunk, k+1)
	for _, si := range ss.insts {
		chunks, err := si.store.Checkpoint(1)
		if err != nil {
			return err
		}
		parts, err := state.SplitChunk(chunks[0], k+1)
		if err != nil {
			return err
		}
		for j, p := range parts {
			groups[j] = append(groups[j], p)
		}
	}
	newInsts := make([]*seInstance, k+1)
	for j := 0; j <= k; j++ {
		node := r.cl.AddNode()
		if j < k {
			node = ss.insts[j].node // existing partitions stay home
		}
		store, err := r.newStore(ss.def)
		if err != nil {
			return err
		}
		if err := store.Restore(groups[j]); err != nil {
			return err
		}
		newInsts[j] = &seInstance{se: ss, idx: j, node: node, store: store}
		if j < k {
			// The rebuilt instance inherits its predecessor's epoch counter
			// so epochs stay monotonic per instance name in the backup
			// manifest (a reset counter could reuse an epoch number still
			// referenced by the superseded chain). chained stays false: the
			// repartitioned store must anchor a fresh base first.
			newInsts[j].epoch.Store(ss.insts[j].epoch.Load())
		}
	}
	ss.insts = newInsts

	// Add the TE instances for the new partition.
	var started []*teInstance
	for _, teID := range accessing {
		ts := r.tes[teID]
		ts.mu.Lock()
		ti := r.newInstance(ts, k, newInsts[k].node)
		ts.insts = append(ts.insts, ti)
		ts.bumpInstances()
		ts.ckptWM = nil
		ts.mu.Unlock()
		started = append(started, ti)
	}
	for _, ti := range started {
		r.startWorker(ti)
	}
	if r.opts.Mode != 0 && r.bk != nil {
		r.startCheckpointLoop(newInsts[k])
	}
	return nil
}

// ScalePolicy tunes the reactive bottleneck/straggler detector.
type ScalePolicy struct {
	// QueueHighWater: a TE whose summed parked-overflow depth (items that
	// found the inbound queue full and parked in the lossless overflow)
	// stays above this threshold is a bottleneck. Parked items are the
	// primary backpressure signal: senders only park once the channel is
	// out of slots, so any sustained depth means the TE cannot keep up.
	QueueHighWater int
	// QueueLowWater: a watched TE whose summed backlog (queued + parked +
	// in-flight items) stays at or below this threshold for ShrinkAfter
	// consecutive scans is scaled back in. The default 0 means only fully
	// idle TEs shrink.
	QueueLowWater int
	// ShrinkAfter is the number of consecutive low-water scans required
	// before a scale-in fires (default 4) — the shrink-side observation
	// window, so one idle tick between bursts cannot trigger a retirement.
	ShrinkAfter int
	// MinInstances floors scale-in per TE (default 1). Scale-in never runs
	// for TEs already at the floor.
	MinInstances int
	// Cooldown between scaling actions.
	Cooldown time.Duration
	// MaxInstances bounds growth per TE.
	MaxInstances int
	// TEs restricts the controller to the named task elements; empty means
	// all TEs are monitored.
	TEs []string
	// OnScale, if set, is invoked after each scaling action (up or down)
	// with the TE name and its new instance count (used by the Fig. 10
	// experiment and the elasticity bench to record the timeline).
	OnScale func(te string, instances int)
}

func (p ScalePolicy) watches(te string) bool {
	if len(p.TEs) == 0 {
		return true
	}
	for _, name := range p.TEs {
		if name == te {
			return true
		}
	}
	return false
}

// StartAutoScale launches the reactive controller: every interval it scans
// TEs for bottlenecks (persistently full queues) and stragglers (an
// instance whose processing rate falls far below its siblings' while items
// keep queueing) and adds instances, mirroring §3.3's dynamic dataflow
// approach. It also runs the shrink side of the loop: a watched TE whose
// backlog stays at or below QueueLowWater for ShrinkAfter consecutive scans
// is scaled back in via ScaleDown, never below MinInstances, so a load
// spike no longer pins the post-spike instance count (and its checkpoint
// and maintenance overhead) forever.
func (r *Runtime) StartAutoScale(interval time.Duration, p ScalePolicy) {
	if p.QueueHighWater <= 0 {
		// Clamp to at least one item: with QueueLen <= 1 the derived default
		// would be 0, and "parked depth >= 0" is true for an idle TE, which
		// made the pre-clamp controller add an instance on every
		// post-cooldown tick with zero load.
		p.QueueHighWater = r.opts.QueueLen / 2
		if p.QueueHighWater < 1 {
			p.QueueHighWater = 1
		}
	}
	if p.QueueLowWater < 0 {
		p.QueueLowWater = 0
	}
	if p.ShrinkAfter <= 0 {
		p.ShrinkAfter = 4
	}
	if p.MinInstances <= 0 {
		p.MinInstances = 1
	}
	if p.MaxInstances <= 0 {
		p.MaxInstances = 16
	}
	if p.Cooldown <= 0 {
		p.Cooldown = 4 * interval
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		lastScale := time.Time{}
		prev := map[uint64]int64{}    // instance origin -> processed count
		lowStreak := map[string]int{} // TE name -> consecutive low-water scans
		for {
			select {
			case <-r.stopped:
				return
			case <-ticker.C:
				// One consolidated observation per tick: scanTEs consumes the
				// interval's parked-depth peaks, so both decisions below (and
				// the streak bookkeeping, which counts scans and therefore
				// advances during cooldown too) judge the same snapshot.
				scans := r.scanTEs(prev)
				r.updateIdleStreaks(p, scans, lowStreak)
				if time.Since(lastScale) < p.Cooldown {
					continue
				}
				if te, n := findBottleneck(p, scans); te != "" {
					if err := r.ScaleUp(te); err == nil {
						lastScale = time.Now()
						lowStreak[te] = 0
						if p.OnScale != nil {
							p.OnScale(te, n+1)
						}
					}
					continue
				}
				// Growth takes priority; only a scan with no bottleneck may
				// shrink.
				if te, n := shrinkCandidate(p, scans, lowStreak); te != "" {
					// Auto-initiated attempts get a scan-window-sized quiesce
					// budget: a graph that cannot drain (cyclic, or loaded
					// elsewhere) fails fast instead of fencing all ingress
					// for the full manual ScaleDown timeout.
					drain := time.Duration(p.ShrinkAfter) * interval
					if min := 4 * interval; drain < min {
						drain = min
					}
					if max := r.scaleDrainTimeout(); drain > max {
						drain = max
					}
					err := r.scaleDown(te, drain)
					// Space retries with the shared cooldown even when the
					// attempt failed — repeated fence-and-fail cycles must
					// not degrade ingress — and restart the observation
					// window either way.
					lastScale = time.Now()
					lowStreak[te] = 0
					if err == nil && p.OnScale != nil {
						p.OnScale(te, n-1)
					}
				}
			}
		}
	}()
}

// teScan is one TE's load observation for a controller tick.
type teScan struct {
	name     string
	n        int     // instances, including killed ones (MaxInstances bound)
	live     int     // live instances
	parkPeak int     // peak parked overflow depth since the previous scan
	backlog  int     // instantaneous queued items (channel + in-flight)
	queued   bool    // some instance's backlog exceeds a quarter queue
	deltas   []int64 // per-live-instance processed since the previous scan
}

// scanTEs observes every TE once: parked-depth peaks (consumed, so each
// interval is judged by the worst it saw — a point sample reliably misses
// bursts that park and drain between ticks), instantaneous backlogs, and
// per-origin processing rates. Dead origins are pruned from the rate map on
// every scan; killed or replaced instances would otherwise leak one entry
// per recover/rescale cycle forever.
func (r *Runtime) scanTEs(prev map[uint64]int64) []teScan {
	scans := make([]teScan, 0, len(r.tes))
	seen := make(map[uint64]bool, len(prev))
	for _, ts := range r.tes {
		ts.mu.RLock()
		sc := teScan{name: ts.def.Name, n: len(ts.insts)}
		for _, ti := range ts.insts {
			if ti.killed.Load() {
				continue
			}
			sc.live++
			seen[ti.originID()] = true
			// Backpressure acts on the overflow, not on blocked senders: a
			// batch only parks once the destination channel is out of
			// slots, so parked depth is the direct, sustained measure of a
			// TE that cannot keep up — the primary bottleneck input. The
			// full item backlog (channel + parked + in-flight) still feeds
			// the straggler heuristic so a lagging instance is caught
			// before its queue overflows; both scores are in items, so
			// they rank coherently against each other.
			sc.parkPeak += int(ti.overflow.TakePeak())
			backlog := int(ti.queued.Load())
			sc.backlog += backlog
			if backlog > r.opts.QueueLen/4 {
				sc.queued = true
			}
			cur := ti.processed.Load()
			sc.deltas = append(sc.deltas, cur-prev[ti.originID()])
			prev[ti.originID()] = cur
		}
		ts.mu.RUnlock()
		scans = append(scans, sc)
	}
	for o := range prev {
		if !seen[o] {
			delete(prev, o)
		}
	}
	return scans
}

// updateIdleStreaks advances the per-TE count of consecutive scans at or
// below the low-water mark, resetting it the moment load reappears. Both
// the instantaneous backlog and the interval's parked peak must be low: a
// burst that parked and fully drained between two ticks is load, not idle
// time.
func (r *Runtime) updateIdleStreaks(p ScalePolicy, scans []teScan, streak map[string]int) {
	for _, sc := range scans {
		if !p.watches(sc.name) {
			continue
		}
		if sc.live > p.MinInstances && sc.backlog <= p.QueueLowWater && sc.parkPeak <= p.QueueLowWater {
			streak[sc.name]++
		} else {
			streak[sc.name] = 0
		}
	}
}

// shrinkCandidate returns the watched TE with the longest completed
// low-water streak (and its current live instance count), or "" when none
// has stayed idle long enough.
func shrinkCandidate(p ScalePolicy, scans []teScan, streak map[string]int) (string, int) {
	best := ""
	bestStreak := 0
	bestN := 0
	for _, sc := range scans {
		s := streak[sc.name]
		if s < p.ShrinkAfter || s <= bestStreak || sc.live <= p.MinInstances {
			continue
		}
		best, bestStreak, bestN = sc.name, s, sc.live
	}
	return best, bestN
}

// findBottleneck returns the name and current instance count of a TE that
// needs another instance: either items parked behind its persistently full
// queues during the scan interval, or one of its instances lags its
// siblings badly (a straggler) while work queues.
func findBottleneck(p ScalePolicy, scans []teScan) (string, int) {
	best := ""
	bestQueue := 0
	bestN := 0
	for _, sc := range scans {
		if !p.watches(sc.name) || sc.n >= p.MaxInstances {
			continue
		}
		// Bottleneck: items parked behind a full queue at any point in the
		// interval.
		if sc.parkPeak >= p.QueueHighWater && sc.parkPeak > bestQueue {
			best, bestQueue, bestN = sc.name, sc.parkPeak, sc.n
			continue
		}
		// Straggler: one instance far below the fastest sibling while its
		// queue builds (Fig. 10's second event). Needs at least 2 instances
		// to compare.
		if sc.queued && len(sc.deltas) >= 2 {
			var max, min int64 = sc.deltas[0], sc.deltas[0]
			for _, d := range sc.deltas[1:] {
				if d > max {
					max = d
				}
				if d < min {
					min = d
				}
			}
			if max > 0 && min*3 < max && sc.backlog > bestQueue {
				best, bestQueue, bestN = sc.name, sc.backlog, sc.n
			}
		}
	}
	return best, bestN
}
