package runtime

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/state"
)

// ScaleUp adds one instance to the named TE (§3.3: "the runtime system
// changes the number of TE instances in response to stragglers"). The
// effect depends on the TE's state:
//
//   - stateless TE: a new instance starts on a fresh node;
//   - partial SE: a new empty replica is created on a fresh node, and every
//     TE accessing the SE gains an instance there (the paper's Fig. 10:
//     "a second instance is added ... which also causes a new instance of
//     the partial state in the coOcc matrix to be created");
//   - partitioned SE: the SE is re-partitioned from k to k+1 instances —
//     processing on the accessing TEs pauses briefly while the partitions
//     are rebuilt, then resumes on k+1 nodes.
func (r *Runtime) ScaleUp(teName string) error {
	ts, err := r.te(teName)
	if err != nil {
		return err
	}
	if ts.def.Access == nil {
		node := r.cl.AddNode()
		ts.mu.Lock()
		ti := r.newInstance(ts, len(ts.insts), node)
		ts.insts = append(ts.insts, ti)
		ts.bumpInstances()
		ts.mu.Unlock()
		r.startWorker(ti)
		return nil
	}
	ss := r.ses[ts.def.Access.SE]
	switch ss.def.Kind {
	case core.KindPartial:
		return r.growPartial(ss)
	case core.KindPartitioned:
		return r.repartition(ss)
	default:
		return fmt.Errorf("runtime: unknown state kind %v", ss.def.Kind)
	}
}

// growPartial adds one partial replica and the matching TE instances. New
// replicas start empty and accumulate independently, consistent with
// partial SE semantics (instances are reconciled by merge computation, not
// kept identical).
func (r *Runtime) growPartial(ss *seState) error {
	node := r.cl.AddNode()
	store, err := r.newStore(ss.def)
	if err != nil {
		return err
	}
	ss.mu.Lock()
	idx := len(ss.insts)
	si := &seInstance{se: ss, idx: idx, node: node, store: store}
	ss.insts = append(ss.insts, si)
	ss.mu.Unlock()

	var started []*teInstance
	for _, teID := range r.graph.TEsAccessing(ss.def.ID) {
		ts := r.tes[teID]
		ts.mu.Lock()
		ti := r.newInstance(ts, idx, node)
		ts.insts = append(ts.insts, ti)
		ts.bumpInstances()
		// Trim bookkeeping must now cover the new instance too.
		ts.ckptWM = nil
		ts.mu.Unlock()
		started = append(started, ti)
	}
	for _, ti := range started {
		r.startWorker(ti)
	}
	if r.opts.Mode != 0 && r.bk != nil {
		r.startCheckpointLoop(si)
	}
	return nil
}

// repartition grows a partitioned SE from k to k+1 instances by draining
// the accessing TEs, re-chunking every partition and rebuilding k+1 stores.
// This is the expensive path; the paper's experiments scale partial state,
// but partitioned scale-out is required for completeness (new partitioned
// SE instances "may result" from new TE instances, §3.3).
func (r *Runtime) repartition(ss *seState) error {
	accessing := r.graph.TEsAccessing(ss.def.ID)

	// Pause the nodes hosting the SE so no TE mutates it mid-move.
	ss.mu.Lock()
	defer ss.mu.Unlock()
	k := len(ss.insts)
	var resumes []func()
	paused := map[int]bool{}
	for _, si := range ss.insts {
		if paused[si.node.ID] {
			continue
		}
		paused[si.node.ID] = true
		mu := r.pauseFor(si.node)
		mu.Lock()
		resumes = append(resumes, mu.Unlock)
	}
	defer func() {
		for _, resume := range resumes {
			resume()
		}
	}()

	// Collect one chunk per existing partition, split each k+1 ways and
	// regroup — the same machinery the m-to-n restore uses.
	groups := make([][]state.Chunk, k+1)
	for _, si := range ss.insts {
		chunks, err := si.store.Checkpoint(1)
		if err != nil {
			return err
		}
		parts, err := state.SplitChunk(chunks[0], k+1)
		if err != nil {
			return err
		}
		for j, p := range parts {
			groups[j] = append(groups[j], p)
		}
	}
	newInsts := make([]*seInstance, k+1)
	for j := 0; j <= k; j++ {
		node := r.cl.AddNode()
		if j < k {
			node = ss.insts[j].node // existing partitions stay home
		}
		store, err := r.newStore(ss.def)
		if err != nil {
			return err
		}
		if err := store.Restore(groups[j]); err != nil {
			return err
		}
		newInsts[j] = &seInstance{se: ss, idx: j, node: node, store: store}
		if j < k {
			// The rebuilt instance inherits its predecessor's epoch counter
			// so epochs stay monotonic per instance name in the backup
			// manifest (a reset counter could reuse an epoch number still
			// referenced by the superseded chain). chained stays false: the
			// repartitioned store must anchor a fresh base first.
			newInsts[j].epoch.Store(ss.insts[j].epoch.Load())
		}
	}
	ss.insts = newInsts

	// Add the TE instances for the new partition.
	var started []*teInstance
	for _, teID := range accessing {
		ts := r.tes[teID]
		ts.mu.Lock()
		ti := r.newInstance(ts, k, newInsts[k].node)
		ts.insts = append(ts.insts, ti)
		ts.bumpInstances()
		ts.ckptWM = nil
		ts.mu.Unlock()
		started = append(started, ti)
	}
	for _, ti := range started {
		r.startWorker(ti)
	}
	if r.opts.Mode != 0 && r.bk != nil {
		r.startCheckpointLoop(newInsts[k])
	}
	return nil
}

// ScalePolicy tunes the reactive bottleneck/straggler detector.
type ScalePolicy struct {
	// QueueHighWater: a TE whose summed parked-overflow depth (items that
	// found the inbound queue full and parked in the lossless overflow)
	// stays above this threshold is a bottleneck. Parked items are the
	// primary backpressure signal: senders only park once the channel is
	// out of slots, so any sustained depth means the TE cannot keep up.
	QueueHighWater int
	// Cooldown between scaling actions.
	Cooldown time.Duration
	// MaxInstances bounds growth per TE.
	MaxInstances int
	// TEs restricts the controller to the named task elements; empty means
	// all TEs are monitored.
	TEs []string
	// OnScale, if set, is invoked after each scaling action with the TE
	// name and its new instance count (used by the Fig. 10 experiment to
	// record the timeline).
	OnScale func(te string, instances int)
}

func (p ScalePolicy) watches(te string) bool {
	if len(p.TEs) == 0 {
		return true
	}
	for _, name := range p.TEs {
		if name == te {
			return true
		}
	}
	return false
}

// StartAutoScale launches the reactive controller: every interval it scans
// TEs for bottlenecks (persistently full queues) and stragglers (an
// instance whose processing rate falls far below its siblings' while items
// keep queueing) and adds instances, mirroring §3.3's dynamic dataflow
// approach.
func (r *Runtime) StartAutoScale(interval time.Duration, p ScalePolicy) {
	if p.QueueHighWater <= 0 {
		p.QueueHighWater = r.opts.QueueLen / 2
	}
	if p.MaxInstances <= 0 {
		p.MaxInstances = 16
	}
	if p.Cooldown <= 0 {
		p.Cooldown = 4 * interval
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		lastScale := time.Time{}
		prev := map[uint64]int64{} // instance origin -> processed count
		for {
			select {
			case <-r.stopped:
				return
			case <-ticker.C:
				if time.Since(lastScale) < p.Cooldown {
					// Still observe rates during cooldown.
					r.observeRates(prev)
					continue
				}
				if te, n := r.findBottleneck(p, prev); te != "" {
					if err := r.ScaleUp(te); err == nil {
						lastScale = time.Now()
						if p.OnScale != nil {
							p.OnScale(te, n+1)
						}
					}
				}
			}
		}
	}()
}

func (r *Runtime) observeRates(prev map[uint64]int64) {
	for _, ts := range r.tes {
		ts.mu.RLock()
		for _, ti := range ts.insts {
			prev[ti.originID()] = ti.processed.Load()
		}
		ts.mu.RUnlock()
	}
}

// findBottleneck returns the name and current instance count of a TE that
// needs another instance: either its queues are persistently full, or one
// of its instances lags its siblings badly (a straggler) while work queues.
func (r *Runtime) findBottleneck(p ScalePolicy, prev map[uint64]int64) (string, int) {
	best := ""
	bestQueue := 0
	bestN := 0
	for _, ts := range r.tes {
		if !p.watches(ts.def.Name) {
			continue
		}
		ts.mu.RLock()
		n := len(ts.insts)
		totalPark := 0
		totalBacklog := 0
		var deltas []int64
		queued := false
		for _, ti := range ts.insts {
			if ti.killed.Load() {
				continue
			}
			// Backpressure acts on the overflow now, not on blocked
			// senders: a batch only parks once the destination channel is
			// out of slots, so parked depth is the direct, sustained
			// measure of a TE that cannot keep up — the primary bottleneck
			// input. The full item backlog (channel + parked + in-flight)
			// still feeds the straggler heuristic so a lagging instance is
			// caught before its queue overflows; both scores are in items,
			// so they rank coherently against each other below.
			totalPark += int(ti.overflow.Items())
			backlog := int(ti.queued.Load())
			totalBacklog += backlog
			if backlog > r.opts.QueueLen/4 {
				queued = true
			}
			cur := ti.processed.Load()
			deltas = append(deltas, cur-prev[ti.originID()])
			prev[ti.originID()] = cur
		}
		ts.mu.RUnlock()
		if n >= p.MaxInstances {
			continue
		}
		// Bottleneck: items parked behind a persistently full queue.
		if totalPark >= p.QueueHighWater && totalPark > bestQueue {
			best, bestQueue, bestN = ts.def.Name, totalPark, n
			continue
		}
		// Straggler: one instance far below the fastest sibling while its
		// queue builds (Fig. 10's second event). Needs at least 2 instances
		// to compare, or a visible backlog on a single slow instance.
		if queued && len(deltas) >= 2 {
			var max, min int64 = deltas[0], deltas[0]
			for _, d := range deltas[1:] {
				if d > max {
					max = d
				}
				if d < min {
					min = d
				}
			}
			if max > 0 && min*3 < max && totalBacklog > bestQueue {
				best, bestQueue, bestN = ts.def.Name, totalBacklog, n
			}
		}
	}
	return best, bestN
}
