package kv

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/runtime"
)

// Hand-written (compiled) task functions: the counterpart to the
// translator's interpreted benches.
func BenchmarkKVPut(b *testing.B) {
	s, err := New(Config{Partitions: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Stop()
	val := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(uint64(i%8192), val, 30*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKVGet(b *testing.B) {
	s, err := New(Config{Partitions: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Stop()
	for i := 0; i < 8192; i++ {
		if err := s.Put(uint64(i), make([]byte, 64), 30*time.Second); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(uint64(i%8192), 30*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: put throughput with fault tolerance off vs async vs sync
// checkpointing at a steady cadence.
func BenchmarkKVPutByFTMode(b *testing.B) {
	modes := []struct {
		name string
		mode checkpoint.Mode
	}{
		{"noFT", checkpoint.ModeOff},
		{"async", checkpoint.ModeAsync},
		{"sync", checkpoint.ModeSync},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			s, err := New(Config{Partitions: 1, Runtime: runtime.Options{
				Mode:     m.mode,
				Interval: 50 * time.Millisecond,
			}})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Stop()
			val := make([]byte, 128)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Put(uint64(i%4096), val, 30*time.Second); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: recovery time by restore width on a fixed checkpoint.
func BenchmarkKVRecoveryWidth(b *testing.B) {
	for _, n := range []int{1, 2} {
		b.Run(fmt.Sprintf("restore=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, err := New(Config{Partitions: 1, Runtime: runtime.Options{
					Mode:     checkpoint.ModeAsync,
					Interval: time.Hour,
					Chunks:   2,
				}})
				if err != nil {
					b.Fatal(err)
				}
				for k := uint64(0); k < 2000; k++ {
					if err := s.Put(k, make([]byte, 128), 30*time.Second); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := s.Runtime().CheckpointNow("store", 0); err != nil {
					b.Fatal(err)
				}
				node := s.Runtime().Stats().SEs[0].Nodes[0]
				s.Runtime().KillNode(node)
				b.StartTimer()
				if _, err := s.Runtime().Recover("store", n); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				s.Stop()
			}
		})
	}
}
