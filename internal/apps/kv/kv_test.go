package kv

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/runtime"
	"repro/internal/workload"
)

const testTimeout = 5 * time.Second

func TestPutGetDelete(t *testing.T) {
	s, err := New(Config{Partitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	if err := s.Put(1, []byte("one"), testTimeout); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get(1, testTimeout)
	if err != nil || string(v) != "one" {
		t.Fatalf("get = %q, %v", v, err)
	}
	if v, err := s.Get(2, testTimeout); err != nil || v != nil {
		t.Fatalf("missing get = %q, %v", v, err)
	}
	ok, err := s.Delete(1, testTimeout)
	if err != nil || !ok {
		t.Fatalf("delete = %v, %v", ok, err)
	}
	ok, err = s.Delete(1, testTimeout)
	if err != nil || ok {
		t.Fatalf("second delete = %v, %v", ok, err)
	}
	if s.StateBytes() != 0 {
		t.Fatalf("state bytes = %d after delete", s.StateBytes())
	}
}

func TestWorkloadDriven(t *testing.T) {
	s, err := New(Config{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	gen := workload.NewKVGen(3, 500, 0, 32) // all writes
	shadow := map[uint64][]byte{}
	for i := 0; i < 1000; i++ {
		op := gen.Next()
		if err := s.Put(op.Key, op.Value, testTimeout); err != nil {
			t.Fatal(err)
		}
		shadow[op.Key] = op.Value
	}
	for k, want := range shadow {
		got, err := s.Get(k, testTimeout)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("key %d mismatch", k)
		}
	}
	if s.StateBytes() <= 0 {
		t.Fatal("state bytes should be positive")
	}
}

func TestAsyncPutThroughputPath(t *testing.T) {
	s, err := New(Config{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	for k := uint64(0); k < 500; k++ {
		if err := s.PutAsync(k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Runtime().Drain(testTimeout) {
		t.Fatal("drain")
	}
	for k := uint64(0); k < 500; k += 50 {
		v, err := s.Get(k, testTimeout)
		if err != nil || v == nil {
			t.Fatalf("get %d after async puts: %v %v", k, v, err)
		}
	}
}

func TestKVRecoveryEndToEnd(t *testing.T) {
	s, err := New(Config{Runtime: runtime.Options{
		Mode:     checkpoint.ModeAsync,
		Interval: time.Hour,
		Chunks:   3,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	for k := uint64(0); k < 200; k++ {
		if err := s.Put(k, []byte(fmt.Sprintf("v%d", k)), testTimeout); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Runtime().CheckpointNow("store", 0); err != nil {
		t.Fatal(err)
	}
	for k := uint64(200); k < 250; k++ {
		if err := s.Put(k, []byte(fmt.Sprintf("v%d", k)), testTimeout); err != nil {
			t.Fatal(err)
		}
	}
	node := s.Runtime().Stats().SEs[0].Nodes[0]
	s.Runtime().KillNode(node)
	stats, err := s.Runtime().Recover("store", 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.NewNodes != 2 {
		t.Fatalf("recovery = %+v", stats)
	}
	if !s.Runtime().Drain(testTimeout) {
		t.Fatal("drain")
	}
	for k := uint64(0); k < 250; k++ {
		v, err := s.Get(k, testTimeout)
		if err != nil || v == nil {
			t.Fatalf("get %d after recovery: %v %v", k, v, err)
		}
		if want := fmt.Sprintf("v%d", k); string(v) != want {
			t.Fatalf("get %d = %q", k, v)
		}
	}
}
