// Package kv implements the distributed partitioned key/value store the
// paper uses as a synthetic benchmark "because it exemplifies an algorithm
// with pure mutable state" (§6.1). The store is a single partitioned KVMap
// SE with put/get/delete entry TEs accessing it by key.
package kv

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/state"
	"repro/internal/wire"
)

func init() {
	wire.Register([]byte{})
	runtime.RegisterGraph("kv", Graph)
}

// Graph builds the KV SDG.
func Graph() *core.Graph {
	g := core.NewGraph("kv")
	store := g.AddSE("store", core.KindPartitioned, state.TypeKVMap, nil)
	g.AddTE("put", func(ctx core.Context, it core.Item) {
		kvm := ctx.Store().(state.KV)
		kvm.Put(it.Key, it.Value.([]byte))
		ctx.Reply(true)
	}, &core.Access{SE: store, Mode: core.AccessByKey}, true)
	g.AddTE("get", func(ctx core.Context, it core.Item) {
		kvm := ctx.Store().(state.KV)
		if v, ok := kvm.Get(it.Key); ok {
			ctx.Reply(v)
			return
		}
		ctx.Reply(nil)
	}, &core.Access{SE: store, Mode: core.AccessByKey}, true)
	g.AddTE("delete", func(ctx core.Context, it core.Item) {
		kvm := ctx.Store().(state.KV)
		ctx.Reply(kvm.Delete(it.Key))
	}, &core.Access{SE: store, Mode: core.AccessByKey}, true)
	return g
}

// KV is a deployed key/value store.
type KV struct {
	rt *runtime.Runtime
}

// Config sizes the deployment.
type Config struct {
	// Partitions spreads the store over this many SE instances/nodes.
	Partitions int
	Runtime    runtime.Options
}

// New deploys the KV SDG.
func New(cfg Config) (*KV, error) {
	if cfg.Partitions <= 0 {
		cfg.Partitions = 1
	}
	opts := cfg.Runtime
	if opts.Partitions == nil {
		opts.Partitions = map[string]int{}
	}
	opts.Partitions["store"] = cfg.Partitions
	rt, err := runtime.Deploy(Graph(), opts)
	if err != nil {
		return nil, fmt.Errorf("kv: %w", err)
	}
	return &KV{rt: rt}, nil
}

// Put stores value under key and waits for the acknowledgement.
func (k *KV) Put(key uint64, value []byte, timeout time.Duration) error {
	_, err := k.rt.Call("put", key, value, timeout)
	return err
}

// PutAsync stores without waiting (the update-throughput path of Fig. 6).
func (k *KV) PutAsync(key uint64, value []byte) error {
	return k.rt.Inject("put", key, value)
}

// Get fetches the value under key; a nil result means the key is absent.
func (k *KV) Get(key uint64, timeout time.Duration) ([]byte, error) {
	v, err := k.rt.Call("get", key, nil, timeout)
	if err != nil {
		return nil, err
	}
	if v == nil {
		return nil, nil
	}
	return v.([]byte), nil
}

// Delete removes key, reporting whether it was present.
func (k *KV) Delete(key uint64, timeout time.Duration) (bool, error) {
	v, err := k.rt.Call("delete", key, nil, timeout)
	if err != nil {
		return false, err
	}
	return v.(bool), nil
}

// StateBytes reports the aggregate store size across partitions.
func (k *KV) StateBytes() int64 {
	var total int64
	for _, se := range k.rt.Stats().SEs {
		total += se.Bytes
	}
	return total
}

// Runtime exposes the underlying runtime for experiments.
func (k *KV) Runtime() *runtime.Runtime { return k.rt }

// Stop shuts the deployment down.
func (k *KV) Stop() { k.rt.Stop() }
