package wordcount

import (
	"sync"
	"testing"
	"time"

	"repro/internal/workload"
)

const testTimeout = 5 * time.Second

func TestCountsWithinWindow(t *testing.T) {
	w, err := New(Config{Window: time.Hour, Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()
	base := time.Now()
	_ = w.FeedAt([]string{"a", "b", "a"}, base)
	_ = w.FeedAt([]string{"a", "c"}, base)
	if !w.Runtime().Drain(testTimeout) {
		t.Fatal("drain")
	}
	if got := w.Counts("a"); got != 3 {
		t.Fatalf("count(a) = %d, want 3", got)
	}
	if got := w.Counts("b"); got != 1 {
		t.Fatalf("count(b) = %d, want 1", got)
	}
	if got := w.Counts("zzz"); got != 0 {
		t.Fatalf("count(zzz) = %d, want 0", got)
	}
}

func TestWindowRotationFlushes(t *testing.T) {
	var mu sync.Mutex
	var reports []WindowReport
	w, err := New(Config{
		Window:     100 * time.Millisecond,
		Partitions: 1,
		OnReport: func(r WindowReport) {
			mu.Lock()
			reports = append(reports, r)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()
	base := time.Unix(1000, 0)
	// Three lines in window 1, then one line in window 2 triggers a flush.
	_ = w.FeedAt([]string{"x", "y"}, base)
	_ = w.FeedAt([]string{"x"}, base.Add(10*time.Millisecond))
	_ = w.FeedAt([]string{"y", "y"}, base.Add(20*time.Millisecond))
	if !w.Runtime().Drain(testTimeout) {
		t.Fatal("drain")
	}
	_ = w.FeedAt([]string{"z"}, base.Add(150*time.Millisecond))
	if !w.Runtime().Drain(testTimeout) {
		t.Fatal("drain")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(reports) != 1 {
		t.Fatalf("reports = %+v, want exactly 1 flush", reports)
	}
	if reports[0].DistinctWords != 2 || reports[0].TotalCount != 5 {
		t.Fatalf("flushed window = %+v, want 2 distinct, 5 total", reports[0])
	}
	// The new window only holds z.
	if got := w.Counts("z"); got != 1 {
		t.Fatalf("count(z) = %d", got)
	}
	if got := w.Counts("x"); got != 0 {
		t.Fatalf("count(x) = %d after rotation, want 0", got)
	}
}

func TestLateItemsDropped(t *testing.T) {
	w, err := New(Config{Window: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()
	base := time.Unix(2000, 0)
	_ = w.FeedAt([]string{"new"}, base.Add(500*time.Millisecond))
	if !w.Runtime().Drain(testTimeout) {
		t.Fatal("drain")
	}
	_ = w.FeedAt([]string{"old"}, base) // belongs to a closed window
	if !w.Runtime().Drain(testTimeout) {
		t.Fatal("drain")
	}
	if got := w.Counts("old"); got != 0 {
		t.Fatalf("late item counted: %d", got)
	}
	if got := w.Counts("new"); got != 1 {
		t.Fatalf("count(new) = %d", got)
	}
}

func TestZipfStreamAcrossPartitions(t *testing.T) {
	w, err := New(Config{Window: time.Hour, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()
	gen := workload.NewTextGen(11, 200)
	var fed int
	base := time.Now()
	for i := 0; i < 100; i++ {
		line := gen.Line(20)
		fed += len(line)
		_ = w.FeedAt(line, base)
	}
	if !w.Runtime().Drain(testTimeout) {
		t.Fatal("drain")
	}
	// Head word of the Zipf vocabulary must dominate.
	if got := w.Counts("w00000"); got < 100 {
		t.Fatalf("head word count = %d, want heavy", got)
	}
	// Split TE emitted one item per word.
	if got := w.Runtime().Processed("count"); got != int64(fed) {
		t.Fatalf("count TE processed %d items, want %d", got, fed)
	}
}
