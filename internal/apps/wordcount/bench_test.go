package wordcount

import (
	"testing"
	"time"

	"repro/internal/workload"
)

// BenchmarkFeed measures the fine-grained state-update path: one line
// fans out into per-word partitioned counter updates.
func BenchmarkFeed(b *testing.B) {
	wc, err := New(Config{Window: time.Hour, Partitions: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer wc.Stop()
	gen := workload.NewTextGen(3, 5000)
	lines := make([][]string, 256)
	for i := range lines {
		lines[i] = gen.Line(10)
	}
	b.SetBytes(10) // words per line
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := wc.Feed(lines[i%len(lines)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	wc.Runtime().Drain(60 * time.Second)
}
