// Package wordcount implements the streaming wordcount application of §6.1
// ("WC reports the word frequencies over a wall clock time window"). Lines
// are split by a stateless TE and the (word, 1) pairs are hash-partitioned
// to counting TEs holding per-window counts in a partitioned KVMap. When a
// TE instance observes an item belonging to a newer window it flushes its
// partition's counts downstream and rotates the state — so the window size
// controls the granularity of state updates, which is the variable Fig. 8
// sweeps.
package wordcount

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/state"
	"repro/internal/wire"
)

// Payloads.
type (
	// LineMsg is one input line of text with its arrival timestamp.
	LineMsg struct {
		Words []string
		AtNS  int64
	}
	// WordMsg is one (word, window) pair.
	WordMsg struct {
		Word   string
		Window uint64
	}
	// WindowReport is the flushed summary of one window partition.
	WindowReport struct {
		Window        uint64
		DistinctWords int
		TotalCount    uint64
	}
)

func init() {
	wire.Register(LineMsg{})
	wire.Register(WordMsg{})
	wire.Register(WindowReport{})
}

func hashWord(w string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(w))
	return h.Sum64()
}

// Graph builds the WC SDG for a given window size.
func Graph(window time.Duration) *core.Graph {
	g := core.NewGraph("wordcount")
	counts := g.AddSE("counts", core.KindPartitioned, state.TypeKVMap, nil)

	split := g.AddTE("split", func(ctx core.Context, it core.Item) {
		msg := it.Value.(LineMsg)
		win := uint64(msg.AtNS / int64(window))
		for _, w := range msg.Words {
			ctx.Emit(0, hashWord(w), WordMsg{Word: w, Window: win})
		}
	}, nil, true)

	count := g.AddTE("count", func(ctx core.Context, it core.Item) {
		msg := it.Value.(WordMsg)
		kvm := ctx.Store().(state.KV)
		// Window rotation: a newer window flushes and clears this partition.
		const winKey = ^uint64(0) // sentinel slot holding the current window
		curWin := uint64(0)
		if v, ok := kvm.Get(winKey); ok && len(v) == 8 {
			curWin = leUint64(v)
		}
		if msg.Window > curWin {
			if curWin > 0 || kvm.NumEntries() > 1 {
				distinct := 0
				var total uint64
				kvm.ForEach(func(k uint64, v []byte) bool {
					if k == winKey || len(v) != 8 {
						return true
					}
					distinct++
					total += leUint64(v)
					return true
				})
				ctx.Emit(0, 0, WindowReport{Window: curWin, DistinctWords: distinct, TotalCount: total})
			}
			kvm.Clear()
			kvm.Put(winKey, lePut(msg.Window))
			curWin = msg.Window
		} else if msg.Window < curWin {
			return // late item from a closed window: dropped
		}
		slot := it.Key
		var c uint64
		if v, ok := kvm.Get(slot); ok && len(v) == 8 {
			c = leUint64(v)
		}
		kvm.Put(slot, lePut(c+1))
	}, &core.Access{SE: counts, Mode: core.AccessByKey}, false)

	sink := g.AddTE("report", func(ctx core.Context, it core.Item) {
		if h := reportHook.Load(); h != nil {
			(*h)(it.Value.(WindowReport))
		}
	}, nil, false)

	g.Connect(split, count, core.DispatchPartitioned)
	g.Connect(count, sink, core.DispatchOneToAny)
	return g
}

// reportHook lets the driver observe flushed windows without polling state.
var reportHook hookPtr

type hookPtr struct {
	mu sync.Mutex
	fn *func(WindowReport)
}

func (p *hookPtr) Load() *func(WindowReport) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fn
}

func (p *hookPtr) Store(fn *func(WindowReport)) {
	p.mu.Lock()
	p.fn = fn
	p.mu.Unlock()
}

func leUint64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func lePut(v uint64) []byte {
	return []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24),
		byte(v >> 32), byte(v >> 40), byte(v >> 48), byte(v >> 56)}
}

// WC is a deployed streaming wordcount.
type WC struct {
	rt     *runtime.Runtime
	window time.Duration
}

// Config sizes the deployment.
type Config struct {
	// Window is the wall-clock aggregation window.
	Window time.Duration
	// Partitions spreads the counts SE.
	Partitions int
	// OnReport observes flushed windows.
	OnReport func(WindowReport)
	Runtime  runtime.Options
}

// New deploys the WC SDG.
func New(cfg Config) (*WC, error) {
	if cfg.Window <= 0 {
		cfg.Window = time.Second
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = 1
	}
	if cfg.OnReport != nil {
		fn := cfg.OnReport
		reportHook.Store(&fn)
	} else {
		reportHook.Store(nil)
	}
	opts := cfg.Runtime
	if opts.Partitions == nil {
		opts.Partitions = map[string]int{}
	}
	opts.Partitions["counts"] = cfg.Partitions
	rt, err := runtime.Deploy(Graph(cfg.Window), opts)
	if err != nil {
		return nil, fmt.Errorf("wordcount: %w", err)
	}
	return &WC{rt: rt, window: cfg.Window}, nil
}

// Feed ingests one line of text stamped with the current wall clock.
func (w *WC) Feed(words []string) error {
	return w.rt.Inject("split", 0, LineMsg{Words: words, AtNS: time.Now().UnixNano()})
}

// FeedAt ingests a line with an explicit timestamp (deterministic tests).
func (w *WC) FeedAt(words []string, at time.Time) error {
	return w.rt.Inject("split", 0, LineMsg{Words: words, AtNS: at.UnixNano()})
}

// Counts sums the live (current-window) counts for a word across
// partitions.
func (w *WC) Counts(word string) uint64 {
	slot := hashWord(word)
	var total uint64
	n := w.rt.StateInstances("counts")
	for i := 0; i < n; i++ {
		st, err := w.rt.StateStore("counts", i)
		if err != nil {
			continue
		}
		if v, ok := st.(state.KV).Get(slot); ok && len(v) == 8 {
			total += leUint64(v)
		}
	}
	return total
}

// Runtime exposes the underlying runtime for experiments.
func (w *WC) Runtime() *runtime.Runtime { return w.rt }

// Stop shuts the deployment down.
func (w *WC) Stop() { w.rt.Stop() }
