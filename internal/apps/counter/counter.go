// Package counter implements a partitioned increment-counter SDG used by the
// distributed-mode tests. Unlike the kv store's put (idempotent: applying it
// twice leaves the same value), an increment is a read-modify-write — every
// lost or duplicated item shifts the final count, which makes this graph an
// exact detector for the coordinator's no-loss/no-duplication guarantees
// across failures.
package counter

import (
	"encoding/binary"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/state"
)

func init() {
	runtime.RegisterGraph("counter", Graph)
	runtime.RegisterGraph("counterchain", ChainGraph)
}

// Graph builds the counter SDG: one partitioned KVMap SE holding big-endian
// uint64 counts, one keyed entry TE incrementing them.
func Graph() *core.Graph {
	g := core.NewGraph("counter")
	counts := g.AddSE("counts", core.KindPartitioned, state.TypeKVMap, nil)
	g.AddTE("inc", func(ctx core.Context, it core.Item) {
		kvm := ctx.Store().(state.KV)
		var n uint64
		if v, ok := kvm.Get(it.Key); ok {
			n = binary.BigEndian.Uint64(v)
		}
		buf := make([]byte, 8)
		binary.BigEndian.PutUint64(buf, n+1)
		kvm.Put(it.Key, buf)
		ctx.Reply(n + 1)
	}, &core.Access{SE: counts, Mode: core.AccessByKey}, true)
	return g
}

// ChainGraph builds the two-stage counter SDG: a stateless entry TE
// forwards every item over a partitioned dataflow edge to the keyed
// increment TE. The edge is the point of this graph — deployed across
// workers it is cut, so the same exact-count property that makes the flat
// counter a loss/duplication detector now also covers the cross-worker
// delivery path. Fire-and-forget only: the ingest stage does not Reply
// (cross-worker request/reply is not supported).
func ChainGraph() *core.Graph {
	g := core.NewGraph("counterchain")
	counts := g.AddSE("counts", core.KindPartitioned, state.TypeKVMap, nil)
	ingest := g.AddTE("ingest", func(ctx core.Context, it core.Item) {
		ctx.Emit(0, it.Key, it.Value)
	}, nil, true)
	inc := g.AddTE("inc", func(ctx core.Context, it core.Item) {
		kvm := ctx.Store().(state.KV)
		var n uint64
		if v, ok := kvm.Get(it.Key); ok {
			n = binary.BigEndian.Uint64(v)
		}
		buf := make([]byte, 8)
		binary.BigEndian.PutUint64(buf, n+1)
		kvm.Put(it.Key, buf)
	}, &core.Access{SE: counts, Mode: core.AccessByKey}, false)
	g.Connect(ingest, inc, core.DispatchPartitioned)
	return g
}

// Count decodes one stored counter value.
func Count(v []byte) uint64 {
	if len(v) != 8 {
		return 0
	}
	return binary.BigEndian.Uint64(v)
}
