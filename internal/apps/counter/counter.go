// Package counter implements a partitioned increment-counter SDG used by the
// distributed-mode tests. Unlike the kv store's put (idempotent: applying it
// twice leaves the same value), an increment is a read-modify-write — every
// lost or duplicated item shifts the final count, which makes this graph an
// exact detector for the coordinator's no-loss/no-duplication guarantees
// across failures.
package counter

import (
	"encoding/binary"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/state"
)

func init() {
	runtime.RegisterGraph("counter", Graph)
}

// Graph builds the counter SDG: one partitioned KVMap SE holding big-endian
// uint64 counts, one keyed entry TE incrementing them.
func Graph() *core.Graph {
	g := core.NewGraph("counter")
	counts := g.AddSE("counts", core.KindPartitioned, state.TypeKVMap, nil)
	g.AddTE("inc", func(ctx core.Context, it core.Item) {
		kvm := ctx.Store().(state.KV)
		var n uint64
		if v, ok := kvm.Get(it.Key); ok {
			n = binary.BigEndian.Uint64(v)
		}
		buf := make([]byte, 8)
		binary.BigEndian.PutUint64(buf, n+1)
		kvm.Put(it.Key, buf)
		ctx.Reply(n + 1)
	}, &core.Access{SE: counts, Mode: core.AccessByKey}, true)
	return g
}

// Count decodes one stored counter value.
func Count(v []byte) uint64 {
	if len(v) != 8 {
		return 0
	}
	return binary.BigEndian.Uint64(v)
}
