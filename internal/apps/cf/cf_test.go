package cf

import (
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/runtime"
	"repro/internal/workload"
)

const testTimeout = 5 * time.Second

func TestGraphValidatesAndAllocates(t *testing.T) {
	g := Graph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	a := g.Allocate()
	if a.Nodes != 3 {
		t.Fatalf("CF allocates to %d nodes, paper's Fig. 1 shows 3", a.Nodes)
	}
}

func TestRecommendationsReflectCoOccurrence(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	// User 1 rates items 10 and 20; user 2 rates items 10 and 30.
	ratings := []struct{ u, i, r int }{
		{1, 10, 5}, {1, 20, 4},
		{2, 10, 5}, {2, 30, 3},
	}
	for _, r := range ratings {
		if err := c.AddRating(r.u, r.i, r.r); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Runtime().Drain(testTimeout) {
		t.Fatal("drain")
	}
	// User 1's recommendations: item 30 co-occurs with item 10 (user 2
	// rated both), so it must appear in user 1's merged vector.
	rec, err := c.GetRec(1, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if rec[30] <= 0 {
		t.Fatalf("rec[30] = %f; co-occurrence with item 10 not captured (rec=%v)", rec[30], rec)
	}
	// A user with no ratings gets an empty recommendation, not an error.
	empty, err := c.GetRec(99, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range empty {
		if v != 0 {
			t.Fatalf("user 99 rec[%d] = %f, want empty", i, v)
		}
	}
}

func TestPartialCoOccMergesAcrossReplicas(t *testing.T) {
	c, err := New(Config{UserPartitions: 2, CoOccReplicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	gen := workload.NewRatingGen(7, 50, 30)
	for i := 0; i < 300; i++ {
		r := gen.Next()
		if err := c.AddRating(r.User, r.Item, r.Rating); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Runtime().Drain(testTimeout) {
		t.Fatal("drain")
	}
	// The Zipf head user rated many items; its merged recommendation must
	// be non-empty even though updates were spread over 3 replicas.
	rec, err := c.GetRec(0, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) == 0 {
		t.Fatal("merged recommendation empty despite many ratings")
	}
	if got := c.Runtime().StateInstances("coOcc"); got != 3 {
		t.Fatalf("coOcc replicas = %d", got)
	}
	if got := c.Runtime().StateInstances("userItem"); got != 2 {
		t.Fatalf("userItem partitions = %d", got)
	}
}

func TestCFSurvivesCoOccFailure(t *testing.T) {
	c, err := New(Config{Runtime: runtime.Options{
		Mode:     checkpoint.ModeAsync,
		Interval: time.Hour,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for u := 1; u <= 5; u++ {
		for i := 10; i <= 14; i++ {
			_ = c.AddRating(u, i, 5)
		}
	}
	if !c.Runtime().Drain(testTimeout) {
		t.Fatal("drain")
	}
	before, err := c.GetRec(1, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Runtime().CheckpointNow("coOcc", 0); err != nil {
		t.Fatal(err)
	}
	// Kill the node hosting coOcc and recover it.
	var coNode int
	for _, se := range c.Runtime().Stats().SEs {
		if se.Name == "coOcc" {
			coNode = se.Nodes[0]
		}
	}
	c.Runtime().KillNode(coNode)
	if _, err := c.Runtime().Recover("coOcc", 1); err != nil {
		t.Fatal(err)
	}
	if !c.Runtime().Drain(testTimeout) {
		t.Fatal("drain after recovery")
	}
	after, err := c.GetRec(1, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("recommendation changed across recovery: %v vs %v", before, after)
	}
	for k, v := range before {
		if after[k] != v {
			t.Fatalf("rec[%d] = %f after recovery, want %f", k, after[k], v)
		}
	}
}
