package cf

import (
	"testing"
	"time"

	"repro/internal/workload"
)

// The two CF workflows of §2.1: addRating must sustain high update
// throughput; getRec must serve low-latency reads over partial state.
func BenchmarkAddRating(b *testing.B) {
	app, err := New(Config{UserPartitions: 2, CoOccReplicas: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer app.Stop()
	gen := workload.NewRatingGen(42, 2000, 500)
	ratings := gen.Batch(8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := ratings[i%len(ratings)]
		if err := app.AddRating(r.User, r.Item, r.Rating); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	app.Runtime().Drain(60 * time.Second)
}

func BenchmarkGetRec(b *testing.B) {
	app, err := New(Config{UserPartitions: 2, CoOccReplicas: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer app.Stop()
	gen := workload.NewRatingGen(42, 500, 200)
	for i := 0; i < 2000; i++ {
		r := gen.Next()
		if err := app.AddRating(r.User, r.Item, r.Rating); err != nil {
			b.Fatal(err)
		}
	}
	app.Runtime().Drain(60 * time.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := app.GetRec(i%500, 30*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}
