// Package cf implements the paper's running example: online collaborative
// filtering (Alg. 1), translated to the SDG of Fig. 1.
//
// Two state elements hold the model: the user-item rating matrix
// (partitioned by user) and the item co-occurrence matrix (partial,
// replicated, because its access pattern is random). addRating updates both
// with high throughput; getRec serves fresh recommendations with low
// latency through a global read over all coOcc replicas, merged by an
// application-defined merge TE.
package cf

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/state"
	"repro/internal/wire"
)

// Payloads crossing TE boundaries (the "live variables" of §4.2 step 5).
type (
	// RatingMsg is the input of addRating.
	RatingMsg struct {
		User, Item, Rating int
	}
	// CoUpdateMsg carries the updated user row to the co-occurrence update
	// (live variables: item id + user row).
	CoUpdateMsg struct {
		Item int64
		Row  map[int64]float64
	}
	// RecReqMsg asks for recommendations for a user.
	RecReqMsg struct {
		User int
	}
	// UserVecMsg carries the user's rating row to the global multiply.
	UserVecMsg struct {
		User int
		Row  map[int64]float64
	}
	// PartialRec is one replica's partial recommendation vector.
	PartialRec map[int64]float64
	// Recommendation is the merged result returned to the caller.
	Recommendation map[int64]float64
)

func init() {
	wire.Register(RatingMsg{})
	wire.Register(CoUpdateMsg{})
	wire.Register(RecReqMsg{})
	wire.Register(UserVecMsg{})
	wire.Register(PartialRec{})
	wire.Register(Recommendation{})
}

// Graph builds the CF SDG of Fig. 1: five TEs over two SEs.
func Graph() *core.Graph {
	g := core.NewGraph("cf")
	userItem := g.AddSE("userItem", core.KindPartitioned, state.TypeMatrix, nil)
	coOcc := g.AddSE("coOcc", core.KindPartial, state.TypeMatrix, nil)

	updateUserItem := g.AddTE("updateUserItem", func(ctx core.Context, it core.Item) {
		msg := it.Value.(RatingMsg)
		ui := ctx.Store().(*state.Matrix)
		// userItem.setElement(user, item, rating)
		ui.Set(int64(msg.User), int64(msg.Item), float64(msg.Rating))
		// userRow = userItem.getRow(user); forwarded to the coOcc update.
		row := ui.RowVec(int64(msg.User))
		ctx.Emit(0, it.Key, CoUpdateMsg{Item: int64(msg.Item), Row: row})
	}, &core.Access{SE: userItem, Mode: core.AccessByKey}, true)

	updateCoOcc := g.AddTE("updateCoOcc", func(ctx core.Context, it core.Item) {
		msg := it.Value.(CoUpdateMsg)
		co := ctx.Store().(*state.Matrix)
		// for i in userRow: if rated, bump co-occurrence both ways.
		for i, rating := range msg.Row {
			if rating > 0 && i != msg.Item {
				co.Add(msg.Item, i, 1)
				co.Add(i, msg.Item, 1)
			}
		}
	}, &core.Access{SE: coOcc, Mode: core.AccessLocal}, false)

	getUserVec := g.AddTE("getUserVec", func(ctx core.Context, it core.Item) {
		msg := it.Value.(RecReqMsg)
		ui := ctx.Store().(*state.Matrix)
		row := ui.RowVec(int64(msg.User))
		ctx.EmitReq(0, it.Key, UserVecMsg{User: msg.User, Row: row})
	}, &core.Access{SE: userItem, Mode: core.AccessByKey}, true)

	getRecVec := g.AddTE("getRecVec", func(ctx core.Context, it core.Item) {
		msg := it.Value.(UserVecMsg)
		co := ctx.Store().(*state.Matrix)
		// @Partial userRec = @Global coOcc.multiply(userRow)
		ctx.EmitReq(0, 0, PartialRec(co.MulVec(msg.Row)))
	}, &core.Access{SE: coOcc, Mode: core.AccessGlobal}, false)

	merge := g.AddTE("merge", func(ctx core.Context, it core.Item) {
		coll := it.Value.(core.Collection)
		// merge(@Collection allUserRec): element-wise sum.
		rec := Recommendation{}
		for _, v := range coll {
			for i, x := range v.(PartialRec) {
				rec[i] += x
			}
		}
		ctx.Reply(rec)
	}, nil, false)

	g.Connect(updateUserItem, updateCoOcc, core.DispatchOneToAny)
	g.Connect(getUserVec, getRecVec, core.DispatchOneToAll)
	g.Connect(getRecVec, merge, core.DispatchAllToOne)
	return g
}

// CF is a deployed collaborative filtering application.
type CF struct {
	rt *runtime.Runtime
}

// Config sizes the deployment.
type Config struct {
	// UserPartitions splits the userItem matrix (default 1).
	UserPartitions int
	// CoOccReplicas creates partial coOcc instances (default 1).
	CoOccReplicas int
	// Runtime options (checkpointing etc.).
	Runtime runtime.Options
}

// New deploys the CF SDG.
func New(cfg Config) (*CF, error) {
	if cfg.UserPartitions <= 0 {
		cfg.UserPartitions = 1
	}
	if cfg.CoOccReplicas <= 0 {
		cfg.CoOccReplicas = 1
	}
	opts := cfg.Runtime
	if opts.Partitions == nil {
		opts.Partitions = map[string]int{}
	}
	opts.Partitions["userItem"] = cfg.UserPartitions
	opts.Partitions["coOcc"] = cfg.CoOccReplicas
	rt, err := runtime.Deploy(Graph(), opts)
	if err != nil {
		return nil, fmt.Errorf("cf: %w", err)
	}
	return &CF{rt: rt}, nil
}

// AddRating ingests one rating (fire-and-forget, the high-throughput path).
func (c *CF) AddRating(user, item, rating int) error {
	return c.rt.Inject("updateUserItem", uint64(user), RatingMsg{User: user, Item: item, Rating: rating})
}

// GetRec returns the merged recommendation vector for a user (the
// low-latency path; §2.1: "getRec must serve requests with low latency").
func (c *CF) GetRec(user int, timeout time.Duration) (Recommendation, error) {
	v, err := c.rt.Call("getUserVec", uint64(user), RecReqMsg{User: user}, timeout)
	if err != nil {
		return nil, err
	}
	return v.(Recommendation), nil
}

// Runtime exposes the underlying runtime for experiments.
func (c *CF) Runtime() *runtime.Runtime { return c.rt }

// Stop shuts the deployment down.
func (c *CF) Stop() { c.rt.Stop() }
