package logreg

import (
	"testing"
	"time"

	"repro/internal/workload"
)

const testTimeout = 10 * time.Second

func TestGraphValidates(t *testing.T) {
	g := Graph(8, 0.1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Dim: 0}); err == nil {
		t.Fatal("zero dimension should fail")
	}
}

func TestTrainsToGoodAccuracySingleWorker(t *testing.T) {
	lr, err := New(Config{Dim: 10, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer lr.Stop()
	gen := workload.NewPointGen(5, 10, 0.01)
	train := gen.Batch(4000)
	for i := 0; i < len(train); i += 100 {
		if err := lr.Train(train[i : i+100]); err != nil {
			t.Fatal(err)
		}
	}
	if !lr.Runtime().Drain(testTimeout) {
		t.Fatal("drain")
	}
	acc, err := lr.Accuracy(gen.Batch(1000), testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Fatalf("accuracy = %f, want >= 0.85", acc)
	}
}

func TestPartialWeightsSyncAcrossWorkers(t *testing.T) {
	lr, err := New(Config{Dim: 10, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer lr.Stop()
	gen := workload.NewPointGen(5, 10, 0.01)
	// Two epochs with a sync between them: replicas diverge while training
	// (one-to-any batches), then reconcile by averaging.
	for epoch := 0; epoch < 2; epoch++ {
		train := gen.Batch(3000)
		for i := 0; i < len(train); i += 100 {
			if err := lr.Train(train[i : i+100]); err != nil {
				t.Fatal(err)
			}
		}
		if !lr.Runtime().Drain(testTimeout) {
			t.Fatal("drain")
		}
		if _, err := lr.Sync(testTimeout); err != nil {
			t.Fatal(err)
		}
		if !lr.Runtime().Drain(testTimeout) {
			t.Fatal("drain after sync")
		}
	}
	acc, err := lr.Accuracy(gen.Batch(1000), testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.8 {
		t.Fatalf("3-worker accuracy = %f, want >= 0.8", acc)
	}
	// After sync + broadcast write-back, all replicas hold the same model.
	w0, err := lr.Sync(testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if !lr.Runtime().Drain(testTimeout) {
		t.Fatal("drain")
	}
	w1, err := lr.Sync(testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w0 {
		if diff := w0[i] - w1[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("weights differ at %d after back-to-back syncs: %f vs %f", i, w0[i], w1[i])
		}
	}
	if got := lr.Runtime().StateInstances("weights"); got != 3 {
		t.Fatalf("weight replicas = %d", got)
	}
}
