// Package logreg implements batch logistic regression (§6.2) on SDGs. The
// model weights live in a partial Vector SE: each training TE instance
// refines its local replica with SGD over the batches it receives
// (one-to-any dispatch), and a synchronisation flow — global read, merge
// average, broadcast write-back — reconciles the replicas between epochs.
// This is the "management of partial state in the LR application" whose
// scalability Fig. 9 measures.
package logreg

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/state"
	"repro/internal/wire"
	"repro/internal/workload"
)

// Payloads.
type (
	// BatchMsg carries a slice of training points.
	BatchMsg struct {
		X [][]float64
		Y []float64
	}
	// SyncMsg triggers a model synchronisation round.
	SyncMsg struct{}
	// WeightsMsg carries one replica's weights (or the merged average).
	WeightsMsg struct {
		W []float64
	}
)

func init() {
	wire.Register(BatchMsg{})
	wire.Register(SyncMsg{})
	wire.Register(WeightsMsg{})
}

// Graph builds the LR SDG for a given dimensionality and learning rate.
func Graph(dim int, lr float64) *core.Graph {
	g := core.NewGraph("logreg")
	weights := g.AddSE("weights", core.KindPartial, state.TypeVector, func() state.Store {
		return state.NewVector(dim)
	})

	feed := g.AddTE("feed", func(ctx core.Context, it core.Item) {
		ctx.Emit(0, it.Key, it.Value)
	}, nil, true)

	train := g.AddTE("train", func(ctx core.Context, it core.Item) {
		msg := it.Value.(BatchMsg)
		w := ctx.Store().(*state.Vector)
		snap := w.Snapshot()
		grad := make([]float64, len(snap))
		for i, x := range msg.X {
			dot := 0.0
			for j := range snap {
				dot += snap[j] * x[j]
			}
			y := msg.Y[i]
			gr := (workload.Sigmoid(y*dot) - 1) * y
			for j := range grad {
				grad[j] += gr * x[j]
			}
		}
		w.AddScaled(grad, -lr/float64(len(msg.X)))
	}, &core.Access{SE: weights, Mode: core.AccessLocal}, false)

	syncTE := g.AddTE("sync", func(ctx core.Context, it core.Item) {
		ctx.EmitReq(0, 0, it.Value)
	}, nil, true)

	readW := g.AddTE("readWeights", func(ctx core.Context, it core.Item) {
		w := ctx.Store().(*state.Vector)
		ctx.EmitReq(0, 0, WeightsMsg{W: w.Snapshot()})
	}, &core.Access{SE: weights, Mode: core.AccessGlobal}, false)

	avg := g.AddTE("average", func(ctx core.Context, it core.Item) {
		coll := it.Value.(core.Collection)
		var sum []float64
		for _, v := range coll {
			w := v.(WeightsMsg).W
			if sum == nil {
				sum = make([]float64, len(w))
			}
			for i := range w {
				sum[i] += w[i]
			}
		}
		for i := range sum {
			sum[i] /= float64(len(coll))
		}
		ctx.EmitReq(0, 0, WeightsMsg{W: sum})
		ctx.Reply(WeightsMsg{W: sum})
	}, nil, false)

	setW := g.AddTE("setWeights", func(ctx core.Context, it core.Item) {
		msg := it.Value.(WeightsMsg)
		w := ctx.Store().(*state.Vector)
		_ = w.Resize(len(msg.W))
		for i, x := range msg.W {
			w.Set(i, x)
		}
	}, &core.Access{SE: weights, Mode: core.AccessLocal}, false)

	g.Connect(feed, train, core.DispatchOneToAny)
	g.Connect(syncTE, readW, core.DispatchOneToAll)
	g.Connect(readW, avg, core.DispatchAllToOne)
	g.Connect(avg, setW, core.DispatchOneToAll)
	return g
}

// LR is a deployed logistic regression trainer.
type LR struct {
	rt  *runtime.Runtime
	dim int
}

// Config sizes the deployment.
type Config struct {
	Dim          int     // feature dimensionality
	LearningRate float64 // SGD step (default 0.1)
	Workers      int     // partial weight replicas / training instances
	Runtime      runtime.Options
}

// New deploys the LR SDG.
func New(cfg Config) (*LR, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("logreg: dimension must be positive")
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	opts := cfg.Runtime
	if opts.Partitions == nil {
		opts.Partitions = map[string]int{}
	}
	opts.Partitions["weights"] = cfg.Workers
	rt, err := runtime.Deploy(Graph(cfg.Dim, cfg.LearningRate), opts)
	if err != nil {
		return nil, fmt.Errorf("logreg: %w", err)
	}
	return &LR{rt: rt, dim: cfg.Dim}, nil
}

// Train ingests one batch of points (fire-and-forget).
func (l *LR) Train(points []workload.Point) error {
	msg := BatchMsg{X: make([][]float64, len(points)), Y: make([]float64, len(points))}
	for i, p := range points {
		msg.X[i] = p.X
		msg.Y[i] = p.Y
	}
	return l.rt.Inject("feed", 0, msg)
}

// Sync reconciles the partial weight replicas (global read, average,
// broadcast write-back) and returns the averaged model.
func (l *LR) Sync(timeout time.Duration) ([]float64, error) {
	v, err := l.rt.Call("sync", 0, SyncMsg{}, timeout)
	if err != nil {
		return nil, err
	}
	return v.(WeightsMsg).W, nil
}

// Accuracy scores the merged model on a labelled sample.
func (l *LR) Accuracy(points []workload.Point, timeout time.Duration) (float64, error) {
	w, err := l.Sync(timeout)
	if err != nil {
		return 0, err
	}
	correct := 0
	for _, p := range points {
		dot := 0.0
		for j := range w {
			dot += w[j] * p.X[j]
		}
		if (dot >= 0 && p.Y > 0) || (dot < 0 && p.Y < 0) {
			correct++
		}
	}
	return float64(correct) / float64(len(points)), nil
}

// Runtime exposes the underlying runtime for experiments.
func (l *LR) Runtime() *runtime.Runtime { return l.rt }

// Stop shuts the deployment down.
func (l *LR) Stop() { l.rt.Stop() }
