// Package sparksim is a structural baseline standing in for Spark and
// Streaming Spark (D-Streams) in the paper's comparisons (Figs. 8 and 9).
// It runs real application logic with Spark's structural properties:
//
//   - state is immutable: every micro-batch produces a new state version by
//     copying the previous one and applying the batch ("Dataflows in Spark,
//     represented as RDDs, are immutable ... requires a new RDD for each
//     state update");
//   - execution is scheduled: each micro-batch (and each task of an
//     iterative batch job) pays a launch overhead;
//   - the micro-batch interval is tied to the aggregation window, which is
//     why Streaming Spark's throughput collapses below a minimum window
//     (Fig. 8: "its smallest sustainable window size is 250 ms").
package sparksim

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/workload"
)

// State is an immutable wordcount state version.
type State struct {
	Counts map[string]uint64
}

// copyState clones the whole map — the RDD-update inefficiency the paper
// calls out for fine-grained updates.
func copyState(s State) State {
	out := State{Counts: make(map[string]uint64, len(s.Counts))}
	for k, v := range s.Counts {
		out.Counts[k] = v
	}
	return out
}

// StreamingConfig parameterises the D-Streams-style engine.
type StreamingConfig struct {
	// Interval is the micro-batch interval, tied to the window size.
	Interval time.Duration
	// TaskLaunch is the scheduling overhead per micro-batch (default 5ms:
	// D-Streams task scheduling is heavier than per-batch dispatch).
	TaskLaunch time.Duration
	// QueueLen bounds buffered input lines (default 65536).
	QueueLen int
}

// Streaming is a running D-Streams-style wordcount engine.
type Streaming struct {
	cfg     StreamingConfig
	queue   chan []string
	stopped chan struct{}
	stop    sync.Once
	wg      sync.WaitGroup

	state      State
	processed  atomic.Int64 // words processed
	batches    atomic.Int64
	maxLag     atomic.Int64 // worst batch lateness, ns
	lastWindow atomic.Int64
}

// NewStreaming starts the engine.
func NewStreaming(cfg StreamingConfig) *Streaming {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.TaskLaunch <= 0 {
		cfg.TaskLaunch = 5 * time.Millisecond
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 65536
	}
	s := &Streaming{
		cfg:     cfg,
		queue:   make(chan []string, cfg.QueueLen),
		stopped: make(chan struct{}),
		state:   State{Counts: map[string]uint64{}},
	}
	s.wg.Add(1)
	go s.run()
	return s
}

// Feed offers one line; it reports false (dropping the line) when the
// engine's buffer is full — the collapse regime.
func (s *Streaming) Feed(words []string) bool {
	select {
	case s.queue <- words:
		return true
	case <-s.stopped:
		return false
	default:
		return false
	}
}

func (s *Streaming) run() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopped:
			return
		case tick := <-ticker.C:
			// Drain the lines that arrived during the interval.
			var batch [][]string
		drain:
			for {
				select {
				case line := <-s.queue:
					batch = append(batch, line)
				default:
					break drain
				}
			}
			// Scheduled task launch, then a full immutable-state update.
			time.Sleep(s.cfg.TaskLaunch)
			next := copyState(s.state)
			words := 0
			for _, line := range batch {
				for _, w := range line {
					next.Counts[w]++
					words++
				}
			}
			s.state = next
			s.processed.Add(int64(words))
			s.batches.Add(1)
			// Lateness: how far behind the tick the batch finished.
			lag := time.Since(tick)
			if int64(lag) > s.maxLag.Load() {
				s.maxLag.Store(int64(lag))
			}
			// The window resets each interval (window == batch).
			s.state = State{Counts: map[string]uint64{}}
		}
	}
}

// Processed reports total words processed.
func (s *Streaming) Processed() int64 { return s.processed.Load() }

// Batches reports completed micro-batches.
func (s *Streaming) Batches() int64 { return s.batches.Load() }

// MaxLag reports the worst batch lateness; lateness beyond the interval
// means the window cannot be sustained.
func (s *Streaming) MaxLag() time.Duration { return time.Duration(s.maxLag.Load()) }

// Backlog reports buffered lines.
func (s *Streaming) Backlog() int { return len(s.queue) }

// Stop terminates the engine.
func (s *Streaming) Stop() {
	s.stop.Do(func() { close(s.stopped) })
	s.wg.Wait()
}

// BatchLRConfig parameterises the Spark-style iterative LR job (Fig. 9).
type BatchLRConfig struct {
	Dim          int
	LearningRate float64
	// Tasks is the data-parallel width (the paper's node count).
	Tasks int
	// TaskLaunch is the per-task re-instantiation overhead each iteration
	// pays (default 2ms) — the cost SDG pipelining avoids.
	TaskLaunch time.Duration
	// ComputePerPoint models the per-example processing cost of the
	// paper's full-size dataset as idle wait, so scalability experiments
	// are independent of the host core count. Zero disables the model.
	ComputePerPoint time.Duration
}

// BatchLR is a driver for Spark-style scheduled LR iterations.
type BatchLR struct {
	cfg     BatchLRConfig
	weights []float64
}

// NewBatchLR builds a job.
func NewBatchLR(cfg BatchLRConfig) *BatchLR {
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.1
	}
	if cfg.Tasks <= 0 {
		cfg.Tasks = 1
	}
	if cfg.TaskLaunch <= 0 {
		cfg.TaskLaunch = 2 * time.Millisecond
	}
	return &BatchLR{cfg: cfg, weights: make([]float64, cfg.Dim)}
}

// Iterate runs one scheduled iteration over the partitioned dataset: every
// task is (re-)launched with its overhead, computes its partition gradient
// against the broadcast weights, and the driver folds the results.
func (b *BatchLR) Iterate(partitions [][]workload.Point) {
	grads := make([][]float64, len(partitions))
	var wg sync.WaitGroup
	for t, part := range partitions {
		wg.Add(1)
		go func(t int, part []workload.Point) {
			defer wg.Done()
			// Task (re-)instantiation: paid every iteration in scheduled
			// dataflows, amortised to zero in materialised SDGs.
			time.Sleep(b.cfg.TaskLaunch)
			if b.cfg.ComputePerPoint > 0 {
				time.Sleep(time.Duration(len(part)) * b.cfg.ComputePerPoint)
			}
			grad := make([]float64, b.cfg.Dim)
			for _, p := range part {
				dot := 0.0
				for j := range b.weights {
					dot += b.weights[j] * p.X[j]
				}
				g := (workload.Sigmoid(p.Y*dot) - 1) * p.Y
				for j := range grad {
					grad[j] += g * p.X[j]
				}
			}
			grads[t] = grad
		}(t, part)
	}
	wg.Wait()
	var n int
	for _, part := range partitions {
		n += len(part)
	}
	if n == 0 {
		return
	}
	step := b.cfg.LearningRate / float64(n)
	for _, grad := range grads {
		for j := range b.weights {
			b.weights[j] -= step * grad[j]
		}
	}
}

// Weights returns the current model.
func (b *BatchLR) Weights() []float64 {
	out := make([]float64, len(b.weights))
	copy(out, b.weights)
	return out
}

// Accuracy scores the model.
func (b *BatchLR) Accuracy(points []workload.Point) float64 {
	correct := 0
	for _, p := range points {
		dot := 0.0
		for j := range b.weights {
			dot += b.weights[j] * p.X[j]
		}
		if (dot >= 0 && p.Y > 0) || (dot < 0 && p.Y < 0) {
			correct++
		}
	}
	return float64(correct) / float64(len(points))
}
