package sparksim

import (
	"testing"
	"time"

	"repro/internal/workload"
)

func TestStreamingCountsWords(t *testing.T) {
	s := NewStreaming(StreamingConfig{Interval: 20 * time.Millisecond, TaskLaunch: time.Millisecond})
	defer s.Stop()
	for i := 0; i < 100; i++ {
		if !s.Feed([]string{"a", "b"}) {
			t.Fatal("feed rejected with empty queue")
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Processed() < 200 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.Processed() != 200 {
		t.Fatalf("processed %d words", s.Processed())
	}
	if s.Batches() == 0 {
		t.Fatal("no batches ran")
	}
}

func TestStreamingCollapsesBelowMinWindow(t *testing.T) {
	// With a 5ms task launch, a 2ms window cannot be sustained: lag must
	// exceed the interval.
	s := NewStreaming(StreamingConfig{Interval: 2 * time.Millisecond, TaskLaunch: 5 * time.Millisecond})
	defer s.Stop()
	gen := workload.NewTextGen(1, 100)
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		s.Feed(gen.Line(10))
	}
	if s.MaxLag() < s.cfg.Interval {
		t.Fatalf("lag %v under a %v window; expected unsustainable", s.MaxLag(), s.cfg.Interval)
	}
}

func TestStreamingSustainsLargeWindow(t *testing.T) {
	s := NewStreaming(StreamingConfig{Interval: 100 * time.Millisecond, TaskLaunch: time.Millisecond})
	defer s.Stop()
	gen := workload.NewTextGen(1, 100)
	for i := 0; i < 50; i++ {
		s.Feed(gen.Line(10))
	}
	time.Sleep(250 * time.Millisecond)
	if s.MaxLag() > 50*time.Millisecond {
		t.Fatalf("lag %v under a 100ms window; expected sustainable", s.MaxLag())
	}
	if s.Backlog() > 0 {
		t.Fatalf("backlog %d; expected drained", s.Backlog())
	}
}

func TestBatchLRLearns(t *testing.T) {
	gen := workload.NewPointGen(5, 10, 0.01)
	points := gen.Batch(4000)
	// 4 partitions.
	parts := make([][]workload.Point, 4)
	for i, p := range points {
		parts[i%4] = append(parts[i%4], p)
	}
	job := NewBatchLR(BatchLRConfig{Dim: 10, Tasks: 4, TaskLaunch: 100 * time.Microsecond})
	for it := 0; it < 20; it++ {
		job.Iterate(parts)
	}
	if acc := job.Accuracy(gen.Batch(1000)); acc < 0.85 {
		t.Fatalf("accuracy = %f", acc)
	}
	if len(job.Weights()) != 10 {
		t.Fatal("weights dim")
	}
}

func TestBatchLREmptyPartitions(t *testing.T) {
	job := NewBatchLR(BatchLRConfig{Dim: 4})
	job.Iterate(nil) // must not panic or divide by zero
	job.Iterate([][]workload.Point{{}})
}

func TestCopyStateIsolation(t *testing.T) {
	a := State{Counts: map[string]uint64{"x": 1}}
	b := copyState(a)
	b.Counts["x"] = 99
	if a.Counts["x"] != 1 {
		t.Fatal("copyState aliases the map")
	}
}
