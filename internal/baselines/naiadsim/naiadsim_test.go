package naiadsim

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/state"
)

func kvEngine(ckptEvery time.Duration, disk *cluster.Disk, batch int) (*Engine, *state.KVMap) {
	kv := state.NewKVMap()
	e := New(Config{
		BatchSize:       batch,
		CheckpointEvery: ckptEvery,
		Disk:            disk,
		Apply: func(batch []Item) {
			for _, it := range batch {
				kv.Put(it.Key, it.Value.([]byte))
			}
		},
		Snapshot: func() []byte {
			chunks, err := kv.Checkpoint(1)
			if err != nil {
				return nil
			}
			return chunks[0].Data
		},
	})
	return e, kv
}

func TestBatchProcessing(t *testing.T) {
	e, kv := kvEngine(0, nil, 100)
	defer e.Stop()
	for k := uint64(0); k < 1000; k++ {
		if err := e.Submit(Item{Key: k, Value: []byte{byte(k)}}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.Processed() < 1000 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if e.Processed() != 1000 {
		t.Fatalf("processed %d", e.Processed())
	}
	if kv.NumEntries() != 1000 {
		t.Fatalf("state entries = %d", kv.NumEntries())
	}
	// ~1000/100 batches, plus partial ones from lingering.
	if b := e.Batches(); b < 10 || b > 200 {
		t.Fatalf("batches = %d", b)
	}
}

func TestSubmitSyncRecordsLatency(t *testing.T) {
	e, _ := kvEngine(0, nil, 10)
	defer e.Stop()
	if err := e.SubmitSync(Item{Key: 1, Value: []byte{1}}, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if e.Latency().Count() != 1 {
		t.Fatal("latency not recorded")
	}
}

func TestStopTheWorldCheckpointPausesProcessing(t *testing.T) {
	// With a slow disk, the synchronous checkpoint must starve processing:
	// items submitted during the pause wait for the full state write.
	disk := cluster.NewDisk(1<<20, 0) // 1 MB/s
	e, kv := kvEngine(30*time.Millisecond, disk, 100)
	defer e.Stop()
	// Build ~200 KB of state.
	for k := uint64(0); k < 800; k++ {
		if err := e.Submit(Item{Key: k, Value: make([]byte, 256)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.Processed() < 800 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if kv.NumEntries() != 800 {
		t.Fatalf("entries = %d", kv.NumEntries())
	}
	// Wait past the checkpoint interval, then measure a synchronous put.
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	if err := e.SubmitSync(Item{Key: 9999, Value: []byte{1}}, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// ~200 KB at 1 MB/s is ~200 ms of stop-the-world.
	if elapsed < 50*time.Millisecond {
		t.Fatalf("put during checkpoint window returned in %v; world did not stop", elapsed)
	}
	if e.CheckpointPauses().Count() == 0 {
		t.Fatal("no checkpoint pauses recorded")
	}
}

func TestNoDiskCheckpointCheaperThanDisk(t *testing.T) {
	run := func(disk *cluster.Disk) time.Duration {
		e, _ := kvEngine(10*time.Millisecond, disk, 100)
		defer e.Stop()
		for k := uint64(0); k < 2000; k++ {
			if err := e.Submit(Item{Key: k, Value: make([]byte, 256)}); err != nil {
				t.Fatal(err)
			}
		}
		deadline := time.Now().Add(10 * time.Second)
		for e.Processed() < 2000 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		time.Sleep(30 * time.Millisecond) // force at least one more checkpoint window
		start := time.Now()
		if err := e.SubmitSync(Item{Key: 1, Value: []byte{1}}, 10*time.Second); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	slowDisk := run(cluster.NewDisk(1<<20, 0))
	noDisk := run(nil)
	if noDisk >= slowDisk {
		t.Errorf("Naiad-NoDisk pause (%v) should beat Naiad-Disk (%v)", noDisk, slowDisk)
	}
}

func TestSubmitAfterStop(t *testing.T) {
	e, _ := kvEngine(0, nil, 10)
	e.Stop()
	if err := e.Submit(Item{}); err != ErrStopped {
		t.Fatalf("err = %v", err)
	}
	if err := e.SubmitSync(Item{}, time.Second); err != ErrStopped {
		t.Fatalf("sync err = %v", err)
	}
}

func TestBackpressureBlocksSubmitters(t *testing.T) {
	slow := New(Config{
		BatchSize:  1,
		QueueLen:   4,
		SchedDelay: 5 * time.Millisecond,
		Apply:      func([]Item) {},
		Snapshot:   func() []byte { return nil },
	})
	defer slow.Stop()
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = slow.Submit(Item{Key: uint64(i)})
		}(i)
	}
	wg.Wait()
	if time.Since(start) < 20*time.Millisecond {
		t.Error("submitters were not backpressured by the slow scheduler")
	}
}
