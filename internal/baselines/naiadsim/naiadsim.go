// Package naiadsim is a structural baseline standing in for Naiad v0.2 in
// the paper's comparisons (Figs. 6, 8 and 12). It executes real application
// logic but with Naiad's structural properties, which are what the
// comparisons measure:
//
//   - micro-batch scheduled execution: items are grouped into batches of a
//     configurable size and each batch pays a fixed scheduling overhead
//     ("Naiad permits the configuration of the batch size": 1,000 messages
//     for Naiad-LowLatency, 20,000 for Naiad-HighThroughput);
//   - synchronous global checkpointing: processing stops on the (single,
//     global) worker while the whole state serialises, to disk (Naiad-Disk)
//     or to memory (Naiad-NoDisk) — the "stop-the-world approach [that]
//     exhibits low throughput with large state sizes".
//
// The engine is deliberately not an SDG: there is no dirty state, no
// chunked m-to-n backup, and no pipelining.
package naiadsim

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
)

// Item is one unit of input.
type Item struct {
	Key   uint64
	Value any
	done  chan struct{} // non-nil for synchronous submissions
}

// Config parameterises the engine.
type Config struct {
	// BatchSize items are grouped per scheduled batch (default 1000).
	BatchSize int
	// SchedDelay is the scheduler overhead paid per batch (default 500µs).
	SchedDelay time.Duration
	// Linger bounds how long a partial batch waits before being scheduled
	// anyway (default 1ms).
	Linger time.Duration
	// Apply processes one batch against the engine's state.
	Apply func(batch []Item)
	// Snapshot serialises the whole state for a checkpoint.
	Snapshot func() []byte
	// CheckpointEvery enables synchronous global checkpoints (0 = off).
	CheckpointEvery time.Duration
	// Disk receives checkpoints; nil models Naiad-NoDisk (RAM disk): the
	// serialisation still stops the world but no bandwidth is charged.
	Disk *cluster.Disk
	// QueueLen bounds the inbound queue (default 8192).
	QueueLen int
}

// Engine is a running baseline instance.
type Engine struct {
	cfg Config

	queue   chan Item
	stopped chan struct{}
	stop    sync.Once
	wg      sync.WaitGroup

	processed  atomic.Int64
	batches    atomic.Int64
	ckptPauses *metrics.Histogram
	latency    *metrics.Histogram
}

// ErrStopped is returned when submitting to a stopped engine.
var ErrStopped = errors.New("naiadsim: engine stopped")

// New starts an engine.
func New(cfg Config) *Engine {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1000
	}
	if cfg.SchedDelay <= 0 {
		cfg.SchedDelay = 500 * time.Microsecond
	}
	if cfg.Linger <= 0 {
		cfg.Linger = time.Millisecond
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 8192
	}
	e := &Engine{
		cfg:        cfg,
		queue:      make(chan Item, cfg.QueueLen),
		stopped:    make(chan struct{}),
		ckptPauses: metrics.NewHistogram(0),
		latency:    metrics.NewHistogram(0),
	}
	e.wg.Add(1)
	go e.run()
	return e
}

// Submit enqueues an item, blocking under backpressure.
func (e *Engine) Submit(it Item) error {
	// Check shutdown first: the buffered queue may still have capacity
	// after Stop, and select would pick the send case at random.
	select {
	case <-e.stopped:
		return ErrStopped
	default:
	}
	select {
	case e.queue <- it:
		return nil
	case <-e.stopped:
		return ErrStopped
	}
}

// SubmitSync enqueues an item and waits until its batch has been processed,
// recording the request latency.
func (e *Engine) SubmitSync(it Item, timeout time.Duration) error {
	it.done = make(chan struct{})
	start := time.Now()
	if err := e.Submit(it); err != nil {
		return err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-it.done:
		e.latency.Record(time.Since(start))
		return nil
	case <-timer.C:
		return errors.New("naiadsim: submit timed out")
	case <-e.stopped:
		return ErrStopped
	}
}

// run is the single global worker: batch collection, stop-the-world
// checkpoints between batches, scheduled batch execution.
func (e *Engine) run() {
	defer e.wg.Done()
	var lastCkpt = time.Now()
	batch := make([]Item, 0, e.cfg.BatchSize)
	for {
		// Collect one batch.
		batch = batch[:0]
		select {
		case it := <-e.queue:
			batch = append(batch, it)
		case <-e.stopped:
			return
		}
		linger := time.NewTimer(e.cfg.Linger)
	fill:
		for len(batch) < e.cfg.BatchSize {
			select {
			case it := <-e.queue:
				batch = append(batch, it)
			case <-linger.C:
				break fill
			case <-e.stopped:
				linger.Stop()
				return
			}
		}
		linger.Stop()

		// Synchronous global checkpoint: the world stops right here.
		if e.cfg.CheckpointEvery > 0 && time.Since(lastCkpt) >= e.cfg.CheckpointEvery {
			pause := time.Now()
			data := e.cfg.Snapshot()
			if e.cfg.Disk != nil {
				e.cfg.Disk.Write("naiad/ckpt", data)
			}
			e.ckptPauses.Record(time.Since(pause))
			lastCkpt = time.Now()
		}

		// Scheduler overhead, then the batch runs.
		time.Sleep(e.cfg.SchedDelay)
		e.cfg.Apply(batch)
		e.processed.Add(int64(len(batch)))
		e.batches.Add(1)
		for _, it := range batch {
			if it.done != nil {
				close(it.done)
			}
		}
	}
}

// Processed reports total items processed.
func (e *Engine) Processed() int64 { return e.processed.Load() }

// Batches reports the number of scheduled batches.
func (e *Engine) Batches() int64 { return e.batches.Load() }

// CheckpointPauses exposes the stop-the-world pause distribution.
func (e *Engine) CheckpointPauses() *metrics.Histogram { return e.ckptPauses }

// Latency exposes the synchronous-submission latency distribution.
func (e *Engine) Latency() *metrics.Histogram { return e.latency }

// Backlog reports the queued item count (sustainability indicator).
func (e *Engine) Backlog() int { return len(e.queue) }

// Stop terminates the engine.
func (e *Engine) Stop() {
	e.stop.Do(func() { close(e.stopped) })
	e.wg.Wait()
}
