package core

import "sort"

// Assignment maps SDG vertices to node indices (0..Nodes-1).
type Assignment struct {
	SENode map[int]int // SE id -> node
	TENode map[int]int // TE id -> node
	Nodes  int
}

// Allocate maps TEs and SEs to nodes with the paper's four-step strategy
// (§3.3):
//
//	step 1: SEs accessed inside a dataflow cycle are colocated on one node,
//	        reducing communication in iterative algorithms;
//	step 2: remaining SEs go to separate nodes to maximise available memory;
//	step 3: TEs are colocated with the SEs they access;
//	step 4: remaining (stateless) TEs go to fresh nodes.
//
// The worked example in the paper (Fig. 1) allocates the CF graph to three
// nodes: userItem+its TEs, coOcc+its TEs, and the merge TE alone.
func (g *Graph) Allocate() Assignment {
	a := Assignment{
		SENode: make(map[int]int, len(g.SEs)),
		TENode: make(map[int]int, len(g.TEs)),
	}
	next := 0

	// Step 1: colocate SEs accessed within cycles.
	cyc := g.cyclicTEs()
	if len(cyc) > 0 {
		cycleSEs := map[int]bool{}
		for te := range cyc {
			if acc := g.TEs[te].Access; acc != nil {
				cycleSEs[acc.SE] = true
			}
		}
		if len(cycleSEs) > 0 {
			node := next
			next++
			ids := sortedKeys(cycleSEs)
			for _, se := range ids {
				a.SENode[se] = node
			}
		}
	}

	// Step 2: remaining SEs on separate nodes.
	for _, se := range g.SEs {
		if _, done := a.SENode[se.ID]; !done {
			a.SENode[se.ID] = next
			next++
		}
	}

	// Step 3: TEs colocated with the SE they access.
	for _, te := range g.TEs {
		if te.Access != nil {
			a.TENode[te.ID] = a.SENode[te.Access.SE]
		}
	}

	// Step 4: unallocated TEs on fresh nodes.
	for _, te := range g.TEs {
		if _, done := a.TENode[te.ID]; !done {
			a.TENode[te.ID] = next
			next++
		}
	}

	a.Nodes = next
	return a
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// TEsOnNode returns the TE ids assigned to node, in id order.
func (a Assignment) TEsOnNode(node int) []int {
	var out []int
	for te, n := range a.TENode {
		if n == node {
			out = append(out, te)
		}
	}
	sort.Ints(out)
	return out
}

// SEsOnNode returns the SE ids assigned to node, in id order.
func (a Assignment) SEsOnNode(node int) []int {
	var out []int
	for se, n := range a.SENode {
		if n == node {
			out = append(out, se)
		}
	}
	sort.Ints(out)
	return out
}
