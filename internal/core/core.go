// Package core defines the stateful dataflow graph (SDG) model of the paper
// (§3): task elements (TEs) transform dataflows, state elements (SEs) hold
// explicit mutable state, access edges connect each TE to at most one SE,
// and dataflow edges carry items between TEs with one of four dispatching
// semantics. The package also implements graph validation (§3.2's
// compatibility rules) and the four-step allocation of TEs and SEs to nodes
// (§3.3).
package core

import (
	"fmt"

	"repro/internal/state"
)

// StateKind distinguishes the two forms of distributed state (§3.2, Fig. 2).
type StateKind int

const (
	// KindPartitioned state splits its data structure into disjoint
	// partitions by access key (Fig. 2b).
	KindPartitioned StateKind = iota
	// KindPartial state duplicates its data structure; instances are
	// updated independently and reconciled by merge TEs (Fig. 2c).
	KindPartial
)

// String names the state kind.
func (k StateKind) String() string {
	switch k {
	case KindPartitioned:
		return "partitioned"
	case KindPartial:
		return "partial"
	default:
		return fmt.Sprintf("StateKind(%d)", int(k))
	}
}

// AccessMode describes how a TE accesses its SE (§4.1 annotations).
type AccessMode int

const (
	// AccessByKey is partitioned access: the dispatch key selects the SE
	// partition, which is local to the TE instance (@Partitioned).
	AccessByKey AccessMode = iota
	// AccessLocal touches only the co-located partial SE instance
	// (@Partial without @Global).
	AccessLocal
	// AccessGlobal applies to all partial SE instances; the runtime fans
	// the computation out to every instance (@Global).
	AccessGlobal
)

// String names the access mode.
func (m AccessMode) String() string {
	switch m {
	case AccessByKey:
		return "by-key"
	case AccessLocal:
		return "local"
	case AccessGlobal:
		return "global"
	default:
		return fmt.Sprintf("AccessMode(%d)", int(m))
	}
}

// Dispatch is the dataflow-edge dispatching semantics chosen by the
// translation rules of §4.2.
type Dispatch int

const (
	// DispatchPartitioned hashes the item key to one downstream instance.
	DispatchPartitioned Dispatch = iota
	// DispatchOneToAny load-balances items across downstream instances.
	DispatchOneToAny
	// DispatchOneToAll broadcasts each item to every downstream instance
	// (global access to partial state).
	DispatchOneToAll
	// DispatchAllToOne gathers one item per upstream instance into a
	// collection before invoking the downstream TE (@Collection, merge).
	DispatchAllToOne
)

// String names the dispatch semantics.
func (d Dispatch) String() string {
	switch d {
	case DispatchPartitioned:
		return "partitioned"
	case DispatchOneToAny:
		return "one-to-any"
	case DispatchOneToAll:
		return "one-to-all"
	case DispatchAllToOne:
		return "all-to-one"
	default:
		return fmt.Sprintf("Dispatch(%d)", int(d))
	}
}

// Item is one data element in a dataflow. Items carry scalar timestamps
// (Origin, Seq) for duplicate detection during log-based recovery (§5), the
// dispatch key, and a request correlation id used by all-to-one barriers.
type Item struct {
	Origin uint64 // origin TE instance identity
	Seq    uint64 // per-origin sequence number
	Key    uint64 // dispatch key for partitioned edges
	ReqID  uint64 // correlation id for gather barriers
	Parts  int    // expected collection size for all-to-one gathers
	Value  any    // payload
}

// Collection is the payload delivered to a merge TE after an all-to-one
// gather: one entry per upstream partial result (§4.1 @Collection).
type Collection []any

// Context is the execution environment handed to a TaskFunc. The runtime
// provides the local SE instance, the emit path and instance identity.
type Context interface {
	// Store returns the local SE instance, or nil for stateless TEs.
	Store() state.Store
	// Emit sends value downstream on the TE's out-edge with the given
	// index (edges are ordered as declared in the graph), tagged with a
	// dispatch key.
	Emit(edge int, key uint64, value any)
	// EmitReq is Emit for request/reply flows: it preserves the request
	// correlation id of the item being processed.
	EmitReq(edge int, key uint64, value any)
	// Reply delivers a value to the external caller that injected the
	// request (used by sink TEs such as merge). Request/reply contract: a
	// request path contains at most one all-to-one gather stage, and Reply
	// fires at (or downstream of) that merge — the runtime treats a
	// request-correlated partial with no waiting caller as belonging to a
	// completed or abandoned request and will not open a new gather wave
	// for it, so replying upstream of a gather on the same request would
	// lose late waves.
	Reply(value any)
	// Instance reports this TE instance's index and the current number of
	// instances of the TE.
	Instance() (idx, total int)
}

// TaskFunc is the computation of a task element, invoked once per input
// item. TEs are pipelined: the function must return promptly and emit any
// outputs via the context.
type TaskFunc func(ctx Context, it Item)

// TE is a task element vertex.
type TE struct {
	ID     int
	Name   string
	Fn     TaskFunc
	Access *Access // at most one SE (access edges form a partial function)
	Entry  bool    // entry points receive externally injected items
}

// Access is the access edge from a TE to its SE.
type Access struct {
	SE   int
	Mode AccessMode
}

// SE is a state element vertex.
type SE struct {
	ID   int
	Name string
	Kind StateKind
	Type state.StoreType
	// Build constructs the backing store; when nil, state.New(Type) is
	// used. Custom builders pre-size dense structures.
	Build func() state.Store
}

// NewStore instantiates the SE's backing store.
func (s *SE) NewStore() (state.Store, error) {
	if s.Build != nil {
		return s.Build(), nil
	}
	return state.New(s.Type)
}

// Edge is a dataflow edge between two TEs.
type Edge struct {
	From, To int
	Dispatch Dispatch
}

// Graph is a complete SDG.
type Graph struct {
	Name  string
	TEs   []*TE
	SEs   []*SE
	Edges []*Edge
}

// NewGraph returns an empty named graph.
func NewGraph(name string) *Graph {
	return &Graph{Name: name}
}

// AddSE appends a state element and returns its id.
func (g *Graph) AddSE(name string, kind StateKind, typ state.StoreType, build func() state.Store) int {
	id := len(g.SEs)
	g.SEs = append(g.SEs, &SE{ID: id, Name: name, Kind: kind, Type: typ, Build: build})
	return id
}

// AddTE appends a task element and returns its id. access may be nil for
// stateless TEs.
func (g *Graph) AddTE(name string, fn TaskFunc, access *Access, entry bool) int {
	id := len(g.TEs)
	g.TEs = append(g.TEs, &TE{ID: id, Name: name, Fn: fn, Access: access, Entry: entry})
	return id
}

// Connect appends a dataflow edge from one TE to another and returns the
// out-edge index local to the source TE (the index used with Context.Emit).
func (g *Graph) Connect(from, to int, d Dispatch) int {
	g.Edges = append(g.Edges, &Edge{From: from, To: to, Dispatch: d})
	idx := 0
	for _, e := range g.Edges[:len(g.Edges)-1] {
		if e.From == from {
			idx++
		}
	}
	return idx
}

// OutEdges returns the dataflow edges leaving TE id, in declaration order
// (matching Context.Emit indices).
func (g *Graph) OutEdges(te int) []*Edge {
	var out []*Edge
	for _, e := range g.Edges {
		if e.From == te {
			out = append(out, e)
		}
	}
	return out
}

// InEdges returns the dataflow edges entering TE id.
func (g *Graph) InEdges(te int) []*Edge {
	var in []*Edge
	for _, e := range g.Edges {
		if e.To == te {
			in = append(in, e)
		}
	}
	return in
}

// TEsAccessing returns the ids of TEs with an access edge to SE id.
func (g *Graph) TEsAccessing(se int) []int {
	var out []int
	for _, t := range g.TEs {
		if t.Access != nil && t.Access.SE == se {
			out = append(out, t.ID)
		}
	}
	return out
}
