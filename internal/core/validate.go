package core

import (
	"errors"
	"fmt"
)

// ErrInvalidGraph wraps all validation failures.
var ErrInvalidGraph = errors.New("core: invalid SDG")

func invalid(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalidGraph, fmt.Sprintf(format, args...))
}

// Validate checks the structural rules of the SDG model:
//
//  1. access edges form a partial function: each TE accesses at most one SE
//     (guaranteed by construction, but edge/SE ids must be in range);
//  2. partitioned SEs are accessed by key only, and every dataflow edge into
//     a TE with partitioned access uses partitioned dispatch, so TE
//     instances always reach their local partition (§3.2: "the dataflow
//     partitioning strategy must be compatible with the data access
//     pattern");
//  3. partial SEs are accessed locally or globally, never by key;
//  4. global access to a partial SE requires one-to-all inbound dispatch so
//     all instances participate (§4.2 rule 3);
//  5. all-to-one edges terminate in a stateless or local-access merge TE;
//  6. entry TEs exist, and every non-entry TE is reachable from some entry.
func (g *Graph) Validate() error {
	if len(g.TEs) == 0 {
		return invalid("graph %q has no task elements", g.Name)
	}
	for _, e := range g.Edges {
		if e.From < 0 || e.From >= len(g.TEs) || e.To < 0 || e.To >= len(g.TEs) {
			return invalid("edge %d->%d out of range", e.From, e.To)
		}
	}
	hasEntry := false
	for _, t := range g.TEs {
		if t.Entry {
			hasEntry = true
		}
		if t.Fn == nil {
			return invalid("TE %q has no task function", t.Name)
		}
		if t.Access == nil {
			continue
		}
		if t.Access.SE < 0 || t.Access.SE >= len(g.SEs) {
			return invalid("TE %q accesses unknown SE %d", t.Name, t.Access.SE)
		}
		se := g.SEs[t.Access.SE]
		switch se.Kind {
		case KindPartitioned:
			if t.Access.Mode != AccessByKey {
				return invalid("TE %q: partitioned SE %q requires by-key access, got %v",
					t.Name, se.Name, t.Access.Mode)
			}
			for _, in := range g.InEdges(t.ID) {
				if in.Dispatch != DispatchPartitioned {
					return invalid("TE %q: inbound edge from %q must use partitioned dispatch to reach SE %q partitions locally, got %v",
						t.Name, g.TEs[in.From].Name, se.Name, in.Dispatch)
				}
			}
		case KindPartial:
			switch t.Access.Mode {
			case AccessLocal:
				// One-to-any or all-to-one inbound edges are both fine.
			case AccessGlobal:
				for _, in := range g.InEdges(t.ID) {
					if in.Dispatch != DispatchOneToAll {
						return invalid("TE %q: global access to partial SE %q requires one-to-all inbound dispatch, got %v",
							t.Name, se.Name, in.Dispatch)
					}
				}
			default:
				return invalid("TE %q: partial SE %q cannot use %v access",
					t.Name, se.Name, t.Access.Mode)
			}
		}
	}
	if !hasEntry {
		return invalid("graph %q has no entry TE", g.Name)
	}
	for _, e := range g.Edges {
		if e.Dispatch == DispatchAllToOne {
			to := g.TEs[e.To]
			if to.Access != nil && to.Access.Mode == AccessGlobal {
				return invalid("merge TE %q cannot itself use global access", to.Name)
			}
		}
	}
	// Reachability from entries over dataflow edges.
	reach := make([]bool, len(g.TEs))
	var stack []int
	for _, t := range g.TEs {
		if t.Entry {
			reach[t.ID] = true
			stack = append(stack, t.ID)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.OutEdges(id) {
			if !reach[e.To] {
				reach[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	for _, t := range g.TEs {
		if !reach[t.ID] {
			return invalid("TE %q is unreachable from any entry", t.Name)
		}
	}
	return nil
}

// HasCycle reports whether the dataflow contains a cycle (iterative SDG).
func (g *Graph) HasCycle() bool {
	return len(g.cyclicTEs()) > 0
}

// cyclicTEs returns the set of TE ids that participate in any dataflow
// cycle, found via Tarjan-style SCC detection (iterative colouring).
func (g *Graph) cyclicTEs() map[int]bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := make([]int, len(g.TEs))
	onPath := make([]int, 0, len(g.TEs))
	inCycle := make(map[int]bool)

	var visit func(int)
	visit = func(u int) {
		colour[u] = grey
		onPath = append(onPath, u)
		for _, e := range g.OutEdges(u) {
			v := e.To
			switch colour[v] {
			case white:
				visit(v)
			case grey:
				// Back edge: everything from v to u on the path is cyclic.
				for i := len(onPath) - 1; i >= 0; i-- {
					inCycle[onPath[i]] = true
					if onPath[i] == v {
						break
					}
				}
			}
		}
		onPath = onPath[:len(onPath)-1]
		colour[u] = black
	}
	for _, t := range g.TEs {
		if colour[t.ID] == white {
			visit(t.ID)
		}
	}
	return inCycle
}
