package core

import (
	"fmt"
	"strings"
)

// Dot renders the SDG in Graphviz dot syntax: TEs as boxes, SEs as
// cylinders, dataflow edges solid (labelled with dispatch semantics) and
// access edges dashed (labelled with access mode). Useful for inspecting
// translator output (cmd/sdgc -dot).
func (g *Graph) Dot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	b.WriteString("  rankdir=LR;\n")
	for _, t := range g.TEs {
		shape := "box"
		if t.Entry {
			shape = "box,peripheries=2"
		}
		fmt.Fprintf(&b, "  te%d [label=%q shape=%s];\n", t.ID, t.Name, shape)
	}
	for _, s := range g.SEs {
		fmt.Fprintf(&b, "  se%d [label=\"%s\\n(%s %s)\" shape=cylinder];\n",
			s.ID, s.Name, s.Kind, s.Type)
	}
	for _, e := range g.Edges {
		fmt.Fprintf(&b, "  te%d -> te%d [label=%q];\n", e.From, e.To, e.Dispatch.String())
	}
	for _, t := range g.TEs {
		if t.Access != nil {
			fmt.Fprintf(&b, "  te%d -> se%d [style=dashed label=%q];\n",
				t.ID, t.Access.SE, t.Access.Mode.String())
		}
	}
	b.WriteString("}\n")
	return b.String()
}
