package core

import (
	"strings"
	"testing"

	"repro/internal/state"
)

func noop(ctx Context, it Item) {}

// cfGraph builds the collaborative-filtering SDG of Fig. 1: five TEs on two
// SEs (partitioned userItem, partial coOcc) plus the merge TE.
func cfGraph() (*Graph, map[string]int) {
	g := NewGraph("cf")
	ids := map[string]int{}
	ids["userItem"] = g.AddSE("userItem", KindPartitioned, state.TypeMatrix, nil)
	ids["coOcc"] = g.AddSE("coOcc", KindPartial, state.TypeMatrix, nil)

	ids["updateUserItem"] = g.AddTE("updateUserItem", noop, &Access{SE: ids["userItem"], Mode: AccessByKey}, true)
	ids["updateCoOcc"] = g.AddTE("updateCoOcc", noop, &Access{SE: ids["coOcc"], Mode: AccessLocal}, false)
	ids["getUserVec"] = g.AddTE("getUserVec", noop, &Access{SE: ids["userItem"], Mode: AccessByKey}, true)
	ids["getRecVec"] = g.AddTE("getRecVec", noop, &Access{SE: ids["coOcc"], Mode: AccessGlobal}, false)
	ids["merge"] = g.AddTE("merge", noop, nil, false)

	g.Connect(ids["updateUserItem"], ids["updateCoOcc"], DispatchOneToAny)
	g.Connect(ids["getUserVec"], ids["getRecVec"], DispatchOneToAll)
	g.Connect(ids["getRecVec"], ids["merge"], DispatchAllToOne)
	return g, ids
}

func TestCFGraphValidates(t *testing.T) {
	g, _ := cfGraph()
	if err := g.Validate(); err != nil {
		t.Fatalf("CF graph should validate: %v", err)
	}
	if g.HasCycle() {
		t.Fatal("CF graph has no cycles")
	}
}

func TestCFAllocationMatchesPaper(t *testing.T) {
	g, ids := cfGraph()
	a := g.Allocate()
	// Paper Fig. 1: three nodes. userItem + its TEs on n1, coOcc + its TEs
	// on n2, merge alone on n3.
	if a.Nodes != 3 {
		t.Fatalf("allocated %d nodes, want 3", a.Nodes)
	}
	n1 := a.SENode[ids["userItem"]]
	n2 := a.SENode[ids["coOcc"]]
	if n1 == n2 {
		t.Fatal("userItem and coOcc should be on separate nodes (step 2)")
	}
	if a.TENode[ids["updateUserItem"]] != n1 || a.TENode[ids["getUserVec"]] != n1 {
		t.Error("userItem TEs not colocated with userItem (step 3)")
	}
	if a.TENode[ids["updateCoOcc"]] != n2 || a.TENode[ids["getRecVec"]] != n2 {
		t.Error("coOcc TEs not colocated with coOcc (step 3)")
	}
	mergeNode := a.TENode[ids["merge"]]
	if mergeNode == n1 || mergeNode == n2 {
		t.Error("merge TE should get its own node (step 4)")
	}
	if got := len(a.TEsOnNode(n1)); got != 2 {
		t.Errorf("node n1 has %d TEs, want 2", got)
	}
	if got := len(a.SEsOnNode(mergeNode)); got != 0 {
		t.Errorf("merge node has %d SEs, want 0", got)
	}
}

func TestCycleDetectionAndColocation(t *testing.T) {
	g := NewGraph("iter")
	s1 := g.AddSE("model", KindPartitioned, state.TypeVector, nil)
	s2 := g.AddSE("stats", KindPartitioned, state.TypeKVMap, nil)
	t1 := g.AddTE("ingest", noop, &Access{SE: s1, Mode: AccessByKey}, true)
	t2 := g.AddTE("refine", noop, &Access{SE: s2, Mode: AccessByKey}, false)
	g.Connect(t1, t2, DispatchPartitioned)
	g.Connect(t2, t1, DispatchPartitioned) // loop back: iteration
	if err := g.Validate(); err != nil {
		t.Fatalf("iterative graph should validate: %v", err)
	}
	if !g.HasCycle() {
		t.Fatal("cycle not detected")
	}
	a := g.Allocate()
	if a.SENode[s1] != a.SENode[s2] {
		t.Error("step 1: SEs in a cycle must be colocated")
	}
	if a.TENode[t1] != a.SENode[s1] || a.TENode[t2] != a.SENode[s2] {
		t.Error("step 3: TEs must be colocated with their SEs")
	}
	if a.Nodes != 1 {
		t.Errorf("expected 1 node, got %d", a.Nodes)
	}
}

func TestValidateRejectsEmptyGraph(t *testing.T) {
	g := NewGraph("empty")
	if err := g.Validate(); err == nil {
		t.Fatal("empty graph must not validate")
	}
}

func TestValidateRejectsNoEntry(t *testing.T) {
	g := NewGraph("noentry")
	g.AddTE("a", noop, nil, false)
	if err := g.Validate(); err == nil {
		t.Fatal("graph without entry must not validate")
	}
}

func TestValidateRejectsNilFn(t *testing.T) {
	g := NewGraph("nilfn")
	g.AddTE("a", nil, nil, true)
	if err := g.Validate(); err == nil {
		t.Fatal("TE without function must not validate")
	}
}

func TestValidateRejectsBadAccessModeOnPartitioned(t *testing.T) {
	g := NewGraph("bad")
	se := g.AddSE("m", KindPartitioned, state.TypeMatrix, nil)
	g.AddTE("a", noop, &Access{SE: se, Mode: AccessGlobal}, true)
	if err := g.Validate(); err == nil {
		t.Fatal("global access to partitioned SE must not validate")
	}
}

func TestValidateRejectsByKeyOnPartial(t *testing.T) {
	g := NewGraph("bad")
	se := g.AddSE("m", KindPartial, state.TypeMatrix, nil)
	g.AddTE("a", noop, &Access{SE: se, Mode: AccessByKey}, true)
	if err := g.Validate(); err == nil {
		t.Fatal("by-key access to partial SE must not validate")
	}
}

func TestValidateRejectsIncompatibleDispatch(t *testing.T) {
	// Inbound one-to-any into a TE with partitioned state: instances could
	// receive keys whose partition lives elsewhere.
	g := NewGraph("bad")
	se := g.AddSE("m", KindPartitioned, state.TypeMatrix, nil)
	a := g.AddTE("src", noop, nil, true)
	b := g.AddTE("dst", noop, &Access{SE: se, Mode: AccessByKey}, false)
	g.Connect(a, b, DispatchOneToAny)
	if err := g.Validate(); err == nil {
		t.Fatal("one-to-any into partitioned access must not validate")
	}
}

func TestValidateRejectsGlobalWithoutOneToAll(t *testing.T) {
	g := NewGraph("bad")
	se := g.AddSE("m", KindPartial, state.TypeMatrix, nil)
	a := g.AddTE("src", noop, nil, true)
	b := g.AddTE("dst", noop, &Access{SE: se, Mode: AccessGlobal}, false)
	g.Connect(a, b, DispatchOneToAny)
	if err := g.Validate(); err == nil {
		t.Fatal("global access without one-to-all inbound must not validate")
	}
}

func TestValidateRejectsUnreachableTE(t *testing.T) {
	g := NewGraph("bad")
	g.AddTE("entry", noop, nil, true)
	g.AddTE("island", noop, nil, false)
	if err := g.Validate(); err == nil {
		t.Fatal("unreachable TE must not validate")
	}
}

func TestValidateRejectsUnknownSE(t *testing.T) {
	g := NewGraph("bad")
	g.AddTE("a", noop, &Access{SE: 7, Mode: AccessLocal}, true)
	if err := g.Validate(); err == nil {
		t.Fatal("access to unknown SE must not validate")
	}
}

func TestValidateRejectsEdgeOutOfRange(t *testing.T) {
	g := NewGraph("bad")
	g.AddTE("a", noop, nil, true)
	g.Edges = append(g.Edges, &Edge{From: 0, To: 5})
	if err := g.Validate(); err == nil {
		t.Fatal("dangling edge must not validate")
	}
}

func TestConnectReturnsOutEdgeIndex(t *testing.T) {
	g := NewGraph("idx")
	a := g.AddTE("a", noop, nil, true)
	b := g.AddTE("b", noop, nil, false)
	c := g.AddTE("c", noop, nil, false)
	if idx := g.Connect(a, b, DispatchOneToAny); idx != 0 {
		t.Errorf("first out-edge index = %d", idx)
	}
	if idx := g.Connect(a, c, DispatchOneToAny); idx != 1 {
		t.Errorf("second out-edge index = %d", idx)
	}
	if idx := g.Connect(b, c, DispatchOneToAny); idx != 0 {
		t.Errorf("other TE's first out-edge index = %d", idx)
	}
	if n := len(g.OutEdges(a)); n != 2 {
		t.Errorf("OutEdges(a) = %d", n)
	}
	if n := len(g.InEdges(c)); n != 2 {
		t.Errorf("InEdges(c) = %d", n)
	}
}

func TestTEsAccessing(t *testing.T) {
	g, ids := cfGraph()
	tes := g.TEsAccessing(ids["coOcc"])
	if len(tes) != 2 {
		t.Fatalf("TEsAccessing(coOcc) = %v", tes)
	}
}

func TestDotExport(t *testing.T) {
	g, _ := cfGraph()
	dot := g.Dot()
	for _, want := range []string{"digraph", "userItem", "coOcc", "one-to-all", "all-to-one", "cylinder", "dashed"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q", want)
		}
	}
}

func TestStringers(t *testing.T) {
	if KindPartitioned.String() != "partitioned" || KindPartial.String() != "partial" {
		t.Error("StateKind strings")
	}
	if AccessByKey.String() != "by-key" || AccessGlobal.String() != "global" || AccessLocal.String() != "local" {
		t.Error("AccessMode strings")
	}
	for d, want := range map[Dispatch]string{
		DispatchPartitioned: "partitioned",
		DispatchOneToAny:    "one-to-any",
		DispatchOneToAll:    "one-to-all",
		DispatchAllToOne:    "all-to-one",
	} {
		if d.String() != want {
			t.Errorf("%v != %s", d, want)
		}
	}
	if StateKind(99).String() == "" || AccessMode(99).String() == "" || Dispatch(99).String() == "" {
		t.Error("unknown values should still render")
	}
}

func TestSENewStore(t *testing.T) {
	g := NewGraph("s")
	id := g.AddSE("v", KindPartitioned, state.TypeVector, func() state.Store { return state.NewVector(7) })
	st, err := g.SEs[id].NewStore()
	if err != nil {
		t.Fatal(err)
	}
	if st.(*state.Vector).Len() != 7 {
		t.Error("custom builder not used")
	}
	id2 := g.AddSE("k", KindPartitioned, state.TypeKVMap, nil)
	st2, err := g.SEs[id2].NewStore()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Type() != state.TypeKVMap {
		t.Error("default builder wrong type")
	}
}
