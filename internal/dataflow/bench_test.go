package dataflow

import (
	"testing"

	"repro/internal/core"
)

func BenchmarkRouterPartitioned(b *testing.B) {
	r := &Router{Dispatch: core.DispatchPartitioned}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Route(core.Item{Key: uint64(i)}, 8)
	}
}

func BenchmarkRouterOneToAny(b *testing.B) {
	r := &Router{Dispatch: core.DispatchOneToAny}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Route(core.Item{}, 8)
	}
}

func BenchmarkDedupFresh(b *testing.B) {
	d := NewDedup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Fresh(core.Item{Origin: uint64(i % 16), Seq: uint64(i)})
	}
}

func BenchmarkOutputBufferAppendTrim(b *testing.B) {
	var buf OutputBuffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Append(core.Item{Origin: 1, Seq: uint64(i)})
		if i%1024 == 1023 {
			buf.Trim(map[uint64]uint64{1: uint64(i - 512)})
		}
	}
}

func BenchmarkGather(b *testing.B) {
	g := NewGather()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := uint64(i / 4)
		g.Add(core.Item{ReqID: req, Origin: uint64(i % 4), Parts: 4, Value: i})
	}
}
