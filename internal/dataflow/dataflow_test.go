package dataflow

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/state"
)

func TestOutputBufferAppendReplay(t *testing.T) {
	var b OutputBuffer
	for i := uint64(1); i <= 5; i++ {
		b.Append(core.Item{Origin: 1, Seq: i, Value: []byte{byte(i)}})
	}
	if b.Len() != 5 {
		t.Fatalf("len = %d", b.Len())
	}
	if b.SizeBytes() <= 0 {
		t.Fatal("size should be positive")
	}
	got := b.Replay()
	if len(got) != 5 || got[0].Seq != 1 || got[4].Seq != 5 {
		t.Fatalf("replay = %+v", got)
	}
	// Replay is a copy.
	got[0].Seq = 99
	if b.Replay()[0].Seq != 1 {
		t.Fatal("replay aliases buffer")
	}
}

func TestOutputBufferTrim(t *testing.T) {
	var b OutputBuffer
	for i := uint64(1); i <= 10; i++ {
		b.Append(core.Item{Origin: 7, Seq: i})
	}
	b.Trim(map[uint64]uint64{7: 6})
	if b.Len() != 4 {
		t.Fatalf("len after trim = %d, want 4", b.Len())
	}
	for _, it := range b.Replay() {
		if it.Seq <= 6 {
			t.Fatalf("item seq %d survived trim", it.Seq)
		}
	}
	// Trimming with an unrelated origin keeps everything.
	b.Trim(map[uint64]uint64{99: 100})
	if b.Len() != 4 {
		t.Fatal("unrelated trim removed items")
	}
	// Nil watermarks trim nothing.
	b.Trim(nil)
	if b.Len() != 4 {
		t.Fatal("nil trim removed items")
	}
}

func TestDedupFiltersDuplicates(t *testing.T) {
	d := NewDedup()
	if !d.Fresh(core.Item{Origin: 1, Seq: 1}) {
		t.Fatal("first item should be fresh")
	}
	if !d.Fresh(core.Item{Origin: 1, Seq: 2}) {
		t.Fatal("advancing seq should be fresh")
	}
	if d.Fresh(core.Item{Origin: 1, Seq: 2}) {
		t.Fatal("duplicate should be filtered")
	}
	if d.Fresh(core.Item{Origin: 1, Seq: 1}) {
		t.Fatal("stale item should be filtered")
	}
	if !d.Fresh(core.Item{Origin: 2, Seq: 1}) {
		t.Fatal("different origin should be independent")
	}
}

func TestDedupWatermarksRoundTrip(t *testing.T) {
	d := NewDedup()
	d.Fresh(core.Item{Origin: 1, Seq: 5})
	d.Fresh(core.Item{Origin: 2, Seq: 9})
	w := d.Watermarks()
	if w[1] != 5 || w[2] != 9 {
		t.Fatalf("watermarks = %v", w)
	}
	d2 := NewDedup()
	d2.Restore(w)
	if d2.Fresh(core.Item{Origin: 1, Seq: 5}) {
		t.Fatal("restored filter should reject covered seq")
	}
	if !d2.Fresh(core.Item{Origin: 1, Seq: 6}) {
		t.Fatal("restored filter should accept fresh seq")
	}
	// Mutating the snapshot does not affect the filter.
	w[1] = 100
	if !d.Fresh(core.Item{Origin: 1, Seq: 6}) {
		t.Fatal("watermarks snapshot aliases filter state")
	}
}

func TestGatherCollects(t *testing.T) {
	g := NewGather()
	if _, done := g.Add(core.Item{ReqID: 1, Origin: 10, Parts: 3, Value: "a"}); done {
		t.Fatal("incomplete gather released early")
	}
	if _, done := g.Add(core.Item{ReqID: 1, Origin: 11, Parts: 3, Value: "b"}); done {
		t.Fatal("incomplete gather released early")
	}
	if g.Pending() != 1 {
		t.Fatalf("pending = %d", g.Pending())
	}
	coll, done := g.Add(core.Item{ReqID: 1, Origin: 12, Parts: 3, Value: "c"})
	if !done || len(coll) != 3 {
		t.Fatalf("done=%v coll=%v", done, coll)
	}
	seen := map[string]bool{}
	for _, v := range coll {
		seen[v.(string)] = true
	}
	if !seen["a"] || !seen["b"] || !seen["c"] {
		t.Fatalf("collection contents = %v", coll)
	}
	if g.Pending() != 0 {
		t.Fatal("slot not released")
	}
}

func TestGatherDuplicateOriginOverwrites(t *testing.T) {
	g := NewGather()
	g.Add(core.Item{ReqID: 5, Origin: 1, Parts: 2, Value: "old"})
	// Replay duplicate from same origin must not complete the barrier.
	if _, done := g.Add(core.Item{ReqID: 5, Origin: 1, Parts: 2, Value: "new"}); done {
		t.Fatal("duplicate origin completed barrier")
	}
	coll, done := g.Add(core.Item{ReqID: 5, Origin: 2, Parts: 2, Value: "other"})
	if !done || len(coll) != 2 {
		t.Fatalf("done=%v coll=%v", done, coll)
	}
}

func TestGatherInterleavedRequests(t *testing.T) {
	g := NewGather()
	g.Add(core.Item{ReqID: 1, Origin: 1, Parts: 2, Value: 1})
	g.Add(core.Item{ReqID: 2, Origin: 1, Parts: 2, Value: 10})
	c1, done1 := g.Add(core.Item{ReqID: 1, Origin: 2, Parts: 2, Value: 2})
	c2, done2 := g.Add(core.Item{ReqID: 2, Origin: 2, Parts: 2, Value: 20})
	if !done1 || !done2 || len(c1) != 2 || len(c2) != 2 {
		t.Fatal("interleaved gathers broken")
	}
}

func TestRouterPartitioned(t *testing.T) {
	r := &Router{Dispatch: core.DispatchPartitioned}
	for key := uint64(0); key < 100; key++ {
		dst := r.Route(core.Item{Key: key}, 4)
		if len(dst) != 1 {
			t.Fatalf("partitioned route fanout = %d", len(dst))
		}
		if dst[0] != state.PartitionKey(key, 4) {
			t.Fatal("router disagrees with state partitioning")
		}
	}
}

func TestRouterOneToAny(t *testing.T) {
	r := &Router{Dispatch: core.DispatchOneToAny}
	counts := make([]int, 3)
	for i := 0; i < 300; i++ {
		dst := r.Route(core.Item{}, 3)
		counts[dst[0]]++
	}
	for i, c := range counts {
		if c != 100 {
			t.Fatalf("round robin uneven: instance %d got %d", i, c)
		}
	}
}

func TestRouterOneToAll(t *testing.T) {
	r := &Router{Dispatch: core.DispatchOneToAll}
	dst := r.Route(core.Item{}, 5)
	if len(dst) != 5 {
		t.Fatalf("broadcast fanout = %d", len(dst))
	}
	for i, d := range dst {
		if d != i {
			t.Fatal("broadcast should cover all instances in order")
		}
	}
}

func TestRouterAllToOneAndEdgeCases(t *testing.T) {
	r := &Router{Dispatch: core.DispatchAllToOne}
	if dst := r.Route(core.Item{}, 4); len(dst) != 1 || dst[0] != 0 {
		t.Fatalf("all-to-one route = %v", dst)
	}
	if dst := r.Route(core.Item{}, 0); dst != nil {
		t.Fatalf("zero instances should route nowhere, got %v", dst)
	}
}

// Property: dedup admits exactly one item per (origin, seq) regardless of
// duplication pattern.
func TestQuickDedupExactlyOnce(t *testing.T) {
	f := func(seqs []uint8) bool {
		d := NewDedup()
		admitted := map[uint64]bool{}
		// Feed monotone sequence with injected duplicates.
		var max uint64
		for _, s := range seqs {
			seq := uint64(s%16) + 1
			fresh := d.Fresh(core.Item{Origin: 1, Seq: seq})
			if fresh {
				if seq <= max {
					return false // admitted an item at or below watermark
				}
				if admitted[seq] {
					return false // double admission
				}
				admitted[seq] = true
				max = seq
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOutputBufferAppendBatch(t *testing.T) {
	var a, b OutputBuffer
	items := []core.Item{
		{Origin: 1, Seq: 1, Value: []byte("aa")},
		{Origin: 1, Seq: 2, Value: "bbb"},
		{Origin: 2, Seq: 1},
	}
	for _, it := range items {
		a.Append(it)
	}
	b.AppendBatch(items)
	b.AppendBatch(nil)
	if a.Len() != b.Len() || a.SizeBytes() != b.SizeBytes() {
		t.Fatalf("batch append diverges: len %d/%d bytes %d/%d",
			a.Len(), b.Len(), a.SizeBytes(), b.SizeBytes())
	}
	ra, rb := a.Replay(), b.Replay()
	for i := range ra {
		if ra[i].Origin != rb[i].Origin || ra[i].Seq != rb[i].Seq {
			t.Fatalf("item %d: %+v vs %+v", i, ra[i], rb[i])
		}
	}
}

func TestItemCostCountsCollections(t *testing.T) {
	var plain, gathered OutputBuffer
	plain.Append(core.Item{Origin: 1, Seq: 1})
	payload := core.Collection{make([]byte, 100), make([]byte, 150), "tail"}
	gathered.Append(core.Item{Origin: 1, Seq: 1, Value: payload})
	// The gathered item must account for the partial results it carries,
	// not just the item header (the old accounting undercounted every
	// merge input at 48 bytes).
	if gathered.SizeBytes() < plain.SizeBytes()+254 {
		t.Fatalf("collection cost = %d, header-only = %d; nested payloads not counted",
			gathered.SizeBytes(), plain.SizeBytes())
	}
	// Trim-path recomputation agrees with append-path accounting.
	gathered.Append(core.Item{Origin: 2, Seq: 1, Value: payload})
	want := gathered.SizeBytes() / 2
	gathered.Trim(map[uint64]uint64{1: 5})
	if gathered.SizeBytes() != want {
		t.Fatalf("post-trim size = %d, want %d", gathered.SizeBytes(), want)
	}
}

func TestDedupFreshBatchMatchesFresh(t *testing.T) {
	items := []core.Item{
		{Origin: 1, Seq: 1},
		{Origin: 1, Seq: 1}, // duplicate within the batch
		{Origin: 2, Seq: 5},
		{Origin: 1, Seq: 2},
		{Origin: 2, Seq: 4}, // stale
		{Origin: 3, Seq: 1},
	}
	seq := NewDedup()
	var wantKept []core.Item
	for _, it := range items {
		if seq.Fresh(it) {
			wantKept = append(wantKept, it)
		}
	}
	batch := NewDedup()
	kept := batch.FreshBatch(items, nil)
	if len(kept) != len(wantKept) {
		t.Fatalf("kept %d items, want %d", len(kept), len(wantKept))
	}
	for i := range kept {
		if kept[i] != wantKept[i] {
			t.Fatalf("kept[%d] = %+v, want %+v", i, kept[i], wantKept[i])
		}
	}
	sw, bw := seq.Watermarks(), batch.Watermarks()
	if len(sw) != len(bw) {
		t.Fatalf("watermark origins %d vs %d", len(sw), len(bw))
	}
	for o, s := range sw {
		if bw[o] != s {
			t.Fatalf("origin %d watermark %d vs %d", o, s, bw[o])
		}
	}
	// Scratch reuse: a second batch appends into the same backing array.
	kept2 := batch.FreshBatch([]core.Item{{Origin: 3, Seq: 2}}, kept[:0])
	if len(kept2) != 1 || kept2[0].Seq != 2 {
		t.Fatalf("scratch reuse broken: %+v", kept2)
	}
}

func TestGatherRefillCompletesPendingWaveOnly(t *testing.T) {
	g := NewGather()
	// A wave missing one partial: the original from origin 2 was lost with
	// a failed instance.
	g.Add(core.Item{ReqID: 9, Origin: 1, Parts: 2, Value: "a"})
	// A replayed duplicate from a surviving origin only overwrites.
	if _, done := g.Refill(core.Item{ReqID: 9, Origin: 1, Parts: 2, Value: "a2"}); done {
		t.Fatal("refill of existing slot completed the wave")
	}
	// The recovered instance re-emits origin 2's partial under an
	// already-seen timestamp; the refill must complete the wave.
	coll, done := g.Refill(core.Item{ReqID: 9, Origin: 2, Parts: 2, Value: "b"})
	if !done || len(coll) != 2 {
		t.Fatalf("refill did not complete: done=%v coll=%v", done, coll)
	}
	if g.Pending() != 0 {
		t.Fatal("completed wave not released")
	}
	// A duplicate arriving after completion must not recreate the wave —
	// that would re-invoke the merge computation.
	if _, done := g.Refill(core.Item{ReqID: 9, Origin: 1, Parts: 2, Value: "late"}); done {
		t.Fatal("refill recreated a completed wave")
	}
	if g.Pending() != 0 {
		t.Fatalf("refill leaked a wave: pending = %d", g.Pending())
	}
	// Fire-and-forget waves share pending key 0; a stale duplicate from an
	// earlier wave must never complete the current one.
	g.Add(core.Item{ReqID: 0, Origin: 1, Parts: 2, Value: "new-wave"})
	if _, done := g.Refill(core.Item{ReqID: 0, Origin: 2, Parts: 2, Value: "old-wave"}); done {
		t.Fatal("refill completed a fire-and-forget wave with a stale value")
	}
	if g.Pending() != 1 {
		t.Fatalf("fire-and-forget wave disturbed: pending = %d", g.Pending())
	}
}

func TestGatherEvict(t *testing.T) {
	g := NewGather()
	g.Add(core.Item{ReqID: 1, Origin: 1, Parts: 2, Value: "a"})
	g.Add(core.Item{ReqID: 2, Origin: 1, Parts: 2, Value: "b"})
	g.Add(core.Item{ReqID: 3, Origin: 1, Parts: 2, Value: "c"})
	if n := g.Evict(func(req uint64) bool { return req != 2 }); n != 2 {
		t.Fatalf("evicted %d waves, want 2", n)
	}
	if g.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", g.Pending())
	}
	// The surviving wave still completes.
	if _, done := g.Add(core.Item{ReqID: 2, Origin: 2, Parts: 2, Value: "b2"}); !done {
		t.Fatal("surviving wave cannot complete")
	}
}

func TestRouteBatchMatchesRoute(t *testing.T) {
	items := make([]core.Item, 50)
	for i := range items {
		items[i] = core.Item{Key: uint64(i * 131)}
	}
	for _, d := range []core.Dispatch{core.DispatchPartitioned, core.DispatchAllToOne} {
		one := &Router{Dispatch: d}
		bat := &Router{Dispatch: d}
		targets := bat.RouteBatch(items, 4, nil)
		if len(targets) != len(items) {
			t.Fatalf("%v: %d targets for %d items", d, len(targets), len(items))
		}
		for i, it := range items {
			if want := one.Route(it, 4)[0]; targets[i] != want {
				t.Fatalf("%v item %d: batch target %d, route target %d", d, i, targets[i], want)
			}
		}
	}
	// Scratch is reused without allocation once sized.
	part := &Router{Dispatch: core.DispatchPartitioned}
	scratch := make([]int, 0, len(items))
	allocs := testing.AllocsPerRun(20, func() {
		scratch = part.RouteBatch(items, 4, scratch[:0])
	})
	if allocs != 0 {
		t.Errorf("RouteBatch allocated %.1f times with sized scratch", allocs)
	}
	// Zero instances route nowhere.
	if got := part.RouteBatch(items, 0, nil); len(got) != 0 {
		t.Fatalf("no-instance routing returned %v", got)
	}
	// The strategies the delivery layer owns (broadcast, least-loaded)
	// must refuse per-item routing rather than silently diverge.
	for _, d := range []core.Dispatch{core.DispatchOneToAll, core.DispatchOneToAny} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RouteBatch(%v) should panic", d)
				}
			}()
			(&Router{Dispatch: d}).RouteBatch(items, 4, nil)
		}()
	}
}

// TestDedupFold: folding raises watermarks to at least the given values and
// never lowers a higher local mark.
func TestDedupFold(t *testing.T) {
	d := NewDedup()
	if !d.Fresh(core.Item{Origin: 1, Seq: 5}) || !d.Fresh(core.Item{Origin: 2, Seq: 9}) {
		t.Fatal("seed items must be fresh")
	}
	d.Fold(map[uint64]uint64{1: 8, 2: 3, 7: 4})
	if d.Fresh(core.Item{Origin: 1, Seq: 8}) {
		t.Error("origin 1 seq 8 must be covered by the fold")
	}
	if !d.Fresh(core.Item{Origin: 1, Seq: 9}) {
		t.Error("origin 1 seq 9 must stay fresh")
	}
	if d.Fresh(core.Item{Origin: 2, Seq: 9}) {
		t.Error("fold must not lower origin 2's higher local mark")
	}
	if d.Fresh(core.Item{Origin: 7, Seq: 4}) {
		t.Error("fold must introduce unseen origins")
	}
	if !d.Fresh(core.Item{Origin: 7, Seq: 5}) {
		t.Error("origin 7 seq 5 must be fresh after the fold")
	}
}
