package dataflow

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/state"
)

func TestOutputBufferAppendReplay(t *testing.T) {
	var b OutputBuffer
	for i := uint64(1); i <= 5; i++ {
		b.Append(core.Item{Origin: 1, Seq: i, Value: []byte{byte(i)}})
	}
	if b.Len() != 5 {
		t.Fatalf("len = %d", b.Len())
	}
	if b.SizeBytes() <= 0 {
		t.Fatal("size should be positive")
	}
	got := b.Replay()
	if len(got) != 5 || got[0].Seq != 1 || got[4].Seq != 5 {
		t.Fatalf("replay = %+v", got)
	}
	// Replay is a copy.
	got[0].Seq = 99
	if b.Replay()[0].Seq != 1 {
		t.Fatal("replay aliases buffer")
	}
}

func TestOutputBufferTrim(t *testing.T) {
	var b OutputBuffer
	for i := uint64(1); i <= 10; i++ {
		b.Append(core.Item{Origin: 7, Seq: i})
	}
	b.Trim(map[uint64]uint64{7: 6})
	if b.Len() != 4 {
		t.Fatalf("len after trim = %d, want 4", b.Len())
	}
	for _, it := range b.Replay() {
		if it.Seq <= 6 {
			t.Fatalf("item seq %d survived trim", it.Seq)
		}
	}
	// Trimming with an unrelated origin keeps everything.
	b.Trim(map[uint64]uint64{99: 100})
	if b.Len() != 4 {
		t.Fatal("unrelated trim removed items")
	}
	// Nil watermarks trim nothing.
	b.Trim(nil)
	if b.Len() != 4 {
		t.Fatal("nil trim removed items")
	}
}

func TestDedupFiltersDuplicates(t *testing.T) {
	d := NewDedup()
	if !d.Fresh(core.Item{Origin: 1, Seq: 1}) {
		t.Fatal("first item should be fresh")
	}
	if !d.Fresh(core.Item{Origin: 1, Seq: 2}) {
		t.Fatal("advancing seq should be fresh")
	}
	if d.Fresh(core.Item{Origin: 1, Seq: 2}) {
		t.Fatal("duplicate should be filtered")
	}
	if d.Fresh(core.Item{Origin: 1, Seq: 1}) {
		t.Fatal("stale item should be filtered")
	}
	if !d.Fresh(core.Item{Origin: 2, Seq: 1}) {
		t.Fatal("different origin should be independent")
	}
}

func TestDedupWatermarksRoundTrip(t *testing.T) {
	d := NewDedup()
	d.Fresh(core.Item{Origin: 1, Seq: 5})
	d.Fresh(core.Item{Origin: 2, Seq: 9})
	w := d.Watermarks()
	if w[1] != 5 || w[2] != 9 {
		t.Fatalf("watermarks = %v", w)
	}
	d2 := NewDedup()
	d2.Restore(w)
	if d2.Fresh(core.Item{Origin: 1, Seq: 5}) {
		t.Fatal("restored filter should reject covered seq")
	}
	if !d2.Fresh(core.Item{Origin: 1, Seq: 6}) {
		t.Fatal("restored filter should accept fresh seq")
	}
	// Mutating the snapshot does not affect the filter.
	w[1] = 100
	if !d.Fresh(core.Item{Origin: 1, Seq: 6}) {
		t.Fatal("watermarks snapshot aliases filter state")
	}
}

func TestGatherCollects(t *testing.T) {
	g := NewGather()
	if _, done := g.Add(core.Item{ReqID: 1, Origin: 10, Parts: 3, Value: "a"}); done {
		t.Fatal("incomplete gather released early")
	}
	if _, done := g.Add(core.Item{ReqID: 1, Origin: 11, Parts: 3, Value: "b"}); done {
		t.Fatal("incomplete gather released early")
	}
	if g.Pending() != 1 {
		t.Fatalf("pending = %d", g.Pending())
	}
	coll, done := g.Add(core.Item{ReqID: 1, Origin: 12, Parts: 3, Value: "c"})
	if !done || len(coll) != 3 {
		t.Fatalf("done=%v coll=%v", done, coll)
	}
	seen := map[string]bool{}
	for _, v := range coll {
		seen[v.(string)] = true
	}
	if !seen["a"] || !seen["b"] || !seen["c"] {
		t.Fatalf("collection contents = %v", coll)
	}
	if g.Pending() != 0 {
		t.Fatal("slot not released")
	}
}

func TestGatherDuplicateOriginOverwrites(t *testing.T) {
	g := NewGather()
	g.Add(core.Item{ReqID: 5, Origin: 1, Parts: 2, Value: "old"})
	// Replay duplicate from same origin must not complete the barrier.
	if _, done := g.Add(core.Item{ReqID: 5, Origin: 1, Parts: 2, Value: "new"}); done {
		t.Fatal("duplicate origin completed barrier")
	}
	coll, done := g.Add(core.Item{ReqID: 5, Origin: 2, Parts: 2, Value: "other"})
	if !done || len(coll) != 2 {
		t.Fatalf("done=%v coll=%v", done, coll)
	}
}

func TestGatherInterleavedRequests(t *testing.T) {
	g := NewGather()
	g.Add(core.Item{ReqID: 1, Origin: 1, Parts: 2, Value: 1})
	g.Add(core.Item{ReqID: 2, Origin: 1, Parts: 2, Value: 10})
	c1, done1 := g.Add(core.Item{ReqID: 1, Origin: 2, Parts: 2, Value: 2})
	c2, done2 := g.Add(core.Item{ReqID: 2, Origin: 2, Parts: 2, Value: 20})
	if !done1 || !done2 || len(c1) != 2 || len(c2) != 2 {
		t.Fatal("interleaved gathers broken")
	}
}

func TestRouterPartitioned(t *testing.T) {
	r := &Router{Dispatch: core.DispatchPartitioned}
	for key := uint64(0); key < 100; key++ {
		dst := r.Route(core.Item{Key: key}, 4)
		if len(dst) != 1 {
			t.Fatalf("partitioned route fanout = %d", len(dst))
		}
		if dst[0] != state.PartitionKey(key, 4) {
			t.Fatal("router disagrees with state partitioning")
		}
	}
}

func TestRouterOneToAny(t *testing.T) {
	r := &Router{Dispatch: core.DispatchOneToAny}
	counts := make([]int, 3)
	for i := 0; i < 300; i++ {
		dst := r.Route(core.Item{}, 3)
		counts[dst[0]]++
	}
	for i, c := range counts {
		if c != 100 {
			t.Fatalf("round robin uneven: instance %d got %d", i, c)
		}
	}
}

func TestRouterOneToAll(t *testing.T) {
	r := &Router{Dispatch: core.DispatchOneToAll}
	dst := r.Route(core.Item{}, 5)
	if len(dst) != 5 {
		t.Fatalf("broadcast fanout = %d", len(dst))
	}
	for i, d := range dst {
		if d != i {
			t.Fatal("broadcast should cover all instances in order")
		}
	}
}

func TestRouterAllToOneAndEdgeCases(t *testing.T) {
	r := &Router{Dispatch: core.DispatchAllToOne}
	if dst := r.Route(core.Item{}, 4); len(dst) != 1 || dst[0] != 0 {
		t.Fatalf("all-to-one route = %v", dst)
	}
	if dst := r.Route(core.Item{}, 0); dst != nil {
		t.Fatalf("zero instances should route nowhere, got %v", dst)
	}
}

// Property: dedup admits exactly one item per (origin, seq) regardless of
// duplication pattern.
func TestQuickDedupExactlyOnce(t *testing.T) {
	f := func(seqs []uint8) bool {
		d := NewDedup()
		admitted := map[uint64]bool{}
		// Feed monotone sequence with injected duplicates.
		var max uint64
		for _, s := range seqs {
			seq := uint64(s%16) + 1
			fresh := d.Fresh(core.Item{Origin: 1, Seq: seq})
			if fresh {
				if seq <= max {
					return false // admitted an item at or below watermark
				}
				if admitted[seq] {
					return false // double admission
				}
				admitted[seq] = true
				max = seq
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
