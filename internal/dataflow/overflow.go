package dataflow

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Overflow is the lossless parking lot behind one instance's inbound queue.
// When the bounded queue channel is out of slots, senders park the batch
// here instead of blocking — no worker ever waits on another worker's queue,
// so cyclic topologies cannot distributed-deadlock — and the owning worker
// promotes parked batches back into the channel as slots free up.
//
// Ordering: while anything is parked, new batches must also park (Offer
// enforces this), and Promote refills the channel strictly FIFO, so
// per-destination delivery order is exactly what a blocking send would have
// produced. That matters because the per-origin dedup watermark at the
// receiver permanently drops items that arrive behind a later sequence
// number from the same origin.
//
// Bounding: Offer never rejects a batch — intra-graph edges are lossless by
// contract. The parked depth (Items) is instead the runtime's backpressure
// signal: ingress admission stops once a task element's parked depth
// crosses its capacity-scaled watermark, so total parked memory stays
// within what admission has let into the graph times its fan-out.
type Overflow struct {
	mu      sync.Mutex
	batches [][]core.Item
	head    int // index of the oldest parked batch
	items   atomic.Int64
	// peak is the high-water parked depth since the last TakePeak. The
	// auto-scaler samples parked depth periodically, and a point sample can
	// miss every burst: on a loaded single-core box the scan goroutine
	// tends to be scheduled exactly when the worker has just drained its
	// queue, so the instantaneous depth reads zero even though the lot was
	// deep for most of the interval. Guarded by mu.
	peak int64
}

// Offer hands a batch to the destination: it goes straight into ch when
// nothing is parked and a slot is free, and parks otherwise. parked reports
// which happened, so the caller can wake an idle worker.
func (o *Overflow) Offer(ch chan<- []core.Item, b []core.Item) (parked bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.head == len(o.batches) {
		select {
		case ch <- b:
			return false
		default:
		}
	}
	o.batches = append(o.batches, b)
	if n := o.items.Add(int64(len(b))); n > o.peak {
		o.peak = n
	}
	return true
}

// Promote moves parked batches into ch, oldest first, until a send would
// block or nothing is parked, and reports how many items it moved. It is
// called by the owning worker after each processed batch and whenever a
// park kicks an idle worker.
func (o *Overflow) Promote(ch chan<- []core.Item) (moved int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for o.head < len(o.batches) {
		b := o.batches[o.head]
		select {
		case ch <- b:
			moved += int64(len(b))
			o.items.Add(-int64(len(b)))
			o.batches[o.head] = nil
			o.head++
		default:
			o.compact()
			return moved
		}
	}
	o.compact()
	return moved
}

// compact keeps the parked slice from creeping: reset when drained, slide
// the live tail down once the dead prefix dominates. Called under mu.
func (o *Overflow) compact() {
	if o.head == len(o.batches) {
		o.batches = o.batches[:0]
		o.head = 0
		return
	}
	if o.head > 32 && o.head*2 >= len(o.batches) {
		n := copy(o.batches, o.batches[o.head:])
		for i := n; i < len(o.batches); i++ {
			o.batches[i] = nil
		}
		o.batches = o.batches[:n]
		o.head = 0
	}
}

// Items reports the number of parked items.
func (o *Overflow) Items() int64 { return o.items.Load() }

// TakePeak reports the high-water parked depth since the previous call and
// resets the mark to the current depth, so each scan interval is judged by
// the worst it saw, not by the instant the sampler happened to run.
func (o *Overflow) TakePeak() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	p := o.peak
	o.peak = o.items.Load()
	return p
}
