// Package dataflow provides the item-level plumbing of the SDG runtime:
//
//   - OutputBuffer: per-instance upstream backup logs that are replayed
//     after failures and trimmed when downstream checkpoints commit (§5);
//   - Dedup: per-origin scalar-timestamp filters that discard duplicate
//     items during replay ("downstream nodes detect duplicate data items
//     based on the timestamps and discard them");
//   - Gather: the all-to-one synchronisation barrier that assembles one
//     partial result per upstream instance into a Collection for merge TEs
//     (§3.2, §4.2 rule 5);
//   - Router: the four dispatching strategies of §3.1/§4.2.
package dataflow

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/state"
)

// OutputBuffer logs the items an upstream TE instance emitted on one edge,
// in seq order, so they can be replayed to re-feed a recovering downstream
// node. Buffers are trimmed when every downstream checkpoint covers a
// prefix ("upstream nodes can trim their output buffers of data items that
// are older than all downstream checkpoints").
type OutputBuffer struct {
	mu    sync.Mutex
	items []core.Item
	bytes int64
}

// Append logs one emitted item.
func (b *OutputBuffer) Append(it core.Item) {
	b.mu.Lock()
	b.items = append(b.items, it)
	b.bytes += itemCost(it)
	b.mu.Unlock()
}

// itemCost approximates the retained size of a buffered item.
func itemCost(it core.Item) int64 {
	const header = 48
	switch v := it.Value.(type) {
	case []byte:
		return header + int64(len(v))
	case string:
		return header + int64(len(v))
	default:
		return header
	}
}

// Trim drops items whose (origin, seq) is covered by the watermarks: an
// item survives only if its origin is absent or its Seq is newer. A nil map
// trims nothing.
func (b *OutputBuffer) Trim(watermarks map[uint64]uint64) {
	if len(watermarks) == 0 {
		return
	}
	b.mu.Lock()
	kept := b.items[:0]
	var bytes int64
	for _, it := range b.items {
		if wm, ok := watermarks[it.Origin]; ok && it.Seq <= wm {
			continue
		}
		kept = append(kept, it)
		bytes += itemCost(it)
	}
	b.items = kept
	b.bytes = bytes
	b.mu.Unlock()
}

// Replay returns a copy of the buffered items in append order.
func (b *OutputBuffer) Replay() []core.Item {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]core.Item, len(b.items))
	copy(out, b.items)
	return out
}

// Len reports the number of buffered items.
func (b *OutputBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.items)
}

// SizeBytes reports the approximate retained size.
func (b *OutputBuffer) SizeBytes() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.bytes
}

// Dedup filters replayed duplicates: an item is fresh only if its Seq is
// greater than the last Seq seen from its origin. Watermarks round-trip
// through checkpoints so a restored node resumes filtering where the
// snapshot left off.
type Dedup struct {
	mu   sync.Mutex
	last map[uint64]uint64
}

// NewDedup returns an empty filter.
func NewDedup() *Dedup {
	return &Dedup{last: make(map[uint64]uint64)}
}

// Fresh records and reports whether the item advances its origin's
// timestamp. Duplicates (and reordered stale items) return false.
func (d *Dedup) Fresh(it core.Item) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if last, ok := d.last[it.Origin]; ok && it.Seq <= last {
		return false
	}
	d.last[it.Origin] = it.Seq
	return true
}

// Watermarks snapshots the per-origin high-water marks (the "vector
// timestamp of the last data item from each input dataflow" stored in
// checkpoints, §5).
func (d *Dedup) Watermarks() map[uint64]uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[uint64]uint64, len(d.last))
	for k, v := range d.last {
		out[k] = v
	}
	return out
}

// Restore resets the filter to the given watermarks.
func (d *Dedup) Restore(w map[uint64]uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.last = make(map[uint64]uint64, len(w))
	for k, v := range w {
		d.last[k] = v
	}
}

// Gather assembles all-to-one collections: for each request id it waits for
// the expected number of partial results (Item.Parts), then releases them
// as a core.Collection. Partial results from re-played duplicates of the
// same origin overwrite rather than double-count.
type Gather struct {
	mu      sync.Mutex
	pending map[uint64]map[uint64]any // reqID -> origin -> value
}

// NewGather returns an empty barrier.
func NewGather() *Gather {
	return &Gather{pending: make(map[uint64]map[uint64]any)}
}

// Add records one partial result. When the collection is complete it is
// returned with done=true and the request's slot is released.
func (g *Gather) Add(it core.Item) (coll core.Collection, done bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	m := g.pending[it.ReqID]
	if m == nil {
		m = make(map[uint64]any, it.Parts)
		g.pending[it.ReqID] = m
	}
	m[it.Origin] = it.Value
	if it.Parts > 0 && len(m) >= it.Parts {
		delete(g.pending, it.ReqID)
		coll = make(core.Collection, 0, len(m))
		for _, v := range m {
			coll = append(coll, v)
		}
		return coll, true
	}
	return nil, false
}

// Pending reports the number of incomplete collections (for monitoring).
func (g *Gather) Pending() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.pending)
}

// Router selects destination instance indices for an item according to the
// edge's dispatch semantics. Routing agrees with state partitioning because
// both use state.PartitionKey.
type Router struct {
	Dispatch core.Dispatch
	rr       atomic.Uint64
}

// Route returns the downstream instance indices the item must go to, given
// the current downstream instance count. The slice for one-to-all dispatch
// covers all instances; other strategies return a single index.
func (r *Router) Route(it core.Item, instances int) []int {
	if instances <= 0 {
		return nil
	}
	switch r.Dispatch {
	case core.DispatchPartitioned:
		return []int{state.PartitionKey(it.Key, instances)}
	case core.DispatchOneToAny:
		n := r.rr.Add(1)
		return []int{int(n % uint64(instances))}
	case core.DispatchOneToAll:
		all := make([]int, instances)
		for i := range all {
			all[i] = i
		}
		return all
	case core.DispatchAllToOne:
		// Collections converge on a single merge instance.
		return []int{0}
	default:
		return []int{0}
	}
}
