// Package dataflow provides the item-level plumbing of the SDG runtime:
//
//   - OutputBuffer: per-instance upstream backup logs that are replayed
//     after failures and trimmed when downstream checkpoints commit (§5);
//   - Dedup: per-origin scalar-timestamp filters that discard duplicate
//     items during replay ("downstream nodes detect duplicate data items
//     based on the timestamps and discard them");
//   - Gather: the all-to-one synchronisation barrier that assembles one
//     partial result per upstream instance into a Collection for merge TEs
//     (§3.2, §4.2 rule 5);
//   - Router: the four dispatching strategies of §3.1/§4.2.
package dataflow

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/state"
)

// OutputBuffer logs the items an upstream TE instance emitted on one edge,
// in seq order, so they can be replayed to re-feed a recovering downstream
// node. Buffers are trimmed when every downstream checkpoint covers a
// prefix ("upstream nodes can trim their output buffers of data items that
// are older than all downstream checkpoints").
type OutputBuffer struct {
	mu    sync.Mutex
	items []core.Item
	bytes int64
}

// Append logs one emitted item.
func (b *OutputBuffer) Append(it core.Item) {
	b.mu.Lock()
	b.items = append(b.items, it)
	b.bytes += itemCost(it)
	b.mu.Unlock()
}

// AppendBatch logs a micro-batch of emitted items under one lock
// acquisition; the batch hot path uses it so logging cost amortises over
// the batch instead of paying a mutex round trip per item.
func (b *OutputBuffer) AppendBatch(items []core.Item) {
	if len(items) == 0 {
		return
	}
	b.mu.Lock()
	for _, it := range items {
		b.items = append(b.items, it)
		b.bytes += itemCost(it)
	}
	b.mu.Unlock()
}

// itemCost approximates the retained size of a buffered item.
func itemCost(it core.Item) int64 {
	const header = 48 // Item struct: 5 words + interface header
	return header + valueCost(it.Value)
}

// valueCost approximates the retained payload size of an item value,
// descending into gathered collections so a buffered merge input accounts
// for the partial results it carries, not just the slice header.
func valueCost(v any) int64 {
	switch v := v.(type) {
	case []byte:
		return int64(len(v))
	case string:
		return int64(len(v))
	case core.Collection:
		const sliceHeader, ifaceHeader = 24, 16
		total := int64(sliceHeader)
		for _, e := range v {
			total += ifaceHeader + valueCost(e)
		}
		return total
	default:
		return 0
	}
}

// Trim drops items whose (origin, seq) is covered by the watermarks: an
// item survives only if its origin is absent or its Seq is newer. A nil map
// trims nothing.
func (b *OutputBuffer) Trim(watermarks map[uint64]uint64) {
	if len(watermarks) == 0 {
		return
	}
	b.mu.Lock()
	kept := b.items[:0]
	var bytes int64
	for _, it := range b.items {
		if wm, ok := watermarks[it.Origin]; ok && it.Seq <= wm {
			continue
		}
		kept = append(kept, it)
		bytes += itemCost(it)
	}
	b.items = kept
	b.bytes = bytes
	b.mu.Unlock()
}

// Replay returns a copy of the buffered items in append order.
func (b *OutputBuffer) Replay() []core.Item {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]core.Item, len(b.items))
	copy(out, b.items)
	return out
}

// Len reports the number of buffered items.
func (b *OutputBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.items)
}

// SizeBytes reports the approximate retained size.
func (b *OutputBuffer) SizeBytes() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.bytes
}

// Dedup filters replayed duplicates: an item is fresh only if its Seq is
// greater than the last Seq seen from its origin. Watermarks round-trip
// through checkpoints so a restored node resumes filtering where the
// snapshot left off.
type Dedup struct {
	mu   sync.Mutex
	last map[uint64]uint64
}

// NewDedup returns an empty filter.
func NewDedup() *Dedup {
	return &Dedup{last: make(map[uint64]uint64)}
}

// Fresh records and reports whether the item advances its origin's
// timestamp. Duplicates (and reordered stale items) return false.
func (d *Dedup) Fresh(it core.Item) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if last, ok := d.last[it.Origin]; ok && it.Seq <= last {
		return false
	}
	d.last[it.Origin] = it.Seq
	return true
}

// FreshBatch filters a micro-batch under one lock acquisition: fresh items
// are recorded and appended to keep (caller-owned scratch, typically reused
// across batches), in input order. Within a batch, later items from the
// same origin must still advance the timestamp, exactly as if Fresh had
// been called per item.
func (d *Dedup) FreshBatch(items []core.Item, keep []core.Item) []core.Item {
	d.mu.Lock()
	for _, it := range items {
		if last, ok := d.last[it.Origin]; ok && it.Seq <= last {
			continue
		}
		d.last[it.Origin] = it.Seq
		keep = append(keep, it)
	}
	d.mu.Unlock()
	return keep
}

// Watermarks snapshots the per-origin high-water marks (the "vector
// timestamp of the last data item from each input dataflow" stored in
// checkpoints, §5).
func (d *Dedup) Watermarks() map[uint64]uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[uint64]uint64, len(d.last))
	for k, v := range d.last {
		out[k] = v
	}
	return out
}

// Fold raises the per-origin watermarks to at least the given values,
// leaving higher local marks untouched. Scale-in uses it to fold a retired
// instance's processed history into the survivors: after the retiring
// partition's state merges in, items the retiree processed must read as
// duplicates wherever the new routing sends them. Folding is only safe at
// quiescence — with no undelivered items in flight, every seq at or below
// the folded mark has been processed by some instance whose state effects
// the survivors now hold.
func (d *Dedup) Fold(w map[uint64]uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for o, s := range w {
		if cur, ok := d.last[o]; !ok || s > cur {
			d.last[o] = s
		}
	}
}

// Restore resets the filter to the given watermarks.
func (d *Dedup) Restore(w map[uint64]uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.last = make(map[uint64]uint64, len(w))
	for k, v := range w {
		d.last[k] = v
	}
}

// Gather assembles all-to-one collections: for each request id it waits for
// the expected number of partial results (Item.Parts), then releases them
// as a core.Collection. Partial results from re-played duplicates of the
// same origin overwrite rather than double-count.
type Gather struct {
	mu      sync.Mutex
	pending map[uint64]map[uint64]any // reqID -> origin -> value
}

// NewGather returns an empty barrier.
func NewGather() *Gather {
	return &Gather{pending: make(map[uint64]map[uint64]any)}
}

// Add records one partial result. When the collection is complete it is
// returned with done=true and the request's slot is released.
func (g *Gather) Add(it core.Item) (coll core.Collection, done bool) {
	return g.fill(it, true)
}

// Refill records a partial result that the dedup filter flagged as a
// duplicate. Duplicates only fill holes in waves that are still pending —
// the case where the original delivery was lost with a failed instance and
// a recovered upstream re-emits it under an already-seen timestamp. A wave
// that already completed is never recreated, so replayed duplicates cannot
// re-invoke the merge computation. Fire-and-forget waves (request id 0)
// are excluded: every such wave shares pending key 0, so a stale duplicate
// from an earlier wave could otherwise complete the current wave with a
// previous generation's value and permanently shift wave alignment —
// those duplicates are simply dropped, as they were pre-batching.
func (g *Gather) Refill(it core.Item) (coll core.Collection, done bool) {
	if it.ReqID == 0 {
		return nil, false
	}
	return g.fill(it, false)
}

// fill is the shared wave bookkeeping behind Add and Refill.
func (g *Gather) fill(it core.Item, mayCreate bool) (coll core.Collection, done bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	m := g.pending[it.ReqID]
	if m == nil {
		if !mayCreate {
			return nil, false
		}
		m = make(map[uint64]any, it.Parts)
		g.pending[it.ReqID] = m
	}
	m[it.Origin] = it.Value
	if it.Parts > 0 && len(m) >= it.Parts {
		delete(g.pending, it.ReqID)
		coll = make(core.Collection, 0, len(m))
		for _, v := range m {
			coll = append(coll, v)
		}
		return coll, true
	}
	return nil, false
}

// Evict drops every pending wave whose request id matches drop, returning
// the number of waves evicted. Recovery uses it to release waves that can
// never complete, e.g. request/reply waves whose external caller has
// already given up — without eviction such waves leak in pending forever.
func (g *Gather) Evict(drop func(reqID uint64) bool) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for req := range g.pending {
		if drop(req) {
			delete(g.pending, req)
			n++
		}
	}
	return n
}

// Pending reports the number of incomplete collections (for monitoring).
func (g *Gather) Pending() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.pending)
}

// Router selects destination instance indices for an item according to the
// edge's dispatch semantics. Routing agrees with state partitioning because
// both use state.PartitionKey.
type Router struct {
	Dispatch core.Dispatch
	rr       atomic.Uint64
}

// Route returns the downstream instance indices the item must go to, given
// the current downstream instance count. The slice for one-to-all dispatch
// covers all instances; other strategies return a single index.
func (r *Router) Route(it core.Item, instances int) []int {
	if instances <= 0 {
		return nil
	}
	switch r.Dispatch {
	case core.DispatchPartitioned:
		return []int{state.PartitionKey(it.Key, instances)}
	case core.DispatchOneToAny:
		n := r.rr.Add(1)
		return []int{int(n % uint64(instances))}
	case core.DispatchOneToAll:
		all := make([]int, instances)
		for i := range all {
			all[i] = i
		}
		return all
	case core.DispatchAllToOne:
		// Collections converge on a single merge instance.
		return []int{0}
	default:
		return []int{0}
	}
}

// RouteBatch routes a micro-batch for the per-item single-target dispatch
// strategies, appending one destination index per item into dst (a
// caller-owned scratch buffer, typically reused across batches) and
// returning it. Unlike Route it performs no allocation when dst has
// capacity. DispatchOneToAll (every live instance gets the batch) and
// DispatchOneToAny (the whole batch goes to the least-loaded live
// instance, not per-item round robin) have no per-item target and are
// handled by the delivery layer; routing them here would silently diverge
// from those semantics, so both panic.
func (r *Router) RouteBatch(items []core.Item, instances int, dst []int) []int {
	if instances <= 0 {
		return dst
	}
	switch r.Dispatch {
	case core.DispatchPartitioned:
		for i := range items {
			dst = append(dst, state.PartitionKey(items[i].Key, instances))
		}
	case core.DispatchOneToAll:
		panic("dataflow: RouteBatch does not support one-to-all; use the broadcast path")
	case core.DispatchOneToAny:
		panic("dataflow: RouteBatch does not support one-to-any; use the least-loaded delivery path")
	default: // DispatchAllToOne and unknown: converge on instance 0.
		for range items {
			dst = append(dst, 0)
		}
	}
	return dst
}
