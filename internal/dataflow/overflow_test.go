package dataflow

import (
	"testing"

	"repro/internal/core"
)

func batchOf(seqs ...uint64) []core.Item {
	b := make([]core.Item, len(seqs))
	for i, s := range seqs {
		b[i] = core.Item{Origin: 1, Seq: s}
	}
	return b
}

// TestOverflowPreservesFIFO: once anything is parked, later offers must
// park behind it (no channel bypass), and promotion must refill the channel
// oldest-first — otherwise a later seq could overtake an earlier one to the
// same destination and the receiver's dedup watermark would drop the
// earlier item forever.
func TestOverflowPreservesFIFO(t *testing.T) {
	ch := make(chan []core.Item, 1)
	o := &Overflow{}

	if parked := o.Offer(ch, batchOf(1)); parked {
		t.Fatal("first offer should take the free channel slot")
	}
	if parked := o.Offer(ch, batchOf(2)); !parked {
		t.Fatal("offer against a full channel must park")
	}
	// The channel has a free slot only conceptually after a receive; while
	// batch 2 is parked, batch 3 must queue behind it even though a direct
	// send could race ahead after the consumer drains.
	<-ch // consume batch 1; channel now empty, overflow non-empty
	if parked := o.Offer(ch, batchOf(3)); !parked {
		t.Fatal("offer must park behind existing parked batches, not bypass them")
	}
	if got := o.Items(); got != 2 {
		t.Fatalf("parked items = %d, want 2", got)
	}
	o.Promote(ch)
	if got := o.Items(); got != 1 {
		t.Fatalf("parked after promote into 1-slot channel = %d, want 1", got)
	}
	first := <-ch
	o.Promote(ch)
	second := <-ch
	if first[0].Seq != 2 || second[0].Seq != 3 {
		t.Fatalf("promotion order = %d, %d; want 2, 3", first[0].Seq, second[0].Seq)
	}
	if got := o.Items(); got != 0 {
		t.Fatalf("parked items after full drain = %d, want 0", got)
	}
}

// TestOverflowPromotePartial: promotion stops when the channel fills and
// resumes later without losing or reordering batches.
func TestOverflowPromotePartial(t *testing.T) {
	ch := make(chan []core.Item, 2)
	o := &Overflow{}
	ch <- batchOf(0) // occupy one slot
	for s := uint64(1); s <= 4; s++ {
		o.Offer(ch, batchOf(s))
	}
	// Seq 1 took the remaining slot; 2-4 parked.
	if got := o.Items(); got != 3 {
		t.Fatalf("parked = %d, want 3", got)
	}
	<-ch // free a slot
	o.Promote(ch)
	if got := o.Items(); got != 2 {
		t.Fatalf("parked after partial promote = %d, want 2", got)
	}
	var seqs []uint64
	for len(ch) > 0 {
		seqs = append(seqs, (<-ch)[0].Seq)
	}
	o.Promote(ch)
	for len(ch) > 0 {
		seqs = append(seqs, (<-ch)[0].Seq)
	}
	o.Promote(ch)
	for len(ch) > 0 {
		seqs = append(seqs, (<-ch)[0].Seq)
	}
	want := []uint64{1, 2, 3, 4}
	if len(seqs) != len(want) {
		t.Fatalf("drained %v, want %v", seqs, want)
	}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("drained %v, want %v", seqs, want)
		}
	}
}

// TestOverflowItemCounting: multi-item batches account items, not batches.
func TestOverflowItemCounting(t *testing.T) {
	ch := make(chan []core.Item) // unbuffered: every offer parks
	o := &Overflow{}
	o.Offer(ch, batchOf(1, 2, 3))
	o.Offer(ch, batchOf(4, 5))
	if got := o.Items(); got != 5 {
		t.Fatalf("parked items = %d, want 5", got)
	}
}

// TestOverflowTakePeak: the peak mark must report the interval's high-water
// parked depth even after the lot fully drains — a point sample that runs
// after the drain sees zero — and reset to the current depth on each read.
func TestOverflowTakePeak(t *testing.T) {
	ch := make(chan []core.Item, 1)
	o := &Overflow{}
	o.Offer(ch, batchOf(1))       // takes the channel slot
	o.Offer(ch, batchOf(2, 3))    // parks: depth 2
	o.Offer(ch, batchOf(4, 5, 6)) // parks: depth 5
	<-ch                          // free the slot
	for o.Promote(ch) > 0 {       // drain the lot entirely
		<-ch
	}
	if got := o.Items(); got != 0 {
		t.Fatalf("items after drain = %d", got)
	}
	if got := o.TakePeak(); got != 5 {
		t.Fatalf("peak = %d, want 5 (burst must be visible after draining)", got)
	}
	if got := o.TakePeak(); got != 0 {
		t.Fatalf("peak after reset = %d, want 0", got)
	}
}
