package metrics

import (
	"testing"
	"time"
)

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i))
	}
}

func BenchmarkHistogramCandlestick(b *testing.B) {
	h := NewHistogram(0)
	for i := 0; i < 10000; i++ {
		h.Record(time.Duration(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Candlestick()
	}
}

func BenchmarkMeterMark(b *testing.B) {
	m := NewMeter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Mark(1)
	}
}
