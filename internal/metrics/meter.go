package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.v.Store(0) }

// Meter measures throughput: events per second since Start (or the last
// Reset). It is safe for concurrent use.
type Meter struct {
	count atomic.Int64
	start atomic.Int64 // unix nanos
}

// NewMeter returns a started meter.
func NewMeter() *Meter {
	m := &Meter{}
	m.start.Store(time.Now().UnixNano())
	return m
}

// Mark records n events.
func (m *Meter) Mark(n int64) { m.count.Add(n) }

// Count reports total events marked.
func (m *Meter) Count() int64 { return m.count.Load() }

// Rate reports events per second since the meter started.
func (m *Meter) Rate() float64 {
	elapsed := time.Duration(time.Now().UnixNano() - m.start.Load())
	if elapsed <= 0 {
		return 0
	}
	return float64(m.count.Load()) / elapsed.Seconds()
}

// Elapsed reports the time since the meter started.
func (m *Meter) Elapsed() time.Duration {
	return time.Duration(time.Now().UnixNano() - m.start.Load())
}

// Reset zeroes the count and restarts the clock.
func (m *Meter) Reset() {
	m.count.Store(0)
	m.start.Store(time.Now().UnixNano())
}

// Point is one (time offset, value) sample in a TimeSeries.
type Point struct {
	At    time.Duration
	Value float64
}

// TimeSeries records timestamped values relative to a fixed origin; it backs
// the straggler-timeline experiment (Fig. 10), which plots throughput and
// node count over time.
type TimeSeries struct {
	mu     sync.Mutex
	origin time.Time
	points []Point
}

// NewTimeSeries returns a series whose offsets are relative to now.
func NewTimeSeries() *TimeSeries {
	return &TimeSeries{origin: time.Now()}
}

// Record appends a sample with the current time offset.
func (ts *TimeSeries) Record(v float64) {
	ts.RecordAt(time.Since(ts.origin), v)
}

// RecordAt appends a sample at an explicit offset.
func (ts *TimeSeries) RecordAt(at time.Duration, v float64) {
	ts.mu.Lock()
	ts.points = append(ts.points, Point{At: at, Value: v})
	ts.mu.Unlock()
}

// Points returns a copy of the recorded samples in insertion order.
func (ts *TimeSeries) Points() []Point {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]Point, len(ts.points))
	copy(out, ts.points)
	return out
}

// Len reports the number of samples.
func (ts *TimeSeries) Len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.points)
}
