package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if got := h.Percentile(50); got != 50*time.Millisecond {
		t.Errorf("p50 = %v, want 50ms", got)
	}
	if got := h.Percentile(95); got != 95*time.Millisecond {
		t.Errorf("p95 = %v, want 95ms", got)
	}
	if got := h.Percentile(0); got != 1*time.Millisecond {
		t.Errorf("p0 = %v, want 1ms", got)
	}
	if got := h.Percentile(100); got != 100*time.Millisecond {
		t.Errorf("p100 = %v, want 100ms", got)
	}
}

func TestHistogramCandlestick(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	c := h.Candlestick()
	want := Candlestick{
		P5:  5 * time.Millisecond,
		P25: 25 * time.Millisecond,
		P50: 50 * time.Millisecond,
		P75: 75 * time.Millisecond,
		P95: 95 * time.Millisecond,
	}
	if c != want {
		t.Errorf("candlestick = %+v, want %+v", c, want)
	}
	if c.String() == "" {
		t.Error("String() empty")
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0)
	if h.Percentile(50) != 0 {
		t.Error("empty percentile should be 0")
	}
	if h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 {
		t.Error("empty stats should be 0")
	}
	if (h.Candlestick() != Candlestick{}) {
		t.Error("empty candlestick should be zero")
	}
}

func TestHistogramMeanMinMax(t *testing.T) {
	h := NewHistogram(0)
	h.Record(2 * time.Millisecond)
	h.Record(4 * time.Millisecond)
	h.Record(6 * time.Millisecond)
	if got := h.Mean(); got != 4*time.Millisecond {
		t.Errorf("mean = %v, want 4ms", got)
	}
	if got := h.Min(); got != 2*time.Millisecond {
		t.Errorf("min = %v, want 2ms", got)
	}
	if got := h.Max(); got != 6*time.Millisecond {
		t.Errorf("max = %v, want 6ms", got)
	}
	if got := h.Count(); got != 3 {
		t.Errorf("count = %d, want 3", got)
	}
}

func TestHistogramReservoirBounded(t *testing.T) {
	h := NewHistogram(64)
	for i := 0; i < 10_000; i++ {
		h.Record(time.Duration(i))
	}
	if got := len(h.Snapshot()); got != 64 {
		t.Errorf("retained %d samples, want 64", got)
	}
	if got := h.Count(); got != 10_000 {
		t.Errorf("count = %d, want 10000", got)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(0)
	h.Record(time.Second)
	h.Reset()
	if h.Count() != 0 || len(h.Snapshot()) != 0 {
		t.Error("reset did not clear samples")
	}
	h.Record(2 * time.Second)
	if h.Min() != 2*time.Second {
		t.Error("min not reset")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(time.Duration(i))
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Errorf("count = %d, want 8000", got)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Errorf("value = %d, want 10", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Error("reset failed")
	}
}

func TestMeterRate(t *testing.T) {
	m := NewMeter()
	m.Mark(100)
	time.Sleep(20 * time.Millisecond)
	r := m.Rate()
	if r <= 0 {
		t.Errorf("rate = %f, want > 0", r)
	}
	if m.Count() != 100 {
		t.Errorf("count = %d, want 100", m.Count())
	}
	if m.Elapsed() <= 0 {
		t.Error("elapsed should be positive")
	}
	m.Reset()
	if m.Count() != 0 {
		t.Error("reset failed")
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries()
	ts.RecordAt(time.Second, 1.0)
	ts.RecordAt(2*time.Second, 2.0)
	ts.Record(3.0)
	pts := ts.Points()
	if len(pts) != 3 || ts.Len() != 3 {
		t.Fatalf("len = %d, want 3", len(pts))
	}
	if pts[0].Value != 1.0 || pts[1].At != 2*time.Second {
		t.Errorf("unexpected points: %+v", pts)
	}
}

func TestDistribution(t *testing.T) {
	d := NewDistribution(64)
	if d.Count() != 0 || d.Mean() != 0 || d.Max() != 0 || d.Percentile(50) != 0 {
		t.Fatal("empty distribution not zero")
	}
	for i := int64(1); i <= 100; i++ {
		d.Record(i)
	}
	if d.Count() != 100 {
		t.Fatalf("count = %d", d.Count())
	}
	if d.Max() != 100 {
		t.Fatalf("max = %d", d.Max())
	}
	if mean := d.Mean(); mean < 50 || mean > 51 {
		t.Fatalf("mean = %f", mean)
	}
	// Reservoir keeps the retained set bounded by capacity.
	if p := d.Percentile(0); p < 1 {
		t.Fatalf("p0 = %d", p)
	}
	if p := d.Percentile(100); p > 100 {
		t.Fatalf("p100 = %d", p)
	}
	d.Reset()
	if d.Count() != 0 || d.Max() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestDistributionPercentiles(t *testing.T) {
	d := NewDistribution(256)
	if got := d.Percentiles(50, 99); got[0] != 0 || got[1] != 0 {
		t.Fatalf("empty percentiles = %v", got)
	}
	for i := int64(1); i <= 200; i++ {
		d.Record(i)
	}
	got := d.Percentiles(0, 50, 95, 100)
	if got[0] != 1 || got[3] != 200 {
		t.Fatalf("p0/p100 = %d/%d, want 1/200", got[0], got[3])
	}
	// The multi-percentile read must agree with the single-percentile path.
	for i, p := range []float64{0, 50, 95, 100} {
		if want := d.Percentile(p); got[i] != want {
			t.Fatalf("Percentiles p%.0f = %d, Percentile = %d", p, got[i], want)
		}
	}
}

// TestDistributionNearestRank pins the documented nearest-rank definition,
// rank = ceil(p*N/100), on the boundary cases where the old truncating
// formula landed one sample high (p50 of [1,2,3,4] reported 3, not 2).
func TestDistributionNearestRank(t *testing.T) {
	record := func(vals ...int64) *Distribution {
		d := NewDistribution(256)
		for _, v := range vals {
			d.Record(v)
		}
		return d
	}
	// Even N: p50 is the N/2-th value.
	if got := record(1, 2, 3, 4).Percentile(50); got != 2 {
		t.Errorf("p50 of [1,2,3,4] = %d, want 2", got)
	}
	// Odd N: p50 is the middle value.
	if got := record(1, 2, 3).Percentile(50); got != 2 {
		t.Errorf("p50 of [1,2,3] = %d, want 2", got)
	}
	// N=100: p99 is the 99th value, not the 100th.
	d := NewDistribution(256)
	for i := int64(1); i <= 100; i++ {
		d.Record(i)
	}
	if got := d.Percentile(99); got != 99 {
		t.Errorf("p99 of 1..100 = %d, want 99", got)
	}
	if got := d.Percentile(50); got != 50 {
		t.Errorf("p50 of 1..100 = %d, want 50", got)
	}
	// A single sample is every percentile.
	if got := record(7).Percentile(50); got != 7 {
		t.Errorf("p50 of [7] = %d, want 7", got)
	}
	// Tiny p never rounds below the first sample.
	if got := record(1, 2, 3, 4).Percentile(1); got != 1 {
		t.Errorf("p1 of [1,2,3,4] = %d, want 1", got)
	}
	// Agreement with Histogram's (already ceil-based) nearest rank.
	h := NewHistogram(256)
	for _, v := range []int64{1, 2, 3, 4} {
		h.Record(time.Duration(v))
	}
	if hp, dp := h.Percentile(50), record(1, 2, 3, 4).Percentile(50); int64(hp) != dp {
		t.Errorf("histogram p50 %d != distribution p50 %d", hp, dp)
	}
}

func TestDistributionRecordSteadyStateNoAlloc(t *testing.T) {
	// The runtime records one sample per micro-batch; the pre-allocated
	// reservoir keeps that off the allocation profile it measures.
	d := NewDistribution(128)
	allocs := testing.AllocsPerRun(200, func() { d.Record(7) })
	if allocs != 0 {
		t.Errorf("Record allocated %.1f times", allocs)
	}
}
