package metrics

import (
	"math"
	"sort"
	"sync"
)

// Distribution records dimensionless int64 samples (batch sizes, queue
// depths) and reports summary statistics. Like Histogram it bounds memory
// with reservoir sampling, but it pre-allocates the full reservoir so the
// steady-state Record path never allocates — the runtime records one
// sample per processed micro-batch and must not put allocations back on
// the hot path it is measuring. It deliberately mirrors Histogram's
// reservoir scheme; if the shared eviction/percentile logic ever changes,
// change both (folding them onto one generic core is known debt).
type Distribution struct {
	mu      sync.Mutex
	samples []int64
	cap     int
	n       int64 // total observations, including evicted ones
	sum     int64
	max     int64
	rng     uint64 // xorshift state for reservoir eviction
}

// DefaultDistributionCap bounds retained samples per distribution.
const DefaultDistributionCap = 1 << 14

// NewDistribution returns a distribution retaining at most capacity
// samples. If capacity <= 0, DefaultDistributionCap is used.
func NewDistribution(capacity int) *Distribution {
	if capacity <= 0 {
		capacity = DefaultDistributionCap
	}
	return &Distribution{
		samples: make([]int64, 0, capacity),
		cap:     capacity,
		rng:     0x9e3779b97f4a7c15,
	}
}

func (d *Distribution) next() uint64 {
	d.rng ^= d.rng << 13
	d.rng ^= d.rng >> 7
	d.rng ^= d.rng << 17
	return d.rng
}

// Record adds one sample.
func (d *Distribution) Record(v int64) {
	d.mu.Lock()
	d.n++
	d.sum += v
	if v > d.max {
		d.max = v
	}
	if len(d.samples) < d.cap {
		d.samples = append(d.samples, v)
	} else if idx := d.next() % uint64(d.n); idx < uint64(d.cap) {
		d.samples[idx] = v
	}
	d.mu.Unlock()
}

// Count reports the total number of recorded samples.
func (d *Distribution) Count() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.n
}

// Mean reports the mean over all recorded samples (not only retained ones).
func (d *Distribution) Mean() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.n == 0 {
		return 0
	}
	return float64(d.sum) / float64(d.n)
}

// Max reports the largest recorded sample, or 0 if none.
func (d *Distribution) Max() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.max
}

// Percentile reports the p-th percentile (0 <= p <= 100) over retained
// samples using nearest-rank on a sorted copy.
func (d *Distribution) Percentile(p float64) int64 {
	return d.Percentiles(p)[0]
}

// Percentiles reports several percentiles in one pass, sorting the
// retained samples once instead of once per call — the experiment harness
// reads p50/p95/p99 together for every load level.
func (d *Distribution) Percentiles(ps ...float64) []int64 {
	out := make([]int64, len(ps))
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.samples) == 0 {
		return out
	}
	sorted := make([]int64, len(d.samples))
	copy(sorted, d.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, p := range ps {
		switch {
		case p <= 0:
			out[i] = sorted[0]
		case p >= 100:
			out[i] = sorted[len(sorted)-1]
		default:
			// Nearest-rank: the smallest sample whose cumulative frequency
			// reaches p%, i.e. 1-based rank ceil(p*N/100). Truncating instead
			// of ceiling would shift every non-boundary percentile one sample
			// high (p50 of [1,2,3,4] would report 3, not 2).
			rank := int(math.Ceil(p*float64(len(sorted))/100)) - 1
			if rank < 0 {
				rank = 0
			}
			if rank >= len(sorted) {
				rank = len(sorted) - 1
			}
			out[i] = sorted[rank]
		}
	}
	return out
}

// Reset discards all samples.
func (d *Distribution) Reset() {
	d.mu.Lock()
	d.samples = d.samples[:0]
	d.n = 0
	d.sum = 0
	d.max = 0
	d.mu.Unlock()
}
