// Package metrics provides the measurement primitives used by the SDG
// runtime and the experiment harness: atomic counters, throughput meters,
// latency histograms with candlestick percentiles (the paper reports the
// 5th/25th/50th/75th/95th percentiles) and simple time series.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Histogram records duration samples and reports percentiles. It keeps up to
// a configurable number of samples using reservoir sampling so memory stays
// bounded while long experiments run. The zero value is not usable; call
// NewHistogram.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	cap     int
	n       int64 // total observations, including evicted ones
	sum     time.Duration
	max     time.Duration
	min     time.Duration
	rng     uint64 // xorshift state for reservoir eviction
}

// DefaultHistogramCap bounds the number of retained samples per histogram.
const DefaultHistogramCap = 1 << 15

// NewHistogram returns a histogram retaining at most capacity samples.
// If capacity <= 0, DefaultHistogramCap is used.
func NewHistogram(capacity int) *Histogram {
	if capacity <= 0 {
		capacity = DefaultHistogramCap
	}
	return &Histogram{
		samples: make([]time.Duration, 0, min(capacity, 1024)),
		cap:     capacity,
		min:     math.MaxInt64,
		rng:     0x9e3779b97f4a7c15,
	}
}

func (h *Histogram) next() uint64 {
	h.rng ^= h.rng << 13
	h.rng ^= h.rng >> 7
	h.rng ^= h.rng << 17
	return h.rng
}

// Record adds one duration sample.
func (h *Histogram) Record(d time.Duration) {
	h.mu.Lock()
	h.n++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	if d < h.min {
		h.min = d
	}
	if len(h.samples) < h.cap {
		h.samples = append(h.samples, d)
	} else {
		// Reservoir sampling: replace a random slot with probability cap/n.
		if idx := h.next() % uint64(h.n); idx < uint64(h.cap) {
			h.samples[idx] = d
		}
	}
	h.mu.Unlock()
}

// Count reports the total number of recorded samples.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Mean reports the mean of all recorded samples (not only retained ones).
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / time.Duration(h.n)
}

// Max reports the maximum recorded sample, or 0 if none.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Min reports the minimum recorded sample, or 0 if none.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Percentile reports the p-th percentile (0 <= p <= 100) over retained
// samples using nearest-rank on a sorted copy.
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return percentileLocked(h.samples, p)
}

func percentileLocked(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Candlestick is the five-number summary the paper's plots use.
type Candlestick struct {
	P5, P25, P50, P75, P95 time.Duration
}

// Candlestick reports the 5th/25th/50th/75th/95th percentiles in one pass.
func (h *Histogram) Candlestick() Candlestick {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return Candlestick{}
	}
	sorted := make([]time.Duration, len(h.samples))
	copy(sorted, h.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(p float64) time.Duration {
		rank := int(math.Ceil(p / 100 * float64(len(sorted))))
		if rank < 1 {
			rank = 1
		}
		return sorted[rank-1]
	}
	return Candlestick{P5: at(5), P25: at(25), P50: at(50), P75: at(75), P95: at(95)}
}

// String renders the candlestick compactly for harness output.
func (c Candlestick) String() string {
	return fmt.Sprintf("p5=%v p25=%v p50=%v p75=%v p95=%v", c.P5, c.P25, c.P50, c.P75, c.P95)
}

// Snapshot returns a copy of the retained samples, for tests and exports.
func (h *Histogram) Snapshot() []time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]time.Duration, len(h.samples))
	copy(out, h.samples)
	return out
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.samples = h.samples[:0]
	h.n = 0
	h.sum = 0
	h.max = 0
	h.min = math.MaxInt64
	h.mu.Unlock()
}
