package translator

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strconv"
	"strings"

	"repro/internal/state"
)

// This file is the source-level front end of the translator: it parses an
// annotated Go file into the IR, playing the role Soot's Jimple front end
// plays for java2sdg. The accepted subset mirrors the paper's restrictions
// (§4.1): all state lives in annotated fields, loops and branches are
// local, and @Global results must be declared partial.
//
// Annotations are comments:
//
//	//sdg:state partitioned        (on a var declaration -> @Partitioned)
//	//sdg:state partial            (on a var declaration -> @Partial)
//	//sdg:partial                  (on an assignment -> @Partial variable)
//
// State accesses are method calls on the annotated variables; the method
// name selects the store operation, and the prefix "Global" marks @Global
// access (coOcc.GlobalMulvec(row) is @Global coOcc.multiply(row)). Merge
// functions (@Collection) are calls to names registered in the merges map:
// rec := sumVectors(userRec).
//
// Every top-level function becomes an entry method.
func ParseGoProgram(name, src string, merges map[string]func([]any) any) (*Program, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, name+".go", src, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("translator: parse: %w", err)
	}
	cmap := ast.NewCommentMap(fset, file, file.Comments)

	p := &Program{Name: name, MergeFuncs: merges}
	stateVars := map[string]bool{}

	// Pass 1: annotated state fields.
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		ann := annotationOf(gd.Doc)
		if !strings.HasPrefix(ann, "state") {
			continue
		}
		parts := strings.Fields(ann)
		if len(parts) != 2 {
			return nil, untranslatable("state annotation %q needs a kind: partitioned|partial", ann)
		}
		var fieldAnn FieldAnn
		switch parts[1] {
		case "partitioned":
			fieldAnn = AnnPartitioned
		case "partial":
			fieldAnn = AnnPartial
		default:
			return nil, untranslatable("unknown state kind %q", parts[1])
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			typ, err := storeTypeOf(vs.Type)
			if err != nil {
				return nil, err
			}
			for _, id := range vs.Names {
				p.Fields = append(p.Fields, Field{Name: id.Name, Type: typ, Ann: fieldAnn})
				stateVars[id.Name] = true
			}
		}
	}

	// Pass 2: methods.
	gp := &goParser{stateVars: stateVars, merges: merges, cmap: cmap}
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		m := &Method{Name: fd.Name.Name}
		if fd.Type.Params != nil {
			for _, f := range fd.Type.Params.List {
				for _, id := range f.Names {
					m.Params = append(m.Params, id.Name)
				}
			}
		}
		body, err := gp.stmts(fd.Body.List)
		if err != nil {
			return nil, fmt.Errorf("translator: method %q: %w", m.Name, err)
		}
		m.Body = body
		p.Methods = append(p.Methods, m)
	}
	if len(p.Methods) == 0 {
		return nil, untranslatable("source defines no methods")
	}
	return p, nil
}

// annotationOf extracts the "sdg:" directive from a doc comment group.
func annotationOf(doc *ast.CommentGroup) string {
	if doc == nil {
		return ""
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
		text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
		if strings.HasPrefix(text, "sdg:") {
			return strings.TrimPrefix(text, "sdg:")
		}
	}
	return ""
}

// storeTypeOf maps source type names to store types.
func storeTypeOf(t ast.Expr) (state.StoreType, error) {
	id, ok := t.(*ast.Ident)
	if !ok {
		return state.TypeInvalid, untranslatable("state type must be a plain identifier")
	}
	switch id.Name {
	case "Matrix":
		return state.TypeMatrix, nil
	case "KVMap", "Dictionary":
		return state.TypeKVMap, nil
	case "Vector":
		return state.TypeVector, nil
	case "DenseMatrix":
		return state.TypeDenseMatrix, nil
	default:
		return state.TypeInvalid, untranslatable("unknown state type %q", id.Name)
	}
}

type goParser struct {
	stateVars map[string]bool
	merges    map[string]func([]any) any
	cmap      ast.CommentMap
}

func (g *goParser) stmts(list []ast.Stmt) ([]Stmt, error) {
	var out []Stmt
	for _, s := range list {
		converted, err := g.stmt(s)
		if err != nil {
			return nil, err
		}
		out = append(out, converted...)
	}
	return out, nil
}

func (g *goParser) stmt(s ast.Stmt) ([]Stmt, error) {
	switch v := s.(type) {
	case *ast.AssignStmt:
		if len(v.Lhs) != 1 || len(v.Rhs) != 1 {
			return nil, untranslatable("only single assignments are supported")
		}
		id, ok := v.Lhs[0].(*ast.Ident)
		if !ok {
			return nil, untranslatable("assignment target must be a variable")
		}
		expr, err := g.expr(v.Rhs[0])
		if err != nil {
			return nil, err
		}
		partial := g.hasPartialMark(s) || isGlobalExpr(expr)
		return []Stmt{Assign{Var: id.Name, Expr: expr, Partial: partial}}, nil

	case *ast.ExprStmt:
		call, ok := v.X.(*ast.CallExpr)
		if !ok {
			return nil, untranslatable("bare expressions must be state calls")
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return nil, untranslatable("bare calls must target state fields")
		}
		recv, ok := sel.X.(*ast.Ident)
		if !ok || !g.stateVars[recv.Name] {
			return nil, untranslatable("call receiver %v is not a state field", sel.X)
		}
		op, _ := splitGlobalOp(sel.Sel.Name)
		args, err := g.exprs(call.Args)
		if err != nil {
			return nil, err
		}
		return []Stmt{StateUpdate{Field: recv.Name, Op: op, Args: args}}, nil

	case *ast.RangeStmt:
		key, ok1 := v.Key.(*ast.Ident)
		val, ok2 := v.Value.(*ast.Ident)
		if !ok1 || !ok2 {
			return nil, untranslatable("range needs named key and value variables")
		}
		over, err := g.expr(v.X)
		if err != nil {
			return nil, err
		}
		body, err := g.stmts(v.Body.List)
		if err != nil {
			return nil, err
		}
		return []Stmt{ForEach{KeyVar: key.Name, ValVar: val.Name, Over: over, Body: body}}, nil

	case *ast.IfStmt:
		if v.Init != nil {
			return nil, untranslatable("if-with-init is not supported")
		}
		cond, err := g.expr(v.Cond)
		if err != nil {
			return nil, err
		}
		then, err := g.stmts(v.Body.List)
		if err != nil {
			return nil, err
		}
		var els []Stmt
		switch e := v.Else.(type) {
		case nil:
		case *ast.BlockStmt:
			els, err = g.stmts(e.List)
			if err != nil {
				return nil, err
			}
		case *ast.IfStmt:
			els, err = g.stmt(e)
			if err != nil {
				return nil, err
			}
		}
		return []Stmt{If{Cond: cond, Then: then, Else: els}}, nil

	case *ast.ReturnStmt:
		if len(v.Results) != 1 {
			return nil, untranslatable("return must carry exactly one value")
		}
		expr, err := g.expr(v.Results[0])
		if err != nil {
			return nil, err
		}
		return []Stmt{Return{Expr: expr}}, nil

	default:
		return nil, untranslatable("unsupported statement %T", s)
	}
}

// hasPartialMark reports whether the statement carries //sdg:partial.
func (g *goParser) hasPartialMark(s ast.Stmt) bool {
	for _, cg := range g.cmap[s] {
		if annotationOf(cg) == "partial" {
			return true
		}
	}
	return false
}

func (g *goParser) exprs(list []ast.Expr) ([]Expr, error) {
	out := make([]Expr, len(list))
	for i, e := range list {
		conv, err := g.expr(e)
		if err != nil {
			return nil, err
		}
		out[i] = conv
	}
	return out, nil
}

func (g *goParser) expr(e ast.Expr) (Expr, error) {
	switch v := e.(type) {
	case *ast.Ident:
		switch v.Name {
		case "true":
			return Const{Value: true}, nil
		case "false":
			return Const{Value: false}, nil
		}
		return Var{Name: v.Name}, nil
	case *ast.BasicLit:
		switch v.Kind {
		case token.INT:
			n, err := strconv.ParseInt(v.Value, 0, 64)
			if err != nil {
				return nil, untranslatable("bad int literal %q", v.Value)
			}
			return Const{Value: float64(n)}, nil
		case token.FLOAT:
			f, err := strconv.ParseFloat(v.Value, 64)
			if err != nil {
				return nil, untranslatable("bad float literal %q", v.Value)
			}
			return Const{Value: f}, nil
		case token.STRING:
			s, err := strconv.Unquote(v.Value)
			if err != nil {
				return nil, untranslatable("bad string literal %q", v.Value)
			}
			return Const{Value: s}, nil
		default:
			return nil, untranslatable("unsupported literal %q", v.Value)
		}
	case *ast.ParenExpr:
		return g.expr(v.X)
	case *ast.BinaryExpr:
		l, err := g.expr(v.X)
		if err != nil {
			return nil, err
		}
		r, err := g.expr(v.Y)
		if err != nil {
			return nil, err
		}
		return BinOp{Op: v.Op.String(), L: l, R: r}, nil
	case *ast.CallExpr:
		switch fun := v.Fun.(type) {
		case *ast.SelectorExpr:
			recv, ok := fun.X.(*ast.Ident)
			if !ok || !g.stateVars[recv.Name] {
				return nil, untranslatable("call receiver %v is not a state field", fun.X)
			}
			op, global := splitGlobalOp(fun.Sel.Name)
			args, err := g.exprs(v.Args)
			if err != nil {
				return nil, err
			}
			return StateRead{Field: recv.Name, Op: op, Args: args, Global: global}, nil
		case *ast.Ident:
			// A call to a registered merge function is a @Collection merge.
			if _, ok := g.merges[fun.Name]; ok {
				if len(v.Args) != 1 {
					return nil, untranslatable("merge %q takes one partial variable", fun.Name)
				}
				arg, ok := v.Args[0].(*ast.Ident)
				if !ok {
					return nil, untranslatable("merge %q argument must be a variable", fun.Name)
				}
				return MergeCall{Func: fun.Name, Arg: Var{Name: arg.Name}}, nil
			}
			return nil, untranslatable("unknown function %q (not a registered merge)", fun.Name)
		default:
			return nil, untranslatable("unsupported call %T", v.Fun)
		}
	default:
		return nil, untranslatable("unsupported expression %T", e)
	}
}

// splitGlobalOp maps a source method name to (store op, global?): the
// "Global" prefix marks @Global access, and the remainder lower-cases to
// the store operation name (GlobalMulvec -> mulvec, Set -> set).
func splitGlobalOp(name string) (string, bool) {
	if strings.HasPrefix(name, "Global") && len(name) > len("Global") {
		return strings.ToLower(name[len("Global"):]), true
	}
	return strings.ToLower(name), false
}

// isGlobalExpr reports whether the expression contains a @Global read, so
// the parser can auto-mark assigned variables partial (the explicit
// //sdg:partial comment remains supported and is validated downstream).
func isGlobalExpr(e Expr) bool {
	return containsGlobalRead(e)
}
