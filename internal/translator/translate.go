package translator

import (
	"fmt"

	"repro/internal/core"
)

// PlannedTE describes one generated task element.
type PlannedTE struct {
	Name   string
	Method string
	Entry  bool
	Field  string // accessed SE ("" for stateless)
	Mode   string // access mode
	KeyVar string // partitioned access key variable
	Stmts  []Stmt
	LiveIn []string // variables live at TE entry
}

// PlannedEdge describes one generated dataflow edge.
type PlannedEdge struct {
	From, To string
	Dispatch core.Dispatch
	KeyVar   string
	Carries  []string
}

// Plan is the translation result: the executable graph plus the analysis
// artefacts for inspection (and the per-entry key parameter needed to
// inject requests).
type Plan struct {
	Graph *core.Graph
	TEs   []PlannedTE
	Edges []PlannedEdge
	// EntryKey maps entry TE name -> parameter variable used as dispatch
	// key ("" when the entry is not partitioned).
	EntryKey map[string]string
}

// block is a run of statements sharing one state access.
type block struct {
	acc    access
	stmts  []Stmt
	merge  string // merge function if this is a @Collection block
	entry  bool
	method string
	index  int
}

// Translate compiles an annotated program to an SDG (§4.2).
func Translate(p *Program) (*Plan, error) {
	a, err := newAnalyzer(p)
	if err != nil {
		return nil, err
	}
	if len(p.Methods) == 0 {
		return nil, untranslatable("program has no entry methods")
	}

	g := core.NewGraph(p.Name)
	seID := map[string]int{}
	for _, f := range p.Fields {
		kind := core.KindPartitioned
		if f.Ann == AnnPartial {
			kind = core.KindPartial
		}
		seID[f.Name] = g.AddSE(f.Name, kind, f.Type, f.Build)
	}

	plan := &Plan{Graph: g, EntryKey: map[string]string{}}

	for _, m := range p.Methods {
		blocks, err := splitMethod(a, m)
		if err != nil {
			return nil, err
		}
		if err := validatePartialVars(a, m); err != nil {
			return nil, err
		}

		// Live variables at each block's entry (step 5), computed backwards.
		liveAt := make([]map[string]bool, len(blocks)+1)
		liveAt[len(blocks)] = map[string]bool{}
		for i := len(blocks) - 1; i >= 0; i-- {
			liveAt[i] = liveIn(blocks[i].stmts, liveAt[i+1])
		}

		// Materialise TEs.
		teIDs := make([]int, len(blocks))
		for i, b := range blocks {
			name := m.Name
			if i > 0 {
				name = fmt.Sprintf("%s/%d", m.Name, i)
				if b.acc.field != "" {
					name = fmt.Sprintf("%s/%d[%s]", m.Name, i, b.acc.field)
				} else if b.merge != "" {
					name = fmt.Sprintf("%s/%d[merge:%s]", m.Name, i, b.merge)
				}
			}
			var accEdge *core.Access
			switch b.acc.mode {
			case accessByKey:
				accEdge = &core.Access{SE: seID[b.acc.field], Mode: core.AccessByKey}
			case accessLocal:
				accEdge = &core.Access{SE: seID[b.acc.field], Mode: core.AccessLocal}
			case accessGlobal:
				accEdge = &core.Access{SE: seID[b.acc.field], Mode: core.AccessGlobal}
			}
			var liveOut []string
			if i+1 < len(blocks) {
				for v := range liveAt[i+1] {
					liveOut = append(liveOut, v)
				}
			}
			fn := makeTaskFunc(p, a, b, i < len(blocks)-1, liveKeyVar(blocks, i+1), liveOut)
			teIDs[i] = g.AddTE(name, fn, accEdge, i == 0)

			var liveList []string
			for v := range liveAt[i] {
				liveList = append(liveList, v)
			}
			plan.TEs = append(plan.TEs, PlannedTE{
				Name: name, Method: m.Name, Entry: i == 0,
				Field: b.acc.field, Mode: b.acc.mode.String(), KeyVar: b.acc.keyVar,
				Stmts: b.stmts, LiveIn: liveList,
			})
			if i == 0 {
				plan.EntryKey[name] = b.acc.keyVar
			}
		}

		// Dataflow edges with dispatch semantics (rules 2-5).
		for i := 0; i+1 < len(blocks); i++ {
			up, down := blocks[i], blocks[i+1]
			var d core.Dispatch
			switch {
			case down.merge != "":
				d = core.DispatchAllToOne // rule 5
			case down.acc.mode == accessGlobal:
				d = core.DispatchOneToAll // rule 3
			case down.acc.mode == accessByKey:
				if up.acc.mode == accessGlobal {
					return nil, untranslatable(
						"method %q: partitioned access after @Global requires a @Collection merge in between", m.Name)
				}
				d = core.DispatchPartitioned // rule 2
			case down.acc.mode == accessLocal:
				if up.acc.mode == accessGlobal {
					return nil, untranslatable(
						"method %q: local access after @Global requires a @Collection merge in between", m.Name)
				}
				d = core.DispatchOneToAny // rule 4
			default:
				d = core.DispatchOneToAny
			}
			g.Connect(teIDs[i], teIDs[i+1], d)

			var carries []string
			for v := range liveAt[i+1] {
				carries = append(carries, v)
			}
			plan.Edges = append(plan.Edges, PlannedEdge{
				From:     g.TEs[teIDs[i]].Name,
				To:       g.TEs[teIDs[i+1]].Name,
				Dispatch: d,
				KeyVar:   down.acc.keyVar,
				Carries:  carries,
			})
		}
	}

	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("translator: generated graph invalid: %w", err)
	}
	return plan, nil
}

// liveKeyVar reports the dispatch key variable of block i (the downstream
// block of an edge), or "".
func liveKeyVar(blocks []*block, i int) string {
	if i < len(blocks) {
		return blocks[i].acc.keyVar
	}
	return ""
}

// splitMethod partitions a method body into blocks, one per TE (rules 1-5
// of §4.2 step 4): a new block starts whenever a statement's state access
// differs from the current block's — a different SE, a different access key
// on the same SE, a switch to global access, or a @Collection merge.
func splitMethod(a *analyzer, m *Method) ([]*block, error) {
	cur := &block{method: m.Name, entry: true}
	var blocks []*block
	flush := func() {
		if len(cur.stmts) > 0 || cur.entry {
			blocks = append(blocks, cur)
		}
		cur = &block{method: m.Name, index: len(blocks)}
	}
	for _, s := range m.Body {
		acc, err := a.stmtAccess(s)
		if err != nil {
			return nil, fmt.Errorf("method %q: %w", m.Name, err)
		}
		switch {
		case acc.merge != "":
			// Rule 5: @Collection expressions synchronise into a merge TE.
			flush()
			cur.merge = acc.merge
			cur.stmts = append(cur.stmts, s)
		case acc.mode == accessNone:
			// Stateless statements ride with the current block.
			cur.stmts = append(cur.stmts, s)
		case cur.merge != "":
			// Leaving a merge block: state access starts a new TE.
			flush()
			cur.acc = acc
			cur.stmts = append(cur.stmts, s)
		case cur.acc.mode == accessNone:
			// First state access of the block adopts it.
			cur.acc = acc
			cur.stmts = append(cur.stmts, s)
		case cur.acc.field == acc.field && cur.acc.mode == acc.mode && cur.acc.keyVar == acc.keyVar:
			cur.stmts = append(cur.stmts, s)
		default:
			// Rules 2-4: access change starts a new TE.
			flush()
			cur.acc = acc
			cur.stmts = append(cur.stmts, s)
		}
	}
	if len(cur.stmts) > 0 || len(blocks) == 0 {
		blocks = append(blocks, cur)
	}
	return blocks, nil
}

// validatePartialVars enforces the annotation discipline of §4.1: a
// variable assigned from a @Global read must be marked Partial, and partial
// variables may only be consumed by @Collection merges.
func validatePartialVars(a *analyzer, m *Method) error {
	partial := map[string]bool{}
	var walk func(stmts []Stmt) error
	checkUses := func(e Expr, allowMerge bool) error {
		uses := map[string]bool{}
		switch v := e.(type) {
		case MergeCall:
			if allowMerge {
				return nil
			}
			uses[v.Arg.Name] = true
		default:
			exprUses(e, uses)
		}
		for name := range uses {
			if partial[name] {
				return untranslatable(
					"method %q: partial variable %q used outside a @Collection merge", m.Name, name)
			}
		}
		return nil
	}
	walk = func(stmts []Stmt) error {
		for _, s := range stmts {
			switch v := s.(type) {
			case Assign:
				global := containsGlobalRead(v.Expr)
				if global && !v.Partial {
					return untranslatable(
						"method %q: variable %q assigned from @Global access must be @Partial", m.Name, v.Var)
				}
				if _, isMerge := v.Expr.(MergeCall); isMerge {
					// The merge result is single-valued again.
					partial[v.Var] = false
					continue
				}
				if err := checkUses(v.Expr, false); err != nil {
					return err
				}
				partial[v.Var] = global
			case StateUpdate:
				for _, arg := range v.Args {
					if err := checkUses(arg, false); err != nil {
						return err
					}
				}
			case Return:
				if err := checkUses(v.Expr, true); err != nil {
					return err
				}
			case ForEach:
				if err := checkUses(v.Over, false); err != nil {
					return err
				}
				if err := walk(v.Body); err != nil {
					return err
				}
			case If:
				if err := checkUses(v.Cond, false); err != nil {
					return err
				}
				if err := walk(v.Then); err != nil {
					return err
				}
				if err := walk(v.Else); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return walk(m.Body)
}

func containsGlobalRead(e Expr) bool {
	switch v := e.(type) {
	case StateRead:
		return v.Global
	case BinOp:
		return containsGlobalRead(v.L) || containsGlobalRead(v.R)
	default:
		return false
	}
}
