package translator

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/state"
)

const testTimeout = 5 * time.Second

// cfProgram is Alg. 1 of the paper, written in the translator IR:
//
//	@Partitioned Matrix userItem;  @Partial Matrix coOcc;
//	void addRating(user, item, rating) { ... }
//	Vector getRec(user) { ... merge(@Global coOcc.multiply(userRow)) ... }
func cfProgram() *Program {
	return &Program{
		Name: "cf",
		Fields: []Field{
			{Name: "userItem", Type: state.TypeMatrix, Ann: AnnPartitioned},
			{Name: "coOcc", Type: state.TypeMatrix, Ann: AnnPartial},
		},
		MergeFuncs: map[string]func([]any) any{
			// merge(@Collection Vector[] allUserRec): element-wise sum.
			"sumVectors": func(parts []any) any {
				rec := map[int64]float64{}
				for _, p := range parts {
					if m, ok := p.(map[int64]float64); ok {
						for k, v := range m {
							rec[k] += v
						}
					}
				}
				return rec
			},
		},
		Methods: []*Method{
			{
				Name:   "addRating",
				Params: []string{"user", "item", "rating"},
				Body: []Stmt{
					// userItem.setElement(user, item, rating)
					StateUpdate{Field: "userItem", Op: "set",
						Args: []Expr{Var{"user"}, Var{"item"}, Var{"rating"}}},
					// Vector userRow = userItem.getRow(user)
					Assign{Var: "userRow", Expr: StateRead{Field: "userItem", Op: "row",
						Args: []Expr{Var{"user"}}}},
					// for (i, r) in userRow: if r > 0 && i != item:
					//   coOcc[item][i]++; coOcc[i][item]++
					ForEach{KeyVar: "i", ValVar: "r", Over: Var{"userRow"}, Body: []Stmt{
						If{Cond: BinOp{Op: ">", L: Var{"r"}, R: Const{0.0}}, Then: []Stmt{
							If{Cond: BinOp{Op: "!=", L: Var{"i"}, R: Var{"item"}}, Then: []Stmt{
								StateUpdate{Field: "coOcc", Op: "add",
									Args: []Expr{Var{"item"}, Var{"i"}, Const{1.0}}},
								StateUpdate{Field: "coOcc", Op: "add",
									Args: []Expr{Var{"i"}, Var{"item"}, Const{1.0}}},
							}},
						}},
					}},
				},
			},
			{
				Name:   "getRec",
				Params: []string{"user"},
				Body: []Stmt{
					// Vector userRow = userItem.getRow(user)
					Assign{Var: "userRow", Expr: StateRead{Field: "userItem", Op: "row",
						Args: []Expr{Var{"user"}}}},
					// @Partial Vector userRec = @Global coOcc.multiply(userRow)
					Assign{Var: "userRec", Partial: true,
						Expr: StateRead{Field: "coOcc", Op: "mulvec",
							Args: []Expr{Var{"userRow"}}, Global: true}},
					// Vector rec = merge(@Global userRec)
					Assign{Var: "rec", Expr: MergeCall{Func: "sumVectors", Arg: Var{"userRec"}}},
					Return{Expr: Var{"rec"}},
				},
			},
		},
	}
}

func TestCFTranslationMatchesFig1(t *testing.T) {
	plan, err := Translate(cfProgram())
	if err != nil {
		t.Fatal(err)
	}
	g := plan.Graph
	// Fig. 1: five TEs, two SEs.
	if len(g.TEs) != 5 {
		names := make([]string, len(g.TEs))
		for i, te := range g.TEs {
			names[i] = te.Name
		}
		t.Fatalf("TEs = %v, want 5 (Fig. 1)", names)
	}
	if len(g.SEs) != 2 {
		t.Fatalf("SEs = %d, want 2", len(g.SEs))
	}
	if g.SEs[0].Kind != core.KindPartitioned || g.SEs[1].Kind != core.KindPartial {
		t.Fatal("SE kinds do not match annotations")
	}
	// Dispatch semantics: one-to-any into the coOcc update (rule 4),
	// one-to-all into the global read (rule 3), all-to-one into the merge
	// (rule 5).
	dispatches := map[core.Dispatch]int{}
	for _, e := range g.Edges {
		dispatches[e.Dispatch]++
	}
	if dispatches[core.DispatchOneToAny] != 1 ||
		dispatches[core.DispatchOneToAll] != 1 ||
		dispatches[core.DispatchAllToOne] != 1 {
		t.Fatalf("dispatch histogram = %v", dispatches)
	}
	// Access-key extraction: both entries key on "user".
	if plan.EntryKey["addRating"] != "user" || plan.EntryKey["getRec"] != "user" {
		t.Fatalf("entry keys = %v", plan.EntryKey)
	}
	// Live variables on the addRating edge: the co-occurrence update needs
	// the item id and the user row (the paper's live-variable example).
	var found bool
	for _, e := range plan.Edges {
		if e.From == "addRating" {
			found = true
			carries := map[string]bool{}
			for _, v := range e.Carries {
				carries[v] = true
			}
			if !carries["item"] || !carries["userRow"] {
				t.Errorf("addRating edge carries %v, want item+userRow", e.Carries)
			}
			if carries["rating"] {
				t.Errorf("rating is dead after the first TE but carried: %v", e.Carries)
			}
		}
	}
	if !found {
		t.Fatal("no edge out of addRating")
	}
	// Validation passed inside Translate; double-check allocation matches
	// the paper's three nodes.
	if a := g.Allocate(); a.Nodes != 3 {
		t.Errorf("allocation = %d nodes, want 3", a.Nodes)
	}
}

func TestCFTranslatedProgramExecutes(t *testing.T) {
	app, err := DeployProgram(cfProgram(), runtime.Options{
		Partitions: map[string]int{"userItem": 2, "coOcc": 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()

	// User 1 rates items 10, 20; user 2 rates items 10, 30.
	ratings := [][3]int{{1, 10, 5}, {1, 20, 4}, {2, 10, 5}, {2, 30, 3}}
	for _, r := range ratings {
		if err := app.Invoke("addRating", r[0], r[1], r[2]); err != nil {
			t.Fatal(err)
		}
	}
	if !app.Runtime().Drain(testTimeout) {
		t.Fatal("drain")
	}
	got, err := app.Call("getRec", testTimeout, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := got.(map[int64]float64)
	if !ok {
		t.Fatalf("getRec returned %T", got)
	}
	// Item 30 co-occurs with item 10 via user 2: it must be recommended to
	// user 1 (who rated item 10).
	if rec[30] <= 0 {
		t.Fatalf("rec[30] = %f, want positive (rec=%v)", rec[30], rec)
	}
}

func TestTranslationErrors(t *testing.T) {
	base := func() *Program {
		return &Program{
			Name:   "p",
			Fields: []Field{{Name: "m", Type: state.TypeMatrix, Ann: AnnPartitioned}},
			Methods: []*Method{{
				Name: "f", Params: []string{"k"},
				Body: []Stmt{StateUpdate{Field: "m", Op: "set",
					Args: []Expr{Var{"k"}, Const{0}, Const{1.0}}}},
			}},
		}
	}

	t.Run("no methods", func(t *testing.T) {
		p := base()
		p.Methods = nil
		if _, err := Translate(p); err == nil {
			t.Fatal("should fail")
		}
	})
	t.Run("duplicate fields", func(t *testing.T) {
		p := base()
		p.Fields = append(p.Fields, p.Fields[0])
		if _, err := Translate(p); err == nil {
			t.Fatal("should fail")
		}
	})
	t.Run("unknown field", func(t *testing.T) {
		p := base()
		p.Methods[0].Body = []Stmt{StateUpdate{Field: "nope", Op: "set",
			Args: []Expr{Var{"k"}, Const{0}, Const{1.0}}}}
		if _, err := Translate(p); err == nil {
			t.Fatal("should fail")
		}
	})
	t.Run("global on partitioned", func(t *testing.T) {
		p := base()
		p.Methods[0].Body = []Stmt{Assign{Var: "x",
			Expr: StateRead{Field: "m", Op: "row", Args: []Expr{Var{"k"}}, Global: true}}}
		if _, err := Translate(p); err == nil {
			t.Fatal("should fail")
		}
	})
	t.Run("constant key", func(t *testing.T) {
		p := base()
		p.Methods[0].Body = []Stmt{StateUpdate{Field: "m", Op: "set",
			Args: []Expr{Const{1}, Const{0}, Const{1.0}}}}
		if _, err := Translate(p); err == nil {
			t.Fatal("should fail: constant keys have no access variable")
		}
	})
	t.Run("unannotated partial variable", func(t *testing.T) {
		p := base()
		p.Fields = append(p.Fields, Field{Name: "part", Type: state.TypeMatrix, Ann: AnnPartial})
		p.Methods[0].Body = []Stmt{
			Assign{Var: "x", Expr: StateRead{Field: "part", Op: "row",
				Args: []Expr{Var{"k"}}, Global: true}}, // Partial flag missing
		}
		if _, err := Translate(p); err == nil {
			t.Fatal("should fail: @Global result must be @Partial")
		}
	})
	t.Run("partial var escapes merge", func(t *testing.T) {
		p := base()
		p.Fields = append(p.Fields, Field{Name: "part", Type: state.TypeMatrix, Ann: AnnPartial})
		p.Methods[0].Body = []Stmt{
			Assign{Var: "x", Partial: true, Expr: StateRead{Field: "part", Op: "row",
				Args: []Expr{Var{"k"}}, Global: true}},
			Assign{Var: "y", Expr: BinOp{Op: "+", L: Var{"x"}, R: Const{1.0}}},
		}
		if _, err := Translate(p); err == nil {
			t.Fatal("should fail: partial variable used outside @Collection")
		}
	})
	t.Run("two SEs in one statement", func(t *testing.T) {
		p := base()
		p.Fields = append(p.Fields, Field{Name: "m2", Type: state.TypeMatrix, Ann: AnnPartitioned})
		p.Methods[0].Body = []Stmt{StateUpdate{Field: "m", Op: "set",
			Args: []Expr{Var{"k"}, Const{0},
				StateRead{Field: "m2", Op: "get", Args: []Expr{Var{"k"}, Const{0}}}}}}
		if _, err := Translate(p); err == nil {
			t.Fatal("should fail: one statement touches two SEs")
		}
	})
	t.Run("partitioned access after global", func(t *testing.T) {
		p := base()
		p.Fields = append(p.Fields, Field{Name: "part", Type: state.TypeMatrix, Ann: AnnPartial})
		p.Methods[0].Body = []Stmt{
			Assign{Var: "x", Partial: true, Expr: StateRead{Field: "part", Op: "row",
				Args: []Expr{Var{"k"}}, Global: true}},
			StateUpdate{Field: "m", Op: "set", Args: []Expr{Var{"k"}, Const{0}, Const{1.0}}},
		}
		if _, err := Translate(p); err == nil {
			t.Fatal("should fail: needs a @Collection merge between global and partitioned access")
		}
	})
}

func TestKeyChangeSplitsTE(t *testing.T) {
	// Rule 2's second clause: partitioned access to the *same* SE with a
	// new access key starts a new TE with a re-partitioned dataflow edge.
	p := &Program{
		Name:   "rekey",
		Fields: []Field{{Name: "m", Type: state.TypeMatrix, Ann: AnnPartitioned}},
		Methods: []*Method{{
			Name: "f", Params: []string{"a", "b"},
			Body: []Stmt{
				StateUpdate{Field: "m", Op: "set", Args: []Expr{Var{"a"}, Const{0}, Const{1.0}}},
				StateUpdate{Field: "m", Op: "set", Args: []Expr{Var{"b"}, Const{0}, Const{2.0}}},
			},
		}},
	}
	plan, err := Translate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Graph.TEs) != 2 {
		t.Fatalf("TEs = %d, want 2 (key change must split)", len(plan.Graph.TEs))
	}
	if len(plan.Edges) != 1 || plan.Edges[0].Dispatch != core.DispatchPartitioned {
		t.Fatalf("edges = %+v", plan.Edges)
	}
	if plan.Edges[0].KeyVar != "b" {
		t.Fatalf("edge key var = %q, want b", plan.Edges[0].KeyVar)
	}
}

func TestLiveVariableAnalysis(t *testing.T) {
	// live-in of a block that uses x before defining y.
	stmts := []Stmt{
		Assign{Var: "y", Expr: BinOp{Op: "+", L: Var{"x"}, R: Const{1.0}}},
		Return{Expr: Var{"y"}},
	}
	live := liveIn(stmts, map[string]bool{})
	if !live["x"] || live["y"] {
		t.Fatalf("liveIn = %v, want {x}", live)
	}
	// Variables live after the block stay live unless defined.
	live = liveIn([]Stmt{Assign{Var: "z", Expr: Const{1.0}}}, map[string]bool{"w": true, "z": true})
	if !live["w"] || live["z"] {
		t.Fatalf("liveIn = %v, want {w}", live)
	}
}

func TestTranslatedKVProgramWithFailure(t *testing.T) {
	// A minimal dictionary program exercises the translated path end to
	// end including checkpointing and recovery.
	p := &Program{
		Name:   "dict",
		Fields: []Field{{Name: "store", Type: state.TypeKVMap, Ann: AnnPartitioned}},
		Methods: []*Method{
			{
				Name: "put", Params: []string{"k", "v"},
				Body: []Stmt{
					StateUpdate{Field: "store", Op: "put", Args: []Expr{Var{"k"}, Var{"v"}}},
					Return{Expr: Const{true}},
				},
			},
			{
				Name: "get", Params: []string{"k"},
				Body: []Stmt{
					Assign{Var: "v", Expr: StateRead{Field: "store", Op: "get", Args: []Expr{Var{"k"}}}},
					Return{Expr: Var{"v"}},
				},
			},
		},
	}
	app, err := DeployProgram(p, runtime.Options{
		Mode:     1, // checkpoint.ModeAsync
		Interval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()
	for k := 0; k < 20; k++ {
		if _, err := app.Call("put", testTimeout, k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := app.Runtime().CheckpointNow("store", 0); err != nil {
		t.Fatal(err)
	}
	node := app.Runtime().Stats().SEs[0].Nodes[0]
	app.Runtime().KillNode(node)
	if _, err := app.Runtime().Recover("store", 1); err != nil {
		t.Fatal(err)
	}
	app.Runtime().Drain(testTimeout)
	for k := 0; k < 20; k++ {
		v, err := app.Call("get", testTimeout, k)
		if err != nil {
			t.Fatal(err)
		}
		if b, ok := v.([]byte); !ok || len(b) != 1 || b[0] != byte(k) {
			t.Fatalf("get %d = %v after recovery", k, v)
		}
	}
}

func TestAppArgumentErrors(t *testing.T) {
	app, err := DeployProgram(cfProgram(), runtime.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()
	if err := app.Invoke("nope", 1); err == nil {
		t.Error("unknown method should fail")
	}
	if err := app.Invoke("addRating", 1); err == nil {
		t.Error("wrong arity should fail")
	}
	if _, err := app.Call("nope", testTimeout); err == nil {
		t.Error("unknown method call should fail")
	}
}
