// Package translator reproduces the java2sdg translation pipeline of §4:
// annotated imperative programs are statically analysed and compiled to
// executable stateful dataflow graphs.
//
// The paper's input is an annotated Java class processed through Soot
// (Jimple IR) and Javassist (bytecode generation). This implementation
// substitutes a small imperative IR for Jimple and an interpreter for the
// bytecode backend; the analysis pipeline in between is reproduced
// faithfully:
//
//	step 2   SE extraction from @Partitioned/@Partial field annotations
//	step 3   state-access classification (local / partitioned / global)
//	step 4   TE extraction: a new TE per entry point, per partitioned
//	         access with a new key, per global access, per local access to
//	         a new partial SE, and per @Collection merge (rules 1-5),
//	         with access keys recovered from the key expressions
//	step 5   live-variable analysis to determine what each dataflow edge
//	         carries
//	step 6-8 TE "code generation": interpreted task functions that evaluate
//	         the assigned statements, invoke the runtime for state access
//	         and dispatch live variables to successor TEs
package translator

import "repro/internal/state"

// FieldAnn is a state field annotation (§4.1).
type FieldAnn int

const (
	// AnnPartitioned marks a field splittable into disjoint partitions by
	// access key (@Partitioned).
	AnnPartitioned FieldAnn = iota
	// AnnPartial marks a field whose instances are independent replicas
	// (@Partial).
	AnnPartial
)

// String names the annotation.
func (a FieldAnn) String() string {
	if a == AnnPartitioned {
		return "@Partitioned"
	}
	return "@Partial"
}

// Field is one annotated state field of the program.
type Field struct {
	Name string
	Type state.StoreType
	Ann  FieldAnn
	// Build optionally pre-sizes the store (e.g. a dense vector).
	Build func() state.Store
}

// Program is the unit of translation: the paper requires "a single Java
// class with annotations"; here it is a named set of annotated fields,
// entry-point methods and developer-defined merge functions.
type Program struct {
	Name string
	// Fields are the explicit state classes (§4.1 "Explicit state
	// classes"); all program state must live in them.
	Fields []Field
	// Methods are the entry points (§4.2 rule 1: a TE per entry point).
	Methods []*Method
	// MergeFuncs are the application-defined merge computations invoked on
	// @Collection values (§3.2: "Merge computation is application-specific
	// and must be defined by the developer").
	MergeFuncs map[string]func([]any) any
}

// Method is one entry point.
type Method struct {
	Name   string
	Params []string
	Body   []Stmt
}

// Stmt is an imperative statement.
type Stmt interface{ stmt() }

// Expr is an expression.
type Expr interface{ expr() }

// Var reads a local variable or parameter.
type Var struct{ Name string }

// Const is a literal.
type Const struct{ Value any }

// BinOp applies a binary operator: + - * / > < >= <= == !=.
type BinOp struct {
	Op   string
	L, R Expr
}

// StateRead reads from a state field: field.Op(args...). Global marks
// @Global access to a partial field (the expression becomes multi-valued).
type StateRead struct {
	Field  string
	Op     string
	Args   []Expr
	Global bool
}

// MergeCall invokes a named merge function on a partial (multi-valued)
// variable — the @Collection access of §4.1.
type MergeCall struct {
	Func string
	Arg  Var // must name a partial variable
}

func (Var) expr()       {}
func (Const) expr()     {}
func (BinOp) expr()     {}
func (StateRead) expr() {}
func (MergeCall) expr() {}

// Assign binds a variable. Partial must be set when the right-hand side is
// a @Global state read (the variable becomes logically multi-valued).
type Assign struct {
	Var     string
	Expr    Expr
	Partial bool
}

// StateUpdate mutates a state field: field.Op(args...).
type StateUpdate struct {
	Field string
	Op    string
	Args  []Expr
}

// ForEach iterates over a map-valued expression, binding key and value
// variables for the body. Iteration is local to one TE.
type ForEach struct {
	KeyVar, ValVar string
	Over           Expr
	Body           []Stmt
}

// If branches on a condition; either arm may be empty.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// Return produces the method result: translated to a Reply to the caller.
type Return struct{ Expr Expr }

func (Assign) stmt()      {}
func (StateUpdate) stmt() {}
func (ForEach) stmt()     {}
func (If) stmt()          {}
func (Return) stmt()      {}
