package translator

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/runtime"
)

// cfGoSource is Alg. 1 written as annotated Go source — the input format
// of the source-level front end.
const cfGoSource = `
package cf

//sdg:state partitioned
var userItem Matrix

//sdg:state partial
var coOcc Matrix

func addRating(user, item, rating int) {
	userItem.Set(user, item, rating)
	userRow := userItem.Row(user)
	for i, r := range userRow {
		if r > 0 {
			if i != item {
				coOcc.Add(item, i, 1)
				coOcc.Add(i, item, 1)
			}
		}
	}
}

func getRec(user int) {
	userRow := userItem.Row(user)
	//sdg:partial
	userRec := coOcc.GlobalMulvec(userRow)
	rec := sumVectors(userRec)
	return rec
}
`

func sumVectorsMerge() map[string]func([]any) any {
	return map[string]func([]any) any{
		"sumVectors": func(parts []any) any {
			rec := map[int64]float64{}
			for _, p := range parts {
				if m, ok := p.(map[int64]float64); ok {
					for k, v := range m {
						rec[k] += v
					}
				}
			}
			return rec
		},
	}
}

func TestParseGoCFMatchesIRTranslation(t *testing.T) {
	prog, err := ParseGoProgram("cf", cfGoSource, sumVectorsMerge())
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Fields) != 2 || prog.Fields[0].Ann != AnnPartitioned || prog.Fields[1].Ann != AnnPartial {
		t.Fatalf("fields = %+v", prog.Fields)
	}
	if len(prog.Methods) != 2 {
		t.Fatalf("methods = %d", len(prog.Methods))
	}
	plan, err := Translate(prog)
	if err != nil {
		t.Fatal(err)
	}
	// Identical structure to the hand-built IR: Fig. 1's five TEs, two SEs.
	if len(plan.Graph.TEs) != 5 || len(plan.Graph.SEs) != 2 {
		t.Fatalf("TEs=%d SEs=%d", len(plan.Graph.TEs), len(plan.Graph.SEs))
	}
	dispatches := map[core.Dispatch]int{}
	for _, e := range plan.Graph.Edges {
		dispatches[e.Dispatch]++
	}
	if dispatches[core.DispatchOneToAny] != 1 ||
		dispatches[core.DispatchOneToAll] != 1 ||
		dispatches[core.DispatchAllToOne] != 1 {
		t.Fatalf("dispatch histogram = %v", dispatches)
	}
	if plan.EntryKey["addRating"] != "user" || plan.EntryKey["getRec"] != "user" {
		t.Fatalf("entry keys = %v", plan.EntryKey)
	}
}

func TestParsedGoProgramExecutes(t *testing.T) {
	prog, err := ParseGoProgram("cf", cfGoSource, sumVectorsMerge())
	if err != nil {
		t.Fatal(err)
	}
	app, err := DeployProgram(prog, runtime.Options{
		Partitions: map[string]int{"userItem": 2, "coOcc": 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()
	for _, r := range [][3]int{{1, 10, 5}, {1, 20, 4}, {2, 10, 5}, {2, 30, 3}} {
		if err := app.Invoke("addRating", r[0], r[1], r[2]); err != nil {
			t.Fatal(err)
		}
	}
	if !app.Runtime().Drain(5 * time.Second) {
		t.Fatal("drain")
	}
	got, err := app.Call("getRec", 5*time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := got.(map[int64]float64)
	if rec[30] <= 0 {
		t.Fatalf("rec[30] = %f (rec=%v)", rec[30], rec)
	}
}

func TestParseGoAutoPartialFromGlobal(t *testing.T) {
	// Without the //sdg:partial comment, an assignment from a @Global read
	// is still auto-marked partial (the front end infers the annotation).
	src := `
package p

//sdg:state partial
var m Matrix

func f(k int) {
	x := m.GlobalRow(k)
	y := mergeIt(x)
	return y
}
`
	prog, err := ParseGoProgram("p", src, map[string]func([]any) any{
		"mergeIt": func(parts []any) any { return len(parts) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Translate(prog); err != nil {
		t.Fatalf("auto-partial should make this translatable: %v", err)
	}
}

func TestParseGoErrors(t *testing.T) {
	cases := map[string]string{
		"syntax error": `package p func {`,
		"unknown state type": `
package p
//sdg:state partitioned
var m Widget
func f(k int) { m.Set(k, 0, 1) }`,
		"bad state kind": `
package p
//sdg:state sharded
var m Matrix
func f(k int) { m.Set(k, 0, 1) }`,
		"missing state kind": `
package p
//sdg:state
var m Matrix
func f(k int) { m.Set(k, 0, 1) }`,
		"no methods": `
package p
//sdg:state partitioned
var m Matrix`,
		"unknown function": `
package p
//sdg:state partitioned
var m Matrix
func f(k int) { x := frobnicate(k); m.Set(x, 0, 1) }`,
		"call on non-state": `
package p
//sdg:state partitioned
var m Matrix
func f(k int) { other.Set(k, 0, 1) }`,
		"multi assign": `
package p
//sdg:state partitioned
var m Matrix
func f(k int) { a, b := k, k; m.Set(a, b, 1) }`,
		"unsupported stmt": `
package p
//sdg:state partitioned
var m Matrix
func f(k int) { go m.Set(k, 0, 1) }`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ParseGoProgram("p", src, nil); err == nil {
				t.Fatalf("source should be rejected:\n%s", src)
			}
		})
	}
}

func TestParseGoLiteralsAndOperators(t *testing.T) {
	src := `
package p

//sdg:state partitioned
var kv KVMap

func f(k int) {
	kv.Put(k, "value")
	x := kv.Get(k)
	ok := (x != 0.5) == true
	if ok {
		kv.Put(k, "updated")
	} else {
		kv.Delete(k)
	}
	return ok
}
`
	prog, err := ParseGoProgram("p", src, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Translate(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Graph.TEs) != 1 {
		t.Fatalf("TEs = %d, want 1 (same key throughout)", len(plan.Graph.TEs))
	}
	app, err := DeployProgram(prog, runtime.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()
	got, err := app.Call("f", 5*time.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got != true {
		t.Fatalf("f returned %v", got)
	}
}
