package translator

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/state"
	"repro/internal/wire"
)

// Env is the set of live variables carried on a dataflow edge (the paper's
// step 8: "serialise live variables and send them to the correct successor
// TE instance").
type Env struct {
	Vars map[string]any
}

func init() {
	wire.Register(Env{})
	wire.Register(map[int64]float64{})
	wire.Register([]float64{})
	wire.Register([]byte{})
}

// makeTaskFunc generates the executable form of one TE: an interpreter over
// the block's statements. This substitutes for java2sdg's bytecode
// assembly (steps 6-8): state accesses are served by the runtime-provided
// store, and at the block's exit the live variables are dispatched to the
// successor (keyed by the downstream block's access-key variable).
func makeTaskFunc(p *Program, a *analyzer, b *block, hasNext bool, nextKeyVar string, liveOut []string) core.TaskFunc {
	return func(ctx core.Context, it core.Item) {
		in := &interp{prog: p, ctx: ctx, env: map[string]any{}}
		switch v := it.Value.(type) {
		case nil:
		case Env:
			for k, val := range v.Vars {
				in.env[k] = val
			}
		case core.Collection:
			// Merge block input: one Env per upstream partial instance.
			in.coll = make([]Env, 0, len(v))
			for _, e := range v {
				env, ok := e.(Env)
				if !ok {
					return
				}
				in.coll = append(in.coll, env)
			}
			// Single-valued live variables are identical across the
			// broadcast wave; adopt them from any member.
			if len(in.coll) > 0 {
				for k, val := range in.coll[0].Vars {
					in.env[k] = val
				}
			}
		default:
			return
		}
		if err := in.exec(b.stmts); err != nil {
			// Translated programs are validated statically; runtime errors
			// indicate value-type misuse and abort the item.
			return
		}
		if in.returned {
			ctx.Reply(in.retVal)
		}
		if hasNext {
			// Only the live variables cross the TE boundary (step 5).
			out := Env{Vars: make(map[string]any, len(liveOut))}
			for _, v := range liveOut {
				if val, ok := in.env[v]; ok {
					out.Vars[v] = val
				}
			}
			var key uint64
			if nextKeyVar != "" {
				key = hashValue(in.env[nextKeyVar])
			}
			ctx.EmitReq(0, key, out)
		}
	}
}

// interp evaluates statements against an environment and a local store.
type interp struct {
	prog     *Program
	ctx      core.Context
	env      map[string]any
	coll     []Env // merge collection, when executing a merge block
	returned bool
	retVal   any
}

func (in *interp) exec(stmts []Stmt) error {
	for _, s := range stmts {
		if in.returned {
			return nil
		}
		switch v := s.(type) {
		case Assign:
			val, err := in.eval(v.Expr)
			if err != nil {
				return err
			}
			in.env[v.Var] = val
		case StateUpdate:
			if _, err := in.stateOp(v.Field, v.Op, v.Args); err != nil {
				return err
			}
		case Return:
			val, err := in.eval(v.Expr)
			if err != nil {
				return err
			}
			in.returned = true
			in.retVal = val
		case ForEach:
			over, err := in.eval(v.Over)
			if err != nil {
				return err
			}
			switch m := over.(type) {
			case map[int64]float64:
				// Deterministic iteration order (§4.1 requires determinism
				// for replay-based recovery).
				keys := make([]int64, 0, len(m))
				for k := range m {
					keys = append(keys, k)
				}
				sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
				for _, k := range keys {
					in.env[v.KeyVar] = float64(k)
					in.env[v.ValVar] = m[k]
					if err := in.exec(v.Body); err != nil {
						return err
					}
				}
			case []float64:
				for i, x := range m {
					in.env[v.KeyVar] = float64(i)
					in.env[v.ValVar] = x
					if err := in.exec(v.Body); err != nil {
						return err
					}
				}
			default:
				return fmt.Errorf("translator: ForEach over %T", over)
			}
		case If:
			cond, err := in.eval(v.Cond)
			if err != nil {
				return err
			}
			if truthy(cond) {
				if err := in.exec(v.Then); err != nil {
					return err
				}
			} else if err := in.exec(v.Else); err != nil {
				return err
			}
		default:
			return fmt.Errorf("translator: unknown statement %T", s)
		}
	}
	return nil
}

func (in *interp) eval(e Expr) (any, error) {
	switch v := e.(type) {
	case Const:
		return v.Value, nil
	case Var:
		val, ok := in.env[v.Name]
		if !ok {
			return nil, fmt.Errorf("translator: unbound variable %q", v.Name)
		}
		return val, nil
	case BinOp:
		l, err := in.eval(v.L)
		if err != nil {
			return nil, err
		}
		r, err := in.eval(v.R)
		if err != nil {
			return nil, err
		}
		return binop(v.Op, l, r)
	case StateRead:
		return in.stateOp(v.Field, v.Op, v.Args)
	case MergeCall:
		fn, ok := in.prog.MergeFuncs[v.Func]
		if !ok {
			return nil, fmt.Errorf("translator: unknown merge function %q", v.Func)
		}
		parts := make([]any, 0, len(in.coll))
		for _, env := range in.coll {
			parts = append(parts, env.Vars[v.Arg.Name])
		}
		return fn(parts), nil
	default:
		return nil, fmt.Errorf("translator: unknown expression %T", e)
	}
}

// stateOp dispatches a state access to the local store instance through a
// per-store-type operation whitelist.
func (in *interp) stateOp(field, op string, args []Expr) (any, error) {
	st := in.ctx.Store()
	if st == nil {
		return nil, fmt.Errorf("translator: TE has no state but accesses %q", field)
	}
	vals := make([]any, len(args))
	for i, a := range args {
		v, err := in.eval(a)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	switch s := st.(type) {
	case *state.Matrix:
		switch op {
		case "set":
			s.Set(toI64(vals[0]), toI64(vals[1]), toF64(vals[2]))
			return nil, nil
		case "add":
			return s.Add(toI64(vals[0]), toI64(vals[1]), toF64(vals[2])), nil
		case "get":
			return s.Get(toI64(vals[0]), toI64(vals[1])), nil
		case "row":
			return s.RowVec(toI64(vals[0])), nil
		case "mulvec":
			m, ok := vals[0].(map[int64]float64)
			if !ok {
				return nil, fmt.Errorf("translator: mulvec needs a row vector, got %T", vals[0])
			}
			return s.MulVec(m), nil
		}
	case *state.KVMap:
		switch op {
		case "put":
			s.Put(hashValue(vals[0]), toBytes(vals[1]))
			return nil, nil
		case "get":
			v, ok := s.Get(hashValue(vals[0]))
			if !ok {
				return nil, nil
			}
			return v, nil
		case "delete":
			return s.Delete(hashValue(vals[0])), nil
		}
	case *state.Vector:
		switch op {
		case "set":
			s.Set(int(toI64(vals[0])), toF64(vals[1]))
			return nil, nil
		case "add":
			return s.Add(int(toI64(vals[0])), toF64(vals[1])), nil
		case "get":
			return s.Get(int(toI64(vals[0]))), nil
		case "snapshot":
			return s.Snapshot(), nil
		}
	}
	return nil, fmt.Errorf("translator: store %T has no operation %q", st, op)
}

func binop(op string, l, r any) (any, error) {
	lf, rf := toF64(l), toF64(r)
	switch op {
	case "+":
		return lf + rf, nil
	case "-":
		return lf - rf, nil
	case "*":
		return lf * rf, nil
	case "/":
		if rf == 0 {
			return math.NaN(), nil
		}
		return lf / rf, nil
	case ">":
		return lf > rf, nil
	case "<":
		return lf < rf, nil
	case ">=":
		return lf >= rf, nil
	case "<=":
		return lf <= rf, nil
	case "==":
		return lf == rf, nil
	case "!=":
		return lf != rf, nil
	default:
		return nil, fmt.Errorf("translator: unknown operator %q", op)
	}
}

func truthy(v any) bool {
	switch x := v.(type) {
	case bool:
		return x
	case float64:
		return x != 0
	case int:
		return x != 0
	case int64:
		return x != 0
	case nil:
		return false
	default:
		return true
	}
}

func toF64(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case int:
		return float64(x)
	case int64:
		return float64(x)
	case uint64:
		return float64(x)
	case bool:
		if x {
			return 1
		}
		return 0
	default:
		return 0
	}
}

func toI64(v any) int64 {
	switch x := v.(type) {
	case int64:
		return x
	case int:
		return int64(x)
	case float64:
		return int64(x)
	case uint64:
		return int64(x)
	default:
		return 0
	}
}

func toBytes(v any) []byte {
	switch x := v.(type) {
	case []byte:
		return x
	case string:
		return []byte(x)
	default:
		return []byte(fmt.Sprint(x))
	}
}

// hashValue maps an arbitrary key value to a dispatch key, keeping integral
// values stable so partitioned routing agrees with state partitioning.
func hashValue(v any) uint64 {
	switch x := v.(type) {
	case uint64:
		return x
	case int:
		return uint64(x)
	case int64:
		return uint64(x)
	case float64:
		if x == math.Trunc(x) {
			return uint64(int64(x))
		}
		return math.Float64bits(x)
	case string:
		h := fnv.New64a()
		h.Write([]byte(x))
		return h.Sum64()
	default:
		h := fnv.New64a()
		fmt.Fprint(h, x)
		return h.Sum64()
	}
}
