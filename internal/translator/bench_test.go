package translator

import (
	"testing"
	"time"

	"repro/internal/runtime"
)

func BenchmarkTranslateCF(b *testing.B) {
	p := cfProgram()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Translate(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpretedAddRating measures the end-to-end cost of one
// translated imperative call: IR interpretation + state access + live
// variable dispatch. Compare with the hand-written cf app benches to see
// the interpreter's overhead over compiled task functions.
func BenchmarkInterpretedAddRating(b *testing.B) {
	app, err := DeployProgram(cfProgram(), runtime.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer app.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := app.Invoke("addRating", i%500, i%100, 1+i%5); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	app.Runtime().Drain(30 * time.Second)
}

func BenchmarkInterpretedGetRec(b *testing.B) {
	app, err := DeployProgram(cfProgram(), runtime.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer app.Stop()
	for i := 0; i < 200; i++ {
		_ = app.Invoke("addRating", i%50, i%20, 1+i%5)
	}
	app.Runtime().Drain(30 * time.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := app.Call("getRec", 30*time.Second, i%50); err != nil {
			b.Fatal(err)
		}
	}
}
