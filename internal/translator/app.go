package translator

import (
	"fmt"
	"time"

	"repro/internal/runtime"
)

// App is a translated program deployed on the SDG runtime: the analog of a
// java2sdg-produced job running on the paper's prototype.
type App struct {
	rt   *runtime.Runtime
	plan *Plan
	// methodEntry maps method name -> entry TE name (they coincide today,
	// kept explicit for clarity).
	methodEntry map[string]string
	params      map[string][]string
}

// DeployProgram translates the program and deploys the resulting SDG.
func DeployProgram(p *Program, opts runtime.Options) (*App, error) {
	plan, err := Translate(p)
	if err != nil {
		return nil, err
	}
	rt, err := runtime.Deploy(plan.Graph, opts)
	if err != nil {
		return nil, err
	}
	app := &App{
		rt:          rt,
		plan:        plan,
		methodEntry: map[string]string{},
		params:      map[string][]string{},
	}
	for _, m := range p.Methods {
		app.methodEntry[m.Name] = m.Name
		app.params[m.Name] = m.Params
	}
	return app, nil
}

// bind packs positional arguments into the entry environment and derives
// the dispatch key from the entry's partitioned-access key variable.
func (a *App) bind(method string, args []any) (Env, uint64, error) {
	entry, ok := a.methodEntry[method]
	if !ok {
		return Env{}, 0, fmt.Errorf("translator: unknown method %q", method)
	}
	params := a.params[method]
	if len(args) != len(params) {
		return Env{}, 0, fmt.Errorf("translator: method %q takes %d arguments, got %d",
			method, len(params), len(args))
	}
	env := Env{Vars: make(map[string]any, len(args))}
	for i, p := range params {
		env.Vars[p] = args[i]
	}
	var key uint64
	if kv := a.plan.EntryKey[entry]; kv != "" {
		val, ok := env.Vars[kv]
		if !ok {
			return Env{}, 0, fmt.Errorf("translator: method %q key variable %q is not a parameter",
				method, kv)
		}
		key = hashValue(val)
	}
	return env, key, nil
}

// Invoke runs a method fire-and-forget (e.g. addRating).
func (a *App) Invoke(method string, args ...any) error {
	env, key, err := a.bind(method, args)
	if err != nil {
		return err
	}
	return a.rt.Inject(a.methodEntry[method], key, env)
}

// Call runs a method and waits for its Return value (e.g. getRec).
func (a *App) Call(method string, timeout time.Duration, args ...any) (any, error) {
	env, key, err := a.bind(method, args)
	if err != nil {
		return nil, err
	}
	return a.rt.Call(a.methodEntry[method], key, env, timeout)
}

// Plan exposes the translation artefacts.
func (a *App) Plan() *Plan { return a.plan }

// Runtime exposes the underlying runtime.
func (a *App) Runtime() *runtime.Runtime { return a.rt }

// Stop shuts the deployment down.
func (a *App) Stop() { a.rt.Stop() }
