package translator

import (
	"errors"
	"fmt"
)

// ErrUntranslatable wraps programs that violate the restrictions of §4.1.
var ErrUntranslatable = errors.New("translator: program cannot be translated")

func untranslatable(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrUntranslatable, fmt.Sprintf(format, args...))
}

// accessMode classifies one state access (§4.2 step 3).
type accessMode int

const (
	accessNone accessMode = iota
	accessByKey
	accessLocal
	accessGlobal
)

func (m accessMode) String() string {
	switch m {
	case accessByKey:
		return "partitioned"
	case accessLocal:
		return "local"
	case accessGlobal:
		return "global"
	default:
		return "none"
	}
}

// access describes the state access of one statement.
type access struct {
	field  string
	mode   accessMode
	keyVar string // partitioned access key variable (reaching expression)
	merge  string // merge function name for @Collection statements
}

// keyVarOf recovers the variable the key expression derives from — the
// "reaching expression analysis" of §4.2 rule 2, restricted to expressions
// rooted at a single variable.
func keyVarOf(e Expr) (string, error) {
	switch v := e.(type) {
	case Var:
		return v.Name, nil
	case BinOp:
		lv, lerr := keyVarOf(v.L)
		rv, rerr := keyVarOf(v.R)
		switch {
		case lerr == nil && rerr != nil:
			return lv, nil
		case lerr != nil && rerr == nil:
			return rv, nil
		case lerr == nil && rerr == nil && lv == rv:
			return lv, nil
		}
		return "", untranslatable("key expression mixes variables")
	case Const:
		return "", untranslatable("constant key expression has no access variable")
	default:
		return "", untranslatable("unsupported key expression %T", e)
	}
}

// analyzer resolves field annotations.
type analyzer struct {
	fields map[string]Field
}

func newAnalyzer(p *Program) (*analyzer, error) {
	a := &analyzer{fields: make(map[string]Field, len(p.Fields))}
	for _, f := range p.Fields {
		if _, dup := a.fields[f.Name]; dup {
			return nil, untranslatable("duplicate state field %q", f.Name)
		}
		a.fields[f.Name] = f
	}
	return a, nil
}

// exprAccesses collects state accesses appearing inside an expression.
func (a *analyzer) exprAccesses(e Expr) ([]access, error) {
	switch v := e.(type) {
	case Var, Const:
		return nil, nil
	case BinOp:
		l, err := a.exprAccesses(v.L)
		if err != nil {
			return nil, err
		}
		r, err := a.exprAccesses(v.R)
		if err != nil {
			return nil, err
		}
		return append(l, r...), nil
	case MergeCall:
		return []access{{merge: v.Func}}, nil
	case StateRead:
		f, ok := a.fields[v.Field]
		if !ok {
			return nil, untranslatable("read of unknown state field %q", v.Field)
		}
		acc := access{field: v.Field}
		switch {
		case f.Ann == AnnPartitioned:
			if v.Global {
				return nil, untranslatable("@Global access to partitioned field %q", v.Field)
			}
			acc.mode = accessByKey
			if len(v.Args) == 0 {
				return nil, untranslatable("partitioned read of %q needs a key argument", v.Field)
			}
			kv, err := keyVarOf(v.Args[0])
			if err != nil {
				return nil, err
			}
			acc.keyVar = kv
		case v.Global:
			acc.mode = accessGlobal
		default:
			acc.mode = accessLocal
		}
		for _, arg := range v.Args {
			nested, err := a.exprAccesses(arg)
			if err != nil {
				return nil, err
			}
			if len(nested) > 0 {
				return nil, untranslatable("nested state access in arguments of %s.%s", v.Field, v.Op)
			}
		}
		return []access{acc}, nil
	default:
		return nil, untranslatable("unknown expression %T", e)
	}
}

// stmtAccess folds a statement's state accesses into at most one access
// (access edges form a partial function: one SE per TE, §3.1).
func (a *analyzer) stmtAccess(s Stmt) (access, error) {
	var accs []access
	collect := func(e Expr) error {
		got, err := a.exprAccesses(e)
		if err != nil {
			return err
		}
		accs = append(accs, got...)
		return nil
	}
	switch v := s.(type) {
	case Assign:
		if err := collect(v.Expr); err != nil {
			return access{}, err
		}
	case Return:
		if err := collect(v.Expr); err != nil {
			return access{}, err
		}
	case StateUpdate:
		f, ok := a.fields[v.Field]
		if !ok {
			return access{}, untranslatable("update of unknown state field %q", v.Field)
		}
		acc := access{field: v.Field}
		if f.Ann == AnnPartitioned {
			acc.mode = accessByKey
			if len(v.Args) == 0 {
				return access{}, untranslatable("partitioned update of %q needs a key argument", v.Field)
			}
			kv, err := keyVarOf(v.Args[0])
			if err != nil {
				return access{}, err
			}
			acc.keyVar = kv
		} else {
			acc.mode = accessLocal
		}
		accs = append(accs, acc)
		for _, arg := range v.Args {
			if err := collect(arg); err != nil {
				return access{}, err
			}
		}
	case ForEach:
		if err := collect(v.Over); err != nil {
			return access{}, err
		}
		for _, inner := range v.Body {
			in, err := a.stmtAccess(inner)
			if err != nil {
				return access{}, err
			}
			if in.mode != accessNone || in.merge != "" {
				accs = append(accs, in)
			}
		}
	case If:
		if err := collect(v.Cond); err != nil {
			return access{}, err
		}
		for _, arm := range [][]Stmt{v.Then, v.Else} {
			for _, inner := range arm {
				in, err := a.stmtAccess(inner)
				if err != nil {
					return access{}, err
				}
				if in.mode != accessNone || in.merge != "" {
					accs = append(accs, in)
				}
			}
		}
	default:
		return access{}, untranslatable("unknown statement %T", s)
	}

	// Fold: all accesses of one statement must agree on a single SE and
	// mode; for partitioned accesses the key variable must be unique (§3.2:
	// "TEs cannot access partitioned SEs using conflicting strategies").
	var out access
	for _, acc := range accs {
		if acc.merge != "" {
			if out.merge != "" && out.merge != acc.merge {
				return access{}, untranslatable("statement invokes two merge functions")
			}
			out.merge = acc.merge
			continue
		}
		if out.mode == accessNone {
			out.field, out.mode, out.keyVar = acc.field, acc.mode, acc.keyVar
			continue
		}
		if out.field != acc.field || out.mode != acc.mode || out.keyVar != acc.keyVar {
			return access{}, untranslatable(
				"statement accesses %s(%v key=%q) and %s(%v key=%q); one TE may access one SE one way",
				out.field, out.mode, out.keyVar, acc.field, acc.mode, acc.keyVar)
		}
	}
	return out, nil
}

// use/def analysis for live variables (§4.2 step 5).

func exprUses(e Expr, into map[string]bool) {
	switch v := e.(type) {
	case Var:
		into[v.Name] = true
	case Const:
	case BinOp:
		exprUses(v.L, into)
		exprUses(v.R, into)
	case StateRead:
		for _, a := range v.Args {
			exprUses(a, into)
		}
	case MergeCall:
		into[v.Arg.Name] = true
	}
}

// stmtUseDef reports the variables a statement uses and defines. ForEach
// and If define nothing for downstream purposes (their bodies may not
// execute), which keeps liveness conservative.
func stmtUseDef(s Stmt) (use map[string]bool, def map[string]bool) {
	use = map[string]bool{}
	def = map[string]bool{}
	switch v := s.(type) {
	case Assign:
		exprUses(v.Expr, use)
		def[v.Var] = true
	case StateUpdate:
		for _, a := range v.Args {
			exprUses(a, use)
		}
	case Return:
		exprUses(v.Expr, use)
	case ForEach:
		exprUses(v.Over, use)
		inner := liveIn(v.Body, map[string]bool{})
		for name := range inner {
			if name != v.KeyVar && name != v.ValVar {
				use[name] = true
			}
		}
	case If:
		exprUses(v.Cond, use)
		for _, arm := range [][]Stmt{v.Then, v.Else} {
			inner := liveIn(arm, map[string]bool{})
			for name := range inner {
				use[name] = true
			}
		}
	}
	return use, def
}

// liveIn computes the live variables at the entry of a statement sequence,
// given the set live at its exit (standard backward dataflow).
func liveIn(stmts []Stmt, liveOut map[string]bool) map[string]bool {
	live := map[string]bool{}
	for name := range liveOut {
		live[name] = true
	}
	for i := len(stmts) - 1; i >= 0; i-- {
		use, def := stmtUseDef(stmts[i])
		for name := range def {
			delete(live, name)
		}
		for name := range use {
			live[name] = true
		}
	}
	return live
}
