// Package wiresafe is the compile-time half of the wire-safety gate.
//
// flat.CheckWireSafe rejects chans, funcs, unsafe.Pointers, and unexported
// struct fields at the *sender at runtime* — gob would drop or mangle them
// silently, which in a replicated-state system becomes divergence that
// surfaces long after the bug. This analyzer runs the same structural walk
// over the static type of every wire.Register argument, so an unsendable
// type fails CI instead of panicking the first worker that emits it. The
// runtime walk stays as defense-in-depth for interface-typed fields, whose
// dynamic contents no static check can see.
//
// It also flags direct gob.Register calls outside repro/internal/wire:
// they register a type for the wire while skipping CheckWireSafe entirely.
package wiresafe

import (
	"fmt"
	"go/ast"
	"go/types"

	"repro/internal/analysis/anz"
)

var Analyzer = &anz.Analyzer{
	Name: "wiresafe",
	Doc: "report chans, funcs, unsafe.Pointers, and unexported fields reachable from " +
		"wire.Register'd types, and gob.Register calls that bypass the wire-safety gate",
	Run: run,
}

const wirePkg = "repro/internal/wire"

func run(pass *anz.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			obj := calleeObj(pass.TypesInfo, call.Fun)
			fn, ok := obj.(*types.Func)
			if !ok || fn.Name() != "Register" || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case wirePkg:
				tv, ok := pass.TypesInfo.Types[call.Args[0]]
				if !ok {
					return true
				}
				w := &walker{seen: map[types.Type]bool{}}
				w.check(tv.Type, types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
				for _, p := range w.problems {
					pass.Reportf(call.Args[0].Pos(), "wire-registered type is not wire-safe: %s", p)
				}
			case "encoding/gob":
				if pass.Pkg.Path() != wirePkg {
					pass.Reportf(call.Pos(), "direct gob.Register bypasses the wire-safety gate; use wire.Register so CheckWireSafe applies")
				}
			}
			return true
		})
	}
	return nil
}

// walker mirrors flat.checkType over go/types instead of reflect.
type walker struct {
	seen     map[types.Type]bool
	problems []string
}

func (w *walker) check(t types.Type, path string) {
	if w.seen[t] {
		return
	}
	w.seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Chan:
		w.problems = append(w.problems, fmt.Sprintf("%s is a chan (%s)", path, t))
	case *types.Signature:
		w.problems = append(w.problems, fmt.Sprintf("%s is a func (%s)", path, t))
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			w.problems = append(w.problems, fmt.Sprintf("%s is an unsafe.Pointer", path))
		}
	case *types.Interface:
		// Dynamic contents are checked per value by the runtime walk.
	case *types.Pointer:
		w.check(u.Elem(), path)
	case *types.Slice:
		w.check(u.Elem(), path+"[]")
	case *types.Array:
		w.check(u.Elem(), path+"[]")
	case *types.Map:
		w.check(u.Key(), path+" key")
		w.check(u.Elem(), path+" value")
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !f.Exported() {
				w.problems = append(w.problems, fmt.Sprintf("%s has unexported field %q (gob drops it silently)", path, f.Name()))
				continue
			}
			w.check(f.Type(), path+"."+f.Name())
		}
	}
}

func calleeObj(info *types.Info, fun ast.Expr) types.Object {
	switch fun := fun.(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	case *ast.ParenExpr:
		return calleeObj(info, fun.X)
	}
	return nil
}
