// Package b exercises the wiresafe analyzer against real wire.Register
// calls: the testdata package imports the actual repro/internal/wire, so
// the check runs on exactly the registration path production code uses.
package b

import (
	"encoding/gob"

	"repro/internal/wire"
)

// Clean message: exported fields, wire-encodable kinds all the way down.
type Good struct {
	Key   string
	Vals  []float64
	Parts map[int][]byte
	Next  *Good
}

// BadChan smuggles a channel behind a pointer and a slice.
type BadChan struct {
	Name  string
	Acks  []*chanBox
	Reply chan int
}

type chanBox struct {
	C chan string
}

// BadFunc carries a callback.
type BadFunc struct {
	OnDone func() error
}

// BadHidden has an unexported field gob would drop silently.
type BadHidden struct {
	ID  int
	seq uint64
}

// Iface stops the static walk: dynamic contents are the runtime walk's job.
type Iface struct {
	Payload any
}

func register() {
	wire.Register(Good{})
	wire.Register(Iface{})
	wire.Register(BadChan{})   // want `BadChan.Reply is a chan` `BadChan.Acks\[\].C is a chan`
	wire.Register(BadFunc{})   // want `BadFunc.OnDone is a func`
	wire.Register(BadHidden{}) // want `BadHidden has unexported field "seq"`
	gob.Register(Good{})       // want `direct gob.Register bypasses the wire-safety gate`
	//sdg:ignore wiresafe -- exercising the suppression path in testdata
	gob.Register(Iface{})
}
