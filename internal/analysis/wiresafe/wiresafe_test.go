package wiresafe_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/anztest"
	"repro/internal/analysis/wiresafe"
)

func TestWireSafe(t *testing.T) {
	anztest.Run(t, wiresafe.Analyzer, filepath.Join("testdata", "src", "b"))
}
