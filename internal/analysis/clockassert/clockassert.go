// Package clockassert enforces the PR 1 deflaking policy in test code:
// wall-clock measurements must not feed upper-bound or ratio assertions.
//
// A test that fails when elapsed time exceeds a bound ("took too long") or
// when two measured durations disagree by a ratio is a test of the CI
// machine's scheduler, not of the code — PR 1 removed a class of such
// flakes and the ban has been review-enforced since. This analyzer makes
// it mechanical: in _test.go files, any comparison derived from time.Now /
// time.Since / time.Until that guards a t.Error/t.Fatal-style failure is
// flagged when it is an upper bound (fails for large elapsed) or when both
// sides are measured. Lower bounds ("a retry must not fire before its
// backoff") remain allowed: load can only make them pass.
//
// The allowlist is //sdg:ignore clockassert -- <why>, which records the
// justification next to the assertion it exempts.
package clockassert

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/anz"
)

var Analyzer = &anz.Analyzer{
	Name: "clockassert",
	Doc: "forbid wall-clock (time.Now/Since) upper-bound and ratio assertions in tests " +
		"(PR 1 deflaking policy); lower-bound waits stay legal",
	Run: run,
}

func run(pass *anz.Pass) error {
	for _, f := range pass.Files {
		if !pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				analyzeFunc(pass, fd)
			}
		}
	}
	return nil
}

type funcState struct {
	pass    *anz.Pass
	tainted map[types.Object]bool // vars derived from wall-clock reads
}

func analyzeFunc(pass *anz.Pass, fd *ast.FuncDecl) {
	st := &funcState{pass: pass, tainted: map[types.Object]bool{}}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !st.taintedExpr(as.Rhs[i]) {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj != nil && !st.tainted[obj] {
					st.tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if containsFailure(pass, ifs.Body) {
			st.checkCond(ifs.Cond, false)
		}
		if ifs.Else != nil && containsFailure(pass, ifs.Else) {
			st.checkCond(ifs.Cond, true)
		}
		return true
	})
}

// checkCond walks a failure-guarding condition; neg means the failure runs
// when the condition is false (else-branch), so bound directions invert.
func (st *funcState) checkCond(cond ast.Expr, neg bool) {
	switch e := cond.(type) {
	case *ast.ParenExpr:
		st.checkCond(e.X, neg)
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			st.checkCond(e.X, !neg)
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND, token.LOR:
			st.checkCond(e.X, neg)
			st.checkCond(e.Y, neg)
			return
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
		default:
			return
		}
		lt, rt := st.taintedExpr(e.X), st.taintedExpr(e.Y)
		switch {
		case lt && rt:
			st.pass.Reportf(e.Pos(), "wall-clock ratio assertion: both sides derive from time.Now/time.Since, so the test measures the CI scheduler (PR 1 deflaking policy); assert logical ordering, or //sdg:ignore clockassert -- <why>")
		case lt || rt:
			// Effective direction of the measured side when the failure
			// fires: GTR means "fails when elapsed is large" = upper bound.
			upper := (lt && (e.Op == token.GTR || e.Op == token.GEQ)) ||
				(rt && (e.Op == token.LSS || e.Op == token.LEQ))
			if neg {
				upper = !upper
			}
			if upper {
				st.pass.Reportf(e.Pos(), "wall-clock upper-bound assertion: failing when elapsed time exceeds a bound is flaky under CI load (PR 1 deflaking policy); assert a lower bound or logical ordering, or //sdg:ignore clockassert -- <why>")
			}
		}
	}
}

// taintedExpr reports whether e derives from a wall-clock read.
func (st *funcState) taintedExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return st.taintedExpr(e.X)
	case *ast.Ident:
		obj := st.pass.TypesInfo.Uses[e]
		return obj != nil && st.tainted[obj]
	case *ast.SelectorExpr:
		return st.taintedExpr(e.X)
	case *ast.BinaryExpr:
		return st.taintedExpr(e.X) || st.taintedExpr(e.Y)
	case *ast.UnaryExpr:
		return st.taintedExpr(e.X)
	case *ast.CallExpr:
		if fn, ok := calleeObj(st.pass.TypesInfo, e.Fun).(*types.Func); ok &&
			fn.Pkg() != nil && fn.Pkg().Path() == "time" {
			switch fn.Name() {
			case "Now", "Since", "Until":
				return true
			}
		}
		// Conversions and calls propagate taint from receiver or args:
		// elapsed.Seconds(), float64(elapsed), a.Sub(b), max(elapsed, x).
		if sel, ok := unparen(e.Fun).(*ast.SelectorExpr); ok && st.taintedExpr(sel.X) {
			return true
		}
		for _, arg := range e.Args {
			if st.taintedExpr(arg) {
				return true
			}
		}
	}
	return false
}

// containsFailure reports whether the branch calls a testing failure
// method (t.Error*, t.Fatal*, t.Fail*).
func containsFailure(pass *anz.Pass, branch ast.Node) bool {
	found := false
	ast.Inspect(branch, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := calleeObj(pass.TypesInfo, call.Fun).(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "testing" {
			return true
		}
		switch fn.Name() {
		case "Error", "Errorf", "Fatal", "Fatalf", "Fail", "FailNow":
			found = true
			return false
		}
		return true
	})
	return found
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func calleeObj(info *types.Info, fun ast.Expr) types.Object {
	switch fun := fun.(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	case *ast.ParenExpr:
		return calleeObj(info, fun.X)
	}
	return nil
}
