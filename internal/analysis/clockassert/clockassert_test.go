package clockassert_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/anztest"
	"repro/internal/analysis/clockassert"
)

func TestClockAssert(t *testing.T) {
	anztest.Run(t, clockassert.Analyzer, filepath.Join("testdata", "src", "d"))
}
