// Package d exercises the clockassert analyzer: the PR 1 ban on wall-clock
// upper-bound and ratio assertions, with the lower-bound and polling shapes
// that must stay legal.
package d

import (
	"testing"
	"time"
)

func TestUpperBoundFlagged(t *testing.T) {
	start := time.Now()
	work()
	elapsed := time.Since(start)
	if elapsed > 50*time.Millisecond { // want `wall-clock upper-bound assertion`
		t.Fatalf("too slow: %v", elapsed)
	}
}

func TestUpperBoundReversedOperands(t *testing.T) {
	start := time.Now()
	work()
	if 100*time.Millisecond < time.Since(start) { // want `wall-clock upper-bound assertion`
		t.Error("too slow")
	}
}

func TestUpperBoundViaElse(t *testing.T) {
	start := time.Now()
	work()
	if time.Since(start) <= time.Second { // want `wall-clock upper-bound assertion`
		work()
	} else {
		// Failure on the else branch: the bound direction inverts, and
		// "fails unless under a second" is still an upper bound.
		t.Fatal("too slow")
	}
}

func TestUpperBoundNegated(t *testing.T) {
	start := time.Now()
	work()
	if !(time.Since(start) < time.Second) { // want `wall-clock upper-bound assertion`
		t.Fatal("too slow")
	}
}

func TestRatioFlagged(t *testing.T) {
	s1 := time.Now()
	work()
	fast := time.Since(s1)
	s2 := time.Now()
	work()
	work()
	slow := time.Since(s2)
	if slow > 10*fast { // want `wall-clock ratio assertion`
		t.Errorf("not proportional: %v vs %v", slow, fast)
	}
}

func TestLowerBoundAllowed(t *testing.T) {
	start := time.Now()
	work()
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("retry fired before its backoff") // load can only make this pass
	}
}

func TestPollingLoopAllowed(t *testing.T) {
	deadline := 100 * time.Millisecond
	start := time.Now()
	for time.Since(start) < deadline { // not a failure guard: legal
		work()
	}
}

func TestNonClockComparisonAllowed(t *testing.T) {
	if 3 > 2 {
		t.Log("fine")
	}
	n := 5
	if n > 4 {
		t.Errorf("not wall-clock")
	}
}

func TestSuppressedWithJustification(t *testing.T) {
	start := time.Now()
	work()
	//sdg:ignore clockassert -- measures a 10s sleep against a 60s bound; 6x headroom cannot flake
	if time.Since(start) > time.Minute {
		t.Fatal("wildly slow")
	}
}

func work() {}
