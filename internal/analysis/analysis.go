// Package analysis registers the repository's static-invariant analyzers.
// cmd/sdg-lint runs them all; each one also has its own analysistest-style
// suite under its package's testdata directory.
package analysis

import (
	"repro/internal/analysis/anz"
	"repro/internal/analysis/borrowcopy"
	"repro/internal/analysis/clockassert"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/wiresafe"
)

// All returns every registered analyzer, in stable order.
func All() []*anz.Analyzer {
	return []*anz.Analyzer{
		borrowcopy.Analyzer,
		clockassert.Analyzer,
		lockorder.Analyzer,
		wiresafe.Analyzer,
	}
}
