// Package borrowcopy tracks byte slices handed out by the flat codec's
// borrow mode and reports stores that let them outlive the handler frame.
//
// flat.NewBorrowDecoder (and Decoder.Init with borrow=true) returns
// decoders whose Blob/Value/Item results alias the caller's buffer — in
// the runtime that buffer is a pooled frame which is recycled as soon as
// the handler returns (PR 7). A borrowed slice stored into a struct field
// behind a pointer, a package variable, or a parameter silently becomes a
// read of recycled memory later. The rule enforced here: borrowed bytes
// may live in frame-local values, but any store whose destination roots at
// a parameter, a pointer, or a package-level variable must first copy
// (string(b), bytes.Clone, append into a fresh byte slice).
//
// The analysis is intra-procedural taint: sources are borrow-mode decoder
// producers (Blob, Value, Item — Str copies and is clean); taint flows
// through assignments, composite literals, field/index selection, range,
// and append-as-element; string conversion, bytes.Clone, and byte-wise
// append spread (append(dst, b...)) sanitize. Decoders whose mode the
// function cannot see (passed in as parameters) are not tracked.
package borrowcopy

import (
	"go/ast"
	"go/constant"
	"go/types"

	"repro/internal/analysis/anz"
)

var Analyzer = &anz.Analyzer{
	Name: "borrowcopy",
	Doc: "report borrow-mode flat.Decoder bytes stored where they outlive the " +
		"handler frame (pooled frames are recycled on return)",
	Run: run,
}

const flatPkg = "repro/internal/wire/flat"

var producers = map[string]bool{"Blob": true, "Value": true, "Item": true}

func run(pass *anz.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				analyzeFunc(pass, fd)
			}
		}
	}
	return nil
}

type funcState struct {
	pass    *anz.Pass
	params  map[types.Object]bool // parameters and receiver
	dec     map[types.Object]bool // borrow-mode decoder vars
	tainted map[types.Object]bool // vars holding borrowed bytes
}

func analyzeFunc(pass *anz.Pass, fd *ast.FuncDecl) {
	st := &funcState{
		pass:    pass,
		params:  map[types.Object]bool{},
		dec:     map[types.Object]bool{},
		tainted: map[types.Object]bool{},
	}
	collectParams(pass, fd, st.params)
	// Fixpoint: closures share the enclosing scope, so the whole body —
	// nested function literals included — is analyzed as one taint region.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				changed = st.propagateAssign(n) || changed
			case *ast.GenDecl:
				for _, spec := range n.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						changed = st.propagateValueSpec(vs) || changed
					}
				}
			case *ast.RangeStmt:
				changed = st.propagateRange(n) || changed
			case *ast.CallExpr:
				changed = st.noteInit(n) || changed
			}
			return true
		})
	}
	// Sink scan: stores of tainted values into escaping destinations.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			if _, isIdent := lhs.(*ast.Ident); isIdent {
				continue
			}
			if !st.taintedExpr(as.Rhs[i]) {
				continue
			}
			if st.escapes(lhs) {
				pass.Reportf(as.Pos(), "borrowed flat-decoder bytes stored into %s, which outlives the handler frame; copy first (string(b), bytes.Clone, or append into a fresh slice)",
					exprString(lhs))
			}
		}
		return true
	})
}

func collectParams(pass *anz.Pass, fd *ast.FuncDecl, out map[types.Object]bool) {
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
}

// noteInit marks `d.Init(buf, borrow)` receivers as borrow decoders unless
// borrow is constant false.
func (st *funcState) noteInit(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Init" || len(call.Args) != 2 {
		return false
	}
	fn, ok := st.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != flatPkg {
		return false
	}
	if tv, ok := st.pass.TypesInfo.Types[call.Args[1]]; ok && tv.Value != nil &&
		tv.Value.Kind() == constant.Bool && !constant.BoolVal(tv.Value) {
		return false
	}
	obj := rootObj(st.pass, sel.X)
	if obj == nil || st.dec[obj] {
		return false
	}
	st.dec[obj] = true
	return true
}

func (st *funcState) propagateAssign(as *ast.AssignStmt) bool {
	if len(as.Lhs) != len(as.Rhs) {
		return false
	}
	changed := false
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		obj := st.pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = st.pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			continue
		}
		if st.isBorrowDecoder(as.Rhs[i]) && !st.dec[obj] {
			st.dec[obj] = true
			changed = true
		}
		if st.taintedExpr(as.Rhs[i]) && !st.tainted[obj] {
			st.tainted[obj] = true
			changed = true
		}
	}
	return changed
}

func (st *funcState) propagateValueSpec(vs *ast.ValueSpec) bool {
	changed := false
	for i, name := range vs.Names {
		if i >= len(vs.Values) {
			break
		}
		obj := st.pass.TypesInfo.Defs[name]
		if obj == nil {
			continue
		}
		if st.isBorrowDecoder(vs.Values[i]) && !st.dec[obj] {
			st.dec[obj] = true
			changed = true
		}
		if st.taintedExpr(vs.Values[i]) && !st.tainted[obj] {
			st.tainted[obj] = true
			changed = true
		}
	}
	return changed
}

func (st *funcState) propagateRange(r *ast.RangeStmt) bool {
	if !st.taintedExpr(r.X) {
		return false
	}
	id, ok := r.Value.(*ast.Ident)
	if !ok {
		return false
	}
	obj := st.pass.TypesInfo.Defs[id]
	if obj == nil || st.tainted[obj] {
		return false
	}
	st.tainted[obj] = true
	return true
}

// isBorrowDecoder reports whether e evaluates to a borrow-mode decoder:
// a flat.NewBorrowDecoder call or an alias of a known decoder var.
func (st *funcState) isBorrowDecoder(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return st.isBorrowDecoder(e.X)
	case *ast.Ident:
		obj := st.pass.TypesInfo.Uses[e]
		return obj != nil && st.dec[obj]
	case *ast.CallExpr:
		fn, ok := calleeObj(st.pass.TypesInfo, e.Fun).(*types.Func)
		return ok && fn.Name() == "NewBorrowDecoder" && fn.Pkg() != nil && fn.Pkg().Path() == flatPkg
	}
	return false
}

// taintedExpr reports whether e may hold borrowed bytes.
func (st *funcState) taintedExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return st.taintedExpr(e.X)
	case *ast.Ident:
		obj := st.pass.TypesInfo.Uses[e]
		return obj != nil && st.tainted[obj]
	case *ast.SelectorExpr:
		return st.taintedExpr(e.X)
	case *ast.IndexExpr:
		return st.taintedExpr(e.X)
	case *ast.SliceExpr:
		return st.taintedExpr(e.X)
	case *ast.StarExpr:
		return st.taintedExpr(e.X)
	case *ast.UnaryExpr:
		return st.taintedExpr(e.X)
	case *ast.TypeAssertExpr:
		return st.taintedExpr(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if st.taintedExpr(el) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		return st.taintedCall(e)
	}
	return false
}

func (st *funcState) taintedCall(call *ast.CallExpr) bool {
	// Conversions sanitize when the target copies (string) and otherwise
	// preserve taint ([]byte(x), named-type conversions).
	if fun := unparen(call.Fun); len(call.Args) == 1 {
		if tv, ok := st.pass.TypesInfo.Types[fun]; ok && tv.IsType() {
			if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
				return false
			}
			return st.taintedExpr(call.Args[0])
		}
	}
	fn, _ := calleeObj(st.pass.TypesInfo, call.Fun).(*types.Func)
	if fn != nil {
		// Producers on a borrow-mode decoder are the taint sources.
		if producers[fn.Name()] && fn.Pkg() != nil && fn.Pkg().Path() == flatPkg {
			if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && st.isBorrowDecoder(sel.X) {
				return true
			}
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "bytes" && fn.Name() == "Clone" {
			return false
		}
	}
	// append: spreading bytes (append(dst, b...)) copies them — taint comes
	// only from the destination or from slice-typed elements appended whole.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && isBuiltin(st.pass.TypesInfo.Uses[id]) {
		for i, arg := range call.Args {
			spread := i == len(call.Args)-1 && call.Ellipsis.IsValid()
			if spread && isByteSlice(st.pass.TypesInfo.Types[arg].Type) && i > 0 {
				continue // byte-wise copy sanitizes
			}
			if st.taintedExpr(arg) {
				return true
			}
		}
		return false
	}
	return false
}

// escapes reports whether the store destination outlives the frame: its
// root is a parameter/receiver, a package-level variable, or any
// pointer-typed variable (the pointee lives elsewhere).
func (st *funcState) escapes(lhs ast.Expr) bool {
	obj := rootObj(st.pass, lhs)
	if obj == nil {
		return true // unresolvable destination: assume it escapes
	}
	if st.params[obj] {
		return true
	}
	if v, ok := obj.(*types.Var); ok {
		if v.Parent() == st.pass.Pkg.Scope() {
			return true
		}
		if _, ok := v.Type().Underlying().(*types.Pointer); ok {
			return true
		}
	}
	return false
}

func rootObj(pass *anz.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[x]; obj != nil {
				return obj
			}
			return pass.TypesInfo.Defs[x]
		default:
			return nil
		}
	}
}

func isBuiltin(obj types.Object) bool {
	_, ok := obj.(*types.Builtin)
	return ok
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Byte
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func calleeObj(info *types.Info, fun ast.Expr) types.Object {
	switch fun := fun.(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	case *ast.ParenExpr:
		return calleeObj(info, fun.X)
	}
	return nil
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if base, ok := unparen(e.X).(*ast.Ident); ok {
			return base.Name + "." + e.Sel.Name
		}
		return "..." + "." + e.Sel.Name
	case *ast.IndexExpr:
		if base, ok := unparen(e.X).(*ast.Ident); ok {
			return base.Name + "[...]"
		}
	case *ast.StarExpr:
		if base, ok := unparen(e.X).(*ast.Ident); ok {
			return "*" + base.Name
		}
	}
	return "destination"
}
