package borrowcopy_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/anztest"
	"repro/internal/analysis/borrowcopy"
)

func TestBorrowCopy(t *testing.T) {
	anztest.Run(t, borrowcopy.Analyzer, filepath.Join("testdata", "src", "c"))
}
