// Package c exercises the borrowcopy analyzer against the real
// repro/internal/wire/flat decoder in borrow mode.
package c

import (
	"bytes"

	"repro/internal/wire/flat"
)

type msg struct {
	Key   string
	Blob  []byte
	Items [][]byte
}

var cache = map[string][]byte{}

// badStoreIntoParam aliases the pooled frame into the caller's struct —
// the exact bug class the runtime's frame pool makes fatal.
func badStoreIntoParam(body []byte, out *msg) {
	d := flat.NewBorrowDecoder(body)
	out.Blob = d.Blob() // want `borrowed flat-decoder bytes stored into out.Blob`
}

// badStoreViaLocalChain taints a local first; the store through a pointer
// root is still caught.
func badStoreViaLocalChain(body []byte, out *msg) {
	d := flat.NewBorrowDecoder(body)
	b := d.Blob()
	items := [][]byte{b}
	out.Items = items // want `borrowed flat-decoder bytes stored into out.Items`
}

// badStoreIntoPackageVar escapes into a long-lived map.
func badStoreIntoPackageVar(body []byte) {
	d := flat.NewBorrowDecoder(body)
	cache["k"] = d.Blob() // want `borrowed flat-decoder bytes stored into cache\[...\]`
}

// badAppendAsElement: appending the slice itself (not its bytes) aliases.
func badAppendAsElement(body []byte, out *msg) {
	d := flat.NewBorrowDecoder(body)
	out.Items = append(out.Items, d.Blob()) // want `borrowed flat-decoder bytes stored into out.Items`
}

// badInitBorrow: Init with borrow=true is a source too.
func badInitBorrow(body []byte, out *msg) {
	var d flat.Decoder
	d.Init(body, true)
	out.Blob = d.Blob() // want `borrowed flat-decoder bytes stored into out.Blob`
}

// goodCopyModes: every sanctioned way of keeping decoded data.
func goodCopyModes(body []byte, out *msg) {
	d := flat.NewBorrowDecoder(body)
	out.Key = d.Str()                           // Str copies internally
	out.Blob = bytes.Clone(d.Blob())            // explicit clone
	out.Blob = append([]byte(nil), d.Blob()...) // byte-wise append copies
	out.Key = string(d.Blob())                  // string conversion copies
}

// goodOwningDecoder: copy mode hands out owned slices; nothing to flag.
func goodOwningDecoder(body []byte, out *msg) {
	var d flat.Decoder
	d.Init(body, false)
	out.Blob = d.Blob()
}

// goodFrameLocal: borrowed bytes may live in frame-local values.
func goodFrameLocal(body []byte) int {
	d := flat.NewBorrowDecoder(body)
	var local msg
	local.Blob = d.Blob()
	return len(local.Blob)
}

// suppressed documents the sanctioned aliasing contract, the decodeFlat
// shape: the caller promises not to retain the message past the frame.
//
//sdg:ignore borrowcopy -- caller contract: decoded message is consumed before the frame returns to the pool
func suppressed(body []byte, out *msg) {
	d := flat.NewBorrowDecoder(body)
	out.Blob = d.Blob()
}
