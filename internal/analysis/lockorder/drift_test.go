package lockorder

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis/anz"
)

// TestAnnotationDrift parses internal/runtime and checks that its
// //sdg:lockorder and //sdg:locked annotations match RuntimeOrder exactly,
// in both directions: an annotation renamed, removed, re-ranked, or added
// without updating the declared table fails here with instructions.
func TestAnnotationDrift(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := anz.FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	got, err := parseRuntimeAnnotations(filepath.Join(root, "internal", "runtime"))
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]bool, len(RuntimeOrder))
	for _, a := range RuntimeOrder {
		want[key(a)] = true
	}
	gotSet := make(map[string]bool, len(got))
	for _, a := range got {
		gotSet[key(a)] = true
	}
	for _, a := range got {
		if !want[key(a)] {
			t.Errorf("internal/runtime has annotation %s not in lockorder.RuntimeOrder — add it to the declared table (internal/analysis/lockorder/order.go)", key(a))
		}
	}
	for _, a := range RuntimeOrder {
		if !gotSet[key(a)] {
			t.Errorf("lockorder.RuntimeOrder declares %s but internal/runtime has no matching annotation — the mutex was renamed, moved, or its //sdg: comment was edited; update order.go to match", key(a))
		}
	}
}

func key(a Annotation) string {
	return fmt.Sprintf("%s %s %s class=%s rank=%d", a.File, a.Kind, a.Owner, a.Class, a.Rank)
}

// parseRuntimeAnnotations reads the lock annotations out of a directory's
// non-test sources using only the parser (no type checking), so the drift
// test stays fast and independent of the loader.
func parseRuntimeAnnotations(dir string) ([]Annotation, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []Annotation
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(token.NewFileSet(), filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, fld := range st.Fields.List {
						for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
							for _, d := range anz.ParseDirectives(cg) {
								if d.Name != "lockorder" {
									continue
								}
								parts := strings.Fields(d.Args)
								if len(parts) != 2 {
									return nil, fmt.Errorf("%s: malformed //sdg:lockorder %q", name, d.Args)
								}
								rank, err := strconv.Atoi(parts[1])
								if err != nil {
									return nil, fmt.Errorf("%s: bad rank in //sdg:lockorder %q", name, d.Args)
								}
								for _, fn := range fld.Names {
									out = append(out, Annotation{
										File: name, Kind: "field",
										Owner: ts.Name.Name + "." + fn.Name,
										Class: parts[0], Rank: rank,
									})
								}
							}
						}
					}
				}
			case *ast.FuncDecl:
				for _, d := range anz.ParseDirectives(decl.Doc) {
					parts := strings.Fields(d.Args)
					switch {
					case d.Name == "lockorder" && len(parts) == 2 && parts[0] == "returns":
						out = append(out, Annotation{
							File: name, Kind: "returns",
							Owner: "func " + decl.Name.Name,
							Class: parts[1], Rank: -1,
						})
					case d.Name == "locked":
						for _, cls := range parts {
							out = append(out, Annotation{
								File: name, Kind: "locked",
								Owner: "func " + decl.Name.Name,
								Class: cls, Rank: -1,
							})
						}
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return key(out[i]) < key(out[j]) })
	return out, nil
}
