// Package a exercises the lockorder analyzer: annotated mutexes modeled on
// the runtime's real lock hierarchy (ckptGate -> pause -> ss.mu), with
// flagged, clean, and suppressed acquisition paths.
package a

import "sync"

type state struct {
	ckptGate sync.RWMutex //sdg:lockorder ckptgate 30
	//sdg:lockorder sstate 50
	mu    sync.Mutex
	parts map[int]string
}

type runtime struct {
	se *state
	//sdg:lockorder pause 40
	pauseMu map[int]*sync.RWMutex
	ts      tstate
}

type tstate struct {
	mu sync.Mutex //sdg:lockorder tstate 60
}

//sdg:lockorder returns pause
func (r *runtime) pauseFor(node int) *sync.RWMutex {
	return r.pauseMu[node]
}

// goodRepartition follows the declared order: ckptGate, then pause, then
// ss.mu — the PR 5 fix.
func (r *runtime) goodRepartition(nodes []int) {
	r.se.ckptGate.Lock()
	defer r.se.ckptGate.Unlock()
	for _, n := range nodes {
		r.pauseFor(n).Lock()
	}
	r.se.mu.Lock()
	r.se.parts[0] = "moved"
	r.se.mu.Unlock()
	for _, n := range nodes {
		r.pauseFor(n).Unlock()
	}
}

// badInverted re-creates the PR 5 deadlock: ss.mu taken before pause.
func (r *runtime) badInverted(node int) {
	r.se.mu.Lock()
	r.pauseFor(node).Lock() // want `acquires "pause" \(rank 40\) while holding "sstate" \(rank 50\)`
	r.pauseFor(node).Unlock()
	r.se.mu.Unlock()
}

// badGateAfterState flags even through a local mutex variable.
func (r *runtime) badGateAfterState(node int) {
	mu := r.pauseFor(node)
	mu.Lock()
	r.se.ckptGate.Lock() // want `acquires "ckptgate" \(rank 30\) while holding "pause" \(rank 40\)`
	r.se.ckptGate.Unlock()
	mu.Unlock()
}

// branchSensitive only violates on one arm; the walker must still see it.
func (r *runtime) branchSensitive(hot bool) {
	if hot {
		r.se.mu.Lock()
	}
	if hot {
		r.se.ckptGate.RLock() // want `acquires "ckptgate" \(rank 30\) while holding "sstate" \(rank 50\)`
		r.se.ckptGate.RUnlock()
	}
	if hot {
		r.se.mu.Unlock()
	}
}

// releasedBeforeAcquire is clean: the earlier lock is gone by the time the
// lower-ranked one is taken.
func (r *runtime) releasedBeforeAcquire() {
	r.se.mu.Lock()
	r.se.mu.Unlock()
	r.se.ckptGate.Lock()
	r.se.ckptGate.Unlock()
}

// retryLoop models scaling.go's validate-retry shape: locks are taken in
// order inside the loop, released on the retry path, and carried out on
// break — no violation.
func (r *runtime) retryLoop(nodes []int) {
	for {
		r.se.ckptGate.Lock()
		r.se.mu.Lock()
		if len(r.se.parts) > 0 {
			break
		}
		r.se.mu.Unlock()
		r.se.ckptGate.Unlock()
	}
	r.ts.mu.Lock()
	r.ts.mu.Unlock()
	r.se.mu.Unlock()
	r.se.ckptGate.Unlock()
}

// carriedOutOfLoop: locks accumulated by a range loop are still held after
// it, so the inverted acquire below the loop is caught.
func (r *runtime) carriedOutOfLoop(nodes []int) {
	for _, n := range nodes {
		r.pauseFor(n).Lock()
	}
	r.se.ckptGate.Lock() // want `acquires "ckptgate" \(rank 30\) while holding "pause" \(rank 40\)`
	r.se.ckptGate.Unlock()
	for _, n := range nodes {
		r.pauseFor(n).Unlock()
	}
}

// sameClassTwice is allowed: multiple instances of one class (per-node
// pause locks) are ordered by node id at runtime, not by rank.
func (r *runtime) sameClassTwice(a, b int) {
	r.pauseFor(a).Lock()
	r.pauseFor(b).Lock()
	r.pauseFor(b).Unlock()
	r.pauseFor(a).Unlock()
}

// lockedHelper declares its precondition: callers hold sstate. Taking a
// lower-ranked class inside is a violation even with no Lock call in
// sight.
//
//sdg:locked sstate
func (r *runtime) lockedHelper() {
	r.se.ckptGate.RLock() // want `acquires "ckptgate" \(rank 30\) while holding "sstate" \(rank 50\)`
	r.se.ckptGate.RUnlock()
}

// goroutineBody starts fresh: the spawned goroutine's acquisitions do not
// inherit the parent's held-set, and its own body is still checked.
func (r *runtime) goroutineBody(node int) {
	r.se.mu.Lock()
	go func() {
		r.se.ckptGate.Lock() // clean: new goroutine, nothing held
		r.se.mu.Lock()       // clean: ckptgate (30) before sstate (50) is the declared order
		r.se.mu.Unlock()
		r.se.ckptGate.Unlock()
	}()
	r.se.mu.Unlock()
}

// suppressed documents a sanctioned inversion with a justification.
func (r *runtime) suppressed(node int) {
	r.se.mu.Lock()
	//sdg:ignore lockorder -- single-node bootstrap path, pause map is empty so no deadlock partner exists
	r.pauseFor(node).Lock()
	r.pauseFor(node).Unlock()
	r.se.mu.Unlock()
}

// bareIgnore forgets the justification and is itself reported.
func (r *runtime) bareIgnore(node int) {
	r.se.mu.Lock()
	//sdg:ignore lockorder // want `needs a justification`
	r.pauseFor(node).Lock() // want `acquires "pause" \(rank 40\) while holding "sstate" \(rank 50\)`
	r.pauseFor(node).Unlock()
	r.se.mu.Unlock()
}
