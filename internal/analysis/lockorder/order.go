package lockorder

// Annotation is one //sdg:lockorder (or //sdg:locked) annotation expected
// to exist in internal/runtime. RuntimeOrder below is the canonical copy
// of the runtime's declared lock hierarchy: TestAnnotationDrift parses the
// runtime sources and fails if the annotations and this table diverge in
// either direction, so renaming or deleting an annotated mutex without
// updating the declared order is a test failure, not silent config rot.
type Annotation struct {
	File  string // base name of the file holding the annotation
	Kind  string // "field", "returns", or "locked"
	Owner string // "Type.field" for fields, "func Name" otherwise
	Class string
	Rank  int // -1 for kinds that carry no rank
}

// RuntimeOrder mirrors every lock annotation in internal/runtime. The rank
// order encodes the documented hierarchy: scale-in serialisation first,
// then the injection fence, the checkpoint gate, per-node pause locks, SE
// then TE state (the PR 5 repartition order), the coordinator's injection
// fence before its per-worker locks, and the remote-edge net lock before
// per-peer locks (PR 8).
var RuntimeOrder = []Annotation{
	{File: "runtime.go", Kind: "field", Owner: "Runtime.scaleMu", Class: "scale", Rank: 10},
	{File: "runtime.go", Kind: "field", Owner: "teState.injMu", Class: "inject", Rank: 20},
	{File: "runtime.go", Kind: "field", Owner: "seState.ckptGate", Class: "ckptgate", Rank: 30},
	{File: "worker.go", Kind: "field", Owner: "Worker.snapMu", Class: "snapstream", Rank: 35},
	{File: "runtime.go", Kind: "field", Owner: "Runtime.pauseMu", Class: "pause", Rank: 40},
	{File: "runtime.go", Kind: "field", Owner: "seState.mu", Class: "sstate", Rank: 50},
	{File: "runtime.go", Kind: "field", Owner: "teState.mu", Class: "testate", Rank: 60},
	{File: "coordinator.go", Kind: "field", Owner: "Coordinator.injMu", Class: "coordinject", Rank: 65},
	{File: "coordinator.go", Kind: "field", Owner: "coordWorker.mu", Class: "coordworker", Rank: 70},
	{File: "remoteedge.go", Kind: "field", Owner: "remoteNet.mu", Class: "netmu", Rank: 80},
	{File: "remoteedge.go", Kind: "field", Owner: "peerConn.mu", Class: "peermu", Rank: 90},
	{File: "runtime.go", Kind: "field", Owner: "Runtime.pmu", Class: "pausemap", Rank: 95},
	{File: "runtime.go", Kind: "returns", Owner: "func pauseFor", Class: "pause", Rank: -1},
	{File: "remoteedge.go", Kind: "locked", Owner: "func rebuildPeerLocked", Class: "netmu", Rank: -1},
}
