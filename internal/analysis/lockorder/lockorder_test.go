package lockorder_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/anztest"
	"repro/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	anztest.Run(t, lockorder.Analyzer, filepath.Join("testdata", "src", "a"))
}
