// Package lockorder enforces the runtime's declared mutex partial order.
//
// The order that fixed PR 5's checkpoint/pause deadlock — ckptGate before
// pause before ss.mu, injMu fenced before transport work — lived only in
// comments (internal/runtime/scaling.go). Here it becomes machine-checked:
// mutex fields carry a //sdg:lockorder <class> <rank> annotation, and any
// function whose acquisition path grabs a lower-ranked class while holding
// a higher-ranked one is flagged.
//
// Annotations:
//
//	//sdg:lockorder <class> <rank>    on a mutex field, var, or a map/slice
//	                                  field whose elements are mutexes
//	//sdg:lockorder returns <class>   on a func whose result is a mutex of
//	                                  that class (e.g. Runtime.pauseFor)
//	//sdg:locked <class> [<class>...] on a func that is documented to be
//	                                  called with those classes already held
//	                                  (the *Locked helper convention)
//
// The walk is intra-procedural and branch-aware: each if/switch/select arm
// is explored on its own cloned held-set, loop bodies are explored once
// from the loop entry state, and terminating branches (return) contribute
// nothing to the merged exit state. Acquiring the same class twice is
// allowed — classes with several instances (per-node pause locks) are
// taken in sorted order by the runtime, which a rank check cannot and need
// not model. Releases via defer are deliberately ignored: a deferred
// Unlock runs at return, so the lock is held for the rest of the body.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis/anz"
)

var Analyzer = &anz.Analyzer{
	Name: "lockorder",
	Doc: "check mutex acquisition paths against the //sdg:lockorder declared partial order " +
		"(ckptGate before pause before ss.mu, and friends)",
	Run: run,
}

// maxPaths bounds the number of simultaneously tracked branch states per
// function; beyond it the walker keeps the first maxPaths (checking stays
// sound on those paths, extra paths are dropped, never merged unsoundly).
const maxPaths = 64

type collected struct {
	ranks      map[string]int          // class name -> rank
	fieldClass map[types.Object]string // annotated mutex field/var -> class
	funcClass  map[types.Object]string // "returns"-annotated func -> class
	locked     map[*ast.FuncDecl][]string
}

func run(pass *anz.Pass) error {
	c := collect(pass)
	if len(c.fieldClass) == 0 && len(c.funcClass) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &fnWalker{pass: pass, c: c, vars: map[types.Object]string{}, reported: map[string]bool{}}
			entry := &path{}
			for _, cls := range c.locked[fd] {
				entry.held = append(entry.held, held{class: cls, pos: fd.Pos()})
			}
			w.walkStmts(fd.Body.List, []*path{entry})
			// Function literals run on their own goroutine or call stack
			// state; walk each with an empty held-set.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					w.walkStmts(fl.Body.List, []*path{{}})
					return false
				}
				return true
			})
		}
	}
	return nil
}

// collect gathers every //sdg:lockorder annotation in the package.
func collect(pass *anz.Pass) *collected {
	c := &collected{
		ranks:      map[string]int{},
		fieldClass: map[types.Object]string{},
		funcClass:  map[types.Object]string{},
		locked:     map[*ast.FuncDecl][]string{},
	}
	declare := func(d anz.Directive, obj types.Object) {
		parts := strings.Fields(d.Args)
		if len(parts) != 2 {
			pass.Reportf(d.Pos, "malformed //sdg:lockorder: want \"<class> <rank>\" or \"returns <class>\", got %q", d.Args)
			return
		}
		rank, err := strconv.Atoi(parts[1])
		if err != nil {
			pass.Reportf(d.Pos, "malformed //sdg:lockorder rank %q: %v", parts[1], err)
			return
		}
		name := parts[0]
		if prev, ok := c.ranks[name]; ok && prev != rank {
			pass.Reportf(d.Pos, "lock class %q re-declared with rank %d (previously %d)", name, rank, prev)
			return
		}
		c.ranks[name] = rank
		if obj != nil {
			c.fieldClass[obj] = name
		}
	}
	fieldDirectives := func(names []*ast.Ident, groups ...*ast.CommentGroup) {
		for _, cg := range groups {
			for _, d := range anz.ParseDirectives(cg) {
				if d.Name != "lockorder" {
					continue
				}
				for _, name := range names {
					declare(d, pass.TypesInfo.Defs[name])
				}
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					switch spec := spec.(type) {
					case *ast.TypeSpec:
						st, ok := spec.Type.(*ast.StructType)
						if !ok {
							continue
						}
						for _, fld := range st.Fields.List {
							fieldDirectives(fld.Names, fld.Doc, fld.Comment)
						}
					case *ast.ValueSpec:
						fieldDirectives(spec.Names, decl.Doc, spec.Doc, spec.Comment)
					}
				}
			case *ast.FuncDecl:
				for _, d := range anz.ParseDirectives(decl.Doc) {
					switch d.Name {
					case "lockorder":
						parts := strings.Fields(d.Args)
						if len(parts) == 2 && parts[0] == "returns" {
							if obj := pass.TypesInfo.Defs[decl.Name]; obj != nil {
								c.funcClass[obj] = parts[1]
							}
						} else {
							declare(d, nil)
						}
					case "locked":
						c.locked[decl] = append(c.locked[decl], strings.Fields(d.Args)...)
					}
				}
			}
		}
	}
	// A class used by an annotation but never given a rank (e.g. only via
	// "returns" or "locked") defaults to being unordered — report it so the
	// table stays complete.
	seen := map[string]token.Pos{}
	for fd, classes := range c.locked {
		for _, cls := range classes {
			seen[cls] = fd.Pos()
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					if cls, ok := c.funcClass[obj]; ok {
						seen[cls] = fd.Pos()
					}
				}
			}
		}
	}
	for cls, pos := range seen {
		if _, ok := c.ranks[cls]; !ok {
			pass.Reportf(pos, "lock class %q has no //sdg:lockorder <class> <rank> declaration in this package", cls)
		}
	}
	return c
}

type held struct {
	class string
	pos   token.Pos
}

// path is one feasible acquisition path's held-lock stack.
type path struct {
	held []held
}

func (p *path) clone() *path {
	q := &path{held: make([]held, len(p.held))}
	copy(q.held, p.held)
	return q
}

func clonePaths(ps []*path) []*path {
	out := make([]*path, len(ps))
	for i, p := range ps {
		out[i] = p.clone()
	}
	return out
}

// frame is a break target (loop, switch, or select) collecting the states
// of paths that break out of it.
type frame struct {
	isLoop bool
	breaks []*path
}

type fnWalker struct {
	pass     *anz.Pass
	c        *collected
	vars     map[types.Object]string // local mutex var -> class
	frames   []*frame
	reported map[string]bool
}

// walkStmts walks a statement list over the given entry paths and returns
// the merged (non-terminated) exit paths.
func (w *fnWalker) walkStmts(list []ast.Stmt, states []*path) []*path {
	for _, s := range list {
		states = w.walkStmt(s, states)
		if len(states) == 0 {
			break // every path terminated
		}
	}
	return states
}

func cap64(ps []*path) []*path {
	if len(ps) > maxPaths {
		return ps[:maxPaths]
	}
	return ps
}

func (w *fnWalker) walkStmt(s ast.Stmt, states []*path) []*path {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.lockEffect(s.X, states)
		return states
	case *ast.AssignStmt:
		w.trackAssign(s)
		return states
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							if cls, ok := w.classOf(vs.Values[i]); ok {
								if obj := w.pass.TypesInfo.Defs[name]; obj != nil {
									w.vars[obj] = cls
								}
							}
						}
					}
				}
			}
		}
		return states
	case *ast.BlockStmt:
		return w.walkStmts(s.List, states)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, states)
	case *ast.IfStmt:
		if s.Init != nil {
			states = w.walkStmt(s.Init, states)
		}
		thenExits := w.walkStmts(s.Body.List, clonePaths(states))
		var elseExits []*path
		if s.Else != nil {
			elseExits = w.walkStmt(s.Else, clonePaths(states))
		} else {
			elseExits = states
		}
		return cap64(append(thenExits, elseExits...))
	case *ast.ForStmt:
		if s.Init != nil {
			states = w.walkStmt(s.Init, states)
		}
		return w.walkLoop(s.Body, states)
	case *ast.RangeStmt:
		// Ranging over an annotated mutex container taints the value var.
		if cls, ok := w.classOf(s.X); ok {
			if id, ok := s.Value.(*ast.Ident); ok {
				if obj := w.pass.TypesInfo.Defs[id]; obj != nil {
					w.vars[obj] = cls
				}
			}
		}
		return w.walkLoop(s.Body, states)
	case *ast.SwitchStmt:
		if s.Init != nil {
			states = w.walkStmt(s.Init, states)
		}
		return w.walkCases(s.Body.List, states)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			states = w.walkStmt(s.Init, states)
		}
		return w.walkCases(s.Body.List, states)
	case *ast.SelectStmt:
		return w.walkCases(s.Body.List, states)
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if fr := w.topFrame(); fr != nil {
				fr.breaks = append(fr.breaks, clonePaths(states)...)
			}
			return nil
		case token.CONTINUE, token.GOTO:
			return nil
		}
		return states
	case *ast.ReturnStmt:
		return nil
	case *ast.GoStmt, *ast.DeferStmt:
		// Spawned goroutines get their own empty held-set (walked via the
		// FuncLit pass); deferred unlocks run at return, after the body.
		return states
	default:
		return states
	}
}

// walkLoop walks a loop body once from the entry states. Exit = entry
// (zero iterations) ∪ body exit (locks deliberately carried out of the
// loop, e.g. a lock-all-partitions range) ∪ break states.
func (w *fnWalker) walkLoop(body *ast.BlockStmt, states []*path) []*path {
	fr := &frame{isLoop: true}
	w.frames = append(w.frames, fr)
	bodyExits := w.walkStmts(body.List, clonePaths(states))
	w.frames = w.frames[:len(w.frames)-1]
	return cap64(append(append(states, bodyExits...), fr.breaks...))
}

// walkCases walks switch/type-switch/select clause bodies, each from a
// clone of the entry states; exit is the union of every clause's exit plus
// the entry states when no default clause guarantees a clause runs.
func (w *fnWalker) walkCases(clauses []ast.Stmt, states []*path) []*path {
	fr := &frame{}
	w.frames = append(w.frames, fr)
	var exits []*path
	hasDefault := false
	for _, cl := range clauses {
		var body []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			body = cl.Body
			if cl.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			if cl.Comm != nil {
				// A comm clause's send/receive runs before its body.
				body = append([]ast.Stmt{cl.Comm}, cl.Body...)
			} else {
				body = cl.Body
				hasDefault = true
			}
		}
		exits = append(exits, w.walkStmts(body, clonePaths(states))...)
	}
	w.frames = w.frames[:len(w.frames)-1]
	exits = append(exits, fr.breaks...)
	if !hasDefault || len(clauses) == 0 {
		exits = append(exits, states...)
	}
	return cap64(exits)
}

func (w *fnWalker) topFrame() *frame {
	if len(w.frames) == 0 {
		return nil
	}
	return w.frames[len(w.frames)-1]
}

// lockEffect applies a statement-level call's acquire/release effect to
// every live path.
func (w *fnWalker) lockEffect(e ast.Expr, states []*path) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	cls, ok := w.classOf(sel.X)
	if !ok {
		return
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		for _, p := range states {
			w.acquire(p, cls, call.Pos())
		}
	case "Unlock", "RUnlock":
		for _, p := range states {
			release(p, cls)
		}
	}
}

func (w *fnWalker) acquire(p *path, cls string, pos token.Pos) {
	rank, ok := w.c.ranks[cls]
	if !ok {
		return
	}
	for _, h := range p.held {
		hr, hok := w.c.ranks[h.class]
		if hok && h.class != cls && hr > rank {
			key := fmt.Sprintf("%d/%s/%s", pos, cls, h.class)
			if !w.reported[key] {
				w.reported[key] = true
				w.pass.Reportf(pos, "acquires %q (rank %d) while holding %q (rank %d): declared order is %s before %s",
					cls, rank, h.class, hr, cls, h.class)
			}
		}
	}
	p.held = append(p.held, held{class: cls, pos: pos})
}

// release drops the most recent held instance of cls; releasing a class
// that is not held on this path is a no-op (the path may have branched
// past the acquire).
func release(p *path, cls string) {
	for i := len(p.held) - 1; i >= 0; i-- {
		if p.held[i].class == cls {
			p.held = append(p.held[:i], p.held[i+1:]...)
			return
		}
	}
}

// classOf resolves an expression to a declared lock class: an annotated
// field selector (r.se.ckptGate), an element of an annotated container
// (r.pauseMu[n]), a local var assigned from one, or a call to a
// //sdg:lockorder returns func (r.pauseFor(n)).
func (w *fnWalker) classOf(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return w.classOf(e.X)
	case *ast.StarExpr:
		return w.classOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return w.classOf(e.X)
		}
	case *ast.IndexExpr:
		return w.classOf(e.X)
	case *ast.SelectorExpr:
		if sel := w.pass.TypesInfo.Selections[e]; sel != nil {
			if cls, ok := w.c.fieldClass[sel.Obj()]; ok {
				return cls, true
			}
		}
		if obj := w.pass.TypesInfo.Uses[e.Sel]; obj != nil {
			if cls, ok := w.c.fieldClass[obj]; ok {
				return cls, true
			}
		}
	case *ast.Ident:
		if obj := w.pass.TypesInfo.Uses[e]; obj != nil {
			if cls, ok := w.vars[obj]; ok {
				return cls, true
			}
			if cls, ok := w.c.fieldClass[obj]; ok {
				return cls, true
			}
		}
	case *ast.CallExpr:
		if obj := calleeObj(w.pass.TypesInfo, e.Fun); obj != nil {
			if cls, ok := w.c.funcClass[obj]; ok {
				return cls, true
			}
		}
	}
	return "", false
}

// trackAssign records local vars that hold a classed mutex (mu :=
// r.pauseFor(node)); reassignment to an unclassed value clears the var.
func (w *fnWalker) trackAssign(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		obj := w.pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = w.pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			continue
		}
		if cls, ok := w.classOf(s.Rhs[i]); ok {
			w.vars[obj] = cls
		} else {
			delete(w.vars, obj)
		}
	}
}

func calleeObj(info *types.Info, fun ast.Expr) types.Object {
	switch fun := fun.(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	case *ast.ParenExpr:
		return calleeObj(info, fun.X)
	}
	return nil
}
