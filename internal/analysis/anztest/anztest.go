// Package anztest runs an analyzer over a testdata package and checks its
// diagnostics against // want "regexp" comments, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// Testdata lives under <analyzer>/testdata/src/<pkg>/ — the go tool ignores
// testdata directories, so those files are never built into the module, but
// the anz loader type-checks them against the module's real export data, so
// testdata may import repro packages (sync, time, internal/wire, ...).
package anztest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis/anz"
)

var (
	loaderOnce sync.Once
	loader     *anz.Loader
	loaderErr  error
)

// sharedLoader builds one Loader per test process: `go list -export` over
// the whole module is the expensive step, and every analyzer test reuses it.
func sharedLoader(t *testing.T) *anz.Loader {
	t.Helper()
	loaderOnce.Do(func() {
		wd, err := os.Getwd()
		if err != nil {
			loaderErr = err
			return
		}
		root, err := anz.FindModuleRoot(wd)
		if err != nil {
			loaderErr = err
			return
		}
		loader, loaderErr = anz.NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("anztest: loader: %v", loaderErr)
	}
	return loader
}

// want is one expectation parsed from a // want "re" comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads the package rooted at dir (relative to the test's working
// directory), applies the analyzer through the standard driver — so
// //sdg:ignore suppression and malformed-directive reporting behave exactly
// as in sdg-lint — and matches the surviving diagnostics against the
// package's // want comments. Every diagnostic must match a want on its
// line, and every want must be matched.
func Run(t *testing.T, a *anz.Analyzer, dir string) {
	t.Helper()
	l := sharedLoader(t)
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(abs, filepath.Base(abs))
	if err != nil {
		t.Fatalf("anztest: load %s: %v", dir, err)
	}
	diags, err := anz.Run([]*anz.Package{pkg}, []*anz.Analyzer{a})
	if err != nil {
		t.Fatalf("anztest: run %s: %v", a.Name, err)
	}
	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && !w.hit && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", filepath.Base(w.file), w.line, w.re)
		}
	}
}

var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants parses the // want "re" ["re" ...] comments of the package.
func collectWants(pkg *anz.Package) ([]*want, error) {
	var out []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				_, rest, ok := strings.Cut(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantRE.FindAllString(rest, -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					out = append(out, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out, nil
}
