// Package anz is a minimal, dependency-free clone of the
// golang.org/x/tools/go/analysis surface, sized to what this repository's
// own analyzers (internal/analysis/...) need. The container this repo
// builds in has no module proxy access, so the x/tools dependency is
// replaced by ~three small pieces built on the standard library:
//
//   - Analyzer/Pass/Diagnostic (this file): the familiar vet-style API,
//     so the analyzers read like x/tools analyzers and can migrate to the
//     real framework by swapping one import if the dependency ever lands;
//   - Loader (load.go): package loading + full type checking driven by
//     `go list -export`, which hands us compiler export data for every
//     dependency from the local build cache — no network, no GOPATH;
//   - suppression (run.go): the //sdg:ignore directive, which every
//     diagnostic in the tree must either fix or carry a written
//     justification for.
package anz

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //sdg:ignore
	// directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description printed by sdg-lint -help.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through an analyzer run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Directive is one parsed //sdg:<name> comment. Directives are the
// in-source configuration surface of the analyzers: annotations like
// //sdg:lockorder declare invariants, //sdg:ignore suppresses a finding
// with a recorded justification.
type Directive struct {
	// Name is the directive name after "sdg:" ("lockorder", "ignore", ...).
	Name string
	// Args is the remainder of the line, space-trimmed.
	Args string
	// Pos locates the directive comment.
	Pos token.Pos
}

// ParseDirectives extracts //sdg: directives from a comment group. A nil
// group yields nil.
func ParseDirectives(cg *ast.CommentGroup) []Directive {
	if cg == nil {
		return nil
	}
	var out []Directive
	for _, c := range cg.List {
		text, ok := strings.CutPrefix(c.Text, "//sdg:")
		if !ok {
			continue
		}
		name, args, _ := strings.Cut(text, " ")
		out = append(out, Directive{Name: name, Args: strings.TrimSpace(args), Pos: c.Pos()})
	}
	return out
}
