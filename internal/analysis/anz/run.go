package anz

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// ignoreSpan is one //sdg:ignore directive's zone of effect: diagnostics
// from the named analyzers whose position lands on [fromLine, toLine] of
// file are suppressed.
type ignoreSpan struct {
	file     string
	fromLine int
	toLine   int
	names    map[string]bool // analyzer names; "all" matches every analyzer
}

// Run executes the analyzers over the packages and returns the surviving
// diagnostics, sorted by position. Suppressed findings are dropped;
// malformed //sdg:ignore directives (no analyzer name, or no justification
// after " -- ") are themselves reported under the name "sdg-directive", so
// an ignore can never silently rot into a typo.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	var spans []ignoreSpan
	for _, pkg := range pkgs {
		spans = append(spans, collectIgnores(pkg, &diags)...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.Info,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("anz: %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if !suppressed(d, spans) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, nil
}

func suppressed(d Diagnostic, spans []ignoreSpan) bool {
	for _, s := range spans {
		if s.file != d.Pos.Filename || d.Pos.Line < s.fromLine || d.Pos.Line > s.toLine {
			continue
		}
		if s.names["all"] || s.names[d.Analyzer] {
			return true
		}
	}
	return false
}

// collectIgnores parses every //sdg:ignore directive in the package.
//
// Placement rules: a directive in a function's doc comment covers the whole
// function (the escape hatch for a function that IS the sanctioned boundary
// of an invariant, like the borrow-decode seam); any other placement covers
// its own line and the next (trailing comment, or a standalone line above
// the flagged statement).
//
// Syntax: //sdg:ignore <analyzer>[,<analyzer>...] -- <justification>. The
// justification is mandatory: the directive records WHY the invariant does
// not apply, and a bare ignore is reported as a finding instead of obeyed.
func collectIgnores(pkg *Package, diags *[]Diagnostic) []ignoreSpan {
	var spans []ignoreSpan
	badIgnore := func(pos token.Pos, msg string) {
		*diags = append(*diags, Diagnostic{
			Analyzer: "sdg-directive",
			Pos:      pkg.Fset.Position(pos),
			Message:  msg,
		})
	}
	parse := func(d Directive, fromLine, toLine int) {
		namesPart, justification, ok := strings.Cut(d.Args, "--")
		if !ok || strings.TrimSpace(justification) == "" {
			badIgnore(d.Pos, "//sdg:ignore needs a justification: //sdg:ignore <analyzer> -- <why this invariant does not apply here>")
			return
		}
		names := make(map[string]bool)
		for _, n := range strings.FieldsFunc(namesPart, func(r rune) bool { return r == ',' || r == ' ' }) {
			names[n] = true
		}
		if len(names) == 0 {
			badIgnore(d.Pos, "//sdg:ignore names no analyzer")
			return
		}
		spans = append(spans, ignoreSpan{
			file:     pkg.Fset.Position(d.Pos).Filename,
			fromLine: fromLine,
			toLine:   toLine,
			names:    names,
		})
	}
	for _, f := range pkg.Files {
		// Function-doc ignores cover the function body.
		funcDoc := make(map[*ast.CommentGroup]*ast.FuncDecl)
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				funcDoc[fd.Doc] = fd
			}
		}
		for _, cg := range f.Comments {
			for _, d := range ParseDirectives(cg) {
				if d.Name != "ignore" {
					continue
				}
				if fd, ok := funcDoc[cg]; ok {
					parse(d, pkg.Fset.Position(fd.Pos()).Line, pkg.Fset.Position(fd.End()).Line)
					continue
				}
				line := pkg.Fset.Position(d.Pos).Line
				parse(d, line, line+1)
			}
		}
	}
	return spans
}
