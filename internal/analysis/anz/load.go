package anz

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, fully type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
}

// Loader loads and type-checks packages of the enclosing module. It shells
// out to `go list -export -deps -test -json` once: the go tool compiles (or
// reuses from the build cache) every dependency and reports the path of its
// export data file, which the standard library's gc importer can read. That
// gives full types.Info for any package in the module — including its
// in-package test files — with zero third-party dependencies and no network.
type Loader struct {
	Root string // module root (directory containing go.mod)

	fset    *token.FileSet
	exports map[string]string // import path -> export data file
	targets map[string]*listPackage
	imp     types.ImporterFrom
}

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath   string
	Dir          string
	Name         string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Export       string
	Standard     bool
	DepOnly      bool
	ForTest      string
}

// NewLoader lists and prepares the packages matching patterns (relative to
// root; defaults to ./...).
func NewLoader(root string, patterns ...string) (*Loader, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-deps", "-test", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("anz: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	l := &Loader{
		Root:    root,
		fset:    token.NewFileSet(),
		exports: make(map[string]string),
		targets: make(map[string]*listPackage),
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("anz: parse go list output: %v", err)
		}
		if p.Export != "" {
			// Test variants list as "repro/x [repro/y.test]": strip the
			// suffix so imports of the plain path resolve, but let real
			// (non-variant) export data win when both are present.
			path := p.ImportPath
			if i := strings.Index(path, " ["); i >= 0 {
				path = path[:i]
			}
			if _, dup := l.exports[path]; !dup || (p.ForTest == "" && path == p.ImportPath) {
				l.exports[path] = p.Export
			}
		}
		if !p.Standard && !p.DepOnly && p.ForTest == "" && !strings.HasSuffix(p.ImportPath, ".test") {
			q := p
			l.targets[p.ImportPath] = &q
		}
	}
	l.imp = importer.ForCompiler(l.fset, "gc", l.lookup).(types.ImporterFrom)
	return l, nil
}

// lookup feeds the gc importer the export data `go list -export` produced.
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	f, ok := l.exports[path]
	if !ok {
		return nil, fmt.Errorf("anz: no export data for %q", path)
	}
	return os.Open(f)
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load parses and type-checks every listed target package. In-package test
// files are checked together with the package proper (the augmented package
// the compiler builds for `go test`); external _test packages are checked
// as their own package against the base package's export data.
func (l *Loader) Load() ([]*Package, error) {
	paths := make([]string, 0, len(l.targets))
	for p := range l.targets {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var out []*Package
	for _, path := range paths {
		t := l.targets[path]
		pkg, err := l.check(path, t.Dir, append(append([]string{}, t.GoFiles...), t.TestGoFiles...))
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
		if len(t.XTestGoFiles) > 0 {
			xpkg, err := l.check(path+"_test", t.Dir, t.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			out = append(out, xpkg)
		}
	}
	return out, nil
}

// LoadDir type-checks a single directory of Go files outside the module
// build (analyzer testdata packages). Imports resolve against the module's
// export table, so testdata may import real repro packages.
func (l *Loader) LoadDir(dir, pkgPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("anz: no Go files in %s", dir)
	}
	return l.check(pkgPath, dir, files)
}

// check parses the named files and runs the type checker over them.
func (l *Loader) check(pkgPath, dir string, names []string) (*Package, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("anz: parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var errs []error
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, _ := conf.Check(pkgPath, l.fset, files, info)
	if len(errs) > 0 {
		msgs := make([]string, 0, len(errs))
		for _, e := range errs {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("anz: type-check %s:\n\t%s", pkgPath, strings.Join(msgs, "\n\t"))
	}
	return &Package{PkgPath: pkgPath, Dir: dir, Fset: l.fset, Files: files, Pkg: pkg, Info: info}, nil
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("anz: no go.mod above %s", dir)
		}
		dir = parent
	}
}
