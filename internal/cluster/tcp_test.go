package cluster

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// TestClientPoisonedStream is the regression for the framing-state bug:
// after a mid-Call error the connection is left between frames in an
// undefined position, and a client that kept using it could misparse the
// next length prefix out of leftover payload bytes. The client must mark
// itself broken on the first error, close the connection eagerly, and fail
// every later Call fast with the sticky typed error.
func TestClientPoisonedStream(t *testing.T) {
	// A hostile peer: reads the request, then answers with a frame header
	// promising 100 bytes but delivers only 3 before closing — exactly the
	// partial-read shape a crashed server produces.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := ReadFrame(conn); err != nil {
			return
		}
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], 100)
		conn.Write(hdr[:])
		conn.Write([]byte{1, 2, 3})
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Call([]byte("req-1")); err == nil {
		t.Fatal("first call over truncated stream succeeded")
	} else if errors.Is(err, ErrClientBroken) {
		t.Fatalf("first call must surface the underlying error, got sticky %v", err)
	}
	// Every later call fails fast with the sticky typed error — it must
	// not touch the (closed) connection and hang or misparse.
	for i := 0; i < 3; i++ {
		done := make(chan error, 1)
		go func() {
			_, err := c.Call([]byte("req-2"))
			done <- err
		}()
		select {
		case err := <-done:
			if !errors.Is(err, ErrClientBroken) {
				t.Fatalf("call %d after poison: got %v, want ErrClientBroken", i, err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("call %d after poison blocked", i)
		}
	}
}

// TestClientOversizedRequestDoesNotPoison: the size check fires before any
// bytes hit the wire, so the stream stays healthy and usable.
func TestClientOversizedRequestDoesNotPoison(t *testing.T) {
	s, err := Serve("127.0.0.1:0", func(req []byte) ([]byte, error) {
		return append([]byte("echo:"), req...), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Call(make([]byte, MaxFrameSize+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized call: got %v, want ErrFrameTooLarge", err)
	}
	resp, err := c.Call([]byte("ok"))
	if err != nil {
		t.Fatalf("call after oversized request: %v", err)
	}
	if string(resp) != "echo:ok" {
		t.Fatalf("resp = %q", resp)
	}
}

// TestServerCloseAcceptRace hammers the accepted-concurrently-with-Close
// window: a connection registered after Close iterated the conn map would
// escape the close loop and leak past wg.Wait. The registration re-check
// under the same critical section must close it instead. Run under -race.
func TestServerCloseAcceptRace(t *testing.T) {
	for i := 0; i < 30; i++ {
		s, err := Serve("127.0.0.1:0", func(req []byte) ([]byte, error) {
			return req, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		addr := s.Addr()

		var wg sync.WaitGroup
		for d := 0; d < 4; d++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c, err := Dial(addr)
				if err != nil {
					return // listener already closed
				}
				defer c.Close()
				c.Call([]byte("x")) // may fail: the server is closing
			}()
		}
		closed := make(chan struct{})
		go func() {
			s.Close()
			close(closed)
		}()
		select {
		case <-closed:
		case <-time.After(5 * time.Second):
			t.Fatalf("iteration %d: Close hung (leaked connection?)", i)
		}
		wg.Wait()
	}
}
