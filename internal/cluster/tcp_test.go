package cluster

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// TestClientPoisonedStream is the regression for the framing-state bug:
// after a mid-Call error the connection is left between frames in an
// undefined position, and a client that kept using it could misparse the
// next length prefix out of leftover payload bytes. The client must mark
// itself broken on the first error, close the connection eagerly, and fail
// every later Call fast with the sticky typed error.
func TestClientPoisonedStream(t *testing.T) {
	// A hostile peer: reads the request, then answers with a frame header
	// promising 100 bytes but delivers only 3 before closing — exactly the
	// partial-read shape a crashed server produces.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := ReadFrame(conn); err != nil {
			return
		}
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], 100)
		conn.Write(hdr[:])
		conn.Write([]byte{1, 2, 3})
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Call([]byte("req-1")); err == nil {
		t.Fatal("first call over truncated stream succeeded")
	} else if errors.Is(err, ErrClientBroken) {
		t.Fatalf("first call must surface the underlying error, got sticky %v", err)
	}
	// Every later call fails fast with the sticky typed error — it must
	// not touch the (closed) connection and hang or misparse.
	for i := 0; i < 3; i++ {
		done := make(chan error, 1)
		go func() {
			_, err := c.Call([]byte("req-2"))
			done <- err
		}()
		select {
		case err := <-done:
			if !errors.Is(err, ErrClientBroken) {
				t.Fatalf("call %d after poison: got %v, want ErrClientBroken", i, err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("call %d after poison blocked", i)
		}
	}
}

// TestClientOversizedRequestDoesNotPoison: the size check fires before any
// bytes hit the wire, so the stream stays healthy and usable.
func TestClientOversizedRequestDoesNotPoison(t *testing.T) {
	s, err := Serve("127.0.0.1:0", func(req []byte) ([]byte, error) {
		return append([]byte("echo:"), req...), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Call(make([]byte, MaxFrameSize+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized call: got %v, want ErrFrameTooLarge", err)
	}
	resp, err := c.Call([]byte("ok"))
	if err != nil {
		t.Fatalf("call after oversized request: %v", err)
	}
	if string(resp) != "echo:ok" {
		t.Fatalf("resp = %q", resp)
	}
}

// TestServerCloseAcceptRace hammers the accepted-concurrently-with-Close
// window: a connection registered after Close iterated the conn map would
// escape the close loop and leak past wg.Wait. The registration re-check
// under the same critical section must close it instead. Run under -race.
func TestServerCloseAcceptRace(t *testing.T) {
	for i := 0; i < 30; i++ {
		s, err := Serve("127.0.0.1:0", func(req []byte) ([]byte, error) {
			return req, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		addr := s.Addr()

		var wg sync.WaitGroup
		for d := 0; d < 4; d++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c, err := Dial(addr)
				if err != nil {
					return // listener already closed
				}
				defer c.Close()
				c.Call([]byte("x")) // may fail: the server is closing
			}()
		}
		closed := make(chan struct{})
		go func() {
			s.Close()
			close(closed)
		}()
		select {
		case <-closed:
		case <-time.After(5 * time.Second):
			t.Fatalf("iteration %d: Close hung (leaked connection?)", i)
		}
		wg.Wait()
	}
}

// TestServerErrorReplyKeepsConnection is the regression for the dropped-
// connection bug: a handler error used to make serveConn return, so the
// client saw a bare EOF — indistinguishable from a server crash — and its
// healthy stream was poisoned. The error must come back as an error reply
// (typed *RemoteError) and the connection must keep serving requests.
func TestServerErrorReplyKeepsConnection(t *testing.T) {
	s, err := Serve("127.0.0.1:0", func(req []byte) ([]byte, error) {
		if string(req) == "bad" {
			return nil, errors.New("rejected: bad request")
		}
		return append([]byte("ok:"), req...), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 3; i++ {
		_, err := c.Call([]byte("bad"))
		if err == nil {
			t.Fatalf("round %d: rejected request returned no error", i)
		}
		if !errors.Is(err, ErrRemote) {
			t.Fatalf("round %d: got %v, want a remote error", i, err)
		}
		var re *RemoteError
		if !errors.As(err, &re) || re.Msg != "rejected: bad request" {
			t.Fatalf("round %d: remote message = %v", i, err)
		}
		// The same connection must still serve healthy requests.
		resp, err := c.Call([]byte("fine"))
		if err != nil {
			t.Fatalf("round %d: call after error reply: %v", i, err)
		}
		if string(resp) != "ok:fine" {
			t.Fatalf("round %d: resp = %q", i, resp)
		}
	}
}

// TestClientCallTimeout is the regression for the unbounded-Call bug: a
// server that accepts the request but never replies used to block the
// caller forever while it held the client mutex, wedging every concurrent
// caller behind it. With a call timeout set, the call must fail with the
// typed ErrCallTimeout, the stream must be poisoned (the peer is left
// mid-frame), and queued callers must drain promptly.
func TestClientCallTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- conn // read nothing, reply never
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetCallTimeout(100 * time.Millisecond)

	type res struct{ err error }
	done := make(chan res, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := c.Call([]byte("hello"))
			done <- res{err}
		}()
	}
	var errs []error
	for i := 0; i < 2; i++ {
		select {
		case r := <-done:
			errs = append(errs, r.err)
		case <-time.After(5 * time.Second):
			t.Fatal("caller still blocked: call timeout did not fire")
		}
	}
	var timeouts, broken int
	for _, err := range errs {
		switch {
		case errors.Is(err, ErrCallTimeout):
			timeouts++
		case errors.Is(err, ErrClientBroken):
			broken++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if timeouts != 1 || broken != 1 {
		t.Fatalf("got %d timeouts and %d broken, want exactly 1 and 1", timeouts, broken)
	}
	// The stream is poisoned: later calls fail fast with the sticky error.
	if _, err := c.Call([]byte("again")); !errors.Is(err, ErrClientBroken) {
		t.Fatalf("call after timeout: got %v, want ErrClientBroken", err)
	}
	if conn := <-accepted; conn != nil {
		conn.Close()
	}
}

// TestClientCloseMarksBroken is the regression for the Close race: Close
// used to bypass the client state entirely, so a Call racing it surfaced a
// raw "use of closed network connection" instead of the documented sticky
// ErrClientBroken, and later calls touched the closed socket again.
func TestClientCloseMarksBroken(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		_ = conn // hold the connection open, never reply
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Call([]byte("ping"))
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the call reach the blocking read
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClientBroken) {
			t.Fatalf("racing call: got %v, want ErrClientBroken", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call did not unblock on Close")
	}
	// Subsequent calls stay sticky, and Close is idempotent.
	if _, err := c.Call([]byte("x")); !errors.Is(err, ErrClientBroken) {
		t.Fatalf("call after close: got %v, want ErrClientBroken", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestLocalTransportMirrorsWireSemantics pins the Transport seam: the
// in-process transport must surface handler errors as *RemoteError and fail
// with ErrClientBroken after Close, exactly like the TCP client, so code
// written against Transport behaves identically in both modes.
func TestLocalTransportMirrorsWireSemantics(t *testing.T) {
	tr := Local(func(req []byte) ([]byte, error) {
		if string(req) == "bad" {
			return nil, errors.New("nope")
		}
		return append([]byte("ok:"), req...), nil
	}, 0)
	resp, err := tr.Call([]byte("x"))
	if err != nil || string(resp) != "ok:x" {
		t.Fatalf("call = %q, %v", resp, err)
	}
	if _, err := tr.Call([]byte("bad")); !errors.Is(err, ErrRemote) {
		t.Fatalf("handler error: got %v, want remote error", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Call([]byte("x")); !errors.Is(err, ErrClientBroken) {
		t.Fatalf("call after close: got %v, want ErrClientBroken", err)
	}
}
