package cluster

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// TestReadFrameMalformed tables the hostile-input space for the framing
// layer: truncated headers, truncated bodies, and oversized length
// prefixes must all come back as errors — typed where the protocol defines
// one — and never panic or misparse.
func TestReadFrameMalformed(t *testing.T) {
	oversized := make([]byte, 4)
	binary.BigEndian.PutUint32(oversized, MaxFrameSize+1)

	cases := []struct {
		name  string
		input []byte
		want  error // nil = any error accepted
	}{
		{"empty", nil, io.EOF},
		{"one header byte", []byte{0x00}, io.ErrUnexpectedEOF},
		{"three header bytes", []byte{0x00, 0x00, 0x01}, io.ErrUnexpectedEOF},
		{"oversized length", oversized, ErrFrameTooLarge},
		{"truncated body", append([]byte{0, 0, 0, 10}, 1, 2, 3), io.ErrUnexpectedEOF},
		{"length with no body", []byte{0, 0, 0, 5}, io.EOF},
		{"max uint32 length", []byte{0xff, 0xff, 0xff, 0xff}, ErrFrameTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			payload, err := ReadFrame(bytes.NewReader(tc.input))
			if err == nil {
				t.Fatalf("ReadFrame(%x) = %x, want error", tc.input, payload)
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Fatalf("ReadFrame(%x) error = %v, want %v", tc.input, err, tc.want)
			}
		})
	}
}

// TestFrameRoundTrip covers the healthy path, including the empty frame
// (length 0 is legal) and multi-frame streams.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, []byte("a"), bytes.Repeat([]byte{0xab}, 4096)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame(%d bytes): %v", len(p), err)
		}
	}
	for i, p := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(p))
		}
	}
	if _, err := ReadFrame(&buf); !errors.Is(err, io.EOF) {
		t.Fatalf("trailing read: got %v, want EOF", err)
	}
}

// TestWriteFrameOversized: the writer-side bound rejects before any bytes
// are emitted.
func TestWriteFrameOversized(t *testing.T) {
	var buf bytes.Buffer
	err := WriteFrame(&buf, make([]byte, MaxFrameSize+1))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("oversized write emitted %d bytes", buf.Len())
	}
}

// FuzzReadFrame throws arbitrary byte streams at the frame parser: it must
// either return a payload consistent with the declared length or fail with
// an error — never panic, never return a frame larger than the bound.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 3, 'a', 'b', 'c'})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Add([]byte{0, 0, 0, 10, 1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(payload) > MaxFrameSize {
			t.Fatalf("parsed frame of %d bytes exceeds MaxFrameSize", len(payload))
		}
		if len(data) < 4 || int(binary.BigEndian.Uint32(data[:4])) != len(payload) {
			t.Fatalf("payload length %d disagrees with header", len(payload))
		}
	})
}
