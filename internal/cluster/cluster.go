// Package cluster simulates the execution environment of the paper's
// evaluation: a set of nodes with local disks, failure injection and
// straggler behaviour. Nodes are in-process; their disks model configurable
// read/write bandwidth so checkpoint and recovery experiments (Figs. 11-13)
// keep the paper's cost ratios at laptop scale. A real TCP framing layer
// (tcp.go) backs the networked demos and shows the same protocols working
// across a wire.
package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Node is one simulated cluster member. The zero value is not usable;
// nodes are created through a Cluster.
type Node struct {
	ID   int
	Disk *Disk

	penaltyNS atomic.Int64 // artificial per-item cost, models slow CPUs
	failed    atomic.Bool
}

// SetPenalty configures an artificial per-item processing cost: each item
// processed on the node takes at least this long. A non-zero penalty models
// a node's service time; a penalty larger than its peers' turns the node
// into a straggler (§6.3). The cost is modelled with a sleep rather than a
// spin so that simulated nodes scale independently of the host's physical
// core count.
func (n *Node) SetPenalty(d time.Duration) {
	n.penaltyNS.Store(int64(d))
}

// Penalty reports the configured per-item cost.
func (n *Node) Penalty() time.Duration {
	return time.Duration(n.penaltyNS.Load())
}

// Penalize blocks for the node's configured per-item cost.
func (n *Node) Penalize() {
	if p := n.penaltyNS.Load(); p > 0 {
		time.Sleep(time.Duration(p))
	}
}

// Fail marks the node failed. Work routed to a failed node is dropped by
// the runtime, emulating a crashed process.
func (n *Node) Fail() { n.failed.Store(true) }

// Recover clears the failed flag (a replacement node re-using the slot).
func (n *Node) Recover() { n.failed.Store(false) }

// Failed reports whether the node is down.
func (n *Node) Failed() bool { return n.failed.Load() }

// Config parameterises a simulated cluster.
type Config struct {
	// DiskWriteBW and DiskReadBW model per-disk bandwidth in bytes/second;
	// zero means infinitely fast.
	DiskWriteBW int64
	DiskReadBW  int64
	// NetBW models inter-node link bandwidth in bytes/second for bulk
	// transfers (checkpoint streaming); zero means infinitely fast.
	NetBW int64
	// NetLatency is the per-transfer latency floor.
	NetLatency time.Duration
}

// Cluster is a set of simulated nodes sharing a Config.
type Cluster struct {
	mu    sync.Mutex
	cfg   Config
	nodes []*Node
}

// New creates a cluster with n nodes.
func New(n int, cfg Config) *Cluster {
	c := &Cluster{cfg: cfg}
	for i := 0; i < n; i++ {
		c.addLocked()
	}
	return c
}

func (c *Cluster) addLocked() *Node {
	n := &Node{
		ID:   len(c.nodes),
		Disk: NewDisk(c.cfg.DiskWriteBW, c.cfg.DiskReadBW),
	}
	c.nodes = append(c.nodes, n)
	return n
}

// AddNode appends a fresh node (used when the scaling controller or the
// recovery manager requests replacements) and returns it.
func (c *Cluster) AddNode() *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addLocked()
}

// Node returns node i.
func (c *Cluster) Node(i int) *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.nodes) {
		panic(fmt.Sprintf("cluster: node %d out of range (%d nodes)", i, len(c.nodes)))
	}
	return c.nodes[i]
}

// Size reports the number of nodes, including failed ones.
func (c *Cluster) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.nodes)
}

// Alive reports the number of non-failed nodes.
func (c *Cluster) Alive() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, node := range c.nodes {
		if !node.Failed() {
			n++
		}
	}
	return n
}

// Transfer models moving size bytes between two nodes over the network,
// blocking for the simulated duration.
func (c *Cluster) Transfer(size int64) {
	c.mu.Lock()
	bw, lat := c.cfg.NetBW, c.cfg.NetLatency
	c.mu.Unlock()
	d := lat
	if bw > 0 {
		d += time.Duration(float64(size) / float64(bw) * float64(time.Second))
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg
}
