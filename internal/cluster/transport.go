package cluster

import (
	"sync"
	"time"
)

// Transport is one request/reply link to a peer process. It is the single
// seam between the distributed deployment mode and its two carriers: the
// TCP Client for real worker processes, and Local for in-process workers
// (the fast test harness), so every protocol built on it — remote inject,
// checkpoint streaming, heartbeats, recovery — runs identically in both
// modes.
type Transport interface {
	// Call sends one request and waits for the reply. Application-level
	// rejections surface as *RemoteError (errors.Is(err, ErrRemote)) and
	// leave the link usable; any other error means the link is unusable and
	// every subsequent Call fails with ErrClientBroken.
	Call(req []byte) ([]byte, error)
	// Close releases the link. In-flight and subsequent calls fail with
	// ErrClientBroken.
	Close() error
}

// Client (TCP) implements Transport.
var _ Transport = (*Client)(nil)

// localTransport delivers requests straight to a Handler in this process.
type localTransport struct {
	h       Handler
	latency time.Duration

	mu     sync.Mutex
	closed bool
}

// Local returns an in-process Transport that invokes h directly — the
// simulator-mode counterpart of Dial. A non-zero latency is slept once per
// call to model a network round trip.
func Local(h Handler, latency time.Duration) Transport {
	return &localTransport{h: h, latency: latency}
}

func (t *localTransport) Call(req []byte) ([]byte, error) {
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return nil, ErrClientBroken
	}
	if t.latency > 0 {
		time.Sleep(t.latency)
	}
	// Mirror TCP framing's ownership transfer: a frame read off a socket is
	// a fresh allocation the handler may retain (flat decode borrows item
	// payloads from it), while senders reuse their encode buffers as soon
	// as Call returns. Handing req through directly would alias the two.
	own := make([]byte, len(req))
	copy(own, req)
	resp, err := t.h(own)
	if err != nil {
		// Mirror the wire: handler errors come back as remote errors on a
		// healthy link.
		return nil, &RemoteError{Msg: err.Error()}
	}
	return resp, nil
}

func (t *localTransport) Close() error {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	return nil
}
