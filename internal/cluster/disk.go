package cluster

import (
	"errors"
	"sort"
	"sync"
	"time"
)

// ErrNotFound is returned when reading an object the disk does not hold.
var ErrNotFound = errors.New("cluster: object not found on disk")

// Disk is a bandwidth-modelled object store standing in for a node-local
// disk. Writes and reads block for size/bandwidth, serialised per disk, so
// concurrent checkpoint streams to one disk contend exactly as the paper's
// m-to-n analysis assumes ("prevents a single node from becoming a disk
// ... bottleneck", §5).
type Disk struct {
	writeBW int64 // bytes/sec, 0 = infinite
	readBW  int64

	io      sync.Mutex // serialises simulated head time
	mu      sync.Mutex // guards objects
	objects map[string][]byte

	bytesWritten int64
	bytesRead    int64
}

// NewDisk creates a disk with the given bandwidths (bytes/second; zero
// means infinitely fast).
func NewDisk(writeBW, readBW int64) *Disk {
	return &Disk{writeBW: writeBW, readBW: readBW, objects: make(map[string][]byte)}
}

func (d *Disk) simulate(size int64, bw int64) {
	if bw <= 0 {
		return
	}
	dur := time.Duration(float64(size) / float64(bw) * float64(time.Second))
	// Hold the io lock while "the head moves": concurrent requests queue.
	d.io.Lock()
	time.Sleep(dur)
	d.io.Unlock()
}

// Write stores data under name, blocking for the simulated transfer time.
// The data is copied.
func (d *Disk) Write(name string, data []byte) {
	d.WriteParts(name, data)
}

// WriteParts stores the concatenation of parts under name. Callers with a
// small header and a large payload (the checkpoint chunk writer) avoid
// assembling a contiguous header+data slice first: each part is copied once
// directly into the disk's own buffer.
func (d *Disk) WriteParts(name string, parts ...[]byte) {
	var size int64
	for _, p := range parts {
		size += int64(len(p))
	}
	d.simulate(size, d.writeBW)
	cp := make([]byte, 0, size)
	for _, p := range parts {
		cp = append(cp, p...)
	}
	d.mu.Lock()
	d.objects[name] = cp
	d.bytesWritten += size
	d.mu.Unlock()
}

// Read retrieves the object, blocking for the simulated transfer time.
func (d *Disk) Read(name string) ([]byte, error) {
	d.mu.Lock()
	data, ok := d.objects[name]
	d.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	d.simulate(int64(len(data)), d.readBW)
	d.mu.Lock()
	d.bytesRead += int64(len(data))
	d.mu.Unlock()
	return data, nil
}

// Delete removes the object if present.
func (d *Disk) Delete(name string) {
	d.mu.Lock()
	delete(d.objects, name)
	d.mu.Unlock()
}

// List returns the stored object names in sorted order.
func (d *Disk) List() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.objects))
	for name := range d.objects {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Usage reports total stored bytes.
func (d *Disk) Usage() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var n int64
	for _, data := range d.objects {
		n += int64(len(data))
	}
	return n
}

// Stats reports cumulative bytes written and read.
func (d *Disk) Stats() (written, read int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bytesWritten, d.bytesRead
}
