package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// This file provides the real-network layer: length-prefixed message
// framing over TCP plus a minimal request/reply server. The KV store demo
// (cmd/sdg-kv) serves the SDG runtime over it, demonstrating that the
// in-process simulation and a wire deployment share the same protocols.

// MaxFrameSize bounds a single frame to protect against corrupt peers.
const MaxFrameSize = 64 << 20

// ErrFrameTooLarge is returned when an inbound frame exceeds MaxFrameSize.
var ErrFrameTooLarge = errors.New("cluster: frame exceeds maximum size")

// ErrClientBroken is returned by Client.Call after an earlier call failed
// mid-frame: the connection's framing state is undefined (a partial write
// or read leaves the peer mid-frame, so the next length prefix could be
// parsed out of payload bytes), and reusing it would return garbage that
// parses. The client closes the connection on first error and every later
// call fails fast with this sticky error; callers must Dial a fresh client.
var ErrClientBroken = errors.New("cluster: client connection broken by earlier error")

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("cluster: write frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("cluster: write frame body: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("cluster: read frame body: %w", err)
	}
	return payload, nil
}

// Handler processes one request frame and returns the reply frame.
type Handler func(req []byte) ([]byte, error)

// Server accepts framed request/reply connections on a TCP listener. Each
// connection is served by its own goroutine; requests on a connection are
// processed in order.
type Server struct {
	ln      net.Listener
	handler Handler

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve starts a server on addr (e.g. "127.0.0.1:0") with the given
// handler. It returns once the listener is ready.
func Serve(addr string, h Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen: %w", err)
	}
	s := &Server{ln: ln, handler: h, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr reports the listener address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !s.register(conn) {
			return
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// register adds an accepted connection to the tracked set, re-checking
// closed under the same critical section: a connection accepted
// concurrently with Close would otherwise be added after Close has iterated
// the map and escape the close loop, leaking past s.wg.Wait. The handler
// goroutine's wg.Add also stays ordered before acceptLoop's own wg.Done, so
// Close's Wait cannot complete while a registered conn is still being
// handed off.
func (s *Server) register(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		conn.Close()
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		req, err := ReadFrame(conn)
		if err != nil {
			return
		}
		resp, err := s.handler(req)
		if err != nil {
			return
		}
		if err := WriteFrame(conn, resp); err != nil {
			return
		}
	}
}

// Close stops the listener and all connections, waiting for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Client is a framed request/reply TCP client. It serialises concurrent
// callers over one connection. A call that fails mid-frame poisons the
// stream: the connection is closed eagerly and every subsequent Call
// returns a sticky ErrClientBroken instead of misparsing the next length
// prefix out of leftover payload bytes.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	broken error // first framing error; nil while the stream is healthy
}

// Dial connects to a Server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	return &Client{conn: conn}, nil
}

// Call sends one request frame and waits for the reply frame.
func (c *Client) Call(req []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken != nil {
		return nil, fmt.Errorf("%w: %v", ErrClientBroken, c.broken)
	}
	// An oversized request is rejected before any bytes hit the wire, so
	// it does not poison the stream.
	if len(req) > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	if err := c.poison(WriteFrame(c.conn, req)); err != nil {
		return nil, err
	}
	resp, err := ReadFrame(c.conn)
	if err := c.poison(err); err != nil {
		return nil, err
	}
	return resp, nil
}

// poison records the first mid-frame error, closing the connection so the
// peer sees the failure immediately rather than on its next read. Called
// under c.mu; returns err unchanged.
func (c *Client) poison(err error) error {
	if err != nil && c.broken == nil {
		c.broken = err
		c.conn.Close()
	}
	return err
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
