package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// This file provides the real-network layer: length-prefixed message
// framing over TCP plus a minimal request/reply server. The distributed
// worker mode (cmd/sdg-worker, internal/runtime's coordinator) and the KV
// store demo (cmd/sdg-kv) run the SDG protocols over it, demonstrating that
// the in-process simulation and a wire deployment share the same protocols.
//
// Frames are bare [4-byte big-endian length][payload]. Replies additionally
// lead with one status byte inside the payload so an application-level
// handler error comes back as an error reply on a healthy stream instead of
// tearing the connection down (which the client could not distinguish from
// a dead server).

// MaxFrameSize bounds a single frame to protect against corrupt peers.
const MaxFrameSize = 64 << 20

// Reply status bytes (first payload byte of every reply frame).
const (
	statusOK  = 0x00
	statusErr = 0x01
)

// ErrFrameTooLarge is returned when an inbound frame exceeds MaxFrameSize.
var ErrFrameTooLarge = errors.New("cluster: frame exceeds maximum size")

// ErrClientBroken is returned by Client.Call after an earlier call failed
// mid-frame: the connection's framing state is undefined (a partial write
// or read leaves the peer mid-frame, so the next length prefix could be
// parsed out of payload bytes), and reusing it would return garbage that
// parses. The client closes the connection on first error and every later
// call fails fast with this sticky error; callers must Dial a fresh client.
var ErrClientBroken = errors.New("cluster: client connection broken by earlier error")

// ErrClientClosed is the sticky cause recorded when Close is called: a Call
// racing (or following) Close reports ErrClientBroken wrapping this, rather
// than a raw "use of closed network connection" from the socket.
var ErrClientClosed = errors.New("cluster: client closed")

// ErrCallTimeout wraps the network timeout error when a Call exceeds the
// configured call timeout. The expiry leaves the stream mid-frame, so the
// client is also poisoned (subsequent calls return ErrClientBroken).
var ErrCallTimeout = errors.New("cluster: call timed out")

// errEmptyReply marks a protocol violation: every reply frame must carry at
// least the status byte.
var errEmptyReply = errors.New("cluster: empty reply frame (missing status byte)")

// RemoteError is an application-level error returned by the server's
// handler, carried back in an error reply frame. The connection stays
// healthy: only the request was rejected, the stream's framing is intact.
type RemoteError struct {
	Msg string
}

// Error renders the remote failure.
func (e *RemoteError) Error() string { return "cluster: remote error: " + e.Msg }

// Is reports errors.Is(err, ErrRemote) for any remote application error.
func (e *RemoteError) Is(target error) bool { return target == ErrRemote }

// ErrRemote matches any RemoteError via errors.Is, so callers can
// distinguish "the server rejected this request" from transport failures
// without string matching.
var ErrRemote = errors.New("cluster: remote error")

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("cluster: write frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("cluster: write frame body: %w", err)
	}
	return nil
}

// writeReplyFrame writes one reply frame: a length prefix covering the
// status byte plus payload, then the status byte, then the payload. The
// status rides inside the frame so the payload is never copied into a
// status-prefixed slice.
func writeReplyFrame(w io.Writer, status byte, payload []byte) error {
	if len(payload)+1 > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = status
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("cluster: write reply header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("cluster: write reply body: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("cluster: read frame body: %w", err)
	}
	return payload, nil
}

// Handler processes one request frame and returns the reply frame. A
// non-nil error is reported to the client as an error reply on the same
// connection; it does not terminate the connection.
type Handler func(req []byte) ([]byte, error)

// Server accepts framed request/reply connections on a TCP listener. Each
// connection is served by its own goroutine; requests on a connection are
// processed in order.
type Server struct {
	ln      net.Listener
	handler Handler

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve starts a server on addr (e.g. "127.0.0.1:0") with the given
// handler. It returns once the listener is ready.
func Serve(addr string, h Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen: %w", err)
	}
	s := &Server{ln: ln, handler: h, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr reports the listener address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !s.register(conn) {
			return
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// register adds an accepted connection to the tracked set, re-checking
// closed under the same critical section: a connection accepted
// concurrently with Close would otherwise be added after Close has iterated
// the map and escape the close loop, leaking past s.wg.Wait. The handler
// goroutine's wg.Add also stays ordered before acceptLoop's own wg.Done, so
// Close's Wait cannot complete while a registered conn is still being
// handed off.
func (s *Server) register(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		conn.Close()
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		req, err := ReadFrame(conn)
		if err != nil {
			return
		}
		resp, err := s.handler(req)
		if err != nil {
			// An application error is a reply, not a connection event: the
			// stream's framing is intact, and dropping the connection would
			// leave the client unable to tell a rejected request from a dead
			// server (and would poison its healthy stream).
			if werr := writeReplyFrame(conn, statusErr, []byte(err.Error())); werr != nil {
				return
			}
			continue
		}
		if err := writeReplyFrame(conn, statusOK, resp); err != nil {
			if errors.Is(err, ErrFrameTooLarge) {
				// The handler produced an unsendable reply; report that as an
				// application error rather than killing the stream (no bytes
				// were written for this frame yet).
				if werr := writeReplyFrame(conn, statusErr, []byte(err.Error())); werr == nil {
					continue
				}
			}
			return
		}
	}
}

// Close stops the listener and all connections, waiting for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Client is a framed request/reply TCP client. It serialises concurrent
// callers over one connection. A call that fails mid-frame poisons the
// stream: the connection is closed eagerly and every subsequent Call
// returns a sticky ErrClientBroken instead of misparsing the next length
// prefix out of leftover payload bytes. Application errors reported by the
// server (error replies) do not poison the stream.
type Client struct {
	mu   sync.Mutex // serialises Call; held across the request/reply round trip
	conn net.Conn

	// stateMu guards broken and timeout. It is separate from mu so Close
	// and SetCallTimeout never wait behind an in-flight network round trip
	// (Close must be able to interrupt a hung Call by closing the socket).
	stateMu sync.Mutex
	broken  error // first framing error or ErrClientClosed; nil while healthy
	timeout time.Duration
}

// Dial connects to a Server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	return &Client{conn: conn}, nil
}

// SetCallTimeout bounds every subsequent Call's full round trip (request
// write through reply read) via connection deadlines. A call that exceeds
// it fails with ErrCallTimeout and poisons the stream — the peer is left
// mid-frame, so the connection cannot be reused. Zero disables the bound.
func (c *Client) SetCallTimeout(d time.Duration) {
	c.stateMu.Lock()
	c.timeout = d
	c.stateMu.Unlock()
}

// brokenErr reports the sticky failure, wrapped in ErrClientBroken, or nil.
func (c *Client) brokenErr() error {
	c.stateMu.Lock()
	defer c.stateMu.Unlock()
	if c.broken == nil {
		return nil
	}
	return fmt.Errorf("%w: %v", ErrClientBroken, c.broken)
}

// Call sends one request frame and waits for the reply frame. An error
// reply from the server's handler is returned as a *RemoteError (matching
// errors.Is(err, ErrRemote)) and leaves the stream healthy.
func (c *Client) Call(req []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.brokenErr(); err != nil {
		return nil, err
	}
	// An oversized request is rejected before any bytes hit the wire, so
	// it does not poison the stream.
	if len(req) > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	c.stateMu.Lock()
	timeout := c.timeout
	c.stateMu.Unlock()
	if timeout > 0 {
		// One deadline spans the whole round trip: a server that accepts the
		// request but never replies (hung or partitioned) must not block the
		// caller forever while it holds c.mu, wedging every concurrent
		// caller queued behind it.
		c.conn.SetDeadline(time.Now().Add(timeout))
	}
	if err := c.fail(WriteFrame(c.conn, req)); err != nil {
		return nil, timeoutErr(err, timeout)
	}
	resp, err := ReadFrame(c.conn)
	if err = c.fail(err); err != nil {
		return nil, timeoutErr(err, timeout)
	}
	if timeout > 0 {
		c.conn.SetDeadline(time.Time{})
	}
	if len(resp) == 0 {
		// Protocol violation: replies always carry a status byte. The stream
		// position is no longer trustworthy.
		return nil, c.fail(errEmptyReply)
	}
	if resp[0] != statusOK {
		return nil, &RemoteError{Msg: string(resp[1:])}
	}
	return resp[1:], nil
}

// timeoutErr wraps deadline expiries in the typed ErrCallTimeout.
func timeoutErr(err error, timeout time.Duration) error {
	var ne net.Error
	if timeout > 0 && errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w after %v: %v", ErrCallTimeout, timeout, err)
	}
	return err
}

// fail records the first mid-frame error, closing the connection so the
// peer sees the failure immediately rather than on its next read. If the
// client is already broken (an earlier error, or a concurrent Close), the
// raw socket error is replaced by the documented sticky ErrClientBroken.
// Returns nil when err is nil.
func (c *Client) fail(err error) error {
	if err == nil {
		return nil
	}
	c.stateMu.Lock()
	defer c.stateMu.Unlock()
	if c.broken == nil {
		c.broken = err
		c.conn.Close()
		return err
	}
	return fmt.Errorf("%w: %v", ErrClientBroken, c.broken)
}

// Close closes the connection and marks the client broken, so a Call racing
// Close returns the sticky ErrClientBroken (wrapping ErrClientClosed)
// instead of a raw "use of closed network connection". Closing the socket
// also unblocks any in-flight round trip. Close is idempotent.
func (c *Client) Close() error {
	c.stateMu.Lock()
	already := c.broken != nil
	if !already {
		c.broken = ErrClientClosed
	}
	c.stateMu.Unlock()
	err := c.conn.Close()
	if already {
		// The connection was already closed when it broke (or by an earlier
		// Close); the second close's error is noise.
		return nil
	}
	return err
}
