package cluster

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestClusterNodes(t *testing.T) {
	c := New(3, Config{})
	if c.Size() != 3 || c.Alive() != 3 {
		t.Fatalf("size=%d alive=%d", c.Size(), c.Alive())
	}
	n := c.Node(1)
	if n.ID != 1 {
		t.Fatalf("node id = %d", n.ID)
	}
	n.Fail()
	if !n.Failed() || c.Alive() != 2 {
		t.Fatal("failure not reflected")
	}
	n.Recover()
	if n.Failed() || c.Alive() != 3 {
		t.Fatal("recovery not reflected")
	}
	added := c.AddNode()
	if added.ID != 3 || c.Size() != 4 {
		t.Fatal("AddNode broken")
	}
}

func TestClusterNodeOutOfRange(t *testing.T) {
	c := New(1, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Node(5)
}

func TestNodePenalty(t *testing.T) {
	c := New(1, Config{})
	n := c.Node(0)
	n.Penalize() // zero penalty: immediate
	n.SetPenalty(2 * time.Millisecond)
	if n.Penalty() != 2*time.Millisecond {
		t.Fatal("penalty not stored")
	}
	start := time.Now()
	n.Penalize()
	if elapsed := time.Since(start); elapsed < 1*time.Millisecond {
		t.Errorf("penalize returned too fast: %v", elapsed)
	}
}

func TestDiskReadWrite(t *testing.T) {
	d := NewDisk(0, 0)
	d.Write("a", []byte("hello"))
	got, err := d.Read("a")
	if err != nil || string(got) != "hello" {
		t.Fatalf("read = %q, %v", got, err)
	}
	if _, err := d.Read("missing"); err != ErrNotFound {
		t.Fatalf("missing read err = %v", err)
	}
	if d.Usage() != 5 {
		t.Fatalf("usage = %d", d.Usage())
	}
	w, r := d.Stats()
	if w != 5 || r != 5 {
		t.Fatalf("stats = %d, %d", w, r)
	}
	d.Delete("a")
	if _, err := d.Read("a"); err != ErrNotFound {
		t.Fatal("delete failed")
	}
}

func TestDiskIsolatedFromCallerBuffer(t *testing.T) {
	d := NewDisk(0, 0)
	buf := []byte("abc")
	d.Write("k", buf)
	buf[0] = 'x'
	got, _ := d.Read("k")
	if string(got) != "abc" {
		t.Fatal("disk aliases caller buffer")
	}
}

func TestDiskBandwidthModel(t *testing.T) {
	// 1 MB/s write bandwidth: a 100 KB write should take ~100 ms.
	d := NewDisk(1<<20, 0)
	start := time.Now()
	d.Write("big", make([]byte, 100<<10))
	elapsed := time.Since(start)
	if elapsed < 50*time.Millisecond {
		t.Errorf("write finished in %v; bandwidth model not applied", elapsed)
	}
}

func TestDiskSerialisesIO(t *testing.T) {
	// Two concurrent 50 KB writes at 1 MB/s must take ~100 ms total
	// because the simulated head is serialised.
	d := NewDisk(1<<20, 0)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d.Write(fmt.Sprintf("o%d", i), make([]byte, 50<<10))
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Errorf("concurrent writes finished in %v; IO not serialised", elapsed)
	}
}

func TestDiskList(t *testing.T) {
	d := NewDisk(0, 0)
	d.Write("b", nil)
	d.Write("a", nil)
	got := d.List()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("list = %v", got)
	}
}

func TestTransferModel(t *testing.T) {
	c := New(1, Config{NetBW: 1 << 20, NetLatency: 5 * time.Millisecond})
	start := time.Now()
	c.Transfer(100 << 10) // ~100ms at 1MB/s + 5ms latency
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("transfer took %v; model not applied", elapsed)
	}
	// Infinite bandwidth: returns quickly.
	// A watchdog instead of an elapsed-time bound: if the bandwidth model
	// were wrongly applied, 1GB at 1MB/s would block for ~17 minutes, so a
	// 10s deadline distinguishes the two outcomes with enormous headroom
	// where a tight wall-clock ceiling would flake under CI load.
	c2 := New(1, Config{})
	done := make(chan struct{})
	go func() {
		c2.Transfer(1 << 30)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Error("infinite-bandwidth transfer still blocked after 10s; bandwidth model wrongly applied")
	}
}

func TestFraming(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("frame-data")
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("round trip = %q, %v", got, err)
	}
	// Empty frame round-trips too.
	buf.Reset()
	if err := WriteFrame(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadFrame(&buf); err != nil || len(got) != 0 {
		t.Fatalf("empty frame = %v, %v", got, err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	hdr := []byte{0xff, 0xff, 0xff, 0xff}
	buf.Write(hdr)
	if _, err := ReadFrame(&buf); err != ErrFrameTooLarge {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPServerEcho(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(req []byte) ([]byte, error) {
		resp := append([]byte("echo:"), req...)
		return resp, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	resp, err := cl.Call([]byte("ping"))
	if err != nil || string(resp) != "echo:ping" {
		t.Fatalf("call = %q, %v", resp, err)
	}
	// Multiple sequential calls on one connection.
	for i := 0; i < 10; i++ {
		msg := fmt.Sprintf("m%d", i)
		resp, err := cl.Call([]byte(msg))
		if err != nil || string(resp) != "echo:"+msg {
			t.Fatalf("call %d = %q, %v", i, resp, err)
		}
	}
}

func TestTCPServerConcurrentClients(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(req []byte) ([]byte, error) {
		return req, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl, err := Dial(srv.Addr())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer cl.Close()
			for i := 0; i < 50; i++ {
				msg := fmt.Sprintf("g%d-m%d", g, i)
				resp, err := cl.Call([]byte(msg))
				if err != nil || string(resp) != msg {
					t.Errorf("call = %q, %v", resp, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestTCPServerCloseIdempotent(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(req []byte) ([]byte, error) { return req, nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal("second close should be nil")
	}
}
