package checkpoint

import (
	"fmt"
	"time"

	"repro/internal/state"
)

// tracked returns the store's delta tracker when changed-key tracking is
// live, so the full-checkpoint procedures can cut/commit it and keep the
// tracker bounded even on epochs that serialise the whole base.
func tracked(st state.Store) (state.DeltaStore, bool) {
	ds, ok := st.(state.DeltaStore)
	return ds, ok && ds.DeltaTracking()
}

// Async executes the five-step asynchronous checkpoint of §5 on one SE
// instance:
//
//	(1) flag the SE dirty (BeginDirty) — writers divert to the overlay;
//	(2..3) serialise the now-consistent base into nChunks chunks while
//	       processing continues;
//	(4) back the chunks up to the m target nodes in parallel;
//	(5) lock briefly and consolidate the dirty overlay (MergeDirty).
//
// Only step 5 blocks writers, and its cost is proportional to the update
// rate during the checkpoint, not to the state size — the property Fig. 12
// and Fig. 13 measure.
//
// When the store tracks changed keys, the full snapshot also cuts the
// tracker (committing on success, aborting on failure), so a compaction
// epoch resets the delta chain exactly at this snapshot's cut point.
func Async(st state.Store, meta Meta, nChunks int, b *Backup) (Result, error) {
	start := time.Now()
	if err := st.BeginDirty(); err != nil {
		return Result{}, fmt.Errorf("checkpoint: begin dirty: %w", err)
	}
	snapStart := time.Now()
	chunks, err := st.Checkpoint(nChunks)
	snapDur := time.Since(snapStart)
	if err != nil {
		// Leave dirty mode before reporting.
		_, _ = st.MergeDirty()
		return Result{}, fmt.Errorf("checkpoint: serialise: %w", err)
	}
	ds, isTracked := tracked(st)
	if isTracked {
		ds.CutDelta()
	}
	meta.StoreType = st.Type()
	meta.Delta = false
	bytes, err := b.Save(meta, chunks)
	if err != nil {
		_, _ = st.MergeDirty()
		if isTracked {
			ds.AbortDelta()
		}
		return Result{}, err
	}
	lockStart := time.Now()
	merged, err := st.MergeDirty()
	lockDur := time.Since(lockStart)
	if err != nil {
		return Result{}, fmt.Errorf("checkpoint: merge dirty: %w", err)
	}
	if isTracked {
		ds.CommitDelta()
	}
	return Result{
		Meta:         meta,
		Bytes:        bytes,
		StateBytes:   st.SizeBytes(),
		Duration:     time.Since(start),
		LockTime:     lockDur,
		MergedDirty:  merged,
		SnapshotTime: snapDur,
	}, nil
}

// AsyncDelta executes the asynchronous protocol but serialises only the
// keys changed since the last committed epoch cut: BeginDirty freezes the
// base, DeltaCheckpoint encodes the changed keys (updates + tombstones)
// and opens a pending cut, the delta is appended to the backup chain, and
// MergeDirty retains the window's overlay for the next epoch before the
// cut commits. On any failure the cut is aborted, folding the keys back
// into the tracker so no change is ever dropped from the chain.
func AsyncDelta(st state.DeltaStore, meta Meta, nChunks int, b *Backup) (Result, error) {
	start := time.Now()
	if err := st.BeginDirty(); err != nil {
		return Result{}, fmt.Errorf("checkpoint: begin dirty: %w", err)
	}
	snapStart := time.Now()
	chunks, err := st.DeltaCheckpoint(nChunks)
	snapDur := time.Since(snapStart)
	if err != nil {
		_, _ = st.MergeDirty()
		st.AbortDelta()
		return Result{}, fmt.Errorf("checkpoint: serialise delta: %w", err)
	}
	meta.StoreType = st.Type()
	meta.Delta = true
	bytes, err := b.Save(meta, chunks)
	if err != nil {
		_, _ = st.MergeDirty()
		st.AbortDelta()
		return Result{}, err
	}
	lockStart := time.Now()
	merged, err := st.MergeDirty()
	lockDur := time.Since(lockStart)
	if err != nil {
		st.AbortDelta()
		return Result{}, fmt.Errorf("checkpoint: merge dirty: %w", err)
	}
	st.CommitDelta()
	return Result{
		Meta:         meta,
		Bytes:        bytes,
		StateBytes:   st.SizeBytes(),
		Duration:     time.Since(start),
		LockTime:     lockDur,
		MergedDirty:  merged,
		SnapshotTime: snapDur,
	}, nil
}

// Sync executes a stop-the-world checkpoint: pause() must halt all
// processing that touches the SE; its returned resume function is called
// after the snapshot is persisted. The entire serialisation and backup time
// counts as lock time, which is why synchronous checkpointing collapses
// with large state (Fig. 12). A live delta tracker is cut and committed
// like Async's, so mixing modes never leaks tracked keys.
func Sync(st state.Store, meta Meta, nChunks int, b *Backup, pause func() (resume func())) (Result, error) {
	start := time.Now()
	resume := pause()
	lockStart := time.Now()
	snapStart := time.Now()
	chunks, err := st.Checkpoint(nChunks)
	snapDur := time.Since(snapStart)
	if err != nil {
		resume()
		return Result{}, fmt.Errorf("checkpoint: serialise: %w", err)
	}
	ds, isTracked := tracked(st)
	if isTracked {
		ds.CutDelta()
	}
	meta.StoreType = st.Type()
	meta.Delta = false
	bytes, err := b.Save(meta, chunks)
	lockDur := time.Since(lockStart)
	resume()
	if err != nil {
		if isTracked {
			ds.AbortDelta()
		}
		return Result{}, err
	}
	if isTracked {
		ds.CommitDelta()
	}
	return Result{
		Meta:         meta,
		Bytes:        bytes,
		StateBytes:   st.SizeBytes(),
		Duration:     time.Since(start),
		LockTime:     lockDur,
		SnapshotTime: snapDur,
	}, nil
}

// RestoreInstance rebuilds one recovering SE instance from its restore set
// (Fig. 4 step R2: "the new SE instances reconcile the chunks"): the base
// group restores first, then each delta epoch replays in chain order.
func RestoreInstance(meta Meta, set RestoreSet) (state.Store, error) {
	st, err := state.New(meta.StoreType)
	if err != nil {
		return nil, err
	}
	if err := st.Restore(set.Base); err != nil {
		return nil, fmt.Errorf("checkpoint: reconcile chunks for %q: %w", meta.SE, err)
	}
	if err := ApplyDeltas(st, set.Deltas); err != nil {
		return nil, fmt.Errorf("checkpoint: %s: %w", meta.SE, err)
	}
	return st, nil
}

// ApplyDeltas replays delta epochs in chain order onto a restored base.
func ApplyDeltas(st state.Store, deltas [][]state.Chunk) error {
	for _, epoch := range deltas {
		if len(epoch) == 0 {
			continue
		}
		ds, ok := st.(state.DeltaStore)
		if !ok {
			return fmt.Errorf("checkpoint: store type %v cannot apply delta epochs", st.Type())
		}
		if err := ds.ApplyDelta(epoch); err != nil {
			return fmt.Errorf("checkpoint: replay delta epoch: %w", err)
		}
	}
	return nil
}
